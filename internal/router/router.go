// Package router implements the paper's One-Hop Router: every node
// accumulates a full(ish) membership table of the ring — fed by its own
// ring neighborhood and by the Cyclon peer-sampling stream — and resolves
// the replica group responsible for a key locally, in one hop, with no
// routing round-trips. Entries not refreshed within a TTL are aged out, so
// the table tracks churn. The router also tracks the ring's group-view
// epoch and stamps it on FoundSuccessor answers, so quorum operations
// start in the epoch the group was resolved under.
package router

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cyclon"
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/ring"
	"repro/internal/status"
	"repro/internal/timer"
)

// FindSuccessor asks for the Count nodes responsible for Key (the
// successor of Key and its Count-1 clockwise followers).
type FindSuccessor struct {
	ReqID uint64
	Key   ident.Key
	Count int
}

// FoundSuccessor answers FindSuccessor. An empty Group means the router
// has no membership information yet; callers retry. Epoch is the ring
// group-view epoch the group was resolved under — the replication layer
// stamps it on every quorum phase.
type FoundSuccessor struct {
	ReqID uint64
	Key   ident.Key
	Group []ident.NodeRef
	Epoch uint64
}

// PortType is the Router service abstraction.
var PortType = core.NewPortType("Router",
	core.Request[FindSuccessor](),
	core.Indication[FoundSuccessor](),
)

type sweepTimeout struct{ timer.Timeout }

// Config parameterizes a one-hop router.
type Config struct {
	// Self is the local node reference.
	Self ident.NodeRef
	// EntryTTL ages out table entries not refreshed in this window
	// (default 30s).
	EntryTTL time.Duration
	// SweepPeriod is the staleness sweep interval (default 5s).
	SweepPeriod time.Duration
}

func (c *Config) applyDefaults() {
	if c.EntryTTL <= 0 {
		c.EntryTTL = 30 * time.Second
	}
	if c.SweepPeriod <= 0 {
		c.SweepPeriod = 5 * time.Second
	}
}

// Router is the One-Hop Router component: provides Router, requires Ring,
// PeerSampling, FailureDetector, and Timer.
type Router struct {
	cfg Config

	ctx  *core.Ctx
	rout *core.Port
	rng  *core.Port
	smp  *core.Port
	fdp  *core.Port
	tmr  *core.Port

	// mu guards table: handlers mutate it on a scheduler worker while the
	// handoff component calls Members() from its own worker.
	mu    sync.Mutex
	table map[ident.Key]tableEntry
	tid   timer.ID

	// epoch is the latest ring group-view epoch observed; atomic because
	// status pollers and the handoff component read it cross-worker.
	epoch atomic.Uint64

	resolved, unresolved uint64
}

type tableEntry struct {
	node ident.NodeRef
	seen time.Time
}

// New creates a one-hop router component definition.
func New(cfg Config) *Router {
	cfg.applyDefaults()
	return &Router{cfg: cfg, table: make(map[ident.Key]tableEntry)}
}

var _ core.Definition = (*Router)(nil)

// Setup declares ports and handlers.
func (r *Router) Setup(ctx *core.Ctx) {
	r.ctx = ctx
	r.rout = ctx.Provides(PortType)
	r.rng = ctx.Requires(ring.PortType)
	r.smp = ctx.Requires(cyclon.PortType)
	r.fdp = ctx.Requires(fd.PortType)
	r.tmr = ctx.Requires(timer.PortType)

	st := ctx.Provides(status.PortType)
	core.Subscribe(ctx, st, func(q status.Request) {
		ctx.Trigger(status.Response{ReqID: q.ReqID, Component: "one-hop-router", Metrics: map[string]int64{
			"table":      int64(r.TableSize()),
			"resolved":   int64(r.resolved),
			"unresolved": int64(r.unresolved),
			"epoch":      int64(r.Epoch()),
		}}, st)
	})

	core.Subscribe(ctx, r.rout, r.handleFind)
	core.Subscribe(ctx, r.rng, r.handleNeighbors)
	core.Subscribe(ctx, r.rng, r.handleGroupView)
	core.Subscribe(ctx, r.smp, r.handleSample)
	core.Subscribe(ctx, r.fdp, r.handleSuspect)
	core.Subscribe(ctx, r.tmr, r.handleSweep)
	core.Subscribe(ctx, ctx.Control(), func(core.Start) {
		r.tid = timer.NextID()
		ctx.Trigger(timer.SchedulePeriodic{
			Delay:   r.cfg.SweepPeriod,
			Period:  r.cfg.SweepPeriod,
			Timeout: sweepTimeout{timer.Timeout{ID: r.tid}},
		}, r.tmr)
	})
	core.Subscribe(ctx, ctx.Control(), func(core.Stop) {
		ctx.Trigger(timer.CancelPeriodic{ID: r.tid}, r.tmr)
	})
}

// handleFind resolves the responsible group from the local table plus
// self — the one-hop path, no network round-trip.
func (r *Router) handleFind(f FindSuccessor) {
	count := f.Count
	if count <= 0 {
		count = 1
	}
	members := r.Members()
	group := ident.SuccessorsOf(members, f.Key, count)
	if len(group) == 0 {
		r.unresolved++
	} else {
		r.resolved++
	}
	r.ctx.Trigger(FoundSuccessor{ReqID: f.ReqID, Key: f.Key, Group: group, Epoch: r.Epoch()}, r.rout)
}

// handleNeighbors refreshes the table from the node's own ring
// neighborhood (authoritative and fresh).
func (r *Router) handleNeighbors(n ring.NeighborsChanged) {
	if !n.Pred.IsZero() {
		r.learn(n.Pred)
	}
	for _, s := range n.Succs {
		r.learn(s)
	}
}

// handleGroupView tracks the ring's epoch-versioned view: the membership
// feeds the table (same data as NeighborsChanged) and the epoch is stamped
// on subsequent resolutions.
func (r *Router) handleGroupView(v ring.GroupView) {
	for _, m := range v.Members {
		r.learn(m)
	}
	if v.Epoch > r.epoch.Load() {
		r.epoch.Store(v.Epoch)
	}
}

// handleSample refreshes the table from the peer-sampling stream.
func (r *Router) handleSample(s cyclon.PeersSample) {
	for _, p := range s.Peers {
		r.learn(p)
	}
}

func (r *Router) learn(n ident.NodeRef) {
	if n.IsZero() || n.Addr == r.cfg.Self.Addr {
		return
	}
	r.mu.Lock()
	r.table[n.Key] = tableEntry{node: n, seen: r.ctx.Now()}
	r.mu.Unlock()
}

// handleSuspect evicts a suspected node immediately, so replica groups
// stop including nodes the failure detector believes dead (the TTL sweep
// is only the backstop for nodes nobody monitors).
func (r *Router) handleSuspect(s fd.Suspect) {
	r.mu.Lock()
	for k, e := range r.table {
		if e.node.Addr == s.Node {
			delete(r.table, k)
		}
	}
	r.mu.Unlock()
}

// handleSweep ages out entries not refreshed within the TTL.
func (r *Router) handleSweep(sweepTimeout) {
	cutoff := r.ctx.Now().Add(-r.cfg.EntryTTL)
	r.mu.Lock()
	for k, e := range r.table {
		if e.seen.Before(cutoff) {
			delete(r.table, k)
		}
	}
	r.mu.Unlock()
}

// TableSize returns the membership table occupancy (tests, status).
func (r *Router) TableSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.table)
}

// Stats returns resolution counters.
func (r *Router) Stats() (resolved, unresolved uint64) {
	return r.resolved, r.unresolved
}

// Epoch returns the latest ring group-view epoch the router has observed.
func (r *Router) Epoch() uint64 { return r.epoch.Load() }

// Members returns the current membership view including self, sorted and
// deduplicated. Safe to call from outside the component (handoff uses it
// to pick pull targets).
func (r *Router) Members() []ident.NodeRef {
	r.mu.Lock()
	members := make([]ident.NodeRef, 0, len(r.table)+1)
	members = append(members, r.cfg.Self)
	for _, e := range r.table {
		members = append(members, e.node)
	}
	r.mu.Unlock()
	ident.SortByKey(members)
	return ident.Dedup(members)
}
