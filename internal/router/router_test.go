package router

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cyclon"
	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/ring"
	"repro/internal/simulation"
	"repro/internal/timer"
)

func nodeRef(i int) ident.NodeRef {
	return ident.NodeRef{Key: ident.Key(i * 100), Addr: network.Address{Host: "rt", Port: uint16(i)}}
}

// harness hosts one Router fed by scripted ring/sampling indications.
type harness struct {
	sim *simulation.Simulation
	ctx *core.Ctx

	Router    *Router
	routOuter *core.Port
	ringInner *core.Port // feeder's provided Ring port (inner view)
	smpInner  *core.Port
	found     []FoundSuccessor
}

// feeder provides Ring and PeerSampling ports the test scripts through.
type feeder struct {
	h *harness
}

func (f *feeder) Setup(ctx *core.Ctx) {
	f.h.ringInner = ctx.Provides(ring.PortType)
	f.h.smpInner = ctx.Provides(cyclon.PortType)
}

// host wires the router under test to the feeder and a simulated timer.
type host struct {
	h    *harness
	self ident.NodeRef
}

func (ho *host) Setup(ctx *core.Ctx) {
	ho.h.ctx = ctx
	fd := &feeder{h: ho.h}
	fdC := ctx.Create("feeder", fd)
	tm := ctx.Create("timer", simulation.NewTimer(ho.h.sim))
	ho.h.Router = New(Config{Self: ho.self, EntryTTL: 5 * time.Second, SweepPeriod: time.Second})
	rtC := ctx.Create("router", ho.h.Router)
	ctx.Connect(rtC.Required(ring.PortType), fdC.Provided(ring.PortType))
	ctx.Connect(rtC.Required(cyclon.PortType), fdC.Provided(cyclon.PortType))
	ctx.Connect(rtC.Required(timer.PortType), tm.Provided(timer.PortType))
	ho.h.routOuter = rtC.Provided(PortType)
	core.Subscribe(ctx, ho.h.routOuter, func(f FoundSuccessor) {
		ho.h.found = append(ho.h.found, f)
	})
}

func newHarness(t *testing.T, self ident.NodeRef) *harness {
	t.Helper()
	h := &harness{sim: simulation.New(31)}
	h.sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		ctx.Create("host", &host{h: h, self: self})
	}))
	h.sim.Settle()
	return h
}

// feedNeighbors injects a ring NeighborsChanged indication.
func (h *harness) feedNeighbors(pred ident.NodeRef, succs ...ident.NodeRef) {
	_ = core.TriggerOn(h.ringInner, ring.NeighborsChanged{Pred: pred, Succs: succs})
	h.sim.Settle()
}

// feedSample injects a peer-sampling indication.
func (h *harness) feedSample(peers ...ident.NodeRef) {
	_ = core.TriggerOn(h.smpInner, cyclon.PeersSample{Peers: peers})
	h.sim.Settle()
}

func (h *harness) find(id uint64, key ident.Key, count int) {
	_ = core.TriggerOn(h.routOuter, FindSuccessor{ReqID: id, Key: key, Count: count})
	h.sim.Settle()
}

func TestResolveSelfOnlyRing(t *testing.T) {
	self := nodeRef(1)
	h := newHarness(t, self)
	h.find(1, 42, 3)
	if len(h.found) != 1 {
		t.Fatalf("no answer")
	}
	g := h.found[0].Group
	if len(g) != 1 || g[0] != self {
		t.Fatalf("group %v, want [self]", g)
	}
}

func TestResolveUsesRingAndSamples(t *testing.T) {
	self := nodeRef(2) // key 200
	h := newHarness(t, self)
	h.feedNeighbors(nodeRef(1), nodeRef(3), nodeRef(4))
	h.feedSample(nodeRef(5), nodeRef(6))
	if h.Router.TableSize() != 5 {
		t.Fatalf("table %d, want 5", h.Router.TableSize())
	}
	// Successor of 250 is node 3 (key 300), then 4, 5.
	h.find(1, 250, 3)
	g := h.found[0].Group
	if len(g) != 3 || g[0] != nodeRef(3) || g[1] != nodeRef(4) || g[2] != nodeRef(5) {
		t.Fatalf("group %v", g)
	}
	// Wrap-around: successor of 650 is node 1 (smallest key).
	h.find(2, 650, 2)
	g = h.found[1].Group
	if g[0] != nodeRef(1) || g[1] != nodeRef(2) {
		t.Fatalf("wrapped group %v", g)
	}
}

func TestResolveExactKey(t *testing.T) {
	h := newHarness(t, nodeRef(2))
	h.feedSample(nodeRef(1), nodeRef(3))
	h.find(1, ident.Key(300), 1) // exactly node 3's key
	if g := h.found[0].Group; len(g) != 1 || g[0] != nodeRef(3) {
		t.Fatalf("group %v, want [node3]", g)
	}
}

func TestCountClamp(t *testing.T) {
	h := newHarness(t, nodeRef(1))
	h.feedSample(nodeRef(2))
	h.find(1, 0, 10)
	if g := h.found[0].Group; len(g) != 2 {
		t.Fatalf("group %v, want both nodes", g)
	}
	h.find(2, 0, 0) // zero count → 1
	if g := h.found[1].Group; len(g) != 1 {
		t.Fatalf("group %v, want 1", g)
	}
}

func TestEntriesExpireWithoutRefresh(t *testing.T) {
	h := newHarness(t, nodeRef(1))
	h.feedSample(nodeRef(2), nodeRef(3))
	if h.Router.TableSize() != 2 {
		t.Fatalf("table %d", h.Router.TableSize())
	}
	// EntryTTL is 5s; run 8s with no refresh.
	h.sim.Run(8 * time.Second)
	if h.Router.TableSize() != 0 {
		t.Fatalf("stale entries survived: %d", h.Router.TableSize())
	}
	// Self is always resolvable.
	h.find(1, 42, 2)
	if g := h.found[0].Group; len(g) != 1 || g[0] != nodeRef(1) {
		t.Fatalf("group %v", g)
	}
}

func TestRefreshKeepsEntriesAlive(t *testing.T) {
	h := newHarness(t, nodeRef(1))
	for i := 0; i < 10; i++ {
		h.feedSample(nodeRef(2))
		h.sim.Run(time.Second)
	}
	if h.Router.TableSize() != 1 {
		t.Fatalf("refreshed entry expired")
	}
}

func TestSelfAndZeroRefsNotLearned(t *testing.T) {
	self := nodeRef(1)
	h := newHarness(t, self)
	h.feedSample(self, ident.NodeRef{})
	h.feedNeighbors(ident.NodeRef{}, self)
	if h.Router.TableSize() != 0 {
		t.Fatalf("learned self/zero: %d", h.Router.TableSize())
	}
	members := h.Router.Members()
	if len(members) != 1 || members[0] != self {
		t.Fatalf("members %v", members)
	}
}

func TestStatsCount(t *testing.T) {
	h := newHarness(t, nodeRef(1))
	h.find(1, 5, 1)
	resolved, unresolved := h.Router.Stats()
	if resolved != 1 || unresolved != 0 {
		t.Fatalf("stats %d/%d", resolved, unresolved)
	}
}
