// Package fd implements the paper's PingFailureDetector: an
// eventually-perfect failure detector over the Network and Timer
// abstractions. Clients ask it to monitor nodes; it pings them
// periodically and raises Suspect when a node misses consecutive pings,
// and Restore when a suspected node answers again.
package fd

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/status"
	"repro/internal/timer"
)

// Monitor requests monitoring of a node.
type Monitor struct {
	Node network.Address
}

// StopMonitor cancels monitoring of a node.
type StopMonitor struct {
	Node network.Address
}

// Suspect indicates the detector suspects a monitored node has failed.
type Suspect struct {
	Node network.Address
}

// Restore indicates a previously suspected node has responded again.
type Restore struct {
	Node network.Address
}

// SlowHint reports sustained slowness evidence for a node: the ABD
// coordinator raises it after consecutive adaptive-deadline overruns. It
// is Suspect-grade evidence distinct from the transport's binary
// PeerStatus down/up hints — a gray-failing peer answers pings and keeps
// its connection up, so without it the detector never sees the problem.
type SlowHint struct {
	Node network.Address
}

// PortType is the FailureDetector service abstraction.
var PortType = core.NewPortType("FailureDetector",
	core.Request[Monitor](),
	core.Request[StopMonitor](),
	core.Request[SlowHint](),
	core.Indication[Suspect](),
	core.Indication[Restore](),
)

// Wire messages.

type pingMsg struct {
	network.Header
	Seq uint64
}

type pongMsg struct {
	network.Header
	Seq uint64
}

func init() {
	network.Register(pingMsg{})
	network.Register(pongMsg{})
}

// intervalTimeout drives the detector's ping rounds.
type intervalTimeout struct {
	timer.Timeout
}

// monitorState tracks one monitored node.
type monitorState struct {
	lastSeq     uint64
	outstanding bool
	misses      int
	suspected   bool
}

// Config parameterizes the detector.
type Config struct {
	// Self is the local node's address (source of pings).
	Self network.Address
	// Interval is the ping round period (default 100ms).
	Interval time.Duration
	// SuspectAfterMisses is how many consecutive unanswered rounds trigger
	// Suspect (default 2).
	SuspectAfterMisses int
}

func (c *Config) applyDefaults() {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.SuspectAfterMisses <= 0 {
		c.SuspectAfterMisses = 2
	}
}

// Ping is the PingFailureDetector component: provides FailureDetector,
// requires Network and Timer. All state is handler-serial; no locks.
type Ping struct {
	cfg Config

	ctx  *core.Ctx
	fd   *core.Port
	net  *core.Port
	tmr  *core.Port
	tid  timer.ID
	seq  uint64
	mon  map[network.Address]*monitorState
	stat struct {
		pingsSent, pongsSent, suspects, restores uint64
		downHints, upHints, slowHints            uint64
	}
}

// NewPing creates a failure-detector component definition.
func NewPing(cfg Config) *Ping {
	cfg.applyDefaults()
	return &Ping{cfg: cfg, mon: make(map[network.Address]*monitorState)}
}

var _ core.Definition = (*Ping)(nil)

// Setup declares ports and handlers.
func (p *Ping) Setup(ctx *core.Ctx) {
	p.ctx = ctx
	p.fd = ctx.Provides(PortType)
	p.net = ctx.Requires(network.PortType)
	p.tmr = ctx.Requires(timer.PortType)

	st := ctx.Provides(status.PortType)
	core.Subscribe(ctx, st, func(q status.Request) {
		ctx.Trigger(status.Response{ReqID: q.ReqID, Component: "ping-fd", Metrics: map[string]int64{
			"monitored":  int64(len(p.mon)),
			"pings":      int64(p.stat.pingsSent),
			"pongs":      int64(p.stat.pongsSent),
			"suspects":   int64(p.stat.suspects),
			"restores":   int64(p.stat.restores),
			"down_hints": int64(p.stat.downHints),
			"up_hints":   int64(p.stat.upHints),
			"slow_hints": int64(p.stat.slowHints),
		}}, st)
	})

	core.Subscribe(ctx, p.fd, p.handleMonitor)
	core.Subscribe(ctx, p.fd, p.handleStopMonitor)
	core.Subscribe(ctx, p.fd, p.handleSlowHint)
	core.Subscribe(ctx, p.net, p.handlePing)
	core.Subscribe(ctx, p.net, p.handlePong)
	core.Subscribe(ctx, p.net, p.handlePeerStatus)
	core.Subscribe(ctx, p.tmr, p.handleInterval)
	core.Subscribe(ctx, ctx.Control(), func(core.Start) {
		p.tid = timer.NextID()
		ctx.Trigger(timer.SchedulePeriodic{
			Delay:   p.cfg.Interval,
			Period:  p.cfg.Interval,
			Timeout: intervalTimeout{Timeout: timer.Timeout{ID: p.tid}},
		}, p.tmr)
	})
	core.Subscribe(ctx, ctx.Control(), func(core.Stop) {
		ctx.Trigger(timer.CancelPeriodic{ID: p.tid}, p.tmr)
	})
}

func (p *Ping) handleMonitor(m Monitor) {
	if m.Node == p.cfg.Self {
		return // never monitor self
	}
	if _, ok := p.mon[m.Node]; ok {
		return
	}
	st := &monitorState{}
	p.mon[m.Node] = st
	p.sendPing(m.Node, st)
}

func (p *Ping) handleStopMonitor(m StopMonitor) {
	delete(p.mon, m.Node)
}

// handleInterval runs one ping round: count misses, raise suspicions, and
// send the next round of pings. Nodes are visited in address order so the
// message sequence is deterministic under the simulation scheduler.
func (p *Ping) handleInterval(intervalTimeout) {
	nodes := make([]network.Address, 0, len(p.mon))
	for node := range p.mon {
		nodes = append(nodes, node)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].String() < nodes[j].String() })
	for _, node := range nodes {
		st := p.mon[node]
		if st.outstanding {
			st.misses++
			if !st.suspected && st.misses >= p.cfg.SuspectAfterMisses {
				st.suspected = true
				p.stat.suspects++
				p.ctx.Trigger(Suspect{Node: node}, p.fd)
			}
		}
		p.sendPing(node, st)
	}
}

func (p *Ping) sendPing(node network.Address, st *monitorState) {
	p.seq++
	st.lastSeq = p.seq
	st.outstanding = true
	p.stat.pingsSent++
	p.ctx.Trigger(pingMsg{Header: network.NewHeader(p.cfg.Self, node), Seq: p.seq}, p.net)
}

// handlePing answers any node's ping, monitored or not.
func (p *Ping) handlePing(m pingMsg) {
	p.stat.pongsSent++
	p.ctx.Trigger(pongMsg{Header: network.Reply(m), Seq: m.Seq}, p.net)
}

// handlePong clears the outstanding round and restores suspected nodes.
func (p *Ping) handlePong(m pongMsg) {
	st, ok := p.mon[m.Source()]
	if !ok || m.Seq != st.lastSeq {
		return // stale or unmonitored
	}
	st.outstanding = false
	st.misses = 0
	if st.suspected {
		st.suspected = false
		p.stat.restores++
		p.ctx.Trigger(Restore{Node: m.Source()}, p.fd)
	}
}

// handlePeerStatus folds transport liveness hints into the miss counters.
// A Down hint for a monitored node counts as one missed round — the
// transport's view of a single connection is a strong but not decisive
// signal, so suspicion still needs SuspectAfterMisses worth of evidence
// (an idle-reaped connection must not defame a healthy peer). An Up hint
// triggers an immediate out-of-band ping: the answering pong is what
// clears the suspicion, keeping Restore on the single pong-driven path.
func (p *Ping) handlePeerStatus(s network.PeerStatus) {
	st, ok := p.mon[s.Peer]
	if !ok {
		return
	}
	if s.Up {
		p.stat.upHints++
		p.sendPing(s.Peer, st)
		return
	}
	p.stat.downHints++
	st.misses++
	st.outstanding = true
	if !st.suspected && st.misses >= p.cfg.SuspectAfterMisses {
		st.suspected = true
		p.stat.suspects++
		p.ctx.Trigger(Suspect{Node: s.Peer}, p.fd)
	}
}

// handleSlowHint folds sustained-slowness evidence into the miss
// counters, like a transport Down hint: one hint is one missed round, and
// suspicion still needs SuspectAfterMisses worth of evidence. Unlike a
// Down hint it does NOT mark the round outstanding — the peer is alive
// and its pong will arrive; consuming that pong must reset misses as
// usual rather than be discarded as stale.
func (p *Ping) handleSlowHint(h SlowHint) {
	st, ok := p.mon[h.Node]
	if !ok {
		return
	}
	p.stat.slowHints++
	st.misses++
	if !st.suspected && st.misses >= p.cfg.SuspectAfterMisses {
		st.suspected = true
		p.stat.suspects++
		p.ctx.Trigger(Suspect{Node: h.Node}, p.fd)
	}
}

// SlowHints returns how many slow-peer hints the detector has folded in
// (tests, status reporting).
func (p *Ping) SlowHints() uint64 { return p.stat.slowHints }

// Monitored returns the number of nodes currently monitored (tests,
// status reporting).
func (p *Ping) Monitored() int { return len(p.mon) }

// Stats returns detector counters: pings sent, pongs sent, suspects and
// restores raised.
func (p *Ping) Stats() (pings, pongs, suspects, restores uint64) {
	return p.stat.pingsSent, p.stat.pongsSent, p.stat.suspects, p.stat.restores
}
