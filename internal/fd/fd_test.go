package fd

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/simulation"
	"repro/internal/status"
	"repro/internal/timer"
)

// fdNode bundles a Ping detector with an emulated transport and a
// simulated timer, recording Suspect/Restore indications.
type fdNode struct {
	self network.Address
	sim  *simulation.Simulation
	emu  *simulation.NetworkEmulator

	ctx       *core.Ctx
	FD        *Ping
	fdOuter   *core.Port
	tr        *simulation.EmulatedTransport
	statOuter *core.Port
	suspects  []network.Address
	restores  []network.Address
	statuses  []status.Response
}

func (n *fdNode) Setup(ctx *core.Ctx) {
	n.ctx = ctx
	n.tr = n.emu.Transport(n.self)
	tr := ctx.Create("net", n.tr)
	tm := ctx.Create("timer", simulation.NewTimer(n.sim))
	n.FD = NewPing(Config{Self: n.self, Interval: 100 * time.Millisecond})
	fdC := ctx.Create("fd", n.FD)
	ctx.Connect(fdC.Required(network.PortType), tr.Provided(network.PortType))
	ctx.Connect(fdC.Required(timer.PortType), tm.Provided(timer.PortType))
	n.fdOuter = fdC.Provided(PortType)
	core.Subscribe(ctx, n.fdOuter, func(s Suspect) { n.suspects = append(n.suspects, s.Node) })
	core.Subscribe(ctx, n.fdOuter, func(r Restore) { n.restores = append(n.restores, r.Node) })
	n.statOuter = fdC.Provided(status.PortType)
	core.Subscribe(ctx, n.statOuter, func(r status.Response) { n.statuses = append(n.statuses, r) })
}

func addr(i int) network.Address { return network.Address{Host: "fd", Port: uint16(i)} }

func newFDPair(t *testing.T) (*simulation.Simulation, *simulation.NetworkEmulator, *fdNode, *fdNode) {
	t.Helper()
	sim := simulation.New(5)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.ConstantLatency(2*time.Millisecond)))
	a := &fdNode{self: addr(1), sim: sim, emu: emu}
	b := &fdNode{self: addr(2), sim: sim, emu: emu}
	sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		ctx.Create("a", a)
		ctx.Create("b", b)
	}))
	sim.Settle()
	return sim, emu, a, b
}

func TestNoSuspicionWhileAlive(t *testing.T) {
	sim, _, a, b := newFDPair(t)
	a.ctx.Trigger(Monitor{Node: b.self}, a.fdOuter)
	sim.Run(5 * time.Second)
	if len(a.suspects) != 0 {
		t.Fatalf("false suspicion: %v", a.suspects)
	}
	pings, _, _, _ := a.FD.Stats()
	if pings == 0 {
		t.Fatalf("no pings sent")
	}
	// B does not monitor A, but it must have answered A's pings.
	_, pongsB, _, _ := b.FD.Stats()
	if pongsB == 0 {
		t.Fatalf("B never answered A's pings")
	}
}

func TestSuspectOnPartition(t *testing.T) {
	sim, emu, a, b := newFDPair(t)
	a.ctx.Trigger(Monitor{Node: b.self}, a.fdOuter)
	sim.Run(2 * time.Second)
	emu.Partition(1, b.self)
	sim.Run(5 * time.Second)
	if len(a.suspects) != 1 || a.suspects[0] != b.self {
		t.Fatalf("suspects = %v, want [B]", a.suspects)
	}
	// Suspicion is raised once, not repeatedly.
	sim.Run(5 * time.Second)
	if len(a.suspects) != 1 {
		t.Fatalf("repeated suspicion: %v", a.suspects)
	}
}

func TestRestoreAfterHeal(t *testing.T) {
	sim, emu, a, b := newFDPair(t)
	a.ctx.Trigger(Monitor{Node: b.self}, a.fdOuter)
	sim.Run(2 * time.Second)
	emu.Partition(1, b.self)
	sim.Run(5 * time.Second)
	emu.Heal()
	sim.Run(5 * time.Second)
	if len(a.restores) != 1 || a.restores[0] != b.self {
		t.Fatalf("restores = %v, want [B]", a.restores)
	}
	if len(a.suspects) != 1 {
		t.Fatalf("suspects = %v, want exactly one", a.suspects)
	}
}

func TestStopMonitorSilences(t *testing.T) {
	sim, emu, a, b := newFDPair(t)
	a.ctx.Trigger(Monitor{Node: b.self}, a.fdOuter)
	sim.Run(time.Second)
	a.ctx.Trigger(StopMonitor{Node: b.self}, a.fdOuter)
	emu.Partition(1, b.self)
	sim.Run(10 * time.Second)
	if len(a.suspects) != 0 {
		t.Fatalf("suspicion after StopMonitor: %v", a.suspects)
	}
	if a.FD.Monitored() != 0 {
		t.Fatalf("still monitoring %d nodes", a.FD.Monitored())
	}
}

func TestMonitorSelfIgnored(t *testing.T) {
	sim, _, a, _ := newFDPair(t)
	a.ctx.Trigger(Monitor{Node: a.self}, a.fdOuter)
	sim.Run(time.Second)
	if a.FD.Monitored() != 0 {
		t.Fatalf("self-monitoring accepted")
	}
}

func TestMonitorIdempotent(t *testing.T) {
	sim, _, a, b := newFDPair(t)
	a.ctx.Trigger(Monitor{Node: b.self}, a.fdOuter)
	a.ctx.Trigger(Monitor{Node: b.self}, a.fdOuter)
	sim.Run(time.Second)
	if a.FD.Monitored() != 1 {
		t.Fatalf("monitored %d, want 1", a.FD.Monitored())
	}
}

// TestPeerStatusHintsAccelerateDetection pins the transport-hint fast
// path: Down hints count as missed rounds so suspicion lands well before
// the periodic ping rounds could accumulate the evidence, and an Up hint
// triggers an immediate out-of-band ping whose pong drives Restore — both
// far inside one detector interval.
func TestPeerStatusHintsAccelerateDetection(t *testing.T) {
	sim, emu, a, b := newFDPair(t)
	a.ctx.Trigger(Monitor{Node: b.self}, a.fdOuter)
	sim.Run(time.Second)
	if len(a.suspects) != 0 {
		t.Fatalf("false suspicion before faults: %v", a.suspects)
	}

	// Two transport Down hints supply SuspectAfterMisses (2) worth of
	// evidence at once; the pure ping path would need two 100ms rounds.
	emu.Partition(1, b.self)
	a.tr.EmitPeerStatus(network.PeerStatus{Peer: b.self, Up: false})
	a.tr.EmitPeerStatus(network.PeerStatus{Peer: b.self, Up: false})
	sim.Run(50 * time.Millisecond)
	if len(a.suspects) != 1 || a.suspects[0] != b.self {
		t.Fatalf("down hints did not accelerate suspicion: %v", a.suspects)
	}

	// An Up hint after the heal pings immediately; the pong restores within
	// a round trip instead of waiting for the next round.
	emu.Heal()
	a.tr.EmitPeerStatus(network.PeerStatus{Peer: b.self, Up: true})
	sim.Run(50 * time.Millisecond)
	if len(a.restores) != 1 || a.restores[0] != b.self {
		t.Fatalf("up hint did not accelerate restore: %v", a.restores)
	}

	// Hints for unmonitored peers are ignored.
	a.tr.EmitPeerStatus(network.PeerStatus{Peer: addr(99), Up: false})
	sim.Run(50 * time.Millisecond)
	if len(a.suspects) != 1 {
		t.Fatalf("hint for unmonitored peer raised suspicion: %v", a.suspects)
	}

	a.ctx.Trigger(status.Request{ReqID: 1}, a.statOuter)
	sim.Run(10 * time.Millisecond)
	m := a.statuses[len(a.statuses)-1].Metrics
	if m["down_hints"] != 2 || m["up_hints"] != 1 {
		t.Fatalf("hint counters: %+v", m)
	}
}

func TestStatusPortReports(t *testing.T) {
	sim, _, a, b := newFDPair(t)
	a.ctx.Trigger(Monitor{Node: b.self}, a.fdOuter)
	sim.Run(time.Second)
	a.ctx.Trigger(status.Request{ReqID: 9}, a.statOuter)
	sim.Run(time.Second)
	if len(a.statuses) != 1 {
		t.Fatalf("status responses: %+v", a.statuses)
	}
	got := a.statuses[0]
	if got.Component != "ping-fd" || got.ReqID != 9 {
		t.Fatalf("status response: %+v", got)
	}
	if got.Metrics["monitored"] != 1 || got.Metrics["pings"] == 0 {
		t.Fatalf("status metrics: %+v", got.Metrics)
	}
}
