package experiments

import (
	"testing"
	"time"
)

func TestTable1SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r := Table1(1, 32, 5*time.Second)
	if r.Peers != 32 {
		t.Fatalf("peers %d", r.Peers)
	}
	if r.SimulatedDuration != 5*time.Second {
		t.Fatalf("simulated %v, want 5s", r.SimulatedDuration)
	}
	if r.Compression <= 0 {
		t.Fatalf("compression %f", r.Compression)
	}
	if r.DiscreteEvents == 0 || r.HandlerExecutions == 0 {
		t.Fatalf("no events executed: %+v", r)
	}
}

func TestTable1CompressionDecreasesWithPeers(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	small := Table1(1, 16, 5*time.Second)
	large := Table1(1, 64, 5*time.Second)
	// The defining shape of Table 1: more peers → more events per simulated
	// second → lower compression.
	if large.Compression >= small.Compression {
		t.Fatalf("compression did not decrease: %d peers → %.2fx, %d peers → %.2fx",
			small.Peers, small.Compression, large.Peers, large.Compression)
	}
}

func TestScalingSmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r := Scaling(1, 8, 4, 50)
	if r.Ops != 8*50 {
		t.Fatalf("ops %d, want %d", r.Ops, 8*50)
	}
	if r.Failed != 0 {
		t.Fatalf("%d ops failed", r.Failed)
	}
	if r.ThroughputPS <= 0 || r.PerNodePS <= 0 {
		t.Fatalf("throughput not measured: %+v", r)
	}
}

func TestStealingBothPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	one := Stealing(4, 64, 50, false)
	half := Stealing(4, 64, 50, true)
	if one.Events != 64*50 || half.Events != 64*50 {
		t.Fatalf("event counts: %d %d", one.Events, half.Events)
	}
	if one.Steals == 0 || half.Steals == 0 {
		t.Fatalf("no stealing occurred: one=%d half=%d", one.Steals, half.Steals)
	}
	// Batching's defining mechanism: far fewer steal operations move the
	// same work.
	if half.Steals >= one.Steals {
		t.Fatalf("batch=half used %d steal ops, batch=one used %d; batching must use fewer",
			half.Steals, one.Steals)
	}
}

func TestLatencySmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	r := Latency(5, 3, 256, 100, CodecStream)
	if r.Ops == 0 {
		t.Fatalf("no ops measured")
	}
	if r.Mean <= 0 || r.P99 < r.P50 {
		t.Fatalf("latency stats inconsistent: %+v", r)
	}
}
