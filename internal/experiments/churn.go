package experiments

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/cats"
	"repro/internal/core"
	"repro/internal/handoff"
	"repro/internal/ident"
	"repro/internal/kvstore"
	"repro/internal/linear"
	"repro/internal/simulation"
	"repro/internal/tracing"
)

// ChurnConfig parameterizes the chaos scenario: a simulated CATS cluster
// serving quorum reads and writes while nodes crash and restart and links
// flap and heal underneath it.
type ChurnConfig struct {
	Nodes     int           // cluster size (default 6)
	Keys      int           // distinct data keys under test (default 6)
	OpsPerKey int           // put/get operations per key, excluding the final audit read (default 10)
	Crashes   int           // sequential crash→restart cycles (default 4)
	Flaps     int           // symmetric link flaps (default 4)
	CrashDown time.Duration // how long a crashed node stays off the network (default 1200ms)
	FlapDown  time.Duration // how long a flapped link stays down (default 900ms)
	OpWindow  time.Duration // virtual-time window the workload and churn are spread over (default 40s)
	Tail      time.Duration // settle time after the window before the audit reads (default 20s)

	// DataDir, when non-empty, runs every node on a durable store
	// (per-node WAL + snapshots under this root, sync=always) so the
	// chaos scenario also exercises the write-ahead path under churn.
	// For a deterministic two-run diff the directory must start empty
	// each run — recovery replay of a previous run's state shifts the
	// WAL counters.
	DataDir string
}

func (c *ChurnConfig) applyDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 6
	}
	if c.Keys <= 0 {
		c.Keys = 6
	}
	if c.OpsPerKey <= 0 {
		c.OpsPerKey = 10
	}
	if c.Crashes <= 0 {
		c.Crashes = 3
	}
	if c.Flaps <= 0 {
		c.Flaps = 4
	}
	if c.CrashDown <= 0 {
		// Longer than the 6s suspicion threshold (FDInterval 2s × 3
		// misses): crashed nodes ARE evicted, groups reconfigure, and the
		// epoch/handoff machinery must carry state across — the case the
		// scenario exists to prove.
		c.CrashDown = 8 * time.Second
	}
	if c.FlapDown <= 0 {
		c.FlapDown = 900 * time.Millisecond
	}
	if c.OpWindow <= 0 {
		c.OpWindow = 60 * time.Second
	}
	if c.Tail <= 0 {
		c.Tail = 25 * time.Second
	}
}

// LongOutageChurnConfig is the chaos variant with outages double the
// suspicion threshold: fewer, longer crash windows, so evicted nodes sit
// dark long enough for several stabilization rounds to repair the ring
// around them before they rejoin and pull state back.
func LongOutageChurnConfig() ChurnConfig {
	return ChurnConfig{
		Crashes:   2,
		CrashDown: 12 * time.Second,
		OpWindow:  60 * time.Second,
		Tail:      30 * time.Second,
	}
}

// ChurnResult reports the scenario outcome.
type ChurnResult struct {
	Nodes, Keys int

	AckedPuts, FailedPuts int
	OKGets, FailedGets    int
	UnresolvedOps         int
	Crashes, Restarts     uint64
	Flaps, ChurnDropped   uint64
	Linearizable          bool
	NonLinearizableKey    string
	LostAckedWrites       int // keys whose acked writes the final audit read could not observe
	SimulatedDuration     time.Duration
	DiscreteEvents        uint64
	HandlerExecutions     uint64

	// State-handoff activity during the scenario (deltas of the
	// process-wide counters, so they are per-seed deterministic).
	HandoffKeys      uint64
	HandoffBytes     uint64
	HandoffTransfers uint64
	// MaxEpoch is the highest replica-group epoch any node reached.
	MaxEpoch uint64

	// Durability activity during the scenario (deltas of the process-wide
	// WAL counters; all zero when DataDir is unset).
	WALAppends   uint64
	WALSyncs     uint64
	WALReplays   uint64
	WALSnapshots uint64
	WALErrors    uint64

	// Sharded-store occupancy after the audit, summed over alive nodes:
	// convergence must leave the survivors' stores populated, spread across
	// shards (not collapsed into one by a broken hash split).
	StoreKeys          int
	StoreShardsInUse   int
	StoreMaxShardShare float64 // largest single-shard fraction of any store

	// Tracing: the chaos run samples every operation into a private span
	// ring so a violation report can cite the offending op's cross-node
	// timeline rather than a bare verdict.
	TraceSpans      int
	TraceTimelines  int
	CrossNodeTraces int    // timelines with spans from >= 2 nodes
	RestartTraces   int    // timelines that crossed >= 1 epoch restart
	TraceDigest     uint64 // FNV-1a over all timelines; per-seed deterministic
	LostKeys        []string
	Timelines       []tracing.Timeline
}

// TimelineDigest folds assembled timelines into one FNV-1a fingerprint.
// Under the deterministic simulation a seed fixes the spans, their IDs,
// and their virtual timestamps, so the digest is byte-stable across
// same-seed runs — the chaos determinism check diffs it.
func TimelineDigest(tls []tracing.Timeline) uint64 {
	h := fnv.New64a()
	for _, tl := range tls {
		fmt.Fprintf(h, "t %016x %s %s %s %d %v\n",
			tl.Trace, tl.Name, tl.Key, tl.Outcome, tl.Restarts, tl.Nodes)
		for _, s := range tl.Spans {
			fmt.Fprintf(h, "s %016x %016x %016x %s %s %s %d %d %d %d\n",
				s.ID, s.Parent, s.Link, s.Node, s.Name, s.Outcome,
				s.Attempt, s.Epoch, s.Start.UnixNano(), s.End.UnixNano())
		}
	}
	return h.Sum64()
}

// ViolationTimelines returns the timelines of the operations implicated in
// a failed run: every traced op on the non-linearizable key and on keys
// whose acknowledged writes the audit lost. Empty on a clean run.
func (r ChurnResult) ViolationTimelines() []tracing.Timeline {
	bad := map[string]bool{}
	if r.NonLinearizableKey != "" {
		bad[r.NonLinearizableKey] = true
	}
	for _, k := range r.LostKeys {
		bad[k] = true
	}
	if len(bad) == 0 {
		return nil
	}
	var out []tracing.Timeline
	for _, tl := range r.Timelines {
		if bad[tl.Key] {
			out = append(out, tl)
		}
	}
	return out
}

// Churn runs the chaos scenario: quorum puts/gets over a simulated CATS
// cluster while the network emulator injects crash-restart churn and link
// flaps, all in virtual time from one seed. It returns the recorded
// history's linearizability verdict and an explicit lost-acknowledged-write
// audit (after every fault heals, a final read per key must observe some
// acknowledged value).
//
// Default fault windows EXCEED the failure detector's suspicion threshold
// (FDInterval × SuspectAfterMisses = 6s): the ring evicts the crashed
// node, replica groups reconfigure into a new epoch, and the handoff
// component pulls the covered ranges before the survivors ack in it. The
// zero-lost-acked-writes audit therefore exercises the full
// reconfiguration path — epoch fencing, state transfer, and rejoin of the
// evicted node — not just transport resilience.
func Churn(seed int64, cfg ChurnConfig, simOpts ...simulation.SimOption) ChurnResult {
	cfg.applyDefaults()

	// Trace every operation into a private ring for the run's duration:
	// the violation report must be able to cite any op's timeline, and the
	// process-wide ring and sampling rate must come back untouched.
	ring := tracing.NewRing(1 << 16)
	prevRing := tracing.SwapDefault(ring)
	prevSample := tracing.SetSampleEvery(1)
	defer func() {
		tracing.SetSampleEvery(prevSample)
		tracing.SwapDefault(prevRing)
	}()

	nodeCfg := simNodeConfig()
	// Suspicion threshold: 3 consecutive silent 2s rounds. Crash windows
	// (default 8s) overlap more than three round starts, so crashed nodes
	// are genuinely evicted and must hand state off and rejoin.
	nodeCfg.FDInterval = 2 * time.Second
	nodeCfg.FDSuspectAfterMisses = 3

	handoffBefore := handoff.GlobalMetrics()
	kvBefore := kvstore.GlobalMetrics()

	var (
		sim  *simulation.Simulation
		emu  *simulation.NetworkEmulator
		host *cats.Simulator
		exp  *core.Port
	)
	if cfg.DataDir != "" {
		// Durable chaos: WALs fsync on every ack and snapshots roll
		// aggressively so even a short run truncates logs under churn.
		nodeCfg.WALSync = kvstore.SyncAlways
		nodeCfg.WALSnapshotBytes = 1 << 12
		sim, emu, host, exp = buildDurableSimCluster(seed, spreadKeys(cfg.Nodes), nodeCfg, cfg.DataDir, nil, simOpts...)
	} else {
		sim, emu, host, exp = buildSimCluster(seed, cfg.Nodes, nodeCfg, simOpts...)
	}
	host.RecordOps = true

	refs := host.AliveNodes()
	rng := rand.New(rand.NewSource(seed ^ 0x6368726e)) // "chrn"

	// Workload: OpsPerKey operations per key (first is always a put so
	// every key exists), issued at coordinators drawn at random, spread
	// uniformly over the window. Ops can land mid-fault: coordinators may
	// be isolated, quorum members unreachable — that is the point.
	type schedOp struct {
		at time.Duration
		ev core.Event
	}
	var ops []schedOp
	keyName := func(i int) string { return "churn-" + string(rune('a'+i%26)) + "-" + strconv.Itoa(i) }
	for k := 0; k < cfg.Keys; k++ {
		key := keyName(k)
		for i := 0; i < cfg.OpsPerKey; i++ {
			at := time.Duration(rng.Int63n(int64(cfg.OpWindow)))
			if i == 0 {
				at = time.Duration(rng.Int63n(int64(cfg.OpWindow) / 4)) // seed write early
			}
			node := ident.Key(rng.Uint64())
			if i == 0 || rng.Float64() < 0.5 {
				val := []byte("v-" + strconv.Itoa(k) + "-" + strconv.Itoa(i))
				ops = append(ops, schedOp{at, cats.OpPut{NodeKey: node, Key: key, Value: val}})
			} else {
				ops = append(ops, schedOp{at, cats.OpGet{NodeKey: node, Key: key}})
			}
		}
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].at < ops[j].at })
	for _, op := range ops {
		ev := op.ev
		sim.ScheduleAt(op.at, "churn:op", func() { _ = core.TriggerOn(exp, ev) })
	}

	// Crash-restart churn: sequential, non-overlapping windows so at most
	// one replica per group is dark at a time (replication 3 tolerates 1).
	spacing := cfg.OpWindow / time.Duration(cfg.Crashes+1)
	for i := 0; i < cfg.Crashes; i++ {
		at := spacing*time.Duration(i+1) + time.Duration(rng.Int63n(int64(spacing)/4))
		victim := refs[rng.Intn(len(refs))].Addr
		sim.ScheduleAt(at, "churn:crash", func() { emu.Crash(victim) })
		sim.ScheduleAt(at+cfg.CrashDown, "churn:restart", func() { emu.Restart(victim) })
	}

	// Link flaps: symmetric src↔dst outages that heal by virtual-time
	// expiry, plus one partition that is explicitly healed.
	for i := 0; i < cfg.Flaps; i++ {
		at := time.Duration(rng.Int63n(int64(cfg.OpWindow)))
		a := refs[rng.Intn(len(refs))].Addr
		b := refs[rng.Intn(len(refs))].Addr
		if a == b {
			continue
		}
		down := cfg.FlapDown
		sim.ScheduleAt(at, "churn:flap", func() {
			emu.FlapLink(a, b, down)
			emu.FlapLink(b, a, down)
		})
	}
	partAt := cfg.OpWindow / 2
	isolated := refs[rng.Intn(len(refs))].Addr
	sim.ScheduleAt(partAt, "churn:partition", func() { emu.Partition(1, isolated) })
	sim.ScheduleAt(partAt+cfg.FlapDown, "churn:heal", func() { emu.Heal() })

	mainStats := sim.Run(cfg.OpWindow + cfg.Tail)

	// Audit phase: every fault has healed and in-flight ops have resolved
	// or timed out; one read per key must observe some acknowledged value.
	preAudit := len(host.OpHistory())
	keys := make([]string, 0, cfg.Keys)
	for k := 0; k < cfg.Keys; k++ {
		keys = append(keys, keyName(k))
	}
	for _, key := range keys {
		k := key
		sim.ScheduleAt(0, "churn:audit", func() {
			_ = core.TriggerOn(exp, cats.OpGet{NodeKey: ident.Key(rng.Uint64()), Key: k})
		})
	}
	auditStats := sim.Run(nodeCfg.OpTimeout * 3)

	history := host.OpHistory()
	unresolved := host.UnresolvedOps()
	res := ChurnResult{
		Nodes:             cfg.Nodes,
		Keys:              cfg.Keys,
		UnresolvedOps:     len(unresolved),
		SimulatedDuration: mainStats.SimulatedDuration + auditStats.SimulatedDuration,
		DiscreteEvents:    mainStats.DiscreteEvents + auditStats.DiscreteEvents,
		HandlerExecutions: mainStats.HandlerExecutions + auditStats.HandlerExecutions,
	}
	res.Crashes, res.Restarts, res.Flaps, res.ChurnDropped = emu.ChurnStats()
	handoffAfter := handoff.GlobalMetrics()
	res.HandoffKeys = handoffAfter.Keys - handoffBefore.Keys
	res.HandoffBytes = handoffAfter.Bytes - handoffBefore.Bytes
	res.HandoffTransfers = handoffAfter.Transfers - handoffBefore.Transfers
	res.MaxEpoch = handoffAfter.Epoch
	kvAfter := kvstore.GlobalMetrics()
	res.WALAppends = kvAfter.WALAppends - kvBefore.WALAppends
	res.WALSyncs = kvAfter.WALSyncs - kvBefore.WALSyncs
	res.WALReplays = kvAfter.WALReplays - kvBefore.WALReplays
	res.WALSnapshots = kvAfter.Snapshots - kvBefore.Snapshots
	res.WALErrors = kvAfter.WALErrors - kvBefore.WALErrors

	// Build the per-key linearizability history. Failed or unresolved puts
	// may or may not have taken effect, so they enter as writes with an
	// unconstrained response time; failed gets observed nothing and are
	// excluded.
	hist := make(map[string][]linear.Op)
	ackedVals := make(map[string]map[string]bool)
	addPut := func(r cats.OpRecord, end int64) {
		hist[r.Key] = append(hist[r.Key], linear.Op{
			Kind: linear.Write, Value: r.Value, Start: r.Start.UnixNano(), End: end,
		})
	}
	for _, r := range history {
		switch r.Kind {
		case "put":
			if r.OK {
				res.AckedPuts++
				if ackedVals[r.Key] == nil {
					ackedVals[r.Key] = make(map[string]bool)
				}
				ackedVals[r.Key][r.Value] = true
				addPut(r, r.End.UnixNano())
			} else {
				res.FailedPuts++
				addPut(r, math.MaxInt64)
			}
		case "get":
			if r.OK {
				res.OKGets++
				hist[r.Key] = append(hist[r.Key], linear.Op{
					Kind: linear.Read, Value: r.Value, Found: r.Found,
					Start: r.Start.UnixNano(), End: r.End.UnixNano(),
				})
			} else {
				res.FailedGets++
			}
		}
	}
	for _, r := range unresolved {
		if r.Kind == "put" {
			addPut(r, math.MaxInt64)
		}
	}
	res.Linearizable, res.NonLinearizableKey = linear.CheckPerKey(hist)

	for _, ref := range host.AliveNodes() {
		p, ok := host.Peer(ref.Key)
		if !ok || p.Node == nil {
			continue
		}
		st := p.Node.ABD.Store().Stats()
		res.StoreKeys += st.Keys
		res.StoreShardsInUse += st.NonEmptyShards
		if st.Keys > 0 {
			for _, n := range st.PerShard {
				if share := float64(n) / float64(st.Keys); share > res.StoreMaxShardShare {
					res.StoreMaxShardShare = share
				}
			}
		}
	}

	// Lost-acked-write audit: per key with acknowledged writes, the final
	// read must succeed and find one of them (or a later unacked write's
	// value — still not a loss).
	finalRead := make(map[string]cats.OpRecord)
	for _, r := range history[preAudit:] {
		if r.Kind == "get" {
			finalRead[r.Key] = r
		}
	}
	for _, key := range keys {
		if len(ackedVals[key]) == 0 {
			continue
		}
		r, ok := finalRead[key]
		if !ok || !r.OK || !r.Found {
			res.LostAckedWrites++
			res.LostKeys = append(res.LostKeys, key)
		}
	}

	// Assemble the run's trace rollup from the private ring.
	res.Timelines = tracing.Assemble(ring.Snapshot())
	res.TraceTimelines = len(res.Timelines)
	for _, tl := range res.Timelines {
		res.TraceSpans += len(tl.Spans)
		if len(tl.Nodes) >= 2 {
			res.CrossNodeTraces++
		}
		if tl.Restarts > 0 {
			res.RestartTraces++
		}
	}
	res.TraceDigest = TimelineDigest(res.Timelines)
	return res
}
