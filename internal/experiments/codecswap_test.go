package experiments

import "testing"

// TestCodecSwapCleanRun is the live-swap correctness gate: quorum traffic
// across per-node codec swaps and overlapping link flaps stays
// linearizable with zero lost acked writes and zero codec errors, while
// swaps actually happened and both wire formats crossed the emulated wire.
func TestCodecSwapCleanRun(t *testing.T) {
	res := CodecSwap(7, CodecSwapConfig{})
	if !res.Linearizable {
		t.Errorf("history not linearizable (key %q)", res.NonLinearizableKey)
	}
	if res.LostAckedWrites != 0 {
		t.Errorf("lost %d acked writes", res.LostAckedWrites)
	}
	if res.CodecErrors != 0 {
		t.Errorf("%d codec round-trip errors", res.CodecErrors)
	}
	if res.CodecSwaps == 0 {
		t.Error("no codec swaps applied — scenario inert")
	}
	if res.BinaryFrames == 0 || res.GobFrames == 0 {
		t.Errorf("frame mix did not span both formats: binary=%d gob=%d",
			res.BinaryFrames, res.GobFrames)
	}
	if res.AckedPuts == 0 || res.OKGets == 0 {
		t.Errorf("workload inert: %d acked puts, %d ok gets", res.AckedPuts, res.OKGets)
	}
}

// TestCodecSwapDeterministic pins the two-run byte-identical property the
// codecswap CI job diffs: same seed, same result, including the codec
// counters and the trace digest.
func TestCodecSwapDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the scenario twice")
	}
	a := CodecSwap(11, CodecSwapConfig{})
	b := CodecSwap(11, CodecSwapConfig{})
	if a != b {
		t.Errorf("same-seed runs diverge:\n a: %+v\n b: %+v", a, b)
	}
	c := CodecSwap(13, CodecSwapConfig{})
	if c.TraceDigest == a.TraceDigest {
		t.Error("different seeds produced identical trace digests")
	}
}
