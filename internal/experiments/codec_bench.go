package experiments

import (
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abd"
	"repro/internal/cats"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/network"
)

// CodecBenchArm is one (transport, codec) cell in the wire-codec A/B
// comparison. The codec counter deltas come from the process-wide network
// metrics, snapshotted around each round — rounds run strictly
// sequentially, so the deltas attribute cleanly to their arm.
type CodecBenchArm struct {
	Transport string `json:"transport"` // "loopback" | "tcp"
	Codec     string `json:"codec"`     // "gob+zlib" | "binary"

	OpsPS float64       `json:"ops_ps"`
	P50   time.Duration `json:"p50_ns"`
	P99   time.Duration `json:"p99_ns"`

	// BinaryEncoded is the cats_network_codec_binary_encoded_total delta
	// over this arm's rounds: it must be > 0 on a binary arm (else the
	// codec never engaged and the comparison is inert) and 0 on a gob arm.
	BinaryEncoded  uint64 `json:"binary_encoded"`
	CodecFallbacks uint64 `json:"codec_fallbacks"`
	EncodedMsgs    uint64 `json:"encoded_msgs"`
	EncodedBytes   uint64 `json:"encoded_bytes"`
	FailedOps      uint64 `json:"failed_ops"`
}

// CodecBenchResult is the full four-arm comparison: {loopback, tcp} ×
// {gob+zlib, binary} on the same closed-loop quorum workload. The
// loopback pair is the gated comparison — it isolates codec cost from
// socket noise; the TCP pair demonstrates the same ordering end-to-end.
type CodecBenchResult struct {
	Nodes    int `json:"nodes"`
	Clients  int `json:"clients"`
	OpsRound int `json:"ops_round"`
	Rounds   int `json:"rounds"`

	Arms []CodecBenchArm `json:"arms"`

	// LoopbackImprovement is binary ops/s over gob+zlib ops/s minus 1 on
	// the loopback transport; TCPImprovement likewise over real sockets.
	LoopbackImprovement float64 `json:"loopback_improvement"`
	TCPImprovement      float64 `json:"tcp_improvement"`
}

// Arm returns the named cell, or nil if the result does not carry it.
func (r *CodecBenchResult) Arm(transport, codec string) *CodecBenchArm {
	for i := range r.Arms {
		if r.Arms[i].Transport == transport && r.Arms[i].Codec == codec {
			return &r.Arms[i]
		}
	}
	return nil
}

// codecArmAcc accumulates rounds for one arm.
type codecArmAcc struct {
	done    uint64
	elapsed time.Duration
	lat     []time.Duration
	failed  uint64
	delta   network.Metrics
}

func (a *codecArmAcc) add(done uint64, elapsed time.Duration, lat []time.Duration, failed uint64, before, after network.Metrics) {
	a.done += done
	a.elapsed += elapsed
	a.lat = append(a.lat, lat...)
	a.failed += failed
	a.delta.BinaryEncoded += after.BinaryEncoded - before.BinaryEncoded
	a.delta.CodecFallbacks += after.CodecFallbacks - before.CodecFallbacks
	a.delta.EncodedMsgs += after.EncodedMsgs - before.EncodedMsgs
	a.delta.EncodedBytes += after.EncodedBytes - before.EncodedBytes
}

func (a *codecArmAcc) finish(transport, codec string) CodecBenchArm {
	arm := CodecBenchArm{
		Transport:      transport,
		Codec:          codec,
		BinaryEncoded:  a.delta.BinaryEncoded,
		CodecFallbacks: a.delta.CodecFallbacks,
		EncodedMsgs:    a.delta.EncodedMsgs,
		EncodedBytes:   a.delta.EncodedBytes,
		FailedOps:      a.failed,
	}
	if a.elapsed > 0 {
		arm.OpsPS = float64(a.done) / a.elapsed.Seconds()
	}
	arm.P50, arm.P99 = percentiles(a.lat)
	return arm
}

// CodecAB runs the interleaved wire-codec comparison: the same closed-loop
// quorum put/get workload per arm, alternating which codec goes first each
// round so machine drift cancels, with one discarded warm-up round per
// transport. Loopback rounds reuse the marshalling loopback cluster with
// the registry codec swapped; TCP rounds boot a real-socket cluster whose
// transports negotiated the arm's codec at handshake.
func CodecAB(nodes, clients, opsPerRound, rounds int) CodecBenchResult {
	if nodes <= 0 {
		nodes = 3
	}
	if clients <= 0 {
		clients = 32
	}
	if opsPerRound <= 0 {
		opsPerRound = 3000
	}
	if rounds <= 0 {
		rounds = 3
	}
	res := CodecBenchResult{Nodes: nodes, Clients: clients, OpsRound: opsPerRound, Rounds: rounds}

	const gobName = "gob+zlib"
	const binName = "binary"

	runPair := func(run func(codec string) (uint64, time.Duration, []time.Duration, uint64)) (gob, bin codecArmAcc) {
		measure := func(acc *codecArmAcc, codec string) {
			before := network.GlobalMetrics()
			done, elapsed, lat, failed := run(codec)
			after := network.GlobalMetrics()
			acc.add(done, elapsed, lat, failed, before, after)
		}
		// Warm-up: one short round per codec, discarded. First contact with
		// each path pays one-time costs (gob type registration, pool fills,
		// page faults) that would otherwise bias whichever arm runs first.
		var discard codecArmAcc
		measure(&discard, gobName)
		discard = codecArmAcc{}
		measure(&discard, binName)
		for r := 0; r < rounds; r++ {
			if r%2 == 0 {
				measure(&gob, gobName)
				measure(&bin, binName)
			} else {
				measure(&bin, binName)
				measure(&gob, gobName)
			}
		}
		return gob, bin
	}

	loopRound := func(codec string) (uint64, time.Duration, []time.Duration, uint64) {
		return codecLoopbackRound(nodes, clients, opsPerRound, codec)
	}
	tcpRound := func(codec string) (uint64, time.Duration, []time.Duration, uint64) {
		return codecTCPRound(nodes, clients, opsPerRound, codec)
	}

	loGob, loBin := runPair(loopRound)
	tcGob, tcBin := runPair(tcpRound)

	res.Arms = []CodecBenchArm{
		loGob.finish("loopback", gobName),
		loBin.finish("loopback", binName),
		tcGob.finish("tcp", gobName),
		tcBin.finish("tcp", binName),
	}
	if g := res.Arm("loopback", gobName); g != nil && g.OpsPS > 0 {
		res.LoopbackImprovement = res.Arm("loopback", binName).OpsPS/g.OpsPS - 1
	}
	if g := res.Arm("tcp", gobName); g != nil && g.OpsPS > 0 {
		res.TCPImprovement = res.Arm("tcp", binName).OpsPS/g.OpsPS - 1
	}
	return res
}

// codecLoopbackRound is quorumRound with the loopback registry's wire
// codec parameterized: every frame still round-trips through encode +
// decode, so the measurement isolates codec cost on the quorum path.
func codecLoopbackRound(nodes, clients, ops int, codecName string) (done uint64, elapsed time.Duration, lat []time.Duration, failed uint64) {
	wc, ok := network.CodecByName(codecName)
	if !ok {
		panic("codec bench: unknown codec " + codecName)
	}
	registry := network.NewLoopbackRegistry(network.WithWireCodec(wc))
	host := cats.NewSimulator(cats.LoopbackEnv{Registry: registry}, kvClusterConfig(false))
	rt := core.New(core.WithFaultPolicy(core.LogAndContinue))
	defer rt.Shutdown()
	var exp *core.Port
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		c := ctx.Create("simulator", host)
		exp = c.Provided(cats.ExperimentPortType)
	}))
	rt.WaitQuiescence(5 * time.Second)
	for _, k := range spreadKeys(nodes) {
		_ = core.TriggerOn(exp, cats.JoinNode{Key: k})
		time.Sleep(10 * time.Millisecond)
	}
	waitForRing(rt, host, nodes, 30*time.Second)
	time.Sleep(500 * time.Millisecond)

	_ = core.TriggerOn(exp, cats.StartLoad{
		Clients:      clients,
		TotalOps:     ops,
		ValueSize:    256,
		ReadFraction: 0.5,
		Keys:         64,
	})
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		if m := host.Metrics(); int(m.LoadDone) >= ops {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	rt.WaitQuiescence(5 * time.Second)

	m := host.Metrics()
	return m.LoadDone, m.LoadEnd.Sub(m.LoadStart), m.OpLatencies, 0
}

// codecBenchClient drives sequential closed-loop operations against one
// peer's PutGet port. Responses arrive on the component goroutine; the
// handler forwards only the in-flight request's completion, so concurrent
// clients sharing a coordinator never cross-talk or block the handler.
type codecBenchClient struct {
	target  *core.Port
	ctx     *core.Ctx
	pending atomic.Uint64
	ok      chan bool // buffered(1): true = op succeeded
}

func (c *codecBenchClient) Setup(ctx *core.Ctx) {
	c.ctx = ctx
	c.target = ctx.Requires(abd.PutGetPortType)
	core.Subscribe(ctx, c.target, func(g abd.GetResponse) {
		if g.ReqID == c.pending.Load() {
			c.ok <- g.Err == ""
		}
	})
	core.Subscribe(ctx, c.target, func(p abd.PutResponse) {
		if p.ReqID == c.pending.Load() {
			c.ok <- p.Err == ""
		}
	})
}

// run performs ops alternating put/get over a small key set, recording
// per-op latency. Timeouts surface as abd error responses (the node's
// OpTimeout fires first), so the loop always advances.
func (c *codecBenchClient) run(id, ops int, lat []time.Duration) (out []time.Duration, failed uint64) {
	out = lat
	val := make([]byte, 256)
	for i := 0; i < ops; i++ {
		key := "codec-" + strconv.Itoa((id*7+i)%64)
		reqID := cats.NextReqID()
		c.pending.Store(reqID)
		start := time.Now()
		if i%2 == 0 {
			c.ctx.Trigger(abd.PutRequest{ReqID: reqID, Key: key, Value: val}, c.target)
		} else {
			c.ctx.Trigger(abd.GetRequest{ReqID: reqID, Key: key}, c.target)
		}
		select {
		case ok := <-c.ok:
			if !ok {
				failed++
			}
		case <-time.After(30 * time.Second):
			failed++
		}
		out = append(out, time.Since(start))
	}
	return out, failed
}

// freeCodecAddr reserves a loopback port from the OS.
func freeCodecAddr() network.Address {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic("codec bench: reserve port: " + err.Error())
	}
	port := ln.Addr().(*net.TCPAddr).Port
	_ = ln.Close()
	return network.Address{Host: "127.0.0.1", Port: uint16(port)}
}

// codecTCPRound boots a real-socket cluster whose transports run the
// arm's wire codec (negotiated at connection handshake) and drives the
// closed-loop workload through per-client components.
func codecTCPRound(nodes, clients, ops int, codecName string) (done uint64, elapsed time.Duration, lat []time.Duration, failed uint64) {
	refs := make([]ident.NodeRef, nodes)
	for i := range refs {
		refs[i] = ident.NodeRef{Key: ident.Key(uint64(i+1) << 60), Addr: freeCodecAddr()}
	}

	rt := core.New(core.WithFaultPolicy(core.LogAndContinue))
	defer rt.Shutdown()
	env := cats.TCPEnv{WireCodec: codecName}
	peers := make([]*cats.Peer, nodes)
	cls := make([]*codecBenchClient, clients)
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		comps := make([]*core.Component, nodes)
		for i := range refs {
			cfg := kvClusterConfig(false)
			cfg.Self = refs[i]
			cfg.StabilizePeriod = 100 * time.Millisecond
			cfg.CyclonPeriod = 200 * time.Millisecond
			cfg.WireCodec = codecName
			if i > 0 {
				cfg.Seeds = []ident.NodeRef{refs[0]}
			}
			peers[i] = cats.NewPeer(env, cfg)
			comps[i] = ctx.Create(refs[i].Addr.String(), peers[i])
		}
		for c := range cls {
			cls[c] = &codecBenchClient{ok: make(chan bool, 1)}
			comp := ctx.Create("client-"+strconv.Itoa(c), cls[c])
			ctx.Connect(comps[c%nodes].Provided(abd.PutGetPortType), comp.Required(abd.PutGetPortType))
		}
	}))

	deadline := time.Now().Add(30 * time.Second)
	for {
		joined := 0
		for _, p := range peers {
			if p.Node != nil && p.Node.Ring.Joined() && len(p.Node.Ring.Succs()) > 0 {
				joined++
			}
		}
		if joined == nodes {
			break
		}
		if time.Now().After(deadline) {
			panic("codec bench: TCP ring did not converge")
		}
		time.Sleep(50 * time.Millisecond)
	}
	time.Sleep(500 * time.Millisecond) // membership tables settle

	perClient := ops / clients
	if perClient == 0 {
		perClient = 1
	}
	lats := make([][]time.Duration, clients)
	fails := make([]uint64, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := range cls {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lats[c], fails[c] = cls[c].run(c, perClient, nil)
		}(c)
	}
	wg.Wait()
	elapsed = time.Since(start)

	for c := range lats {
		lat = append(lat, lats[c]...)
		failed += fails[c]
		done += uint64(len(lats[c]))
	}
	done -= failed
	return done, elapsed, lat, failed
}
