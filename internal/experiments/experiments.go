// Package experiments implements the paper's evaluation artifacts as
// reusable experiment functions, shared by the catsbench harness (which
// prints paper-style tables) and the root bench_test.go benchmarks. Each
// experiment corresponds to a row of DESIGN.md §3:
//
//   - Table1: simulated-time compression vs. number of peers.
//   - C1: end-to-end operation latency on an in-process cluster.
//   - C2: aggregate read throughput vs. cluster size.
//   - C3: work-stealing batch-size ablation.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cats"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/scenario"
	"repro/internal/simulation"
)

// simNodeConfig returns the node timings used by the simulation
// experiments (scaled to keep protocol traffic realistic but cheap).
func simNodeConfig() cats.NodeConfig {
	return cats.NodeConfig{
		ReplicationDegree: 3,
		FDInterval:        time.Second,
		StabilizePeriod:   time.Second,
		CyclonPeriod:      2 * time.Second,
		OpTimeout:         2 * time.Second,
		RouterEntryTTL:    30 * time.Second,
		RouterSweepPeriod: 10 * time.Second,
	}
}

// spreadKeys returns n node keys spread evenly around the 2^64 ring.
func spreadKeys(n int) []ident.Key {
	keys := make([]ident.Key, n)
	step := ^uint64(0)/uint64(n) + 1
	for i := range keys {
		keys[i] = ident.Key(uint64(i)*step + 12345)
	}
	return keys
}

// buildSimCluster boots a simulated CATS deployment of n nodes and runs it
// to convergence. It returns the simulation, the network emulator (for
// fault injection), and the simulator host.
func buildSimCluster(seed int64, n int, cfg cats.NodeConfig, opts ...simulation.SimOption) (*simulation.Simulation, *simulation.NetworkEmulator, *cats.Simulator, *core.Port) {
	return buildSimClusterEmu(seed, n, cfg, nil, opts...)
}

// buildSimClusterEmu is buildSimCluster with extra emulator options (e.g.
// a wire-codec round-trip model).
func buildSimClusterEmu(seed int64, n int, cfg cats.NodeConfig, emuOpts []simulation.EmulatorOption, opts ...simulation.SimOption) (*simulation.Simulation, *simulation.NetworkEmulator, *cats.Simulator, *core.Port) {
	sim := simulation.New(seed, opts...)
	emu := simulation.NewNetworkEmulator(sim,
		append([]simulation.EmulatorOption{
			simulation.WithLatency(simulation.UniformLatency(500*time.Microsecond, 2*time.Millisecond)),
		}, emuOpts...)...)
	host := cats.NewSimulator(cats.SimEnv{Sim: sim, Emu: emu}, cfg)
	var exp *core.Port
	sim.Runtime().MustBootstrap("CatsSimulationMain", core.SetupFunc(func(ctx *core.Ctx) {
		c := ctx.Create("simulator", host)
		exp = c.Provided(cats.ExperimentPortType)
	}))
	sim.Run(0)
	// Stagger joins in virtual time so join traffic doesn't stampede.
	for _, k := range spreadKeys(n) {
		_ = core.TriggerOn(exp, cats.JoinNode{Key: k})
		sim.Run(50 * time.Millisecond)
	}
	sim.Run(60 * time.Second) // converge: stabilization + gossip rounds
	return sim, emu, host, exp
}

// Table1Result is one row of the paper's Table 1 reproduction.
type Table1Result struct {
	Peers             int
	SimulatedDuration time.Duration
	WallDuration      time.Duration
	Compression       float64
	DiscreteEvents    uint64
	HandlerExecutions uint64
}

// Table1 measures the time-compression ratio of simulating a system of
// `peers` nodes for simTime of virtual time under a lookup workload (one
// lookup per node per second on average), mirroring the paper's Table 1.
// The setup phase (boot + convergence) is excluded from the measurement,
// as the paper reports steady-state simulation.
func Table1(seed int64, peers int, simTime time.Duration) Table1Result {
	sim, _, host, exp := buildSimCluster(seed, peers, simNodeConfig())

	// Lookup workload: `peers` lookups per simulated second in aggregate.
	lookups := scenario.NewProcess("lookups").
		EventInterArrivalTime(scenario.ExponentialDuration(time.Second / time.Duration(peers)))
	total := int(simTime/time.Second) * peers
	scenario.Raise2(lookups, total,
		func(node, key uint64) core.Event {
			return cats.OpLookup{NodeKey: ident.Key(node), Target: ident.Key(key)}
		},
		func(rng *rand.Rand) uint64 { return rng.Uint64() },
		func(rng *rand.Rand) uint64 { return rng.Uint64() },
	)
	sc := scenario.New().Start(lookups)
	sched, err := sc.Generate(seed)
	if err != nil {
		panic(err)
	}
	scenario.ExecuteSimulated(sim, sched, exp)

	stats := sim.Run(simTime)
	_ = host
	return Table1Result{
		Peers:             peers,
		SimulatedDuration: stats.SimulatedDuration,
		WallDuration:      stats.WallDuration,
		Compression:       stats.Compression(),
		DiscreteEvents:    stats.DiscreteEvents,
		HandlerExecutions: stats.HandlerExecutions,
	}
}

// LatencyResult summarizes experiment C1.
type LatencyResult struct {
	Nodes       int
	Replication int
	ValueSize   int
	Ops         int
	Codec       LatencyCodec
	Mean        time.Duration
	P50         time.Duration
	P99         time.Duration
	Max         time.Duration
	SubMilli    float64 // fraction of ops under 1ms
}

// LatencyCodec selects the serialization model of the latency experiment.
type LatencyCodec int

const (
	// CodecStream uses a persistent gob stream (per-connection codec, type
	// descriptors amortized — the realistic long-lived-connection cost).
	CodecStream LatencyCodec = iota + 1
	// CodecPerMessage re-encodes type descriptors per message.
	CodecPerMessage
	// CodecPerMessageZlib additionally zlib-compresses every message.
	CodecPerMessageZlib
)

func (c LatencyCodec) String() string {
	switch c {
	case CodecStream:
		return "gob-stream"
	case CodecPerMessage:
		return "gob-msg"
	case CodecPerMessageZlib:
		return "gob-msg+zlib"
	default:
		return "unknown"
	}
}

// Latency measures end-to-end put/get latency on a real-time in-process
// cluster over the loopback transport with full marshalling per message —
// the paper's §4.1 sub-millisecond LAN claim (4 one-way latencies, 4×
// serialization, 4× deserialization, plus runtime dispatching, per
// operation). Background protocol periods are relaxed so the measurement
// reflects the operation path, as on the paper's idle LAN cluster.
func Latency(nodes, replication, valueSize, ops int, codec LatencyCodec) LatencyResult {
	var opt network.LoopbackOption
	switch codec {
	case CodecPerMessage:
		opt = network.WithCodec(network.Codec{})
	case CodecPerMessageZlib:
		opt = network.WithCodec(network.Codec{Compress: true})
	default:
		opt = network.WithStreamCodec()
	}
	registry := network.NewLoopbackRegistry(opt)
	cfg := cats.NodeConfig{
		ReplicationDegree: replication,
		FDInterval:        2 * time.Second,
		StabilizePeriod:   time.Second,
		CyclonPeriod:      2 * time.Second,
		OpTimeout:         5 * time.Second,
	}
	host := cats.NewSimulator(cats.LoopbackEnv{Registry: registry}, cfg)
	rt := core.New(core.WithFaultPolicy(core.LogAndContinue))
	defer rt.Shutdown()
	var exp *core.Port
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		c := ctx.Create("simulator", host)
		exp = c.Provided(cats.ExperimentPortType)
	}))
	rt.WaitQuiescence(5 * time.Second)

	for _, k := range spreadKeys(nodes) {
		_ = core.TriggerOn(exp, cats.JoinNode{Key: k})
		time.Sleep(10 * time.Millisecond)
	}
	waitForRing(rt, host, nodes, 30*time.Second)
	time.Sleep(2 * time.Second) // let membership tables converge

	// Closed-loop single client: each op's latency is a clean end-to-end
	// round trip with no queueing from concurrent ops.
	_ = core.TriggerOn(exp, cats.StartLoad{
		Clients:      1,
		TotalOps:     ops,
		ValueSize:    valueSize,
		ReadFraction: 0.5,
		Keys:         64,
	})
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		if m := host.Metrics(); int(m.LoadDone) >= ops {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	rt.WaitQuiescence(10 * time.Second)

	m := host.Metrics()
	lat := append([]time.Duration(nil), m.OpLatencies...)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res := LatencyResult{Nodes: nodes, Replication: replication, ValueSize: valueSize, Ops: len(lat), Codec: codec}
	if len(lat) == 0 {
		return res
	}
	var sum time.Duration
	sub := 0
	for _, d := range lat {
		sum += d
		if d < time.Millisecond {
			sub++
		}
	}
	res.Mean = sum / time.Duration(len(lat))
	res.P50 = lat[len(lat)/2]
	res.P99 = lat[len(lat)*99/100]
	res.Max = lat[len(lat)-1]
	res.SubMilli = float64(sub) / float64(len(lat))
	return res
}

// waitForRing polls until every deployed node reports a joined ring.
func waitForRing(rt *core.Runtime, host *cats.Simulator, nodes int, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		rt.WaitQuiescence(100 * time.Millisecond)
		joined := 0
		for _, ref := range host.AliveNodes() {
			if p, ok := host.Peer(ref.Key); ok && p.Node != nil && p.Node.Ring.Joined() {
				joined++
			}
		}
		if joined >= nodes {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// ScalingResult summarizes one row of experiment C2.
type ScalingResult struct {
	Nodes        int
	Ops          uint64
	Failed       uint64
	ThroughputPS float64 // completed reads per simulated second
	PerNodePS    float64
	MeanLatency  time.Duration
}

// Scaling measures aggregate read throughput of a simulated cluster of n
// nodes under a closed-loop read-intensive workload (95% reads of 1 KiB
// values, clientsPerNode concurrent clients per node), in virtual time —
// the paper's §4.1 claim that CATS scales near-linearly to 96 machines.
// Each node contributes independent capacity in the emulated network, so
// the measured shape isolates the protocol stack's scalability.
func Scaling(seed int64, n, clientsPerNode, opsPerNode int) ScalingResult {
	sim, _, host, exp := buildSimCluster(seed, n, simNodeConfig())
	target := uint64(opsPerNode * n)
	_ = core.TriggerOn(exp, cats.StartLoad{
		Clients:      clientsPerNode * n,
		TotalOps:     int(target),
		ValueSize:    1024,
		ReadFraction: 0.95,
		Keys:         1024,
	})
	// Run in bounded virtual-time slices until the load drains (the
	// cluster's periodic protocol timers re-arm forever, so an unbounded
	// run would never return).
	for i := 0; i < 10_000 && host.Metrics().LoadDone < target; i++ {
		sim.Run(time.Second)
	}
	m := host.Metrics()
	var mean time.Duration
	if m.LoadDone > 0 {
		mean = m.LoadLatencySum / time.Duration(m.LoadDone)
	}
	return ScalingResult{
		Nodes:        n,
		Ops:          m.LoadDone,
		Failed:       m.GetsFailed + m.PutsFailed,
		ThroughputPS: m.LoadThroughput(),
		PerNodePS:    m.LoadThroughput() / float64(n),
		MeanLatency:  mean,
	}
}

// StealingResult summarizes one row of experiment C3.
type StealingResult struct {
	Workers     int
	Batch       string
	Events      int
	Wall        time.Duration
	EventsPerMS float64
	Steals      uint64
	Stolen      uint64
}

// Stealing measures scheduler throughput under maximal placement imbalance
// (every externally scheduled component lands on worker 0's deque; all other
// workers must steal) with the given steal-batch policy — the paper's §3
// claim that batching (stealing half the victim's queue) considerably
// outperforms stealing single components. With the array-based deques a
// batch steal claims the whole range in a single CAS of the victim's top
// index, so Steals counts one operation per transferred batch rather than
// per transferred component.
func Stealing(workers, components, eventsPerComponent int, batchHalf bool) StealingResult {
	batch := func(n int64) int64 { return 1 }
	label := "one"
	if batchHalf {
		batch = func(n int64) int64 { return n / 2 }
		label = "half"
	}
	sched := core.NewWorkStealingScheduler(workers,
		core.WithStealBatch(batch),
		core.WithPlacement(func(seq uint64, w int) int { return 0 }),
	)
	rt := core.New(core.WithScheduler(sched), core.WithFaultPolicy(core.LogAndContinue))
	defer rt.Shutdown()

	var done atomic.Int64
	total := components * eventsPerComponent
	var wg sync.WaitGroup
	wg.Add(1)
	ports := make([]*core.Port, components)
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		for i := 0; i < components; i++ {
			c := ctx.Create(fmt.Sprintf("c%d", i), core.SetupFunc(func(cx *core.Ctx) {
				p := cx.Provides(benchPort)
				core.Subscribe(cx, p, func(benchEvent) {
					spin(200)
					if done.Add(1) == int64(total) {
						wg.Done()
					}
				})
			}))
			ports[i] = c.Provided(benchPort)
		}
	}))
	rt.WaitQuiescence(5 * time.Second)

	start := time.Now()
	for e := 0; e < eventsPerComponent; e++ {
		for i := 0; i < components; i++ {
			_ = core.TriggerOn(ports[i], benchEvent{})
		}
	}
	wg.Wait()
	wall := time.Since(start)
	_, steals, stolen := sched.Stats()
	return StealingResult{
		Workers:     workers,
		Batch:       label,
		Events:      total,
		Wall:        wall,
		EventsPerMS: float64(total) / float64(wall.Milliseconds()+1),
		Steals:      steals,
		Stolen:      stolen,
	}
}

// benchEvent is the unit of scheduler work in microbenchmarks.
type benchEvent struct{}

// benchPort is the microbenchmark port type.
var benchPort = core.NewPortType("Bench",
	core.Request[benchEvent](),
)

// spin burns a few nanoseconds of CPU per event, standing in for handler
// work.
//
//go:noinline
func spin(n int) {
	acc := 0
	for i := 0; i < n; i++ {
		acc += i
	}
	_ = acc
}
