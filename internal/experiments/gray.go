// Gray-failure scenario and hedging benchmark. Where the churn scenario
// kills nodes outright, Gray injects *slowness*: replicas that answer
// every ping but stall every quorum phase they serve. The scenario proves
// the resilience layer end to end — adaptive attempt budgets fire hedge
// checkpoints, hedged duplicates win races against pulsed stragglers,
// replica admission control sheds a synchronized burst and the shed ops
// recover through jittered redelivery — while the usual chaos gates
// (linearizability, zero lost acked writes) still hold. HedgeBench is the
// A/B half: the same straggler workload with hedging off vs on, in
// virtual time, so the p99 tail comparison is machine-independent.
package experiments

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/abd"
	"repro/internal/cats"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/linear"
	"repro/internal/network"
	"repro/internal/simulation"
	"repro/internal/tracing"
)

// GrayConfig parameterizes the gray-failure scenario.
type GrayConfig struct {
	Nodes     int           // cluster size (default 5)
	WarmOps   int           // estimator warm-up ops before any fault (default 12)
	Pulses    int           // straggler pulses aimed at the hedge group (default 6)
	SlowExtra time.Duration // extra one-way latency during a pulse (default 300ms)
	PulseLen  time.Duration // pulse duration (default 2ms — shorter than a hedge checkpoint)
	BurstOps  int           // synchronized op burst that must trip admission control (default 40)
	BurstKeys int           // distinct keys the burst spreads over (default 6)
	Tail      time.Duration // settle time before the audit reads (default 12s)

	// ShedServeRate caps quorum phases served per replica per 10ms window
	// (default 5) — low enough that the synchronized burst sheds, high
	// enough that the paced warm-up and pulse ops never do.
	ShedServeRate int
}

func (c *GrayConfig) applyDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 5
	}
	if c.WarmOps <= 0 {
		c.WarmOps = 12
	}
	if c.Pulses <= 0 {
		c.Pulses = 6
	}
	if c.SlowExtra <= 0 {
		c.SlowExtra = 300 * time.Millisecond
	}
	if c.PulseLen <= 0 {
		c.PulseLen = 2 * time.Millisecond
	}
	if c.BurstOps <= 0 {
		c.BurstOps = 40
	}
	if c.BurstKeys <= 0 {
		c.BurstKeys = 6
	}
	if c.Tail <= 0 {
		c.Tail = 12 * time.Second
	}
	if c.ShedServeRate <= 0 {
		c.ShedServeRate = 5
	}
}

// GrayResult reports the scenario outcome.
type GrayResult struct {
	Nodes int

	AckedPuts, FailedPuts int
	OKGets, FailedGets    int
	UnresolvedOps         int

	// Resilience activity (deltas of the process-wide counters).
	Retries      uint64
	Hedges       uint64
	HedgeWins    uint64
	Sheds        uint64
	Redeliveries uint64
	SlowHints    uint64 // summed over the cluster's failure detectors
	SlowWindows  uint64 // gray injections applied by the emulator
	SlowDelayed  uint64 // messages the emulator delayed inside one

	Linearizable       bool
	NonLinearizableKey string
	LostAckedWrites    int
	LostKeys           []string

	SimulatedDuration time.Duration
	DiscreteEvents    uint64
	HandlerExecutions uint64

	TraceSpans     int
	TraceTimelines int
	TraceDigest    uint64
	Timelines      []tracing.Timeline
}

// keyOwnedBy searches deterministic key strings until one hashes into the
// ring span owned by nodeKeys[idx] — i.e. its replica group starts there.
func keyOwnedBy(nodeKeys []ident.Key, idx int, prefix string) string {
	refs := make([]ident.NodeRef, len(nodeKeys))
	for i, k := range nodeKeys {
		refs[i] = ident.NodeRef{Key: k}
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Key < refs[j].Key })
	want := nodeKeys[idx]
	for i := 0; ; i++ {
		s := prefix + "-" + strconv.Itoa(i)
		if ident.SuccessorOf(refs, ident.KeyOfString(s)).Key == want {
			return s
		}
	}
}

// Gray runs the gray-failure scenario: a simulated CATS cluster serving
// quorum traffic while the emulator injects straggler pulses (slow, never
// dead, nodes) at a replica group held one ack short of quorum, and a
// synchronized op burst tripping replica admission control. It gates the
// same invariants as the chaos scenario — linearizable history, zero lost
// acked writes — plus evidence the resilience layer actually engaged:
// hedges fired and sheds happened.
func Gray(seed int64, cfg GrayConfig, simOpts ...simulation.SimOption) GrayResult {
	cfg.applyDefaults()

	ring := tracing.NewRing(1 << 16)
	prevRing := tracing.SwapDefault(ring)
	prevSample := tracing.SetSampleEvery(1)
	defer func() {
		tracing.SetSampleEvery(prevSample)
		tracing.SwapDefault(prevRing)
	}()

	nodeCfg := simNodeConfig()
	// A 2ms deadline floor keeps adaptive budgets meaningful at the
	// emulator's sub-millisecond latencies (the default floor, OpTimeout/20
	// = 100ms, would swamp them), and the serve-rate cap arms admission
	// control on every replica.
	nodeCfg.DeadlineFloor = 2 * time.Millisecond
	nodeCfg.ShedServeRate = cfg.ShedServeRate

	resBefore := abd.GlobalResilienceMetrics()

	sim, emu, host, exp := buildSimCluster(seed, cfg.Nodes, nodeCfg, simOpts...)
	host.RecordOps = true

	nodeKeys := spreadKeys(cfg.Nodes)
	rng := rand.New(rand.NewSource(seed ^ 0x67726179)) // "gray"

	// Geometry: the hedge group is the replica group of a key owned by
	// node hIdx — members {hIdx, hIdx+1, hIdx+2}. The coordinator is hIdx
	// itself (its self-phase acks instantly), and the pulses slow the other
	// two members, stalling every phase at quorum-minus-one.
	n := cfg.Nodes
	hIdx := rng.Intn(n)
	hedgeKey := keyOwnedBy(nodeKeys, hIdx, "gray-hedge")
	hCoord := nodeKeys[hIdx]
	slowA := ident.NodeRef{Key: nodeKeys[(hIdx+1)%n]}
	slowB := ident.NodeRef{Key: nodeKeys[(hIdx+2)%n]}
	var slowAddrA, slowAddrB = refAddr(host, slowA.Key), refAddr(host, slowB.Key)

	// Phase 1 — warm-up: paced ops on the hedge key from the hedge
	// coordinator, so its estimators for the group members converge well
	// below the deadline ceiling before the first pulse.
	warmSpacing := 150 * time.Millisecond
	for i := 0; i < cfg.WarmOps; i++ {
		at := time.Duration(i) * warmSpacing
		if i == 0 || i%4 == 0 {
			val := []byte("warm-" + strconv.Itoa(i))
			scheduleOp(sim, exp, at, cats.OpPut{NodeKey: hCoord, Key: hedgeKey, Value: val})
		} else {
			scheduleOp(sim, exp, at, cats.OpGet{NodeKey: hCoord, Key: hedgeKey})
		}
	}
	warmEnd := time.Duration(cfg.WarmOps) * warmSpacing

	// Phase 2 — straggler pulses: both non-coordinator group members turn
	// slow for PulseLen, and a get is issued at the pulse instant. Its
	// phase messages to them are delayed by SlowExtra; the self ack holds
	// the phase at quorum-minus-one; the adaptive hedge checkpoint lands
	// after the pulse expired, so the hedged duplicate travels fast and
	// wins the race while the originals are still in flight.
	pulseSpacing := 500 * time.Millisecond
	for i := 0; i < cfg.Pulses; i++ {
		at := warmEnd + time.Second + time.Duration(i)*pulseSpacing
		extra, plen := cfg.SlowExtra, cfg.PulseLen
		sim.ScheduleAt(at, "gray:pulse", func() {
			emu.SlowNode(slowAddrA, extra, plen)
			emu.SlowNode(slowAddrB, extra, plen)
		})
		scheduleOp(sim, exp, at, cats.OpGet{NodeKey: hCoord, Key: hedgeKey})
	}
	pulseEnd := warmEnd + time.Second + time.Duration(cfg.Pulses)*pulseSpacing

	// Phase 3 — synchronized burst: BurstOps ops issued at one virtual
	// instant from one coordinator. Each replica covering the burst keys
	// sees far more phases inside one shed window than the serve-rate cap
	// allows and sheds the excess; the shed ops recover through jittered
	// redelivery and backoff retries during the tail.
	burstAt := pulseEnd + time.Second
	bCoord := nodeKeys[(hIdx+3)%n]
	burstKeys := make([]string, cfg.BurstKeys)
	for k := range burstKeys {
		burstKeys[k] = "gray-burst-" + strconv.Itoa(k)
	}
	for i := 0; i < cfg.BurstOps; i++ {
		key := burstKeys[i%len(burstKeys)]
		if i < len(burstKeys) || rng.Float64() < 0.5 {
			val := []byte("burst-" + strconv.Itoa(i))
			scheduleOp(sim, exp, burstAt, cats.OpPut{NodeKey: bCoord, Key: key, Value: val})
		} else {
			scheduleOp(sim, exp, burstAt, cats.OpGet{NodeKey: bCoord, Key: key})
		}
	}

	mainStats := sim.Run(burstAt + cfg.Tail)

	// Audit: one read per key must observe an acknowledged value.
	preAudit := len(host.OpHistory())
	auditKeys := append([]string{hedgeKey}, burstKeys...)
	for i, key := range auditKeys {
		k := key
		coord := nodeKeys[i%n]
		sim.ScheduleAt(0, "gray:audit", func() {
			_ = core.TriggerOn(exp, cats.OpGet{NodeKey: coord, Key: k})
		})
	}
	auditStats := sim.Run(nodeCfg.OpTimeout * 4)

	history := host.OpHistory()
	unresolved := host.UnresolvedOps()
	res := GrayResult{
		Nodes:             cfg.Nodes,
		UnresolvedOps:     len(unresolved),
		SimulatedDuration: mainStats.SimulatedDuration + auditStats.SimulatedDuration,
		DiscreteEvents:    mainStats.DiscreteEvents + auditStats.DiscreteEvents,
		HandlerExecutions: mainStats.HandlerExecutions + auditStats.HandlerExecutions,
	}
	resAfter := abd.GlobalResilienceMetrics()
	res.Retries = resAfter.Retries - resBefore.Retries
	res.Hedges = resAfter.Hedges - resBefore.Hedges
	res.HedgeWins = resAfter.HedgeWins - resBefore.HedgeWins
	res.Sheds = resAfter.Sheds - resBefore.Sheds
	res.Redeliveries = resAfter.Redeliveries - resBefore.Redeliveries
	res.SlowWindows, res.SlowDelayed = emu.GrayStats()
	for _, ref := range host.AliveNodes() {
		if p, ok := host.Peer(ref.Key); ok && p.Node != nil {
			res.SlowHints += p.Node.FD.SlowHints()
		}
	}

	// Linearizability history, exactly as the churn scenario builds it.
	hist := make(map[string][]linear.Op)
	ackedVals := make(map[string]map[string]bool)
	addPut := func(r cats.OpRecord, end int64) {
		hist[r.Key] = append(hist[r.Key], linear.Op{
			Kind: linear.Write, Value: r.Value, Start: r.Start.UnixNano(), End: end,
		})
	}
	for _, r := range history {
		switch r.Kind {
		case "put":
			if r.OK {
				res.AckedPuts++
				if ackedVals[r.Key] == nil {
					ackedVals[r.Key] = make(map[string]bool)
				}
				ackedVals[r.Key][r.Value] = true
				addPut(r, r.End.UnixNano())
			} else {
				res.FailedPuts++
				addPut(r, math.MaxInt64)
			}
		case "get":
			if r.OK {
				res.OKGets++
				hist[r.Key] = append(hist[r.Key], linear.Op{
					Kind: linear.Read, Value: r.Value, Found: r.Found,
					Start: r.Start.UnixNano(), End: r.End.UnixNano(),
				})
			} else {
				res.FailedGets++
			}
		}
	}
	for _, r := range unresolved {
		if r.Kind == "put" {
			addPut(r, math.MaxInt64)
		}
	}
	res.Linearizable, res.NonLinearizableKey = linear.CheckPerKey(hist)

	finalRead := make(map[string]cats.OpRecord)
	for _, r := range history[preAudit:] {
		if r.Kind == "get" {
			finalRead[r.Key] = r
		}
	}
	for _, key := range auditKeys {
		if len(ackedVals[key]) == 0 {
			continue
		}
		r, ok := finalRead[key]
		if !ok || !r.OK || !r.Found {
			res.LostAckedWrites++
			res.LostKeys = append(res.LostKeys, key)
		}
	}

	res.Timelines = tracing.Assemble(ring.Snapshot())
	res.TraceTimelines = len(res.Timelines)
	for _, tl := range res.Timelines {
		res.TraceSpans += len(tl.Spans)
	}
	res.TraceDigest = TimelineDigest(res.Timelines)
	return res
}

// scheduleOp schedules one experiment op at a virtual-time offset.
func scheduleOp(sim *simulation.Simulation, exp *core.Port, at time.Duration, ev core.Event) {
	sim.ScheduleAt(at, "gray:op", func() { _ = core.TriggerOn(exp, ev) })
}

// refAddr resolves a node key to its emulated transport address.
func refAddr(host *cats.Simulator, key ident.Key) (addr network.Address) {
	for _, ref := range host.AliveNodes() {
		if ref.Key == key {
			return ref.Addr
		}
	}
	return
}

// --- hedge A/B benchmark ---------------------------------------------------------

// HedgeBenchConfig parameterizes the straggler A/B benchmark.
type HedgeBenchConfig struct {
	WarmOps   int           // estimator warm-up ops (default 16)
	Ops       int           // measured pulsed ops per arm (default 40)
	SlowExtra time.Duration // straggler extra latency per pulse (default 300ms)
	PulseLen  time.Duration // pulse duration (default 2ms)
}

func (c *HedgeBenchConfig) applyDefaults() {
	if c.WarmOps <= 0 {
		c.WarmOps = 16
	}
	if c.Ops <= 0 {
		c.Ops = 40
	}
	if c.SlowExtra <= 0 {
		c.SlowExtra = 300 * time.Millisecond
	}
	if c.PulseLen <= 0 {
		c.PulseLen = 2 * time.Millisecond
	}
}

// HedgeArm is one arm's latency profile over the pulsed ops, in virtual
// time (deterministic per seed, machine-independent).
type HedgeArm struct {
	Ops    int
	Failed int
	P50    time.Duration
	P99    time.Duration
	Max    time.Duration
}

// HedgeBenchResult is the A/B comparison plus the hedge activity observed
// in the hedging-on arm.
type HedgeBenchResult struct {
	Off HedgeArm // hedging disabled
	On  HedgeArm // hedging enabled
	// Hedges/HedgeWins fired during the On arm (process-wide deltas).
	Hedges    uint64
	HedgeWins uint64
	// P99Improvement is Off.P99 / On.P99 (higher is better; > 1 means
	// hedging shortened the tail).
	P99Improvement float64
}

// HedgeBench measures tail latency under a gray-failing replica with
// hedging off vs on. A two-node cluster makes every replica group both
// nodes (quorum two): pulsing the non-coordinator slow holds every phase
// at quorum-minus-one, which is precisely the hedge trigger. With hedging
// off the op must ride out the delayed original (or an attempt timeout +
// backoff); with hedging on the checkpoint fires after the pulse expired
// and the fast duplicate completes the quorum.
func HedgeBench(seed int64, cfg HedgeBenchConfig) HedgeBenchResult {
	cfg.applyDefaults()
	var res HedgeBenchResult
	res.Off = hedgeArm(seed, cfg, true)
	mid := abd.GlobalResilienceMetrics()
	res.On = hedgeArm(seed, cfg, false)
	resAfter := abd.GlobalResilienceMetrics()
	res.Hedges = resAfter.Hedges - mid.Hedges
	res.HedgeWins = resAfter.HedgeWins - mid.HedgeWins
	if res.On.P99 > 0 {
		res.P99Improvement = float64(res.Off.P99) / float64(res.On.P99)
	}
	return res
}

// hedgeArm runs one arm of the A/B: same seed, same pulse schedule, only
// the NoHedge knob differs.
func hedgeArm(seed int64, cfg HedgeBenchConfig, noHedge bool) HedgeArm {
	nodeCfg := simNodeConfig()
	nodeCfg.DeadlineFloor = 2 * time.Millisecond
	nodeCfg.NoHedge = noHedge

	sim, emu, host, exp := buildSimCluster(seed, 2, nodeCfg)
	host.RecordOps = true

	nodeKeys := spreadKeys(2)
	// Coordinator: node 0. Straggler: node 1. Every key's replica group is
	// both nodes, so any key works; the coordinator's self-phase acks
	// instantly and the remote is the lone straggler.
	coord := nodeKeys[0]
	slowAddr := refAddr(host, nodeKeys[1])
	key := "hedge-bench"

	warmSpacing := 150 * time.Millisecond
	scheduleOp(sim, exp, 0, cats.OpPut{NodeKey: coord, Key: key, Value: []byte("seed")})
	for i := 1; i < cfg.WarmOps; i++ {
		scheduleOp(sim, exp, time.Duration(i)*warmSpacing, cats.OpGet{NodeKey: coord, Key: key})
	}
	warmEnd := time.Duration(cfg.WarmOps) * warmSpacing

	pulseSpacing := 500 * time.Millisecond
	for i := 0; i < cfg.Ops; i++ {
		at := warmEnd + time.Second + time.Duration(i)*pulseSpacing
		extra, plen := cfg.SlowExtra, cfg.PulseLen
		sim.ScheduleAt(at, "hedge:pulse", func() { emu.SlowNode(slowAddr, extra, plen) })
		scheduleOp(sim, exp, at, cats.OpGet{NodeKey: coord, Key: key})
	}

	preMeasure := cfg.WarmOps // history index where the pulsed ops start
	sim.Run(warmEnd + time.Second + time.Duration(cfg.Ops)*pulseSpacing + nodeCfg.OpTimeout*4)

	history := host.OpHistory()
	var lat []time.Duration
	arm := HedgeArm{}
	for _, r := range history {
		if r.Kind != "get" {
			continue
		}
		if !r.OK {
			arm.Failed++
			continue
		}
		lat = append(lat, r.End.Sub(r.Start))
	}
	// Drop the warm-up gets (completion order tracks issue order here: the
	// workload is strictly sequential in virtual time).
	if len(lat) > preMeasure-1 {
		lat = lat[preMeasure-1:]
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	arm.Ops = len(lat)
	if len(lat) == 0 {
		return arm
	}
	arm.P50 = lat[len(lat)/2]
	arm.P99 = lat[len(lat)*99/100]
	arm.Max = lat[len(lat)-1]
	return arm
}
