package experiments

import (
	"reflect"
	"testing"
)

// TestGraySurvivesStragglers is the gray-failure gate: straggler pulses and
// a shed-inducing burst must leave the history linearizable with zero lost
// acked writes, AND the resilience machinery must demonstrably engage —
// hedges fired (with wins) and replicas shed load that later recovered.
func TestGraySurvivesStragglers(t *testing.T) {
	for _, seed := range []int64{3, 77, 4242} {
		r := Gray(seed, GrayConfig{})
		if r.SlowWindows == 0 || r.SlowDelayed == 0 {
			t.Errorf("seed %d: gray faults not injected: windows=%d delayed=%d", seed, r.SlowWindows, r.SlowDelayed)
		}
		if r.AckedPuts == 0 {
			t.Errorf("seed %d: no acknowledged writes; scenario proved nothing", seed)
		}
		if !r.Linearizable {
			t.Errorf("seed %d: history not linearizable (key %q)", seed, r.NonLinearizableKey)
		}
		if r.LostAckedWrites != 0 {
			t.Errorf("seed %d: %d keys lost acknowledged writes (%v)", seed, r.LostAckedWrites, r.LostKeys)
		}
		if r.Hedges == 0 {
			t.Errorf("seed %d: no hedges fired — straggler pulses had no effect", seed)
		}
		if r.HedgeWins == 0 {
			t.Errorf("seed %d: hedges fired but never won a race", seed)
		}
		if r.Sheds == 0 {
			t.Errorf("seed %d: burst tripped no admission control", seed)
		}
		if r.Sheds > 0 && r.Redeliveries == 0 {
			t.Errorf("seed %d: sheds happened but nothing was redelivered", seed)
		}
		t.Logf("seed %d: acked_puts=%d ok_gets=%d failed=%d/%d unresolved=%d hedges=%d wins=%d sheds=%d redeliveries=%d retries=%d slow_hints=%d delayed=%d",
			seed, r.AckedPuts, r.OKGets, r.FailedPuts, r.FailedGets, r.UnresolvedOps,
			r.Hedges, r.HedgeWins, r.Sheds, r.Redeliveries, r.Retries, r.SlowHints, r.SlowDelayed)
	}
}

// TestGrayDeterministic pins that the gray scenario — pulse times, burst
// outcomes, hedge/shed counts, trace digest — replays identically from one
// seed. (Counter deltas make the process-wide metrics comparable across
// runs.)
func TestGrayDeterministic(t *testing.T) {
	a := Gray(9, GrayConfig{})
	b := Gray(9, GrayConfig{})
	a.Timelines, b.Timelines = nil, nil // digest covers them
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n  run A: %+v\n  run B: %+v", a, b)
	}
}

// TestHedgeBenchImproves pins the A/B result: with a gray-failing replica,
// hedging must strictly shorten the p99 tail, and the improvement must come
// from actual hedges (inert-gate detection).
func TestHedgeBenchImproves(t *testing.T) {
	r := HedgeBench(5, HedgeBenchConfig{})
	if r.Off.Ops == 0 || r.On.Ops == 0 {
		t.Fatalf("arm produced no measured ops: off=%d on=%d", r.Off.Ops, r.On.Ops)
	}
	if r.Off.Failed > 0 || r.On.Failed > 0 {
		t.Errorf("measured ops failed: off=%d on=%d", r.Off.Failed, r.On.Failed)
	}
	if r.Hedges == 0 {
		t.Fatalf("hedging arm fired no hedges — benchmark is inert")
	}
	if r.On.P99 >= r.Off.P99 {
		t.Errorf("hedging did not improve p99: off=%v on=%v", r.Off.P99, r.On.P99)
	}
	t.Logf("off: p50=%v p99=%v max=%v | on: p50=%v p99=%v max=%v | hedges=%d wins=%d improvement=%.1fx",
		r.Off.P50, r.Off.P99, r.Off.Max, r.On.P50, r.On.P99, r.On.Max,
		r.Hedges, r.HedgeWins, r.P99Improvement)
}
