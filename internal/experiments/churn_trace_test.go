package experiments

import (
	"testing"

	"repro/internal/tracing"
)

// TestChurnTraceAcceptance pins the tracing acceptance criterion for the
// chaos scenario: an operation that crosses an epoch restart (and the
// handoff window behind it) must assemble into ONE timeline carrying spans
// from at least two nodes with intact parent and restart links, and the
// whole trace set must replay identically from the seed.
func TestChurnTraceAcceptance(t *testing.T) {
	a := Churn(3, ChurnConfig{})
	b := Churn(3, ChurnConfig{})
	if a.TraceDigest == 0 || a.TraceDigest != b.TraceDigest {
		t.Fatalf("trace digest not deterministic: %016x vs %016x", a.TraceDigest, b.TraceDigest)
	}
	if a.TraceSpans == 0 || a.TraceTimelines == 0 {
		t.Fatalf("chaos run recorded no spans (spans=%d timelines=%d)", a.TraceSpans, a.TraceTimelines)
	}
	if a.CrossNodeTraces == 0 {
		t.Fatalf("no timeline joined spans from >= 2 nodes out of %d", a.TraceTimelines)
	}
	if a.RestartTraces == 0 {
		t.Fatalf("no timeline crossed an epoch restart out of %d — chaos stopped exercising restarts", a.TraceTimelines)
	}

	// A clean run must not implicate anything.
	if v := a.ViolationTimelines(); len(v) != 0 {
		t.Fatalf("clean run cited %d violation timelines", len(v))
	}

	// Find a completed client op (not a handoff round) that restarted
	// across epochs AND touched >= 2 nodes, then check its structural
	// integrity. Only completed ("ok") ops are held to full link
	// integrity: an op cut off mid-flight by a crash can legitimately
	// leave dangling children.
	var hit *tracing.Timeline
	for i := range a.Timelines {
		tl := &a.Timelines[i]
		if (tl.Name == "put" || tl.Name == "get") &&
			tl.Restarts >= 1 && len(tl.Nodes) >= 2 && tl.Outcome == "ok" {
			hit = tl
			break
		}
	}
	if hit == nil {
		t.Fatalf("no completed cross-node timeline with an epoch restart (timelines=%d restart=%d crossnode=%d)",
			a.TraceTimelines, a.RestartTraces, a.CrossNodeTraces)
	}
	checkTimelineIntegrity(t, *hit)
	t.Logf("acceptance timeline: trace=%s %s key=%s restarts=%d nodes=%v spans=%d",
		hit.TraceHex, hit.Name, hit.Key, hit.Restarts, hit.Nodes, len(hit.Spans))
}

// checkTimelineIntegrity verifies one assembled timeline's span tree:
// exactly one root, every parent and restart link resolves inside the
// timeline, restart links point at earlier sibling attempts, and span
// starts never precede their parent's start (monotone phase ordering).
func checkTimelineIntegrity(t *testing.T, tl tracing.Timeline) {
	t.Helper()
	byID := make(map[uint64]tracing.Span, len(tl.Spans))
	roots := 0
	for _, s := range tl.Spans {
		if s.Trace != tl.Trace {
			t.Errorf("span %016x from foreign trace %016x", s.ID, s.Trace)
		}
		byID[s.ID] = s
		if s.Parent == 0 {
			roots++
		}
	}
	if roots != 1 {
		t.Errorf("timeline %s has %d roots, want exactly 1", tl.TraceHex, roots)
	}
	for _, s := range tl.Spans {
		if s.Parent != 0 {
			p, ok := byID[s.Parent]
			if !ok {
				t.Errorf("span %016x (%s) has dangling parent %016x", s.ID, s.Name, s.Parent)
				continue
			}
			if s.Start.Before(p.Start) {
				t.Errorf("span %016x (%s) starts before its parent %s", s.ID, s.Name, p.Name)
			}
		}
		if s.Link != 0 {
			prev, ok := byID[s.Link]
			if !ok {
				t.Errorf("span %016x (%s) has dangling restart link %016x", s.ID, s.Name, s.Link)
				continue
			}
			if prev.Name != s.Name {
				t.Errorf("restart link crosses span kinds: %s -> %s", s.Name, prev.Name)
			}
			if s.Start.Before(prev.Start) {
				t.Errorf("restarted %s starts before the attempt it supersedes", s.Name)
			}
		}
	}
}
