package experiments

import (
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/cats"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/kvstore"
)

// TestRecoveryFullClusterRestart is the in-process (tier-1) slice of the
// recovery gate: a durable cluster takes acked writes, EVERY node is
// destroyed (no leave protocol — queues dropped, stores closed by the
// Stop cascade), and a brand-new cluster built over the same data
// directories must recover the registers from snapshot + WAL and answer
// reads. The out-of-process SIGKILL variant (catssim -mode recovery)
// additionally proves this with no clean Close at all.
func TestRecoveryFullClusterRestart(t *testing.T) {
	root := t.TempDir()
	keys := spreadKeys(4)

	cfg := recoveryNodeConfig(1 << 10)
	sim, _, host, exp := buildDurableSimCluster(11, keys, cfg, root, nil)

	const nkeys = 6
	for k := 0; k < nkeys; k++ {
		for seq := 0; seq < 3; seq++ {
			key, val := "restart-"+strconv.Itoa(k), []byte("val-"+strconv.Itoa(k)+"-"+strconv.Itoa(seq))
			kk, ss := k, seq
			sim.ScheduleAt(time.Duration(k*300+seq*900)*time.Millisecond, "test:put", func() {
				_ = core.TriggerOn(exp, cats.OpPut{
					NodeKey: ident.Key(uint64(kk*7+ss) * 1e15),
					Key:     key, Value: val,
				})
			})
		}
	}
	sim.Run(20 * time.Second)
	if m := host.Metrics(); m.PutsOK == 0 {
		t.Fatalf("no put was acked before the restart: %+v", m)
	}
	acked := host.Metrics().PutsOK

	// Whole-cluster stop: destroy every node. The Stop cascade closes
	// each durable store, releasing the WAL files for the next cluster.
	for _, ref := range host.AliveNodes() {
		_ = core.TriggerOn(exp, cats.FailNode{Key: ref.Key})
	}
	sim.Run(time.Second)
	if host.AliveCount() != 0 {
		t.Fatalf("cluster still has %d alive nodes after destroy-all", host.AliveCount())
	}

	// A different process would discover membership from the directories;
	// do the same here.
	nodeKeys, err := discoverNodeDirs(root)
	if err != nil || len(nodeKeys) != len(keys) {
		t.Fatalf("discoverNodeDirs = %v, %v; want %d keys", nodeKeys, err, len(keys))
	}

	sim2, _, host2, exp2 := buildDurableSimCluster(12, nodeKeys, cfg, root, nil)
	recoveredKeys, walReplayed, snapEntries := 0, 0, 0
	for _, ref := range host2.AliveNodes() {
		p, ok := host2.Peer(ref.Key)
		if !ok || p.Node == nil {
			t.Fatalf("no peer for recovered node %v", ref)
		}
		rec := p.Node.Store().Recovery()
		recoveredKeys += rec.Keys
		walReplayed += rec.WALEntries
		snapEntries += rec.SnapshotEntries
		if rec.TornTails != 0 {
			t.Errorf("node %v recovered %d torn tails from a cleanly closed log", ref, rec.TornTails)
		}
	}
	if recoveredKeys == 0 || walReplayed+snapEntries == 0 {
		t.Fatalf("second cluster recovered nothing: keys=%d wal=%d snap=%d (acked %d puts)",
			recoveredKeys, walReplayed, snapEntries, acked)
	}

	for k := 0; k < nkeys; k++ {
		key := "restart-" + strconv.Itoa(k)
		kk := k
		sim2.ScheduleAt(0, "test:get", func() {
			_ = core.TriggerOn(exp2, cats.OpGet{NodeKey: ident.Key(uint64(kk) * 1e17), Key: key})
		})
	}
	sim2.Run(10 * time.Second)
	m2 := host2.Metrics()
	if m2.GetsOK != nkeys || m2.GetsFailed != 0 {
		t.Fatalf("audit after restart: gets ok=%d failed=%d, want %d/0", m2.GetsOK, m2.GetsFailed, nkeys)
	}
}

// TestHistoryLogRoundtrip pins the fsynced history log format: every
// completion comes back verbatim, and invocations without a matching
// completion come back as unresolved.
func TestHistoryLogRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.log")
	l, err := openHistoryLog(path)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(0, 1000)
	t1 := time.Unix(0, 2000)
	// put a=1 invoked and acked; put a=2 invoked, never resolved (the
	// SIGKILL case); get invoked and resolved.
	l.append(cats.OpRecord{Kind: "put", Key: "a", Value: "1", Start: t0})
	l.append(cats.OpRecord{Kind: "put", Key: "a", Value: "1", OK: true, Start: t0, End: t1})
	l.append(cats.OpRecord{Kind: "put", Key: "a", Value: "2", Start: t1})
	l.append(cats.OpRecord{Kind: "get", Key: "a", Start: t0})
	l.append(cats.OpRecord{Kind: "get", Key: "a", Value: "1", OK: true, Found: true, Start: t0, End: t1})

	resolved, unresolved, err := readHistoryLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(resolved) != 2 {
		t.Fatalf("resolved = %+v, want 2 records", resolved)
	}
	if r := resolved[0]; r.Kind != "put" || r.Key != "a" || r.Value != "1" || !r.OK || r.End != t1 {
		t.Fatalf("resolved put = %+v", r)
	}
	if r := resolved[1]; r.Kind != "get" || r.Value != "1" || !r.Found {
		t.Fatalf("resolved get = %+v", r)
	}
	if len(unresolved) != 1 || unresolved[0].Value != "2" || !unresolved[0].End.IsZero() {
		t.Fatalf("unresolved = %+v, want the in-flight put a=2", unresolved)
	}
}

// TestRecoverySyncPolicyFlagRoundtrip pins the catsnode flag spellings.
func TestRecoverySyncPolicyFlagRoundtrip(t *testing.T) {
	for _, p := range []kvstore.SyncPolicy{kvstore.SyncAlways, kvstore.SyncInterval, kvstore.SyncNever} {
		got, err := kvstore.ParseSyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := kvstore.ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
}
