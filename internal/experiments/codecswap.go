package experiments

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/cats"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/linear"
	"repro/internal/simulation"
	"repro/internal/tracing"
)

// CodecSwapConfig parameterizes the live codec-swap chaos scenario: a
// simulated CATS cluster serving quorum traffic while nodes swap their
// wire codec underneath it (gob → binary → gob+zlib) and links flap —
// the emulator analog of a mid-swap TCP redial.
type CodecSwapConfig struct {
	Nodes     int           // cluster size (default 5)
	Keys      int           // distinct data keys under test (default 6)
	OpsPerKey int           // operations per key, excluding the final audit read (default 12)
	Swaps     int           // per-node live codec swaps under traffic (default 6)
	Flaps     int           // symmetric link flaps overlapping the swaps (default 3)
	FlapDown  time.Duration // how long a flapped link stays down (default 800ms)
	OpWindow  time.Duration // virtual-time window the workload and swaps are spread over (default 40s)
	Tail      time.Duration // settle time after the window before the audit reads (default 15s)
}

func (c *CodecSwapConfig) applyDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 5
	}
	if c.Keys <= 0 {
		c.Keys = 6
	}
	if c.OpsPerKey <= 0 {
		c.OpsPerKey = 12
	}
	if c.Swaps <= 0 {
		c.Swaps = 6
	}
	if c.Flaps <= 0 {
		c.Flaps = 3
	}
	if c.FlapDown <= 0 {
		c.FlapDown = 800 * time.Millisecond
	}
	if c.OpWindow <= 0 {
		c.OpWindow = 40 * time.Second
	}
	if c.Tail <= 0 {
		c.Tail = 15 * time.Second
	}
}

// CodecSwapResult reports the scenario outcome. Codec counters come from
// the emulator's local (per-run, deterministic) accounting.
type CodecSwapResult struct {
	Nodes, Keys int

	AckedPuts, FailedPuts int
	OKGets, FailedGets    int
	UnresolvedOps         int
	Linearizable          bool
	NonLinearizableKey    string
	LostAckedWrites       int

	CodecSwaps   uint64 // live swaps applied under traffic
	BinaryFrames uint64 // frames that crossed the wire in the binary format
	GobFrames    uint64 // frames that crossed the wire in a gob format
	CodecErrors  uint64 // encode/decode failures (must be 0)
	Flaps        uint64

	SimulatedDuration time.Duration
	DiscreteEvents    uint64
	HandlerExecutions uint64
	TraceDigest       uint64
}

// CodecSwap runs the live-swap chaos scenario: quorum puts/gets over a
// simulated cluster whose nodes switch wire codecs mid-traffic, with link
// flaps overlapping the swap points. Payloads are self-describing, so a
// swap must never lose or reorder frames: the result carries the recorded
// history's linearizability verdict and the lost-acked-write audit, which
// must both be clean with swaps > 0 and a frame mix spanning both formats.
func CodecSwap(seed int64, cfg CodecSwapConfig, simOpts ...simulation.SimOption) CodecSwapResult {
	cfg.applyDefaults()

	ring := tracing.NewRing(1 << 14)
	prevRing := tracing.SwapDefault(ring)
	prevSample := tracing.SetSampleEvery(1)
	defer func() {
		tracing.SetSampleEvery(prevSample)
		tracing.SwapDefault(prevRing)
	}()

	// Every frame round-trips through the sender's codec, starting on gob
	// for all nodes; swaps move individual nodes to binary and gob+zlib
	// mid-run, so both formats cross the wire within one scenario.
	sim, emu, host, exp := buildSimClusterEmu(seed, cfg.Nodes, simNodeConfig(),
		[]simulation.EmulatorOption{simulation.WithEmulatedCodec("gob")}, simOpts...)
	host.RecordOps = true

	refs := host.AliveNodes()
	rng := rand.New(rand.NewSource(seed ^ 0x63647377)) // "cdsw"

	// Workload: same shape as the churn scenario — first op per key is a
	// put, the rest a put/get mix at random coordinators over the window.
	type schedOp struct {
		at time.Duration
		ev core.Event
	}
	var ops []schedOp
	keyName := func(i int) string { return "swap-" + strconv.Itoa(i) }
	for k := 0; k < cfg.Keys; k++ {
		key := keyName(k)
		for i := 0; i < cfg.OpsPerKey; i++ {
			at := time.Duration(rng.Int63n(int64(cfg.OpWindow)))
			if i == 0 {
				at = time.Duration(rng.Int63n(int64(cfg.OpWindow) / 4))
			}
			node := ident.Key(rng.Uint64())
			if i == 0 || rng.Float64() < 0.5 {
				val := []byte("v-" + strconv.Itoa(k) + "-" + strconv.Itoa(i))
				ops = append(ops, schedOp{at, cats.OpPut{NodeKey: node, Key: key, Value: val}})
			} else {
				ops = append(ops, schedOp{at, cats.OpGet{NodeKey: node, Key: key}})
			}
		}
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].at < ops[j].at })
	for _, op := range ops {
		ev := op.ev
		sim.ScheduleAt(op.at, "codecswap:op", func() { _ = core.TriggerOn(exp, ev) })
	}

	// Live swaps under traffic: each picks a node and moves it to the next
	// codec in the rotation. Spread over the middle of the window so plenty
	// of operations straddle each swap point.
	rotation := []string{"binary", "gob+zlib", "gob"}
	for i := 0; i < cfg.Swaps; i++ {
		at := cfg.OpWindow/8 + time.Duration(rng.Int63n(int64(cfg.OpWindow)*3/4))
		victim := refs[rng.Intn(len(refs))].Addr
		name := rotation[i%len(rotation)]
		sim.ScheduleAt(at, "codecswap:swap", func() { emu.SwapCodec(victim, name) })
	}

	// Link flaps overlapping the swaps: the emulator analog of a TCP
	// connection breaking and redialing mid-swap.
	for i := 0; i < cfg.Flaps; i++ {
		at := cfg.OpWindow/8 + time.Duration(rng.Int63n(int64(cfg.OpWindow)*3/4))
		a := refs[rng.Intn(len(refs))].Addr
		b := refs[rng.Intn(len(refs))].Addr
		if a == b {
			continue
		}
		down := cfg.FlapDown
		sim.ScheduleAt(at, "codecswap:flap", func() {
			emu.FlapLink(a, b, down)
			emu.FlapLink(b, a, down)
		})
	}

	mainStats := sim.Run(cfg.OpWindow + cfg.Tail)

	// Audit: one read per key after everything settles.
	preAudit := len(host.OpHistory())
	for k := 0; k < cfg.Keys; k++ {
		key := keyName(k)
		sim.ScheduleAt(0, "codecswap:audit", func() {
			_ = core.TriggerOn(exp, cats.OpGet{NodeKey: ident.Key(rng.Uint64()), Key: key})
		})
	}
	auditStats := sim.Run(simNodeConfig().OpTimeout * 3)

	history := host.OpHistory()
	unresolved := host.UnresolvedOps()
	res := CodecSwapResult{
		Nodes:             cfg.Nodes,
		Keys:              cfg.Keys,
		UnresolvedOps:     len(unresolved),
		SimulatedDuration: mainStats.SimulatedDuration + auditStats.SimulatedDuration,
		DiscreteEvents:    mainStats.DiscreteEvents + auditStats.DiscreteEvents,
		HandlerExecutions: mainStats.HandlerExecutions + auditStats.HandlerExecutions,
	}
	res.CodecSwaps, res.BinaryFrames, res.GobFrames, res.CodecErrors = emu.CodecStats()
	_, _, res.Flaps, _ = emu.ChurnStats()

	hist := make(map[string][]linear.Op)
	ackedVals := make(map[string]map[string]bool)
	addPut := func(r cats.OpRecord, end int64) {
		hist[r.Key] = append(hist[r.Key], linear.Op{
			Kind: linear.Write, Value: r.Value, Start: r.Start.UnixNano(), End: end,
		})
	}
	for _, r := range history {
		switch r.Kind {
		case "put":
			if r.OK {
				res.AckedPuts++
				if ackedVals[r.Key] == nil {
					ackedVals[r.Key] = make(map[string]bool)
				}
				ackedVals[r.Key][r.Value] = true
				addPut(r, r.End.UnixNano())
			} else {
				res.FailedPuts++
				addPut(r, math.MaxInt64)
			}
		case "get":
			if r.OK {
				res.OKGets++
				hist[r.Key] = append(hist[r.Key], linear.Op{
					Kind: linear.Read, Value: r.Value, Found: r.Found,
					Start: r.Start.UnixNano(), End: r.End.UnixNano(),
				})
			} else {
				res.FailedGets++
			}
		}
	}
	for _, r := range unresolved {
		if r.Kind == "put" {
			addPut(r, math.MaxInt64)
		}
	}
	res.Linearizable, res.NonLinearizableKey = linear.CheckPerKey(hist)

	finalRead := make(map[string]cats.OpRecord)
	for _, r := range history[preAudit:] {
		if r.Kind == "get" {
			finalRead[r.Key] = r
		}
	}
	for k := 0; k < cfg.Keys; k++ {
		key := keyName(k)
		if len(ackedVals[key]) == 0 {
			continue
		}
		r, ok := finalRead[key]
		if !ok || !r.OK || !r.Found {
			res.LostAckedWrites++
		}
	}

	res.TraceDigest = TimelineDigest(tracing.Assemble(ring.Snapshot()))
	return res
}
