// The recovery scenario: proof that durability actually survives death.
// It runs in two phases in two separate processes (catssim -mode
// recovery -phase crash|recover):
//
// Phase 1 (crash) boots a simulated CATS cluster whose nodes carry
// durable stores (per-node WAL + snapshot directories under one root,
// sync=always), drives a put/get workload through crash-restart churn,
// and then — at a scheduled virtual-time point, mid-churn — SIGKILLs its
// own process. A real SIGKILL, not a simulated one: no deferred flushes,
// no atexit hooks, exit code 137. Every operation invocation and
// completion is streamed to an fsynced history log before the next event
// runs, so the kill cannot retroactively erase the record of an
// acknowledged write.
//
// Phase 2 (recover) starts from nothing but the data directory: it
// discovers the node keys from the per-node WAL directories, boots a
// fresh cluster over the same stores (each node replaying snapshot + WAL
// tail before serving), lets the ring and handoff converge, audits one
// read per key, and checks the combined phase-1 + phase-2 history for
// linearizability and lost acknowledged writes.
//
// Both phases are driven by the deterministic simulation, and phase 1
// writes files at virtual-time-ordered points, so a (phase 1; phase 2)
// pair from one seed produces byte-identical phase-2 reports — the CI
// recovery job runs each seed twice and diffs them.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cats"
	"repro/internal/core"
	"repro/internal/handoff"
	"repro/internal/ident"
	"repro/internal/kvstore"
	"repro/internal/linear"
	"repro/internal/simulation"
)

// RecoveryConfig parameterizes the crash-restart recovery scenario.
type RecoveryConfig struct {
	Nodes     int           // cluster size (default 5)
	Keys      int           // distinct data keys (default 8)
	OpsPerKey int           // operations per key scheduled in phase 1 (default 10)
	ValuePad  int           // padding bytes per value, so WALs grow enough to snapshot (default 256)
	OpWindow  time.Duration // window the workload and churn spread over (default 40s)
	KillAt    time.Duration // virtual time of the whole-process SIGKILL (default 24s — mid-churn)
	Crashes   int           // individual node crash→restart cycles before the kill (default 2)
	CrashDown time.Duration // node outage length; exceeds suspicion so groups reconfigure (default 8s)
	Tail      time.Duration // phase-2 settle time before the audit reads (default 25s)

	// SnapshotBytes is the per-shard WAL size triggering a snapshot in
	// phase 1 (default 1 KiB — small, so the short scenario exercises the
	// snapshot + truncate + recover path, not just WAL replay).
	SnapshotBytes int64
}

func (c *RecoveryConfig) applyDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 5
	}
	if c.Keys <= 0 {
		c.Keys = 8
	}
	if c.OpsPerKey <= 0 {
		c.OpsPerKey = 10
	}
	if c.ValuePad <= 0 {
		c.ValuePad = 256
	}
	if c.OpWindow <= 0 {
		c.OpWindow = 40 * time.Second
	}
	if c.KillAt <= 0 {
		c.KillAt = 24 * time.Second
	}
	if c.Crashes <= 0 {
		c.Crashes = 2
	}
	if c.CrashDown <= 0 {
		c.CrashDown = 8 * time.Second
	}
	if c.Tail <= 0 {
		c.Tail = 25 * time.Second
	}
	if c.SnapshotBytes == 0 {
		c.SnapshotBytes = 1 << 10
	}
}

// recoveryNodeConfig is the shared per-node template: churn timings plus
// durability. Phase 1 runs sync=always — the scenario's promise is "no
// acked write lost", so acks must be fsync-gated.
func recoveryNodeConfig(snapshotBytes int64) cats.NodeConfig {
	cfg := simNodeConfig()
	cfg.FDInterval = 2 * time.Second
	cfg.FDSuspectAfterMisses = 3
	cfg.WALSync = kvstore.SyncAlways
	cfg.WALSnapshotBytes = snapshotBytes
	return cfg
}

// buildDurableSimCluster mirrors buildSimCluster but configures the host
// (durable data root, op recording, history sink) BEFORE any node joins,
// and joins an explicit key list — phase 2 must rejoin exactly the keys
// that have state on disk, not a fresh spread.
func buildDurableSimCluster(seed int64, keys []ident.Key, cfg cats.NodeConfig, root string, sink func(cats.OpRecord), opts ...simulation.SimOption) (*simulation.Simulation, *simulation.NetworkEmulator, *cats.Simulator, *core.Port) {
	sim := simulation.New(seed, opts...)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.UniformLatency(500*time.Microsecond, 2*time.Millisecond)))
	host := cats.NewSimulator(cats.SimEnv{Sim: sim, Emu: emu}, cfg)
	host.RecordOps = true
	host.DataDirRoot = root
	host.OpSink = sink
	var exp *core.Port
	sim.Runtime().MustBootstrap("CatsRecoveryMain", core.SetupFunc(func(ctx *core.Ctx) {
		c := ctx.Create("simulator", host)
		exp = c.Provided(cats.ExperimentPortType)
	}))
	sim.Run(0)
	for _, k := range keys {
		_ = core.TriggerOn(exp, cats.JoinNode{Key: k})
		sim.Run(50 * time.Millisecond)
	}
	sim.Run(60 * time.Second)
	return sim, emu, host, exp
}

func recoveryKeyName(i int) string { return "rec-" + string(rune('a'+i%26)) + "-" + strconv.Itoa(i) }

// RecoveryCrash runs phase 1. On the happy path it does not return: the
// scheduled SIGKILL tears the process down mid-churn with exit code 137.
// Returning (with an error) means the kill never fired — callers must
// treat that as scenario failure.
func RecoveryCrash(seed int64, cfg RecoveryConfig, dir string) error {
	cfg.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	histLog, err := openHistoryLog(filepath.Join(dir, "history.log"))
	if err != nil {
		return err
	}

	nodeCfg := recoveryNodeConfig(cfg.SnapshotBytes)
	sim, emu, host, exp := buildDurableSimCluster(seed, spreadKeys(cfg.Nodes), nodeCfg, dir, histLog.append)
	refs := host.AliveNodes()
	rng := rand.New(rand.NewSource(seed ^ 0x72656376)) // "recv"

	// Workload: OpsPerKey ops per key, first always a put, put-biased
	// after that so most keys accumulate several acked versions before
	// the kill. Values carry padding so shard WALs cross the snapshot
	// threshold during the run.
	type schedOp struct {
		at time.Duration
		ev core.Event
	}
	var ops []schedOp
	pad := strings.Repeat("x", cfg.ValuePad)
	for k := 0; k < cfg.Keys; k++ {
		key := recoveryKeyName(k)
		for i := 0; i < cfg.OpsPerKey; i++ {
			at := time.Duration(rng.Int63n(int64(cfg.OpWindow)))
			if i == 0 {
				at = time.Duration(rng.Int63n(int64(cfg.OpWindow) / 4))
			}
			node := ident.Key(rng.Uint64())
			if i == 0 || rng.Float64() < 0.6 {
				val := []byte("v-" + strconv.Itoa(k) + "-" + strconv.Itoa(i) + "-" + pad)
				ops = append(ops, schedOp{at, cats.OpPut{NodeKey: node, Key: key, Value: val}})
			} else {
				ops = append(ops, schedOp{at, cats.OpGet{NodeKey: node, Key: key}})
			}
		}
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].at < ops[j].at })
	for _, op := range ops {
		ev := op.ev
		sim.ScheduleAt(op.at, "recovery:op", func() { _ = core.TriggerOn(exp, ev) })
	}

	// Individual-node churn before the kill, so the full-process restart
	// lands on a cluster already mid-reconfiguration.
	spacing := cfg.KillAt / time.Duration(cfg.Crashes+1)
	for i := 0; i < cfg.Crashes; i++ {
		at := spacing*time.Duration(i+1) + time.Duration(rng.Int63n(int64(spacing)/4))
		victim := refs[rng.Intn(len(refs))].Addr
		sim.ScheduleAt(at, "recovery:crash", func() { emu.Crash(victim) })
		sim.ScheduleAt(at+cfg.CrashDown, "recovery:restart", func() { emu.Restart(victim) })
	}

	// The point of the exercise: kill the whole cluster — every node
	// lives in this process — with no warning and no cleanup. Everything
	// the disk has at this virtual-time point (fsynced WAL appends,
	// renamed snapshots, the history log) is all phase 2 gets.
	sim.ScheduleAt(cfg.KillAt, "recovery:sigkill", func() {
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // unreachable: SIGKILL cannot be caught or outrun
	})

	sim.Run(cfg.OpWindow + cfg.Tail)
	return fmt.Errorf("recovery: scheduled SIGKILL at %v never fired (ran %v)", cfg.KillAt, cfg.OpWindow+cfg.Tail)
}

// RecoveryResult reports the phase-2 outcome.
type RecoveryResult struct {
	Nodes int // node directories recovered
	Keys  int // distinct data keys in the phase-1 history

	// Phase-1 history, reconstructed from the fsynced log.
	AckedPuts, FailedPuts int
	OKGets                int
	UnresolvedOps         int // invoked but not completed when the SIGKILL hit

	// What recovery rebuilt from disk, summed over nodes.
	SnapshotsLoaded int
	SnapshotEntries int
	WALReplayed     int
	TornTails       int
	RecoveredKeys   int

	// Phase-2 activity: the rebuilt cluster must converge via handoff and
	// answer the audit.
	AuditOKGets, AuditFailed uint64
	HandoffKeys              uint64
	HandoffTransfers         uint64
	MaxEpoch                 uint64

	Linearizable       bool
	NonLinearizableKey string
	LostAckedWrites    int
	LostKeys           []string

	SimulatedDuration time.Duration
	DiscreteEvents    uint64
	HandlerExecutions uint64
}

// RecoveryRecover runs phase 2 against the data directory a killed
// phase 1 left behind.
func RecoveryRecover(seed int64, cfg RecoveryConfig, dir string) (RecoveryResult, error) {
	cfg.applyDefaults()
	var res RecoveryResult

	resolved, unresolved, err := readHistoryLog(filepath.Join(dir, "history.log"))
	if err != nil {
		return res, err
	}
	nodeKeys, err := discoverNodeDirs(dir)
	if err != nil {
		return res, err
	}
	if len(nodeKeys) == 0 {
		return res, fmt.Errorf("recovery: no node-* directories under %s", dir)
	}
	res.Nodes = len(nodeKeys)
	res.UnresolvedOps = len(unresolved)

	handoffBefore := handoff.GlobalMetrics()

	// Phase 2 keeps sync=always for symmetry (cheap at audit volume);
	// recovery itself is policy-independent.
	nodeCfg := recoveryNodeConfig(cfg.SnapshotBytes)
	sim, _, host, exp := buildDurableSimCluster(seed^0x7265636f, nodeKeys, nodeCfg, dir, nil) // "reco"

	// Sum what Open rebuilt, per node, before any audit traffic.
	for _, ref := range host.AliveNodes() {
		p, ok := host.Peer(ref.Key)
		if !ok || p.Node == nil || p.Node.Store() == nil {
			continue
		}
		rec := p.Node.Store().Recovery()
		res.SnapshotsLoaded += rec.SnapshotsLoaded
		res.SnapshotEntries += rec.SnapshotEntries
		res.WALReplayed += rec.WALEntries
		res.TornTails += rec.TornTails
		res.RecoveredKeys += rec.Keys
	}

	// Audit: one read per key the phase-1 history touched.
	keys := map[string]bool{}
	for _, r := range resolved {
		keys[r.Key] = true
	}
	for _, r := range unresolved {
		keys[r.Key] = true
	}
	sortedKeys := make([]string, 0, len(keys))
	for k := range keys {
		sortedKeys = append(sortedKeys, k)
	}
	sort.Strings(sortedKeys)
	res.Keys = len(sortedKeys)
	rng := rand.New(rand.NewSource(seed ^ 0x61756474)) // "audt"
	for _, key := range sortedKeys {
		k := key
		sim.ScheduleAt(0, "recovery:audit", func() {
			_ = core.TriggerOn(exp, cats.OpGet{NodeKey: ident.Key(rng.Uint64()), Key: k})
		})
	}
	stats := sim.Run(nodeCfg.OpTimeout * 3)
	res.SimulatedDuration = stats.SimulatedDuration
	res.DiscreteEvents = stats.DiscreteEvents
	res.HandlerExecutions = stats.HandlerExecutions

	handoffAfter := handoff.GlobalMetrics()
	res.HandoffKeys = handoffAfter.Keys - handoffBefore.Keys
	res.HandoffTransfers = handoffAfter.Transfers - handoffBefore.Transfers
	res.MaxEpoch = handoffAfter.Epoch

	m := host.Metrics()
	res.AuditOKGets, res.AuditFailed = m.GetsOK, m.GetsFailed
	audit := host.OpHistory()

	// Combined linearizability history. The two phases run on separate
	// virtual clocks, but phase 2 is strictly after phase 1 in real
	// causality, so its timestamps are shifted past every phase-1
	// response. Unresolved phase-1 puts stay time-unconstrained
	// (End = MaxInt64): the kill may or may not have let them take effect,
	// and either is legal.
	var maxEnd1 int64 = math.MinInt64
	for _, r := range resolved {
		if e := r.End.UnixNano(); e > maxEnd1 {
			maxEnd1 = e
		}
	}
	var minStart2 int64 = math.MaxInt64
	for _, r := range audit {
		if s := r.Start.UnixNano(); s < minStart2 {
			minStart2 = s
		}
	}
	offset := int64(0)
	if len(audit) > 0 && maxEnd1 > math.MinInt64 {
		offset = maxEnd1 - minStart2 + int64(time.Hour)
	}

	hist := make(map[string][]linear.Op)
	ackedVals := make(map[string]map[string]bool)
	for _, r := range resolved {
		switch r.Kind {
		case "put":
			if r.OK {
				res.AckedPuts++
				if ackedVals[r.Key] == nil {
					ackedVals[r.Key] = make(map[string]bool)
				}
				ackedVals[r.Key][r.Value] = true
				hist[r.Key] = append(hist[r.Key], linear.Op{
					Kind: linear.Write, Value: r.Value,
					Start: r.Start.UnixNano(), End: r.End.UnixNano(),
				})
			} else {
				res.FailedPuts++
				hist[r.Key] = append(hist[r.Key], linear.Op{
					Kind: linear.Write, Value: r.Value,
					Start: r.Start.UnixNano(), End: math.MaxInt64,
				})
			}
		case "get":
			if r.OK {
				res.OKGets++
				hist[r.Key] = append(hist[r.Key], linear.Op{
					Kind: linear.Read, Value: r.Value, Found: r.Found,
					Start: r.Start.UnixNano(), End: r.End.UnixNano(),
				})
			}
		}
	}
	for _, r := range unresolved {
		if r.Kind == "put" {
			hist[r.Key] = append(hist[r.Key], linear.Op{
				Kind: linear.Write, Value: r.Value,
				Start: r.Start.UnixNano(), End: math.MaxInt64,
			})
		}
	}
	finalRead := make(map[string]cats.OpRecord)
	for _, r := range audit {
		if r.Kind != "get" {
			continue
		}
		if r.OK {
			hist[r.Key] = append(hist[r.Key], linear.Op{
				Kind: linear.Read, Value: r.Value, Found: r.Found,
				Start: r.Start.UnixNano() + offset, End: r.End.UnixNano() + offset,
			})
		}
		finalRead[r.Key] = r
	}
	res.Linearizable, res.NonLinearizableKey = linear.CheckPerKey(hist)

	// Lost-acked-write audit: every key with a phase-1 acked put must be
	// readable — found — after the full-cluster restart.
	for _, key := range sortedKeys {
		if len(ackedVals[key]) == 0 {
			continue
		}
		r, ok := finalRead[key]
		if !ok || !r.OK || !r.Found {
			res.LostAckedWrites++
			res.LostKeys = append(res.LostKeys, key)
		}
	}
	return res, nil
}

// discoverNodeDirs lists the node keys that have durable state under
// root — phase 2's only source of cluster membership.
func discoverNodeDirs(root string) ([]ident.Key, error) {
	ents, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var keys []ident.Key
	for _, e := range ents {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "node-") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimPrefix(e.Name(), "node-"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("recovery: bad node directory %q: %w", e.Name(), err)
		}
		keys = append(keys, ident.Key(n))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys, nil
}

// historyLog streams op events to disk, fsyncing each line: after a
// SIGKILL, every event appended before the kill is readable.
type historyLog struct{ f *os.File }

func openHistoryLog(path string) (*historyLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &historyLog{f: f}, nil
}

// append writes one op event. A record with zero End is an invocation;
// with non-zero End, a completion. Keys and values contain no
// whitespace, but both are quoted anyway so the format cannot silently
// break if that changes.
func (l *historyLog) append(r cats.OpRecord) {
	tag := "res"
	if r.End.IsZero() {
		tag = "inv"
	}
	fmt.Fprintf(l.f, "%s %s %s %s %t %t %d %d\n",
		tag, r.Kind, strconv.Quote(r.Key), strconv.Quote(r.Value),
		r.OK, r.Found, r.Start.UnixNano(), r.End.UnixNano())
	l.f.Sync()
}

// readHistoryLog reconstructs the phase-1 history: completions, plus the
// invocations that never completed (matched by kind+key+start, value too
// for puts — gets resolve with the value they read).
func readHistoryLog(path string) (resolved, unresolved []cats.OpRecord, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	type invKey struct {
		kind, key, value string
		start            int64
	}
	pending := make(map[invKey]int)
	var order []cats.OpRecord // invocation order, for deterministic output
	for ln, line := range strings.Split(string(b), "\n") {
		if line == "" {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) != 8 {
			return nil, nil, fmt.Errorf("recovery: history line %d: %d fields", ln+1, len(parts))
		}
		key, err1 := strconv.Unquote(parts[2])
		value, err2 := strconv.Unquote(parts[3])
		ok, err3 := strconv.ParseBool(parts[4])
		found, err4 := strconv.ParseBool(parts[5])
		startNs, err5 := strconv.ParseInt(parts[6], 10, 64)
		endNs, err6 := strconv.ParseInt(parts[7], 10, 64)
		for _, e := range []error{err1, err2, err3, err4, err5, err6} {
			if e != nil {
				return nil, nil, fmt.Errorf("recovery: history line %d: %v", ln+1, e)
			}
		}
		r := cats.OpRecord{
			Kind: parts[1], Key: key, Value: value, OK: ok, Found: found,
			Start: time.Unix(0, startNs),
		}
		ik := invKey{kind: r.Kind, key: r.Key, start: startNs}
		if r.Kind == "put" {
			ik.value = r.Value
		}
		switch parts[0] {
		case "inv":
			pending[ik]++
			order = append(order, r)
		case "res":
			r.End = time.Unix(0, endNs)
			resolved = append(resolved, r)
			if pending[ik] > 0 {
				pending[ik]--
			}
		default:
			return nil, nil, fmt.Errorf("recovery: history line %d: tag %q", ln+1, parts[0])
		}
	}
	for _, r := range order {
		ik := invKey{kind: r.Kind, key: r.Key, start: r.Start.UnixNano()}
		if r.Kind == "put" {
			ik.value = r.Value
		}
		if pending[ik] > 0 {
			pending[ik]--
			unresolved = append(unresolved, r)
		}
	}
	return resolved, unresolved, nil
}
