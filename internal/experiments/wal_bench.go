package experiments

import (
	"os"
	"time"

	"repro/internal/cats"
	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/network"
)

// WALBenchArm is one durability configuration in the WAL A/B comparison.
type WALBenchArm struct {
	// Policy is "mem" (no WAL at all) or a sync policy name.
	Policy   string
	OpsPS    float64
	P50, P99 time.Duration

	// Process-wide WAL counter deltas attributed to this arm's rounds.
	WALAppends uint64
	WALBytes   uint64
	WALSyncs   uint64
	Snapshots  uint64
}

// WALBenchResult summarizes the durability A/B: the same write-heavy
// closed-loop workload run against an in-memory store and against the
// WAL under each sync policy.
type WALBenchResult struct {
	Nodes    int
	Clients  int
	OpsRound int
	Rounds   int

	// Arms in fixed order: mem, never, interval, always.
	Arms []WALBenchArm

	// DurabilityCost is 1 - (always ops/s ÷ mem ops/s): the full price of
	// fsync-per-append acks relative to no durability at all.
	DurabilityCost float64
	// IntervalCost is the same ratio for group-commit sync.
	IntervalCost float64
}

// walBenchConfig is the node template for one durability arm. An empty
// policy string means memory-only (no DataDir, the pre-WAL behaviour).
func walBenchConfig(sync kvstore.SyncPolicy, durable bool) cats.NodeConfig {
	cfg := kvClusterConfig(false)
	if durable {
		cfg.WALSync = sync
		cfg.WALSyncEvery = 2 * time.Millisecond
		cfg.WALSnapshotBytes = 8 << 20 // large: measure the log path, not snapshot churn
	}
	return cfg
}

// walRound runs one closed-loop write-heavy round on a fresh cluster.
// dataRoot == "" runs memory-only; otherwise per-node WALs live under it
// (the caller provides a fresh directory per round so no arm pays replay
// costs for a previous arm's data).
func walRound(clients, ops int, cfg cats.NodeConfig, dataRoot string) (done uint64, elapsed time.Duration, lat []time.Duration) {
	const nodes = 3
	registry := network.NewLoopbackRegistry(network.WithCodec(network.Codec{}))
	host := cats.NewSimulator(cats.LoopbackEnv{Registry: registry}, cfg)
	host.DataDirRoot = dataRoot
	rt := core.New(core.WithFaultPolicy(core.LogAndContinue))
	var exp *core.Port
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		c := ctx.Create("simulator", host)
		exp = c.Provided(cats.ExperimentPortType)
	}))
	defer rt.Shutdown()
	rt.WaitQuiescence(5 * time.Second)
	for _, k := range spreadKeys(nodes) {
		_ = core.TriggerOn(exp, cats.JoinNode{Key: k})
		time.Sleep(10 * time.Millisecond)
	}
	waitForRing(rt, host, nodes, 30*time.Second)
	time.Sleep(500 * time.Millisecond)

	// Write-heavy: durability sits on the put path, so reads would only
	// dilute the signal. 64 keys keep the version gate busy too.
	_ = core.TriggerOn(exp, cats.StartLoad{
		Clients:      clients,
		TotalOps:     ops,
		ValueSize:    256,
		ReadFraction: 0.25,
		Keys:         64,
	})
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		if m := host.Metrics(); int(m.LoadDone) >= ops {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	rt.WaitQuiescence(5 * time.Second)
	m := host.Metrics()
	return m.LoadDone, m.LoadEnd.Sub(m.LoadStart), m.OpLatencies
}

// WALBench measures the throughput cost of the durability layer: the
// same write-heavy workload against the in-memory store ("mem") and
// against the WAL under each sync policy. Rounds rotate the arm order so
// machine drift cancels instead of biasing one arm. dataRoot receives
// per-round scratch directories (cleaned up as it goes); pass "" to use
// the system temp dir.
func WALBench(clients, opsPerRound, rounds int, dataRoot string) (WALBenchResult, error) {
	if clients <= 0 {
		clients = 48
	}
	if opsPerRound <= 0 {
		opsPerRound = 4000
	}
	if rounds <= 0 {
		rounds = 3
	}
	res := WALBenchResult{Nodes: 3, Clients: clients, OpsRound: opsPerRound, Rounds: rounds}

	type arm struct {
		policy  string
		sync    kvstore.SyncPolicy
		durable bool
	}
	arms := []arm{
		{policy: "mem"},
		{policy: "never", sync: kvstore.SyncNever, durable: true},
		{policy: "interval", sync: kvstore.SyncInterval, durable: true},
		{policy: "always", sync: kvstore.SyncAlways, durable: true},
	}
	type acc struct {
		done             uint64
		time             time.Duration
		lat              []time.Duration
		appends, bytes   uint64
		syncs, snapshots uint64
	}
	accs := make(map[string]*acc, len(arms))
	for _, a := range arms {
		accs[a.policy] = &acc{}
	}

	runOne := func(a arm) error {
		root := ""
		if a.durable {
			dir, err := os.MkdirTemp(dataRoot, "walbench-"+a.policy+"-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			root = dir
		}
		before := kvstore.GlobalMetrics()
		done, elapsed, lat := walRound(clients, opsPerRound, walBenchConfig(a.sync, a.durable), root)
		after := kvstore.GlobalMetrics()
		ac := accs[a.policy]
		ac.done += done
		ac.time += elapsed
		ac.lat = append(ac.lat, lat...)
		ac.appends += after.WALAppends - before.WALAppends
		ac.bytes += after.WALBytes - before.WALBytes
		ac.syncs += after.WALSyncs - before.WALSyncs
		ac.snapshots += after.Snapshots - before.Snapshots
		return nil
	}

	// Discarded warm-up round (cold caches, initial CPU burst).
	warmCfg := walBenchConfig(0, false)
	_, _, _ = walRound(clients, opsPerRound/2, warmCfg, "")

	for r := 0; r < rounds; r++ {
		for i := range arms {
			if err := runOne(arms[(r+i)%len(arms)]); err != nil {
				return res, err
			}
		}
	}

	opsPS := make(map[string]float64, len(arms))
	for _, a := range arms {
		ac := accs[a.policy]
		out := WALBenchArm{
			Policy:     a.policy,
			WALAppends: ac.appends,
			WALBytes:   ac.bytes,
			WALSyncs:   ac.syncs,
			Snapshots:  ac.snapshots,
		}
		if ac.time > 0 {
			out.OpsPS = float64(ac.done) / ac.time.Seconds()
		}
		out.P50, out.P99 = percentiles(ac.lat)
		opsPS[a.policy] = out.OpsPS
		res.Arms = append(res.Arms, out)
	}
	if opsPS["mem"] > 0 {
		res.DurabilityCost = 1 - opsPS["always"]/opsPS["mem"]
		res.IntervalCost = 1 - opsPS["interval"]/opsPS["mem"]
	}
	return res, nil
}
