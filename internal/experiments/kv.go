package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"repro/internal/abd"
	"repro/internal/cats"
	"repro/internal/core"
	"repro/internal/handoff"
	"repro/internal/kvstore"
	"repro/internal/network"
	"repro/internal/tracing"
)

// kvClusterConfig returns relaxed node timings for the real-time KV
// benchmarks: background protocol periods are slow so the measurement
// reflects the operation path.
func kvClusterConfig(noCoalesce bool) cats.NodeConfig {
	return cats.NodeConfig{
		ReplicationDegree: 3,
		// The benchmark clusters are faultless, so the failure detector only
		// adds noise: on a small machine a CPU-heavy phase (e.g. preloading a
		// million registers) can delay ping handlers past the suspicion
		// threshold, and one false eviction cascades into reconfiguration +
		// full-store handoff that poisons the measurement. Make suspicion
		// need ~30s of silence.
		FDInterval:           5 * time.Second,
		FDSuspectAfterMisses: 6,
		StabilizePeriod:      time.Second,
		CyclonPeriod:         2 * time.Second,
		// Short per-attempt timeout: an op that catches a replica mid-epoch-
		// sync (Busy nack) only retries on timeout, and a multi-second
		// straggler would dominate the round's wall-clock in both variants.
		OpTimeout:  500 * time.Millisecond,
		NoCoalesce: noCoalesce,
	}
}

// buildKVCluster boots a real-time loopback cluster of n nodes with full
// per-message marshalling (the realistic framed-transport cost coalescing
// amortizes) and waits for ring convergence. The caller must Shutdown the
// returned runtime.
func buildKVCluster(n int, noCoalesce bool) (*core.Runtime, *cats.Simulator, *core.Port) {
	registry := network.NewLoopbackRegistry(network.WithCodec(network.Codec{}))
	host := cats.NewSimulator(cats.LoopbackEnv{Registry: registry}, kvClusterConfig(noCoalesce))
	rt := core.New(core.WithFaultPolicy(core.LogAndContinue))
	var exp *core.Port
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		c := ctx.Create("simulator", host)
		exp = c.Provided(cats.ExperimentPortType)
	}))
	rt.WaitQuiescence(5 * time.Second)
	for _, k := range spreadKeys(n) {
		_ = core.TriggerOn(exp, cats.JoinNode{Key: k})
		time.Sleep(10 * time.Millisecond)
	}
	waitForRing(rt, host, n, 30*time.Second)
	time.Sleep(500 * time.Millisecond) // membership tables settle
	return rt, host, exp
}

// percentiles returns p50 and p99 of the (unsorted) latency samples.
func percentiles(lat []time.Duration) (p50, p99 time.Duration) {
	if len(lat) == 0 {
		return 0, 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2], s[len(s)*99/100]
}

// QuorumABResult summarizes the interleaved coalescing A/B comparison.
type QuorumABResult struct {
	Nodes    int
	Clients  int
	OpsRound int
	Rounds   int

	CoalescedOpsPS float64
	LegacyOpsPS    float64
	// Improvement is CoalescedOpsPS/LegacyOpsPS - 1.
	Improvement  float64
	CoalescedP50 time.Duration
	CoalescedP99 time.Duration
	LegacyP50    time.Duration
	LegacyP99    time.Duration
	// Batches/BatchedOps are the frames flushed and ops carried during the
	// coalesced rounds (coordinator-side counters summed over nodes).
	Batches    uint64
	BatchedOps uint64
}

// quorumRound runs one closed-loop round on a fresh cluster and returns
// completed ops, elapsed load time, latencies, and the coordinators' batch
// counters.
func quorumRound(nodes, clients, ops int, noCoalesce bool) (done uint64, elapsed time.Duration, lat []time.Duration, batches, batchedOps uint64) {
	rt, host, exp := buildKVCluster(nodes, noCoalesce)
	defer rt.Shutdown()

	_ = core.TriggerOn(exp, cats.StartLoad{
		Clients:      clients,
		TotalOps:     ops,
		ValueSize:    256,
		ReadFraction: 0.5,
		Keys:         64,
	})
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		if m := host.Metrics(); int(m.LoadDone) >= ops {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	rt.WaitQuiescence(5 * time.Second)

	m := host.Metrics()
	for _, ref := range host.AliveNodes() {
		if p, ok := host.Peer(ref.Key); ok && p.Node != nil {
			b, bo := p.Node.ABD.BatchStats()
			batches += b
			batchedOps += bo
		}
	}
	return m.LoadDone, m.LoadEnd.Sub(m.LoadStart), m.OpLatencies, batches, batchedOps
}

// QuorumAB measures the coalesced quorum path against the uncoalesced one
// on the multi-op same-replica-set workload: `nodes` nodes at replication
// degree 3 (with nodes == 3 every key maps to the same replica set), many
// closed-loop clients so quorum phases pile up at the coordinators. Rounds
// are interleaved, alternating which variant goes first, so machine drift
// cancels instead of biasing one side.
func QuorumAB(nodes, clients, opsPerRound, rounds int) QuorumABResult {
	if nodes <= 0 {
		nodes = 3
	}
	if clients <= 0 {
		clients = 48
	}
	if opsPerRound <= 0 {
		opsPerRound = 4000
	}
	if rounds <= 0 {
		rounds = 3
	}
	res := QuorumABResult{Nodes: nodes, Clients: clients, OpsRound: opsPerRound, Rounds: rounds}

	var coDone, legDone uint64
	var coTime, legTime time.Duration
	var coLat, legLat []time.Duration
	runOne := func(noCoalesce bool) {
		done, elapsed, lat, b, bo := quorumRound(nodes, clients, opsPerRound, noCoalesce)
		if noCoalesce {
			legDone += done
			legTime += elapsed
			legLat = append(legLat, lat...)
		} else {
			coDone += done
			coTime += elapsed
			coLat = append(coLat, lat...)
			res.Batches += b
			res.BatchedOps += bo
		}
	}
	for r := 0; r < rounds; r++ {
		if r%2 == 0 {
			runOne(true)
			runOne(false)
		} else {
			runOne(false)
			runOne(true)
		}
	}

	if coTime > 0 {
		res.CoalescedOpsPS = float64(coDone) / coTime.Seconds()
	}
	if legTime > 0 {
		res.LegacyOpsPS = float64(legDone) / legTime.Seconds()
	}
	if res.LegacyOpsPS > 0 {
		res.Improvement = res.CoalescedOpsPS/res.LegacyOpsPS - 1
	}
	res.CoalescedP50, res.CoalescedP99 = percentiles(coLat)
	res.LegacyP50, res.LegacyP99 = percentiles(legLat)
	return res
}

// QuorumTraceArm is one sampling configuration in the tracing-overhead
// comparison.
type QuorumTraceArm struct {
	SampleEvery int // 0 = tracing off, 64 = default sampling, 1 = every op
	OpsPS       float64
	P50, P99    time.Duration
	Spans       uint64    // spans recorded during this arm's rounds
	RoundPS     []float64 // per-round ops/s, in round order (noise diagnostic)
}

// QuorumTraceABResult summarizes the tracing-overhead A/B/C comparison on
// the coalesced quorum workload.
type QuorumTraceABResult struct {
	Nodes    int
	Clients  int
	OpsRound int
	Rounds   int

	Off     QuorumTraceArm // tracing disabled
	Sampled QuorumTraceArm // default 1-in-64 sampling
	Always  QuorumTraceArm // every op traced

	// Overheads are 1 - median over rounds of (arm ops/s ÷ same-round off
	// ops/s): positive means the arm is slower than tracing-off. Pairing
	// within a round compares runs seconds apart, so slow machine drift
	// across a multi-minute run cancels instead of polluting the estimate;
	// the median discards rounds a noise spike ruined. Gate: Sampled <= 3%.
	SampledOverhead float64
	AlwaysOverhead  float64
}

// QuorumTraceAB measures the cost of the span layer on the coalesced
// quorum workload at three sampling rates — off, the default 1 in 64, and
// every op — with rounds interleaved in rotating order so machine drift
// cancels instead of biasing one arm. Each arm runs against a fresh
// private span ring; the process sampling rate and ring are restored on
// return.
func QuorumTraceAB(nodes, clients, opsPerRound, rounds int) QuorumTraceABResult {
	if nodes <= 0 {
		nodes = 3
	}
	if clients <= 0 {
		clients = 48
	}
	if opsPerRound <= 0 {
		opsPerRound = 4000
	}
	if rounds <= 0 {
		rounds = 3
	}
	res := QuorumTraceABResult{Nodes: nodes, Clients: clients, OpsRound: opsPerRound, Rounds: rounds}
	res.Off.SampleEvery, res.Sampled.SampleEvery, res.Always.SampleEvery = 0, 64, 1

	type acc struct {
		done    uint64
		time    time.Duration
		lat     []time.Duration
		spans   uint64
		roundPS []float64 // per-round ops/s, indexed by round
	}
	accs := map[int]*acc{0: {}, 64: {}, 1: {}}
	runOne := func(every int) {
		a := accs[every]
		ring := tracing.NewRing(1 << 15)
		prevRing := tracing.SwapDefault(ring)
		prevSample := tracing.SetSampleEvery(every)
		done, elapsed, lat, _, _ := quorumRound(nodes, clients, opsPerRound, false)
		tracing.SetSampleEvery(prevSample)
		tracing.SwapDefault(prevRing)
		a.done += done
		a.time += elapsed
		a.lat = append(a.lat, lat...)
		a.spans += ring.Recorded()
		ps := 0.0
		if elapsed > 0 {
			ps = float64(done) / elapsed.Seconds()
		}
		a.roundPS = append(a.roundPS, ps)
	}
	// One discarded warm-up round: the first round of a process run absorbs
	// cold caches and any initial CPU-quota burst, which would otherwise be
	// credited entirely to whichever arm runs first.
	warm, _, _, _, _ := quorumRound(nodes, clients, opsPerRound, false)
	_ = warm

	order := []int{0, 64, 1}
	for r := 0; r < rounds; r++ {
		for i := range order {
			runOne(order[(r+i)%len(order)])
		}
	}

	fill := func(arm *QuorumTraceArm) {
		a := accs[arm.SampleEvery]
		if a.time > 0 {
			arm.OpsPS = float64(a.done) / a.time.Seconds()
		}
		arm.P50, arm.P99 = percentiles(a.lat)
		arm.Spans = a.spans
		arm.RoundPS = a.roundPS
	}
	fill(&res.Off)
	fill(&res.Sampled)
	fill(&res.Always)
	overhead := func(every int) float64 {
		off := accs[0].roundPS
		arm := accs[every].roundPS
		ratios := make([]float64, 0, len(arm))
		for r := range arm {
			if r < len(off) && off[r] > 0 {
				ratios = append(ratios, arm[r]/off[r])
			}
		}
		if len(ratios) == 0 {
			return 0
		}
		sort.Float64s(ratios)
		return 1 - ratios[len(ratios)/2]
	}
	res.SampledOverhead = overhead(64)
	res.AlwaysOverhead = overhead(1)
	return res
}

// MillionKVResult summarizes the large-store open-loop profile.
type MillionKVResult struct {
	Nodes       int
	Keys        int // distinct keys preloaded per replica
	Ops         int // operations issued open-loop
	RatePS      int // issue rate
	Done        uint64
	Failed      uint64
	OpsPS       float64
	P50         time.Duration
	P99         time.Duration
	AllocsPerOp float64
	// Heap occupancy around the load phase (preloaded store resident in
	// both), to show the sharded store serves traffic with stable memory.
	HeapBeforeMB float64
	HeapAfterMB  float64
	// Per-shard occupancy of one replica's store after the run.
	ShardKeys      int
	NonEmptyShards int
	MinShardKeys   int
	MaxShardKeys   int
}

// MillionKV preloads every replica's sharded store with `keys` distinct
// registers (directly through the store — populating through quorum writes
// would measure the protocol, not the store) and then drives an open-loop
// read-heavy workload at ratePS operations per second against the full
// keyspace, reporting completed throughput, p50/p99, allocation rate, and
// per-shard occupancy. Open-loop means the issue rate does not adapt to
// completions: latencies include any queueing the store layer causes.
func MillionKV(keys, ops, ratePS int) MillionKVResult {
	if keys <= 0 {
		keys = 1_000_000
	}
	if ops <= 0 {
		ops = 30_000
	}
	if ratePS <= 0 {
		ratePS = 1_500
	}
	const nodes = 3 // degree 3: every replica covers the whole keyspace
	res := MillionKVResult{Nodes: nodes, Keys: keys, Ops: ops, RatePS: ratePS}

	rt, host, exp := buildKVCluster(nodes, false)
	defer rt.Shutdown()

	// Preload each replica's store directly, identically (version-gated
	// Apply makes the stores canonical).
	val := make([]byte, 64)
	for _, ref := range host.AliveNodes() {
		p, ok := host.Peer(ref.Key)
		if !ok || p.Node == nil {
			continue
		}
		st := p.Node.ABD.Store()
		for i := 0; i < keys; i++ {
			st.Apply(millionKey(i), kvstore.Version{Seq: 1, Writer: 1}, val)
		}
	}

	// Wait out any reconfiguration the preload provoked: if an epoch bump
	// slipped in, replicas may be mid-handoff (Busy-nacking every op) for
	// as long as the sync round over the big store takes. Measure only
	// once epochs and handoff volume have been still for a few seconds.
	waitForEpochQuiescence(host, 3*time.Second, 2*time.Minute)

	// Double GC: pooled buffers (codec scratch from any handoff round the
	// preload provoked) survive one collection and would inflate the
	// before-measurement.
	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	res.HeapBeforeMB = float64(msBefore.HeapAlloc) / (1 << 20)

	// Open-loop issue at a fixed rate across the whole keyspace.
	rng := rand.New(rand.NewSource(1))
	interval := time.Second / time.Duration(ratePS)
	opVal := make([]byte, 128)
	start := time.Now()
	for i := 0; i < ops; i++ {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		key := millionKey(rng.Intn(keys))
		node := spreadKeys(nodes)[rng.Intn(nodes)]
		if rng.Float64() < 0.9 {
			_ = core.TriggerOn(exp, cats.OpGet{NodeKey: node, Key: key})
		} else {
			_ = core.TriggerOn(exp, cats.OpPut{NodeKey: node, Key: key, Value: opVal})
		}
	}
	deadline := time.Now().Add(2 * time.Minute)
	var m cats.Metrics
	for time.Now().Before(deadline) {
		m = host.Metrics()
		if m.GetsOK+m.GetsFailed+m.PutsOK+m.PutsFailed >= uint64(ops) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(start)

	// GC before the after-measurement so HeapAfterMB is live occupancy
	// (the preloaded store plus whatever the load retained), not transient
	// message garbage. Mallocs is cumulative and unaffected.
	runtime.GC()
	runtime.ReadMemStats(&msAfter)
	res.HeapAfterMB = float64(msAfter.HeapAlloc) / (1 << 20)
	res.Done = m.GetsOK + m.PutsOK
	res.Failed = m.GetsFailed + m.PutsFailed
	if elapsed > 0 {
		res.OpsPS = float64(res.Done) / elapsed.Seconds()
	}
	res.P50, res.P99 = percentiles(m.OpLatencies)
	if res.Done > 0 {
		res.AllocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(res.Done)
	}

	if refs := host.AliveNodes(); len(refs) > 0 {
		if p, ok := host.Peer(refs[0].Key); ok && p.Node != nil {
			st := p.Node.ABD.Store().Stats()
			res.ShardKeys = st.Keys
			res.NonEmptyShards = st.NonEmptyShards
			res.MinShardKeys, res.MaxShardKeys = st.PerShard[0], st.PerShard[0]
			for _, n := range st.PerShard[1:] {
				if n < res.MinShardKeys {
					res.MinShardKeys = n
				}
				if n > res.MaxShardKeys {
					res.MaxShardKeys = n
				}
			}
		}
	}
	return res
}

// waitForEpochQuiescence blocks until no node's replica-group epoch and no
// process-wide handoff counter has changed for `still`, or until `max`
// elapses. Quiesced epochs mean no replica is inside a sync window.
func waitForEpochQuiescence(host *cats.Simulator, still, max time.Duration) {
	type snap struct {
		epochs  []uint64
		keys    uint64
		syncing bool
	}
	take := func() snap {
		s := snap{keys: handoff.GlobalMetrics().Keys}
		for _, ref := range host.AliveNodes() {
			if p, ok := host.Peer(ref.Key); ok && p.Node != nil {
				s.epochs = append(s.epochs, p.Node.ABD.Epoch())
				s.syncing = s.syncing || p.Node.ABD.Syncing()
			}
		}
		return s
	}
	eq := func(a, b snap) bool {
		// A replica inside a sync window is never quiet: the handoff keys
		// counter only moves when the round completes, so an in-flight
		// round would otherwise look still.
		if a.syncing || b.syncing {
			return false
		}
		if a.keys != b.keys || len(a.epochs) != len(b.epochs) {
			return false
		}
		for i := range a.epochs {
			if a.epochs[i] != b.epochs[i] {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(max)
	last, lastChange := take(), time.Now()
	for time.Now().Before(deadline) {
		time.Sleep(200 * time.Millisecond)
		cur := take()
		if !eq(cur, last) {
			last, lastChange = cur, time.Now()
			continue
		}
		if time.Since(lastChange) >= still {
			return
		}
	}
}

// millionKey names the i-th preloaded register.
func millionKey(i int) string { return fmt.Sprintf("m-%d", i) }

// Ensure the abd metrics sources are linked into benchmark binaries even
// when only this file's experiments are used.
var _ = abd.GlobalBatchMetrics
