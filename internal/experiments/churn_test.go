package experiments

import (
	"reflect"
	"testing"
)

// TestChurnSurvivesChaos is the chaos gate: a simulated CATS cluster runs
// quorum puts/gets through crash-restart churn, link flaps, and a healed
// partition; the recorded history must stay linearizable and every
// acknowledged write must be observable once the faults heal.
func TestChurnSurvivesChaos(t *testing.T) {
	for _, seed := range []int64{3, 77, 4242} {
		r := Churn(seed, ChurnConfig{})
		if r.Crashes == 0 || r.Restarts != r.Crashes {
			t.Errorf("seed %d: churn not injected: crashes=%d restarts=%d", seed, r.Crashes, r.Restarts)
		}
		if r.ChurnDropped == 0 {
			t.Errorf("seed %d: churn dropped no messages — faults had no effect", seed)
		}
		if r.AckedPuts == 0 {
			t.Errorf("seed %d: no acknowledged writes; scenario proved nothing", seed)
		}
		if !r.Linearizable {
			t.Errorf("seed %d: history not linearizable (key %q)", seed, r.NonLinearizableKey)
		}
		if r.LostAckedWrites != 0 {
			t.Errorf("seed %d: %d keys lost acknowledged writes", seed, r.LostAckedWrites)
		}
		t.Logf("seed %d: acked_puts=%d ok_gets=%d failed=%d/%d unresolved=%d churn_dropped=%d",
			seed, r.AckedPuts, r.OKGets, r.FailedPuts, r.FailedGets, r.UnresolvedOps, r.ChurnDropped)
	}
}

// TestChurnDeterministic pins that the whole chaos scenario — fault times,
// victims, workload, outcomes — replays identically from one seed.
func TestChurnDeterministic(t *testing.T) {
	a := Churn(7, ChurnConfig{})
	b := Churn(7, ChurnConfig{})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n  run A: %+v\n  run B: %+v", a, b)
	}
}
