package experiments

import (
	"reflect"
	"testing"
)

// TestChurnSurvivesChaos is the chaos gate: a simulated CATS cluster runs
// quorum puts/gets through crash-restart churn, link flaps, and a healed
// partition; the recorded history must stay linearizable and every
// acknowledged write must be observable once the faults heal.
func TestChurnSurvivesChaos(t *testing.T) {
	for _, seed := range []int64{3, 77, 4242} {
		r := Churn(seed, ChurnConfig{})
		if r.Crashes == 0 || r.Restarts != r.Crashes {
			t.Errorf("seed %d: churn not injected: crashes=%d restarts=%d", seed, r.Crashes, r.Restarts)
		}
		if r.ChurnDropped == 0 {
			t.Errorf("seed %d: churn dropped no messages — faults had no effect", seed)
		}
		if r.AckedPuts == 0 {
			t.Errorf("seed %d: no acknowledged writes; scenario proved nothing", seed)
		}
		if !r.Linearizable {
			t.Errorf("seed %d: history not linearizable (key %q)", seed, r.NonLinearizableKey)
		}
		if r.LostAckedWrites != 0 {
			t.Errorf("seed %d: %d keys lost acknowledged writes", seed, r.LostAckedWrites)
		}
		// Fault windows exceed the suspicion threshold, so groups must have
		// reconfigured: epochs advanced and handoff moved state. Zero here
		// means the scenario silently stopped exercising reconfiguration.
		if r.MaxEpoch == 0 {
			t.Errorf("seed %d: group epoch never advanced", seed)
		}
		if r.HandoffTransfers == 0 {
			t.Errorf("seed %d: no handoff sync rounds completed", seed)
		}
		if r.HandoffKeys == 0 {
			t.Errorf("seed %d: handoff transferred no keys despite eviction-length outages", seed)
		}
		t.Logf("seed %d: acked_puts=%d ok_gets=%d failed=%d/%d unresolved=%d churn_dropped=%d handoff_keys=%d handoff_transfers=%d max_epoch=%d",
			seed, r.AckedPuts, r.OKGets, r.FailedPuts, r.FailedGets, r.UnresolvedOps, r.ChurnDropped,
			r.HandoffKeys, r.HandoffTransfers, r.MaxEpoch)
	}
}

// TestChurnLongOutage runs the long-outage variant: outages double the
// suspicion threshold, so the ring fully repairs around the dark node and
// the node must rejoin from its remembered membership when it returns.
func TestChurnLongOutage(t *testing.T) {
	r := Churn(11, LongOutageChurnConfig())
	if !r.Linearizable {
		t.Errorf("history not linearizable (key %q)", r.NonLinearizableKey)
	}
	if r.LostAckedWrites != 0 {
		t.Errorf("%d keys lost acknowledged writes", r.LostAckedWrites)
	}
	if r.AckedPuts == 0 || r.HandoffTransfers == 0 {
		t.Errorf("scenario inert: acked_puts=%d handoff_transfers=%d", r.AckedPuts, r.HandoffTransfers)
	}
	t.Logf("acked_puts=%d ok_gets=%d handoff_keys=%d handoff_transfers=%d max_epoch=%d",
		r.AckedPuts, r.OKGets, r.HandoffKeys, r.HandoffTransfers, r.MaxEpoch)
}

// TestChurnDeterministic pins that the whole chaos scenario — fault times,
// victims, workload, outcomes — replays identically from one seed.
func TestChurnDeterministic(t *testing.T) {
	a := Churn(7, ChurnConfig{})
	b := Churn(7, ChurnConfig{})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n  run A: %+v\n  run B: %+v", a, b)
	}
}
