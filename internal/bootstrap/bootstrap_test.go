package bootstrap

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/simulation"
	"repro/internal/timer"
)

func addr(i int) network.Address { return network.Address{Host: "bs", Port: uint16(i)} }

func nodeRef(i int) ident.NodeRef {
	return ident.NodeRef{Key: ident.Key(i * 100), Addr: addr(i)}
}

// serverHost hosts the bootstrap server with transport and timer.
type serverHost struct {
	self network.Address
	sim  *simulation.Simulation
	emu  *simulation.NetworkEmulator
	Srv  *Server
}

func (s *serverHost) Setup(ctx *core.Ctx) {
	tr := ctx.Create("net", s.emu.Transport(s.self))
	tm := ctx.Create("timer", simulation.NewTimer(s.sim))
	s.Srv = NewServer(ServerConfig{Self: s.self, EvictAfter: 3 * time.Second, EvictInterval: time.Second})
	srvC := ctx.Create("server", s.Srv)
	ctx.Connect(srvC.Required(network.PortType), tr.Provided(network.PortType))
	ctx.Connect(srvC.Required(timer.PortType), tm.Provided(timer.PortType))
}

// clientHost hosts one bootstrap client.
type clientHost struct {
	self   ident.NodeRef
	server network.Address
	sim    *simulation.Simulation
	emu    *simulation.NetworkEmulator

	ctx       *core.Ctx
	bootOuter *core.Port
	responses []BootstrapResponse
}

func (c *clientHost) Setup(ctx *core.Ctx) {
	c.ctx = ctx
	tr := ctx.Create("net", c.emu.Transport(c.self.Addr))
	tm := ctx.Create("timer", simulation.NewTimer(c.sim))
	cl := NewClient(ClientConfig{
		Self:              c.self.Addr,
		Server:            c.server,
		RetryInterval:     300 * time.Millisecond,
		KeepaliveInterval: 500 * time.Millisecond,
	})
	clC := ctx.Create("client", cl)
	ctx.Connect(clC.Required(network.PortType), tr.Provided(network.PortType))
	ctx.Connect(clC.Required(timer.PortType), tm.Provided(timer.PortType))
	c.bootOuter = clC.Provided(PortType)
	core.Subscribe(ctx, c.bootOuter, func(r BootstrapResponse) {
		c.responses = append(c.responses, r)
	})
}

func newBootstrapWorld(t *testing.T, nClients int) (*simulation.Simulation, *serverHost, []*clientHost) {
	t.Helper()
	sim := simulation.New(3)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.ConstantLatency(2*time.Millisecond)))
	srv := &serverHost{self: addr(0), sim: sim, emu: emu}
	clients := make([]*clientHost, nClients)
	for i := range clients {
		clients[i] = &clientHost{self: nodeRef(i + 1), server: addr(0), sim: sim, emu: emu}
	}
	sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		ctx.Create("server", srv)
		for i, c := range clients {
			ctx.Create(c.self.Addr.String()+string(rune('a'+i)), c)
		}
	}))
	sim.Settle()
	return sim, srv, clients
}

func TestFirstNodeGetsEmptyPeerList(t *testing.T) {
	sim, _, clients := newBootstrapWorld(t, 1)
	c := clients[0]
	c.ctx.Trigger(BootstrapRequest{}, c.bootOuter)
	sim.Run(2 * time.Second)
	if len(c.responses) != 1 {
		t.Fatalf("responses: %d, want 1", len(c.responses))
	}
	if len(c.responses[0].Peers) != 0 {
		t.Fatalf("first node should see no peers: %v", c.responses[0].Peers)
	}
}

func TestKeepalivesRegisterAndPeersReturned(t *testing.T) {
	sim, srv, clients := newBootstrapWorld(t, 2)
	a, b := clients[0], clients[1]

	a.ctx.Trigger(BootstrapRequest{}, a.bootOuter)
	sim.Run(time.Second)
	a.ctx.Trigger(BootstrapDone{Self: a.self}, a.bootOuter)
	sim.Run(2 * time.Second)
	if srv.Srv.AliveCount() != 1 {
		t.Fatalf("server alive %d, want 1", srv.Srv.AliveCount())
	}

	b.ctx.Trigger(BootstrapRequest{}, b.bootOuter)
	sim.Run(time.Second)
	if len(b.responses) != 1 {
		t.Fatalf("b responses: %d", len(b.responses))
	}
	peers := b.responses[0].Peers
	if len(peers) != 1 || peers[0] != a.self {
		t.Fatalf("b peers = %v, want [a]", peers)
	}
}

func TestServerEvictsSilentNodes(t *testing.T) {
	sim, srv, clients := newBootstrapWorld(t, 1)
	a := clients[0]
	a.ctx.Trigger(BootstrapRequest{}, a.bootOuter)
	sim.Run(time.Second)
	a.ctx.Trigger(BootstrapDone{Self: a.self}, a.bootOuter)
	sim.Run(2 * time.Second)
	if srv.Srv.AliveCount() != 1 {
		t.Fatalf("alive %d, want 1", srv.Srv.AliveCount())
	}
	// Crash the client's whole subtree: keep-alives stop, eviction follows.
	for _, ch := range sim.Runtime().Root().Children() {
		if ch.Name() != "server" {
			core.TriggerOn(ch.Control(), core.Kill{}) //nolint:errcheck
		}
	}
	sim.Run(10 * time.Second)
	if srv.Srv.AliveCount() != 0 {
		t.Fatalf("alive %d after silence, want 0", srv.Srv.AliveCount())
	}
}

func TestClientRetriesUntilServerAvailable(t *testing.T) {
	sim := simulation.New(3)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.ConstantLatency(2*time.Millisecond)))
	// Server is partitioned away initially.
	c := &clientHost{self: nodeRef(1), server: addr(0), sim: sim, emu: emu}
	srv := &serverHost{self: addr(0), sim: sim, emu: emu}
	sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		ctx.Create("server", srv)
		ctx.Create("client", c)
	}))
	sim.Settle()
	emu.Partition(1, addr(0))
	c.ctx.Trigger(BootstrapRequest{}, c.bootOuter)
	sim.Run(3 * time.Second)
	if len(c.responses) != 0 {
		t.Fatalf("response through partition?")
	}
	emu.Heal()
	sim.Run(3 * time.Second)
	if len(c.responses) != 1 {
		t.Fatalf("client did not retry to success: %d responses", len(c.responses))
	}
}

func TestDuplicateRequestCoalesced(t *testing.T) {
	sim, _, clients := newBootstrapWorld(t, 1)
	c := clients[0]
	c.ctx.Trigger(BootstrapRequest{}, c.bootOuter)
	c.ctx.Trigger(BootstrapRequest{}, c.bootOuter)
	sim.Run(2 * time.Second)
	if len(c.responses) != 1 {
		t.Fatalf("got %d responses, want 1 (single outstanding request)", len(c.responses))
	}
}
