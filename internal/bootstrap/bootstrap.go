// Package bootstrap implements the paper's reusable bootstrap service: a
// BootstrapServer maintaining a list of online nodes for a system instance,
// and a BootstrapClient component embedded in every node that retrieves
// alive peers for the join protocol and then keeps the server informed with
// periodic keep-alives. The server evicts nodes whose keep-alives stop.
package bootstrap

import (
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/timer"
)

// BootstrapRequest asks the client to fetch alive peers from the server.
type BootstrapRequest struct{}

// BootstrapResponse delivers the list of alive peers.
type BootstrapResponse struct {
	Peers []ident.NodeRef
}

// BootstrapDone tells the client the node has joined; the client starts
// sending periodic keep-alives.
type BootstrapDone struct {
	Self ident.NodeRef
}

// PortType is the Bootstrap service abstraction.
var PortType = core.NewPortType("Bootstrap",
	core.Request[BootstrapRequest](),
	core.Request[BootstrapDone](),
	core.Indication[BootstrapResponse](),
)

// Wire messages.

type getPeersMsg struct {
	network.Header
	// Node identifies the requester, which the server registers
	// tentatively: concurrent joiners then discover each other by request
	// arrival order instead of all seeing an empty system (the
	// thundering-herd founding race). The entry is refreshed by
	// keep-alives once the node joins, or evicted if it never does.
	Node ident.NodeRef
}

type peersMsg struct {
	network.Header
	Peers []ident.NodeRef
}

type keepaliveMsg struct {
	network.Header
	Node ident.NodeRef
}

func init() {
	network.Register(getPeersMsg{})
	network.Register(peersMsg{})
	network.Register(keepaliveMsg{})
}

type retryTimeout struct{ timer.Timeout }
type keepaliveTimeout struct{ timer.Timeout }
type evictTimeout struct{ timer.Timeout }

// ClientConfig parameterizes a BootstrapClient.
type ClientConfig struct {
	// Self is the local node's address.
	Self network.Address
	// SelfRef is the local node's full ring identity, announced to the
	// server on the first request (tentative registration).
	SelfRef ident.NodeRef
	// Server is the bootstrap server's address.
	Server network.Address
	// RetryInterval is how often an unanswered peers request is retried
	// (default 500ms).
	RetryInterval time.Duration
	// KeepaliveInterval is the keep-alive period after BootstrapDone
	// (default 1s).
	KeepaliveInterval time.Duration
}

func (c *ClientConfig) applyDefaults() {
	if c.RetryInterval <= 0 {
		c.RetryInterval = 500 * time.Millisecond
	}
	if c.KeepaliveInterval <= 0 {
		c.KeepaliveInterval = time.Second
	}
}

// Client is the BootstrapClient component: provides Bootstrap, requires
// Network and Timer.
type Client struct {
	cfg ClientConfig

	ctx     *core.Ctx
	boot    *core.Port
	net     *core.Port
	tmr     *core.Port
	waiting bool
	retryID timer.ID
	kaID    timer.ID
	self    ident.NodeRef
	joined  bool
}

// NewClient creates a bootstrap client component definition.
func NewClient(cfg ClientConfig) *Client {
	cfg.applyDefaults()
	return &Client{cfg: cfg}
}

var _ core.Definition = (*Client)(nil)

// Setup declares ports and handlers.
func (c *Client) Setup(ctx *core.Ctx) {
	c.ctx = ctx
	c.boot = ctx.Provides(PortType)
	c.net = ctx.Requires(network.PortType)
	c.tmr = ctx.Requires(timer.PortType)

	core.Subscribe(ctx, c.boot, c.handleRequest)
	core.Subscribe(ctx, c.boot, c.handleDone)
	core.Subscribe(ctx, c.net, c.handlePeers)
	core.Subscribe(ctx, c.tmr, c.handleRetry)
	core.Subscribe(ctx, c.tmr, c.handleKeepalive)
	core.Subscribe(ctx, ctx.Control(), func(core.Stop) {
		if c.waiting {
			ctx.Trigger(timer.CancelPeriodic{ID: c.retryID}, c.tmr)
			c.waiting = false
		}
		if c.joined {
			ctx.Trigger(timer.CancelPeriodic{ID: c.kaID}, c.tmr)
			c.joined = false
		}
	})
}

func (c *Client) handleRequest(BootstrapRequest) {
	c.sendGetPeers()
	if c.waiting {
		return
	}
	c.waiting = true
	c.retryID = timer.NextID()
	c.ctx.Trigger(timer.SchedulePeriodic{
		Delay:   c.cfg.RetryInterval,
		Period:  c.cfg.RetryInterval,
		Timeout: retryTimeout{timer.Timeout{ID: c.retryID}},
	}, c.tmr)
}

func (c *Client) sendGetPeers() {
	c.ctx.Trigger(getPeersMsg{
		Header: network.NewHeader(c.cfg.Self, c.cfg.Server),
		Node:   c.cfg.SelfRef,
	}, c.net)
}

func (c *Client) handleRetry(retryTimeout) {
	if c.waiting {
		c.sendGetPeers()
	}
}

func (c *Client) handlePeers(m peersMsg) {
	if !c.waiting {
		return
	}
	c.waiting = false
	c.ctx.Trigger(timer.CancelPeriodic{ID: c.retryID}, c.tmr)
	c.ctx.Trigger(BootstrapResponse{Peers: m.Peers}, c.boot)
}

func (c *Client) handleDone(d BootstrapDone) {
	if c.joined {
		return
	}
	c.joined = true
	c.self = d.Self
	c.sendKeepalive()
	c.kaID = timer.NextID()
	c.ctx.Trigger(timer.SchedulePeriodic{
		Delay:   c.cfg.KeepaliveInterval,
		Period:  c.cfg.KeepaliveInterval,
		Timeout: keepaliveTimeout{timer.Timeout{ID: c.kaID}},
	}, c.tmr)
}

func (c *Client) handleKeepalive(keepaliveTimeout) {
	if c.joined {
		c.sendKeepalive()
	}
}

func (c *Client) sendKeepalive() {
	c.ctx.Trigger(keepaliveMsg{
		Header: network.NewHeader(c.cfg.Self, c.cfg.Server),
		Node:   c.self,
	}, c.net)
}

// ServerConfig parameterizes a BootstrapServer.
type ServerConfig struct {
	// Self is the server's address.
	Self network.Address
	// EvictAfter is how long a node may stay silent before eviction
	// (default 3s).
	EvictAfter time.Duration
	// EvictInterval is the eviction sweep period (default 1s).
	EvictInterval time.Duration
	// MaxPeersReturned caps the peer list in responses (default 32).
	MaxPeersReturned int
}

func (c *ServerConfig) applyDefaults() {
	if c.EvictAfter <= 0 {
		c.EvictAfter = 3 * time.Second
	}
	if c.EvictInterval <= 0 {
		c.EvictInterval = time.Second
	}
	if c.MaxPeersReturned <= 0 {
		c.MaxPeersReturned = 32
	}
}

// Server is the BootstrapServer component: requires Network and Timer.
type Server struct {
	cfg ServerConfig

	ctx   *core.Ctx
	net   *core.Port
	tmr   *core.Port
	alive map[network.Address]aliveEntry
	tid   timer.ID
}

type aliveEntry struct {
	node ident.NodeRef
	seen time.Time
}

// NewServer creates a bootstrap server component definition.
func NewServer(cfg ServerConfig) *Server {
	cfg.applyDefaults()
	return &Server{cfg: cfg, alive: make(map[network.Address]aliveEntry)}
}

var _ core.Definition = (*Server)(nil)

// Setup declares ports and handlers.
func (s *Server) Setup(ctx *core.Ctx) {
	s.ctx = ctx
	s.net = ctx.Requires(network.PortType)
	s.tmr = ctx.Requires(timer.PortType)

	core.Subscribe(ctx, s.net, s.handleGetPeers)
	core.Subscribe(ctx, s.net, s.handleKeepalive)
	core.Subscribe(ctx, s.tmr, s.handleEvict)
	core.Subscribe(ctx, ctx.Control(), func(core.Start) {
		s.tid = timer.NextID()
		ctx.Trigger(timer.SchedulePeriodic{
			Delay:   s.cfg.EvictInterval,
			Period:  s.cfg.EvictInterval,
			Timeout: evictTimeout{timer.Timeout{ID: s.tid}},
		}, s.tmr)
	})
	core.Subscribe(ctx, ctx.Control(), func(core.Stop) {
		ctx.Trigger(timer.CancelPeriodic{ID: s.tid}, s.tmr)
	})
}

func (s *Server) handleGetPeers(m getPeersMsg) {
	peers := make([]ident.NodeRef, 0, len(s.alive))
	for addr, e := range s.alive {
		if addr == m.Source() {
			continue
		}
		peers = append(peers, e.node)
	}
	// Sort before capping so the returned subset is deterministic.
	ident.SortByKey(peers)
	if len(peers) > s.cfg.MaxPeersReturned {
		peers = peers[:s.cfg.MaxPeersReturned]
	}
	s.ctx.Trigger(peersMsg{Header: network.Reply(m), Peers: peers}, s.net)
	// Tentatively register the requester AFTER answering: simultaneous
	// joiners are serialized by request arrival — the first founds the
	// ring, the rest learn of it. Keep-alives refresh the entry once the
	// node joins; eviction removes it if it never does.
	if !m.Node.IsZero() {
		if _, known := s.alive[m.Source()]; !known {
			s.alive[m.Source()] = aliveEntry{node: m.Node, seen: s.ctx.Now()}
		}
	}
}

func (s *Server) handleKeepalive(m keepaliveMsg) {
	s.alive[m.Source()] = aliveEntry{node: m.Node, seen: s.ctx.Now()}
}

func (s *Server) handleEvict(evictTimeout) {
	cutoff := s.ctx.Now().Add(-s.cfg.EvictAfter)
	for addr, e := range s.alive {
		if e.seen.Before(cutoff) {
			delete(s.alive, addr)
		}
	}
}

// AliveCount returns the number of nodes the server considers online.
func (s *Server) AliveCount() int { return len(s.alive) }
