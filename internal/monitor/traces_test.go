package monitor

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/tracing"
	"repro/internal/web"
)

// traceServer serves a fixed span ring dump at /debug/trace, the way a
// node's web bridge does.
func traceServer(t *testing.T, spans []tracing.Span) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/trace" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(web.TraceDump{SampleEvery: 64, Recorded: uint64(len(spans)), Spans: spans})
	}))
	t.Cleanup(srv.Close)
	return srv
}

func at(ms int) time.Time { return time.Unix(0, int64(ms)*int64(time.Millisecond)) }

// TestTraceCollectorJoinsAcrossNodes pins the federate-style join: each
// node holds only its own slice of a trace, and the collector's merged
// span set assembles into one timeline spanning both nodes, with
// unreachable nodes reported rather than silently skipped.
func TestTraceCollectorJoinsAcrossNodes(t *testing.T) {
	const trace = 0x7777
	coord := traceServer(t, []tracing.Span{
		{Trace: trace, ID: 1, Node: "a:1", Name: "put", Key: "k", Outcome: "ok", Start: at(0), End: at(10)},
		{Trace: trace, ID: 2, Parent: 1, Node: "a:1", Name: "attempt", Start: at(0), End: at(10)},
	})
	replica := traceServer(t, []tracing.Span{
		{Trace: trace, ID: 9, Parent: 2, Node: "b:1", Name: "serve.write", Outcome: "ok", Start: at(4), End: at(4)},
	})

	targets := map[string]string{
		"a": strings.TrimPrefix(coord.URL, "http://"),
		"b": strings.TrimPrefix(replica.URL, "http://"),
		"c": "127.0.0.1:1", // nothing listens
	}
	c := NewTraceCollector(time.Second)
	spans, errs := c.Collect(targets)
	if len(spans) != 3 {
		t.Fatalf("collected %d spans, want 3", len(spans))
	}
	if len(errs) != 1 || errs["c"] == "" {
		t.Fatalf("scrape errors = %v, want exactly node c", errs)
	}

	tls := tracing.Assemble(spans)
	if len(tls) != 1 || tls[0].Trace != trace {
		t.Fatalf("assembled %+v, want one timeline for %x", tls, trace)
	}
	if len(tls[0].Nodes) != 2 || tls[0].Nodes[0] != "a:1" || tls[0].Nodes[1] != "b:1" {
		t.Fatalf("timeline nodes = %v, want [a:1 b:1]", tls[0].Nodes)
	}
	if tls[0].Name != "put" || tls[0].Outcome != "ok" {
		t.Fatalf("root identity lost: %+v", tls[0])
	}
}

// filterFixture builds three assembled timelines: a fast clean get, a
// slow put that crossed an epoch restart, and a handoff round.
func filterFixture() []tracing.Timeline {
	return tracing.Assemble([]tracing.Span{
		{Trace: 0x1, ID: 1, Node: "a", Name: "get", Outcome: "ok", Start: at(0), End: at(2)},
		{Trace: 0x1, ID: 2, Parent: 1, Node: "a", Name: "read", Outcome: "ok", Start: at(0), End: at(2)},

		{Trace: 0x2, ID: 1, Node: "a", Name: "put", Outcome: "ok", Start: at(1), End: at(50)},
		{Trace: 0x2, ID: 3, Parent: 1, Link: 2, Node: "a", Name: "attempt", Start: at(20), End: at(50)},
		{Trace: 0x2, ID: 4, Parent: 3, Node: "a", Name: "write", Outcome: "ok", Start: at(30), End: at(50)},

		{Trace: 0x3, ID: 1, Node: "b", Name: "handoff.round", Outcome: "ok", Start: at(2), End: at(20)},
	})
}

func TestFilterTimelinesSlowest(t *testing.T) {
	tls, err := FilterTimelines(filterFixture(), url.Values{"slowest": {"2"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tls) != 2 || tls[0].Trace != 0x2 || tls[1].Trace != 0x3 {
		t.Fatalf("slowest-2 = %+v, want traces [2 3]", tls)
	}
}

func TestFilterTimelinesByPhaseAndRestarts(t *testing.T) {
	tls, err := FilterTimelines(filterFixture(), url.Values{"phase": {"write"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tls) != 1 || tls[0].Trace != 0x2 {
		t.Fatalf("phase=write = %+v, want only trace 2", tls)
	}

	tls, err = FilterTimelines(filterFixture(), url.Values{"restarts": {"1"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tls) != 1 || tls[0].Trace != 0x2 || tls[0].Restarts != 1 {
		t.Fatalf("restarts>=1 = %+v, want only the restarted put", tls)
	}
}

func TestFilterTimelinesByID(t *testing.T) {
	tls, err := FilterTimelines(filterFixture(), url.Values{"id": {tracing.FormatID(0x3)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tls) != 1 || tls[0].Trace != 0x3 {
		t.Fatalf("id filter = %+v, want only trace 3", tls)
	}
	if _, err := FilterTimelines(filterFixture(), url.Values{"id": {"not-hex"}}); err == nil {
		t.Fatal("bad id accepted")
	}
	if _, err := FilterTimelines(filterFixture(), url.Values{"slowest": {"0"}}); err == nil {
		t.Fatal("bad slowest accepted")
	}
}

func TestFilterTimelinesLimit(t *testing.T) {
	tls, err := FilterTimelines(filterFixture(), url.Values{"limit": {"1"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tls) != 1 || tls[0].Trace != 0x1 {
		t.Fatalf("limit=1 = %+v, want the earliest timeline only", tls)
	}
}
