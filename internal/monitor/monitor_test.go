package monitor

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/simulation"
	"repro/internal/status"
	"repro/internal/timer"
	"repro/internal/web"
)

func addr(i int) network.Address { return network.Address{Host: "mon", Port: uint16(i)} }

// fakeService provides a Status port with fixed metrics.
type fakeService struct {
	name string
	val  int64
}

func (f *fakeService) Setup(ctx *core.Ctx) {
	st := ctx.Provides(status.PortType)
	core.Subscribe(ctx, st, func(q status.Request) {
		ctx.Trigger(status.Response{
			ReqID:     q.ReqID,
			Component: f.name,
			Metrics:   map[string]int64{"value": f.val},
		}, st)
	})
}

// clientNode hosts a monitor client wired to two fake services.
type clientNode struct {
	self   network.Address
	server network.Address
	sim    *simulation.Simulation
	emu    *simulation.NetworkEmulator
	Client *Client
}

func (n *clientNode) Setup(ctx *core.Ctx) {
	tr := ctx.Create("net", n.emu.Transport(n.self))
	tm := ctx.Create("timer", simulation.NewTimer(n.sim))
	s1 := ctx.Create("svc1", &fakeService{name: "alpha", val: 1})
	s2 := ctx.Create("svc2", &fakeService{name: "beta", val: 2})
	n.Client = NewClient(ClientConfig{
		Self:     n.self,
		Server:   n.server,
		NodeName: "node-1",
		Period:   500 * time.Millisecond,
	})
	clC := ctx.Create("client", n.Client)
	ctx.Connect(clC.Required(network.PortType), tr.Provided(network.PortType))
	ctx.Connect(clC.Required(timer.PortType), tm.Provided(timer.PortType))
	ctx.Connect(clC.Required(status.PortType), s1.Provided(status.PortType))
	ctx.Connect(clC.Required(status.PortType), s2.Provided(status.PortType))
}

// serverNode hosts the monitor server and records web responses.
type serverNode struct {
	self network.Address
	sim  *simulation.Simulation
	emu  *simulation.NetworkEmulator

	ctx      *core.Ctx
	Server   *Server
	webOuter *core.Port
	pages    []web.Response
}

func (n *serverNode) Setup(ctx *core.Ctx) {
	n.ctx = ctx
	tr := ctx.Create("net", n.emu.Transport(n.self))
	n.Server = NewServer(ServerConfig{Self: n.self, ExpireAfter: 5 * time.Second})
	srvC := ctx.Create("server", n.Server)
	ctx.Connect(srvC.Required(network.PortType), tr.Provided(network.PortType))
	n.webOuter = srvC.Provided(web.PortType)
	core.Subscribe(ctx, n.webOuter, func(r web.Response) { n.pages = append(n.pages, r) })
}

func newMonitorWorld(t *testing.T) (*simulation.Simulation, *clientNode, *serverNode) {
	t.Helper()
	sim := simulation.New(77)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.ConstantLatency(2*time.Millisecond)))
	srv := &serverNode{self: addr(0), sim: sim, emu: emu}
	cl := &clientNode{self: addr(1), server: addr(0), sim: sim, emu: emu}
	sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		ctx.Create("server", srv)
		ctx.Create("client", cl)
	}))
	sim.Settle()
	return sim, cl, srv
}

func TestClientCollectsSnapshots(t *testing.T) {
	sim, cl, _ := newMonitorWorld(t)
	sim.Run(600 * time.Millisecond) // one tick: request issued
	if got := len(cl.Client.Pending()); got != 2 {
		t.Fatalf("pending snapshots %d, want 2 (alpha and beta)", got)
	}
}

func TestServerAggregatesReports(t *testing.T) {
	sim, _, srv := newMonitorWorld(t)
	sim.Run(3 * time.Second) // several report rounds
	if srv.Server.NodeCount() != 1 {
		t.Fatalf("server views %d, want 1", srv.Server.NodeCount())
	}
	v, ok := srv.Server.View("node-1")
	if !ok || len(v.Snapshots) != 2 {
		t.Fatalf("view: %+v ok=%v", v, ok)
	}
}

func TestServerWebPageRendersGlobalView(t *testing.T) {
	sim, _, srv := newMonitorWorld(t)
	sim.Run(3 * time.Second)
	_ = core.TriggerOn(srv.webOuter, web.Request{ReqID: 1, Path: "/"})
	sim.Run(time.Second)
	if len(srv.pages) != 1 {
		t.Fatalf("pages %d", len(srv.pages))
	}
	body := srv.pages[0].Body
	for _, want := range []string{"Global view: 1 nodes", "node-1", "alpha", "beta", "value=1", "value=2"} {
		if !strings.Contains(body, want) {
			t.Fatalf("page missing %q:\n%s", want, body)
		}
	}
}

func TestServerExpiresStaleViews(t *testing.T) {
	sim, cl, srv := newMonitorWorld(t)
	sim.Run(3 * time.Second)
	if srv.Server.NodeCount() != 1 {
		t.Fatalf("precondition: 1 view")
	}
	// Silence the client and let the view expire (expiry happens on page
	// render).
	_ = cl
	for _, ch := range sim.Runtime().Root().Children() {
		if ch.Name() == "client" {
			core.TriggerOn(ch.Control(), core.Kill{}) //nolint:errcheck
		}
	}
	sim.Run(10 * time.Second)
	_ = core.TriggerOn(srv.webOuter, web.Request{ReqID: 2, Path: "/"})
	sim.Run(time.Second)
	if srv.Server.NodeCount() != 0 {
		t.Fatalf("stale view survived: %d", srv.Server.NodeCount())
	}
}

func TestStaleStatusResponsesIgnored(t *testing.T) {
	sim, cl, _ := newMonitorWorld(t)
	sim.Run(600 * time.Millisecond)
	// Inject a response with a stale round ID directly.
	before := len(cl.Client.Pending())
	// reqSeq is 1 after the first tick; ReqID 999 is stale/foreign.
	clComp := findChild(t, sim.Runtime().Root(), "client", "client")
	_ = core.TriggerOn(clComp.Required(status.PortType), status.Response{ReqID: 999, Component: "x"})
	sim.Run(time.Millisecond)
	if len(cl.Client.Pending()) != before {
		t.Fatalf("stale response accepted")
	}
}

// findChild walks two levels of the component tree.
func findChild(t *testing.T, root *core.Component, names ...string) *core.Component {
	t.Helper()
	cur := root
	for _, name := range names {
		var next *core.Component
		for _, ch := range cur.Children() {
			if ch.Name() == name {
				next = ch
				break
			}
		}
		if next == nil {
			t.Fatalf("component %q not found under %s", name, cur.Path())
		}
		cur = next
	}
	return cur
}
