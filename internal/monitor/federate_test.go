package monitor

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/web"
)

func TestInjectNodeLabel(t *testing.T) {
	in := "# HELP cats_demo A demo counter\n" +
		"# TYPE cats_demo counter\n" +
		"cats_demo 42\n" +
		"cats_labeled{worker=\"3\"} 7\n" +
		"\n"
	got := InjectNodeLabel(in, "node-1")
	want := "# HELP cats_demo A demo counter\n" +
		"# TYPE cats_demo counter\n" +
		"cats_demo{node=\"node-1\"} 42\n" +
		"cats_labeled{node=\"node-1\",worker=\"3\"} 7\n"
	if got != want {
		t.Fatalf("labeled exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestFederatorScrape runs two fake node /metrics endpoints plus one dead
// target and checks the merged output: every live sample node-labeled,
// nodes sorted, the dead node reported as a comment.
func TestFederatorScrape(t *testing.T) {
	mkSrv := func(body string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/metrics" {
				http.NotFound(w, r)
				return
			}
			w.Write([]byte(body))
		}))
	}
	s1 := mkSrv("cats_group_epoch 5\n")
	defer s1.Close()
	s2 := mkSrv("cats_handoff_keys_total{dir=\"in\"} 9\n")
	defer s2.Close()

	f := NewFederator(time.Second)
	out := f.Scrape(map[string]string{
		"node-b": strings.TrimPrefix(s2.URL, "http://"),
		"node-a": strings.TrimPrefix(s1.URL, "http://"),
		"node-c": "127.0.0.1:1", // nothing listens here
	})

	if !strings.HasPrefix(out, "# CATS federation: 3 nodes\n") {
		t.Fatalf("missing federation header:\n%s", out)
	}
	for _, want := range []string{
		"cats_group_epoch{node=\"node-a\"} 5\n",
		"cats_handoff_keys_total{node=\"node-b\",dir=\"in\"} 9\n",
		"# node node-c: scrape failed:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("federated output missing %q:\n%s", want, out)
		}
	}
	// node-a's samples come before node-b's (sorted merge).
	if strings.Index(out, "node-a") > strings.Index(out, `node="node-b"`) {
		t.Fatalf("nodes not sorted:\n%s", out)
	}
}

// TestFederateEndpointEmpty drives the component-level /federate path with
// no advertised metrics URLs: still a valid exposition, zero nodes.
func TestFederateEndpointEmpty(t *testing.T) {
	sim, _, srv := newMonitorWorld(t)
	sim.Run(3 * time.Second)
	srv.ctx.Trigger(web.Request{ReqID: 1, Path: "/federate"}, srv.webOuter)
	sim.Run(10 * time.Millisecond)
	if len(srv.pages) != 1 {
		t.Fatalf("responses: %d", len(srv.pages))
	}
	p := srv.pages[0]
	if p.Status != 200 || !strings.HasPrefix(p.Body, "# CATS federation: 0 nodes\n") {
		t.Fatalf("federate response: %+v", p)
	}
	if !strings.Contains(p.ContentType, "text/plain") {
		t.Fatalf("content type: %q", p.ContentType)
	}
}
