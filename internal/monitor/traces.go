package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/tracing"
	"repro/internal/web"
)

// Trace federation: the federate pattern applied to spans. Every member
// node keeps only its own slice of each sampled operation in its local
// span ring; the monitor scrapes each node's /debug/trace, joins the
// spans by trace ID, and serves assembled cross-node timelines at
// /traces — the only place an operation's full story (coordinator phases,
// replica serves, transport sends, handoff rounds) exists in one piece.

// defaultTraceLimit bounds an unfiltered /traces reply.
const defaultTraceLimit = 100

// TraceCollector scrapes node /debug/trace endpoints in parallel and
// merges the spans. Plain Go (no component state) so it can be
// unit-tested against httptest servers.
type TraceCollector struct {
	client *http.Client
}

// NewTraceCollector creates a collector whose per-node scrapes time out
// after timeout (default 2s).
func NewTraceCollector(timeout time.Duration) *TraceCollector {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &TraceCollector{client: &http.Client{Timeout: timeout}}
}

// Collect fetches every target's span ring (node name → host:port), in
// parallel, and returns the merged span set plus per-node scrape errors.
// Spans keep their own Node field, so merge order does not matter for the
// assembled timelines.
func (c *TraceCollector) Collect(targets map[string]string) ([]tracing.Span, map[string]string) {
	names := make([]string, 0, len(targets))
	for n := range targets {
		names = append(names, n)
	}
	sort.Strings(names)

	type result struct {
		node  string
		spans []tracing.Span
		err   error
	}
	results := make([]result, len(names))
	var wg sync.WaitGroup
	for i, n := range names {
		wg.Add(1)
		go func(i int, node, host string) {
			defer wg.Done()
			dump, err := c.fetch("http://" + host + "/debug/trace")
			results[i] = result{node: node, spans: dump.Spans, err: err}
		}(i, n, targets[n])
	}
	wg.Wait()

	var spans []tracing.Span
	errs := make(map[string]string)
	for _, r := range results {
		if r.err != nil {
			errs[r.node] = r.err.Error()
			continue
		}
		spans = append(spans, r.spans...)
	}
	return spans, errs
}

func (c *TraceCollector) fetch(url string) (web.TraceDump, error) {
	var dump web.TraceDump
	resp, err := c.client.Get(url)
	if err != nil {
		return dump, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return dump, fmt.Errorf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return dump, err
	}
	if err := json.Unmarshal(body, &dump); err != nil {
		return dump, fmt.Errorf("bad trace dump: %w", err)
	}
	return dump, nil
}

// TracesReply is the JSON document served at /traces (and consumed by
// catsctl trace / catsctl traces).
type TracesReply struct {
	// NodesScraped is how many member nodes contributed spans.
	NodesScraped int `json:"nodes_scraped"`
	// ScrapeErrors lists nodes whose ring could not be fetched.
	ScrapeErrors map[string]string `json:"scrape_errors,omitempty"`
	// Timelines is the count after filtering (len(Result)).
	Timelines int `json:"timelines"`
	// Result holds the assembled, filtered timelines.
	Result []tracing.Timeline `json:"result"`
}

// FilterTimelines applies the /traces query parameters to assembled
// timelines:
//
//	id=<hex>     exactly one trace
//	phase=<name> only timelines containing a span with that name
//	restarts=N   only timelines with at least N epoch-restart links
//	slowest=N    slowest-first, truncated to N
//	limit=N      truncate (default 100; ignored when slowest is given)
func FilterTimelines(tls []tracing.Timeline, q url.Values) ([]tracing.Timeline, error) {
	if idS := q.Get("id"); idS != "" {
		id, err := tracing.ParseID(idS)
		if err != nil {
			return nil, err
		}
		var out []tracing.Timeline
		for _, tl := range tls {
			if tl.Trace == id {
				out = append(out, tl)
			}
		}
		return out, nil
	}
	if phase := q.Get("phase"); phase != "" {
		kept := tls[:0]
		for _, tl := range tls {
			if tl.HasPhase(phase) {
				kept = append(kept, tl)
			}
		}
		tls = kept
	}
	if rs := q.Get("restarts"); rs != "" {
		min, err := strconv.Atoi(rs)
		if err != nil {
			return nil, fmt.Errorf("bad restarts %q: %w", rs, err)
		}
		kept := tls[:0]
		for _, tl := range tls {
			if tl.Restarts >= min {
				kept = append(kept, tl)
			}
		}
		tls = kept
	}
	limit := defaultTraceLimit
	if ns := q.Get("slowest"); ns != "" {
		n, err := strconv.Atoi(ns)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad slowest %q", ns)
		}
		tracing.SortSlowest(tls)
		limit = n
	} else if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad limit %q", ls)
		}
		limit = n
	}
	if len(tls) > limit {
		tls = tls[:limit]
	}
	return tls, nil
}

// renderTraces scrapes every reporting node's span ring, assembles the
// cross-node timelines, and serves the filtered result as JSON.
func (s *Server) renderTraces(r web.Request) {
	q, err := url.ParseQuery(r.Query)
	if err != nil {
		s.tracesError(r, err)
		return
	}
	s.expire()
	targets := make(map[string]string)
	for name, v := range s.views {
		if v.MetricsURL != "" {
			targets[name] = v.MetricsURL
		}
	}
	spans, errs := s.traces.Collect(targets)
	tls, err := FilterTimelines(tracing.Assemble(spans), q)
	if err != nil {
		s.tracesError(r, err)
		return
	}
	reply := TracesReply{
		NodesScraped: len(targets) - len(errs),
		ScrapeErrors: errs,
		Timelines:    len(tls),
		Result:       tls,
	}
	body, err := json.MarshalIndent(reply, "", "  ")
	if err != nil {
		s.tracesError(r, err)
		return
	}
	s.ctx.Trigger(web.Response{
		ReqID:       r.ReqID,
		Status:      200,
		ContentType: "application/json",
		Body:        string(body),
	}, s.webP)
}

func (s *Server) tracesError(r web.Request, err error) {
	s.ctx.Trigger(web.Response{
		ReqID:       r.ReqID,
		Status:      400,
		ContentType: "text/plain; charset=utf-8",
		Body:        err.Error() + "\n",
	}, s.webP)
}
