// Package monitor implements the paper's reusable monitoring service: a
// Status port abstraction through which components expose internal
// metrics, a MonitorClient component at each node that periodically
// collects status snapshots and reports them to a monitoring server over
// the network, and a MonitorServer that aggregates reports into a global
// view of the system (served over the Web abstraction).
package monitor

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/status"
	"repro/internal/timer"
	"repro/internal/web"
)

// reportMsg carries a node's aggregated status to the monitor server.
// MetricsURL, when non-empty, is the node's web listen address — the
// scrape target the server's /federate endpoint proxies.
type reportMsg struct {
	network.Header
	Node       string
	MetricsURL string
	Snapshots  []status.Response
}

func init() {
	network.Register(reportMsg{})
}

type collectTimeout struct{ timer.Timeout }

// ClientConfig parameterizes a MonitorClient.
type ClientConfig struct {
	// Self is the local node's address.
	Self network.Address
	// Server is the monitor server's address (zero: only local snapshots,
	// no reports).
	Server network.Address
	// NodeName labels this node in the global view.
	NodeName string
	// MetricsURL is the node's web listen address (host:port), advertised
	// to the server so /federate can scrape this node's /metrics (empty:
	// node not federated).
	MetricsURL string
	// Period is the collection interval (default 2s).
	Period time.Duration
}

func (c *ClientConfig) applyDefaults() {
	if c.Period <= 0 {
		c.Period = 2 * time.Second
	}
	if c.NodeName == "" {
		c.NodeName = c.Self.String()
	}
}

// Client is the MonitorClient component: requires Status (fan-in from all
// inspected components), Network, and Timer. Each period it broadcasts a
// StatusRequest on its Status port; every connected component answers, and
// the batch collected until the next tick is reported to the server.
type Client struct {
	cfg ClientConfig

	ctx     *core.Ctx
	status  *core.Port
	net     *core.Port
	tmr     *core.Port
	tid     timer.ID
	reqSeq  uint64
	pending []status.Response
}

// NewClient creates a monitor client component definition.
func NewClient(cfg ClientConfig) *Client {
	cfg.applyDefaults()
	return &Client{cfg: cfg}
}

var _ core.Definition = (*Client)(nil)

// Setup declares ports and handlers.
func (c *Client) Setup(ctx *core.Ctx) {
	c.ctx = ctx
	c.status = ctx.Requires(status.PortType)
	c.net = ctx.Requires(network.PortType)
	c.tmr = ctx.Requires(timer.PortType)

	core.Subscribe(ctx, c.status, c.handleStatus)
	core.Subscribe(ctx, c.tmr, c.handleTick)
	core.Subscribe(ctx, ctx.Control(), func(core.Start) {
		c.tid = timer.NextID()
		ctx.Trigger(timer.SchedulePeriodic{
			Delay:   c.cfg.Period,
			Period:  c.cfg.Period,
			Timeout: collectTimeout{timer.Timeout{ID: c.tid}},
		}, c.tmr)
	})
	core.Subscribe(ctx, ctx.Control(), func(core.Stop) {
		ctx.Trigger(timer.CancelPeriodic{ID: c.tid}, c.tmr)
	})
}

// handleTick ships the previous round's snapshots and requests fresh ones.
func (c *Client) handleTick(collectTimeout) {
	if len(c.pending) > 0 && !c.cfg.Server.IsZero() {
		c.ctx.Trigger(reportMsg{
			Header:     network.NewHeader(c.cfg.Self, c.cfg.Server),
			Node:       c.cfg.NodeName,
			MetricsURL: c.cfg.MetricsURL,
			Snapshots:  c.pending,
		}, c.net)
	}
	c.pending = nil
	c.reqSeq++
	c.ctx.Trigger(status.Request{ReqID: c.reqSeq}, c.status)
}

func (c *Client) handleStatus(s status.Response) {
	if s.ReqID != c.reqSeq {
		return // stale round
	}
	c.pending = append(c.pending, s)
}

// Pending returns the snapshots collected in the current round (tests).
func (c *Client) Pending() []status.Response {
	out := make([]status.Response, len(c.pending))
	copy(out, c.pending)
	return out
}

// NodeView is the server's last report from one node.
type NodeView struct {
	Node       string
	MetricsURL string
	Received   time.Time
	Snapshots  []status.Response
}

// ServerConfig parameterizes a MonitorServer.
type ServerConfig struct {
	// Self is the server's address.
	Self network.Address
	// ExpireAfter drops node views not refreshed in this window
	// (default 10s).
	ExpireAfter time.Duration
	// AlertRules evaluated over each node's consecutive runtime rollups
	// (nil: DefaultAlertRules).
	AlertRules []AlertRule
	// ScrapeTimeout bounds each /federate per-node metrics scrape
	// (default 2s).
	ScrapeTimeout time.Duration
}

func (c *ServerConfig) applyDefaults() {
	if c.ExpireAfter <= 0 {
		c.ExpireAfter = 10 * time.Second
	}
}

// Server is the MonitorServer component: requires Network, provides Web
// (the global view page at any path, the firing alerts at /alerts).
type Server struct {
	cfg ServerConfig

	ctx   *core.Ctx
	net   *core.Port
	webP  *core.Port
	views map[string]NodeView

	rules       []AlertRule
	prevRuntime map[string]map[string]int64
	alerts      map[string][]Alert
	depthHWM    map[string]int64

	fed    *Federator
	traces *TraceCollector
}

// NewServer creates a monitor server component definition.
func NewServer(cfg ServerConfig) *Server {
	cfg.applyDefaults()
	rules := cfg.AlertRules
	if rules == nil {
		rules = DefaultAlertRules()
	}
	return &Server{
		cfg:         cfg,
		views:       make(map[string]NodeView),
		rules:       rules,
		prevRuntime: make(map[string]map[string]int64),
		alerts:      make(map[string][]Alert),
		depthHWM:    make(map[string]int64),
		fed:         NewFederator(cfg.ScrapeTimeout),
		traces:      NewTraceCollector(cfg.ScrapeTimeout),
	}
}

var _ core.Definition = (*Server)(nil)

// Setup declares ports and handlers.
func (s *Server) Setup(ctx *core.Ctx) {
	s.ctx = ctx
	s.net = ctx.Requires(network.PortType)
	s.webP = ctx.Provides(web.PortType)

	core.Subscribe(ctx, s.net, s.handleReport)
	core.Subscribe(ctx, s.webP, s.handleWeb)
}

func (s *Server) handleReport(m reportMsg) {
	s.views[m.Node] = NodeView{Node: m.Node, MetricsURL: m.MetricsURL, Received: s.ctx.Now(), Snapshots: m.Snapshots}
	for _, snap := range m.Snapshots {
		if snap.Component == "runtime" {
			s.observeRuntime(m.Node, snap.Metrics)
			break
		}
	}
}

// handleWeb renders the global view as a plain HTML page; /alerts serves
// the firing alert list, /federate the merged per-node metrics scrape,
// /traces the cross-node span timelines joined from every node's ring.
func (s *Server) handleWeb(r web.Request) {
	if r.Path == "/alerts" {
		s.renderAlerts(r)
		return
	}
	if r.Path == "/federate" {
		s.renderFederate(r)
		return
	}
	if r.Path == "/traces" {
		s.renderTraces(r)
		return
	}
	s.expire()
	var b strings.Builder
	b.WriteString("<html><head><title>CATS global view</title></head><body>")
	fmt.Fprintf(&b, "<h1>Global view: %d nodes</h1>", len(s.views))
	for _, name := range s.nodeNames() {
		v := s.views[name]
		fmt.Fprintf(&b, "<h2>%s</h2><ul>", v.Node)
		for _, snap := range v.Snapshots {
			fmt.Fprintf(&b, "<li><b>%s</b>: ", snap.Component)
			keys := make([]string, 0, len(snap.Metrics))
			for k := range snap.Metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for i, k := range keys {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s=%d", k, snap.Metrics[k])
			}
			b.WriteString("</li>")
		}
		b.WriteString("</ul>")
	}
	b.WriteString("</body></html>")
	s.ctx.Trigger(web.Response{
		ReqID:  r.ReqID,
		Status: 200,
		Body:   b.String(),
	}, s.webP)
}

// expire drops stale node views along with their alert state.
func (s *Server) expire() {
	cutoff := s.ctx.Now().Add(-s.cfg.ExpireAfter)
	for n, v := range s.views {
		if v.Received.Before(cutoff) {
			delete(s.views, n)
			delete(s.prevRuntime, n)
			delete(s.alerts, n)
			delete(s.depthHWM, n)
		}
	}
}

// nodeNames returns the known node names sorted.
func (s *Server) nodeNames() []string {
	names := make([]string, 0, len(s.views))
	for n := range s.views {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NodeCount returns the number of live node views (tests).
func (s *Server) NodeCount() int { return len(s.views) }

// View returns the last report from a node (tests).
func (s *Server) View(node string) (NodeView, bool) {
	v, ok := s.views[node]
	return v, ok
}
