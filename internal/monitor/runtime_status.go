package monitor

import (
	"repro/internal/abd"
	"repro/internal/core"
	"repro/internal/handoff"
	"repro/internal/kvstore"
	"repro/internal/network"
	"repro/internal/status"
	"repro/internal/tracing"
)

// RuntimeStatus is a Status producer that answers with the node's runtime
// telemetry — scheduler, component, routing-cache, trace, and network
// counters — flattened into the map[string]int64 wire form of
// status.Response. Attached next to a node's functional components, it makes
// every node's runtime internals visible in the monitor server's global view
// without the server knowing anything about the telemetry layer.
type RuntimeStatus struct {
	ctx  *core.Ctx
	port *core.Port
}

// NewRuntimeStatus creates a runtime-status component definition.
func NewRuntimeStatus() *RuntimeStatus { return &RuntimeStatus{} }

var _ core.Definition = (*RuntimeStatus)(nil)

// Setup declares the provided Status port.
func (r *RuntimeStatus) Setup(ctx *core.Ctx) {
	r.ctx = ctx
	r.port = ctx.Provides(status.PortType)
	core.Subscribe(ctx, r.port, r.handleRequest)
}

func (r *RuntimeStatus) handleRequest(req status.Request) {
	r.ctx.Trigger(status.Response{
		ReqID:     req.ReqID,
		Component: "runtime",
		Metrics:   FlattenRuntimeMetrics(r.ctx.Runtime().MetricsSnapshot(), network.GlobalMetrics()),
	}, r.port)
}

// FlattenRuntimeMetrics converts a telemetry snapshot plus the network
// counters into the flat map carried by status.Response. Per-component series
// are summed: the monitor view is a node-level rollup, the full breakdown
// stays on the node's own /metrics endpoint.
func FlattenRuntimeMetrics(s core.MetricsSnapshot, n network.Metrics) map[string]int64 {
	m := map[string]int64{
		"components.live":   s.LiveComponents,
		"components.total":  s.TotalComponents,
		"faults":            int64(s.Faults),
		"sched.workers":     int64(s.Scheduler.Workers),
		"sched.executed":    int64(s.Scheduler.Executed),
		"sched.local_pops":  int64(s.Scheduler.LocalPops),
		"sched.steals":      int64(s.Scheduler.Steals),
		"sched.steal_miss":  int64(s.Scheduler.StealMisses),
		"sched.stolen":      int64(s.Scheduler.Stolen),
		"sched.shrinks":     int64(s.Scheduler.StealShrinks),
		"sched.parks":       int64(s.Scheduler.Parks),
		"sched.max_depth":   s.Scheduler.MaxDequeDepth,
		"routecache.tables": int64(s.RouteCache.Tables),
		"routecache.plans":  int64(s.RouteCache.Plans),
		"routecache.builds": int64(s.RouteCache.Builds),
		"routecache.resets": int64(s.RouteCache.Resets),
		"net.sent":          int64(n.Sent),
		"net.received":      int64(n.Received),
		"net.dropped":       int64(n.DroppedFull),
		"net.send_errors":   int64(n.SendErrors),
		"net.zlib_msgs":     int64(n.CompressedMsgs),
		"net.zlib_in":       int64(n.CompressedIn),
		"net.zlib_out":      int64(n.CompressedOut),
		"net.reconnects":    int64(n.Reconnects),
		"net.requeued":      int64(n.Requeued),
		"net.abandoned":     int64(n.Abandoned),
		"net.traced":        int64(n.TracedFrames),
		"net.peers_up":      n.PeersUp,
		"net.peers_backoff": n.PeersBackoff,
	}
	var handled, triggers int64
	for _, c := range s.Components {
		handled += int64(c.Handled)
		triggers += int64(c.Triggers)
	}
	m["comps.handled"] = handled
	m["comps.triggers"] = triggers
	if s.Trace.Enabled {
		m["trace.records"] = int64(s.Trace.Records)
	}
	h := handoff.GlobalMetrics()
	m["handoff.keys"] = int64(h.Keys)
	m["handoff.bytes"] = int64(h.Bytes)
	m["handoff.transfers"] = int64(h.Transfers)
	m["group.epoch"] = int64(h.Epoch)
	k := kvstore.GlobalMetrics()
	m["kv.reads"] = int64(k.Reads)
	m["kv.applies"] = int64(k.Applies)
	m["kv.rejected"] = int64(k.Rejected)
	m["wal.appends"] = int64(k.WALAppends)
	m["wal.bytes"] = int64(k.WALBytes)
	m["wal.syncs"] = int64(k.WALSyncs)
	m["wal.replays"] = int64(k.WALReplays)
	m["wal.errors"] = int64(k.WALErrors)
	m["wal.snapshots"] = int64(k.Snapshots)
	m["wal.open_stores"] = int64(k.DurableStoresOpen)
	b := abd.GlobalBatchMetrics()
	m["abd.batches"] = int64(b.Batches)
	m["abd.batched_ops"] = int64(b.BatchedOps)
	res := abd.GlobalResilienceMetrics()
	m["abd.retries"] = int64(res.Retries)
	m["abd.hedges"] = int64(res.Hedges)
	m["abd.hedge_wins"] = int64(res.HedgeWins)
	m["abd.sheds"] = int64(res.Sheds)
	m["abd.redeliveries"] = int64(res.Redeliveries)
	recorded, dropped := tracing.Stats()
	m["spans.recorded"] = int64(recorded)
	m["spans.dropped"] = int64(dropped)
	return m
}
