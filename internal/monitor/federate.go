package monitor

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/web"
)

// Metrics federation: the monitor server already learns every node's web
// listen address from its reports, so /federate scrapes each node's
// /metrics endpoint, stamps every sample with a node="..." label, and
// serves the merged exposition — one scrape target for a Prometheus that
// cannot reach (or does not want to enumerate) the individual nodes.

// Federator scrapes node /metrics endpoints in parallel and merges the
// results. It is plain Go (no component state) so it can be unit-tested
// against httptest servers.
type Federator struct {
	client *http.Client
}

// NewFederator creates a federator whose per-node scrapes time out after
// timeout (default 2s).
func NewFederator(timeout time.Duration) *Federator {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &Federator{client: &http.Client{Timeout: timeout}}
}

// scrapeResult is one node's scrape outcome.
type scrapeResult struct {
	node string
	body []byte
	err  error
}

// Scrape fetches host/metrics from every target (node name → host:port),
// in parallel, and returns the merged exposition: each node's samples
// labeled with its name, failed nodes recorded as comments so the output
// still says who was unreachable. Output order is sorted by node name.
func (f *Federator) Scrape(targets map[string]string) string {
	names := make([]string, 0, len(targets))
	for n := range targets {
		names = append(names, n)
	}
	sort.Strings(names)

	results := make([]scrapeResult, len(names))
	var wg sync.WaitGroup
	for i, n := range names {
		wg.Add(1)
		go func(i int, node, host string) {
			defer wg.Done()
			body, err := f.fetch("http://" + host + "/metrics")
			results[i] = scrapeResult{node: node, body: body, err: err}
		}(i, n, targets[n])
	}
	wg.Wait()

	var b strings.Builder
	fmt.Fprintf(&b, "# CATS federation: %d nodes\n", len(names))
	for _, r := range results {
		if r.err != nil {
			fmt.Fprintf(&b, "# node %s: scrape failed: %v\n", r.node, r.err)
			continue
		}
		b.WriteString(InjectNodeLabel(string(r.body), r.node))
	}
	return b.String()
}

func (f *Federator) fetch(url string) ([]byte, error) {
	resp, err := f.client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 4<<20))
}

// InjectNodeLabel rewrites a Prometheus text exposition so every sample
// carries node="name": comment and blank lines pass through, labeled
// samples get the node label prepended, bare samples gain a label set.
func InjectNodeLabel(body, node string) string {
	var b strings.Builder
	for _, line := range strings.Split(body, "\n") {
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			if line != "" {
				b.WriteString(line)
				b.WriteByte('\n')
			}
		case strings.Contains(line, "{"):
			b.WriteString(strings.Replace(line, "{", `{node="`+node+`",`, 1))
			b.WriteByte('\n')
		default:
			sp := strings.IndexAny(line, " \t")
			if sp < 0 {
				b.WriteString(line)
				b.WriteByte('\n')
				continue
			}
			fmt.Fprintf(&b, "%s{node=%q}%s\n", line[:sp], node, line[sp:])
		}
	}
	return b.String()
}

// renderFederate serves the merged scrape of every reporting node that
// advertised a metrics URL.
func (s *Server) renderFederate(r web.Request) {
	s.expire()
	targets := make(map[string]string)
	for name, v := range s.views {
		if v.MetricsURL != "" {
			targets[name] = v.MetricsURL
		}
	}
	s.ctx.Trigger(web.Response{
		ReqID:       r.ReqID,
		Status:      200,
		ContentType: "text/plain; version=0.0.4; charset=utf-8",
		Body:        s.fed.Scrape(targets),
	}, s.webP)
}
