package monitor

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/simulation"
	"repro/internal/status"
	"repro/internal/timer"
)

// TestRuntimeStatusAggregation wires a RuntimeStatus producer into a monitor
// client next to a fake service and checks the server's global view ends up
// holding the node's runtime telemetry rollup.
func TestRuntimeStatusAggregation(t *testing.T) {
	sim := simulation.New(99)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.ConstantLatency(2*time.Millisecond)))

	var srv *Server
	sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		ctx.Create("server", core.SetupFunc(func(sx *core.Ctx) {
			tr := sx.Create("net", emu.Transport(addr(0)))
			srv = NewServer(ServerConfig{Self: addr(0)})
			srvC := sx.Create("server", srv)
			sx.Connect(srvC.Required(network.PortType), tr.Provided(network.PortType))
		}))
		ctx.Create("client", core.SetupFunc(func(cx *core.Ctx) {
			tr := cx.Create("net", emu.Transport(addr(1)))
			tm := cx.Create("timer", simulation.NewTimer(sim))
			svc := cx.Create("svc", &fakeService{name: "alpha", val: 1})
			rts := cx.Create("rtstat", NewRuntimeStatus())
			clC := cx.Create("client", NewClient(ClientConfig{
				Self:     addr(1),
				Server:   addr(0),
				NodeName: "node-rt",
				Period:   500 * time.Millisecond,
			}))
			cx.Connect(clC.Required(network.PortType), tr.Provided(network.PortType))
			cx.Connect(clC.Required(timer.PortType), tm.Provided(timer.PortType))
			cx.Connect(clC.Required(status.PortType), svc.Provided(status.PortType))
			cx.Connect(clC.Required(status.PortType), rts.Provided(status.PortType))
		}))
	}))
	sim.Settle()
	sim.Run(3 * time.Second)

	v, ok := srv.View("node-rt")
	if !ok {
		t.Fatal("no view for node-rt")
	}
	if len(v.Snapshots) != 2 {
		t.Fatalf("view has %d snapshots, want 2 (alpha + runtime)", len(v.Snapshots))
	}
	var rt *status.Response
	for i := range v.Snapshots {
		if v.Snapshots[i].Component == "runtime" {
			rt = &v.Snapshots[i]
		}
	}
	if rt == nil {
		t.Fatalf("no runtime snapshot in view: %+v", v.Snapshots)
	}
	for _, key := range []string{
		"sched.executed", "sched.workers", "comps.handled", "comps.triggers",
		"components.live", "routecache.plans", "net.sent",
	} {
		if _, ok := rt.Metrics[key]; !ok {
			t.Errorf("runtime snapshot missing %q: %v", key, rt.Metrics)
		}
	}
	if rt.Metrics["sched.executed"] <= 0 {
		t.Fatalf("sched.executed = %d, want > 0", rt.Metrics["sched.executed"])
	}
	if rt.Metrics["sched.workers"] != 1 {
		t.Fatalf("sched.workers = %d, want 1 under simulation", rt.Metrics["sched.workers"])
	}
	if rt.Metrics["components.live"] <= 0 {
		t.Fatalf("components.live = %d, want > 0", rt.Metrics["components.live"])
	}
}

func TestFlattenRuntimeMetrics(t *testing.T) {
	snap := core.MetricsSnapshot{
		LiveComponents: 4,
		Faults:         2,
		Scheduler:      core.SchedulerStats{Workers: 3, Executed: 100, LocalPops: 80, Stolen: 20},
		RouteCache:     core.RouteCacheStats{Tables: 2, Plans: 5, Builds: 7, Resets: 1},
		Trace:          core.TraceStats{Enabled: true, Records: 42},
		Components: []core.ComponentStats{
			{Path: "a", Handled: 60, Triggers: 10},
			{Path: "b", Handled: 40, Triggers: 5},
		},
	}
	net := network.Metrics{Sent: 9, CompressedMsgs: 3, CompressedIn: 1000, CompressedOut: 400}
	m := FlattenRuntimeMetrics(snap, net)
	// The WAL rollup reads process-global counters, so assert presence
	// (values depend on what other tests in the process have appended).
	for _, key := range []string{
		"wal.appends", "wal.bytes", "wal.syncs", "wal.replays",
		"wal.errors", "wal.snapshots", "wal.open_stores",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("flattened metrics missing %q", key)
		}
	}
	for key, want := range map[string]int64{
		"components.live":   4,
		"faults":            2,
		"sched.workers":     3,
		"sched.executed":    100,
		"sched.stolen":      20,
		"routecache.plans":  5,
		"routecache.resets": 1,
		"comps.handled":     100,
		"comps.triggers":    15,
		"net.sent":          9,
		"net.zlib_msgs":     3,
		"net.zlib_in":       1000,
		"net.zlib_out":      400,
		"trace.records":     42,
	} {
		if m[key] != want {
			t.Errorf("%s = %d, want %d", key, m[key], want)
		}
	}
}

// TestServerViewAfterClientRestart checks a re-reporting node refreshes its
// view rather than duplicating it, and that expiry leaves fresh views alone.
func TestServerViewAfterClientRestart(t *testing.T) {
	sim, _, srv := newMonitorWorld(t)
	sim.Run(3 * time.Second)
	if srv.Server.NodeCount() != 1 {
		t.Fatalf("views %d, want 1", srv.Server.NodeCount())
	}
	first, _ := srv.Server.View("node-1")
	sim.Run(2 * time.Second)
	second, _ := srv.Server.View("node-1")
	if !second.Received.After(first.Received) {
		t.Fatalf("view not refreshed: %v then %v", first.Received, second.Received)
	}
	if srv.Server.NodeCount() != 1 {
		t.Fatalf("views %d after refresh, want 1", srv.Server.NodeCount())
	}
}
