package monitor

import (
	"fmt"
	"strings"

	"repro/internal/web"
)

// Alerting over the monitor rollups: the server compares each node's
// consecutive "runtime" snapshots and fires rules on the deltas. The rules
// are deliberately minimal — growth-style conditions over the flattened
// counters the nodes already report — and the result is a plain-text
// /alerts view next to the global HTML page, cheap enough to curl from a
// smoke test or a CI probe.

// alertReconnectStormThreshold is how many peer reconnects within one
// reporting period count as a storm rather than routine churn.
const alertReconnectStormThreshold = 5

// Scheduler deque-depth alerting. A node's reported sched.max_depth is an
// all-time high-water mark, so the server keeps a decaying copy per node
// (halved every reporting period, refreshed to any new maximum) and the
// rule fires only while the decayed mark stays above the threshold for two
// consecutive periods — a sustained backlog, not one historical burst.
const (
	alertDequeDepthThreshold = 256
	dequeDepthDecay          = 0.5
)

// Alert is one firing rule instance for one node.
type Alert struct {
	Node   string
	Rule   string
	Detail string
}

// AlertRule evaluates the delta between two consecutive runtime rollups of
// one node. Fire returns a human-readable detail when the rule fires and
// "" otherwise.
type AlertRule struct {
	Name string
	Fire func(prev, cur map[string]int64) string
}

// DefaultAlertRules returns the built-in rule set: send-queue overflow
// growth, handler fault spikes, peer reconnect storms, and sustained
// scheduler deque depth.
func DefaultAlertRules() []AlertRule {
	return []AlertRule{
		{Name: "dropped-full-growth", Fire: func(prev, cur map[string]int64) string {
			if d := cur["net.dropped"] - prev["net.dropped"]; d > 0 {
				return fmt.Sprintf("%d messages dropped on full send queues in the last period", d)
			}
			return ""
		}},
		{Name: "fault-spike", Fire: func(prev, cur map[string]int64) string {
			if d := cur["faults"] - prev["faults"]; d > 0 {
				return fmt.Sprintf("%d handler faults in the last period", d)
			}
			return ""
		}},
		{Name: "reconnect-storm", Fire: func(prev, cur map[string]int64) string {
			if d := cur["net.reconnects"] - prev["net.reconnects"]; d >= alertReconnectStormThreshold {
				return fmt.Sprintf("%d peer reconnects in the last period", d)
			}
			return ""
		}},
		{Name: "deque-depth-sustained", Fire: func(prev, cur map[string]int64) string {
			p, c := prev["sched.max_depth_hwm"], cur["sched.max_depth_hwm"]
			if p >= alertDequeDepthThreshold && c >= alertDequeDepthThreshold {
				return fmt.Sprintf("scheduler deque depth high-water mark at %d (decayed) across consecutive periods", c)
			}
			return ""
		}},
	}
}

// EvaluateAlerts runs every rule over one node's consecutive runtime
// rollups, returning the firing alerts in rule order.
func EvaluateAlerts(rules []AlertRule, node string, prev, cur map[string]int64) []Alert {
	var out []Alert
	for _, r := range rules {
		if detail := r.Fire(prev, cur); detail != "" {
			out = append(out, Alert{Node: node, Rule: r.Name, Detail: detail})
		}
	}
	return out
}

// observeRuntime folds a node's fresh runtime rollup into the alert state:
// rules fire against the previous rollup (a node's first report only seeds
// the baseline), and the node's firing set is replaced each round so healed
// conditions clear. The rollup is augmented with the synthetic
// sched.max_depth_hwm series — the decaying high-water mark the deque-depth
// rule evaluates — so rules stay pure functions of two metric maps.
func (s *Server) observeRuntime(node string, cur map[string]int64) {
	c := make(map[string]int64, len(cur)+1)
	for k, v := range cur {
		c[k] = v
	}
	hwm := float64(s.depthHWM[node]) * dequeDepthDecay
	if d := float64(cur["sched.max_depth"]); d > hwm {
		hwm = d
	}
	s.depthHWM[node] = int64(hwm)
	c["sched.max_depth_hwm"] = int64(hwm)
	if prev, ok := s.prevRuntime[node]; ok {
		s.alerts[node] = EvaluateAlerts(s.rules, node, prev, c)
	}
	s.prevRuntime[node] = c
}

// Alerts returns every firing alert, sorted by node then rule order.
func (s *Server) Alerts() []Alert {
	var out []Alert
	for _, node := range s.nodeNames() {
		out = append(out, s.alerts[node]...)
	}
	return out
}

// renderAlerts serves the plain-text /alerts view.
func (s *Server) renderAlerts(r web.Request) {
	s.expire()
	alerts := s.Alerts()
	var b strings.Builder
	if len(alerts) == 0 {
		b.WriteString("CATS alerts: none firing\n")
	} else {
		fmt.Fprintf(&b, "CATS alerts: %d firing\n\n", len(alerts))
		for _, a := range alerts {
			fmt.Fprintf(&b, "%s %s: %s\n", a.Node, a.Rule, a.Detail)
		}
	}
	s.ctx.Trigger(web.Response{
		ReqID:       r.ReqID,
		Status:      200,
		ContentType: "text/plain; charset=utf-8",
		Body:        b.String(),
	}, s.webP)
}
