package monitor

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/simulation"
	"repro/internal/status"
	"repro/internal/timer"
	"repro/internal/web"
)

// mutableRuntime answers Status requests as the "runtime" component with
// whatever metrics the test currently holds, so consecutive monitor rounds
// can observe controlled counter growth.
type mutableRuntime struct {
	metrics map[string]int64
}

func (f *mutableRuntime) Setup(ctx *core.Ctx) {
	st := ctx.Provides(status.PortType)
	core.Subscribe(ctx, st, func(q status.Request) {
		m := make(map[string]int64, len(f.metrics))
		for k, v := range f.metrics {
			m[k] = v
		}
		ctx.Trigger(status.Response{ReqID: q.ReqID, Component: "runtime", Metrics: m}, st)
	})
}

// alertWorld wires one reporting node with a mutable runtime rollup to a
// monitor server.
type alertWorld struct {
	sim *simulation.Simulation
	rtm *mutableRuntime
	srv *serverNode
}

func newAlertWorld(t *testing.T) *alertWorld {
	t.Helper()
	sim := simulation.New(11)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.ConstantLatency(2*time.Millisecond)))
	w := &alertWorld{
		sim: sim,
		rtm: &mutableRuntime{metrics: map[string]int64{
			"net.dropped": 0, "faults": 0, "net.reconnects": 0,
		}},
		srv: &serverNode{self: addr(0), sim: sim, emu: emu},
	}
	sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		ctx.Create("server", w.srv)
		ctx.Create("client", core.SetupFunc(func(ctx *core.Ctx) {
			tr := ctx.Create("net", emu.Transport(addr(1)))
			tm := ctx.Create("timer", simulation.NewTimer(sim))
			rt := ctx.Create("runtime", w.rtm)
			clC := ctx.Create("client", NewClient(ClientConfig{
				Self:     addr(1),
				Server:   addr(0),
				NodeName: "node-1",
				Period:   500 * time.Millisecond,
			}))
			ctx.Connect(clC.Required(network.PortType), tr.Provided(network.PortType))
			ctx.Connect(clC.Required(timer.PortType), tm.Provided(timer.PortType))
			ctx.Connect(clC.Required(status.PortType), rt.Provided(status.PortType))
		}))
	}))
	sim.Settle()
	return w
}

// alertsPage requests /alerts and returns the rendered body.
func (w *alertWorld) alertsPage(t *testing.T, reqID uint64) web.Response {
	t.Helper()
	w.srv.ctx.Trigger(web.Request{ReqID: reqID, Path: "/alerts"}, w.srv.webOuter)
	w.sim.Run(10 * time.Millisecond)
	for _, p := range w.srv.pages {
		if p.ReqID == reqID {
			return p
		}
	}
	t.Fatalf("no /alerts response for req %d", reqID)
	return web.Response{}
}

// TestAlertsGolden pins the /alerts view end to end: baseline report, a
// round of counter growth fires all three default rules with exact output,
// and a quiet round clears them again.
func TestAlertsGolden(t *testing.T) {
	w := newAlertWorld(t)

	// Two rounds establish the baseline (first report only seeds state).
	w.sim.Run(1100 * time.Millisecond)
	if got := w.alertsPage(t, 1); got.Body != "CATS alerts: none firing\n" {
		t.Fatalf("baseline alerts page:\n%q", got.Body)
	}

	// One period of growth: queue drops, handler faults, a reconnect storm.
	w.rtm.metrics["net.dropped"] = 12
	w.rtm.metrics["faults"] = 4
	w.rtm.metrics["net.reconnects"] = 7
	w.sim.Run(time.Second)

	got := w.alertsPage(t, 2)
	if got.ContentType != "text/plain; charset=utf-8" || got.Status != 200 {
		t.Fatalf("alerts response meta: %+v", got)
	}
	want := "CATS alerts: 3 firing\n" +
		"\n" +
		"node-1 dropped-full-growth: 12 messages dropped on full send queues in the last period\n" +
		"node-1 fault-spike: 4 handler faults in the last period\n" +
		"node-1 reconnect-storm: 7 peer reconnects in the last period\n"
	if got.Body != want {
		t.Fatalf("alerts page mismatch:\ngot:\n%s\nwant:\n%s", got.Body, want)
	}

	// Counters stop moving: the next round clears every alert.
	w.sim.Run(time.Second)
	if got := w.alertsPage(t, 3); got.Body != "CATS alerts: none firing\n" {
		t.Fatalf("alerts did not clear:\n%q", got.Body)
	}
}

// TestAlertThresholds pins the rule edges: a reconnect delta below the
// storm threshold stays silent while drops and faults fire on any growth,
// and the deque-depth rule needs the decayed mark above threshold in BOTH
// periods.
func TestAlertThresholds(t *testing.T) {
	rules := DefaultAlertRules()
	if len(rules) != 4 {
		t.Fatalf("default rule count %d, want 4", len(rules))
	}
	prev := map[string]int64{"net.dropped": 5, "faults": 2, "net.reconnects": 10}

	quiet := map[string]int64{"net.dropped": 5, "faults": 2, "net.reconnects": 14}
	if got := EvaluateAlerts(rules, "n", prev, quiet); len(got) != 0 {
		t.Fatalf("sub-threshold deltas fired: %+v", got)
	}
	noisy := map[string]int64{"net.dropped": 6, "faults": 3, "net.reconnects": 15}
	got := EvaluateAlerts(rules, "n", prev, noisy)
	if len(got) != 3 {
		t.Fatalf("want three rules firing, got %+v", got)
	}
	for i, rule := range []string{"dropped-full-growth", "fault-spike", "reconnect-storm"} {
		if got[i].Rule != rule || got[i].Node != "n" {
			t.Fatalf("alert %d = %+v, want rule %s", i, got[i], rule)
		}
	}

	// Deque depth: a single high period is a burst, not sustained.
	burst := EvaluateAlerts(rules, "n",
		map[string]int64{"sched.max_depth_hwm": 10},
		map[string]int64{"sched.max_depth_hwm": 500})
	if len(burst) != 0 {
		t.Fatalf("one-period depth burst fired: %+v", burst)
	}
	sustained := EvaluateAlerts(rules, "n",
		map[string]int64{"sched.max_depth_hwm": 300},
		map[string]int64{"sched.max_depth_hwm": 260})
	if len(sustained) != 1 || sustained[0].Rule != "deque-depth-sustained" {
		t.Fatalf("sustained depth: %+v, want deque-depth-sustained", sustained)
	}
	edge := EvaluateAlerts(rules, "n",
		map[string]int64{"sched.max_depth_hwm": 300},
		map[string]int64{"sched.max_depth_hwm": 255})
	if len(edge) != 0 {
		t.Fatalf("below-threshold depth fired: %+v", edge)
	}
}

// TestDequeDepthAlertGolden drives the decaying high-water mark end to
// end: a reported burst alone never fires, a sustained backlog fires with
// exact output, and after the backlog clears the decay halves the mark
// back under threshold and the alert clears — even though the node's
// reported all-time max never decreases.
func TestDequeDepthAlertGolden(t *testing.T) {
	w := newAlertWorld(t)
	w.rtm.metrics["sched.max_depth"] = 0
	w.sim.Run(1100 * time.Millisecond) // baseline rounds

	// The node's max-depth HWM jumps to 600 and, being an all-time max,
	// stays there. Two reporting periods later the alert is firing.
	w.rtm.metrics["sched.max_depth"] = 600
	w.sim.Run(2 * time.Second)
	got := w.alertsPage(t, 1)
	want := "CATS alerts: 1 firing\n" +
		"\n" +
		"node-1 deque-depth-sustained: scheduler deque depth high-water mark at 600 (decayed) across consecutive periods\n"
	if got.Body != want {
		t.Fatalf("sustained depth alerts page:\ngot:\n%q\nwant:\n%q", got.Body, want)
	}

	// The backlog drains: the node keeps reporting max_depth 600 forever
	// (all-time max), but the server-side decayed mark only tracks fresh
	// reports of the same magnitude. Simulate the drain by the node
	// reporting a low current depth again.
	w.rtm.metrics["sched.max_depth"] = 0
	// 600 → 300 → 150: two periods later the mark is under 256 in both
	// compared rollups.
	w.sim.Run(2 * time.Second)
	if got := w.alertsPage(t, 2); got.Body != "CATS alerts: none firing\n" {
		t.Fatalf("depth alert did not decay clear:\n%q", got.Body)
	}
}
