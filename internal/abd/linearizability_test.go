package abd

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/linear"
)

// TestLinearizabilityRandomConcurrentHistories drives randomized
// concurrent reads and writes on a single key from all coordinators of a
// simulated replica group — operations genuinely interleave through the
// emulated network's random latencies — records the complete history with
// virtual-time invocation/response stamps, and verifies it with the
// Wing–Gong checker. Repeats across seeds.
func TestLinearizabilityRandomConcurrentHistories(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			history := recordedHistory(t, seed)
			reads, writes := 0, 0
			for _, op := range history {
				if op.Kind == linear.Read {
					reads++
				} else {
					writes++
				}
			}
			if reads == 0 || writes == 0 {
				t.Skipf("degenerate mix (reads=%d writes=%d)", reads, writes)
			}
			if !linear.Check(history) {
				t.Fatalf("history not linearizable:\n%+v", history)
			}
		})
	}
}

// recordedHistory issues 16 randomized operations on one key at random
// virtual-time offsets through three coordinators and returns the
// completed history with invocation/response timestamps.
func recordedHistory(t *testing.T, seed int64) []linear.Op {
	t.Helper()
	sim, _, nodes := newABDWorld(t, 3, seed+31337)
	rng := sim.Rand()

	type meta struct {
		kind  linear.Kind
		value string
		start time.Time
	}
	metas := make(map[uint64]*meta)

	type stamped struct {
		id  uint64
		at  time.Time
		val string
		ok  bool
	}
	var ends []stamped
	for _, n := range nodes {
		// Observer hooks run inside the node's response handlers, so the
		// stamp is the exact virtual response time.
		n.onGet = append(n.onGet, func(g GetResponse) {
			ends = append(ends, stamped{id: g.ReqID, at: sim.Now(), val: string(g.Value), ok: g.Found})
		})
		n.onPut = append(n.onPut, func(p PutResponse) {
			ends = append(ends, stamped{id: p.ReqID, at: sim.Now(), ok: true})
		})
	}

	var nextID uint64 = 9000
	for i := 0; i < 16; i++ {
		coord := rng.Intn(3)
		at := time.Duration(rng.Intn(150)) * time.Millisecond
		nextID++
		id := nextID
		write := rng.Intn(2) == 0
		val := fmt.Sprintf("v%d", i)
		sim.ScheduleAt(at, "issue", func() {
			if write {
				metas[id] = &meta{kind: linear.Write, value: val, start: sim.Now()}
				nodes[coord].put(id, "k", val)
			} else {
				metas[id] = &meta{kind: linear.Read, start: sim.Now()}
				nodes[coord].get(id, "k")
			}
		})
	}
	sim.Run(10 * time.Second)

	var history []linear.Op
	for _, e := range ends {
		m, ok := metas[e.id]
		if !ok {
			continue
		}
		op := linear.Op{
			Kind:  m.kind,
			Start: m.start.UnixNano(),
			End:   e.at.UnixNano(),
		}
		if m.kind == linear.Write {
			op.Value = m.value
		} else {
			op.Value = e.val
			op.Found = e.ok
		}
		history = append(history, op)
	}
	if len(history) != 16 {
		t.Fatalf("history incomplete: %d of 16 ops completed", len(history))
	}
	return history
}
