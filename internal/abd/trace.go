package abd

import (
	"repro/internal/tracing"
)

// Coordinator-side span model. A sampled operation owns one trace:
//
//	op (root, "get"/"put")
//	└─ attempt #1 ──────────────── restart link ──┐
//	│   ├─ route / read / write phase spans       │
//	│   └─ serve.* spans on each replica          │
//	└─ attempt #2 (Link = attempt #1's span ID) ◄─┘
//
// Attempt spans are children of the root; a stale-epoch restart ends the
// superseded attempt with outcome "restart" and links the next attempt
// span back to it, so a restarted op keeps its trace ID and the hop stays
// visible in the assembled timeline. Timeout retries start fresh attempt
// spans without a link — the restart link specifically marks epoch hops.
//
// Everything here is gated on o.traceID != 0: unsampled operations (the
// default is one in 64) never mint IDs, never read the clock, and never
// allocate.

// opTraceOutcome indexes the phase-latency histogram's outcome label.
const (
	outcomeOK = iota
	outcomeRestart
	outcomeTimeout
	outcomeFail
	outcomeCount
)

var phaseOutcomeNames = [outcomeCount]string{"ok", "restart", "timeout", "fail"}

// phaseLabelNames maps phase (1-based) to the histogram's phase label and
// the phase span name.
var phaseLabelNames = [...]string{"route", "read", "write"}

// wireCtx is the context stamped on this attempt's outgoing quorum
// phases: replica serve spans parent under the current attempt span.
func (o *op) wireCtx() tracing.Context {
	return tracing.Context{TraceID: o.traceID, SpanID: o.attemptSpan}
}

// beginTrace decides sampling for a freshly started op and mints its
// trace identity. Called once from startOp.
func (a *ABD) beginTrace(o *op) {
	if !tracing.Sampled(o.id) {
		return
	}
	o.traceID = a.ids.Next()
	o.rootSpan = a.ids.Next()
	o.opStart = a.ctx.Now()
}

// beginAttemptTrace opens the span for a new attempt (fresh span ID,
// phase clock reset). Called from beginAttempt after the attempt counter
// is bumped.
func (a *ABD) beginAttemptTrace(o *op) {
	if o.traceID == 0 {
		return
	}
	o.attemptSpan = a.ids.Next()
	now := a.ctx.Now()
	o.attemptStart, o.phaseStart = now, now
}

// endPhase closes the current phase span, feeds the phase-latency
// histogram (with this trace as the exemplar), and restarts the phase
// clock.
func (a *ABD) endPhase(o *op, outcome int) {
	if o.traceID == 0 || o.phase == phaseIdle {
		return
	}
	now := a.ctx.Now()
	observePhase(o.phase, outcome, now.Sub(o.phaseStart), o.traceID)
	tracing.Record(tracing.Span{
		Trace:   o.traceID,
		ID:      a.ids.Next(),
		Parent:  o.attemptSpan,
		Node:    a.nodeName,
		Name:    phaseLabelNames[int(o.phase)-1],
		Op:      o.id,
		Key:     o.key,
		Attempt: o.attempt,
		Epoch:   o.epoch,
		Outcome: phaseOutcomeNames[outcome],
		Start:   o.phaseStart,
		End:     now,
	})
	o.phaseStart = now
}

// endAttempt closes the current attempt span, consuming any pending
// restart link.
func (a *ABD) endAttempt(o *op, outcome string) {
	if o.traceID == 0 {
		return
	}
	tracing.Record(tracing.Span{
		Trace:   o.traceID,
		ID:      o.attemptSpan,
		Parent:  o.rootSpan,
		Link:    o.linkSpan,
		Node:    a.nodeName,
		Name:    "attempt",
		Op:      o.id,
		Key:     o.key,
		Attempt: o.attempt,
		Epoch:   o.epoch,
		Outcome: outcome,
		Start:   o.attemptStart,
		End:     a.ctx.Now(),
	})
	o.linkSpan = 0
}

// restartTrace ends the superseded attempt with outcome "restart" and
// arms the restart link for the attempt beginAttempt is about to open.
func (a *ABD) restartTrace(o *op) {
	if o.traceID == 0 {
		return
	}
	prev := o.attemptSpan
	a.endAttempt(o, "restart")
	o.linkSpan = prev
}

// endTrace closes the op's root span when the operation completes.
func (a *ABD) endTrace(o *op, outcome string) {
	if o.traceID == 0 {
		return
	}
	a.endAttempt(o, outcome)
	name := "get"
	if o.kind == opPut {
		name = "put"
	}
	tracing.Record(tracing.Span{
		Trace:   o.traceID,
		ID:      o.rootSpan,
		Node:    a.nodeName,
		Name:    name,
		Op:      o.id,
		Key:     o.key,
		Attempt: o.attempt,
		Epoch:   o.epoch,
		Outcome: outcome,
		Start:   o.opStart,
		End:     a.ctx.Now(),
	})
}

// recordServe records the replica-side instant span for one served or
// refused quorum phase, parented under the coordinator's attempt span
// carried in the wire context.
func (a *ABD) recordServe(tc tracing.Context, name string, opID uint64, attempt int, outcome string) {
	if tc.TraceID == 0 {
		return
	}
	now := a.ctx.Now()
	tracing.Record(tracing.Span{
		Trace:   tc.TraceID,
		ID:      a.ids.Next(),
		Parent:  tc.SpanID,
		Node:    a.nodeName,
		Name:    name,
		Op:      opID,
		Attempt: attempt,
		Epoch:   a.localEpoch,
		Outcome: outcome,
		Start:   now,
		End:     now,
	})
}
