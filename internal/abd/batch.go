package abd

import (
	"repro/internal/network"
	"repro/internal/timer"
	"repro/internal/tracing"
)

// Quorum coalescing. A coordinator under load runs many operations against
// the same replica set concurrently; sending each read/impose phase as its
// own frame pays per-message codec and transport overhead N times for
// traffic that is all going to the same peers. Instead the coordinator
// queues phases into per-peer batches and flushes them on a zero-delay
// timer event: every phase generated while the flush event sits in the
// component's queue rides in the same frame, mirroring the per-worker
// fanoutBatch idiom in the forwarding layer. Replicas serve a batch in one
// handler execution and ack all served ops in one reply; the epoch gate
// stays strictly per-op, so a stale operation inside a batch nacks
// individually while the rest of the batch acks.

// readPhase is one coalesced phase-1 query. The embedded trace context is
// per-op: each sampled operation inside a batch keeps its own identity.
type readPhase struct {
	tracing.Context
	OpID    uint64
	Attempt int
	Epoch   uint64
	Key     string
}

// writePhase is one coalesced phase-2 impose.
type writePhase struct {
	tracing.Context
	OpID    uint64
	Attempt int
	Epoch   uint64
	Key     string
	Version Version
	Value   []byte
}

// opBatchMsg carries every phase a coordinator owed one replica at flush
// time. Batches of one downgrade to the legacy readMsg/writeMsg instead.
// The envelope's trace context is the first sampled entry's — it annotates
// the transport frame (net.send spans) without the transport having to
// look inside the batch.
type opBatchMsg struct {
	network.Header
	tracing.Context
	Reads  []readPhase
	Writes []writePhase
}

// readAckEntry acknowledges one served readPhase.
type readAckEntry struct {
	OpID    uint64
	Attempt int
	Version Version
	Value   []byte
	Found   bool
}

// writeAckEntry acknowledges one served writePhase.
type writeAckEntry struct {
	OpID    uint64
	Attempt int
}

// opBatchAckMsg acks every op of a batch the replica could serve, in one
// reply. Refused ops are absent — they were nacked individually through
// nackMsg. Epoch is the replica's post-merge view epoch.
type opBatchAckMsg struct {
	network.Header
	Epoch     uint64
	ReadAcks  []readAckEntry
	WriteAcks []writeAckEntry
}

func init() {
	network.Register(opBatchMsg{})
	network.Register(opBatchAckMsg{})
}

// flushTimeout drains the coordinator's pending per-peer batches. It is
// scheduled with zero delay: in the deterministic simulation it fires at
// the current virtual time after already-queued handler executions, and
// under the real timer it fires on the next pass through the component
// queue — in both cases long enough for concurrently arriving operations
// to pile into the same flush.
type flushTimeout struct {
	timer.Timeout
}

// peerBatch accumulates the phases owed to one replica until the next
// flush. The slices are handed to the outgoing message at flush time and
// never reused: triggered messages are owned by the transport from then on.
type peerBatch struct {
	reads  []readPhase
	writes []writePhase
}

// pendFor returns (creating if needed) the pending batch for dst and arms
// the flush timer. Peer order is insertion order — map iteration order
// would break run-to-run determinism of the simulation trace.
func (a *ABD) pendFor(dst network.Address) *peerBatch {
	if b, ok := a.pend[dst]; ok {
		return b
	}
	b := &peerBatch{}
	a.pend[dst] = b
	a.pendOrder = append(a.pendOrder, dst)
	if !a.flushArmed {
		a.flushArmed = true
		a.ctx.Trigger(timer.ScheduleTimeout{
			Delay:   0,
			Timeout: flushTimeout{Timeout: timer.Timeout{ID: timer.NextID()}},
		}, a.tmr)
	}
	return b
}

// sendRead dispatches one phase-1 query to dst: immediately as a legacy
// readMsg when coalescing is off, else into dst's pending batch.
func (a *ABD) sendRead(dst network.Address, r readPhase) {
	if a.cfg.NoCoalesce {
		a.ctx.Trigger(readMsg{
			Header:  network.NewHeader(a.cfg.Self.Addr, dst),
			Context: r.Context,
			OpID:    r.OpID,
			Attempt: r.Attempt,
			Epoch:   r.Epoch,
			Key:     r.Key,
		}, a.net)
		return
	}
	b := a.pendFor(dst)
	b.reads = append(b.reads, r)
}

// sendWrite dispatches one phase-2 impose to dst.
func (a *ABD) sendWrite(dst network.Address, w writePhase) {
	if a.cfg.NoCoalesce {
		a.ctx.Trigger(writeMsg{
			Header:  network.NewHeader(a.cfg.Self.Addr, dst),
			Context: w.Context,
			OpID:    w.OpID,
			Attempt: w.Attempt,
			Epoch:   w.Epoch,
			Key:     w.Key,
			Version: w.Version,
			Value:   w.Value,
		}, a.net)
		return
	}
	b := a.pendFor(dst)
	b.writes = append(b.writes, w)
}

// handleFlush drains every pending batch, one frame per peer. A batch
// carrying a single phase downgrades to the legacy single-op message: the
// batch envelope buys nothing there, and single-op flows (and their message
// counts, which tests pin) stay byte-for-byte identical to the uncoalesced
// protocol.
func (a *ABD) handleFlush(flushTimeout) {
	a.flushArmed = false
	for _, dst := range a.pendOrder {
		b := a.pend[dst]
		delete(a.pend, dst)
		n := len(b.reads) + len(b.writes)
		if n == 0 {
			continue
		}
		if n == 1 {
			if len(b.reads) == 1 {
				r := b.reads[0]
				a.ctx.Trigger(readMsg{
					Header:  network.NewHeader(a.cfg.Self.Addr, dst),
					Context: r.Context,
					OpID:    r.OpID,
					Attempt: r.Attempt,
					Epoch:   r.Epoch,
					Key:     r.Key,
				}, a.net)
			} else {
				w := b.writes[0]
				a.ctx.Trigger(writeMsg{
					Header:  network.NewHeader(a.cfg.Self.Addr, dst),
					Context: w.Context,
					OpID:    w.OpID,
					Attempt: w.Attempt,
					Epoch:   w.Epoch,
					Key:     w.Key,
					Version: w.Version,
					Value:   w.Value,
				}, a.net)
			}
			continue
		}
		a.statBatchesSent++
		a.statBatchedOps += uint64(n)
		observeBatch(n)
		// The frame-level context is the first sampled op's: enough for
		// transport-layer send spans to attach to some trace in the batch.
		var fc tracing.Context
		for _, r := range b.reads {
			if r.TraceID != 0 {
				fc = r.Context
				break
			}
		}
		if fc.TraceID == 0 {
			for _, w := range b.writes {
				if w.TraceID != 0 {
					fc = w.Context
					break
				}
			}
		}
		a.ctx.Trigger(opBatchMsg{
			Header:  network.NewHeader(a.cfg.Self.Addr, dst),
			Context: fc,
			Reads:   b.reads,
			Writes:  b.writes,
		}, a.net)
	}
	a.pendOrder = a.pendOrder[:0]
}

// --- replica side ---------------------------------------------------------------

// handleOpBatch serves a coalesced frame. Every op passes the epoch gate
// individually: stale or mid-sync ops nack alone through the legacy
// nackMsg path, the rest are served and acknowledged together in one
// opBatchAckMsg. Serving merges newer epochs as it goes, so ops later in
// the batch are gated against the freshest view the batch itself revealed.
func (a *ABD) handleOpBatch(m opBatchMsg) {
	var readAcks []readAckEntry
	var writeAcks []writeAckEntry
	for _, r := range m.Reads {
		if !a.serveEpoch(m, r.Context, "serve.read", r.OpID, r.Attempt, r.Epoch) {
			continue
		}
		ver, val, found := a.store.Read(r.Key)
		a.recordServe(r.Context, "serve.read", r.OpID, r.Attempt, "ok")
		readAcks = append(readAcks, readAckEntry{
			OpID:    r.OpID,
			Attempt: r.Attempt,
			Version: ver,
			Value:   val,
			Found:   found,
		})
	}
	for _, w := range m.Writes {
		if !a.serveEpoch(m, w.Context, "serve.write", w.OpID, w.Attempt, w.Epoch) {
			continue
		}
		// Same durability gate as the unbatched path: no WAL append, no
		// ack entry — the op times out at the coordinator instead of
		// being acked un-durably.
		if _, err := a.store.ApplyDurable(w.Key, w.Version, w.Value); err != nil {
			a.recordServe(w.Context, "serve.write", w.OpID, w.Attempt, "wal-error")
			a.ctx.Log().Warn("abd: wal append failed; batched write not acked", "key", w.Key, "err", err)
			continue
		}
		a.recordServe(w.Context, "serve.write", w.OpID, w.Attempt, "ok")
		writeAcks = append(writeAcks, writeAckEntry{OpID: w.OpID, Attempt: w.Attempt})
	}
	if len(readAcks)+len(writeAcks) == 0 {
		return // every op nacked individually; nothing to ack
	}
	a.ctx.Trigger(opBatchAckMsg{
		Header:    network.Reply(m),
		Epoch:     a.localEpoch,
		ReadAcks:  readAcks,
		WriteAcks: writeAcks,
	}, a.net)
}

// handleOpBatchAck fans a batch ack back into the per-op quorum state
// machines. Phase-2 imposes generated while ingesting read acks are queued
// into the pending batches, so they coalesce into the next flush.
func (a *ABD) handleOpBatchAck(m opBatchAckMsg) {
	src := m.Source()
	for _, r := range m.ReadAcks {
		a.ingestReadAck(src, r.OpID, r.Attempt, r.Version, r.Value, r.Found)
	}
	for _, w := range m.WriteAcks {
		a.ingestWriteAck(src, w.OpID, w.Attempt)
	}
}
