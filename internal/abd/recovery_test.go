package abd

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/kvstore"
	"repro/internal/simulation"
)

// eventStream collects ordered recovery/serve events. Replay events are
// appended synchronously inside kvstore.Open; serve events by component
// handlers inside the single-threaded simulation — a mutex still guards
// the slice because the interval-sync goroutine is unrelated but real.
type eventStream struct {
	mu     sync.Mutex
	events []string
}

func (e *eventStream) add(ev string) {
	e.mu.Lock()
	e.events = append(e.events, ev)
	e.mu.Unlock()
}

// TestReplayCompletesBeforeFirstServe is the event-stream ordering test:
// every per-shard replay event must appear in the stream before the
// first ABD phase is served from the recovered replica. The ordering is
// structural — kvstore.Open returns only after all shards replayed, and
// the ABD component is handed the store afterwards — and this test pins
// that structure against regressions (e.g. a future lazy/background
// replay that starts serving early).
func TestReplayCompletesBeforeFirstServe(t *testing.T) {
	dir := t.TempDir()

	// Seed durable state and close cleanly.
	seedStore, err := kvstore.Open(dir, kvstore.Options{Sync: kvstore.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("rec-key-%d", i)
		if ok, err := seedStore.ApplyDurable(key, kvstore.Version{Seq: 3, Writer: 7}, []byte("durable-"+key)); !ok || err != nil {
			t.Fatalf("seed apply %s: ok=%v err=%v", key, ok, err)
		}
	}
	if err := seedStore.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover into the event stream, then serve ABD traffic from it.
	var stream eventStream
	recovered, err := kvstore.Open(dir, kvstore.Options{
		Sync: kvstore.SyncAlways,
		OnShardRecovered: func(shard, snapEntries, walEntries int, torn bool) {
			stream.add(fmt.Sprintf("replay shard=%d wal=%d torn=%t", shard, walEntries, torn))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()

	sim := simulation.New(31)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.UniformLatency(time.Millisecond, 5*time.Millisecond)))
	group := make([]ident.NodeRef, 3)
	for i := range group {
		group[i] = nodeRef(i + 1)
	}
	nodes := make([]*abdNode, 3)
	for i := range nodes {
		nodes[i] = &abdNode{self: group[i], group: group, sim: sim, emu: emu}
	}
	nodes[0].store = recovered // the recovered replica
	sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		for i, nd := range nodes {
			ctx.Create(fmt.Sprintf("n%d", i+1), nd)
		}
	}))
	sim.Settle()
	nodes[0].onGet = append(nodes[0].onGet, func(GetResponse) { stream.add("serve get") })

	// Reads coordinated at the recovered node: phase 1 queries its own
	// store, so a recovered-but-empty replica would answer not-found.
	for i := 0; i < 12; i++ {
		nodes[0].get(uint64(100+i), fmt.Sprintf("rec-key-%d", i))
	}
	sim.Run(2 * time.Second)
	if len(nodes[0].gets) != 12 {
		t.Fatalf("got %d responses, want 12", len(nodes[0].gets))
	}
	for _, g := range nodes[0].gets {
		if g.Err != "" || !g.Found || string(g.Value) == "" {
			t.Fatalf("get after recovery: %+v", g)
		}
	}

	stream.mu.Lock()
	defer stream.mu.Unlock()
	replays, firstServe := 0, -1
	for i, ev := range stream.events {
		switch {
		case ev[:6] == "replay":
			replays++
			if firstServe >= 0 {
				t.Fatalf("replay event %q at index %d AFTER first serve at %d:\n%v", ev, i, firstServe, stream.events)
			}
		case ev == "serve get":
			if firstServe < 0 {
				firstServe = i
			}
		}
	}
	if replays != kvstore.ShardCount {
		t.Fatalf("saw %d replay events, want one per shard (%d)", replays, kvstore.ShardCount)
	}
	if firstServe < 0 {
		t.Fatal("no serve event recorded")
	}
}

// TestWriteNotAckedOnWALError pins the ack gate: a replica whose WAL can
// no longer append must not acknowledge writes, so the coordinator times
// out instead of acking a write that would vanish on restart.
func TestWriteNotAckedOnWALError(t *testing.T) {
	dir := t.TempDir()
	stores := make([]*kvstore.Store, 3)
	for i := range stores {
		s, err := kvstore.Open(fmt.Sprintf("%s/n%d", dir, i), kvstore.Options{Sync: kvstore.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = s
	}

	sim := simulation.New(32)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.UniformLatency(time.Millisecond, 5*time.Millisecond)))
	group := make([]ident.NodeRef, 3)
	for i := range group {
		group[i] = nodeRef(i + 1)
	}
	nodes := make([]*abdNode, 3)
	for i := range nodes {
		nodes[i] = &abdNode{self: group[i], group: group, sim: sim, emu: emu, store: stores[i]}
	}
	sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		for i, nd := range nodes {
			ctx.Create(fmt.Sprintf("n%d", i+1), nd)
		}
	}))
	sim.Settle()

	// Healthy cluster: the write lands.
	nodes[0].put(1, "k", "v1")
	sim.Run(time.Second)
	if len(nodes[0].puts) != 1 || nodes[0].puts[0].Err != "" {
		t.Fatalf("healthy put: %+v", nodes[0].puts)
	}

	// Close every store's WAL out from under the replicas (disk gone).
	// Appends now fail, so no replica may ack — the put must error out
	// after retries rather than report durability it does not have.
	for _, s := range stores {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	nodes[0].put(2, "k", "v2")
	sim.Run(10 * time.Second)
	if len(nodes[0].puts) != 2 || nodes[0].puts[1].Err == "" {
		t.Fatalf("put with failed WALs must not be acked: %+v", nodes[0].puts)
	}
}
