package abd

import (
	"testing"
	"testing/quick"
)

func TestVersionOrdering(t *testing.T) {
	cases := []struct {
		a, b Version
		less bool
	}{
		{Version{Seq: 1, Writer: 1}, Version{Seq: 2, Writer: 1}, true},
		{Version{Seq: 2, Writer: 1}, Version{Seq: 1, Writer: 1}, false},
		{Version{Seq: 1, Writer: 1}, Version{Seq: 1, Writer: 2}, true},
		{Version{Seq: 1, Writer: 2}, Version{Seq: 1, Writer: 1}, false},
		{Version{Seq: 1, Writer: 1}, Version{Seq: 1, Writer: 1}, false},
		{Version{}, Version{Seq: 1, Writer: 0}, true},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v < %v = %v, want %v", c.a, c.b, got, c.less)
		}
	}
	if !(Version{}).IsZero() || (Version{Seq: 1, Writer: 0}).IsZero() {
		t.Fatalf("IsZero wrong")
	}
	if (Version{Seq: 3, Writer: 4}).String() != "3.4" {
		t.Fatalf("version string")
	}
}

func TestStoreApplyAdvancesOnly(t *testing.T) {
	s := NewStore()
	if _, _, ok := s.Read("k"); ok {
		t.Fatalf("empty store found key")
	}
	if !s.Apply("k", Version{Seq: 1, Writer: 1}, []byte("a")) {
		t.Fatalf("first write rejected")
	}
	if s.Apply("k", Version{Seq: 1, Writer: 1}, []byte("b")) {
		t.Fatalf("same version re-applied")
	}
	if s.Apply("k", Version{}, []byte("c")) {
		t.Fatalf("zero version applied")
	}
	if !s.Apply("k", Version{Seq: 2, Writer: 0}, []byte("d")) {
		t.Fatalf("higher version rejected")
	}
	v, val, ok := s.Read("k")
	if !ok || v != (Version{Seq: 2, Writer: 0}) || string(val) != "d" {
		t.Fatalf("read %v %q %v", v, val, ok)
	}
	if s.Len() != 1 || len(s.Keys()) != 1 {
		t.Fatalf("store size accessors")
	}
}

// Property: applying any permutation of a write set leaves the store at
// the maximum version (replica convergence / idempotence).
func TestPropertyStoreConvergesToMaxVersion(t *testing.T) {
	f := func(seqs []uint8, order []uint8) bool {
		if len(seqs) == 0 {
			return true
		}
		writes := make([]Version, len(seqs))
		var max Version
		for i, q := range seqs {
			writes[i] = Version{Seq: uint64(q%8) + 1, Writer: uint64(i % 3)}
			if max.Less(writes[i]) {
				max = writes[i]
			}
		}
		s := NewStore()
		// Apply in a scrambled order derived from `order`.
		for i := range writes {
			j := i
			if len(order) > 0 {
				j = int(order[i%len(order)]) % len(writes)
			}
			s.Apply("k", writes[j], []byte{byte(writes[j].Seq)})
		}
		// Then apply all (covers every write at least once).
		for _, w := range writes {
			s.Apply("k", w, []byte{byte(w.Seq)})
		}
		v, _, ok := s.Read("k")
		return ok && v == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
