// Package abd implements the paper's Consistent ABD component:
// quorum-based linearizable read and write operations over replica groups
// resolved by the One-Hop Router (a multi-writer generalization of the
// Attiya–Bar-Noy–Dolev atomic register, with read-impose write-back),
// versioned by replica-group epochs published by the ring. Together with
// the ring, router, failure detector, and handoff it forms the data path
// of the CATS key-value store.
package abd

import "repro/internal/kvstore"

// The register store lives in internal/kvstore since the handoff component
// shares it with the replica; these aliases keep the ABD API surface (and
// its wire types) stable.

// Version orders writes totally (see kvstore.Version).
type Version = kvstore.Version

// Store is the node-local versioned register memory (see kvstore.Store).
type Store = kvstore.Store

// NewStore creates an empty store.
func NewStore() *Store { return kvstore.New() }
