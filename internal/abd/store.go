// Package abd implements the paper's Consistent ABD component:
// quorum-based linearizable read and write operations over replica groups
// resolved by the One-Hop Router (a multi-writer generalization of the
// Attiya–Bar-Noy–Dolev atomic register, with read-impose write-back).
// Together with the ring, router, and failure detector it forms the data
// path of the CATS key-value store.
package abd

import "fmt"

// Version orders writes totally: by sequence number, ties broken by writer
// identity. The zero Version precedes every real write.
type Version struct {
	Seq    uint64
	Writer uint64
}

// Less reports whether v precedes o in the total write order.
func (v Version) Less(o Version) bool {
	if v.Seq != o.Seq {
		return v.Seq < o.Seq
	}
	return v.Writer < o.Writer
}

// IsZero reports whether the version denotes "never written".
func (v Version) IsZero() bool { return v == Version{} }

// String renders seq.writer.
func (v Version) String() string { return fmt.Sprintf("%d.%d", v.Seq, v.Writer) }

// record is one stored register.
type record struct {
	version Version
	value   []byte
}

// Store is a node-local versioned key-value store: the register memory of
// one replica. It applies writes only when they advance the version, which
// makes replica application idempotent and order-insensitive.
type Store struct {
	m map[string]record
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{m: make(map[string]record)}
}

// Read returns the stored version and value for key (zero version when
// never written).
func (s *Store) Read(key string) (Version, []byte, bool) {
	r, ok := s.m[key]
	return r.version, r.value, ok
}

// Apply stores (version, value) under key iff version advances the stored
// one. Zero-version writes are rejected: they denote "never written" and
// must not materialize a record. It reports whether the write was applied.
func (s *Store) Apply(key string, v Version, value []byte) bool {
	if v.IsZero() {
		return false
	}
	cur, ok := s.m[key]
	if ok && !cur.version.Less(v) {
		return false
	}
	s.m[key] = record{version: v, value: value}
	return true
}

// Len returns the number of keys stored.
func (s *Store) Len() int { return len(s.m) }

// Keys returns all stored keys (status/debugging).
func (s *Store) Keys() []string {
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	return out
}
