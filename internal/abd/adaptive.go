// Gray-failure resilience for the ABD coordinator and replica. The fixed
// per-attempt timeout becomes an adaptive budget derived from per-peer
// latency estimators (EWMA + deviation, RFC 6298 style); retries back off
// exponentially with jitter instead of stampeding in lockstep; a quorum
// phase stalled one ack short of completion hedges a duplicate to its
// straggler once the straggler blows its adaptive deadline; and replicas
// under local pressure shed load with Busy{RetryAfter} nacks that the
// coordinator honors with jittered redelivery. A replica that keeps
// answering but keeps overrunning its deadline is slow, not dead — after
// enough consecutive overruns the failure detector hears about it as a
// SlowHint, distinct from the transport's down/up hints.
package abd

import (
	"time"

	"repro/internal/fd"
	"repro/internal/network"
	"repro/internal/timer"
	"repro/internal/tracing"
)

const (
	// ewmaGain and devGain are the RFC 6298 smoothing factors: the rtt
	// estimate moves 1/8 of the way to each observation, the deviation 1/4.
	ewmaGain = 0.125
	devGain  = 0.25
	// devMargin scales the deviation term of the deadline: ewma + 4·dev
	// tracks roughly the p99 of the peer's observed latency.
	devMargin = 4
	// slowHintAfter is how many consecutive deadline overruns by one peer
	// promote it to a failure-detector slow hint.
	slowHintAfter = 3
	// hedgeStageDiv splits the attempt budget: the attempt timer first
	// fires at budget/hedgeStageDiv as the hedge checkpoint, then re-arms
	// for the remainder as the retry deadline.
	hedgeStageDiv = 3
)

// peerStat is the coordinator's latency estimator for one replica.
type peerStat struct {
	ewma float64 // smoothed phase round trip, nanoseconds
	dev  float64 // smoothed mean deviation, nanoseconds
	seen bool    // at least one observation (ewma alone can't tell: a
	// zero-latency self ack is real history with ewma 0)
	overruns int  // consecutive deadline overruns (slow-hint evidence)
	hinted   bool // slow hint sent; cleared by an in-deadline ack
}

func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// peerDeadline is the adaptive deadline for one replica: its p99 latency
// estimate clamped to the configured floor/ceiling. A peer with no
// history gets the ceiling, so fresh coordinators behave exactly like the
// old fixed-timeout ones until evidence accumulates.
func (a *ABD) peerDeadline(addr network.Address) time.Duration {
	ps, ok := a.peers[addr]
	if !ok || !ps.seen {
		return a.cfg.DeadlineCeil
	}
	return clampDur(time.Duration(ps.ewma+devMargin*ps.dev), a.cfg.DeadlineFloor, a.cfg.DeadlineCeil)
}

// observeRTT feeds one counted ack's phase round trip into the peer's
// estimator. The overrun check runs against the pre-update deadline:
// whether THIS ack was late is judged by what the coordinator expected
// before seeing it.
// hedgeWin acks keep the peer's overrun streak: the duplicate answering
// fast does not absolve the original phase send, which is still out there
// overrunning its deadline.
func (a *ABD) observeRTT(addr network.Address, rtt time.Duration, hedgeWin bool) {
	if rtt < 0 {
		rtt = 0
	}
	ps := a.peers[addr]
	if ps == nil {
		ps = &peerStat{}
		a.peers[addr] = ps
	}
	if ps.seen && rtt > a.peerDeadline(addr) {
		a.noteOverrun(addr, ps)
	} else if ps.overruns > 0 && !hedgeWin {
		ps.overruns = 0
		ps.hinted = false
	}
	r := float64(rtt)
	if !ps.seen {
		ps.seen = true
		ps.ewma = r
		ps.dev = r / 2
		return
	}
	d := r - ps.ewma
	if d < 0 {
		d = -d
	}
	ps.dev += devGain * (d - ps.dev)
	ps.ewma += ewmaGain * (r - ps.ewma)
}

// noteOverrun records one adaptive-deadline overrun for a peer and, past
// slowHintAfter consecutive ones, tells the failure detector the peer is
// slow. The hint is Suspect-grade evidence, not a verdict: the detector
// still needs its own quota of misses before suspecting.
func (a *ABD) noteOverrun(addr network.Address, ps *peerStat) {
	ps.overruns++
	if ps.overruns >= slowHintAfter && !ps.hinted {
		ps.hinted = true
		a.statSlowHints++
		a.ctx.Trigger(fd.SlowHint{Node: addr}, a.fdp)
	}
}

// attemptBudget computes the attempt timer for o: hedgeStageDiv phase
// deadlines at the slowest group member's adaptive estimate (the attempt
// spans a route resolution plus up to two quorum round trips), doubled
// per timeout retry so a shrunken deadline can never starve an op against
// slow-but-alive replicas, clamped to [floor, ceil]. With no history the
// budget is the ceiling — the old fixed OpTimeout.
func (a *ABD) attemptBudget(o *op) time.Duration {
	base := time.Duration(0)
	for _, n := range o.group {
		if d := a.peerDeadline(n.Addr); d > base {
			base = d
		}
	}
	if base == 0 {
		base = a.cfg.DeadlineCeil
	}
	b := hedgeStageDiv * base
	for i := 0; i < o.retries && b < a.cfg.DeadlineCeil; i++ {
		b *= 2
	}
	return clampDur(b, a.cfg.DeadlineFloor, a.cfg.DeadlineCeil)
}

// retryBackoff is the capped-exponential, ±50%-jittered delay between a
// timed-out attempt and the next one, mirroring the TCP dialer's jitter
// idiom: co-timed coordinators must not stampede a recovering replica in
// lockstep. Jitter draws from the component's seeded source, so
// simulations stay deterministic.
func (a *ABD) retryBackoff(retries int) time.Duration {
	base := a.cfg.OpTimeout / 8
	if base <= 0 {
		base = time.Millisecond
	}
	d := base
	for i := 1; i < retries && d < a.cfg.OpTimeout; i++ {
		d *= 2
	}
	if d > a.cfg.OpTimeout {
		d = a.cfg.OpTimeout
	}
	return d/2 + time.Duration(a.ctx.Rand().Int63n(int64(d)))
}

// backoffTimeout fires between a timed-out attempt and its retry.
type backoffTimeout struct {
	timer.Timeout
	OpID uint64
}

// redeliverTimeout re-offers a shed quorum phase to one replica after its
// Busy{RetryAfter} window (plus jitter) passes.
type redeliverTimeout struct {
	timer.Timeout
	OpID    uint64
	Attempt int
	Phase   phase
	Dst     network.Address
}

// groupIndex maps an ack's source address to its position in the
// attempt's replica group (-1: not a member).
func (o *op) groupIndex(addr network.Address) int {
	for i, n := range o.group {
		if n.Addr == addr {
			return i
		}
	}
	return -1
}

// countAck dedups per-replica acks within a phase — hedges and shed
// redeliveries make duplicates possible, and only the first ack from each
// replica may count toward the quorum — feeds the peer's latency
// estimator, and tallies hedge wins. Reports whether the ack counts.
func (a *ABD) countAck(o *op, src network.Address) bool {
	sentAt := o.phaseSentAt
	hedgeWin := false
	idx := o.groupIndex(src)
	if idx >= 0 && idx < 64 {
		bit := uint64(1) << uint(idx)
		if o.ackedMask&bit != 0 {
			return false // the loser of a hedged race: discard
		}
		o.ackedMask |= bit
		if o.hedged && idx == o.hedgeTo {
			o.hedgeTo = -1
			hedgeWin = true
			a.statHedgeWins++
			hedgeWinsTotal.Add(1)
			// A hedge win's round trip is measured from the duplicate's
			// send, not the phase start: charging the checkpoint wait to
			// the peer would feed back into its deadline (later checkpoint
			// → larger observed rtt → later checkpoint) until hedging
			// starves itself out.
			sentAt = o.hedgeAt
		}
	}
	a.observeRTT(src, a.ctx.Now().Sub(sentAt), hedgeWin)
	return true
}

// maybeHedge runs at the attempt timer's hedge checkpoint: a phase
// stalled exactly one ack short of quorum, with the wait already past the
// straggler's adaptive deadline, duplicates the phase to the unacked
// member most likely to answer quickly. First ack wins; the loser's late
// duplicate is discarded by countAck's per-replica dedup, and epochs
// still gate the duplicate per op on the replica.
func (a *ABD) maybeHedge(o *op) {
	if a.cfg.NoHedge || o.hedged || len(o.group) == 0 {
		return
	}
	var acks int
	switch o.phase {
	case phaseRead:
		acks = o.readAcks
	case phaseWrite:
		acks = o.writeAcks
	default:
		return
	}
	if acks != o.quorum-1 {
		return // hedging targets a lone straggler, not a missing quorum
	}
	idx := a.hedgeTarget(o)
	if idx < 0 {
		return
	}
	straggler := o.group[idx]
	if a.ctx.Now().Sub(o.phaseSentAt) < a.peerDeadline(straggler.Addr) {
		return // not yet past the straggler's p99: let it breathe
	}
	o.hedged = true
	o.hedgeTo = idx
	o.hedgeAt = a.ctx.Now()
	a.statHedges++
	hedgesTotal.Add(1)
	ps := a.peers[straggler.Addr]
	if ps == nil {
		ps = &peerStat{}
		a.peers[straggler.Addr] = ps
	}
	a.noteOverrun(straggler.Addr, ps)
	a.recordHedge(o, straggler.Addr)
	a.resendPhase(o, straggler.Addr)
}

// hedgeTarget picks the unacked group member with the smallest adaptive
// deadline — the spare most likely to win the hedged race — with
// deterministic index order breaking ties.
func (a *ABD) hedgeTarget(o *op) int {
	best, bestD := -1, time.Duration(0)
	for i, n := range o.group {
		if i < 64 && o.ackedMask&(uint64(1)<<uint(i)) != 0 {
			continue
		}
		d := a.peerDeadline(n.Addr)
		if best == -1 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// resendPhase re-sends o's current phase to one group member through the
// normal (coalescing) send path; attempt tagging and per-replica dedup
// make the duplicate harmless.
func (a *ABD) resendPhase(o *op, dst network.Address) {
	switch o.phase {
	case phaseRead:
		a.sendRead(dst, readPhase{
			Context: o.wireCtx(),
			OpID:    o.id,
			Attempt: o.attempt,
			Epoch:   o.epoch,
			Key:     o.key,
		})
	case phaseWrite:
		a.sendWrite(dst, writePhase{
			Context: o.wireCtx(),
			OpID:    o.id,
			Attempt: o.attempt,
			Epoch:   o.epoch,
			Key:     o.key,
			Version: o.imposeVer,
			Value:   o.imposeVal,
		})
	}
}

// recordHedge emits the coordinator-side instant span marking a hedged
// phase, so assembled timelines show where the duplicate went.
func (a *ABD) recordHedge(o *op, dst network.Address) {
	if o.traceID == 0 {
		return
	}
	now := a.ctx.Now()
	tracing.Record(tracing.Span{
		Trace:   o.traceID,
		ID:      a.ids.Next(),
		Parent:  o.attemptSpan,
		Node:    a.nodeName,
		Name:    "hedge:" + dst.String(),
		Op:      o.id,
		Key:     o.key,
		Attempt: o.attempt,
		Epoch:   o.epoch,
		Outcome: "sent",
		Start:   now,
		End:     now,
	})
}

// scheduleRedeliver honors a shed replica's retry-after hint: the current
// phase is re-offered to that replica after the hint ±25% jitter, so a
// herd of shed coordinators doesn't return in step.
func (a *ABD) scheduleRedeliver(o *op, m nackMsg) {
	d := m.RetryAfter
	d = d*3/4 + time.Duration(a.ctx.Rand().Int63n(int64(d)/2+1))
	a.statRedeliveries++
	redeliveriesTotal.Add(1)
	a.ctx.Trigger(timer.ScheduleTimeout{
		Delay: d,
		Timeout: redeliverTimeout{
			Timeout: timer.Timeout{ID: timer.NextID()},
			OpID:    o.id,
			Attempt: o.attempt,
			Phase:   o.phase,
			Dst:     m.Source(),
		},
	}, a.tmr)
}

// handleRedeliver re-sends the shed phase if the op is still waiting on
// that replica in the same attempt and phase.
func (a *ABD) handleRedeliver(t redeliverTimeout) {
	o, ok := a.ops[t.OpID]
	if !ok || o.attempt != t.Attempt || o.phase != t.Phase {
		return // op finished, advanced, or restarted since the shed
	}
	if idx := o.groupIndex(t.Dst); idx >= 0 && idx < 64 && o.ackedMask&(uint64(1)<<uint(idx)) != 0 {
		return // already acked meanwhile (e.g. a hedge filled the hole)
	}
	a.resendPhase(o, t.Dst)
}

// handleBackoff begins the delayed retry attempt.
func (a *ABD) handleBackoff(t backoffTimeout) {
	o, ok := a.ops[t.OpID]
	if !ok || o.timerID != t.TimeoutID() {
		return
	}
	a.beginAttempt(o)
}

// shouldShed consults the replica's local pressure signals ahead of
// serving a quorum phase: a serve-rate cap per accounting window, the
// runtime scheduler's queued-component backlog, and — on durable stores —
// the WAL fsync backlog. Any signal over its threshold sheds the phase
// with a Busy{RetryAfter} nack instead of queueing it unboundedly.
func (a *ABD) shouldShed() bool {
	if a.cfg.ShedServeRate > 0 {
		now := a.ctx.Now()
		if now.Sub(a.shedWinStart) >= a.cfg.ShedWindow {
			a.shedWinStart, a.shedServed = now, 0
		}
		if a.shedServed >= a.cfg.ShedServeRate {
			return true
		}
	}
	if a.cfg.ShedBacklog > 0 {
		if b, ok := a.ctx.Runtime().Scheduler().(interface{ Backlog() int64 }); ok &&
			b.Backlog() > int64(a.cfg.ShedBacklog) {
			return true
		}
	}
	if a.cfg.ShedWALBacklog > 0 && a.store.SyncBacklog() > a.cfg.ShedWALBacklog {
		return true
	}
	return false
}
