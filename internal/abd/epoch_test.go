package abd

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/handoff"
	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/simulation"
	"repro/internal/timer"
)

// hoFeeder provides the Handoff port so tests can drive a replica's sync
// window (SyncStarted/Synced) directly.
type hoFeeder struct {
	inner **core.Port
}

func (f *hoFeeder) Setup(ctx *core.Ctx) {
	*f.inner = ctx.Provides(handoff.PortType)
}

// epochNode is an abdNode variant whose ABD also has a connected handoff
// feeder, so tests control its sync window and epoch.
type epochNode struct {
	self  ident.NodeRef
	group []ident.NodeRef
	sim   *simulation.Simulation
	emu   *simulation.NetworkEmulator
	tweak func(*Config) // optional config override (shed/hedge knobs)

	ctx     *core.Ctx
	ABD     *ABD
	pgOuter *core.Port
	hoInner *core.Port
	puts    []PutResponse
	gets    []GetResponse
}

func (n *epochNode) Setup(ctx *core.Ctx) {
	n.ctx = ctx
	tr := ctx.Create("net", n.emu.Transport(n.self.Addr))
	tm := ctx.Create("timer", simulation.NewTimer(n.sim))
	rt := ctx.Create("router", &stubRouter{group: n.group})
	ho := ctx.Create("handoff-feeder", &hoFeeder{inner: &n.hoInner})
	cfg := Config{
		Self:              n.self,
		ReplicationDegree: len(n.group),
		OpTimeout:         300 * time.Millisecond,
		MaxRetries:        3,
	}
	if n.tweak != nil {
		n.tweak(&cfg)
	}
	n.ABD = New(cfg)
	abdC := ctx.Create("abd", n.ABD)
	ctx.Connect(abdC.Required(network.PortType), tr.Provided(network.PortType))
	ctx.Connect(abdC.Required(timer.PortType), tm.Provided(timer.PortType))
	ctx.Connect(abdC.Required(router.PortType), rt.Provided(router.PortType))
	ctx.Connect(abdC.Required(handoff.PortType), ho.Provided(handoff.PortType))
	n.pgOuter = abdC.Provided(PutGetPortType)
	core.Subscribe(ctx, n.pgOuter, func(p PutResponse) { n.puts = append(n.puts, p) })
	core.Subscribe(ctx, n.pgOuter, func(g GetResponse) { n.gets = append(n.gets, g) })
}

func (n *epochNode) put(id uint64, key, val string) {
	n.ctx.Trigger(PutRequest{ReqID: id, Key: key, Value: []byte(val)}, n.pgOuter)
}

func (n *epochNode) get(id uint64, key string) {
	n.ctx.Trigger(GetRequest{ReqID: id, Key: key}, n.pgOuter)
}

// syncWindow drives a replica through SyncStarted(epoch, round) and, when
// close is set, the matching Synced — raising its epoch without real
// handoff traffic.
func (n *epochNode) syncWindow(epoch, round uint64, close bool) {
	_ = core.TriggerOn(n.hoInner, handoff.SyncStarted{Epoch: epoch, Round: round})
	if close {
		_ = core.TriggerOn(n.hoInner, handoff.Synced{Epoch: epoch, Round: round})
	}
}

// ackRecord is one replica answer observed on the wire, in arrival order.
type ackRecord struct {
	kind       string // "readAck" | "writeAck" | "nack"
	epoch      uint64
	opID       uint64
	busy       bool
	retryAfter time.Duration // shed hint carried by busy nacks
}

// wireProbe is a bare network endpoint that speaks the replica wire
// protocol directly and records the full answer stream — the
// KompicsTesting-style harness for the epoch-ordering assertion.
type wireProbe struct {
	self network.Address
	emu  *simulation.NetworkEmulator

	ctx  *core.Ctx
	net  *core.Port
	acks []ackRecord
}

func (p *wireProbe) Setup(ctx *core.Ctx) {
	p.ctx = ctx
	p.net = ctx.Requires(network.PortType)
	core.Subscribe(ctx, p.net, func(m readAckMsg) {
		p.acks = append(p.acks, ackRecord{kind: "readAck", epoch: m.Epoch, opID: m.OpID})
	})
	core.Subscribe(ctx, p.net, func(m writeAckMsg) {
		p.acks = append(p.acks, ackRecord{kind: "writeAck", epoch: m.Epoch, opID: m.OpID})
	})
	core.Subscribe(ctx, p.net, func(m nackMsg) {
		p.acks = append(p.acks, ackRecord{kind: "nack", epoch: m.Epoch, opID: m.OpID, busy: m.Busy, retryAfter: m.RetryAfter})
	})
}

func (p *wireProbe) write(to network.Address, opID, epoch uint64, key, val string) {
	p.ctx.Trigger(writeMsg{
		Header: network.NewHeader(p.self, to),
		OpID:   opID, Attempt: 1, Epoch: epoch,
		Key: key, Version: Version{Seq: opID, Writer: 999}, Value: []byte(val),
	}, p.net)
}

func (p *wireProbe) read(to network.Address, opID, epoch uint64, key string) {
	p.ctx.Trigger(readMsg{
		Header: network.NewHeader(p.self, to),
		OpID:   opID, Attempt: 1, Epoch: epoch, Key: key,
	}, p.net)
}

// newEpochWorld builds n replicas (static full group) plus a wire probe.
func newEpochWorld(t *testing.T, n int, seed int64) (*simulation.Simulation, *simulation.NetworkEmulator, []*epochNode, *wireProbe) {
	return newEpochWorldCfg(t, n, seed, nil)
}

// newEpochWorldCfg is newEpochWorld with a per-node config override.
func newEpochWorldCfg(t *testing.T, n int, seed int64, tweak func(*Config)) (*simulation.Simulation, *simulation.NetworkEmulator, []*epochNode, *wireProbe) {
	t.Helper()
	sim := simulation.New(seed)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.ConstantLatency(2*time.Millisecond)))
	group := make([]ident.NodeRef, n)
	for i := range group {
		group[i] = nodeRef(i + 1)
	}
	nodes := make([]*epochNode, n)
	for i := range nodes {
		nodes[i] = &epochNode{self: group[i], group: group, sim: sim, emu: emu, tweak: tweak}
	}
	probe := &wireProbe{self: network.Address{Host: "probe", Port: 1}, emu: emu}
	sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		for i, nd := range nodes {
			ctx.Create(fmt.Sprintf("n%d", i+1), nd)
		}
		trC := ctx.Create("probe-net", emu.Transport(probe.self))
		probeC := ctx.Create("probe", probe)
		ctx.Connect(probeC.Required(network.PortType), trC.Provided(network.PortType))
	}))
	sim.Settle()
	return sim, emu, nodes, probe
}

// TestReplicaNeverAcksStaleEpoch is the epoch-ordering event-stream
// assertion: once a replica has observed (and acked in) epoch N+1, no
// later answer may ack a phase in epoch N — stale phases are nacked with
// the newer epoch as hint, and the ack stream's epochs are monotone.
func TestReplicaNeverAcksStaleEpoch(t *testing.T) {
	sim, _, nodes, probe := newEpochWorld(t, 3, 31)
	replica := nodes[0].self.Addr

	probe.write(replica, 1, 1, "k", "v1") // epoch 1: served
	sim.Run(50 * time.Millisecond)
	probe.write(replica, 2, 3, "k", "v2") // epoch 3: served, merged
	sim.Run(50 * time.Millisecond)
	probe.write(replica, 3, 2, "k", "v3") // epoch 2 after 3: must be refused
	probe.read(replica, 4, 1, "k")        // epoch 1 read: must be refused
	sim.Run(50 * time.Millisecond)
	probe.write(replica, 5, 3, "k", "v5") // current epoch again: served
	sim.Run(50 * time.Millisecond)

	if len(probe.acks) != 5 {
		t.Fatalf("answer stream has %d records, want 5: %+v", len(probe.acks), probe.acks)
	}
	wantKinds := []string{"writeAck", "writeAck", "nack", "nack", "writeAck"}
	for i, want := range wantKinds {
		if probe.acks[i].kind != want {
			t.Fatalf("answer %d is %s, want %s (stream %+v)", i, probe.acks[i].kind, want, probe.acks)
		}
	}
	// Stale refusals hint the replica's current epoch.
	if probe.acks[2].epoch != 3 || probe.acks[3].epoch != 3 {
		t.Fatalf("nack hints %d/%d, want 3", probe.acks[2].epoch, probe.acks[3].epoch)
	}
	// The event-stream invariant: ack epochs never decrease.
	hi := uint64(0)
	for i, a := range probe.acks {
		if a.kind == "nack" {
			continue
		}
		if a.epoch < hi {
			t.Fatalf("answer %d acked epoch %d after acking epoch %d", i, a.epoch, hi)
		}
		hi = a.epoch
	}
	// The stale write must not have landed in the store.
	if _, val, _ := nodes[0].ABD.Store().Read("k"); string(val) == "v3" {
		t.Fatal("stale-epoch write mutated the store")
	}
	if got := nodes[0].ABD.Epoch(); got != 3 {
		t.Fatalf("replica epoch %d, want 3", got)
	}
}

// TestReplicaBusyDuringSync: phases arriving inside a sync window are
// refused Busy (state backing an ack may still be in flight) and served
// again once the matching Synced closes the window.
func TestReplicaBusyDuringSync(t *testing.T) {
	sim, _, nodes, probe := newEpochWorld(t, 3, 32)
	r := nodes[0]

	r.syncWindow(5, 1, false) // open, never closed yet
	sim.Settle()
	probe.write(r.self.Addr, 1, 5, "k", "v1")
	sim.Run(50 * time.Millisecond)
	if len(probe.acks) != 1 || probe.acks[0].kind != "nack" || !probe.acks[0].busy {
		t.Fatalf("mid-sync answer: %+v, want busy nack", probe.acks)
	}
	if _, _, ok := r.ABD.Store().Read("k"); ok {
		t.Fatal("mid-sync write reached the store")
	}

	_ = core.TriggerOn(r.hoInner, handoff.Synced{Epoch: 5, Round: 1})
	sim.Settle()
	probe.write(r.self.Addr, 2, 5, "k", "v2")
	sim.Run(50 * time.Millisecond)
	if len(probe.acks) != 2 || probe.acks[1].kind != "writeAck" || probe.acks[1].epoch != 5 {
		t.Fatalf("post-sync answer: %+v, want writeAck@5", probe.acks)
	}
}

// TestSyncedRoundMatching: a Synced for an abandoned (older) round must
// NOT close a newer sync window — rounds, not epochs, pair the events.
func TestSyncedRoundMatching(t *testing.T) {
	sim, _, nodes, probe := newEpochWorld(t, 3, 33)
	r := nodes[0]

	r.syncWindow(5, 1, false)
	r.syncWindow(6, 2, false) // supersedes round 1
	_ = core.TriggerOn(r.hoInner, handoff.Synced{Epoch: 5, Round: 1})
	sim.Settle()
	probe.write(r.self.Addr, 1, 6, "k", "v")
	sim.Run(50 * time.Millisecond)
	if len(probe.acks) != 1 || probe.acks[0].kind != "nack" || !probe.acks[0].busy {
		t.Fatalf("stale Synced closed a live window: %+v", probe.acks)
	}
	_ = core.TriggerOn(r.hoInner, handoff.Synced{Epoch: 6, Round: 2})
	sim.Settle()
	probe.write(r.self.Addr, 2, 6, "k", "v")
	sim.Run(50 * time.Millisecond)
	if len(probe.acks) != 2 || probe.acks[1].kind != "writeAck" {
		t.Fatalf("matching Synced did not reopen service: %+v", probe.acks)
	}
}

// TestCoordinatorRestartsOnStaleNack: a coordinator whose view lags the
// replicas' epoch gets stale-nacked, restarts the attempt with the hinted
// epoch, and completes — the op never mixes acks from two epochs.
func TestCoordinatorRestartsOnStaleNack(t *testing.T) {
	sim, _, nodes, _ := newEpochWorld(t, 3, 34)
	// Replicas 2 and 3 have moved to epoch 4; coordinator 1 still at 0.
	nodes[1].syncWindow(4, 1, true)
	nodes[2].syncWindow(4, 1, true)
	sim.Settle()

	nodes[0].put(1, "k", "v1")
	sim.Run(2 * time.Second)

	if len(nodes[0].puts) != 1 || nodes[0].puts[0].Err != "" {
		t.Fatalf("put through stale view: %+v", nodes[0].puts)
	}
	busy, stale, restarts := nodes[0].ABD.EpochStats()
	if stale == 0 || restarts == 0 {
		t.Fatalf("no epoch restart recorded: busy=%d stale=%d restarts=%d", busy, stale, restarts)
	}
	// The retried write landed on the raised-epoch replicas.
	if _, val, ok := nodes[1].ABD.Store().Read("k"); !ok || string(val) != "v1" {
		t.Fatalf("raised-epoch replica missed the write: %q ok=%v", val, ok)
	}
	// A read through the same (now merged) view works first try.
	nodes[0].get(2, "k")
	sim.Run(time.Second)
	if len(nodes[0].gets) != 1 || string(nodes[0].gets[0].Value) != "v1" {
		t.Fatalf("get after merge: %+v", nodes[0].gets)
	}
}

// TestEndlessViewChangesFailOp: if every restart lands on a yet-newer
// epoch, the coordinator gives up after the restart cap instead of
// spinning forever.
func TestEndlessViewChangesFailOp(t *testing.T) {
	sim, _, nodes, _ := newEpochWorld(t, 3, 35)
	// Walk the replicas' epochs upward continuously, always ahead of
	// whatever the coordinator learned from the last nack.
	epoch := uint64(1)
	round := uint64(1)
	for i := 0; i < 40; i++ {
		at := time.Duration(i) * 50 * time.Millisecond
		sim.ScheduleAt(at, "test:bump", func() {
			nodes[1].syncWindow(epoch, round, true)
			nodes[2].syncWindow(epoch, round, true)
			epoch++
			round++
		})
	}
	sim.ScheduleAt(60*time.Millisecond, "test:put", func() { nodes[0].put(1, "k", "v") })
	sim.Run(10 * time.Second)

	if len(nodes[0].puts) != 1 {
		t.Fatalf("put unresolved: %+v", nodes[0].puts)
	}
	if nodes[0].ABD.InFlight() != 0 {
		t.Fatal("leaked in-flight op")
	}
	// Either the op eventually squeezed through between bumps (acceptable:
	// the self-replica serves lower epochs until it merges) or it failed
	// with the epoch-restart cap — but it must never hang or mix epochs.
	if err := nodes[0].puts[0].Err; err != "" {
		_, _, restarts := nodes[0].ABD.EpochStats()
		if restarts == 0 {
			t.Fatalf("op failed (%q) without epoch restarts", err)
		}
	}
}

// TestEpochChurnStress exercises the full coordinator/replica epoch path
// under churn — concurrent ops, rolling sync windows, and a crashed
// replica — and checks every op resolves and nothing leaks. Run with
// -race this doubles as the concurrency check on the epoch machinery.
// The body lives in epochChurnStress so the tracing tests can re-run the
// identical workload with span recording enabled.
func TestEpochChurnStress(t *testing.T) { epochChurnStress(t) }

func epochChurnStress(t *testing.T) {
	t.Helper()
	sim, emu, nodes, _ := newEpochWorld(t, 5, 36)
	rng := rand.New(rand.NewSource(36))

	// Rolling sync windows: every 150ms some replica enters a brief sync
	// window at a rising epoch; most close, one in five stays open until
	// the next window on that node supersedes it.
	epoch := uint64(1)
	rounds := make([]uint64, len(nodes))
	for i := 0; i < 60; i++ {
		at := time.Duration(i) * 150 * time.Millisecond
		victim := rng.Intn(len(nodes))
		c := rng.Float64() < 0.8
		sim.ScheduleAt(at, "stress:sync", func() {
			rounds[victim]++
			nodes[victim].syncWindow(epoch, rounds[victim], c)
			epoch++
		})
	}
	// One replica drops off the network mid-run and returns.
	sim.ScheduleAt(3*time.Second, "stress:crash", func() { emu.Crash(nodes[4].self.Addr) })
	sim.ScheduleAt(5*time.Second, "stress:restart", func() { emu.Restart(nodes[4].self.Addr) })

	// Workload across all coordinators.
	const ops = 50
	for i := 0; i < ops; i++ {
		at := time.Duration(rng.Int63n(int64(8 * time.Second)))
		node := nodes[rng.Intn(4)] // not the crashing one: its client would stall, not fail
		id := uint64(100 + i)
		key := fmt.Sprintf("k%d", i%7)
		if rng.Float64() < 0.5 {
			val := fmt.Sprintf("v%d", i)
			sim.ScheduleAt(at, "stress:put", func() { node.put(id, key, val) })
		} else {
			sim.ScheduleAt(at, "stress:get", func() { node.get(id, key) })
		}
	}
	// Close any still-open windows so trailing ops can resolve.
	sim.ScheduleAt(9*time.Second, "stress:quiesce", func() {
		for i, nd := range nodes {
			rounds[i]++
			nd.syncWindow(epoch, rounds[i], true)
			epoch++
		}
	})
	sim.Run(20 * time.Second)

	resolved := 0
	for i, nd := range nodes {
		resolved += len(nd.puts) + len(nd.gets)
		if nd.ABD.InFlight() != 0 {
			t.Errorf("node %d leaked %d in-flight ops", i+1, nd.ABD.InFlight())
		}
	}
	if resolved != ops {
		t.Fatalf("resolved %d of %d ops", resolved, ops)
	}
}
