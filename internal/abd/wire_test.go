package abd

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/network"
	"repro/internal/tracing"
)

func wireHeader() network.Header {
	return network.NewHeader(
		network.Address{Host: "10.0.0.1", Port: 7000},
		network.Address{Host: "10.0.0.2", Port: 7001},
	)
}

// TestABDWireRoundTrip drives every ABD quorum message through the binary
// codec and back, checking field-exact equality: AppendWire and the
// registered decoder must be exact inverses.
func TestABDWireRoundTrip(t *testing.T) {
	tc := tracing.Context{TraceID: 0xfeed, SpanID: 0xbeef}
	ver := kvstore.Version{Seq: 42, Writer: 7}
	msgs := []network.Message{
		readMsg{Header: wireHeader(), Context: tc, OpID: 1, Attempt: 3, Epoch: 9, Key: "alpha"},
		readAckMsg{Header: wireHeader(), OpID: 2, Attempt: 1, Epoch: 9, Version: ver, Value: []byte("v"), Found: true},
		readAckMsg{Header: wireHeader(), OpID: 3, Epoch: 9, Found: false}, // empty value stays nil
		writeMsg{Header: wireHeader(), Context: tc, OpID: 4, Attempt: 2, Epoch: 9, Key: "beta", Version: ver, Value: []byte("payload")},
		writeAckMsg{Header: wireHeader(), OpID: 5, Attempt: 1, Epoch: 9},
		nackMsg{Header: wireHeader(), OpID: 6, Attempt: 4, Epoch: 9, Busy: true, RetryAfter: 250 * time.Millisecond},
		opBatchMsg{
			Header: wireHeader(), Context: tc,
			Reads: []readPhase{
				{Context: tc, OpID: 7, Attempt: 1, Epoch: 9, Key: "g1"},
				{OpID: 8, Epoch: 9, Key: ""},
			},
			Writes: []writePhase{
				{Context: tc, OpID: 9, Attempt: 2, Epoch: 9, Key: "p1", Version: ver, Value: []byte("vv")},
			},
		},
		opBatchMsg{Header: wireHeader(), Context: tc}, // empty batch
		opBatchAckMsg{
			Header: wireHeader(), Epoch: 9,
			ReadAcks: []readAckEntry{
				{OpID: 7, Attempt: 1, Version: ver, Value: []byte("x"), Found: true},
				{OpID: 8, Found: false},
			},
			WriteAcks: []writeAckEntry{{OpID: 9, Attempt: 2}},
		},
	}
	for _, m := range msgs {
		payload, err := (network.BinaryCodec{}).Encode(m)
		if err != nil {
			t.Fatalf("%T encode: %v", m, err)
		}
		if !network.IsBinaryPayload(payload) {
			t.Fatalf("%T did not use the binary wire format", m)
		}
		got, err := network.DecodePayload(payload)
		if err != nil {
			t.Fatalf("%T decode: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("%T round trip mismatch:\n got  %+v\n want %+v", m, got, m)
		}
	}
}

// TestABDWireCorruptCounts pins the count guards: a batch frame whose
// element count promises more entries than the body holds must error out
// before any allocation sized by that count.
func TestABDWireCorruptCounts(t *testing.T) {
	payload, err := (network.BinaryCodec{}).Encode(opBatchMsg{Header: wireHeader()})
	if err != nil {
		t.Fatal(err)
	}
	// The reads count is the u32 right after flag+tag+header+trace. Corrupt
	// it to a huge value and decoding must fail cleanly.
	corrupt := append([]byte(nil), payload...)
	n := len(corrupt)
	// Empty batch tail: reads count u32 + writes count u32 are the last 8.
	corrupt[n-8], corrupt[n-7], corrupt[n-6], corrupt[n-5] = 0xff, 0xff, 0xff, 0xff
	if _, err := network.DecodePayload(corrupt); err == nil {
		t.Fatal("corrupt batch count decoded")
	}
	corrupt2 := append([]byte(nil), payload...)
	corrupt2[n-4], corrupt2[n-3], corrupt2[n-2], corrupt2[n-1] = 0xff, 0xff, 0xff, 0xff
	if _, err := network.DecodePayload(corrupt2); err == nil {
		t.Fatal("corrupt write count decoded")
	}
}

// TestABDWireEncodeZeroAlloc gates the quorum hot path: encoding a read
// phase and its ack into a recycled buffer must not allocate.
func TestABDWireEncodeZeroAlloc(t *testing.T) {
	msgs := []network.Message{
		readMsg{Header: wireHeader(), OpID: 1, Attempt: 1, Epoch: 2, Key: "k"},
		readAckMsg{Header: wireHeader(), OpID: 1, Version: kvstore.Version{Seq: 1}, Value: make([]byte, 256), Found: true},
		writeMsg{Header: wireHeader(), OpID: 2, Key: "k", Value: make([]byte, 256)},
		writeAckMsg{Header: wireHeader(), OpID: 2},
	}
	buf := make([]byte, 0, 4096)
	var c network.BinaryCodec
	allocs := testing.AllocsPerRun(200, func() {
		for _, m := range msgs {
			out, err := c.EncodeAppend(buf[:0], m)
			if err != nil || len(out) == 0 {
				t.Fatal("encode failed")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("ABD wire encode allocates %.1f/op, want 0", allocs)
	}
}
