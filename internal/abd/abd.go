package abd

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/handoff"
	"repro/internal/ident"
	"repro/internal/kvstore"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/status"
	"repro/internal/timer"
	"repro/internal/tracing"
)

// Client-facing PutGet events (the paper's PutGet port).

// GetRequest asks for the value of a key, linearizably.
type GetRequest struct {
	ReqID uint64
	Key   string
}

// GetResponse answers a GetRequest. Found is false for never-written keys.
// Err is non-empty when the operation failed (timeout after retries).
type GetResponse struct {
	ReqID uint64
	Key   string
	Value []byte
	Found bool
	Err   string
}

// PutRequest writes a value under a key, linearizably.
type PutRequest struct {
	ReqID uint64
	Key   string
	Value []byte
}

// PutResponse answers a PutRequest.
type PutResponse struct {
	ReqID uint64
	Key   string
	Err   string
}

// PutGetPortType is the key-value service abstraction the CATS node
// exposes to clients.
var PutGetPortType = core.NewPortType("PutGet",
	core.Request[GetRequest](),
	core.Request[PutRequest](),
	core.Indication[GetResponse](),
	core.Indication[PutResponse](),
)

// Replica wire messages. Every quorum phase carries the coordinator's
// group-view epoch; replicas refuse epochs behind their own (consistent
// quorums: an attempt's acks all come from one epoch, never straddling two
// memberships) and acks echo the epoch they were served in.

type readMsg struct {
	network.Header
	tracing.Context
	OpID    uint64
	Attempt int
	Epoch   uint64
	Key     string
}

type readAckMsg struct {
	network.Header
	OpID    uint64
	Attempt int
	Epoch   uint64
	Version Version
	Value   []byte
	Found   bool
}

type writeMsg struct {
	network.Header
	tracing.Context
	OpID    uint64
	Attempt int
	Epoch   uint64
	Key     string
	Version Version
	Value   []byte
}

type writeAckMsg struct {
	network.Header
	OpID    uint64
	Attempt int
	Epoch   uint64
}

// nackMsg refuses a quorum phase. Busy means the replica cannot serve
// right now; with RetryAfter zero it is mid-handoff (state for the new
// view still in flight) and the coordinator just waits, with RetryAfter
// set the replica shed the phase under load and the coordinator re-offers
// it after the hint (plus jitter). A non-Busy nack means the
// coordinator's epoch was stale and Epoch is the hint to restart the
// attempt against a fresh view.
type nackMsg struct {
	network.Header
	OpID       uint64
	Attempt    int
	Epoch      uint64
	Busy       bool
	RetryAfter time.Duration
}

func init() {
	network.Register(readMsg{})
	network.Register(readAckMsg{})
	network.Register(writeMsg{})
	network.Register(writeAckMsg{})
	network.Register(nackMsg{})
}

type opTimeout struct {
	timer.Timeout
	OpID uint64
}

// op phases. phaseIdle is the between-attempts state: a timed-out
// attempt sits idle through its backoff delay, ignoring stragglers from
// the superseded wire attempt.
type phase int

const (
	phaseIdle  phase = 0
	phaseRoute phase = iota
	phaseRead
	phaseWrite
)

type opKind int

const (
	opGet opKind = iota + 1
	opPut
)

// op tracks one in-flight client operation's quorum state machine.
type op struct {
	id    uint64
	kind  opKind
	reqID uint64
	key   string
	value []byte // put payload

	phase     phase
	group     []ident.NodeRef
	epoch     uint64 // group-view epoch this attempt runs in
	quorum    int
	readAcks  int
	writeAcks int
	bestVer   Version
	bestVal   []byte
	bestFound bool
	bestCount int // read acks carrying exactly bestVer
	// attempt is the wire-level attempt number: bumped on every restart
	// (timeout retries AND stale-epoch restarts) so late acks from a
	// superseded group can never count toward the current quorum.
	attempt int
	// retries counts timeout retries against MaxRetries; epochRestarts
	// counts stale-epoch restarts separately — reconfiguration churn must
	// not eat the timeout budget, but it still needs its own bound.
	retries       int
	epochRestarts int
	timerID       timer.ID

	// Adaptive-deadline and hedge state. deadline is this attempt's full
	// budget; the attempt timer first fires at deadline/hedgeStageDiv (the
	// hedge checkpoint, hedgeChecked) and then re-arms for the remainder.
	// ackedMask is the per-phase bitmap (by group index) of replicas whose
	// ack already counted — the dedup that discards a hedge loser's late
	// duplicate. attemptAt/phaseSentAt are always set (unlike the
	// trace-gated clocks below): they feed rtt observation and budgets.
	deadline     time.Duration
	attemptAt    time.Time
	phaseSentAt  time.Time
	ackedMask    uint64
	hedgeChecked bool
	hedged       bool
	hedgeTo      int       // group index the hedge went to; -1 after its ack won
	hedgeAt      time.Time // when the hedged duplicate was sent
	// imposeVer/imposeVal are the phase-2 payload, kept so hedges and shed
	// redeliveries can re-send the impose without recomputing it.
	imposeVer Version
	imposeVal []byte

	// Tracing state: zero traceID means the op is unsampled and every
	// tracing hook is a no-op (see trace.go for the span model).
	traceID      uint64
	rootSpan     uint64
	attemptSpan  uint64
	linkSpan     uint64 // restart link owed to the next attempt span
	opStart      time.Time
	attemptStart time.Time
	phaseStart   time.Time
}

// Config parameterizes the ABD component.
type Config struct {
	// Self is the local node reference (its key is the writer identity).
	Self ident.NodeRef
	// ReplicationDegree is the target replica group size (default 3).
	ReplicationDegree int
	// OpTimeout is the per-attempt timeout before retrying (default 1s).
	OpTimeout time.Duration
	// MaxRetries bounds attempts before failing the operation (default 5).
	MaxRetries int
	// Store optionally supplies the register store. The CATS node shares
	// one store between the replica and its handoff component; nil creates
	// a private store (tests).
	Store *kvstore.Store
	// NoCoalesce disables quorum coalescing: every phase goes out as its
	// own single-op message immediately. Exists for A/B benchmarking and
	// protocol-level tests of the uncoalesced flow.
	NoCoalesce bool

	// DeadlineFloor and DeadlineCeil clamp the adaptive per-peer deadline
	// (defaults OpTimeout/20 and OpTimeout). The ceiling doubles as the
	// attempt budget for groups with no latency history, so a fresh
	// coordinator behaves exactly like the old fixed-timeout one.
	DeadlineFloor time.Duration
	DeadlineCeil  time.Duration
	// NoHedge disables hedged quorum phases (A/B benchmarking).
	NoHedge bool

	// Replica-side admission control. ShedServeRate caps quorum phases
	// served per ShedWindow (default 10ms); past the cap the replica sheds
	// with Busy{RetryAfter: ShedRetryAfter} nacks (default OpTimeout/20).
	// ShedBacklog sheds when the runtime scheduler reports more than this
	// many components queued; ShedWALBacklog sheds when a durable store's
	// un-fsynced WAL bytes exceed it. Zero disables each signal — the
	// defaults are conservative because shedding healthy traffic is worse
	// than queueing it.
	ShedServeRate  int
	ShedWindow     time.Duration
	ShedRetryAfter time.Duration
	ShedBacklog    int
	ShedWALBacklog int64
}

func (c *Config) applyDefaults() {
	if c.ReplicationDegree <= 0 {
		c.ReplicationDegree = 3
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
	if c.DeadlineCeil <= 0 {
		c.DeadlineCeil = c.OpTimeout
	}
	if c.DeadlineFloor <= 0 {
		c.DeadlineFloor = c.OpTimeout / 20
	}
	if c.DeadlineFloor > c.DeadlineCeil {
		c.DeadlineFloor = c.DeadlineCeil
	}
	if c.ShedWindow <= 0 {
		c.ShedWindow = 10 * time.Millisecond
	}
	if c.ShedRetryAfter <= 0 {
		c.ShedRetryAfter = c.OpTimeout / 20
	}
}

// ABD is the Consistent ABD component: provides PutGet, requires Router,
// Handoff, Network, and Timer. It is both coordinator (client side) and
// replica (server side) — every node stores register state for the keys it
// is responsible for.
type ABD struct {
	cfg Config

	ctx  *core.Ctx
	pg   *core.Port
	rout *core.Port
	hop  *core.Port
	net  *core.Port
	tmr  *core.Port
	// fdp carries slow-peer hints to the failure detector. Triggering an
	// unconnected required port delivers to nobody, so standalone ABD
	// assemblies (tests) need no detector wired.
	fdp *core.Port

	store *Store
	ops   map[uint64]*op
	seq   uint64
	// ids mints trace and span IDs; nodeName labels this node's spans.
	ids      *tracing.IDSource
	nodeName string
	// lamport is the coordinator's write clock: it advances past every
	// version observed in read phases, so two writes coordinated
	// concurrently by this node never reuse a (Seq, Writer) pair — without
	// it, both would base on the same read version and install identical
	// versions for different values, leaving replicas permanently
	// divergent (found by the randomized linearizability tests).
	lamport uint64

	// localEpoch is the replica's view epoch: raised by handoff
	// SyncStarted events and Lamport-merged from served coordinator
	// messages (per-node epochs diverge; serving an equal-or-newer epoch
	// and merging keeps replicas from livelocking on strict equality).
	localEpoch uint64
	// epochFloor is the coordinator-side epoch floor accumulated from nack
	// hints: the next attempt starts at least there.
	epochFloor uint64
	// syncing gates acknowledgements while handoff pulls the covered range
	// for a new view: acking before the state arrives is exactly how
	// acknowledged writes get lost across reconfiguration.
	syncing  bool
	curRound uint64

	// Quorum coalescing state: phases owed to each peer since the last
	// flush, in insertion order (map order would be nondeterministic), and
	// whether a flush timeout is already in flight.
	pend       map[network.Address]*peerBatch
	pendOrder  []network.Address
	flushArmed bool

	// peers holds the coordinator's per-replica latency estimators
	// (adaptive deadlines, overrun evidence; see adaptive.go).
	peers map[network.Address]*peerStat
	// Replica-side admission control: serves counted in the current
	// shed window.
	shedWinStart time.Time
	shedServed   int

	statGets, statPuts, statRetries, statFailures  uint64
	statNacksBusy, statNacksStale, statStaleServed uint64
	statEpochRestarts                              uint64
	statBatchesSent, statBatchedOps                uint64
	statHedges, statHedgeWins, statSheds           uint64
	statRedeliveries, statSlowHints                uint64
}

// New creates an ABD component definition.
func New(cfg Config) *ABD {
	cfg.applyDefaults()
	st := cfg.Store
	if st == nil {
		st = NewStore()
	}
	return &ABD{
		cfg:   cfg,
		store: st,
		ops:   make(map[uint64]*op),
		pend:  make(map[network.Address]*peerBatch),
		peers: make(map[network.Address]*peerStat),
	}
}

var _ core.Definition = (*ABD)(nil)

// Setup declares ports and handlers.
func (a *ABD) Setup(ctx *core.Ctx) {
	a.ctx = ctx
	a.nodeName = a.cfg.Self.Addr.String()
	a.ids = tracing.NewIDSource(a.nodeName)
	a.pg = ctx.Provides(PutGetPortType)
	a.rout = ctx.Requires(router.PortType)
	a.hop = ctx.Requires(handoff.PortType)
	a.net = ctx.Requires(network.PortType)
	a.tmr = ctx.Requires(timer.PortType)
	a.fdp = ctx.Requires(fd.PortType)

	st := ctx.Provides(status.PortType)
	core.Subscribe(ctx, st, func(q status.Request) {
		syncing := int64(0)
		if a.syncing {
			syncing = 1
		}
		ctx.Trigger(status.Response{ReqID: q.ReqID, Component: "consistent-abd", Metrics: map[string]int64{
			"keys":           int64(a.store.Len()),
			"gets":           int64(a.statGets),
			"puts":           int64(a.statPuts),
			"retries":        int64(a.statRetries),
			"failures":       int64(a.statFailures),
			"in-flight":      int64(len(a.ops)),
			"epoch":          int64(a.localEpoch),
			"nacks_busy":     int64(a.statNacksBusy),
			"nacks_stale":    int64(a.statNacksStale),
			"epoch_restarts": int64(a.statEpochRestarts),
			"syncing":        syncing,
			"batches_sent":   int64(a.statBatchesSent),
			"batched_ops":    int64(a.statBatchedOps),
			"hedges":         int64(a.statHedges),
			"hedge_wins":     int64(a.statHedgeWins),
			"sheds":          int64(a.statSheds),
			"redeliveries":   int64(a.statRedeliveries),
			"slow_hints":     int64(a.statSlowHints),
		}}, st)
	})

	core.Subscribe(ctx, a.pg, a.handleGet)
	core.Subscribe(ctx, a.pg, a.handlePut)
	core.Subscribe(ctx, a.rout, a.handleFound)
	core.Subscribe(ctx, a.hop, a.handleSyncStarted)
	core.Subscribe(ctx, a.hop, a.handleSynced)
	core.Subscribe(ctx, a.net, a.handleRead)
	core.Subscribe(ctx, a.net, a.handleReadAck)
	core.Subscribe(ctx, a.net, a.handleWrite)
	core.Subscribe(ctx, a.net, a.handleWriteAck)
	core.Subscribe(ctx, a.net, a.handleNack)
	core.Subscribe(ctx, a.net, a.handleOpBatch)
	core.Subscribe(ctx, a.net, a.handleOpBatchAck)
	core.Subscribe(ctx, a.tmr, a.handleTimeout)
	core.Subscribe(ctx, a.tmr, a.handleBackoff)
	core.Subscribe(ctx, a.tmr, a.handleRedeliver)
	core.Subscribe(ctx, a.tmr, a.handleFlush)
}

// Store exposes the local register store (status, tests).
func (a *ABD) Store() *Store { return a.store }

// Stats returns operation counters: gets and puts completed, retries, and
// failed operations.
func (a *ABD) Stats() (gets, puts, retries, failures uint64) {
	return a.statGets, a.statPuts, a.statRetries, a.statFailures
}

// EpochStats returns reconfiguration counters: busy and stale nacks
// received by this coordinator and attempts restarted on stale epochs.
func (a *ABD) EpochStats() (busy, stale, restarts uint64) {
	return a.statNacksBusy, a.statNacksStale, a.statEpochRestarts
}

// Epoch returns the replica's current view epoch (tests).
func (a *ABD) Epoch() uint64 { return a.localEpoch }

// Syncing reports whether the replica is inside a handoff sync window —
// refusing quorum phases with Busy nacks (tests and benchmark settling).
func (a *ABD) Syncing() bool { return a.syncing }

// BatchStats returns coalescing counters: multi-op frames flushed by this
// coordinator and the quorum phases they carried.
func (a *ABD) BatchStats() (batches, batchedOps uint64) {
	return a.statBatchesSent, a.statBatchedOps
}

// InFlight returns the number of operations currently executing.
func (a *ABD) InFlight() int { return len(a.ops) }

// --- replica-group view -------------------------------------------------------

// handleSyncStarted enters the sync window for a new group view: the
// replica refuses to ack quorum phases (Busy nacks) until handoff finishes
// pulling the range it now covers.
func (a *ABD) handleSyncStarted(s handoff.SyncStarted) {
	a.syncing = true
	a.curRound = s.Round
	if s.Epoch > a.localEpoch {
		a.localEpoch = s.Epoch
	}
}

// handleSynced leaves the sync window. Rounds — not epochs — are matched:
// localEpoch may have been merged past the handoff component's epoch by
// coordinator traffic, so epoch equality would deadlock the replica.
func (a *ABD) handleSynced(s handoff.Synced) {
	if s.Round == a.curRound {
		a.syncing = false
	}
}

// --- coordinator: client requests ---------------------------------------------

func (a *ABD) handleGet(g GetRequest) {
	a.startOp(&op{kind: opGet, reqID: g.ReqID, key: g.Key})
}

func (a *ABD) handlePut(p PutRequest) {
	a.startOp(&op{kind: opPut, reqID: p.ReqID, key: p.Key, value: p.Value})
}

func (a *ABD) startOp(o *op) {
	a.seq++
	o.id = a.seq
	a.beginTrace(o)
	a.ops[o.id] = o
	a.beginAttempt(o)
}

// beginAttempt (re)runs an operation attempt from group resolution. The
// attempt budget is adaptive — derived from the group's per-peer latency
// estimators (the previous attempt's group on retries; the ceiling when
// no history exists) — and the attempt timer fires in two stages: the
// hedge checkpoint at budget/hedgeStageDiv, then the retry deadline.
func (a *ABD) beginAttempt(o *op) {
	o.phase = phaseRoute
	o.attempt++
	a.beginAttemptTrace(o)
	o.readAcks, o.writeAcks, o.bestCount = 0, 0, 0
	o.bestVer, o.bestVal, o.bestFound = Version{}, nil, false
	o.ackedMask = 0
	o.hedgeChecked, o.hedged, o.hedgeTo = false, false, -1
	o.imposeVer, o.imposeVal = Version{}, nil
	now := a.ctx.Now()
	o.attemptAt, o.phaseSentAt = now, now
	o.deadline = a.attemptBudget(o)
	deadlineGauge.Store(uint64(o.deadline))
	o.timerID = timer.NextID()
	a.ctx.Trigger(timer.ScheduleTimeout{
		Delay:   o.deadline / hedgeStageDiv,
		Timeout: opTimeout{Timeout: timer.Timeout{ID: o.timerID}, OpID: o.id},
	}, a.tmr)
	a.ctx.Trigger(router.FindSuccessor{
		ReqID: o.id,
		Key:   ident.KeyOfString(o.key),
		Count: a.cfg.ReplicationDegree,
	}, a.rout)
}

// handleFound starts phase 1 (read round) once the replica group is known.
// The attempt runs in the freshest epoch this node knows: the router's
// resolution epoch, nack hints, and the replica-side view all feed in.
func (a *ABD) handleFound(f router.FoundSuccessor) {
	o, ok := a.ops[f.ReqID]
	if !ok || o.phase != phaseRoute {
		return
	}
	if len(f.Group) == 0 {
		return // wait for timeout → retry; membership not converged yet
	}
	o.group = f.Group
	o.epoch = f.Epoch
	if a.epochFloor > o.epoch {
		o.epoch = a.epochFloor
	}
	if a.localEpoch > o.epoch {
		o.epoch = a.localEpoch
	}
	o.quorum = len(f.Group)/2 + 1
	a.endPhase(o, outcomeOK)
	// The budget computed at beginAttempt used the previous attempt's group
	// (the ceiling for a fresh op). Now that the group is resolved, re-arm
	// the attempt timer against its actual latency estimates — this is what
	// makes attempt budgets adaptive on FIRST attempts, not just retries.
	// Cold groups keep the ceiling budget and skip the re-arm entirely.
	if b := a.attemptBudget(o); b < o.deadline {
		o.deadline = b
		deadlineGauge.Store(uint64(b))
		a.ctx.Trigger(timer.CancelTimeout{ID: o.timerID}, a.tmr)
		o.timerID = timer.NextID()
		o.attemptAt = a.ctx.Now()
		a.ctx.Trigger(timer.ScheduleTimeout{
			Delay:   b / hedgeStageDiv,
			Timeout: opTimeout{Timeout: timer.Timeout{ID: o.timerID}, OpID: o.id},
		}, a.tmr)
	}
	o.phase = phaseRead
	o.phaseSentAt = a.ctx.Now()
	for _, n := range o.group {
		a.sendRead(n.Addr, readPhase{
			Context: o.wireCtx(),
			OpID:    o.id,
			Attempt: o.attempt,
			Epoch:   o.epoch,
			Key:     o.key,
		})
	}
}

// handleReadAck feeds a legacy single-op read ack into the quorum state
// machine; batch acks arrive through handleOpBatchAck and share ingest.
func (a *ABD) handleReadAck(m readAckMsg) {
	a.ingestReadAck(m.Source(), m.OpID, m.Attempt, m.Version, m.Value, m.Found)
}

// ingestReadAck collects the read quorum, then imposes the chosen
// version+value in phase 2.
func (a *ABD) ingestReadAck(src network.Address, opID uint64, attempt int, version Version, value []byte, found bool) {
	o, ok := a.ops[opID]
	if !ok || o.phase != phaseRead || attempt != o.attempt {
		return // stale ack from a previous attempt: its group may differ
	}
	if !a.countAck(o, src) {
		return // duplicate: a hedge loser's late ack, discarded
	}
	o.readAcks++
	if o.bestVer.Less(version) {
		o.bestVer, o.bestVal, o.bestFound = version, value, found
		o.bestCount = 1
	} else if version == o.bestVer {
		o.bestCount++
	}
	if o.readAcks < o.quorum {
		return
	}
	a.endPhase(o, outcomeOK)
	// A read that found no written value anywhere in the quorum completes
	// without an impose round: there is nothing to write back, and
	// returning "not found" linearizes before any still-incomplete write.
	if o.kind == opGet && o.bestVer.IsZero() {
		o.bestFound = false
		a.finish(o, "")
		return
	}
	// Read optimization (one round trip): when the whole read quorum
	// reports the same version, that (version, value) already resides on a
	// quorum — any later read's quorum intersects it — so the impose round
	// is unnecessary.
	if o.kind == opGet && o.bestCount == o.readAcks {
		a.finish(o, "")
		return
	}
	// Phase 2: impose. Reads write back the freshest (version, value);
	// writes install a new version dominating everything seen.
	o.phase = phaseWrite
	o.ackedMask = 0
	o.hedged, o.hedgeTo = false, -1
	o.phaseSentAt = a.ctx.Now()
	ver, val := o.bestVer, o.bestVal
	if o.kind == opPut {
		if o.bestVer.Seq > a.lamport {
			a.lamport = o.bestVer.Seq
		}
		a.lamport++
		ver = Version{Seq: a.lamport, Writer: uint64(a.cfg.Self.Key)}
		val = o.value
	}
	o.imposeVer, o.imposeVal = ver, val
	for _, n := range o.group {
		a.sendWrite(n.Addr, writePhase{
			Context: o.wireCtx(),
			OpID:    o.id,
			Attempt: o.attempt,
			Epoch:   o.epoch,
			Key:     o.key,
			Version: ver,
			Value:   val,
		})
	}
}

// handleWriteAck feeds a legacy single-op write ack into the quorum state
// machine; batch acks arrive through handleOpBatchAck and share ingest.
func (a *ABD) handleWriteAck(m writeAckMsg) {
	a.ingestWriteAck(m.Source(), m.OpID, m.Attempt)
}

// ingestWriteAck collects the write quorum and completes the operation.
func (a *ABD) ingestWriteAck(src network.Address, opID uint64, attempt int) {
	o, ok := a.ops[opID]
	if !ok || o.phase != phaseWrite || attempt != o.attempt {
		return
	}
	if !a.countAck(o, src) {
		return // duplicate: a hedge loser's late ack, discarded
	}
	o.writeAcks++
	if o.writeAcks < o.quorum {
		return
	}
	a.endPhase(o, outcomeOK)
	a.finish(o, "")
}

// handleNack reacts to a replica refusing a quorum phase. Busy nacks just
// feed the epoch floor — the replica is syncing and the attempt can still
// quorum on the others (or time out). A stale nack means this attempt's
// epoch can never quorum: restart immediately against a fresh view.
func (a *ABD) handleNack(m nackMsg) {
	o, ok := a.ops[m.OpID]
	if !ok || m.Attempt != o.attempt {
		return
	}
	if m.Epoch > a.epochFloor {
		a.epochFloor = m.Epoch
	}
	if o.phase == phaseIdle {
		return // between attempts (backoff): the wire attempt is superseded
	}
	if m.Busy {
		a.statNacksBusy++
		// A RetryAfter hint means the replica shed under load (vs the bare
		// mid-handoff Busy, where the coordinator just waits): re-offer the
		// phase to that replica after the hint plus jitter.
		if m.RetryAfter > 0 {
			a.scheduleRedeliver(o, m)
		}
		return
	}
	a.statNacksStale++
	// Epoch restarts have their own bound (reconfiguration may be ongoing),
	// wider than the timeout budget but finite: a node that can never catch
	// up must fail the op rather than spin.
	if o.epochRestarts >= 2*a.cfg.MaxRetries {
		a.endPhase(o, outcomeFail)
		a.finish(o, "stale epoch: view kept changing")
		return
	}
	o.epochRestarts++
	a.statEpochRestarts++
	a.ctx.Trigger(timer.CancelTimeout{ID: o.timerID}, a.tmr)
	// The restarted attempt keeps the trace: the superseded attempt span
	// ends with outcome "restart" and the next one links back to it.
	a.endPhase(o, outcomeRestart)
	a.restartTrace(o)
	a.beginAttempt(o)
}

// finish completes an operation, responding to the client.
func (a *ABD) finish(o *op, errMsg string) {
	delete(a.ops, o.id)
	a.ctx.Trigger(timer.CancelTimeout{ID: o.timerID}, a.tmr)
	if errMsg != "" {
		a.statFailures++
		a.endTrace(o, "fail")
	} else {
		a.endTrace(o, "ok")
	}
	switch o.kind {
	case opGet:
		if errMsg == "" {
			a.statGets++
		}
		a.ctx.Trigger(GetResponse{
			ReqID: o.reqID,
			Key:   o.key,
			Value: o.bestVal,
			Found: o.bestFound,
			Err:   errMsg,
		}, a.pg)
	case opPut:
		if errMsg == "" {
			a.statPuts++
		}
		a.ctx.Trigger(PutResponse{ReqID: o.reqID, Key: o.key, Err: errMsg}, a.pg)
	}
}

// handleTimeout is the attempt timer's two-stage handler. The first fire
// (at deadline/hedgeStageDiv) is the hedge checkpoint: if the phase is one
// ack short of quorum and the straggler has overrun its adaptive deadline,
// the phase is resent to another group member, and either way the timer
// re-arms for the remainder of the budget. The second fire retries the
// whole attempt (fresh group resolution, after a jittered backoff) or
// fails the operation after MaxRetries.
func (a *ABD) handleTimeout(t opTimeout) {
	o, ok := a.ops[t.OpID]
	if !ok || o.timerID != t.TimeoutID() {
		return
	}
	if !o.hedgeChecked {
		o.hedgeChecked = true
		a.maybeHedge(o)
		rem := o.deadline - a.ctx.Now().Sub(o.attemptAt)
		if rem > 0 {
			o.timerID = timer.NextID()
			a.ctx.Trigger(timer.ScheduleTimeout{
				Delay:   rem,
				Timeout: opTimeout{Timeout: timer.Timeout{ID: o.timerID}, OpID: o.id},
			}, a.tmr)
			return
		}
	}
	if o.retries >= a.cfg.MaxRetries {
		a.ctx.Log().Warn("abd: operation failed after retries",
			"op", o.id, "key", o.key, "phase", int(o.phase), "group", fmt.Sprintf("%v", o.group),
			"readAcks", o.readAcks, "writeAcks", o.writeAcks, "quorum", o.quorum)
		a.endPhase(o, outcomeTimeout)
		a.finish(o, "timeout: no quorum after retries")
		return
	}
	o.retries++
	a.statRetries++
	retriesTotal.Add(1)
	a.endPhase(o, outcomeTimeout)
	a.endAttempt(o, "timeout")
	// Jittered backoff desynchronizes co-timed retries so they don't
	// stampede a recovering replica; the op idles through the delay,
	// ignoring stragglers from the superseded wire attempt.
	o.phase = phaseIdle
	o.timerID = timer.NextID()
	a.ctx.Trigger(timer.ScheduleTimeout{
		Delay:   a.retryBackoff(o.retries),
		Timeout: backoffTimeout{Timeout: timer.Timeout{ID: o.timerID}, OpID: o.id},
	}, a.tmr)
}

// --- replica: register storage --------------------------------------------------

// serveEpoch applies the replica-side epoch gate shared by reads and
// writes: stale epochs are refused with a hint, phases arriving mid-sync
// are refused as Busy (the state backing an ack may still be in flight),
// and served epochs merge into the replica's own — per-node epochs are
// Lamport clocks, not globally equal counters, so "equal or newer" is the
// servable condition.
func (a *ABD) serveEpoch(m network.Message, tc tracing.Context, kind string, opID uint64, attempt int, epoch uint64) bool {
	if epoch < a.localEpoch {
		a.statStaleServed++
		a.recordServe(tc, kind, opID, attempt, "nack-stale")
		a.ctx.Trigger(nackMsg{
			Header: network.Reply(m), OpID: opID, Attempt: attempt,
			Epoch: a.localEpoch, Busy: false,
		}, a.net)
		return false
	}
	if a.syncing {
		a.recordServe(tc, kind, opID, attempt, "nack-busy")
		a.ctx.Trigger(nackMsg{
			Header: network.Reply(m), OpID: opID, Attempt: attempt,
			Epoch: a.localEpoch, Busy: true,
		}, a.net)
		return false
	}
	// Admission control: a replica under pressure sheds the phase with a
	// retry-after hint instead of queueing it unboundedly. Shedding comes
	// after the epoch checks — a stale coordinator learns its epoch is
	// stale even when the replica is overloaded.
	if a.shouldShed() {
		a.statSheds++
		shedsTotal.Add(1)
		a.recordServe(tc, kind, opID, attempt, "shed")
		a.ctx.Trigger(nackMsg{
			Header: network.Reply(m), OpID: opID, Attempt: attempt,
			Epoch: a.localEpoch, Busy: true, RetryAfter: a.cfg.ShedRetryAfter,
		}, a.net)
		return false
	}
	a.shedServed++
	if epoch > a.localEpoch {
		a.localEpoch = epoch
	}
	return true
}

func (a *ABD) handleRead(m readMsg) {
	if !a.serveEpoch(m, m.Context, "serve.read", m.OpID, m.Attempt, m.Epoch) {
		return
	}
	ver, val, found := a.store.Read(m.Key)
	a.recordServe(m.Context, "serve.read", m.OpID, m.Attempt, "ok")
	a.ctx.Trigger(readAckMsg{
		Header:  network.Reply(m),
		OpID:    m.OpID,
		Attempt: m.Attempt,
		Epoch:   a.localEpoch,
		Version: ver,
		Value:   val,
		Found:   found,
	}, a.net)
}

func (a *ABD) handleWrite(m writeMsg) {
	if !a.serveEpoch(m, m.Context, "serve.write", m.OpID, m.Attempt, m.Epoch) {
		return
	}
	// The ack is the durability promise: on a durable store ApplyDurable
	// returns only after the write is in the shard's WAL (fsynced under
	// sync=always). A WAL failure therefore withholds the ack — the
	// coordinator retries or fails the op, but never reports a write
	// stored that a restart would lose.
	if _, err := a.store.ApplyDurable(m.Key, m.Version, m.Value); err != nil {
		a.recordServe(m.Context, "serve.write", m.OpID, m.Attempt, "wal-error")
		a.ctx.Log().Warn("abd: wal append failed; write not acked", "key", m.Key, "err", err)
		return
	}
	a.recordServe(m.Context, "serve.write", m.OpID, m.Attempt, "ok")
	a.ctx.Trigger(writeAckMsg{Header: network.Reply(m), OpID: m.OpID, Attempt: m.Attempt, Epoch: a.localEpoch}, a.net)
}
