package abd

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/status"
	"repro/internal/timer"
)

// Client-facing PutGet events (the paper's PutGet port).

// GetRequest asks for the value of a key, linearizably.
type GetRequest struct {
	ReqID uint64
	Key   string
}

// GetResponse answers a GetRequest. Found is false for never-written keys.
// Err is non-empty when the operation failed (timeout after retries).
type GetResponse struct {
	ReqID uint64
	Key   string
	Value []byte
	Found bool
	Err   string
}

// PutRequest writes a value under a key, linearizably.
type PutRequest struct {
	ReqID uint64
	Key   string
	Value []byte
}

// PutResponse answers a PutRequest.
type PutResponse struct {
	ReqID uint64
	Key   string
	Err   string
}

// PutGetPortType is the key-value service abstraction the CATS node
// exposes to clients.
var PutGetPortType = core.NewPortType("PutGet",
	core.Request[GetRequest](),
	core.Request[PutRequest](),
	core.Indication[GetResponse](),
	core.Indication[PutResponse](),
)

// Replica wire messages.

type readMsg struct {
	network.Header
	OpID    uint64
	Attempt int
	Key     string
}

type readAckMsg struct {
	network.Header
	OpID    uint64
	Attempt int
	Version Version
	Value   []byte
	Found   bool
}

type writeMsg struct {
	network.Header
	OpID    uint64
	Attempt int
	Key     string
	Version Version
	Value   []byte
}

type writeAckMsg struct {
	network.Header
	OpID    uint64
	Attempt int
}

func init() {
	network.Register(readMsg{})
	network.Register(readAckMsg{})
	network.Register(writeMsg{})
	network.Register(writeAckMsg{})
}

type opTimeout struct {
	timer.Timeout
	OpID uint64
}

// op phases.
type phase int

const (
	phaseRoute phase = iota + 1
	phaseRead
	phaseWrite
)

type opKind int

const (
	opGet opKind = iota + 1
	opPut
)

// op tracks one in-flight client operation's quorum state machine.
type op struct {
	id    uint64
	kind  opKind
	reqID uint64
	key   string
	value []byte // put payload

	phase     phase
	group     []ident.NodeRef
	quorum    int
	readAcks  int
	writeAcks int
	bestVer   Version
	bestVal   []byte
	bestFound bool
	bestCount int // read acks carrying exactly bestVer
	retries   int
	timerID   timer.ID
}

// Config parameterizes the ABD component.
type Config struct {
	// Self is the local node reference (its key is the writer identity).
	Self ident.NodeRef
	// ReplicationDegree is the target replica group size (default 3).
	ReplicationDegree int
	// OpTimeout is the per-attempt timeout before retrying (default 1s).
	OpTimeout time.Duration
	// MaxRetries bounds attempts before failing the operation (default 5).
	MaxRetries int
}

func (c *Config) applyDefaults() {
	if c.ReplicationDegree <= 0 {
		c.ReplicationDegree = 3
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
}

// ABD is the Consistent ABD component: provides PutGet, requires Router,
// Network, and Timer. It is both coordinator (client side) and replica
// (server side) — every node stores register state for the keys it is
// responsible for.
type ABD struct {
	cfg Config

	ctx  *core.Ctx
	pg   *core.Port
	rout *core.Port
	net  *core.Port
	tmr  *core.Port

	store *Store
	ops   map[uint64]*op
	seq   uint64
	// lamport is the coordinator's write clock: it advances past every
	// version observed in read phases, so two writes coordinated
	// concurrently by this node never reuse a (Seq, Writer) pair — without
	// it, both would base on the same read version and install identical
	// versions for different values, leaving replicas permanently
	// divergent (found by the randomized linearizability tests).
	lamport uint64

	statGets, statPuts, statRetries, statFailures uint64
}

// New creates an ABD component definition.
func New(cfg Config) *ABD {
	cfg.applyDefaults()
	return &ABD{cfg: cfg, store: NewStore(), ops: make(map[uint64]*op)}
}

var _ core.Definition = (*ABD)(nil)

// Setup declares ports and handlers.
func (a *ABD) Setup(ctx *core.Ctx) {
	a.ctx = ctx
	a.pg = ctx.Provides(PutGetPortType)
	a.rout = ctx.Requires(router.PortType)
	a.net = ctx.Requires(network.PortType)
	a.tmr = ctx.Requires(timer.PortType)

	st := ctx.Provides(status.PortType)
	core.Subscribe(ctx, st, func(q status.Request) {
		ctx.Trigger(status.Response{ReqID: q.ReqID, Component: "consistent-abd", Metrics: map[string]int64{
			"keys":      int64(a.store.Len()),
			"gets":      int64(a.statGets),
			"puts":      int64(a.statPuts),
			"retries":   int64(a.statRetries),
			"failures":  int64(a.statFailures),
			"in-flight": int64(len(a.ops)),
		}}, st)
	})

	core.Subscribe(ctx, a.pg, a.handleGet)
	core.Subscribe(ctx, a.pg, a.handlePut)
	core.Subscribe(ctx, a.rout, a.handleFound)
	core.Subscribe(ctx, a.net, a.handleRead)
	core.Subscribe(ctx, a.net, a.handleReadAck)
	core.Subscribe(ctx, a.net, a.handleWrite)
	core.Subscribe(ctx, a.net, a.handleWriteAck)
	core.Subscribe(ctx, a.tmr, a.handleTimeout)
}

// Store exposes the local register store (status, tests).
func (a *ABD) Store() *Store { return a.store }

// Stats returns operation counters: gets and puts completed, retries, and
// failed operations.
func (a *ABD) Stats() (gets, puts, retries, failures uint64) {
	return a.statGets, a.statPuts, a.statRetries, a.statFailures
}

// InFlight returns the number of operations currently executing.
func (a *ABD) InFlight() int { return len(a.ops) }

// --- coordinator: client requests ---------------------------------------------

func (a *ABD) handleGet(g GetRequest) {
	a.startOp(&op{kind: opGet, reqID: g.ReqID, key: g.Key})
}

func (a *ABD) handlePut(p PutRequest) {
	a.startOp(&op{kind: opPut, reqID: p.ReqID, key: p.Key, value: p.Value})
}

func (a *ABD) startOp(o *op) {
	a.seq++
	o.id = a.seq
	a.ops[o.id] = o
	a.beginAttempt(o)
}

// beginAttempt (re)runs an operation attempt from group resolution.
func (a *ABD) beginAttempt(o *op) {
	o.phase = phaseRoute
	o.readAcks, o.writeAcks, o.bestCount = 0, 0, 0
	o.bestVer, o.bestVal, o.bestFound = Version{}, nil, false
	o.timerID = timer.NextID()
	a.ctx.Trigger(timer.ScheduleTimeout{
		Delay:   a.cfg.OpTimeout,
		Timeout: opTimeout{Timeout: timer.Timeout{ID: o.timerID}, OpID: o.id},
	}, a.tmr)
	a.ctx.Trigger(router.FindSuccessor{
		ReqID: o.id,
		Key:   ident.KeyOfString(o.key),
		Count: a.cfg.ReplicationDegree,
	}, a.rout)
}

// handleFound starts phase 1 (read round) once the replica group is known.
func (a *ABD) handleFound(f router.FoundSuccessor) {
	o, ok := a.ops[f.ReqID]
	if !ok || o.phase != phaseRoute {
		return
	}
	if len(f.Group) == 0 {
		return // wait for timeout → retry; membership not converged yet
	}
	o.group = f.Group
	o.quorum = len(f.Group)/2 + 1
	o.phase = phaseRead
	for _, n := range o.group {
		a.ctx.Trigger(readMsg{
			Header:  network.NewHeader(a.cfg.Self.Addr, n.Addr),
			OpID:    o.id,
			Attempt: o.retries,
			Key:     o.key,
		}, a.net)
	}
}

// handleReadAck collects the read quorum, then imposes the chosen
// version+value in phase 2.
func (a *ABD) handleReadAck(m readAckMsg) {
	o, ok := a.ops[m.OpID]
	if !ok || o.phase != phaseRead || m.Attempt != o.retries {
		return // stale ack from a previous attempt: its group may differ
	}
	o.readAcks++
	if o.bestVer.Less(m.Version) {
		o.bestVer, o.bestVal, o.bestFound = m.Version, m.Value, m.Found
		o.bestCount = 1
	} else if m.Version == o.bestVer {
		o.bestCount++
	}
	if o.readAcks < o.quorum {
		return
	}
	// A read that found no written value anywhere in the quorum completes
	// without an impose round: there is nothing to write back, and
	// returning "not found" linearizes before any still-incomplete write.
	if o.kind == opGet && o.bestVer.IsZero() {
		o.bestFound = false
		a.finish(o, "")
		return
	}
	// Read optimization (one round trip): when the whole read quorum
	// reports the same version, that (version, value) already resides on a
	// quorum — any later read's quorum intersects it — so the impose round
	// is unnecessary.
	if o.kind == opGet && o.bestCount == o.readAcks {
		a.finish(o, "")
		return
	}
	// Phase 2: impose. Reads write back the freshest (version, value);
	// writes install a new version dominating everything seen.
	o.phase = phaseWrite
	ver, val := o.bestVer, o.bestVal
	if o.kind == opPut {
		if o.bestVer.Seq > a.lamport {
			a.lamport = o.bestVer.Seq
		}
		a.lamport++
		ver = Version{Seq: a.lamport, Writer: uint64(a.cfg.Self.Key)}
		val = o.value
	}
	for _, n := range o.group {
		a.ctx.Trigger(writeMsg{
			Header:  network.NewHeader(a.cfg.Self.Addr, n.Addr),
			OpID:    o.id,
			Attempt: o.retries,
			Key:     o.key,
			Version: ver,
			Value:   val,
		}, a.net)
	}
}

// handleWriteAck collects the write quorum and completes the operation.
func (a *ABD) handleWriteAck(m writeAckMsg) {
	o, ok := a.ops[m.OpID]
	if !ok || o.phase != phaseWrite || m.Attempt != o.retries {
		return
	}
	o.writeAcks++
	if o.writeAcks < o.quorum {
		return
	}
	a.finish(o, "")
}

// finish completes an operation, responding to the client.
func (a *ABD) finish(o *op, errMsg string) {
	delete(a.ops, o.id)
	a.ctx.Trigger(timer.CancelTimeout{ID: o.timerID}, a.tmr)
	if errMsg != "" {
		a.statFailures++
	}
	switch o.kind {
	case opGet:
		if errMsg == "" {
			a.statGets++
		}
		a.ctx.Trigger(GetResponse{
			ReqID: o.reqID,
			Key:   o.key,
			Value: o.bestVal,
			Found: o.bestFound,
			Err:   errMsg,
		}, a.pg)
	case opPut:
		if errMsg == "" {
			a.statPuts++
		}
		a.ctx.Trigger(PutResponse{ReqID: o.reqID, Key: o.key, Err: errMsg}, a.pg)
	}
}

// handleTimeout retries the whole attempt (fresh group resolution) or
// fails the operation after MaxRetries.
func (a *ABD) handleTimeout(t opTimeout) {
	o, ok := a.ops[t.OpID]
	if !ok || o.timerID != t.TimeoutID() {
		return
	}
	if o.retries >= a.cfg.MaxRetries {
		a.ctx.Log().Warn("abd: operation failed after retries",
			"op", o.id, "key", o.key, "phase", int(o.phase), "group", fmt.Sprintf("%v", o.group),
			"readAcks", o.readAcks, "writeAcks", o.writeAcks, "quorum", o.quorum)
		a.finish(o, "timeout: no quorum after retries")
		return
	}
	o.retries++
	a.statRetries++
	a.beginAttempt(o)
}

// --- replica: register storage --------------------------------------------------

func (a *ABD) handleRead(m readMsg) {
	ver, val, found := a.store.Read(m.Key)
	a.ctx.Trigger(readAckMsg{
		Header:  network.Reply(m),
		OpID:    m.OpID,
		Attempt: m.Attempt,
		Version: ver,
		Value:   val,
		Found:   found,
	}, a.net)
}

func (a *ABD) handleWrite(m writeMsg) {
	a.store.Apply(m.Key, m.Version, m.Value)
	a.ctx.Trigger(writeAckMsg{Header: network.Reply(m), OpID: m.OpID, Attempt: m.Attempt}, a.net)
}
