package abd

import (
	"strings"
	"testing"
	"time"

	"repro/internal/web"
)

// TestPhaseMetricsExposition is the golden exposition test for the
// tracing-fed metric families: cats_abd_phase_seconds{phase,outcome}
// histograms and the cats_abd_phase_exemplar trace-ID gauges must render
// in valid Prometheus 0.0.4 text form with cumulative buckets. Cells are
// process-global, so the test asserts containment of the lines it feeds,
// not an exact transcript.
func TestPhaseMetricsExposition(t *testing.T) {
	const trace = uint64(0x00000000000ae0ff)
	observePhase(phaseRead, outcomeOK, 3*time.Millisecond, trace)
	observePhase(phaseRead, outcomeOK, 5*time.Millisecond, trace)
	observePhase(phaseWrite, outcomeRestart, 9*time.Millisecond, trace+1)

	var b strings.Builder
	writePhaseMetrics(web.NewMetricsWriter(&b))
	out := b.String()

	for _, want := range []string{
		"# TYPE cats_abd_phase_seconds histogram\n",
		`cats_abd_phase_seconds_bucket{phase="read",outcome="ok",le="+Inf"}`,
		`cats_abd_phase_seconds_count{phase="read",outcome="ok"}`,
		`cats_abd_phase_seconds_sum{phase="read",outcome="ok"}`,
		`cats_abd_phase_seconds_count{phase="write",outcome="restart"}`,
		"# TYPE cats_abd_phase_exemplar gauge\n",
		`cats_abd_phase_exemplar{phase="read",outcome="ok",trace_id="00000000000ae0ff"} 1`,
		`cats_abd_phase_exemplar{phase="write",outcome="restart",trace_id="00000000000ae100"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Buckets must be cumulative: the +Inf bucket equals _count.
	if !bucketMatchesCount(out, `phase="read",outcome="ok"`) {
		t.Fatalf("+Inf bucket != count for read/ok:\n%s", out)
	}

	// The full registered exposition (what /metrics serves) carries the
	// same families through the "abd" source.
	var full strings.Builder
	if err := web.WriteRegisteredMetrics(&full); err != nil {
		t.Fatalf("WriteRegisteredMetrics: %v", err)
	}
	for _, want := range []string{"cats_abd_phase_seconds_bucket", "cats_abd_phase_exemplar"} {
		if !strings.Contains(full.String(), want) {
			t.Fatalf("/metrics exposition missing %s", want)
		}
	}
}

// bucketMatchesCount extracts the +Inf bucket and _count lines for the
// given label set and reports whether they agree.
func bucketMatchesCount(out, labels string) bool {
	var inf, count string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "cats_abd_phase_seconds_bucket{"+labels+`,le="+Inf"}`) {
			inf = line[strings.LastIndex(line, " ")+1:]
		}
		if strings.HasPrefix(line, "cats_abd_phase_seconds_count{"+labels+"}") {
			count = line[strings.LastIndex(line, " ")+1:]
		}
	}
	return inf != "" && inf == count
}
