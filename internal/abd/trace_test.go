package abd

import (
	"testing"
	"time"

	"repro/internal/tracing"
)

// withTracing swaps in always-on (or custom) sampling and a fresh private
// span ring for the duration of a test, restoring both afterwards.
func withTracing(t *testing.T, every, ringSize int) *tracing.Ring {
	t.Helper()
	prev := tracing.SetSampleEvery(every)
	ring := tracing.NewRing(ringSize)
	old := tracing.SwapDefault(ring)
	t.Cleanup(func() {
		tracing.SetSampleEvery(prev)
		tracing.SwapDefault(old)
	})
	return ring
}

// TestStaleNackRestartSpans is the event-stream assertion on the trace
// layer: a stale-epoch nack → restart must produce exactly one
// restart-linked child span per epoch restart (the new attempt linking
// back to the superseded one), and each replica's serve spans must honor
// monotone phase ordering — attempts never regress, and within an attempt
// no read phase is served after a write phase.
func TestStaleNackRestartSpans(t *testing.T) {
	ring := withTracing(t, 1, 1<<12)
	sim, _, nodes, _ := newEpochWorld(t, 3, 34)

	// Replicas 2 and 3 at epoch 4; coordinator 1 still at 0 → its first
	// attempt is stale-nacked and restarted against the hinted epoch.
	nodes[1].syncWindow(4, 1, true)
	nodes[2].syncWindow(4, 1, true)
	sim.Settle()
	nodes[0].put(1, "k", "v1")
	sim.Run(2 * time.Second)

	if len(nodes[0].puts) != 1 || nodes[0].puts[0].Err != "" {
		t.Fatalf("put through stale view: %+v", nodes[0].puts)
	}
	_, _, restarts := nodes[0].ABD.EpochStats()
	if restarts == 0 {
		t.Fatal("scenario produced no epoch restart")
	}

	tls := tracing.Assemble(ring.Snapshot())
	var put *tracing.Timeline
	for i := range tls {
		if tls[i].Name == "put" && tls[i].Key == "k" {
			put = &tls[i]
			break
		}
	}
	if put == nil {
		t.Fatalf("no assembled put timeline among %d timelines", len(tls))
	}

	// The restarted op keeps one trace: every span shares its ID, and the
	// timeline covers the coordinator plus at least one remote replica.
	if len(put.Nodes) < 2 {
		t.Fatalf("timeline nodes = %v, want spans from >=2 nodes", put.Nodes)
	}

	// Exactly one linked child span per epoch restart, each link resolving
	// to the superseded attempt span (outcome "restart").
	byID := map[uint64]tracing.Span{}
	for _, s := range put.Spans {
		byID[s.ID] = s
	}
	var linked []tracing.Span
	for _, s := range put.Spans {
		if s.Link != 0 {
			linked = append(linked, s)
		}
	}
	if len(linked) != int(restarts) {
		t.Fatalf("%d restart-linked spans for %d epoch restarts: %+v", len(linked), restarts, linked)
	}
	if put.Restarts != int(restarts) {
		t.Fatalf("timeline Restarts = %d, want %d", put.Restarts, restarts)
	}
	for _, s := range linked {
		if s.Name != "attempt" {
			t.Fatalf("restart link on non-attempt span %+v", s)
		}
		prev, ok := byID[s.Link]
		if !ok {
			t.Fatalf("restart link %x resolves to no span in the trace", s.Link)
		}
		if prev.Name != "attempt" || prev.Outcome != "restart" {
			t.Fatalf("restart link points at %+v, want superseded attempt with outcome restart", prev)
		}
		if s.Attempt != prev.Attempt+1 {
			t.Fatalf("linked attempt %d does not follow superseded attempt %d", s.Attempt, prev.Attempt)
		}
	}

	// Every non-root span's parent must exist inside the trace.
	for _, s := range put.Spans {
		if s.Parent == 0 {
			continue
		}
		if _, ok := byID[s.Parent]; !ok {
			t.Fatalf("span %+v has dangling parent %x", s, s.Parent)
		}
	}

	// Monotone phase ordering per replica: serve spans in record order
	// never regress in attempt, and within one attempt a read is never
	// served after a write.
	type replicaState struct {
		attempt  int
		wroteYet bool
	}
	perNode := map[string]*replicaState{}
	for _, s := range put.Spans { // Spans sorted by (Start, Seq)
		if s.Name != "serve.read" && s.Name != "serve.write" {
			continue
		}
		st := perNode[s.Node]
		if st == nil {
			st = &replicaState{}
			perNode[s.Node] = st
		}
		if s.Attempt < st.attempt {
			t.Fatalf("replica %s served attempt %d after attempt %d", s.Node, s.Attempt, st.attempt)
		}
		if s.Attempt > st.attempt {
			st.attempt, st.wroteYet = s.Attempt, false
		}
		if s.Name == "serve.write" && s.Outcome == "ok" {
			st.wroteYet = true
		}
		if s.Name == "serve.read" && st.wroteYet {
			t.Fatalf("replica %s served a read after a write within attempt %d", s.Node, s.Attempt)
		}
	}
	if len(perNode) == 0 {
		t.Fatal("no replica serve spans recorded")
	}

	// Coordinator phase spans inside one attempt appear in protocol order.
	order := map[string]int{"route": 1, "read": 2, "write": 3}
	lastPhase := map[int]int{}
	for _, s := range put.Spans {
		p, isPhase := order[s.Name]
		if !isPhase {
			continue
		}
		if prev := lastPhase[s.Attempt]; p < prev {
			t.Fatalf("attempt %d phase %q recorded after a later phase", s.Attempt, s.Name)
		} else if p > prev {
			lastPhase[s.Attempt] = p
		}
	}
}

// TestDisabledTracingRecordsNothing: with sampling off, a full op leaves
// the span ring untouched.
func TestDisabledTracingRecordsNothing(t *testing.T) {
	ring := withTracing(t, 0, 64)
	sim, _, nodes, _ := newEpochWorld(t, 3, 37)
	nodes[0].put(1, "k", "v")
	sim.Run(time.Second)
	if len(nodes[0].puts) != 1 || nodes[0].puts[0].Err != "" {
		t.Fatalf("put failed: %+v", nodes[0].puts)
	}
	if ring.Recorded() != 0 {
		t.Fatalf("disabled tracing recorded %d spans", ring.Recorded())
	}
}

// TestEpochChurnStressTraced re-runs the full epoch churn stress with
// always-on tracing: the span layer must not disturb op resolution, and
// (under -race) recording from the protocol path must be race-free.
func TestEpochChurnStressTraced(t *testing.T) {
	ring := withTracing(t, 1, 1<<14)
	epochChurnStress(t)
	if ring.Recorded() == 0 {
		t.Fatal("traced churn stress recorded no spans")
	}
	// Parent links must resolve within every assembled timeline (the ring
	// is sized to hold the whole run, so nothing was evicted).
	for _, tl := range tracing.Assemble(ring.Snapshot()) {
		byID := map[uint64]bool{}
		for _, s := range tl.Spans {
			byID[s.ID] = true
		}
		for _, s := range tl.Spans {
			if s.Parent != 0 && !byID[s.Parent] {
				t.Fatalf("trace %s: span %s/%s has dangling parent", tl.TraceHex, s.Node, s.Name)
			}
		}
	}
}
