// Process-wide quorum-coalescing counters, following the internal/handoff
// pattern: plain atomics aggregated across every ABD component in the
// process, exposed through the web metrics-source registry and the
// monitor's runtime rollups. The batch-size distribution is a hand-rolled
// power-of-two histogram (sizes, not latencies, so core.LatencyStats does
// not fit).
package abd

import (
	"strconv"
	"sync/atomic"

	"repro/internal/web"
)

// batchSizeBuckets are the histogram upper bounds: batches of size
// ≤2, ≤4, … ≤64, +Inf. Size-1 batches never exist — they downgrade to
// legacy single-op messages before sending.
var batchSizeBuckets = [...]uint64{2, 4, 8, 16, 32, 64}

var (
	batchesTotal    atomic.Uint64
	batchedOpsTotal atomic.Uint64
	batchBuckets    [len(batchSizeBuckets) + 1]atomic.Uint64
)

// observeBatch records one flushed multi-op frame of n ops.
func observeBatch(n int) {
	batchesTotal.Add(1)
	batchedOpsTotal.Add(uint64(n))
	i := 0
	for i < len(batchSizeBuckets) && uint64(n) > batchSizeBuckets[i] {
		i++
	}
	batchBuckets[i].Add(1)
}

// BatchMetrics is a snapshot of the process-wide coalescing counters.
type BatchMetrics struct {
	// Batches is the number of multi-op frames flushed.
	Batches uint64
	// BatchedOps is the number of quorum phases carried in those frames.
	BatchedOps uint64
}

// GlobalBatchMetrics snapshots the process-wide coalescing counters.
func GlobalBatchMetrics() BatchMetrics {
	return BatchMetrics{
		Batches:    batchesTotal.Load(),
		BatchedOps: batchedOpsTotal.Load(),
	}
}

func init() {
	web.RegisterMetricsSource("abd", func(m *web.MetricsWriter) {
		s := GlobalBatchMetrics()
		m.Header("cats_abd_batches_total", "counter", "Coalesced multi-op quorum frames flushed.")
		m.Counter("cats_abd_batches_total", s.Batches)
		m.Header("cats_abd_batched_ops_total", "counter", "Quorum phases carried in coalesced frames.")
		m.Counter("cats_abd_batched_ops_total", s.BatchedOps)
		m.Header("cats_abd_batch_size", "histogram", "Ops per coalesced quorum frame.")
		var cum uint64
		for i, le := range batchSizeBuckets {
			cum += batchBuckets[i].Load()
			m.Counter("cats_abd_batch_size_bucket", cum, "le", strconv.FormatUint(le, 10))
		}
		cum += batchBuckets[len(batchSizeBuckets)].Load()
		m.Counter("cats_abd_batch_size_bucket", cum, "le", "+Inf")
		m.Counter("cats_abd_batch_size_sum", s.BatchedOps)
		m.Counter("cats_abd_batch_size_count", s.Batches)
	})
}
