// Process-wide quorum-coalescing counters, following the internal/handoff
// pattern: plain atomics aggregated across every ABD component in the
// process, exposed through the web metrics-source registry and the
// monitor's runtime rollups. The batch-size distribution is a hand-rolled
// power-of-two histogram (sizes, not latencies, so core.LatencyStats does
// not fit).
package abd

import (
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/tracing"
	"repro/internal/web"
)

// batchSizeBuckets are the histogram upper bounds: batches of size
// ≤2, ≤4, … ≤64, +Inf. Size-1 batches never exist — they downgrade to
// legacy single-op messages before sending.
var batchSizeBuckets = [...]uint64{2, 4, 8, 16, 32, 64}

var (
	batchesTotal    atomic.Uint64
	batchedOpsTotal atomic.Uint64
	batchBuckets    [len(batchSizeBuckets) + 1]atomic.Uint64
)

// Gray-failure resilience counters (see adaptive.go): attempt retries,
// hedged phase resends and the hedges whose duplicate ack arrived first,
// replica-side load sheds, and shed-triggered phase redeliveries.
// deadlineGauge holds the most recently computed adaptive attempt budget
// in nanoseconds — a coarse, last-writer-wins view of what the estimators
// currently produce.
var (
	retriesTotal      atomic.Uint64
	hedgesTotal       atomic.Uint64
	hedgeWinsTotal    atomic.Uint64
	shedsTotal        atomic.Uint64
	redeliveriesTotal atomic.Uint64
	deadlineGauge     atomic.Uint64
)

// ResilienceMetrics is a snapshot of the process-wide gray-failure
// resilience counters.
type ResilienceMetrics struct {
	// Retries counts attempt timeouts that led to a retry.
	Retries uint64
	// Hedges counts hedged phase resends; HedgeWins the subset where the
	// hedge target's ack was the first counted from that replica slot.
	Hedges    uint64
	HedgeWins uint64
	// Sheds counts quorum phases refused by replica admission control;
	// Redeliveries the coordinator-side re-offers they triggered.
	Sheds        uint64
	Redeliveries uint64
}

// GlobalResilienceMetrics snapshots the process-wide resilience counters.
func GlobalResilienceMetrics() ResilienceMetrics {
	return ResilienceMetrics{
		Retries:      retriesTotal.Load(),
		Hedges:       hedgesTotal.Load(),
		HedgeWins:    hedgeWinsTotal.Load(),
		Sheds:        shedsTotal.Load(),
		Redeliveries: redeliveriesTotal.Load(),
	}
}

// observeBatch records one flushed multi-op frame of n ops.
func observeBatch(n int) {
	batchesTotal.Add(1)
	batchedOpsTotal.Add(uint64(n))
	i := 0
	for i < len(batchSizeBuckets) && uint64(n) > batchSizeBuckets[i] {
		i++
	}
	batchBuckets[i].Add(1)
}

// BatchMetrics is a snapshot of the process-wide coalescing counters.
type BatchMetrics struct {
	// Batches is the number of multi-op frames flushed.
	Batches uint64
	// BatchedOps is the number of quorum phases carried in those frames.
	BatchedOps uint64
}

// GlobalBatchMetrics snapshots the process-wide coalescing counters.
func GlobalBatchMetrics() BatchMetrics {
	return BatchMetrics{
		Batches:    batchesTotal.Load(),
		BatchedOps: batchedOpsTotal.Load(),
	}
}

// --- phase-latency histograms with trace exemplars -------------------------------

// phaseCell is one (phase, outcome) latency histogram: the core
// power-of-two bucket layout (so web.MetricsWriter.Histogram renders it),
// plus the most recent sampled trace ID as the exemplar. Fed only by
// sampled (traced) operations, mirroring the handler-latency sampling
// discipline — the unsampled hot path never touches these.
type phaseCell struct {
	counts   [core.LatencyBuckets]atomic.Uint64
	sum      atomic.Uint64
	n        atomic.Uint64
	exemplar atomic.Uint64 // latest trace ID observed into this cell
}

func (c *phaseCell) snapshot() core.LatencyStats {
	var s core.LatencyStats
	for i := range c.counts {
		s.Buckets[i] = c.counts[i].Load()
	}
	s.SumNanos = c.sum.Load()
	s.Samples = c.n.Load()
	return s
}

// phaseCells is indexed [phase-1][outcome] over the phaseLabelNames ×
// phaseOutcomeNames matrix (see trace.go).
var phaseCells [len(phaseLabelNames)][outcomeCount]phaseCell

// observePhase records one sampled phase completion.
func observePhase(p phase, outcome int, d time.Duration, trace uint64) {
	if d < 0 {
		d = 0
	}
	c := &phaseCells[int(p)-1][outcome]
	idx := bits.Len64(uint64(d))
	if idx >= core.LatencyBuckets {
		idx = core.LatencyBuckets - 1
	}
	c.counts[idx].Add(1)
	c.sum.Add(uint64(d))
	c.n.Add(1)
	c.exemplar.Store(trace)
}

// writePhaseMetrics renders cats_abd_phase_seconds{phase,outcome}
// histograms plus cats_abd_phase_exemplar{phase,outcome,trace_id} gauges
// carrying each cell's latest sampled trace ID. Cells that never observed
// a sample are omitted.
func writePhaseMetrics(m *web.MetricsWriter) {
	wroteHeader := false
	for pi := range phaseCells {
		for oi := range phaseCells[pi] {
			c := &phaseCells[pi][oi]
			if c.n.Load() == 0 {
				continue
			}
			if !wroteHeader {
				m.Header("cats_abd_phase_seconds", "histogram", "Sampled ABD quorum-phase latency by phase and outcome.")
				wroteHeader = true
			}
			m.Histogram("cats_abd_phase_seconds", c.snapshot(),
				"phase", phaseLabelNames[pi], "outcome", phaseOutcomeNames[oi])
		}
	}
	wroteHeader = false
	for pi := range phaseCells {
		for oi := range phaseCells[pi] {
			c := &phaseCells[pi][oi]
			ex := c.exemplar.Load()
			if ex == 0 {
				continue
			}
			if !wroteHeader {
				m.Header("cats_abd_phase_exemplar", "gauge", "Latest sampled trace ID per phase/outcome (exemplar; value is always 1).")
				wroteHeader = true
			}
			m.Gauge("cats_abd_phase_exemplar", 1,
				"phase", phaseLabelNames[pi], "outcome", phaseOutcomeNames[oi],
				"trace_id", tracing.FormatID(ex))
		}
	}
}

func init() {
	web.RegisterMetricsSource("abd", func(m *web.MetricsWriter) {
		s := GlobalBatchMetrics()
		m.Header("cats_abd_batches_total", "counter", "Coalesced multi-op quorum frames flushed.")
		m.Counter("cats_abd_batches_total", s.Batches)
		m.Header("cats_abd_batched_ops_total", "counter", "Quorum phases carried in coalesced frames.")
		m.Counter("cats_abd_batched_ops_total", s.BatchedOps)
		m.Header("cats_abd_batch_size", "histogram", "Ops per coalesced quorum frame.")
		var cum uint64
		for i, le := range batchSizeBuckets {
			cum += batchBuckets[i].Load()
			m.Counter("cats_abd_batch_size_bucket", cum, "le", strconv.FormatUint(le, 10))
		}
		cum += batchBuckets[len(batchSizeBuckets)].Load()
		m.Counter("cats_abd_batch_size_bucket", cum, "le", "+Inf")
		m.Counter("cats_abd_batch_size_sum", s.BatchedOps)
		m.Counter("cats_abd_batch_size_count", s.Batches)
		r := GlobalResilienceMetrics()
		m.Header("cats_abd_retries_total", "counter", "ABD attempt timeouts that led to a retry.")
		m.Counter("cats_abd_retries_total", r.Retries)
		m.Header("cats_abd_hedges_total", "counter", "Hedged quorum-phase resends to a spare group member.")
		m.Counter("cats_abd_hedges_total", r.Hedges)
		m.Header("cats_abd_hedge_wins_total", "counter", "Hedged resends whose ack arrived before the straggler's.")
		m.Counter("cats_abd_hedge_wins_total", r.HedgeWins)
		m.Header("cats_abd_sheds_total", "counter", "Quorum phases shed by replica admission control.")
		m.Counter("cats_abd_sheds_total", r.Sheds)
		m.Header("cats_abd_redeliveries_total", "counter", "Shed quorum phases re-offered after the retry-after hint.")
		m.Counter("cats_abd_redeliveries_total", r.Redeliveries)
		m.Header("cats_abd_adaptive_deadline_seconds", "gauge", "Most recently computed adaptive attempt budget.")
		m.Gauge("cats_abd_adaptive_deadline_seconds", float64(deadlineGauge.Load())/1e9)
		writePhaseMetrics(m)
	})
}
