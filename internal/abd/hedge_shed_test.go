package abd

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simulation"
)

// warmEstimators runs count paced ops on key from node so the
// coordinator's per-peer latency estimators converge well below the
// deadline ceiling — the precondition for adaptive budgets and hedging.
func warmEstimators(sim *simulation.Simulation, node *abdNode, key string, count int) {
	node.put(9000, key, "warm-seed")
	sim.Run(150 * time.Millisecond)
	for i := 1; i < count; i++ {
		node.get(uint64(9000+i), key)
		sim.Run(150 * time.Millisecond)
	}
}

// TestHedgeFiresOnStalledQuorumPhase is the hedge event-stream pin: a read
// phase stalled exactly one ack short of quorum, with the straggler past
// its adaptive deadline, hedges once, the duplicate wins, and the loser's
// late ack is discarded — exactly one response reaches the client and no
// op state leaks.
func TestHedgeFiresOnStalledQuorumPhase(t *testing.T) {
	sim, emu, nodes := newABDWorld(t, 3, 41)
	coord := nodes[0]
	warmEstimators(sim, coord, "k", 10)
	preGets := len(coord.gets)

	// Pulse: both remote replicas turn gray — 200ms extra latency for a
	// 5ms window. The coordinator's self ack holds the read phase at
	// quorum-minus-one; the adaptive hedge checkpoint lands after the
	// window expired, so the duplicate travels fast and wins.
	emu.SlowNode(nodes[1].self.Addr, 200*time.Millisecond, 5*time.Millisecond)
	emu.SlowNode(nodes[2].self.Addr, 200*time.Millisecond, 5*time.Millisecond)
	coord.get(1, "k")
	sim.Run(100 * time.Millisecond)

	if coord.ABD.statHedges != 1 {
		t.Fatalf("hedges=%d, want exactly 1", coord.ABD.statHedges)
	}
	if coord.ABD.statHedgeWins != 1 {
		t.Fatalf("hedge_wins=%d, want 1 (duplicate must beat the 200ms original)", coord.ABD.statHedgeWins)
	}
	if len(coord.gets) != preGets+1 {
		t.Fatalf("gets=%d, want %d", len(coord.gets), preGets+1)
	}
	if g := coord.gets[len(coord.gets)-1]; g.Err != "" || string(g.Value) != "warm-seed" {
		t.Fatalf("hedged get: %+v", g)
	}
	// The losing original acks arrive ~200ms later for a completed op.
	// They must be dropped without a second response or any state change.
	sim.Run(time.Second)
	if len(coord.gets) != preGets+1 {
		t.Fatalf("late loser ack produced a duplicate response: gets=%d", len(coord.gets))
	}
	if coord.ABD.InFlight() != 0 {
		t.Fatal("leaked in-flight op after hedged completion")
	}
	_, _, retries, failures := coord.ABD.Stats()
	if retries != 0 || failures != 0 {
		t.Fatalf("hedged op degraded into retry/failure: retries=%d failures=%d", retries, failures)
	}
}

// TestNoHedgeBelowQuorumMinusOne pins the quorum-minus-one gate: with TWO
// acks missing (5 replicas, quorum 3, only the self ack in), the
// checkpoint must NOT hedge — a hedge fills a single straggler's hole, it
// is not a retry mechanism for a missing quorum.
func TestNoHedgeBelowQuorumMinusOne(t *testing.T) {
	sim, emu, nodes := newABDWorld(t, 5, 42)
	coord := nodes[0]
	warmEstimators(sim, coord, "k", 10)

	for _, n := range nodes[1:] {
		emu.SlowNode(n.self.Addr, 100*time.Millisecond, 5*time.Millisecond)
	}
	coord.get(1, "k")
	sim.Run(2 * time.Second)

	if coord.ABD.statHedges != 0 {
		t.Fatalf("hedges=%d with 4 stragglers (acks < quorum-1), want 0", coord.ABD.statHedges)
	}
	g := coord.gets[len(coord.gets)-1]
	if g.Err != "" || string(g.Value) != "warm-seed" {
		t.Fatalf("get through full-group pulse: %+v", g)
	}
	if coord.ABD.InFlight() != 0 {
		t.Fatal("leaked in-flight op")
	}
}

// TestNoHedgeBeforeAdaptiveDeadline pins the p99-overrun gate: a cold
// coordinator (no latency history) keeps the ceiling deadline, so a
// straggler that would trigger a warmed coordinator's hedge is simply
// waited out — hedging needs evidence, not just a stall.
func TestNoHedgeBeforeAdaptiveDeadline(t *testing.T) {
	sim, emu, nodes := newABDWorld(t, 3, 43)
	coord := nodes[0]
	// No warm-up: estimators empty, per-peer deadline = ceiling (300ms).
	emu.SlowNode(nodes[1].self.Addr, 150*time.Millisecond, 5*time.Millisecond)
	emu.SlowNode(nodes[2].self.Addr, 150*time.Millisecond, 5*time.Millisecond)
	coord.put(1, "k", "v")
	sim.Run(2 * time.Second)

	if coord.ABD.statHedges != 0 {
		t.Fatalf("cold coordinator hedged %d times, want 0 (no deadline evidence)", coord.ABD.statHedges)
	}
	if len(coord.puts) != 1 || coord.puts[0].Err != "" {
		t.Fatalf("put: %+v", coord.puts)
	}
}

// TestShedBusyRedeliveryConverges is the shed event-stream pin, end to
// end: a burst at one virtual instant overruns the replicas' serve-rate
// cap, the excess is shed with Busy{RetryAfter} nacks, the coordinator's
// jittered redeliveries re-offer the phases, and every op completes.
func TestShedBusyRedeliveryConverges(t *testing.T) {
	sim, _, nodes := newABDWorldCfg(t, 3, 44, func(c *Config) {
		c.ShedServeRate = 2 // at most 2 quorum phases per replica per 10ms
	})
	coord := nodes[0]
	const ops = 10
	for i := 0; i < ops; i++ {
		coord.put(uint64(i+1), fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	sim.Run(5 * time.Second)

	if len(coord.puts) != ops {
		t.Fatalf("resolved %d of %d puts", len(coord.puts), ops)
	}
	for _, p := range coord.puts {
		if p.Err != "" {
			t.Fatalf("shed burst lost a put: %+v", p)
		}
	}
	var sheds uint64
	for _, n := range nodes {
		sheds += n.ABD.statSheds
	}
	if sheds == 0 {
		t.Fatal("burst tripped no admission control")
	}
	if coord.ABD.statRedeliveries == 0 {
		t.Fatal("sheds happened but the coordinator never redelivered")
	}
	if coord.ABD.statNacksBusy == 0 {
		t.Fatal("no busy nacks observed by the coordinator")
	}
	if coord.ABD.InFlight() != 0 {
		t.Fatal("leaked in-flight ops after the burst")
	}
	// Every write must actually be readable afterwards.
	for i := 0; i < ops; i++ {
		coord.get(uint64(100+i), fmt.Sprintf("k%d", i))
	}
	sim.Run(5 * time.Second)
	for _, g := range coord.gets {
		if g.Err != "" || !g.Found {
			t.Fatalf("post-burst read: %+v", g)
		}
	}
}

// TestShedNackCarriesRetryAfterAndEpochsStayMonotone drives a replica at
// the wire level: the shed answer must be a Busy nack carrying a positive
// RetryAfter hint, a re-offer after the hint must succeed, and the
// replica's ack stream stays epoch-monotone across shed/redeliver cycles
// and an interleaved view change.
func TestShedNackCarriesRetryAfterAndEpochsStayMonotone(t *testing.T) {
	sim, _, nodes, probe := newEpochWorldCfg(t, 3, 45, func(c *Config) {
		c.ShedServeRate = 1
		c.ShedRetryAfter = 20 * time.Millisecond
	})
	replica := nodes[0].self.Addr

	// Two writes in the same 10ms serve window: the first is served, the
	// second shed.
	probe.write(replica, 1, 0, "k", "v1")
	probe.write(replica, 2, 0, "k", "v2")
	sim.Run(50 * time.Millisecond)
	if len(probe.acks) != 2 {
		t.Fatalf("answer stream has %d records, want 2: %+v", len(probe.acks), probe.acks)
	}
	if probe.acks[0].kind != "writeAck" {
		t.Fatalf("first phase in window: %+v, want writeAck", probe.acks[0])
	}
	shed := probe.acks[1]
	if shed.kind != "nack" || !shed.busy {
		t.Fatalf("over-rate phase: %+v, want busy nack", shed)
	}
	if shed.retryAfter != 20*time.Millisecond {
		t.Fatalf("shed RetryAfter=%v, want the configured 20ms", shed.retryAfter)
	}

	// The replica moves to a new view, then the shed write is re-offered
	// (the coordinator's redelivery) in the new epoch: it must be served.
	nodes[0].syncWindow(4, 1, true)
	sim.Settle()
	sim.ScheduleAt(30*time.Millisecond, "test:redeliver", func() {
		probe.write(replica, 2, 4, "k", "v2")
	})
	sim.Run(time.Second)

	last := probe.acks[len(probe.acks)-1]
	if last.kind != "writeAck" || last.opID != 2 || last.epoch != 4 {
		t.Fatalf("redelivered phase: %+v, want writeAck op 2 @ epoch 4", last)
	}
	// Monotone per-replica ack epochs: acked (non-nack) epochs never
	// decrease across the shed/redeliver/view-change sequence.
	hi := uint64(0)
	for i, a := range probe.acks {
		if a.kind == "nack" {
			continue
		}
		if a.epoch < hi {
			t.Fatalf("answer %d acked epoch %d after epoch %d: %+v", i, a.epoch, hi, probe.acks)
		}
		hi = a.epoch
	}
	if nodes[0].ABD.statSheds == 0 {
		t.Fatal("replica recorded no sheds")
	}
}
