package abd

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/simulation"
)

// batchRecord is one replica answer to a coalesced frame, in arrival order
// — the event-stream view of the batched wire protocol.
type batchRecord struct {
	kind    string // "batchAck" | "nack"
	epoch   uint64
	opID    uint64 // nacks only
	busy    bool
	readIDs []uint64 // batchAck: acked read ops in batch order
	writIDs []uint64 // batchAck: acked write ops in batch order
}

// batchProbe speaks the batched replica protocol directly and records the
// full answer stream — the ordering oracle for per-op epoch gating inside
// coalesced frames.
type batchProbe struct {
	self network.Address
	emu  *simulation.NetworkEmulator

	ctx  *core.Ctx
	net  *core.Port
	recs []batchRecord
}

func (p *batchProbe) Setup(ctx *core.Ctx) {
	p.ctx = ctx
	p.net = ctx.Requires(network.PortType)
	core.Subscribe(ctx, p.net, func(m opBatchAckMsg) {
		r := batchRecord{kind: "batchAck", epoch: m.Epoch}
		for _, a := range m.ReadAcks {
			r.readIDs = append(r.readIDs, a.OpID)
		}
		for _, a := range m.WriteAcks {
			r.writIDs = append(r.writIDs, a.OpID)
		}
		p.recs = append(p.recs, r)
	})
	core.Subscribe(ctx, p.net, func(m nackMsg) {
		p.recs = append(p.recs, batchRecord{kind: "nack", epoch: m.Epoch, opID: m.OpID, busy: m.Busy})
	})
}

func (p *batchProbe) send(to network.Address, m opBatchMsg) {
	m.Header = network.NewHeader(p.self, to)
	p.ctx.Trigger(m, p.net)
}

// newBatchWorld builds n replicas (epochNodes, so tests drive their sync
// windows) plus a batch probe.
func newBatchWorld(t *testing.T, n int, seed int64) (*simulation.Simulation, *simulation.NetworkEmulator, []*epochNode, *batchProbe) {
	t.Helper()
	sim := simulation.New(seed)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.ConstantLatency(2*time.Millisecond)))
	group := make([]ident.NodeRef, n)
	for i := range group {
		group[i] = nodeRef(i + 1)
	}
	nodes := make([]*epochNode, n)
	for i := range nodes {
		nodes[i] = &epochNode{self: group[i], group: group, sim: sim, emu: emu}
	}
	probe := &batchProbe{self: network.Address{Host: "bprobe", Port: 1}, emu: emu}
	sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		for i, nd := range nodes {
			ctx.Create(fmt.Sprintf("n%d", i+1), nd)
		}
		trC := ctx.Create("probe-net", emu.Transport(probe.self))
		probeC := ctx.Create("probe", probe)
		ctx.Connect(probeC.Required(network.PortType), trC.Provided(network.PortType))
	}))
	sim.Settle()
	return sim, emu, nodes, probe
}

// TestBatchStaleOpNacksAloneRestAcks is the coalescing event-stream
// oracle: a mixed-epoch batch is served per op — the stale ops are refused
// individually through nackMsg with the replica's epoch as hint, while
// every current-epoch op in the same frame is served and acknowledged
// together in exactly one opBatchAckMsg.
func TestBatchStaleOpNacksAloneRestAcks(t *testing.T) {
	sim, _, nodes, probe := newBatchWorld(t, 3, 41)
	r := nodes[0]
	r.syncWindow(3, 1, true) // replica now at epoch 3
	sim.Settle()

	probe.send(r.self.Addr, opBatchMsg{
		Reads: []readPhase{
			{OpID: 1, Attempt: 1, Epoch: 3, Key: "a"},
			{OpID: 2, Attempt: 1, Epoch: 1, Key: "b"}, // stale
		},
		Writes: []writePhase{
			{OpID: 3, Attempt: 1, Epoch: 3, Key: "c", Version: Version{Seq: 1, Writer: 9}, Value: []byte("v3")},
			{OpID: 4, Attempt: 1, Epoch: 2, Key: "d", Version: Version{Seq: 1, Writer: 9}, Value: []byte("v4")}, // stale
		},
	})
	sim.Run(50 * time.Millisecond)

	var nacks []batchRecord
	var acks []batchRecord
	for _, rec := range probe.recs {
		switch rec.kind {
		case "nack":
			nacks = append(nacks, rec)
		case "batchAck":
			acks = append(acks, rec)
		}
	}
	if len(nacks) != 2 {
		t.Fatalf("stale ops produced %d nacks, want 2: %+v", len(nacks), probe.recs)
	}
	for _, n := range nacks {
		if n.busy || n.epoch != 3 {
			t.Fatalf("stale nack %+v, want non-busy with hint epoch 3", n)
		}
		if n.opID != 2 && n.opID != 4 {
			t.Fatalf("nack for op %d, want the stale ops 2/4", n.opID)
		}
	}
	if len(acks) != 1 {
		t.Fatalf("served ops produced %d batch acks, want exactly 1: %+v", len(acks), probe.recs)
	}
	a := acks[0]
	if a.epoch != 3 || len(a.readIDs) != 1 || a.readIDs[0] != 1 || len(a.writIDs) != 1 || a.writIDs[0] != 3 {
		t.Fatalf("batch ack %+v, want epoch 3 with read op 1 and write op 3", a)
	}
	// The served write landed; the stale one did not.
	if _, val, ok := r.ABD.Store().Read("c"); !ok || string(val) != "v3" {
		t.Fatalf("served batch write missing: %q ok=%v", val, ok)
	}
	if _, _, ok := r.ABD.Store().Read("d"); ok {
		t.Fatal("stale-epoch write inside a batch mutated the store")
	}
}

// TestBatchAllStaleNoAck: when every op of a frame is refused there is no
// empty batch ack — only the individual nacks.
func TestBatchAllStaleNoAck(t *testing.T) {
	sim, _, nodes, probe := newBatchWorld(t, 3, 42)
	r := nodes[0]
	r.syncWindow(5, 1, true)
	sim.Settle()

	probe.send(r.self.Addr, opBatchMsg{
		Reads: []readPhase{
			{OpID: 1, Attempt: 1, Epoch: 2, Key: "a"},
			{OpID: 2, Attempt: 1, Epoch: 3, Key: "b"},
		},
	})
	sim.Run(50 * time.Millisecond)

	if len(probe.recs) != 2 {
		t.Fatalf("answer stream %+v, want exactly 2 nacks", probe.recs)
	}
	for _, rec := range probe.recs {
		if rec.kind != "nack" || rec.busy || rec.epoch != 5 {
			t.Fatalf("answer %+v, want stale nack hinting epoch 5", rec)
		}
	}
}

// TestBatchBusyMidSyncNacksIndividually: a frame arriving inside a sync
// window is refused Busy per op — the coordinator learns about each op
// separately, exactly as with single-op messages.
func TestBatchBusyMidSyncNacksIndividually(t *testing.T) {
	sim, _, nodes, probe := newBatchWorld(t, 3, 43)
	r := nodes[0]
	r.syncWindow(4, 1, false) // window stays open
	sim.Settle()

	probe.send(r.self.Addr, opBatchMsg{
		Reads:  []readPhase{{OpID: 1, Attempt: 1, Epoch: 4, Key: "a"}},
		Writes: []writePhase{{OpID: 2, Attempt: 1, Epoch: 4, Key: "b", Version: Version{Seq: 1, Writer: 9}, Value: []byte("v")}},
	})
	sim.Run(50 * time.Millisecond)

	if len(probe.recs) != 2 {
		t.Fatalf("answer stream %+v, want 2 busy nacks", probe.recs)
	}
	seen := map[uint64]bool{}
	for _, rec := range probe.recs {
		if rec.kind != "nack" || !rec.busy {
			t.Fatalf("mid-sync answer %+v, want busy nack", rec)
		}
		seen[rec.opID] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("busy nacks for ops %v, want 1 and 2", seen)
	}
	if _, _, ok := r.ABD.Store().Read("b"); ok {
		t.Fatal("mid-sync batch write reached the store")
	}
}

// TestCoordinatorCoalescesConcurrentOps: operations started in the same
// scheduling wave ride the same frames, and the coalesced flow still
// completes every op with linearizable results.
func TestCoordinatorCoalescesConcurrentOps(t *testing.T) {
	sim, _, nodes, _ := newBatchWorld(t, 3, 44)
	coord := nodes[0]

	const ops = 16
	sim.ScheduleAt(0, "test:burst", func() {
		for i := 0; i < ops; i++ {
			coord.put(uint64(i+1), fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
		}
	})
	sim.Run(5 * time.Second)

	if len(coord.puts) != ops {
		t.Fatalf("resolved %d puts, want %d", len(coord.puts), ops)
	}
	for _, p := range coord.puts {
		if p.Err != "" {
			t.Fatalf("put failed: %+v", p)
		}
	}
	batches, batched := coord.ABD.BatchStats()
	if batches == 0 || batched < 2 {
		t.Fatalf("burst of %d ops coalesced nothing: batches=%d ops=%d", ops, batches, batched)
	}
	// Reads see the writes through the same coalesced path.
	sim.ScheduleAt(0, "test:verify", func() {
		for i := 0; i < ops; i++ {
			coord.get(uint64(100+i), fmt.Sprintf("k%d", i))
		}
	})
	sim.Run(5 * time.Second)
	if len(coord.gets) != ops {
		t.Fatalf("resolved %d gets, want %d", len(coord.gets), ops)
	}
	for i, g := range coord.gets {
		if g.Err != "" || !g.Found {
			t.Fatalf("get %d failed: %+v", i, g)
		}
	}
}

// TestNoCoalesceMatchesLegacyFlow: with the knob off, bursts still resolve
// and no batch frames are ever sent.
func TestNoCoalesceMatchesLegacyFlow(t *testing.T) {
	sim := simulation.New(45)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.ConstantLatency(2*time.Millisecond)))
	group := []ident.NodeRef{nodeRef(1), nodeRef(2), nodeRef(3)}
	nodes := make([]*epochNode, 3)
	for i := range nodes {
		nodes[i] = &epochNode{self: group[i], group: group, sim: sim, emu: emu}
	}
	sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		for i, nd := range nodes {
			ctx.Create(fmt.Sprintf("n%d", i+1), nd)
		}
	}))
	sim.Settle()
	// Flip the knob before any traffic: the config is read per send.
	for _, nd := range nodes {
		nd.ABD.cfg.NoCoalesce = true
	}
	sim.ScheduleAt(0, "test:burst", func() {
		for i := 0; i < 8; i++ {
			nodes[0].put(uint64(i+1), fmt.Sprintf("k%d", i), "v")
		}
	})
	sim.Run(5 * time.Second)
	if len(nodes[0].puts) != 8 {
		t.Fatalf("resolved %d puts, want 8", len(nodes[0].puts))
	}
	if batches, _ := nodes[0].ABD.BatchStats(); batches != 0 {
		t.Fatalf("NoCoalesce coordinator sent %d batch frames", batches)
	}
}

// TestBatchChurnStress mixes coalesced bursts with rolling sync windows
// (mid-handoff Busy nacks land inside batch flows) and a crashing replica.
// Every op must resolve and nothing may leak; with -race this doubles as
// the concurrency check on the coalescing machinery.
func TestBatchChurnStress(t *testing.T) {
	sim, emu, nodes, _ := newBatchWorld(t, 5, 46)
	rng := rand.New(rand.NewSource(46))

	epoch := uint64(1)
	rounds := make([]uint64, len(nodes))
	for i := 0; i < 40; i++ {
		at := time.Duration(i) * 200 * time.Millisecond
		victim := rng.Intn(len(nodes))
		c := rng.Float64() < 0.7
		sim.ScheduleAt(at, "stress:sync", func() {
			rounds[victim]++
			nodes[victim].syncWindow(epoch, rounds[victim], c)
			epoch++
		})
	}
	sim.ScheduleAt(2*time.Second, "stress:crash", func() { emu.Crash(nodes[4].self.Addr) })
	sim.ScheduleAt(4*time.Second, "stress:restart", func() { emu.Restart(nodes[4].self.Addr) })

	// Bursts: several ops per scheduling wave so per-peer batches form.
	const bursts, perBurst = 12, 6
	total := 0
	for b := 0; b < bursts; b++ {
		at := time.Duration(rng.Int63n(int64(7 * time.Second)))
		node := nodes[rng.Intn(4)]
		base := uint64(1000 * (b + 1))
		sim.ScheduleAt(at, "stress:burst", func() {
			for i := 0; i < perBurst; i++ {
				key := fmt.Sprintf("k%d", (int(base)+i)%9)
				if i%2 == 0 {
					node.put(base+uint64(i), key, fmt.Sprintf("v%d-%d", b, i))
				} else {
					node.get(base+uint64(i), key)
				}
			}
		})
		total += perBurst
	}
	sim.ScheduleAt(8*time.Second, "stress:quiesce", func() {
		for i, nd := range nodes {
			rounds[i]++
			nd.syncWindow(epoch, rounds[i], true)
			epoch++
		}
	})
	sim.Run(25 * time.Second)

	resolved := 0
	batches := uint64(0)
	for i, nd := range nodes {
		resolved += len(nd.puts) + len(nd.gets)
		if nd.ABD.InFlight() != 0 {
			t.Errorf("node %d leaked %d in-flight ops", i+1, nd.ABD.InFlight())
		}
		b, _ := nd.ABD.BatchStats()
		batches += b
	}
	if resolved != total {
		t.Fatalf("resolved %d of %d ops", resolved, total)
	}
	if batches == 0 {
		t.Fatal("stress run never coalesced a batch")
	}
}
