package abd

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/simulation"
	"repro/internal/timer"
)

func addr(i int) network.Address { return network.Address{Host: "abd", Port: uint16(i)} }

func nodeRef(i int) ident.NodeRef {
	return ident.NodeRef{Key: ident.Key(i * 1000), Addr: addr(i)}
}

// stubRouter answers every FindSuccessor with a fixed group — isolating
// the ABD quorum machinery from ring/membership convergence.
type stubRouter struct {
	group []ident.NodeRef
	port  *core.Port
}

func (s *stubRouter) Setup(ctx *core.Ctx) {
	s.port = ctx.Provides(router.PortType)
	core.Subscribe(ctx, s.port, func(f router.FindSuccessor) {
		g := s.group
		if f.Count < len(g) {
			g = g[:f.Count]
		}
		ctx.Trigger(router.FoundSuccessor{ReqID: f.ReqID, Key: f.Key, Group: g}, s.port)
	})
}

// abdNode is one replica/coordinator: ABD + stub router + transport +
// timer.
type abdNode struct {
	self  ident.NodeRef
	group []ident.NodeRef
	sim   *simulation.Simulation
	emu   *simulation.NetworkEmulator
	store *Store        // optional pre-built (e.g. recovered) store
	tweak func(*Config) // optional config override (shed/hedge knobs)

	ctx     *core.Ctx
	ABD     *ABD
	pgOuter *core.Port
	gets    []GetResponse
	puts    []PutResponse
	onGet   []func(GetResponse) // extra observers (linearizability stamps)
	onPut   []func(PutResponse)
}

func (n *abdNode) Setup(ctx *core.Ctx) {
	n.ctx = ctx
	tr := ctx.Create("net", n.emu.Transport(n.self.Addr))
	tm := ctx.Create("timer", simulation.NewTimer(n.sim))
	rt := ctx.Create("router", &stubRouter{group: n.group})
	cfg := Config{
		Self:              n.self,
		ReplicationDegree: len(n.group),
		OpTimeout:         300 * time.Millisecond,
		MaxRetries:        3,
		Store:             n.store,
	}
	if n.tweak != nil {
		n.tweak(&cfg)
	}
	n.ABD = New(cfg)
	abdC := ctx.Create("abd", n.ABD)
	ctx.Connect(abdC.Required(network.PortType), tr.Provided(network.PortType))
	ctx.Connect(abdC.Required(timer.PortType), tm.Provided(timer.PortType))
	ctx.Connect(abdC.Required(router.PortType), rt.Provided(router.PortType))
	n.pgOuter = abdC.Provided(PutGetPortType)
	core.Subscribe(ctx, n.pgOuter, func(g GetResponse) {
		n.gets = append(n.gets, g)
		for _, f := range n.onGet {
			f(g)
		}
	})
	core.Subscribe(ctx, n.pgOuter, func(p PutResponse) {
		n.puts = append(n.puts, p)
		for _, f := range n.onPut {
			f(p)
		}
	})
}

func (n *abdNode) put(id uint64, key, val string) {
	n.ctx.Trigger(PutRequest{ReqID: id, Key: key, Value: []byte(val)}, n.pgOuter)
}

func (n *abdNode) get(id uint64, key string) {
	n.ctx.Trigger(GetRequest{ReqID: id, Key: key}, n.pgOuter)
}

// newABDWorld builds n replica nodes all sharing a static full group.
func newABDWorld(t *testing.T, n int, seed int64) (*simulation.Simulation, *simulation.NetworkEmulator, []*abdNode) {
	return newABDWorldCfg(t, n, seed, nil)
}

// newABDWorldCfg is newABDWorld with a per-node config override.
func newABDWorldCfg(t *testing.T, n int, seed int64, tweak func(*Config)) (*simulation.Simulation, *simulation.NetworkEmulator, []*abdNode) {
	t.Helper()
	sim := simulation.New(seed)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.UniformLatency(time.Millisecond, 5*time.Millisecond)))
	group := make([]ident.NodeRef, n)
	for i := range group {
		group[i] = nodeRef(i + 1)
	}
	nodes := make([]*abdNode, n)
	for i := range nodes {
		nodes[i] = &abdNode{self: group[i], group: group, sim: sim, emu: emu, tweak: tweak}
	}
	sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		for i, nd := range nodes {
			ctx.Create(fmt.Sprintf("n%d", i+1), nd)
		}
	}))
	sim.Settle()
	return sim, emu, nodes
}

func TestPutThenGetSameCoordinator(t *testing.T) {
	sim, _, nodes := newABDWorld(t, 3, 1)
	a := nodes[0]
	a.put(1, "k", "v1")
	sim.Run(time.Second)
	if len(a.puts) != 1 || a.puts[0].Err != "" {
		t.Fatalf("put: %+v", a.puts)
	}
	a.get(2, "k")
	sim.Run(time.Second)
	if len(a.gets) != 1 || !a.gets[0].Found || string(a.gets[0].Value) != "v1" {
		t.Fatalf("get: %+v", a.gets)
	}
}

func TestPutThenGetDifferentCoordinator(t *testing.T) {
	sim, _, nodes := newABDWorld(t, 3, 2)
	nodes[0].put(1, "k", "v1")
	sim.Run(time.Second)
	nodes[2].get(2, "k")
	sim.Run(time.Second)
	if len(nodes[2].gets) != 1 || string(nodes[2].gets[0].Value) != "v1" {
		t.Fatalf("cross-coordinator get: %+v", nodes[2].gets)
	}
}

func TestGetMissingNotFound(t *testing.T) {
	sim, _, nodes := newABDWorld(t, 3, 3)
	nodes[1].get(1, "nope")
	sim.Run(time.Second)
	g := nodes[1].gets
	if len(g) != 1 || g[0].Found || g[0].Err != "" {
		t.Fatalf("missing get: %+v", g)
	}
	// The not-found read must NOT have materialized records on replicas.
	for i, n := range nodes {
		if n.ABD.Store().Len() != 0 {
			t.Fatalf("replica %d stored phantom record", i+1)
		}
	}
}

func TestOverwriteVisible(t *testing.T) {
	sim, _, nodes := newABDWorld(t, 3, 4)
	nodes[0].put(1, "k", "v1")
	sim.Run(time.Second)
	nodes[1].put(2, "k", "v2")
	sim.Run(time.Second)
	nodes[2].get(3, "k")
	sim.Run(time.Second)
	if string(nodes[2].gets[0].Value) != "v2" {
		t.Fatalf("read %q after overwrite, want v2", nodes[2].gets[0].Value)
	}
}

func TestQuorumSurvivesMinorityPartition(t *testing.T) {
	sim, emu, nodes := newABDWorld(t, 3, 5)
	nodes[0].put(1, "k", "v1")
	sim.Run(time.Second)
	// Partition one replica away: quorum 2 of 3 still reachable.
	emu.Partition(1, nodes[2].self.Addr)
	nodes[0].put(2, "k", "v2")
	sim.Run(2 * time.Second) // write completes before the read starts
	nodes[1].get(3, "k")
	sim.Run(2 * time.Second)
	if len(nodes[0].puts) != 2 || nodes[0].puts[1].Err != "" {
		t.Fatalf("put under minority partition failed: %+v", nodes[0].puts)
	}
	if len(nodes[1].gets) != 1 || string(nodes[1].gets[0].Value) != "v2" {
		t.Fatalf("get under minority partition: %+v", nodes[1].gets)
	}
}

func TestMajorityPartitionFailsAfterRetries(t *testing.T) {
	sim, emu, nodes := newABDWorld(t, 3, 6)
	emu.Partition(1, nodes[1].self.Addr)
	emu.Partition(2, nodes[2].self.Addr)
	nodes[0].put(1, "k", "v")
	sim.Run(10 * time.Second)
	if len(nodes[0].puts) != 1 || nodes[0].puts[0].Err == "" {
		t.Fatalf("put with majority partitioned must fail: %+v", nodes[0].puts)
	}
	_, _, retries, failures := nodes[0].ABD.Stats()
	if retries == 0 || failures != 1 {
		t.Fatalf("retries=%d failures=%d", retries, failures)
	}
	if nodes[0].ABD.InFlight() != 0 {
		t.Fatalf("leaked in-flight op")
	}
}

func TestOpCompletesAfterHeal(t *testing.T) {
	sim, emu, nodes := newABDWorld(t, 3, 7)
	emu.Partition(1, nodes[1].self.Addr)
	emu.Partition(2, nodes[2].self.Addr)
	nodes[0].put(1, "k", "v")
	sim.Run(400 * time.Millisecond) // one attempt times out
	emu.Heal()
	sim.Run(5 * time.Second)
	if len(nodes[0].puts) != 1 || nodes[0].puts[0].Err != "" {
		t.Fatalf("put after heal: %+v", nodes[0].puts)
	}
}

func TestConcurrentWritesConvergeToSingleVersion(t *testing.T) {
	sim, _, nodes := newABDWorld(t, 3, 8)
	// Two coordinators write the same key at the same virtual instant.
	nodes[0].put(1, "k", "from-A")
	nodes[1].put(2, "k", "from-B")
	sim.Run(2 * time.Second)
	// All replicas converge to one (version, value).
	v0, val0, ok0 := nodes[0].ABD.Store().Read("k")
	for i, n := range nodes {
		v, val, ok := n.ABD.Store().Read("k")
		if !ok || !ok0 || v != v0 || string(val) != string(val0) {
			t.Fatalf("replica %d diverged: %v %q vs %v %q", i+1, v, val, v0, val0)
		}
	}
	// A subsequent read returns the winning value.
	nodes[2].get(3, "k")
	sim.Run(time.Second)
	if got := string(nodes[2].gets[0].Value); got != string(val0) {
		t.Fatalf("read %q, want converged %q", got, val0)
	}
}

func TestReadImposePropagatesToLaggingReplica(t *testing.T) {
	sim, emu, nodes := newABDWorld(t, 3, 9)
	// Write while replica 3 is partitioned: it misses the write.
	emu.Partition(1, nodes[2].self.Addr)
	nodes[0].put(1, "k", "v1")
	sim.Run(time.Second)
	if _, _, ok := nodes[2].ABD.Store().Read("k"); ok {
		t.Fatalf("partitioned replica saw the write")
	}
	// Heal replica 3 but partition replica 1 away, so the read quorum is
	// {replica 2 (fresh), replica 3 (stale)}: versions differ, which
	// forces the impose round (a unanimous quorum legitimately skips it).
	emu.Heal()
	emu.Partition(2, nodes[0].self.Addr)
	nodes[1].get(2, "k")
	sim.Run(2 * time.Second)
	if len(nodes[1].gets) != 1 || string(nodes[1].gets[0].Value) != "v1" {
		t.Fatalf("read through mixed quorum: %+v", nodes[1].gets)
	}
	if _, val, ok := nodes[2].ABD.Store().Read("k"); !ok || string(val) != "v1" {
		t.Fatalf("read-impose did not repair lagging replica: %q ok=%v", val, ok)
	}
}

func TestUnanimousReadSkipsImposeRound(t *testing.T) {
	sim, _, nodes := newABDWorld(t, 3, 12)
	nodes[0].put(1, "k", "v1")
	sim.Run(time.Second)
	// All replicas hold the same version; a read completes in one round.
	before := messageCount(nodes)
	nodes[1].get(2, "k")
	sim.Run(time.Second)
	if len(nodes[1].gets) != 1 || string(nodes[1].gets[0].Value) != "v1" {
		t.Fatalf("get: %+v", nodes[1].gets)
	}
	// One-round read: 3 readMsg + up to 3 readAck = at most 6 messages
	// (no writeMsg/writeAck round).
	if delta := messageCount(nodes) - before; delta > 6 {
		t.Fatalf("unanimous read used %d messages, want <= 6 (impose skipped)", delta)
	}
}

// messageCount sums ABD coordinator+replica traffic indirectly via store
// state; for the one-round check we count via the emulator instead.
func messageCount(nodes []*abdNode) int {
	// The emulator is shared; use its delivered counter.
	delivered, _, _, _ := nodes[0].emu.Stats()
	return int(delivered)
}

func TestManyKeysManyOps(t *testing.T) {
	sim, _, nodes := newABDWorld(t, 5, 10)
	const keys = 40
	id := uint64(100)
	for i := 0; i < keys; i++ {
		id++
		nodes[i%5].put(id, fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i))
	}
	sim.Run(5 * time.Second)
	for i := 0; i < keys; i++ {
		id++
		nodes[(i+3)%5].get(id, fmt.Sprintf("key-%d", i))
	}
	sim.Run(5 * time.Second)
	totalGets := 0
	for _, n := range nodes {
		for _, g := range n.gets {
			totalGets++
			if g.Err != "" || !g.Found {
				t.Fatalf("failed get: %+v", g)
			}
		}
	}
	if totalGets != keys {
		t.Fatalf("gets %d, want %d", totalGets, keys)
	}
}

func TestConfigDefaultsABD(t *testing.T) {
	c := Config{}
	c.applyDefaults()
	if c.ReplicationDegree != 3 || c.OpTimeout != time.Second || c.MaxRetries != 5 {
		t.Fatalf("defaults: %+v", c)
	}
}
