package abd

import (
	"fmt"
	"time"

	"repro/internal/kvstore"
	"repro/internal/network"
	"repro/internal/tracing"
)

// Binary wire-set implementations for the ABD quorum messages: the
// hot-path frame types the zero-allocation codec handles natively
// (everything else falls back to gob). Each AppendWire is the exact
// inverse of its registered decoder; the layouts are fixed-width
// big-endian integers with u32-length-prefixed keys and values, built
// from the shared network.Append*/WireReader primitives so bounds
// handling (and its fuzz coverage) is common. The embedded trace context
// is encoded like any other field — both codecs stamp frames with the
// same span identity.

// Wire tags 0x01–0x07 are the ABD quorum set (handoff owns 0x10–0x11).
const (
	wireTagRead       byte = 0x01
	wireTagReadAck    byte = 0x02
	wireTagWrite      byte = 0x03
	wireTagWriteAck   byte = 0x04
	wireTagNack       byte = 0x05
	wireTagOpBatch    byte = 0x06
	wireTagOpBatchAck byte = 0x07
)

func init() {
	network.RegisterWire(wireTagRead, "abd.read", decodeReadMsg)
	network.RegisterWire(wireTagReadAck, "abd.readAck", decodeReadAckMsg)
	network.RegisterWire(wireTagWrite, "abd.write", decodeWriteMsg)
	network.RegisterWire(wireTagWriteAck, "abd.writeAck", decodeWriteAckMsg)
	network.RegisterWire(wireTagNack, "abd.nack", decodeNackMsg)
	network.RegisterWire(wireTagOpBatch, "abd.opBatch", decodeOpBatchMsg)
	network.RegisterWire(wireTagOpBatchAck, "abd.opBatchAck", decodeOpBatchAckMsg)
}

// appendVersion / readVersion handle the kvstore register version pair.
func appendVersion(dst []byte, v kvstore.Version) []byte {
	dst = network.AppendU64(dst, v.Seq)
	return network.AppendU64(dst, v.Writer)
}

func readVersion(r *network.WireReader) kvstore.Version {
	return kvstore.Version{Seq: r.U64(), Writer: r.U64()}
}

func appendTrace(dst []byte, c tracing.Context) []byte {
	dst = network.AppendU64(dst, c.TraceID)
	return network.AppendU64(dst, c.SpanID)
}

func readTrace(r *network.WireReader) tracing.Context {
	return tracing.Context{TraceID: r.U64(), SpanID: r.U64()}
}

// guardCount rejects a corrupt element count that promises more entries
// than the remaining body could possibly hold (minSize bytes each),
// before any slice is allocated for it.
func guardCount(r *network.WireReader, n uint32, minSize int) error {
	if int64(n)*int64(minSize) > int64(r.Len()) {
		return fmt.Errorf("abd: wire count %d exceeds body", n)
	}
	return nil
}

func (m readMsg) WireTag() byte { return wireTagRead }

func (m readMsg) AppendWire(dst []byte) []byte {
	dst = network.AppendHeader(dst, m.Header)
	dst = appendTrace(dst, m.Context)
	dst = network.AppendU64(dst, m.OpID)
	dst = network.AppendI64(dst, int64(m.Attempt))
	dst = network.AppendU64(dst, m.Epoch)
	return network.AppendString(dst, m.Key)
}

func decodeReadMsg(r *network.WireReader) (network.Message, error) {
	var m readMsg
	m.Header = r.Header()
	m.Context = readTrace(r)
	m.OpID = r.U64()
	m.Attempt = int(r.I64())
	m.Epoch = r.U64()
	m.Key = r.String()
	return m, nil
}

func (m readAckMsg) WireTag() byte { return wireTagReadAck }

func (m readAckMsg) AppendWire(dst []byte) []byte {
	dst = network.AppendHeader(dst, m.Header)
	dst = network.AppendU64(dst, m.OpID)
	dst = network.AppendI64(dst, int64(m.Attempt))
	dst = network.AppendU64(dst, m.Epoch)
	dst = appendVersion(dst, m.Version)
	dst = network.AppendBytes(dst, m.Value)
	return network.AppendBool(dst, m.Found)
}

func decodeReadAckMsg(r *network.WireReader) (network.Message, error) {
	var m readAckMsg
	m.Header = r.Header()
	m.OpID = r.U64()
	m.Attempt = int(r.I64())
	m.Epoch = r.U64()
	m.Version = readVersion(r)
	m.Value = r.Bytes()
	m.Found = r.Bool()
	return m, nil
}

func (m writeMsg) WireTag() byte { return wireTagWrite }

func (m writeMsg) AppendWire(dst []byte) []byte {
	dst = network.AppendHeader(dst, m.Header)
	dst = appendTrace(dst, m.Context)
	dst = network.AppendU64(dst, m.OpID)
	dst = network.AppendI64(dst, int64(m.Attempt))
	dst = network.AppendU64(dst, m.Epoch)
	dst = network.AppendString(dst, m.Key)
	dst = appendVersion(dst, m.Version)
	return network.AppendBytes(dst, m.Value)
}

func decodeWriteMsg(r *network.WireReader) (network.Message, error) {
	var m writeMsg
	m.Header = r.Header()
	m.Context = readTrace(r)
	m.OpID = r.U64()
	m.Attempt = int(r.I64())
	m.Epoch = r.U64()
	m.Key = r.String()
	m.Version = readVersion(r)
	m.Value = r.Bytes()
	return m, nil
}

func (m writeAckMsg) WireTag() byte { return wireTagWriteAck }

func (m writeAckMsg) AppendWire(dst []byte) []byte {
	dst = network.AppendHeader(dst, m.Header)
	dst = network.AppendU64(dst, m.OpID)
	dst = network.AppendI64(dst, int64(m.Attempt))
	return network.AppendU64(dst, m.Epoch)
}

func decodeWriteAckMsg(r *network.WireReader) (network.Message, error) {
	var m writeAckMsg
	m.Header = r.Header()
	m.OpID = r.U64()
	m.Attempt = int(r.I64())
	m.Epoch = r.U64()
	return m, nil
}

func (m nackMsg) WireTag() byte { return wireTagNack }

func (m nackMsg) AppendWire(dst []byte) []byte {
	dst = network.AppendHeader(dst, m.Header)
	dst = network.AppendU64(dst, m.OpID)
	dst = network.AppendI64(dst, int64(m.Attempt))
	dst = network.AppendU64(dst, m.Epoch)
	dst = network.AppendBool(dst, m.Busy)
	return network.AppendI64(dst, int64(m.RetryAfter))
}

func decodeNackMsg(r *network.WireReader) (network.Message, error) {
	var m nackMsg
	m.Header = r.Header()
	m.OpID = r.U64()
	m.Attempt = int(r.I64())
	m.Epoch = r.U64()
	m.Busy = r.Bool()
	m.RetryAfter = time.Duration(r.I64())
	return m, nil
}

func (m opBatchMsg) WireTag() byte { return wireTagOpBatch }

func (m opBatchMsg) AppendWire(dst []byte) []byte {
	dst = network.AppendHeader(dst, m.Header)
	dst = appendTrace(dst, m.Context)
	dst = network.AppendU32(dst, uint32(len(m.Reads)))
	for i := range m.Reads {
		p := &m.Reads[i]
		dst = appendTrace(dst, p.Context)
		dst = network.AppendU64(dst, p.OpID)
		dst = network.AppendI64(dst, int64(p.Attempt))
		dst = network.AppendU64(dst, p.Epoch)
		dst = network.AppendString(dst, p.Key)
	}
	dst = network.AppendU32(dst, uint32(len(m.Writes)))
	for i := range m.Writes {
		p := &m.Writes[i]
		dst = appendTrace(dst, p.Context)
		dst = network.AppendU64(dst, p.OpID)
		dst = network.AppendI64(dst, int64(p.Attempt))
		dst = network.AppendU64(dst, p.Epoch)
		dst = network.AppendString(dst, p.Key)
		dst = appendVersion(dst, p.Version)
		dst = network.AppendBytes(dst, p.Value)
	}
	return dst
}

func decodeOpBatchMsg(r *network.WireReader) (network.Message, error) {
	var m opBatchMsg
	m.Header = r.Header()
	m.Context = readTrace(r)
	nr := r.U32()
	// A readPhase is at least trace(16)+op(8)+attempt(8)+epoch(8)+len(4).
	if err := guardCount(r, nr, 44); err != nil {
		return nil, err
	}
	if nr > 0 {
		m.Reads = make([]readPhase, nr)
		for i := range m.Reads {
			p := &m.Reads[i]
			p.Context = readTrace(r)
			p.OpID = r.U64()
			p.Attempt = int(r.I64())
			p.Epoch = r.U64()
			p.Key = r.String()
		}
	}
	nw := r.U32()
	// A writePhase adds version(16)+value len(4) to the readPhase minimum.
	if err := guardCount(r, nw, 64); err != nil {
		return nil, err
	}
	if nw > 0 {
		m.Writes = make([]writePhase, nw)
		for i := range m.Writes {
			p := &m.Writes[i]
			p.Context = readTrace(r)
			p.OpID = r.U64()
			p.Attempt = int(r.I64())
			p.Epoch = r.U64()
			p.Key = r.String()
			p.Version = readVersion(r)
			p.Value = r.Bytes()
		}
	}
	return m, nil
}

func (m opBatchAckMsg) WireTag() byte { return wireTagOpBatchAck }

func (m opBatchAckMsg) AppendWire(dst []byte) []byte {
	dst = network.AppendHeader(dst, m.Header)
	dst = network.AppendU64(dst, m.Epoch)
	dst = network.AppendU32(dst, uint32(len(m.ReadAcks)))
	for i := range m.ReadAcks {
		a := &m.ReadAcks[i]
		dst = network.AppendU64(dst, a.OpID)
		dst = network.AppendI64(dst, int64(a.Attempt))
		dst = appendVersion(dst, a.Version)
		dst = network.AppendBytes(dst, a.Value)
		dst = network.AppendBool(dst, a.Found)
	}
	dst = network.AppendU32(dst, uint32(len(m.WriteAcks)))
	for i := range m.WriteAcks {
		a := &m.WriteAcks[i]
		dst = network.AppendU64(dst, a.OpID)
		dst = network.AppendI64(dst, int64(a.Attempt))
	}
	return dst
}

func decodeOpBatchAckMsg(r *network.WireReader) (network.Message, error) {
	var m opBatchAckMsg
	m.Header = r.Header()
	m.Epoch = r.U64()
	nr := r.U32()
	// A readAckEntry is at least op(8)+attempt(8)+version(16)+len(4)+found(1).
	if err := guardCount(r, nr, 37); err != nil {
		return nil, err
	}
	if nr > 0 {
		m.ReadAcks = make([]readAckEntry, nr)
		for i := range m.ReadAcks {
			a := &m.ReadAcks[i]
			a.OpID = r.U64()
			a.Attempt = int(r.I64())
			a.Version = readVersion(r)
			a.Value = r.Bytes()
			a.Found = r.Bool()
		}
	}
	nw := r.U32()
	if err := guardCount(r, nw, 16); err != nil {
		return nil, err
	}
	if nw > 0 {
		m.WriteAcks = make([]writeAckEntry, nw)
		for i := range m.WriteAcks {
			a := &m.WriteAcks[i]
			a.OpID = r.U64()
			a.Attempt = int(r.I64())
		}
	}
	return m, nil
}
