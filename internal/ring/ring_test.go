package ring

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/simulation"
	"repro/internal/timer"
)

func addr(i int) network.Address { return network.Address{Host: "rg", Port: uint16(i)} }

// ringNode bundles a Ring with its failure detector, transport, and timer.
type ringNode struct {
	self ident.NodeRef
	sim  *simulation.Simulation
	emu  *simulation.NetworkEmulator

	ctx       *core.Ctx
	Ring      *Ring
	ringOuter *core.Port
	readies   int
	changes   int
	views     []GroupView
}

func (n *ringNode) Setup(ctx *core.Ctx) {
	n.ctx = ctx
	tr := ctx.Create("net", n.emu.Transport(n.self.Addr))
	tm := ctx.Create("timer", simulation.NewTimer(n.sim))
	fdC := ctx.Create("fd", fd.NewPing(fd.Config{Self: n.self.Addr, Interval: 100 * time.Millisecond}))
	ctx.Connect(fdC.Required(network.PortType), tr.Provided(network.PortType))
	ctx.Connect(fdC.Required(timer.PortType), tm.Provided(timer.PortType))

	n.Ring = New(Config{Self: n.self, StabilizePeriod: 200 * time.Millisecond, SuccessorListSize: 3})
	rgC := ctx.Create("ring", n.Ring)
	ctx.Connect(rgC.Required(network.PortType), tr.Provided(network.PortType))
	ctx.Connect(rgC.Required(timer.PortType), tm.Provided(timer.PortType))
	ctx.Connect(rgC.Required(fd.PortType), fdC.Provided(fd.PortType))
	n.ringOuter = rgC.Provided(PortType)
	core.Subscribe(ctx, n.ringOuter, func(Ready) { n.readies++ })
	core.Subscribe(ctx, n.ringOuter, func(NeighborsChanged) { n.changes++ })
	core.Subscribe(ctx, n.ringOuter, func(v GroupView) { n.views = append(n.views, v) })
}

// world builds n ring nodes with keys i*100.
func newRingWorld(t *testing.T, n int, seed int64) (*simulation.Simulation, []*ringNode) {
	t.Helper()
	sim := simulation.New(seed)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.UniformLatency(time.Millisecond, 4*time.Millisecond)))
	nodes := make([]*ringNode, n)
	for i := range nodes {
		nodes[i] = &ringNode{
			self: ident.NodeRef{Key: ident.Key((i + 1) * 100), Addr: addr(i + 1)},
			sim:  sim,
			emu:  emu,
		}
	}
	sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		for i, nd := range nodes {
			ctx.Create(fmt.Sprintf("n%d", i+1), nd)
		}
	}))
	sim.Settle()
	return sim, nodes
}

// requirePerfectRing asserts successor pointers match the key order.
func requirePerfectRing(t *testing.T, nodes []*ringNode, alive []int) {
	t.Helper()
	for idx, i := range alive {
		n := nodes[i]
		succs := n.Ring.Succs()
		if len(succs) == 0 {
			t.Fatalf("node %d has no successors", i)
		}
		want := nodes[alive[(idx+1)%len(alive)]].self
		if succs[0] != want {
			t.Fatalf("node %d successor %s, want %s", i, succs[0], want)
		}
	}
}

func TestSingleNodeFoundsRing(t *testing.T) {
	sim, nodes := newRingWorld(t, 1, 1)
	n := nodes[0]
	n.ctx.Trigger(Join{}, n.ringOuter)
	sim.Run(time.Second)
	if !n.Ring.Joined() {
		t.Fatalf("founder not joined")
	}
	if n.readies != 1 {
		t.Fatalf("readies %d", n.readies)
	}
	if n.Ring.Pred() != n.self {
		t.Fatalf("founder pred %v, want self", n.Ring.Pred())
	}
}

func TestTwoNodesConverge(t *testing.T) {
	sim, nodes := newRingWorld(t, 2, 2)
	a, b := nodes[0], nodes[1]
	a.ctx.Trigger(Join{}, a.ringOuter)
	sim.Run(time.Second)
	b.ctx.Trigger(Join{Seeds: []ident.NodeRef{a.self}}, b.ringOuter)
	sim.Run(10 * time.Second)
	requirePerfectRing(t, nodes, []int{0, 1})
	if a.Ring.Pred() != b.self || b.Ring.Pred() != a.self {
		t.Fatalf("preds: a=%v b=%v", a.Ring.Pred(), b.Ring.Pred())
	}
}

func TestManyNodesConvergeSequentialJoin(t *testing.T) {
	sim, nodes := newRingWorld(t, 8, 3)
	nodes[0].ctx.Trigger(Join{}, nodes[0].ringOuter)
	sim.Run(time.Second)
	for i := 1; i < len(nodes); i++ {
		// Every joiner only knows the founder.
		nodes[i].ctx.Trigger(Join{Seeds: []ident.NodeRef{nodes[0].self}}, nodes[i].ringOuter)
		sim.Run(500 * time.Millisecond)
	}
	sim.Run(30 * time.Second)
	alive := []int{0, 1, 2, 3, 4, 5, 6, 7}
	requirePerfectRing(t, nodes, alive)
}

func TestConcurrentJoinsConverge(t *testing.T) {
	sim, nodes := newRingWorld(t, 6, 4)
	nodes[0].ctx.Trigger(Join{}, nodes[0].ringOuter)
	sim.Run(time.Second)
	// All remaining nodes join at once.
	for i := 1; i < len(nodes); i++ {
		nodes[i].ctx.Trigger(Join{Seeds: []ident.NodeRef{nodes[0].self}}, nodes[i].ringOuter)
	}
	sim.Run(60 * time.Second)
	requirePerfectRing(t, nodes, []int{0, 1, 2, 3, 4, 5})
}

func TestRingHealsAfterFailure(t *testing.T) {
	sim, nodes := newRingWorld(t, 5, 5)
	nodes[0].ctx.Trigger(Join{}, nodes[0].ringOuter)
	sim.Run(time.Second)
	for i := 1; i < len(nodes); i++ {
		nodes[i].ctx.Trigger(Join{Seeds: []ident.NodeRef{nodes[0].self}}, nodes[i].ringOuter)
		sim.Run(500 * time.Millisecond)
	}
	sim.Run(20 * time.Second)
	requirePerfectRing(t, nodes, []int{0, 1, 2, 3, 4})

	// Crash node 2 (isolate it; its component stays but is silenced).
	crash := nodes[2]
	for _, ch := range sim.Runtime().Root().Children() {
		if ch.Name() == "n3" {
			core.TriggerOn(ch.Control(), core.Kill{}) //nolint:errcheck
		}
	}
	_ = crash
	sim.Run(30 * time.Second)
	requirePerfectRing(t, nodes, []int{0, 1, 3, 4})
}

func TestJoinRetriesUntilSeedJoined(t *testing.T) {
	sim, nodes := newRingWorld(t, 2, 6)
	a, b := nodes[0], nodes[1]
	// b joins through a BEFORE a has founded the ring: join requests are
	// ignored until a joins, then b's retry succeeds.
	b.ctx.Trigger(Join{Seeds: []ident.NodeRef{a.self}}, b.ringOuter)
	sim.Run(3 * time.Second)
	if b.Ring.Joined() {
		t.Fatalf("b joined through an unjoined seed")
	}
	a.ctx.Trigger(Join{}, a.ringOuter)
	sim.Run(15 * time.Second)
	if !b.Ring.Joined() {
		t.Fatalf("b never joined after seed became available")
	}
	requirePerfectRing(t, nodes, []int{0, 1})
}

func TestDoubleJoinIgnored(t *testing.T) {
	sim, nodes := newRingWorld(t, 1, 7)
	n := nodes[0]
	n.ctx.Trigger(Join{}, n.ringOuter)
	n.ctx.Trigger(Join{}, n.ringOuter)
	sim.Run(time.Second)
	if n.readies != 1 {
		t.Fatalf("double join produced %d readies", n.readies)
	}
}

// TestGroupViewEpochsMonotone pins the epoch protocol: every membership
// change publishes a GroupView, epochs are strictly increasing per node,
// and the view's range/members are consistent with the neighbor state.
func TestGroupViewEpochsMonotone(t *testing.T) {
	sim, nodes := newRingWorld(t, 4, 8)
	nodes[0].ctx.Trigger(Join{}, nodes[0].ringOuter)
	sim.Run(time.Second)
	for i := 1; i < len(nodes); i++ {
		nodes[i].ctx.Trigger(Join{Seeds: []ident.NodeRef{nodes[0].self}}, nodes[i].ringOuter)
		sim.Run(500 * time.Millisecond)
	}
	sim.Run(20 * time.Second)
	requirePerfectRing(t, nodes, []int{0, 1, 2, 3})

	for i, n := range nodes {
		if len(n.views) == 0 {
			t.Fatalf("node %d published no group views", i)
		}
		if n.changes != len(n.views) {
			t.Errorf("node %d: %d NeighborsChanged but %d GroupViews — must pair", i, n.changes, len(n.views))
		}
		for j := 1; j < len(n.views); j++ {
			if n.views[j].Epoch <= n.views[j-1].Epoch {
				t.Fatalf("node %d epoch not strictly increasing: %d then %d", i, n.views[j-1].Epoch, n.views[j].Epoch)
			}
		}
		last := n.views[len(n.views)-1]
		if last.Epoch != n.Ring.Epoch() {
			t.Errorf("node %d last view epoch %d != Epoch() %d", i, last.Epoch, n.Ring.Epoch())
		}
		if last.Range.To != n.self.Key {
			t.Errorf("node %d range ends at %d, want own key %d", i, last.Range.To, n.self.Key)
		}
		if !last.Range.Contains(n.self.Key) {
			t.Errorf("node %d range does not contain own key", i)
		}
		foundSelf := false
		for _, m := range last.Members {
			if m == n.self {
				foundSelf = true
			}
		}
		if !foundSelf {
			t.Errorf("node %d view members %v missing self", i, last.Members)
		}
	}
}

// TestOrphanedNodeRejoins is the long-outage case: a node dark past the
// suspicion threshold suspects its whole neighborhood (empty successor
// list while joined) and its neighbors evict it. When its network heals it
// must rejoin through the remembered membership, without a new Join
// request from the application.
func TestOrphanedNodeRejoins(t *testing.T) {
	sim, nodes := newRingWorld(t, 4, 9)
	nodes[0].ctx.Trigger(Join{}, nodes[0].ringOuter)
	sim.Run(time.Second)
	for i := 1; i < len(nodes); i++ {
		nodes[i].ctx.Trigger(Join{Seeds: []ident.NodeRef{nodes[0].self}}, nodes[i].ringOuter)
		sim.Run(500 * time.Millisecond)
	}
	sim.Run(20 * time.Second)
	requirePerfectRing(t, nodes, []int{0, 1, 2, 3})

	// Network-silence node 2 far past the suspicion threshold (100ms pings,
	// default misses): everyone evicts it, and it evicts everyone.
	victim := nodes[2]
	victim.emu.Crash(victim.self.Addr)
	sim.Run(10 * time.Second)
	if len(victim.Ring.Succs()) != 0 {
		t.Fatalf("victim kept successors %v through a 10s outage", victim.Ring.Succs())
	}
	if !victim.Ring.Joined() {
		t.Fatalf("victim should stay joined (orphaned, not left)")
	}
	requirePerfectRing(t, nodes, []int{0, 1, 3})

	epochBefore := victim.Ring.Epoch()
	victim.emu.Restart(victim.self.Addr)
	sim.Run(30 * time.Second)
	requirePerfectRing(t, nodes, []int{0, 1, 2, 3})
	if victim.Ring.Epoch() <= epochBefore {
		t.Errorf("rejoin did not advance the victim's epoch (%d -> %d)", epochBefore, victim.Ring.Epoch())
	}
}

// TestRingChurnStressRace drives repeated eviction/rejoin cycles while a
// background goroutine hammers the cross-worker getters — the mutex/atomic
// coverage this is meant to exercise only shows up under -race.
func TestRingChurnStressRace(t *testing.T) {
	sim, nodes := newRingWorld(t, 5, 10)
	nodes[0].ctx.Trigger(Join{}, nodes[0].ringOuter)
	sim.Run(time.Second)
	for i := 1; i < len(nodes); i++ {
		nodes[i].ctx.Trigger(Join{Seeds: []ident.NodeRef{nodes[0].self}}, nodes[i].ringOuter)
		sim.Run(500 * time.Millisecond)
	}
	sim.Run(10 * time.Second)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, n := range nodes {
				_ = n.Ring.Succs()
				_ = n.Ring.Pred()
				_ = n.Ring.Epoch()
				_ = n.Ring.Joined()
			}
		}
	}()
	for round := 0; round < 3; round++ {
		v := nodes[1+round%4]
		v.emu.Crash(v.self.Addr)
		sim.Run(8 * time.Second)
		v.emu.Restart(v.self.Addr)
		sim.Run(20 * time.Second)
	}
	close(stop)
	<-done
	requirePerfectRing(t, nodes, []int{0, 1, 2, 3, 4})
}
