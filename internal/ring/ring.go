// Package ring implements the CATS Ring component of the paper's case
// study: consistent-hashing ring topology maintenance. Nodes join via a
// seed, then converge through periodic stabilization (successor-list
// repair and notify, in the style of Chord), with the failure detector
// pruning dead neighbors. The ring publishes NeighborsChanged indications
// that the one-hop router and replication layer consume.
package ring

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/status"
	"repro/internal/timer"
)

// Join requests joining the ring through any of the seed nodes (empty
// seeds: found a fresh ring).
type Join struct {
	Seeds []ident.NodeRef
}

// NeighborsChanged announces the node's current predecessor and successor
// list after any topology change.
type NeighborsChanged struct {
	Pred  ident.NodeRef
	Succs []ident.NodeRef
}

// Ready indicates the node has established a successor and participates in
// the ring.
type Ready struct {
	Self ident.NodeRef
}

// PortType is the ring topology abstraction.
var PortType = core.NewPortType("Ring",
	core.Request[Join](),
	core.Indication[NeighborsChanged](),
	core.Indication[Ready](),
)

// Wire messages.

type joinReqMsg struct {
	network.Header
	Node ident.NodeRef
}

type joinRespMsg struct {
	network.Header
	Members []ident.NodeRef
}

type stabilizeReqMsg struct {
	network.Header
}

type stabilizeRespMsg struct {
	network.Header
	Pred  ident.NodeRef
	Succs []ident.NodeRef
}

type notifyMsg struct {
	network.Header
	Node ident.NodeRef
}

func init() {
	network.Register(joinReqMsg{})
	network.Register(joinRespMsg{})
	network.Register(stabilizeReqMsg{})
	network.Register(stabilizeRespMsg{})
	network.Register(notifyMsg{})
}

type stabilizeTimeout struct{ timer.Timeout }
type joinRetryTimeout struct{ timer.Timeout }

// Config parameterizes a ring component.
type Config struct {
	// Self is the local node reference.
	Self ident.NodeRef
	// SuccessorListSize is the resilience parameter (default 4).
	SuccessorListSize int
	// StabilizePeriod is the stabilization interval (default 500ms).
	StabilizePeriod time.Duration
	// JoinRetryPeriod is the join retry interval (default 1s).
	JoinRetryPeriod time.Duration
}

func (c *Config) applyDefaults() {
	if c.SuccessorListSize <= 0 {
		c.SuccessorListSize = 4
	}
	if c.StabilizePeriod <= 0 {
		c.StabilizePeriod = 500 * time.Millisecond
	}
	if c.JoinRetryPeriod <= 0 {
		c.JoinRetryPeriod = time.Second
	}
}

// Ring is the CATS Ring component: provides Ring, requires Network, Timer,
// and FailureDetector.
type Ring struct {
	cfg Config

	ctx  *core.Ctx
	ring *core.Port
	net  *core.Port
	tmr  *core.Port
	fdp  *core.Port

	// mu guards pred and succs only at mutation and in the exported
	// getters: handlers mutate them on a scheduler worker while tests and
	// monitors poll Pred/Succs from outside the component.
	mu        sync.Mutex
	pred      ident.NodeRef
	succs     []ident.NodeRef // ordered clockwise from self; never contains self
	joined    atomic.Bool     // read by tests/monitors outside the component
	joining   bool
	seeds     []ident.NodeRef
	monitored map[network.Address]ident.NodeRef
	stid      timer.ID
	jtid      timer.ID
}

// New creates a ring component definition.
func New(cfg Config) *Ring {
	cfg.applyDefaults()
	return &Ring{cfg: cfg, monitored: make(map[network.Address]ident.NodeRef)}
}

var _ core.Definition = (*Ring)(nil)

// Setup declares ports and handlers.
func (r *Ring) Setup(ctx *core.Ctx) {
	r.ctx = ctx
	r.ring = ctx.Provides(PortType)
	r.net = ctx.Requires(network.PortType)
	r.tmr = ctx.Requires(timer.PortType)
	r.fdp = ctx.Requires(fd.PortType)

	st := ctx.Provides(status.PortType)
	core.Subscribe(ctx, st, func(q status.Request) {
		joined := int64(0)
		if r.joined.Load() {
			joined = 1
		}
		ctx.Trigger(status.Response{ReqID: q.ReqID, Component: "ring", Metrics: map[string]int64{
			"joined":     joined,
			"successors": int64(len(r.succs)),
			"monitored":  int64(len(r.monitored)),
		}}, st)
	})

	core.Subscribe(ctx, r.ring, r.handleJoin)
	core.Subscribe(ctx, r.net, r.handleJoinReq)
	core.Subscribe(ctx, r.net, r.handleJoinResp)
	core.Subscribe(ctx, r.net, r.handleStabilizeReq)
	core.Subscribe(ctx, r.net, r.handleStabilizeResp)
	core.Subscribe(ctx, r.net, r.handleNotify)
	core.Subscribe(ctx, r.fdp, r.handleSuspect)
	core.Subscribe(ctx, r.tmr, r.handleStabilizeTick)
	core.Subscribe(ctx, r.tmr, r.handleJoinRetry)
	core.Subscribe(ctx, ctx.Control(), func(core.Start) {
		r.stid = timer.NextID()
		ctx.Trigger(timer.SchedulePeriodic{
			Delay:   r.cfg.StabilizePeriod,
			Period:  r.cfg.StabilizePeriod,
			Timeout: stabilizeTimeout{timer.Timeout{ID: r.stid}},
		}, r.tmr)
	})
	core.Subscribe(ctx, ctx.Control(), func(core.Stop) {
		ctx.Trigger(timer.CancelPeriodic{ID: r.stid}, r.tmr)
		if r.joining {
			ctx.Trigger(timer.CancelPeriodic{ID: r.jtid}, r.tmr)
			r.joining = false
		}
	})
}

// Self returns the local node reference.
func (r *Ring) Self() ident.NodeRef { return r.cfg.Self }

// Pred returns the current predecessor (zero when unknown).
func (r *Ring) Pred() ident.NodeRef {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pred
}

// Succs returns a copy of the current successor list.
func (r *Ring) Succs() []ident.NodeRef {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ident.NodeRef, len(r.succs))
	copy(out, r.succs)
	return out
}

// Joined reports whether the node participates in a ring.
func (r *Ring) Joined() bool { return r.joined.Load() }

// --- join protocol -----------------------------------------------------------

func (r *Ring) handleJoin(j Join) {
	if r.joined.Load() || r.joining {
		return
	}
	seeds := make([]ident.NodeRef, 0, len(j.Seeds))
	for _, s := range j.Seeds {
		if s.Addr != r.cfg.Self.Addr {
			seeds = append(seeds, s)
		}
	}
	if len(seeds) == 0 {
		// Found a fresh ring: the node is its own predecessor/successor.
		r.setPred(r.cfg.Self)
		r.becomeJoined()
		return
	}
	r.seeds = seeds
	r.joining = true
	r.sendJoinReq()
	r.jtid = timer.NextID()
	r.ctx.Trigger(timer.SchedulePeriodic{
		Delay:   r.cfg.JoinRetryPeriod,
		Period:  r.cfg.JoinRetryPeriod,
		Timeout: joinRetryTimeout{timer.Timeout{ID: r.jtid}},
	}, r.tmr)
}

func (r *Ring) sendJoinReq() {
	seed := r.seeds[r.ctx.Rand().Intn(len(r.seeds))]
	r.ctx.Trigger(joinReqMsg{
		Header: network.NewHeader(r.cfg.Self.Addr, seed.Addr),
		Node:   r.cfg.Self,
	}, r.net)
}

func (r *Ring) handleJoinRetry(joinRetryTimeout) {
	if r.joining {
		r.sendJoinReq()
	}
}

// handleJoinReq answers with all members this node knows: itself, its
// predecessor, and its successor list. The joiner picks its successor
// candidate from that set and stabilization repairs the rest.
func (r *Ring) handleJoinReq(m joinReqMsg) {
	if !r.joined.Load() {
		return // cannot help yet; the joiner will retry
	}
	members := append([]ident.NodeRef{r.cfg.Self}, r.succs...)
	if !r.pred.IsZero() {
		members = append(members, r.pred)
	}
	ident.SortByKey(members)
	members = ident.Dedup(members)
	r.ctx.Trigger(joinRespMsg{Header: network.Reply(m), Members: members}, r.net)
}

func (r *Ring) handleJoinResp(m joinRespMsg) {
	if !r.joining {
		return
	}
	members := make([]ident.NodeRef, 0, len(m.Members))
	for _, n := range m.Members {
		if n.Addr != r.cfg.Self.Addr {
			members = append(members, n)
		}
	}
	if len(members) == 0 {
		return
	}
	r.joining = false
	r.ctx.Trigger(timer.CancelPeriodic{ID: r.jtid}, r.tmr)
	ident.SortByKey(members)
	succ := ident.SuccessorOf(members, r.cfg.Self.Key+1)
	r.adoptSuccessors(append([]ident.NodeRef{succ}, members...))
	r.becomeJoined()
	r.notifySuccessor()
}

func (r *Ring) becomeJoined() {
	r.joined.Store(true)
	r.ctx.Trigger(Ready{Self: r.cfg.Self}, r.ring)
	r.publishNeighbors()
}

// --- stabilization -------------------------------------------------------------

func (r *Ring) handleStabilizeTick(stabilizeTimeout) {
	if !r.joined.Load() || len(r.succs) == 0 {
		return
	}
	succ := r.succs[0]
	r.ctx.Trigger(stabilizeReqMsg{
		Header: network.NewHeader(r.cfg.Self.Addr, succ.Addr),
	}, r.net)
}

func (r *Ring) handleStabilizeReq(m stabilizeReqMsg) {
	r.ctx.Trigger(stabilizeRespMsg{
		Header: network.Reply(m),
		Pred:   r.pred,
		Succs:  append([]ident.NodeRef{r.cfg.Self}, r.succs...),
	}, r.net)
}

func (r *Ring) handleStabilizeResp(m stabilizeRespMsg) {
	if !r.joined.Load() {
		return
	}
	candidates := append([]ident.NodeRef(nil), m.Succs...)
	// Rectify: if the successor's predecessor sits between us and the
	// successor, it becomes our new successor candidate.
	if !m.Pred.IsZero() && len(r.succs) > 0 &&
		m.Pred.Key.InOpenInterval(r.cfg.Self.Key, r.succs[0].Key) &&
		m.Pred.Addr != r.cfg.Self.Addr {
		candidates = append([]ident.NodeRef{m.Pred}, candidates...)
	}
	r.adoptSuccessors(append(candidates, r.succs...))
	r.notifySuccessor()
}

func (r *Ring) notifySuccessor() {
	if len(r.succs) == 0 {
		return
	}
	r.ctx.Trigger(notifyMsg{
		Header: network.NewHeader(r.cfg.Self.Addr, r.succs[0].Addr),
		Node:   r.cfg.Self,
	}, r.net)
}

// handleNotify adopts a better predecessor.
func (r *Ring) handleNotify(m notifyMsg) {
	n := m.Node
	if n.Addr == r.cfg.Self.Addr {
		return
	}
	if r.pred.IsZero() || r.pred.Addr == r.cfg.Self.Addr ||
		n.Key.InOpenInterval(r.pred.Key, r.cfg.Self.Key) {
		if r.pred != n {
			r.setPred(n)
			r.monitor(n)
			r.publishNeighbors()
		}
	}
	// A fresh ring founder adopts its first notifier as successor too.
	if len(r.succs) == 0 {
		r.adoptSuccessors([]ident.NodeRef{n})
	}
}

// adoptSuccessors rebuilds the successor list from candidate members:
// clockwise from self, deduplicated, truncated to the configured size.
func (r *Ring) adoptSuccessors(candidates []ident.NodeRef) {
	members := make([]ident.NodeRef, 0, len(candidates))
	for _, n := range candidates {
		if n.Addr != r.cfg.Self.Addr && !n.IsZero() {
			members = append(members, n)
		}
	}
	if len(members) == 0 {
		return
	}
	ident.SortByKey(members)
	members = ident.Dedup(members)
	newSuccs := ident.SuccessorsOf(members, r.cfg.Self.Key+1, r.cfg.SuccessorListSize)
	if !nodesEqual(newSuccs, r.succs) {
		r.mu.Lock()
		r.succs = newSuccs
		r.mu.Unlock()
		for _, s := range newSuccs {
			r.monitor(s)
		}
		r.publishNeighbors()
	}
}

// setPred installs a new predecessor under the lock.
func (r *Ring) setPred(n ident.NodeRef) {
	r.mu.Lock()
	r.pred = n
	r.mu.Unlock()
}

// --- failure handling ------------------------------------------------------------

func (r *Ring) handleSuspect(s fd.Suspect) {
	node, ok := r.monitored[s.Node]
	if !ok {
		return
	}
	delete(r.monitored, s.Node)
	r.ctx.Trigger(fd.StopMonitor{Node: s.Node}, r.fdp)

	changed := false
	r.mu.Lock()
	if r.pred.Addr == node.Addr {
		r.pred = ident.NodeRef{}
		changed = true
	}
	pruned := r.succs[:0]
	for _, n := range r.succs {
		if n.Addr != node.Addr {
			pruned = append(pruned, n)
		} else {
			changed = true
		}
	}
	r.succs = pruned
	r.mu.Unlock()
	if changed {
		r.publishNeighbors()
	}
}

// monitor asks the failure detector to watch a neighbor (idempotent).
func (r *Ring) monitor(n ident.NodeRef) {
	if n.Addr == r.cfg.Self.Addr || n.IsZero() {
		return
	}
	if _, ok := r.monitored[n.Addr]; ok {
		return
	}
	r.monitored[n.Addr] = n
	r.ctx.Trigger(fd.Monitor{Node: n.Addr}, r.fdp)
}

func (r *Ring) publishNeighbors() {
	r.ctx.Trigger(NeighborsChanged{
		Pred:  r.pred,
		Succs: r.Succs(),
	}, r.ring)
}

func nodesEqual(a, b []ident.NodeRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
