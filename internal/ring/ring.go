// Package ring implements the CATS Ring component of the paper's case
// study: consistent-hashing ring topology maintenance. Nodes join via a
// seed, then converge through periodic stabilization (successor-list
// repair and notify, in the style of Chord), with the failure detector
// pruning dead neighbors. The ring publishes NeighborsChanged indications
// that the one-hop router consumes, and — since replica groups became
// first-class — epoch-versioned GroupView indications: every membership
// change advances a monotone epoch (Lamport-merged with epochs observed on
// the wire, so epochs across nodes converge), which the replication layer
// stamps on quorum phases and the handoff component uses to version state
// transfer (the paper's consistent-quorums reconfiguration).
package ring

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/status"
	"repro/internal/timer"
)

// Join requests joining the ring through any of the seed nodes (empty
// seeds: found a fresh ring).
type Join struct {
	Seeds []ident.NodeRef
}

// NeighborsChanged announces the node's current predecessor and successor
// list after any topology change.
type NeighborsChanged struct {
	Pred  ident.NodeRef
	Succs []ident.NodeRef
}

// KeyRange is the half-open ring interval (From, To] — the keys a node is
// the primary replica for. From == To denotes the whole ring (a founder
// with no predecessor).
type KeyRange struct {
	From ident.Key
	To   ident.Key
}

// Contains reports whether k falls in the range.
func (r KeyRange) Contains(k ident.Key) bool { return k.InHalfOpenInterval(r.From, r.To) }

// GroupView is the epoch-versioned replica-group view: published alongside
// NeighborsChanged on every membership change, it makes group composition
// explicit instead of something quorum operations discover by accident.
// Epoch is monotone per node and Lamport-merged with epochs observed from
// neighbors, so concurrent views order consistently across the ring.
type GroupView struct {
	Epoch uint64
	// Range is the primary key range of this node: (Pred, Self].
	Range KeyRange
	Pred  ident.NodeRef
	Succs []ident.NodeRef
	// Members is the sorted, deduplicated neighborhood: self, predecessor,
	// and the successor list — the nodes state handoff pulls from and
	// pushes to.
	Members []ident.NodeRef
}

// Ready indicates the node has established a successor and participates in
// the ring.
type Ready struct {
	Self ident.NodeRef
}

// PortType is the ring topology abstraction.
var PortType = core.NewPortType("Ring",
	core.Request[Join](),
	core.Indication[NeighborsChanged](),
	core.Indication[GroupView](),
	core.Indication[Ready](),
)

// Wire messages.

type joinReqMsg struct {
	network.Header
	Node ident.NodeRef
}

type joinRespMsg struct {
	network.Header
	Members []ident.NodeRef
	Epoch   uint64
}

type stabilizeReqMsg struct {
	network.Header
}

type stabilizeRespMsg struct {
	network.Header
	Pred  ident.NodeRef
	Succs []ident.NodeRef
	Epoch uint64
}

type notifyMsg struct {
	network.Header
	Node  ident.NodeRef
	Epoch uint64
}

func init() {
	network.Register(joinReqMsg{})
	network.Register(joinRespMsg{})
	network.Register(stabilizeReqMsg{})
	network.Register(stabilizeRespMsg{})
	network.Register(notifyMsg{})
}

type stabilizeTimeout struct{ timer.Timeout }
type joinRetryTimeout struct{ timer.Timeout }

// Config parameterizes a ring component.
type Config struct {
	// Self is the local node reference.
	Self ident.NodeRef
	// SuccessorListSize is the resilience parameter (default 4).
	SuccessorListSize int
	// StabilizePeriod is the stabilization interval (default 500ms).
	StabilizePeriod time.Duration
	// JoinRetryPeriod is the join retry interval (default 1s).
	JoinRetryPeriod time.Duration
}

func (c *Config) applyDefaults() {
	if c.SuccessorListSize <= 0 {
		c.SuccessorListSize = 4
	}
	if c.StabilizePeriod <= 0 {
		c.StabilizePeriod = 500 * time.Millisecond
	}
	if c.JoinRetryPeriod <= 0 {
		c.JoinRetryPeriod = time.Second
	}
}

// Ring is the CATS Ring component: provides Ring, requires Network, Timer,
// and FailureDetector.
type Ring struct {
	cfg Config

	ctx  *core.Ctx
	ring *core.Port
	net  *core.Port
	tmr  *core.Port
	fdp  *core.Port

	// mu guards pred and succs only at mutation and in the exported
	// getters: handlers mutate them on a scheduler worker while tests and
	// monitors poll Pred/Succs from outside the component.
	mu        sync.Mutex
	pred      ident.NodeRef
	succs     []ident.NodeRef // ordered clockwise from self; never contains self
	joined    atomic.Bool     // read by tests/monitors outside the component
	joining   bool
	seeds     []ident.NodeRef
	monitored map[network.Address]ident.NodeRef
	stid      timer.ID
	jtid      timer.ID

	// epoch is the group-view version; monotone, Lamport-merged with
	// maxSeen (the highest epoch observed on the wire) at every local
	// membership change. Atomic: polled by tests/monitors from outside.
	epoch   atomic.Uint64
	maxSeen uint64
	// lastKnown remembers the most recent non-trivial neighborhood, so a
	// node whose failure detector evicted every neighbor during a long
	// outage (leaving it joined but successor-less — unable to stabilize)
	// can rejoin through a previously known member once its network heals.
	lastKnown []ident.NodeRef
}

// New creates a ring component definition.
func New(cfg Config) *Ring {
	cfg.applyDefaults()
	return &Ring{cfg: cfg, monitored: make(map[network.Address]ident.NodeRef)}
}

var _ core.Definition = (*Ring)(nil)

// Setup declares ports and handlers.
func (r *Ring) Setup(ctx *core.Ctx) {
	r.ctx = ctx
	r.ring = ctx.Provides(PortType)
	r.net = ctx.Requires(network.PortType)
	r.tmr = ctx.Requires(timer.PortType)
	r.fdp = ctx.Requires(fd.PortType)

	st := ctx.Provides(status.PortType)
	core.Subscribe(ctx, st, func(q status.Request) {
		joined := int64(0)
		if r.joined.Load() {
			joined = 1
		}
		ctx.Trigger(status.Response{ReqID: q.ReqID, Component: "ring", Metrics: map[string]int64{
			"joined":     joined,
			"successors": int64(len(r.succs)),
			"monitored":  int64(len(r.monitored)),
			"epoch":      int64(r.epoch.Load()),
		}}, st)
	})

	core.Subscribe(ctx, r.ring, r.handleJoin)
	core.Subscribe(ctx, r.net, r.handleJoinReq)
	core.Subscribe(ctx, r.net, r.handleJoinResp)
	core.Subscribe(ctx, r.net, r.handleStabilizeReq)
	core.Subscribe(ctx, r.net, r.handleStabilizeResp)
	core.Subscribe(ctx, r.net, r.handleNotify)
	core.Subscribe(ctx, r.fdp, r.handleSuspect)
	core.Subscribe(ctx, r.tmr, r.handleStabilizeTick)
	core.Subscribe(ctx, r.tmr, r.handleJoinRetry)
	core.Subscribe(ctx, ctx.Control(), func(core.Start) {
		r.stid = timer.NextID()
		ctx.Trigger(timer.SchedulePeriodic{
			Delay:   r.cfg.StabilizePeriod,
			Period:  r.cfg.StabilizePeriod,
			Timeout: stabilizeTimeout{timer.Timeout{ID: r.stid}},
		}, r.tmr)
	})
	core.Subscribe(ctx, ctx.Control(), func(core.Stop) {
		ctx.Trigger(timer.CancelPeriodic{ID: r.stid}, r.tmr)
		if r.joining {
			ctx.Trigger(timer.CancelPeriodic{ID: r.jtid}, r.tmr)
			r.joining = false
		}
	})
}

// Self returns the local node reference.
func (r *Ring) Self() ident.NodeRef { return r.cfg.Self }

// Pred returns the current predecessor (zero when unknown).
func (r *Ring) Pred() ident.NodeRef {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pred
}

// Succs returns a copy of the current successor list.
func (r *Ring) Succs() []ident.NodeRef {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ident.NodeRef, len(r.succs))
	copy(out, r.succs)
	return out
}

// Joined reports whether the node participates in a ring.
func (r *Ring) Joined() bool { return r.joined.Load() }

// Epoch returns the current group-view epoch.
func (r *Ring) Epoch() uint64 { return r.epoch.Load() }

// observeEpoch folds an epoch seen on the wire into the Lamport merge: the
// next local membership change publishes an epoch above everything ever
// observed, so views order consistently across nodes.
func (r *Ring) observeEpoch(e uint64) {
	if e > r.maxSeen {
		r.maxSeen = e
	}
}

// bumpEpoch advances the epoch past both the local counter and the highest
// observed remote epoch.
func (r *Ring) bumpEpoch() uint64 {
	e := r.epoch.Load()
	if r.maxSeen > e {
		e = r.maxSeen
	}
	e++
	r.epoch.Store(e)
	return e
}

// --- join protocol -----------------------------------------------------------

func (r *Ring) handleJoin(j Join) {
	if r.joined.Load() || r.joining {
		return
	}
	seeds := make([]ident.NodeRef, 0, len(j.Seeds))
	for _, s := range j.Seeds {
		if s.Addr != r.cfg.Self.Addr {
			seeds = append(seeds, s)
		}
	}
	if len(seeds) == 0 {
		// Found a fresh ring: the node is its own predecessor/successor.
		r.setPred(r.cfg.Self)
		r.becomeJoined()
		return
	}
	r.seeds = seeds
	r.joining = true
	r.sendJoinReq()
	r.jtid = timer.NextID()
	r.ctx.Trigger(timer.SchedulePeriodic{
		Delay:   r.cfg.JoinRetryPeriod,
		Period:  r.cfg.JoinRetryPeriod,
		Timeout: joinRetryTimeout{timer.Timeout{ID: r.jtid}},
	}, r.tmr)
}

func (r *Ring) sendJoinReq() {
	seed := r.seeds[r.ctx.Rand().Intn(len(r.seeds))]
	r.ctx.Trigger(joinReqMsg{
		Header: network.NewHeader(r.cfg.Self.Addr, seed.Addr),
		Node:   r.cfg.Self,
	}, r.net)
}

func (r *Ring) handleJoinRetry(joinRetryTimeout) {
	if r.joining {
		r.sendJoinReq()
	}
}

// handleJoinReq answers with all members this node knows: itself, its
// predecessor, and its successor list. The joiner picks its successor
// candidate from that set and stabilization repairs the rest.
func (r *Ring) handleJoinReq(m joinReqMsg) {
	if !r.joined.Load() {
		return // cannot help yet; the joiner will retry
	}
	members := append([]ident.NodeRef{r.cfg.Self}, r.succs...)
	if !r.pred.IsZero() {
		members = append(members, r.pred)
	}
	ident.SortByKey(members)
	members = ident.Dedup(members)
	r.ctx.Trigger(joinRespMsg{Header: network.Reply(m), Members: members, Epoch: r.epoch.Load()}, r.net)
}

func (r *Ring) handleJoinResp(m joinRespMsg) {
	// Besides the initial join, accept a response when joined but
	// successor-less: the rejoin path after a long outage evicted every
	// neighbor (see handleStabilizeTick).
	rejoin := !r.joining && r.joined.Load() && len(r.succs) == 0
	if !r.joining && !rejoin {
		return
	}
	r.observeEpoch(m.Epoch)
	members := make([]ident.NodeRef, 0, len(m.Members))
	for _, n := range m.Members {
		if n.Addr != r.cfg.Self.Addr {
			members = append(members, n)
		}
	}
	if len(members) == 0 {
		return
	}
	if r.joining {
		r.joining = false
		r.ctx.Trigger(timer.CancelPeriodic{ID: r.jtid}, r.tmr)
	}
	ident.SortByKey(members)
	succ := ident.SuccessorOf(members, r.cfg.Self.Key+1)
	r.adoptSuccessors(append([]ident.NodeRef{succ}, members...))
	if !rejoin {
		r.becomeJoined()
	}
	r.notifySuccessor()
}

func (r *Ring) becomeJoined() {
	r.joined.Store(true)
	r.ctx.Trigger(Ready{Self: r.cfg.Self}, r.ring)
	r.publishView()
}

// --- stabilization -------------------------------------------------------------

func (r *Ring) handleStabilizeTick(stabilizeTimeout) {
	if !r.joined.Load() {
		return
	}
	if len(r.succs) == 0 {
		// Orphaned: every successor was evicted (a long outage makes the
		// local failure detector suspect the whole neighborhood). Rejoin
		// through the last known membership instead of stalling forever.
		r.tryRejoin()
		return
	}
	succ := r.succs[0]
	r.ctx.Trigger(stabilizeReqMsg{
		Header: network.NewHeader(r.cfg.Self.Addr, succ.Addr),
	}, r.net)
}

// tryRejoin sends a join request to a random previously known member; the
// stabilize tick retries every period until some neighbor answers.
func (r *Ring) tryRejoin() {
	if len(r.lastKnown) == 0 {
		return
	}
	target := r.lastKnown[r.ctx.Rand().Intn(len(r.lastKnown))]
	r.ctx.Trigger(joinReqMsg{
		Header: network.NewHeader(r.cfg.Self.Addr, target.Addr),
		Node:   r.cfg.Self,
	}, r.net)
}

func (r *Ring) handleStabilizeReq(m stabilizeReqMsg) {
	r.ctx.Trigger(stabilizeRespMsg{
		Header: network.Reply(m),
		Pred:   r.pred,
		Succs:  append([]ident.NodeRef{r.cfg.Self}, r.succs...),
		Epoch:  r.epoch.Load(),
	}, r.net)
}

func (r *Ring) handleStabilizeResp(m stabilizeRespMsg) {
	if !r.joined.Load() {
		return
	}
	r.observeEpoch(m.Epoch)
	candidates := append([]ident.NodeRef(nil), m.Succs...)
	// Rectify: if the successor's predecessor sits between us and the
	// successor, it becomes our new successor candidate.
	if !m.Pred.IsZero() && len(r.succs) > 0 &&
		m.Pred.Key.InOpenInterval(r.cfg.Self.Key, r.succs[0].Key) &&
		m.Pred.Addr != r.cfg.Self.Addr {
		candidates = append([]ident.NodeRef{m.Pred}, candidates...)
	}
	r.adoptSuccessors(append(candidates, r.succs...))
	r.notifySuccessor()
}

func (r *Ring) notifySuccessor() {
	if len(r.succs) == 0 {
		return
	}
	r.ctx.Trigger(notifyMsg{
		Header: network.NewHeader(r.cfg.Self.Addr, r.succs[0].Addr),
		Node:   r.cfg.Self,
		Epoch:  r.epoch.Load(),
	}, r.net)
}

// handleNotify adopts a better predecessor.
func (r *Ring) handleNotify(m notifyMsg) {
	n := m.Node
	if n.Addr == r.cfg.Self.Addr {
		return
	}
	r.observeEpoch(m.Epoch)
	if r.pred.IsZero() || r.pred.Addr == r.cfg.Self.Addr ||
		n.Key.InOpenInterval(r.pred.Key, r.cfg.Self.Key) {
		if r.pred != n {
			r.setPred(n)
			r.monitor(n)
			r.publishView()
		}
	}
	// A fresh ring founder adopts its first notifier as successor too.
	if len(r.succs) == 0 {
		r.adoptSuccessors([]ident.NodeRef{n})
	}
}

// adoptSuccessors rebuilds the successor list from candidate members:
// clockwise from self, deduplicated, truncated to the configured size.
func (r *Ring) adoptSuccessors(candidates []ident.NodeRef) {
	members := make([]ident.NodeRef, 0, len(candidates))
	for _, n := range candidates {
		if n.Addr != r.cfg.Self.Addr && !n.IsZero() {
			members = append(members, n)
		}
	}
	if len(members) == 0 {
		return
	}
	ident.SortByKey(members)
	members = ident.Dedup(members)
	newSuccs := ident.SuccessorsOf(members, r.cfg.Self.Key+1, r.cfg.SuccessorListSize)
	if !nodesEqual(newSuccs, r.succs) {
		r.mu.Lock()
		r.succs = newSuccs
		r.mu.Unlock()
		for _, s := range newSuccs {
			r.monitor(s)
		}
		r.publishView()
	}
}

// setPred installs a new predecessor under the lock.
func (r *Ring) setPred(n ident.NodeRef) {
	r.mu.Lock()
	r.pred = n
	r.mu.Unlock()
}

// --- failure handling ------------------------------------------------------------

func (r *Ring) handleSuspect(s fd.Suspect) {
	node, ok := r.monitored[s.Node]
	if !ok {
		return
	}
	delete(r.monitored, s.Node)
	r.ctx.Trigger(fd.StopMonitor{Node: s.Node}, r.fdp)

	changed := false
	r.mu.Lock()
	if r.pred.Addr == node.Addr {
		r.pred = ident.NodeRef{}
		changed = true
	}
	pruned := r.succs[:0]
	for _, n := range r.succs {
		if n.Addr != node.Addr {
			pruned = append(pruned, n)
		} else {
			changed = true
		}
	}
	r.succs = pruned
	r.mu.Unlock()
	if changed {
		r.publishView()
	}
}

// monitor asks the failure detector to watch a neighbor (idempotent).
func (r *Ring) monitor(n ident.NodeRef) {
	if n.Addr == r.cfg.Self.Addr || n.IsZero() {
		return
	}
	if _, ok := r.monitored[n.Addr]; ok {
		return
	}
	r.monitored[n.Addr] = n
	r.ctx.Trigger(fd.Monitor{Node: n.Addr}, r.fdp)
}

// publishView announces the membership change: the legacy NeighborsChanged
// indication plus the epoch-versioned GroupView. Every call corresponds to
// an actual change (callers check), so the epoch bumps here, in one place.
func (r *Ring) publishView() {
	epoch := r.bumpEpoch()
	pred := r.Pred()
	succs := r.Succs()
	r.ctx.Trigger(NeighborsChanged{Pred: pred, Succs: succs}, r.ring)

	members := append([]ident.NodeRef{r.cfg.Self}, succs...)
	if !pred.IsZero() {
		members = append(members, pred)
	}
	ident.SortByKey(members)
	members = ident.Dedup(members)
	from := r.cfg.Self.Key // no predecessor: whole ring
	if !pred.IsZero() {
		from = pred.Key
	}
	r.ctx.Trigger(GroupView{
		Epoch:   epoch,
		Range:   KeyRange{From: from, To: r.cfg.Self.Key},
		Pred:    pred,
		Succs:   succs,
		Members: members,
	}, r.ring)

	// Remember the last non-trivial neighborhood for the rejoin path; an
	// eviction cascade down to "just self" must not erase it.
	others := make([]ident.NodeRef, 0, len(members))
	for _, m := range members {
		if m.Addr != r.cfg.Self.Addr {
			others = append(others, m)
		}
	}
	if len(others) > 0 {
		r.lastKnown = others
	}
}

func nodesEqual(a, b []ident.NodeRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
