// Durable store lifecycle: Open recovers a store from its data
// directory (per-shard snapshot + WAL tail) before returning, so by the
// time any component — ABD replica, handoff, epoch rejoin — can reach
// the store, every shard has been replayed. Close flushes and releases
// the logs; Crash models power loss by truncating each log back to its
// durable (fsynced) watermark, which is what makes the sync-policy loss
// windows unit-testable without real power cuts.
package kvstore

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/ident"
)

// SyncPolicy controls when WAL appends are fsynced.
type SyncPolicy int

const (
	// SyncNever leaves flushing to the OS: fastest, loses everything
	// since the last snapshot on power loss (not on process death — the
	// page cache survives a SIGKILL).
	SyncNever SyncPolicy = iota
	// SyncInterval group-commits: a background syncer fsyncs dirty
	// shard logs every SyncEvery, bounding the power-loss window.
	SyncInterval
	// SyncAlways fsyncs every append before it is acknowledged.
	SyncAlways
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	default:
		return "never"
	}
}

// ParseSyncPolicy parses the flag spelling of a sync policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return SyncNever, fmt.Errorf("kvstore: unknown sync policy %q (want always|interval|never)", s)
}

const (
	// DefaultSyncEvery is the group-commit period under SyncInterval.
	DefaultSyncEvery = 5 * time.Millisecond
	// DefaultSnapshotBytes is the per-shard WAL size that triggers a
	// snapshot + log truncation.
	DefaultSnapshotBytes = 4 << 20
)

// Options configures a durable store opened with Open.
type Options struct {
	// Sync is the WAL fsync policy (default SyncNever).
	Sync SyncPolicy
	// SyncEvery is the group-commit period under SyncInterval
	// (default DefaultSyncEvery).
	SyncEvery time.Duration
	// SnapshotBytes triggers a per-shard snapshot + log truncation once
	// a shard's WAL exceeds it. 0 means DefaultSnapshotBytes; negative
	// disables snapshotting.
	SnapshotBytes int64
	// OnShardRecovered, when set, observes recovery progress: it is
	// called once per shard, in shard order, during Open — before Open
	// returns and therefore before any read or write can be served from
	// the store. Tests use it to pin the replay-before-serve ordering.
	OnShardRecovered func(shard, snapshotEntries, walEntries int, tornTail bool)
}

// durability is the store's durable state: one walShard per map shard
// plus the group-commit syncer.
type durability struct {
	dir           string
	syncAlways    bool
	snapshotBytes int64
	shards        [ShardCount]walShard

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// RecoveryStats describes what Open rebuilt from disk.
type RecoveryStats struct {
	// SnapshotsLoaded is the number of shards that had a snapshot file.
	SnapshotsLoaded int
	// SnapshotEntries is the total records loaded from snapshots.
	SnapshotEntries int
	// WALEntries is the total records replayed from WAL tails.
	WALEntries int
	// TornTails is the number of shard logs whose final record was
	// detected torn via CRC/length and truncated away.
	TornTails int
	// Keys is the number of distinct keys resident after recovery.
	Keys int
}

// Open creates (or recovers) a durable store rooted at dir. Every shard's
// snapshot and WAL tail is replayed synchronously before Open returns:
// recovery strictly precedes service. A torn final WAL record is detected
// by CRC, counted, and truncated; everything before it is kept.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if opts.SnapshotBytes == 0 {
		opts.SnapshotBytes = DefaultSnapshotBytes
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	s := New()
	d := &durability{
		dir:           dir,
		syncAlways:    opts.Sync == SyncAlways,
		snapshotBytes: opts.SnapshotBytes,
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	for si := 0; si < ShardCount; si++ {
		sh := &s.shards[si]
		// applyRecovered inserts through the same version gate as live
		// writes, so duplicated records (snapshot ∩ un-truncated log) and
		// out-of-order tails cannot regress a register.
		applyRecovered := func(key string, v Version, value []byte) {
			if v.IsZero() {
				return
			}
			h := ident.KeyOfString(key)
			if cur, ok := sh.m[key]; ok && !cur.version.Less(v) {
				return
			}
			sh.m[key] = record{version: v, value: value, hash: h}
		}
		snapEntries, loaded, err := loadSnapshot(dir, si, applyRecovered)
		if err != nil {
			return nil, err
		}
		if loaded {
			s.recovery.SnapshotsLoaded++
			s.recovery.SnapshotEntries += snapEntries
		}
		f, err := os.OpenFile(walPath(dir, si), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		valid, walEntries, torn, err := replayWAL(f, applyRecovered)
		if err != nil {
			f.Close()
			return nil, err
		}
		if torn {
			// Truncate the torn tail so the next append starts at a
			// whole-record boundary.
			if err := f.Truncate(valid); err != nil {
				f.Close()
				return nil, err
			}
			s.recovery.TornTails++
			walTruncationsTotal.Add(1)
		}
		if _, err := f.Seek(valid, 0); err != nil {
			f.Close()
			return nil, err
		}
		ws := &d.shards[si]
		ws.f = f
		ws.appended = valid
		ws.durable = valid
		s.recovery.WALEntries += walEntries
		walReplaysTotal.Add(uint64(walEntries))
		shardKeysTotal[si].Add(uint64(len(sh.m)))
		if opts.OnShardRecovered != nil {
			opts.OnShardRecovered(si, snapEntries, walEntries, torn)
		}
	}
	s.recovery.Keys = s.Len()
	s.dur = d
	durableStoresOpen.Add(1)
	if opts.Sync == SyncInterval {
		go d.syncLoop(opts.SyncEvery)
	} else {
		close(d.done)
	}
	return s, nil
}

// syncLoop is the group-commit ticker: every period, fsync each shard
// log with unflushed appends.
func (d *durability) syncLoop(every time.Duration) {
	defer close(d.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			for i := range d.shards {
				d.shards[i].groupSync()
			}
		}
	}
}

// Durable reports whether the store was opened with a data directory.
func (s *Store) Durable() bool { return s.dur != nil }

// Dir returns the store's data directory ("" for memory-only stores).
func (s *Store) Dir() string {
	if s.dur == nil {
		return ""
	}
	return s.dur.dir
}

// Recovery returns what Open rebuilt from disk (zero for memory-only
// stores or stores opened over an empty directory).
func (s *Store) Recovery() RecoveryStats { return s.recovery }

// SyncBacklog returns the bytes appended to shard WALs but not yet
// fsynced, summed across shards — the durability lag replica admission
// control sheds on. Always zero for memory-only stores and under
// SyncAlways (appends are synced before they are acknowledged).
func (s *Store) SyncBacklog() int64 {
	if s.dur == nil {
		return 0
	}
	var lag int64
	for i := range s.dur.shards {
		ws := &s.dur.shards[i]
		ws.mu.Lock()
		lag += ws.appended - ws.durable
		ws.mu.Unlock()
	}
	return lag
}

// Close flushes every shard log and releases the files. The store must
// not be used afterwards; appends fail with an error. Memory-only
// stores close trivially.
func (s *Store) Close() error {
	if s.dur == nil {
		return nil
	}
	return s.dur.shutdown(false)
}

// Crash models power loss for tests and chaos scenarios: each shard log
// is truncated back to its durable (fsynced) watermark — un-synced
// appends are lost, exactly the loss window the sync policy bought —
// and the files are released without flushing. Under SyncAlways the
// truncation is a no-op.
func (s *Store) Crash() error {
	if s.dur == nil {
		return nil
	}
	return s.dur.shutdown(true)
}

func (d *durability) shutdown(crash bool) error {
	var err error
	d.stopOnce.Do(func() {
		close(d.stop)
		<-d.done
		for i := range d.shards {
			ws := &d.shards[i]
			ws.mu.Lock()
			if ws.f == nil {
				ws.mu.Unlock()
				continue
			}
			if crash {
				if terr := ws.f.Truncate(ws.durable); terr != nil && err == nil {
					err = terr
				}
			} else if ws.dirty {
				if serr := ws.f.Sync(); serr != nil && err == nil {
					err = serr
				} else {
					ws.durable = ws.appended
					ws.dirty = false
					walSyncsTotal.Add(1)
				}
			}
			if cerr := ws.f.Close(); cerr != nil && err == nil {
				err = cerr
			}
			ws.f = nil
			ws.mu.Unlock()
		}
		durableStoresOpen.Add(^uint64(0))
	})
	return err
}

// maybeSnapshot writes shard si's map as a snapshot and truncates its
// log. Called with the shard's map lock held (the map cannot change
// under the snapshot) right after the append that crossed the
// threshold. Errors leave the log intact — worst case the shard keeps a
// long log and recovery replays more.
func (d *durability) maybeSnapshot(si int, m map[string]record) {
	entries := sortedShardEntries(m)
	bytes, err := writeSnapshot(d.dir, si, entries)
	if err != nil {
		walErrorsTotal.Add(1)
		return
	}
	ws := &d.shards[si]
	ws.mu.Lock()
	if ws.f != nil {
		if err := ws.f.Truncate(0); err == nil {
			if _, err := ws.f.Seek(0, 0); err == nil {
				ws.appended = 0
				ws.durable = 0
				ws.dirty = false
			}
		}
	}
	ws.mu.Unlock()
	snapshotsTotal.Add(1)
	snapshotLastEntries.Store(uint64(len(entries)))
	snapshotLastBytes.Store(uint64(bytes))
}
