// Package kvstore holds the versioned register store shared by the
// replication layer (internal/abd) and the state-handoff component
// (internal/handoff). It was factored out of internal/abd when handoff
// arrived: both components live on different scheduler workers inside one
// node and touch the same records, so the store is mutex-protected, and
// handoff needs deterministic whole-store and key-range iteration that the
// replica read/write path never did.
package kvstore

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ident"
)

// Version orders writes totally: by sequence number, ties broken by writer
// identity. The zero Version precedes every real write.
type Version struct {
	Seq    uint64
	Writer uint64
}

// Less reports whether v precedes o in the total write order.
func (v Version) Less(o Version) bool {
	if v.Seq != o.Seq {
		return v.Seq < o.Seq
	}
	return v.Writer < o.Writer
}

// IsZero reports whether the version denotes "never written".
func (v Version) IsZero() bool { return v == Version{} }

// String renders seq.writer.
func (v Version) String() string { return fmt.Sprintf("%d.%d", v.Seq, v.Writer) }

// Entry is one stored register with its key — the unit of state handoff.
type Entry struct {
	Key     string
	Version Version
	Value   []byte
}

// record is one stored register.
type record struct {
	version Version
	value   []byte
}

// Store is a node-local versioned key-value store: the register memory of
// one replica. It applies writes only when they advance the version, which
// makes replica application idempotent and order-insensitive — handoff
// transfers reuse Apply, so receiving the same range twice (or a range
// older than local state) is harmless. The mutex makes it safe to share
// between the ABD replica and the handoff component of one node.
type Store struct {
	mu sync.Mutex
	m  map[string]record
}

// New creates an empty store.
func New() *Store {
	return &Store{m: make(map[string]record)}
}

// Read returns the stored version and value for key (zero version when
// never written).
func (s *Store) Read(key string) (Version, []byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.m[key]
	return r.version, r.value, ok
}

// Apply stores (version, value) under key iff version advances the stored
// one. Zero-version writes are rejected: they denote "never written" and
// must not materialize a record. It reports whether the write was applied.
func (s *Store) Apply(key string, v Version, value []byte) bool {
	if v.IsZero() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.m[key]
	if ok && !cur.version.Less(v) {
		return false
	}
	s.m[key] = record{version: v, value: value}
	return true
}

// Len returns the number of keys stored.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Keys returns all stored keys (status/debugging).
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	return out
}

// Entries returns every stored record, sorted by key. The sort makes
// iteration deterministic — handoff transfers derived from it must be
// byte-identical across simulation runs of one seed.
func (s *Store) Entries() []Entry {
	s.mu.Lock()
	out := make([]Entry, 0, len(s.m))
	for k, r := range s.m {
		out = append(out, Entry{Key: k, Version: r.version, Value: r.value})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// EntriesInRange returns the stored records whose hashed key falls in the
// ring interval (from, to], sorted by key — the "covered key range" a
// handoff pull assembles. When from == to the interval is the whole ring.
func (s *Store) EntriesInRange(from, to ident.Key) []Entry {
	s.mu.Lock()
	out := make([]Entry, 0, len(s.m))
	for k, r := range s.m {
		if ident.KeyOfString(k).InHalfOpenInterval(from, to) {
			out = append(out, Entry{Key: k, Version: r.version, Value: r.value})
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
