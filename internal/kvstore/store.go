// Package kvstore holds the versioned register store shared by the
// replication layer (internal/abd) and the state-handoff component
// (internal/handoff). It was factored out of internal/abd when handoff
// arrived: both components live on different scheduler workers inside one
// node and touch the same records, so the store is lock-protected, and
// handoff needs deterministic whole-store and key-range iteration that the
// replica read/write path never did.
//
// The store is sharded into ShardCount independent segments, each guarded
// by its own mutex, partitioned by the top bits of the key's ring hash.
// Sharding by ring position (not by string hash) means a ring interval maps
// to a contiguous run of shards, so range iteration — the handoff pull path
// — touches only the shards overlapping the interval instead of scanning
// the whole store, and the replica and handoff components of one node stop
// contending on a single lock under load.
package kvstore

import (
	"sort"
	"strconv"
	"sync"

	"repro/internal/ident"
)

// Version orders writes totally: by sequence number, ties broken by writer
// identity. The zero Version precedes every real write.
type Version struct {
	Seq    uint64
	Writer uint64
}

// Less reports whether v precedes o in the total write order.
func (v Version) Less(o Version) bool {
	if v.Seq != o.Seq {
		return v.Seq < o.Seq
	}
	return v.Writer < o.Writer
}

// IsZero reports whether the version denotes "never written".
func (v Version) IsZero() bool { return v == Version{} }

// String renders seq.writer. Hand-rolled with strconv rather than
// fmt.Sprintf: versions are stringified in hot-path error and trace
// strings, and Sprintf costs several allocations plus reflection where
// AppendUint costs exactly the one unavoidable string allocation.
func (v Version) String() string {
	var buf [41]byte // two maximal uint64s plus the dot
	b := strconv.AppendUint(buf[:0], v.Seq, 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, v.Writer, 10)
	return string(b)
}

// Entry is one stored register with its key — the unit of state handoff.
type Entry struct {
	Key     string
	Version Version
	Value   []byte
}

// record is one stored register. The ring hash is computed once on first
// write and kept so range scans don't rehash every key.
type record struct {
	version Version
	value   []byte
	hash    ident.Key
}

// ShardCount is the number of lock-striped segments per store. It is a
// power of two so the shard of a key is its top hash bits; 16 shards keep
// per-shard maps small at millions of keys while bounding the fixed
// footprint of the many short-lived stores simulations create.
const ShardCount = 16

// shardShift selects the top log2(ShardCount) bits of the 64-bit ring key.
const shardShift = 64 - 4

// shardSpan is the width of one shard's contiguous ring interval.
const shardSpan = uint64(1) << shardShift

// ShardOf returns the shard index owning the given ring position.
func ShardOf(h ident.Key) int { return int(uint64(h) >> shardShift) }

// ShardSpan returns the closed ring interval [lo, hi] shard i covers.
// Shard spans never wrap: shard i is exactly the keys whose top bits are i.
func ShardSpan(i int) (lo, hi ident.Key) {
	lo = ident.Key(uint64(i) << shardShift)
	return lo, lo + ident.Key(shardSpan-1)
}

// shard is one independently locked segment of the store.
type shard struct {
	mu sync.Mutex
	m  map[string]record
}

// Store is a node-local versioned key-value store: the register memory of
// one replica. It applies writes only when they advance the version, which
// makes replica application idempotent and order-insensitive — handoff
// transfers reuse Apply, so receiving the same range twice (or a range
// older than local state) is harmless. The striped locks make it safe to
// share between the ABD replica and the handoff component of one node.
type Store struct {
	shards [ShardCount]shard

	// dur is nil for memory-only stores (New); durable stores (Open)
	// append every accepted write to the shard's WAL before it lands in
	// the map — the map is the memtable, the log is the truth.
	dur      *durability
	recovery RecoveryStats
}

// New creates an empty store.
func New() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]record)
	}
	storesTotal.Add(1)
	return s
}

// NumShards returns the number of segments (ShardCount; method form for
// callers iterating shards).
func (s *Store) NumShards() int { return ShardCount }

// Read returns the stored version and value for key (zero version when
// never written).
func (s *Store) Read(key string) (Version, []byte, bool) {
	sh := &s.shards[ShardOf(ident.KeyOfString(key))]
	sh.mu.Lock()
	r, ok := sh.m[key]
	sh.mu.Unlock()
	readsTotal.Add(1)
	return r.version, r.value, ok
}

// Apply stores (version, value) under key iff version advances the stored
// one. Zero-version writes are rejected: they denote "never written" and
// must not materialize a record. It reports whether the write was applied.
// On a durable store a WAL failure drops the write (reported false);
// callers that must distinguish "version-rejected" from "not durable" —
// the replica ack paths — use ApplyDurable.
func (s *Store) Apply(key string, v Version, value []byte) bool {
	ok, _ := s.ApplyDurable(key, v, value)
	return ok
}

// ApplyDurable is Apply with the durability verdict: on a durable store
// the write is appended (and, under SyncAlways, fsynced) to the shard's
// WAL before it is materialized in the memtable, so when ApplyDurable
// returns (true, nil) the write is on disk and safe to acknowledge. A
// non-nil error means the write is neither applied nor durable and must
// not be acked.
func (s *Store) ApplyDurable(key string, v Version, value []byte) (bool, error) {
	if v.IsZero() {
		return false, nil
	}
	h := ident.KeyOfString(key)
	si := ShardOf(h)
	sh := &s.shards[si]
	sh.mu.Lock()
	cur, ok := sh.m[key]
	if ok && !cur.version.Less(v) {
		sh.mu.Unlock()
		rejectedTotal.Add(1)
		return false, nil
	}
	needSnap := false
	if s.dur != nil {
		var err error
		needSnap, err = s.dur.shards[si].append(key, v, value, s.dur.syncAlways, s.dur.snapshotBytes)
		if err != nil {
			sh.mu.Unlock()
			return false, err
		}
	}
	sh.m[key] = record{version: v, value: value, hash: h}
	if needSnap {
		s.dur.maybeSnapshot(si, sh.m)
	}
	sh.mu.Unlock()
	appliesTotal.Add(1)
	if !ok {
		shardKeysTotal[si].Add(1)
	}
	return true, nil
}

// Len returns the number of keys stored.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// ShardLen returns the number of keys in shard i.
func (s *Store) ShardLen(i int) int {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.m)
}

// Stats snapshots the per-shard key counts (telemetry, chaos reports).
func (s *Store) Stats() StoreStats {
	var st StoreStats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st.PerShard[i] = len(sh.m)
		sh.mu.Unlock()
		st.Keys += st.PerShard[i]
		if st.PerShard[i] > 0 {
			st.NonEmptyShards++
		}
	}
	return st
}

// StoreStats is a point-in-time occupancy snapshot of one store.
type StoreStats struct {
	Keys           int
	NonEmptyShards int
	PerShard       [ShardCount]int
}

// Keys returns all stored keys (status/debugging).
func (s *Store) Keys() []string {
	out := make([]string, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k := range sh.m {
			out = append(out, k)
		}
		sh.mu.Unlock()
	}
	return out
}

// ShardEntries returns shard i's records, sorted by key — the unit of
// deterministic per-partition iteration handoff chunks transfers by.
func (s *Store) ShardEntries(i int) []Entry {
	sh := &s.shards[i]
	sh.mu.Lock()
	out := make([]Entry, 0, len(sh.m))
	for k, r := range sh.m {
		out = append(out, Entry{Key: k, Version: r.version, Value: r.value})
	}
	sh.mu.Unlock()
	sortEntries(out)
	return out
}

// ShardEntriesInRange returns shard i's records whose ring hash falls in
// (from, to], sorted by key. When from == to the interval is the whole
// ring.
func (s *Store) ShardEntriesInRange(i int, from, to ident.Key) []Entry {
	sh := &s.shards[i]
	sh.mu.Lock()
	var out []Entry
	for k, r := range sh.m {
		if r.hash.InHalfOpenInterval(from, to) {
			out = append(out, Entry{Key: k, Version: r.version, Value: r.value})
		}
	}
	sh.mu.Unlock()
	sortEntries(out)
	return out
}

// Entries returns every stored record, sorted by key. The sort makes
// iteration deterministic — handoff transfers derived from it must be
// byte-identical across simulation runs of one seed.
func (s *Store) Entries() []Entry {
	out := make([]Entry, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, r := range sh.m {
			out = append(out, Entry{Key: k, Version: r.version, Value: r.value})
		}
		sh.mu.Unlock()
	}
	sortEntries(out)
	return out
}

// ShardsInRange returns the indices of the shards whose span intersects
// the ring interval (from, to], ascending. When from == to the interval is
// the whole ring. Range iteration uses it to skip shards entirely outside
// the interval.
func ShardsInRange(from, to ident.Key) []int {
	out := make([]int, 0, ShardCount)
	for i := 0; i < ShardCount; i++ {
		if shardOverlaps(i, from, to) {
			out = append(out, i)
		}
	}
	return out
}

// shardOverlaps reports whether shard i's span [lo, hi] intersects the
// arc (from, to]. Shard spans never wrap; the arc may.
func shardOverlaps(i int, from, to ident.Key) bool {
	if from == to {
		return true // whole ring
	}
	lo, hi := ShardSpan(i)
	if from < to {
		return lo <= to && hi > from
	}
	// Arc wraps: (from, 2^64) ∪ [0, to].
	return hi > from || lo <= to
}

// EntriesInRange returns the stored records whose hashed key falls in the
// ring interval (from, to], sorted by key — the "covered key range" a
// handoff pull assembles. When from == to the interval is the whole ring.
// Only shards overlapping the interval are scanned.
func (s *Store) EntriesInRange(from, to ident.Key) []Entry {
	var out []Entry
	for _, i := range ShardsInRange(from, to) {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, r := range sh.m {
			if r.hash.InHalfOpenInterval(from, to) {
				out = append(out, Entry{Key: k, Version: r.version, Value: r.value})
			}
		}
		sh.mu.Unlock()
	}
	sortEntries(out)
	return out
}

func sortEntries(out []Entry) {
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
}
