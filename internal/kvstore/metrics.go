// Process-wide kvstore counters, following the internal/handoff pattern:
// plain atomics aggregated across every store in the process (one per node
// in simulations), exposed through the web metrics-source registry and the
// monitor's runtime rollups. Counters only ever grow — short-lived
// simulation stores come and go, so per-shard occupancy is exported as the
// monotone count of keys materialized per shard, and live per-store
// occupancy is read through Store.Stats where the store is at hand.
package kvstore

import (
	"strconv"
	"sync/atomic"

	"repro/internal/web"
)

var (
	storesTotal    atomic.Uint64
	readsTotal     atomic.Uint64
	appliesTotal   atomic.Uint64
	rejectedTotal  atomic.Uint64
	shardKeysTotal [ShardCount]atomic.Uint64
)

// Metrics is a snapshot of the process-wide kvstore counters.
type Metrics struct {
	// Stores is the number of stores created in this process.
	Stores uint64
	// Reads is the number of Read calls across all stores.
	Reads uint64
	// Applies is the number of writes that advanced a register version.
	Applies uint64
	// Rejected is the number of writes refused by the version gate.
	Rejected uint64
	// ShardKeys counts keys materialized per shard across all stores.
	ShardKeys [ShardCount]uint64
}

// GlobalMetrics snapshots the process-wide kvstore counters.
func GlobalMetrics() Metrics {
	m := Metrics{
		Stores:   storesTotal.Load(),
		Reads:    readsTotal.Load(),
		Applies:  appliesTotal.Load(),
		Rejected: rejectedTotal.Load(),
	}
	for i := range shardKeysTotal {
		m.ShardKeys[i] = shardKeysTotal[i].Load()
	}
	return m
}

func init() {
	web.RegisterMetricsSource("kvstore", func(m *web.MetricsWriter) {
		s := GlobalMetrics()
		m.Header("cats_kvstore_stores_total", "counter", "Stores created in this process.")
		m.Counter("cats_kvstore_stores_total", s.Stores)
		m.Header("cats_kvstore_reads_total", "counter", "Register reads across all stores.")
		m.Counter("cats_kvstore_reads_total", s.Reads)
		m.Header("cats_kvstore_applies_total", "counter", "Writes that advanced a register version.")
		m.Counter("cats_kvstore_applies_total", s.Applies)
		m.Header("cats_kvstore_rejected_total", "counter", "Writes refused by the version gate.")
		m.Counter("cats_kvstore_rejected_total", s.Rejected)
		m.Header("cats_kvstore_shard_keys_total", "counter", "Keys materialized per shard across all stores.")
		for i := range s.ShardKeys {
			m.Counter("cats_kvstore_shard_keys_total", s.ShardKeys[i], "shard", strconv.Itoa(i))
		}
	})
}
