// Process-wide kvstore counters, following the internal/handoff pattern:
// plain atomics aggregated across every store in the process (one per node
// in simulations), exposed through the web metrics-source registry and the
// monitor's runtime rollups. Counters only ever grow — short-lived
// simulation stores come and go, so per-shard occupancy is exported as the
// monotone count of keys materialized per shard, and live per-store
// occupancy is read through Store.Stats where the store is at hand.
package kvstore

import (
	"strconv"
	"sync/atomic"

	"repro/internal/web"
)

var (
	storesTotal    atomic.Uint64
	readsTotal     atomic.Uint64
	appliesTotal   atomic.Uint64
	rejectedTotal  atomic.Uint64
	shardKeysTotal [ShardCount]atomic.Uint64

	// WAL + snapshot counters (durable stores only). Appends/bytes/syncs
	// count the live write path; replays counts records replayed during
	// Open; truncations counts torn tails cut off during recovery.
	walAppendsTotal     atomic.Uint64
	walBytesTotal       atomic.Uint64
	walSyncsTotal       atomic.Uint64
	walReplaysTotal     atomic.Uint64
	walTruncationsTotal atomic.Uint64
	walErrorsTotal      atomic.Uint64
	snapshotsTotal      atomic.Uint64
	snapshotLastEntries atomic.Uint64
	snapshotLastBytes   atomic.Uint64
	durableStoresOpen   atomic.Uint64
)

// Metrics is a snapshot of the process-wide kvstore counters.
type Metrics struct {
	// Stores is the number of stores created in this process.
	Stores uint64
	// Reads is the number of Read calls across all stores.
	Reads uint64
	// Applies is the number of writes that advanced a register version.
	Applies uint64
	// Rejected is the number of writes refused by the version gate.
	Rejected uint64
	// ShardKeys counts keys materialized per shard across all stores.
	ShardKeys [ShardCount]uint64
	// WALAppends is the number of records appended to shard WALs.
	WALAppends uint64
	// WALBytes is the framed bytes appended to shard WALs.
	WALBytes uint64
	// WALSyncs is the number of fsyncs (per-append, group-commit, or
	// close-time).
	WALSyncs uint64
	// WALReplays is the number of records replayed from WAL tails at Open.
	WALReplays uint64
	// WALTruncations is the number of torn tails truncated at Open.
	WALTruncations uint64
	// WALErrors is the number of append/sync/snapshot I/O failures.
	WALErrors uint64
	// Snapshots is the number of shard snapshots written.
	Snapshots uint64
	// SnapshotLastEntries is the entry count of the most recent snapshot.
	SnapshotLastEntries uint64
	// SnapshotLastBytes is the byte size of the most recent snapshot.
	SnapshotLastBytes uint64
	// DurableStoresOpen is the number of durable stores currently open.
	DurableStoresOpen uint64
}

// GlobalMetrics snapshots the process-wide kvstore counters.
func GlobalMetrics() Metrics {
	m := Metrics{
		Stores:   storesTotal.Load(),
		Reads:    readsTotal.Load(),
		Applies:  appliesTotal.Load(),
		Rejected: rejectedTotal.Load(),
	}
	for i := range shardKeysTotal {
		m.ShardKeys[i] = shardKeysTotal[i].Load()
	}
	m.WALAppends = walAppendsTotal.Load()
	m.WALBytes = walBytesTotal.Load()
	m.WALSyncs = walSyncsTotal.Load()
	m.WALReplays = walReplaysTotal.Load()
	m.WALTruncations = walTruncationsTotal.Load()
	m.WALErrors = walErrorsTotal.Load()
	m.Snapshots = snapshotsTotal.Load()
	m.SnapshotLastEntries = snapshotLastEntries.Load()
	m.SnapshotLastBytes = snapshotLastBytes.Load()
	m.DurableStoresOpen = durableStoresOpen.Load()
	return m
}

func init() {
	web.RegisterMetricsSource("kvstore", func(m *web.MetricsWriter) {
		s := GlobalMetrics()
		m.Header("cats_kvstore_stores_total", "counter", "Stores created in this process.")
		m.Counter("cats_kvstore_stores_total", s.Stores)
		m.Header("cats_kvstore_reads_total", "counter", "Register reads across all stores.")
		m.Counter("cats_kvstore_reads_total", s.Reads)
		m.Header("cats_kvstore_applies_total", "counter", "Writes that advanced a register version.")
		m.Counter("cats_kvstore_applies_total", s.Applies)
		m.Header("cats_kvstore_rejected_total", "counter", "Writes refused by the version gate.")
		m.Counter("cats_kvstore_rejected_total", s.Rejected)
		m.Header("cats_kvstore_shard_keys_total", "counter", "Keys materialized per shard across all stores.")
		for i := range s.ShardKeys {
			m.Counter("cats_kvstore_shard_keys_total", s.ShardKeys[i], "shard", strconv.Itoa(i))
		}
		m.Header("cats_wal_appends_total", "counter", "Records appended to shard write-ahead logs.")
		m.Counter("cats_wal_appends_total", s.WALAppends)
		m.Header("cats_wal_bytes_total", "counter", "Framed bytes appended to shard write-ahead logs.")
		m.Counter("cats_wal_bytes_total", s.WALBytes)
		m.Header("cats_wal_syncs_total", "counter", "WAL fsyncs (per-append, group-commit, or close-time).")
		m.Counter("cats_wal_syncs_total", s.WALSyncs)
		m.Header("cats_wal_replays_total", "counter", "Records replayed from WAL tails during recovery.")
		m.Counter("cats_wal_replays_total", s.WALReplays)
		m.Header("cats_wal_truncations_total", "counter", "Torn WAL tails truncated during recovery.")
		m.Counter("cats_wal_truncations_total", s.WALTruncations)
		m.Header("cats_wal_errors_total", "counter", "WAL append/sync/snapshot I/O failures.")
		m.Counter("cats_wal_errors_total", s.WALErrors)
		m.Header("cats_wal_snapshots_total", "counter", "Shard snapshots written.")
		m.Counter("cats_wal_snapshots_total", s.Snapshots)
		m.Header("cats_snapshot_last_entries", "gauge", "Entry count of the most recent shard snapshot.")
		m.Gauge("cats_snapshot_last_entries", float64(s.SnapshotLastEntries))
		m.Header("cats_snapshot_last_bytes", "gauge", "Byte size of the most recent shard snapshot.")
		m.Gauge("cats_snapshot_last_bytes", float64(s.SnapshotLastBytes))
		m.Header("cats_wal_open_stores", "gauge", "Durable stores currently open in this process.")
		m.Gauge("cats_wal_open_stores", float64(s.DurableStoresOpen))
	})
}
