package kvstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/ident"
)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func expectValue(t *testing.T, s *Store, key string, v Version, value string) {
	t.Helper()
	gv, gval, ok := s.Read(key)
	if !ok {
		t.Fatalf("key %q: not found, want version %s value %q", key, v, value)
	}
	if gv != v || string(gval) != value {
		t.Fatalf("key %q: got (%s, %q), want (%s, %q)", key, gv, gval, v, value)
	}
}

// A durable store must recover exactly the accepted writes — including
// overwrites, where only the newest version survives — across a clean
// close and reopen.
func TestWALRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Sync: SyncAlways})
	if !s.Durable() || s.Dir() != dir {
		t.Fatalf("Durable()=%v Dir()=%q, want durable store at %q", s.Durable(), s.Dir(), dir)
	}
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i, k := range keys {
		if ok, err := s.ApplyDurable(k, Version{Seq: 1, Writer: 7}, []byte("v1-"+k)); !ok || err != nil {
			t.Fatalf("apply %q: ok=%v err=%v", k, ok, err)
		}
		if i%2 == 0 { // overwrite some
			if ok, err := s.ApplyDurable(k, Version{Seq: 2, Writer: 9}, []byte("v2-"+k)); !ok || err != nil {
				t.Fatalf("overwrite %q: ok=%v err=%v", k, ok, err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := mustOpen(t, dir, Options{Sync: SyncAlways})
	defer r.Close()
	rec := r.Recovery()
	if rec.WALEntries != 8 || rec.TornTails != 0 || rec.Keys != len(keys) {
		t.Fatalf("recovery = %+v, want 8 wal entries, 0 torn tails, %d keys", rec, len(keys))
	}
	for i, k := range keys {
		if i%2 == 0 {
			expectValue(t, r, k, Version{Seq: 2, Writer: 9}, "v2-"+k)
		} else {
			expectValue(t, r, k, Version{Seq: 1, Writer: 7}, "v1-"+k)
		}
	}
	// Writes keep flowing after recovery, into the same logs.
	if ok, err := r.ApplyDurable("zeta", Version{Seq: 5, Writer: 1}, []byte("post")); !ok || err != nil {
		t.Fatalf("post-recovery apply: ok=%v err=%v", ok, err)
	}
}

// A torn final record — the crash artifact a partial write leaves — must
// be detected via CRC/length and truncated, keeping every record before
// it. Covers three tear shapes: partial header, partial payload, and a
// corrupted (bit-flipped) payload.
func TestWALCorruptTailTruncated(t *testing.T) {
	tears := []struct {
		name string
		tear func(t *testing.T, path string)
	}{
		{"partial-header", func(t *testing.T, path string) { appendJunk(t, path, []byte{0x10, 0x00, 0x00}) }},
		{"partial-payload", func(t *testing.T, path string) {
			// Valid-looking header promising 64 payload bytes, then only 5.
			appendJunk(t, path, []byte{64, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5})
		}},
		{"crc-mismatch", func(t *testing.T, path string) {
			flipLastByte(t, path)
		}},
	}
	for _, tc := range tears {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, Options{Sync: SyncAlways})
			good := Version{Seq: 3, Writer: 2}
			for _, k := range []string{"kept-a", "kept-b"} {
				if ok, err := s.ApplyDurable(k, good, []byte("survives")); !ok || err != nil {
					t.Fatalf("apply %q: ok=%v err=%v", k, ok, err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			// Both keys hash into some shard(s); tear every non-empty log.
			torn := 0
			for si := 0; si < ShardCount; si++ {
				p := walPath(dir, si)
				if fi, err := os.Stat(p); err == nil && fi.Size() > 0 {
					tc.tear(t, p)
					torn++
				}
			}
			if torn == 0 {
				t.Fatal("no non-empty shard logs to tear")
			}

			r := mustOpen(t, dir, Options{Sync: SyncAlways})
			defer r.Close()
			rec := r.Recovery()
			if rec.TornTails != torn {
				t.Fatalf("recovery = %+v, want %d torn tails", rec, torn)
			}
			if tc.name == "crc-mismatch" {
				// The flipped byte corrupts the last whole record; the rest
				// survive. Either kept key may be the victim depending on
				// shard/order, so just assert the store is smaller by the
				// number of torn logs and every surviving value is intact.
				if rec.Keys != 2-torn && rec.Keys != 2 {
					t.Fatalf("recovery keys = %d after crc tear (torn=%d)", rec.Keys, torn)
				}
			} else {
				if rec.Keys != 2 {
					t.Fatalf("recovery keys = %d, want 2 (tears were pure junk tails)", rec.Keys)
				}
				expectValue(t, r, "kept-a", good, "survives")
				expectValue(t, r, "kept-b", good, "survives")
			}
			// The torn bytes are gone from disk: a second recovery sees a
			// clean log.
			if err := r.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			r2 := mustOpen(t, dir, Options{Sync: SyncAlways})
			defer r2.Close()
			if rec2 := r2.Recovery(); rec2.TornTails != 0 {
				t.Fatalf("second recovery still torn: %+v", rec2)
			}
		})
	}
}

func appendJunk(t *testing.T, path string, junk []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	if _, err := f.Write(junk); err != nil {
		t.Fatalf("write junk: %v", err)
	}
	f.Close()
}

func flipLastByte(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatalf("rewrite %s: %v", path, err)
	}
}

// Once a shard's log crosses SnapshotBytes, the shard is snapshotted and
// its log truncated; recovery then loads snapshot + (short) tail and the
// data directory stays bounded.
func TestSnapshotTruncatesLogAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Sync: SyncAlways, SnapshotBytes: 256})
	val := bytes.Repeat([]byte("x"), 64)
	// Same key over and over: all appends land in one shard, the log
	// grows past 256B repeatedly, and each snapshot holds one entry.
	for seq := uint64(1); seq <= 40; seq++ {
		if ok, err := s.ApplyDurable("hot", Version{Seq: seq, Writer: 1}, val); !ok || err != nil {
			t.Fatalf("apply seq %d: ok=%v err=%v", seq, ok, err)
		}
	}
	si := ShardOf(ident.KeyOfString("hot"))
	snaps, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshots on disk = %v (err %v), want exactly one", snaps, err)
	}
	if fi, err := os.Stat(walPath(dir, si)); err != nil || fi.Size() >= 256+int64(len(val)) {
		t.Fatalf("wal size = %v (err %v): log not truncated after snapshot", fi, err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := mustOpen(t, dir, Options{Sync: SyncAlways, SnapshotBytes: 256})
	defer r.Close()
	rec := r.Recovery()
	if rec.SnapshotsLoaded != 1 || rec.SnapshotEntries != 1 {
		t.Fatalf("recovery = %+v, want 1 snapshot with 1 entry", rec)
	}
	expectValue(t, r, "hot", Version{Seq: 40, Writer: 1}, string(val))
}

// Crash models power loss: under SyncAlways nothing is lost; under
// SyncNever un-synced appends vanish back to the last snapshot/sync
// watermark. This is the loss window each policy buys.
func TestCrashLossWindowPerSyncPolicy(t *testing.T) {
	t.Run("always-keeps-everything", func(t *testing.T) {
		dir := t.TempDir()
		s := mustOpen(t, dir, Options{Sync: SyncAlways})
		if ok, err := s.ApplyDurable("k", Version{Seq: 1, Writer: 1}, []byte("acked")); !ok || err != nil {
			t.Fatalf("apply: ok=%v err=%v", ok, err)
		}
		if err := s.Crash(); err != nil {
			t.Fatalf("Crash: %v", err)
		}
		r := mustOpen(t, dir, Options{Sync: SyncAlways})
		defer r.Close()
		expectValue(t, r, "k", Version{Seq: 1, Writer: 1}, "acked")
	})
	t.Run("never-loses-unsynced", func(t *testing.T) {
		dir := t.TempDir()
		s := mustOpen(t, dir, Options{Sync: SyncNever})
		if ok, err := s.ApplyDurable("k", Version{Seq: 1, Writer: 1}, []byte("volatile")); !ok || err != nil {
			t.Fatalf("apply: ok=%v err=%v", ok, err)
		}
		if err := s.Crash(); err != nil {
			t.Fatalf("Crash: %v", err)
		}
		r := mustOpen(t, dir, Options{Sync: SyncNever})
		defer r.Close()
		if _, _, ok := r.Read("k"); ok {
			t.Fatal("un-synced write survived a power-loss crash under SyncNever")
		}
		if rec := r.Recovery(); rec.WALEntries != 0 || rec.TornTails != 0 {
			t.Fatalf("recovery = %+v, want empty clean log after durable-watermark truncation", rec)
		}
	})
	t.Run("closed-store-rejects-appends", func(t *testing.T) {
		dir := t.TempDir()
		s := mustOpen(t, dir, Options{})
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if ok, err := s.ApplyDurable("k", Version{Seq: 1, Writer: 1}, []byte("late")); ok || err == nil {
			t.Fatalf("apply after close: ok=%v err=%v, want rejected with error", ok, err)
		}
	})
}

// Group commit: the interval syncer makes appends durable without
// per-append fsyncs — after Close (which flushes), a crash-free reopen
// sees everything.
func TestSyncIntervalFlushesOnClose(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Sync: SyncInterval, SyncEvery: time.Hour}) // ticker never fires in-test
	for seq := uint64(1); seq <= 10; seq++ {
		if ok, err := s.ApplyDurable("gc", Version{Seq: seq, Writer: 3}, []byte("grouped")); !ok || err != nil {
			t.Fatalf("apply: ok=%v err=%v", ok, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	expectValue(t, r, "gc", Version{Seq: 10, Writer: 3}, "grouped")
}

// Recovery progress is observable per shard, in shard order, and strictly
// before Open returns — the hook the replay-before-serve tests build on.
func TestRecoveryObserverOrdering(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Sync: SyncAlways})
	for _, k := range []string{"a", "b", "c", "d"} {
		s.Apply(k, Version{Seq: 1, Writer: 1}, []byte(k))
	}
	s.Close()

	var order []int
	total := 0
	r, err := Open(dir, Options{OnShardRecovered: func(shard, snapEntries, walEntries int, torn bool) {
		order = append(order, shard)
		total += snapEntries + walEntries
		if torn {
			t.Errorf("shard %d reported torn on a clean log", shard)
		}
	}})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if len(order) != ShardCount {
		t.Fatalf("observer called %d times, want %d", len(order), ShardCount)
	}
	for i, si := range order {
		if si != i {
			t.Fatalf("observer order %v, want shard order", order)
		}
	}
	if total != 4 {
		t.Fatalf("observer saw %d recovered entries, want 4", total)
	}
}
