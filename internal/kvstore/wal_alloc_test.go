package kvstore

import (
	"testing"
	"time"
)

// TestWALAppendSteadyStateAllocs pins the durable write path's allocation
// behavior: once the pooled encode buffer has grown to the record size,
// a steady-state ApplyDurable — frame encode, file write, memtable
// update of an existing key — allocates nothing beyond the entry payload
// the caller already owns. Same contract as the dispatch hot path, gated
// in the CI alloc job. SyncNever isolates the append path (fsync cost is
// a policy choice, not an allocation).
func TestWALAppendSteadyStateAllocs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNever, SnapshotBytes: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	value := make([]byte, 128) // reused: the payload is the caller's allocation
	seq := uint64(0)
	apply := func() {
		seq++
		if ok, err := s.ApplyDurable("steady-key", Version{Seq: seq, Writer: 42}, value); !ok || err != nil {
			t.Fatalf("apply seq %d: ok=%v err=%v", seq, ok, err)
		}
	}
	// Warm up: grow the pooled buffer and materialize the key.
	for i := 0; i < 64; i++ {
		apply()
	}
	if allocs := testing.AllocsPerRun(500, apply); allocs > 0 {
		t.Fatalf("steady-state WAL append allocates %.1f objects/op, want 0", allocs)
	}
}

// The group-commit syncer must not allocate per round either — it runs
// forever at the sync interval.
func TestWALGroupSyncAllocs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncInterval, SyncEvery: time.Hour, SnapshotBytes: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	value := make([]byte, 32)
	round := func() {
		if ok, err := s.ApplyDurable("gc-key", Version{Seq: uint64(time.Now().UnixNano()), Writer: 1}, value); !ok || err != nil {
			t.Fatalf("apply: ok=%v err=%v", ok, err)
		}
		for i := range s.dur.shards {
			s.dur.shards[i].groupSync()
		}
	}
	round()
	if allocs := testing.AllocsPerRun(200, round); allocs > 0 {
		t.Fatalf("group-commit sync allocates %.1f objects/op, want 0", allocs)
	}
}
