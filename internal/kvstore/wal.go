// Write-ahead log: the durability layer under the sharded store. Each of
// the ShardCount ring-span shards owns one append-only log file; the
// in-memory shard maps act as memtables in front of them. A write is
// framed, appended to its shard's log, and only then materialized in the
// map — so an acknowledged write is on disk before the ack leaves the
// node (under SyncAlways it is also fsynced; under SyncInterval a
// background group-commit bounds the loss window; under SyncNever the OS
// decides).
//
// Frame layout, designed for cheap torn-tail detection:
//
//	[4B little-endian payload length][4B little-endian CRC32(payload)][payload]
//
// Payload encoding is hand-rolled (uvarint key length, key bytes, uvarint
// seq, uvarint writer, uvarint value length, value bytes) into pooled
// scratch buffers — the same pooled-buffer idiom as the codec hot path —
// so a steady-state append allocates nothing beyond the entry payload the
// caller already owns.
//
// Recovery replays snapshot + WAL tail per shard (see snapshot.go and
// Open in durable.go). A torn final record — short header, short payload,
// or CRC mismatch — marks the end of the usable log: the file is
// truncated back to the last whole record and replay stops. Records are
// applied through the same version gate as live writes, so replaying a
// log that overlaps a snapshot (crash between snapshot rename and log
// truncation) is harmless.
package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

const (
	// frameHeader is [len u32le][crc u32le].
	frameHeader = 8
	// maxFrame bounds a single record so a corrupt length field cannot
	// drive replay into a multi-gigabyte read.
	maxFrame = 64 << 20
)

// errWALClosed is returned by appends after Close or Crash.
var errWALClosed = errors.New("kvstore: wal closed")

// walBuf is a pooled encode scratch buffer (pointer-to-struct so Put does
// not allocate an interface box).
type walBuf struct{ b []byte }

var walBufPool = sync.Pool{New: func() any { return &walBuf{b: make([]byte, 0, 512)} }}

// appendFrame appends one framed record for (key, v, value) to b.
func appendFrame(b []byte, key string, v Version, value []byte) []byte {
	start := len(b)
	// Reserve the header; filled in once the payload length is known.
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0)
	b = binary.AppendUvarint(b, uint64(len(key)))
	b = append(b, key...)
	b = binary.AppendUvarint(b, v.Seq)
	b = binary.AppendUvarint(b, v.Writer)
	b = binary.AppendUvarint(b, uint64(len(value)))
	b = append(b, value...)
	payload := b[start+frameHeader:]
	binary.LittleEndian.PutUint32(b[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[start+4:], crc32.ChecksumIEEE(payload))
	return b
}

// decodePayload parses one record payload. The returned key and value
// alias freshly allocated memory (replay-only path; never hot).
func decodePayload(p []byte) (key string, v Version, value []byte, err error) {
	kl, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < kl {
		return "", Version{}, nil, errors.New("kvstore: wal record: bad key length")
	}
	p = p[n:]
	key = string(p[:kl])
	p = p[kl:]
	if v.Seq, n = binary.Uvarint(p); n <= 0 {
		return "", Version{}, nil, errors.New("kvstore: wal record: bad seq")
	}
	p = p[n:]
	if v.Writer, n = binary.Uvarint(p); n <= 0 {
		return "", Version{}, nil, errors.New("kvstore: wal record: bad writer")
	}
	p = p[n:]
	vl, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) != vl {
		return "", Version{}, nil, errors.New("kvstore: wal record: bad value length")
	}
	value = append([]byte(nil), p[n:]...)
	return key, v, value, nil
}

// walShard is the durable half of one shard: its log file plus the
// appended/durable byte watermarks. appended is how far the log has been
// written; durable is how far it has been fsynced — the watermark a
// simulated power-loss crash truncates back to (see Store.Crash). Guarded
// by its own mutex because the group-commit syncer touches it from
// outside the shard's map lock.
type walShard struct {
	mu       sync.Mutex
	f        *os.File
	appended int64
	durable  int64
	dirty    bool // bytes appended since the last fsync
}

// append frames and writes one record, honoring the sync policy. Called
// with the owning shard's map lock held, so records within a shard are
// totally ordered. Reports whether the shard's log has grown past the
// snapshot threshold.
func (w *walShard) append(key string, v Version, value []byte, sync bool, snapshotBytes int64) (needSnap bool, err error) {
	buf := walBufPool.Get().(*walBuf)
	buf.b = appendFrame(buf.b[:0], key, v, value)
	w.mu.Lock()
	if w.f == nil {
		w.mu.Unlock()
		walBufPool.Put(buf)
		return false, errWALClosed
	}
	n, err := w.f.Write(buf.b)
	if err != nil {
		// A short write leaves a torn tail; recovery's CRC check will
		// truncate it. Do not advance the watermark past known-good bytes.
		w.mu.Unlock()
		walBufPool.Put(buf)
		walErrorsTotal.Add(1)
		return false, fmt.Errorf("kvstore: wal append: %w", err)
	}
	w.appended += int64(n)
	w.dirty = true
	if sync {
		if err := w.f.Sync(); err != nil {
			w.mu.Unlock()
			walBufPool.Put(buf)
			walErrorsTotal.Add(1)
			return false, fmt.Errorf("kvstore: wal sync: %w", err)
		}
		w.durable = w.appended
		w.dirty = false
		walSyncsTotal.Add(1)
	}
	needSnap = snapshotBytes > 0 && w.appended >= snapshotBytes
	w.mu.Unlock()
	walBufPool.Put(buf)
	walAppendsTotal.Add(1)
	walBytesTotal.Add(uint64(n))
	return needSnap, nil
}

// groupSync fsyncs the log if it has unflushed appends — one round of the
// group-commit policy. The fsync itself runs outside the lock so appends
// keep flowing; everything written before the fsync started is then known
// durable.
func (w *walShard) groupSync() {
	w.mu.Lock()
	if !w.dirty || w.f == nil {
		w.mu.Unlock()
		return
	}
	target := w.appended
	f := w.f
	w.mu.Unlock()
	if err := f.Sync(); err != nil {
		walErrorsTotal.Add(1)
		return
	}
	walSyncsTotal.Add(1)
	w.mu.Lock()
	if target > w.durable {
		w.durable = target
	}
	w.dirty = w.appended > w.durable
	w.mu.Unlock()
}

// replayWAL scans the log from the start, applying every whole,
// CRC-valid record, and returns the byte offset of the end of the last
// good record. torn reports whether a trailing partial or corrupt record
// was found (the caller truncates the file back to valid).
func replayWAL(f io.ReadSeeker, apply func(key string, v Version, value []byte)) (valid int64, entries int, torn bool, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, false, err
	}
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return valid, entries, false, nil // clean end
			}
			return valid, entries, true, nil // partial header: torn tail
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		want := binary.LittleEndian.Uint32(hdr[4:])
		if n == 0 || n > maxFrame {
			return valid, entries, true, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return valid, entries, true, nil // partial payload: torn tail
		}
		if crc32.ChecksumIEEE(payload) != want {
			return valid, entries, true, nil // bit rot or torn rewrite
		}
		key, v, value, err := decodePayload(payload)
		if err != nil {
			return valid, entries, true, nil
		}
		apply(key, v, value)
		valid += int64(frameHeader + int64(n))
		entries++
	}
}
