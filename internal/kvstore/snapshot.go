// Per-shard snapshots: the compaction half of the WAL lifecycle. When a
// shard's log grows past Options.SnapshotBytes, the shard's whole map —
// one contiguous ring span, the natural snapshot unit — is written to a
// temp file, fsynced, atomically renamed over shard-NN.snap, and the log
// is truncated to zero. Recovery loads the snapshot first, then replays
// the log tail over it; because replay goes through the same version
// gate as live writes, a crash between rename and truncation (snapshot
// and log both holding the same records) is harmless.
package kvstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// snapMagic heads every snapshot file; a file without it is rejected
// rather than replayed as garbage.
var snapMagic = []byte("KVSNAP01")

func walPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%02d.wal", shard))
}

func snapPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%02d.snap", shard))
}

// writeSnapshot persists entries (sorted by key for byte-stable output)
// using the same framed record encoding as the WAL, via temp file +
// fsync + rename + directory fsync.
func writeSnapshot(dir string, shard int, entries []Entry) (bytes int64, err error) {
	sortEntries(entries)
	tmp := snapPath(dir, shard) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp) // no-op after a successful rename
	buf := walBufPool.Get().(*walBuf)
	buf.b = append(buf.b[:0], snapMagic...)
	for _, e := range entries {
		buf.b = appendFrame(buf.b, e.Key, e.Version, e.Value)
	}
	n, err := f.Write(buf.b)
	bytes = int64(n)
	walBufPool.Put(buf)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return bytes, err
	}
	if err := os.Rename(tmp, snapPath(dir, shard)); err != nil {
		return bytes, err
	}
	return bytes, syncDir(dir)
}

// loadSnapshot reads shard i's snapshot, if present, applying every
// record. Returns the number of entries loaded (0, false if no snapshot
// exists).
func loadSnapshot(dir string, shard int, apply func(key string, v Version, value []byte)) (entries int, loaded bool, err error) {
	f, err := os.Open(snapPath(dir, shard))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, err
	}
	defer f.Close()
	magic := make([]byte, len(snapMagic))
	if _, err := f.Read(magic); err != nil || string(magic) != string(snapMagic) {
		return 0, false, fmt.Errorf("kvstore: snapshot %s: bad magic", snapPath(dir, shard))
	}
	// Snapshots are written atomically (temp + rename), so unlike the WAL
	// a torn record here is corruption, not an expected crash artifact.
	r := &snapReader{f: f}
	valid, n, torn, err := replayWAL(r, apply)
	if err != nil {
		return n, true, err
	}
	if torn {
		return n, true, fmt.Errorf("kvstore: snapshot %s: corrupt record at offset %d", snapPath(dir, shard), valid+int64(len(snapMagic)))
	}
	return n, true, nil
}

// snapReader adapts the snapshot file (past its magic header) to the
// *os.File shape replayWAL wants: Seek(0) lands just after the magic.
type snapReader struct{ f *os.File }

func (s *snapReader) Read(p []byte) (int, error) { return s.f.Read(p) }

func (s *snapReader) Seek(offset int64, whence int) (int64, error) {
	return s.f.Seek(offset+int64(len(snapMagic)), whence)
}

// syncDir fsyncs a directory so a just-renamed snapshot survives power
// loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// sortedShardEntries collects a shard map's records sorted by key.
// Callers hold the shard's map lock.
func sortedShardEntries(m map[string]record) []Entry {
	out := make([]Entry, 0, len(m))
	for k, r := range m {
		out = append(out, Entry{Key: k, Version: r.version, Value: r.value})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
