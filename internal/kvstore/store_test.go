package kvstore

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ident"
)

func TestEntriesSortedAndComplete(t *testing.T) {
	s := New()
	keys := []string{"delta", "alpha", "charlie", "bravo"}
	for i, k := range keys {
		if !s.Apply(k, Version{Seq: uint64(i + 1), Writer: 7}, []byte(k)) {
			t.Fatalf("apply %q rejected", k)
		}
	}
	es := s.Entries()
	if len(es) != len(keys) {
		t.Fatalf("entries %d, want %d", len(es), len(keys))
	}
	for i := 1; i < len(es); i++ {
		if es[i-1].Key >= es[i].Key {
			t.Fatalf("entries not sorted: %q >= %q", es[i-1].Key, es[i].Key)
		}
	}
	if es[0].Key != "alpha" || string(es[0].Value) != "alpha" {
		t.Fatalf("first entry %+v", es[0])
	}
}

func TestEntriesInRangeFiltersByHashedKey(t *testing.T) {
	s := New()
	const n = 64
	for i := 0; i < n; i++ {
		s.Apply(fmt.Sprintf("k-%d", i), Version{Seq: 1, Writer: 1}, nil)
	}
	// Split the ring at an arbitrary point: the two half-open halves must
	// partition the key set exactly.
	mid := ident.Key(1) << 63
	lo := s.EntriesInRange(0, mid)
	hi := s.EntriesInRange(mid, 0)
	if len(lo)+len(hi) != n {
		t.Fatalf("halves %d+%d, want %d", len(lo), len(hi), n)
	}
	for _, e := range lo {
		if !ident.KeyOfString(e.Key).InHalfOpenInterval(0, mid) {
			t.Fatalf("entry %q outside (0, mid]", e.Key)
		}
	}
	// A full-ring interval (from == to) returns everything.
	if all := s.EntriesInRange(42, 42); len(all) != n {
		t.Fatalf("full ring %d, want %d", len(all), n)
	}
	// Deterministic order.
	for i := 1; i < len(lo); i++ {
		if lo[i-1].Key >= lo[i].Key {
			t.Fatalf("range entries not sorted")
		}
	}
}

// The store is shared between the ABD replica and the handoff component of
// one node, which run on different scheduler workers: concurrent reads,
// writes, and range iterations must be safe (run under -race).
func TestConcurrentApplyAndIterate(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Apply(fmt.Sprintf("k-%d", i%32), Version{Seq: uint64(i + 1), Writer: uint64(w)}, []byte{byte(i)})
				if i%16 == 0 {
					_ = s.Entries()
					_ = s.EntriesInRange(0, ident.Key(1)<<63)
					_, _, _ = s.Read(fmt.Sprintf("k-%d", i%32))
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 32 {
		t.Fatalf("len %d, want 32", s.Len())
	}
}
