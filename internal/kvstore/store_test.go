package kvstore

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ident"
)

func TestEntriesSortedAndComplete(t *testing.T) {
	s := New()
	keys := []string{"delta", "alpha", "charlie", "bravo"}
	for i, k := range keys {
		if !s.Apply(k, Version{Seq: uint64(i + 1), Writer: 7}, []byte(k)) {
			t.Fatalf("apply %q rejected", k)
		}
	}
	es := s.Entries()
	if len(es) != len(keys) {
		t.Fatalf("entries %d, want %d", len(es), len(keys))
	}
	for i := 1; i < len(es); i++ {
		if es[i-1].Key >= es[i].Key {
			t.Fatalf("entries not sorted: %q >= %q", es[i-1].Key, es[i].Key)
		}
	}
	if es[0].Key != "alpha" || string(es[0].Value) != "alpha" {
		t.Fatalf("first entry %+v", es[0])
	}
}

func TestEntriesInRangeFiltersByHashedKey(t *testing.T) {
	s := New()
	const n = 64
	for i := 0; i < n; i++ {
		s.Apply(fmt.Sprintf("k-%d", i), Version{Seq: 1, Writer: 1}, nil)
	}
	// Split the ring at an arbitrary point: the two half-open halves must
	// partition the key set exactly.
	mid := ident.Key(1) << 63
	lo := s.EntriesInRange(0, mid)
	hi := s.EntriesInRange(mid, 0)
	if len(lo)+len(hi) != n {
		t.Fatalf("halves %d+%d, want %d", len(lo), len(hi), n)
	}
	for _, e := range lo {
		if !ident.KeyOfString(e.Key).InHalfOpenInterval(0, mid) {
			t.Fatalf("entry %q outside (0, mid]", e.Key)
		}
	}
	// A full-ring interval (from == to) returns everything.
	if all := s.EntriesInRange(42, 42); len(all) != n {
		t.Fatalf("full ring %d, want %d", len(all), n)
	}
	// Deterministic order.
	for i := 1; i < len(lo); i++ {
		if lo[i-1].Key >= lo[i].Key {
			t.Fatalf("range entries not sorted")
		}
	}
}

// Shard iteration must partition the store exactly: every key lands in the
// shard its ring hash selects, per-shard iteration is key-sorted, and the
// concatenation of all shards equals the whole store.
func TestShardPartitioning(t *testing.T) {
	s := New()
	const n = 512
	for i := 0; i < n; i++ {
		s.Apply(fmt.Sprintf("k-%d", i), Version{Seq: 1, Writer: 1}, []byte{byte(i)})
	}
	if s.NumShards() != ShardCount {
		t.Fatalf("NumShards %d, want %d", s.NumShards(), ShardCount)
	}
	total := 0
	seen := make(map[string]bool, n)
	for i := 0; i < s.NumShards(); i++ {
		es := s.ShardEntries(i)
		if len(es) != s.ShardLen(i) {
			t.Fatalf("shard %d: entries %d != len %d", i, len(es), s.ShardLen(i))
		}
		total += len(es)
		for j, e := range es {
			if got := ShardOf(ident.KeyOfString(e.Key)); got != i {
				t.Fatalf("key %q in shard %d, hashes to %d", e.Key, i, got)
			}
			if j > 0 && es[j-1].Key >= e.Key {
				t.Fatalf("shard %d entries not sorted", i)
			}
			seen[e.Key] = true
		}
		lo, hi := ShardSpan(i)
		for _, e := range es {
			h := ident.KeyOfString(e.Key)
			if h < lo || h > hi {
				t.Fatalf("key %q hash %d outside shard %d span [%d, %d]", e.Key, h, i, lo, hi)
			}
		}
	}
	if total != n || len(seen) != n {
		t.Fatalf("shards cover %d keys (%d distinct), want %d", total, len(seen), n)
	}
	if st := s.Stats(); st.Keys != n || st.NonEmptyShards == 0 {
		t.Fatalf("stats %+v", st)
	}
}

// ShardsInRange must select exactly the shards holding keys of the
// interval: a range query over only those shards returns the same result as
// a brute-force full scan, for wrapping and non-wrapping arcs.
func TestShardsInRangeMatchesBruteForce(t *testing.T) {
	s := New()
	const n = 256
	for i := 0; i < n; i++ {
		s.Apply(fmt.Sprintf("k-%d", i), Version{Seq: 1, Writer: 1}, nil)
	}
	brute := func(from, to ident.Key) map[string]bool {
		out := make(map[string]bool)
		for _, e := range s.Entries() {
			if ident.KeyOfString(e.Key).InHalfOpenInterval(from, to) {
				out[e.Key] = true
			}
		}
		return out
	}
	arcs := []struct{ from, to ident.Key }{
		{0, 1 << 63},           // non-wrapping half
		{1 << 63, 0},           // other half
		{1 << 62, 3 << 62},     // middle
		{3 << 62, 1 << 62},     // wrapping
		{42, 42},               // whole ring
		{1<<60 + 5, 1<<60 + 6}, // tiny arc inside one shard
		{^ident.Key(0) - 3, 3}, // tiny wrapping arc
	}
	for _, a := range arcs {
		want := brute(a.from, a.to)
		got := s.EntriesInRange(a.from, a.to)
		if len(got) != len(want) {
			t.Fatalf("arc (%d, %d]: got %d entries, want %d", a.from, a.to, len(got), len(want))
		}
		for _, e := range got {
			if !want[e.Key] {
				t.Fatalf("arc (%d, %d]: unexpected key %q", a.from, a.to, e.Key)
			}
		}
		// Shard-level union must equal the store-level result too.
		var viaShards int
		for _, i := range ShardsInRange(a.from, a.to) {
			viaShards += len(s.ShardEntriesInRange(i, a.from, a.to))
		}
		if viaShards != len(want) {
			t.Fatalf("arc (%d, %d]: per-shard union %d, want %d", a.from, a.to, viaShards, len(want))
		}
	}
	// Skipping is real: a one-shard arc must not visit all shards.
	if got := ShardsInRange(1<<60+5, 1<<60+6); len(got) != 1 || got[0] != 1 {
		t.Fatalf("one-shard arc selected shards %v", got)
	}
}

// Version.String is used in hot-path error/trace strings; the strconv
// rendering must cost at most the single unavoidable string allocation.
func TestVersionStringAlloc(t *testing.T) {
	v := Version{Seq: 18446744073709551615, Writer: 9999999999999}
	if got, want := v.String(), "18446744073709551615.9999999999999"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	var sink string
	allocs := testing.AllocsPerRun(200, func() {
		sink = v.String()
	})
	_ = sink
	if allocs > 1 {
		t.Fatalf("Version.String allocs/op = %v, want <= 1", allocs)
	}
}

// The store is shared between the ABD replica and the handoff component of
// one node, which run on different scheduler workers: concurrent reads,
// writes, and range iterations must be safe (run under -race).
func TestConcurrentApplyAndIterate(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Apply(fmt.Sprintf("k-%d", i%32), Version{Seq: uint64(i + 1), Writer: uint64(w)}, []byte{byte(i)})
				if i%16 == 0 {
					_ = s.Entries()
					_ = s.EntriesInRange(0, ident.Key(1)<<63)
					_, _, _ = s.Read(fmt.Sprintf("k-%d", i%32))
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 32 {
		t.Fatalf("len %d, want 32", s.Len())
	}
}
