package tracing

import (
	"sync"
	"testing"
	"time"
)

func restoreSampling(t *testing.T) {
	t.Helper()
	prev := SampleEvery()
	t.Cleanup(func() { SetSampleEvery(prev) })
}

func TestSampling(t *testing.T) {
	restoreSampling(t)

	SetSampleEvery(64)
	if Sampled(1) || Sampled(63) || Sampled(65) {
		t.Fatal("off-mask sequence numbers must not sample at 1/64")
	}
	if !Sampled(64) || !Sampled(128) {
		t.Fatal("multiples of 64 must sample at 1/64")
	}

	SetSampleEvery(1)
	for n := uint64(1); n < 10; n++ {
		if !Sampled(n) {
			t.Fatalf("always-on sampling missed n=%d", n)
		}
	}

	SetSampleEvery(0)
	if Enabled() || Sampled(64) {
		t.Fatal("disabled tracing must sample nothing")
	}

	// Non-power-of-two periods round up.
	SetSampleEvery(100)
	if SampleEvery() != 128 {
		t.Fatalf("SampleEvery() = %d, want 128", SampleEvery())
	}
}

func TestIDSourceDeterministicAndUnique(t *testing.T) {
	a1 := NewIDSource("node-a")
	a2 := NewIDSource("node-a")
	b := NewIDSource("node-b")
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		x, y, z := a1.Next(), a2.Next(), b.Next()
		if x != y {
			t.Fatalf("same node+counter minted different IDs: %x vs %x", x, y)
		}
		if x == 0 || z == 0 {
			t.Fatal("minted a zero ID")
		}
		if seen[x] || seen[z] || x == z {
			t.Fatalf("duplicate ID minted at i=%d", i)
		}
		seen[x], seen[z] = true, true
	}
}

func TestRingWrapAndSnapshotOrder(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 40; i++ {
		r.Record(Span{Trace: 1, ID: uint64(i + 1)})
	}
	if r.Len() != 16 {
		t.Fatalf("Len() = %d, want 16", r.Len())
	}
	snap := r.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("snapshot holds %d spans, want 16", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq <= snap[i-1].Seq {
			t.Fatal("snapshot not ordered oldest-first by Seq")
		}
	}
	if snap[len(snap)-1].ID != 40 {
		t.Fatalf("newest span ID = %d, want 40", snap[len(snap)-1].ID)
	}
}

func TestRingConcurrentRecord(t *testing.T) {
	r := NewRing(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(Span{Trace: uint64(g + 1), ID: uint64(i + 1)})
			}
		}(g)
	}
	wg.Wait()
	if got := r.Recorded(); got != 1600 {
		t.Fatalf("Recorded() = %d, want 1600", got)
	}
	r.Snapshot() // must not race or panic
}

func TestAssembleJoinsAcrossNodes(t *testing.T) {
	t0 := time.Unix(0, 0)
	spans := []Span{
		{Trace: 7, ID: 1, Node: "a", Name: "op", Key: "k", Outcome: "ok", Start: t0, End: t0.Add(10 * time.Millisecond)},
		{Trace: 7, ID: 2, Parent: 1, Node: "a", Name: "attempt", Start: t0, End: t0.Add(4 * time.Millisecond)},
		{Trace: 7, ID: 3, Parent: 1, Link: 2, Node: "a", Name: "attempt", Start: t0.Add(4 * time.Millisecond), End: t0.Add(10 * time.Millisecond)},
		{Trace: 7, ID: 4, Parent: 3, Node: "b", Name: "serve.read", Start: t0.Add(6 * time.Millisecond), End: t0.Add(6 * time.Millisecond)},
		{Trace: 9, ID: 5, Node: "c", Name: "handoff.round", Start: t0.Add(time.Millisecond), End: t0.Add(2 * time.Millisecond)},
		{Trace: 0, ID: 6, Node: "x", Name: "noise"},
	}
	tls := Assemble(spans)
	if len(tls) != 2 {
		t.Fatalf("assembled %d timelines, want 2", len(tls))
	}
	tl := tls[0]
	if tl.Trace != 7 || tl.Name != "op" || tl.Key != "k" || tl.Outcome != "ok" {
		t.Fatalf("root metadata not joined: %+v", tl)
	}
	if tl.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", tl.Restarts)
	}
	if len(tl.Nodes) != 2 || tl.Nodes[0] != "a" || tl.Nodes[1] != "b" {
		t.Fatalf("Nodes = %v, want [a b]", tl.Nodes)
	}
	if tl.Duration != 10*time.Millisecond {
		t.Fatalf("Duration = %v, want 10ms", tl.Duration)
	}
	if !tl.HasPhase("serve.read") || tl.HasPhase("serve.write") {
		t.Fatal("HasPhase misreports")
	}

	SortSlowest(tls)
	if tls[0].Trace != 7 {
		t.Fatal("SortSlowest must put the 10ms trace first")
	}
}

func TestFormatParseID(t *testing.T) {
	id := uint64(0x0123456789abcdef)
	s := FormatID(id)
	if s != "0123456789abcdef" {
		t.Fatalf("FormatID = %q", s)
	}
	back, err := ParseID(s)
	if err != nil || back != id {
		t.Fatalf("ParseID(%q) = %x, %v", s, back, err)
	}
	if _, err := ParseID("zz"); err == nil {
		t.Fatal("ParseID must reject non-hex")
	}
}

func TestSwapDefault(t *testing.T) {
	fresh := NewRing(16)
	old := SwapDefault(fresh)
	defer SwapDefault(old)
	Record(Span{Trace: 1, ID: 1})
	if fresh.Len() != 1 {
		t.Fatal("Record must hit the swapped-in default ring")
	}
	if old.Len() != 0 && old == fresh {
		t.Fatal("old ring returned incorrectly")
	}
}
