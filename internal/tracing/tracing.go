// Package tracing is the cross-node span layer: trace contexts minted at
// the ABD coordinator ride every quorum-phase message (and coalesced batch
// frame), survive epoch restarts through explicit restart links, and stamp
// handoff rounds — so any sampled operation's full distributed timeline can
// be reassembled from the per-node span rings.
//
// The package is deliberately dependency-free inside the repo: wire
// messages embed tracing.Context, the network layer type-asserts
// tracing.Traced, and internal/web serves the default ring — none of which
// may cycle back here.
//
// Discipline mirrors the latency-sampling telemetry: sampling defaults to
// one in 64 operations, a zero TraceID means "unsampled", and every entry
// point short-circuits on zero without allocating. Only sampled spans pay
// one allocation (the ring slot's record).
package tracing

import (
	"sync/atomic"
	"time"
)

// Context is the trace identity carried on wire messages. A zero TraceID
// means the operation is unsampled and every tracing call is a no-op.
// Messages embed Context, which promotes TraceContext and makes them
// satisfy Traced — the transport annotates frames through that interface
// without importing the protocol packages.
type Context struct {
	TraceID uint64
	SpanID  uint64
}

// TraceContext returns the context itself; embedding Context in a message
// struct is all a protocol needs to make its frames traceable.
func (c Context) TraceContext() Context { return c }

// Sampled reports whether the context belongs to a sampled operation.
func (c Context) Sampled() bool { return c.TraceID != 0 }

// Traced is implemented (via embedded Context) by wire messages that carry
// a trace context. The TCP transport uses it to annotate outgoing frames.
type Traced interface {
	TraceContext() Context
}

// Span is one recorded unit of work inside a trace. Instant events (a
// replica serving a phase) have Start == End. Times come from the
// component's Ctx.Now(), so spans recorded under the deterministic
// simulation carry virtual timestamps and assemble identically per seed.
type Span struct {
	// Trace is the trace ID this span belongs to (non-zero).
	Trace uint64 `json:"trace"`
	// ID is the span's own ID (non-zero, unique within the trace).
	ID uint64 `json:"id"`
	// Parent is the parent span ID; zero for the trace's root span.
	Parent uint64 `json:"parent,omitempty"`
	// Link is the restart link: on a stale-epoch restart the new attempt
	// span links to the attempt it supersedes. Zero otherwise.
	Link uint64 `json:"link,omitempty"`
	// Node is the address of the node that recorded the span.
	Node string `json:"node"`
	// Name is the span's kind: "op", "attempt", "route", "read", "write",
	// "serve.read", "serve.write", "handoff.round", "net.send", …
	Name string `json:"name"`
	// Op is the coordinator-local operation ID (zero for non-op spans).
	Op uint64 `json:"op,omitempty"`
	// Key is the register key the operation targets, when known.
	Key string `json:"key,omitempty"`
	// Attempt is the wire-level attempt number the span served or ran.
	Attempt int `json:"attempt,omitempty"`
	// Epoch is the group-view epoch the span ran in.
	Epoch uint64 `json:"epoch,omitempty"`
	// Outcome classifies how the span ended: "ok", "restart", "timeout",
	// "fail", "nack-stale", "nack-busy", "partial", …
	Outcome string `json:"outcome,omitempty"`
	// Start and End bound the span (virtual time under simulation).
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Seq is the ring-assigned record order (process-local).
	Seq uint64 `json:"seq"`
}

// Duration returns the span's length (zero for instant spans).
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// --- sampling -------------------------------------------------------------------

// sampleEvery holds the process-wide sampling period: 0 disables tracing,
// 1 traces every operation, any other value is rounded up to a power of
// two and traces one operation in that many. Defaults to 64, matching the
// latency-sampling mask in the core telemetry.
var sampleEvery atomic.Uint64

func init() { sampleEvery.Store(64) }

// SetSampleEvery configures the sampling period: n <= 0 disables tracing,
// 1 samples every operation, other values round up to the next power of
// two. Returns the previous period so callers (benchmarks, chaos runs) can
// restore it.
func SetSampleEvery(n int) int {
	prev := sampleEvery.Load()
	switch {
	case n <= 0:
		sampleEvery.Store(0)
	default:
		p := uint64(1)
		for p < uint64(n) {
			p <<= 1
		}
		sampleEvery.Store(p)
	}
	return int(prev)
}

// SampleEvery returns the current sampling period (0 = disabled).
func SampleEvery() int { return int(sampleEvery.Load()) }

// Enabled reports whether tracing is on at all.
func Enabled() bool { return sampleEvery.Load() != 0 }

// Sampled decides whether the n-th operation of a sequence is traced. The
// period is a power of two, so this is one load, one mask, one compare on
// the unsampled hot path.
func Sampled(n uint64) bool {
	e := sampleEvery.Load()
	return e != 0 && n&(e-1) == 0
}

// --- ID minting -----------------------------------------------------------------

// IDSource mints trace and span IDs for one component. IDs mix a hash of
// the owning node's address with a serial counter through a splitmix64
// finalizer: deterministic under the simulation's serial scheduler (no
// wall clock, no crypto randomness — the seeded trace digest must stay
// byte-identical), unique across nodes with overwhelming probability, and
// safe for concurrent minting (the transport records send spans from
// per-peer goroutines).
type IDSource struct {
	node uint64
	n    atomic.Uint64
}

// NewIDSource creates an ID source for the node with the given address.
func NewIDSource(node string) *IDSource {
	return &IDSource{node: fnv64a(node)}
}

// Next mints the source's next non-zero ID.
func (s *IDSource) Next() uint64 {
	id := mix64(s.node ^ s.n.Add(1)*0x9E3779B97F4A7C15)
	if id == 0 {
		id = 1
	}
	return id
}

func fnv64a(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// --- span statistics ------------------------------------------------------------

var (
	spansRecorded atomic.Uint64
	spansDropped  atomic.Uint64 // recorded over an occupied slot (ring wrap)
)

// Stats reports process-wide span accounting: spans recorded into the
// default ring and spans evicted by ring wrap-around.
func Stats() (recorded, dropped uint64) {
	return spansRecorded.Load(), spansDropped.Load()
}
