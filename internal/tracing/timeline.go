package tracing

import (
	"fmt"
	"sort"
	"strconv"
	"time"
)

// Timeline is one operation's assembled cross-node view: every span
// sharing a trace ID, joined from any number of node rings, ordered by
// start time. This is the unit the monitor serves at /traces and the
// chaos report cites on violations.
type Timeline struct {
	// Trace is the trace ID, also rendered as TraceHex for humans.
	Trace    uint64 `json:"trace"`
	TraceHex string `json:"trace_hex"`
	// Name/Key/Outcome come from the root span (the coordinator's op
	// span), when present.
	Name    string `json:"name,omitempty"`
	Key     string `json:"key,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	// Start/End bound the whole timeline; Duration = End − Start.
	Start    time.Time     `json:"start"`
	End      time.Time     `json:"end"`
	Duration time.Duration `json:"duration_ns"`
	// Restarts counts restart links (epoch-restart hops) in the trace.
	Restarts int `json:"restarts"`
	// Nodes lists every node that contributed a span, sorted.
	Nodes []string `json:"nodes"`
	// Spans holds the joined spans ordered by (Start, Seq, ID).
	Spans []Span `json:"spans"`
}

// FormatID renders a trace or span ID the way every endpoint and tool
// prints it: 16 lowercase hex digits.
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseID parses a FormatID-rendered (or any hex) trace ID.
func ParseID(s string) (uint64, error) {
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("tracing: bad trace id %q: %w", s, err)
	}
	return id, nil
}

// Assemble joins spans by trace ID into per-operation timelines. Spans
// with a zero trace ID are ignored. The result is deterministic for a
// deterministic span set: spans order by (Start, Seq, ID) within a
// timeline, and timelines order by start time (ties by trace ID).
func Assemble(spans []Span) []Timeline {
	byTrace := make(map[uint64][]Span)
	for _, s := range spans {
		if s.Trace == 0 {
			continue
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	out := make([]Timeline, 0, len(byTrace))
	for id, ss := range byTrace {
		sort.Slice(ss, func(i, j int) bool {
			if !ss[i].Start.Equal(ss[j].Start) {
				return ss[i].Start.Before(ss[j].Start)
			}
			if ss[i].Seq != ss[j].Seq {
				return ss[i].Seq < ss[j].Seq
			}
			return ss[i].ID < ss[j].ID
		})
		tl := Timeline{Trace: id, TraceHex: FormatID(id), Start: ss[0].Start, End: ss[0].End}
		nodes := map[string]bool{}
		for _, s := range ss {
			if s.End.After(tl.End) {
				tl.End = s.End
			}
			if s.Link != 0 {
				tl.Restarts++
			}
			if s.Parent == 0 && tl.Name == "" {
				tl.Name, tl.Key, tl.Outcome = s.Name, s.Key, s.Outcome
			}
			nodes[s.Node] = true
		}
		for n := range nodes {
			tl.Nodes = append(tl.Nodes, n)
		}
		sort.Strings(tl.Nodes)
		tl.Duration = tl.End.Sub(tl.Start)
		tl.Spans = ss
		out = append(out, tl)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].Trace < out[j].Trace
	})
	return out
}

// SortSlowest reorders timelines slowest-first (ties by trace ID, so the
// order is stable under deterministic inputs).
func SortSlowest(tls []Timeline) {
	sort.Slice(tls, func(i, j int) bool {
		if tls[i].Duration != tls[j].Duration {
			return tls[i].Duration > tls[j].Duration
		}
		return tls[i].Trace < tls[j].Trace
	})
}

// HasPhase reports whether any span in the timeline carries the given
// name (phase filter on /traces).
func (t Timeline) HasPhase(name string) bool {
	for _, s := range t.Spans {
		if s.Name == name {
			return true
		}
	}
	return false
}
