package tracing

import (
	"sort"
	"sync/atomic"
)

// Ring is a lock-free fixed-size span buffer, the core.TraceRing idiom
// applied to spans: writers atomically claim a monotonically increasing
// sequence number and publish into slot seq&mask, so concurrent recorders
// never block and the ring always holds the most recent Cap() spans.
// Snapshot is safe to call concurrently with recording.
type Ring struct {
	mask  uint64
	next  atomic.Uint64
	slots []atomic.Pointer[Span]
}

// DefaultRingSize is the per-process default span capacity. At the default
// 1/64 sampling a sampled op emits on the order of ten spans, so 4096
// slots hold the last few hundred sampled operations' worth of history —
// enough for the monitor's scrape period — in ~400 KiB of pointers+spans.
const DefaultRingSize = 4096

// NewRing creates a ring holding at least capacity spans (rounded up to a
// power of two, minimum 16).
func NewRing(capacity int) *Ring {
	size := uint64(16)
	for size < uint64(capacity) {
		size <<= 1
	}
	return &Ring{
		mask:  size - 1,
		slots: make([]atomic.Pointer[Span], size),
	}
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Len returns the number of spans currently held.
func (r *Ring) Len() int {
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		n = uint64(len(r.slots))
	}
	return int(n)
}

// Recorded returns the total number of spans ever recorded.
func (r *Ring) Recorded() uint64 { return r.next.Load() }

// Record publishes one span into the ring, assigning its Seq. One
// allocation (the span copy escaping to the slot) — only ever paid on the
// sampled path; unsampled operations never reach a Record call.
func (r *Ring) Record(s Span) {
	i := r.next.Add(1) - 1
	s.Seq = i
	spansRecorded.Add(1)
	if i > r.mask {
		spansDropped.Add(1)
	}
	r.slots[i&r.mask].Store(&s)
}

// Snapshot returns the ring's current contents, oldest first. Concurrent
// recording may tear the very newest entries; ordering is restored by
// sorting on the atomically assigned Seq.
func (r *Ring) Snapshot() []Span {
	out := make([]Span, 0, len(r.slots))
	for i := range r.slots {
		if p := r.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// --- process-global default ring -------------------------------------------------

// defaultRing is the process-wide ring that protocol components record
// into and /debug/trace serves. Swappable so in-process experiment runs
// (chaos determinism checks re-run the same seed twice in one process)
// start from a fresh, isolated ring.
var defaultRing atomic.Pointer[Ring]

func init() { defaultRing.Store(NewRing(DefaultRingSize)) }

// Default returns the process-global span ring.
func Default() *Ring { return defaultRing.Load() }

// SwapDefault installs ring as the process-global span ring and returns
// the previous one. Passing nil installs a fresh default-sized ring.
func SwapDefault(ring *Ring) *Ring {
	if ring == nil {
		ring = NewRing(DefaultRingSize)
	}
	return defaultRing.Swap(ring)
}

// Record publishes one span into the process-global ring.
func Record(s Span) { defaultRing.Load().Record(s) }
