package ident

import (
	"testing"
	"testing/quick"

	"repro/internal/network"
)

func ref(k uint64, port uint16) NodeRef {
	return NodeRef{Key: Key(k), Addr: network.Address{Host: "n", Port: port}}
}

func TestKeyOfDeterministic(t *testing.T) {
	if KeyOfString("abc") != KeyOfString("abc") {
		t.Fatalf("hash not deterministic")
	}
	if KeyOfString("abc") == KeyOfString("abd") {
		t.Fatalf("suspicious collision")
	}
	if KeyOf([]byte("abc")) != KeyOfString("abc") {
		t.Fatalf("bytes/string hash mismatch")
	}
}

func TestInOpenInterval(t *testing.T) {
	cases := []struct {
		k, from, to uint64
		want        bool
	}{
		{5, 1, 10, true},
		{1, 1, 10, false},
		{10, 1, 10, false},
		{0, 1, 10, false},
		{15, 10, 1, true}, // wrap: (10, 1]
		{0, 10, 1, true},  // wrap
		{5, 10, 1, false}, // wrap, outside
		{7, 7, 7, false},  // degenerate: whole ring minus endpoint
		{8, 7, 7, true},   // degenerate
	}
	for _, c := range cases {
		if got := Key(c.k).InOpenInterval(Key(c.from), Key(c.to)); got != c.want {
			t.Errorf("%d in (%d,%d) = %v, want %v", c.k, c.from, c.to, got, c.want)
		}
	}
}

func TestInHalfOpenInterval(t *testing.T) {
	cases := []struct {
		k, from, to uint64
		want        bool
	}{
		{10, 1, 10, true},
		{1, 1, 10, false},
		{5, 1, 10, true},
		{1, 10, 1, true}, // wrap, endpoint included
		{5, 10, 1, false},
		{7, 7, 7, true}, // whole ring
	}
	for _, c := range cases {
		if got := Key(c.k).InHalfOpenInterval(Key(c.from), Key(c.to)); got != c.want {
			t.Errorf("%d in (%d,%d] = %v, want %v", c.k, c.from, c.to, got, c.want)
		}
	}
}

func TestDistanceWraps(t *testing.T) {
	if d := Key(10).DistanceTo(20); d != 10 {
		t.Fatalf("distance 10->20 = %d", d)
	}
	if d := Key(20).DistanceTo(10); d != ^uint64(0)-9 {
		t.Fatalf("wrapped distance = %d", d)
	}
}

func TestSuccessorOf(t *testing.T) {
	nodes := []NodeRef{ref(10, 1), ref(20, 2), ref(30, 3)}
	cases := []struct {
		key  uint64
		want uint64
	}{
		{5, 10}, {10, 10}, {11, 20}, {25, 30}, {31, 10}, {30, 30},
	}
	for _, c := range cases {
		if got := SuccessorOf(nodes, Key(c.key)); uint64(got.Key) != c.want {
			t.Errorf("successor of %d = %d, want %d", c.key, got.Key, c.want)
		}
	}
	if !SuccessorOf(nil, 5).IsZero() {
		t.Errorf("successor on empty ring must be zero")
	}
}

func TestSuccessorsOf(t *testing.T) {
	nodes := []NodeRef{ref(10, 1), ref(20, 2), ref(30, 3)}
	got := SuccessorsOf(nodes, 15, 2)
	if len(got) != 2 || got[0].Key != 20 || got[1].Key != 30 {
		t.Fatalf("successors of 15: %v", got)
	}
	got = SuccessorsOf(nodes, 25, 5) // clamped to ring size
	if len(got) != 3 || got[0].Key != 30 || got[1].Key != 10 || got[2].Key != 20 {
		t.Fatalf("wrapped successors: %v", got)
	}
	if SuccessorsOf(nodes, 1, 0) != nil {
		t.Fatalf("zero count must return nil")
	}
	if SuccessorsOf(nil, 1, 2) != nil {
		t.Fatalf("empty ring must return nil")
	}
}

func TestSortAndDedup(t *testing.T) {
	nodes := []NodeRef{ref(30, 3), ref(10, 1), ref(30, 3), ref(20, 2), ref(10, 1)}
	SortByKey(nodes)
	nodes = Dedup(nodes)
	if len(nodes) != 3 || nodes[0].Key != 10 || nodes[1].Key != 20 || nodes[2].Key != 30 {
		t.Fatalf("sorted+deduped: %v", nodes)
	}
	if got := Dedup([]NodeRef{ref(1, 1)}); len(got) != 1 {
		t.Fatalf("single dedup: %v", got)
	}
}

func TestNodeRefString(t *testing.T) {
	r := ref(42, 7)
	if r.String() == "" || r.IsZero() {
		t.Fatalf("ref renders and is non-zero: %s", r)
	}
	if !(NodeRef{}).IsZero() {
		t.Fatalf("zero ref must report IsZero")
	}
	if Key(5).String() != "5" {
		t.Fatalf("key string")
	}
}

// Property: SuccessorOf returns the element minimizing clockwise distance
// from the key.
func TestPropertySuccessorMinimizesClockwiseDistance(t *testing.T) {
	f := func(keys []uint64, probe uint64) bool {
		if len(keys) == 0 {
			return true
		}
		nodes := make([]NodeRef, 0, len(keys))
		seen := map[uint64]bool{}
		for i, k := range keys {
			if seen[k] {
				continue
			}
			seen[k] = true
			nodes = append(nodes, ref(k, uint16(i)))
		}
		SortByKey(nodes)
		got := SuccessorOf(nodes, Key(probe))
		best := nodes[0]
		bestD := Key(probe).DistanceTo(nodes[0].Key)
		for _, n := range nodes[1:] {
			if d := Key(probe).DistanceTo(n.Key); d < bestD {
				best, bestD = n, d
			}
		}
		return got == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: half-open interval membership matches the distance formulation
// k ∈ (from, to]  ⇔  dist(from,k) <= dist(from,to) and k != from.
func TestPropertyIntervalDistanceAgreement(t *testing.T) {
	f := func(k, from, to uint64) bool {
		if from == to {
			return Key(k).InHalfOpenInterval(Key(from), Key(to)) == true
		}
		want := k != from && Key(from).DistanceTo(Key(k)) <= Key(from).DistanceTo(Key(to))
		return Key(k).InHalfOpenInterval(Key(from), Key(to)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
