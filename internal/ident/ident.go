// Package ident defines node identity on the consistent-hashing ring used
// by the CATS case study: numeric ring keys with modular arithmetic, and
// node references pairing a ring key with a network address.
package ident

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"repro/internal/network"
)

// Key is an identifier on the ring, ordered clockwise modulo 2^64.
type Key uint64

// String renders the key in decimal.
func (k Key) String() string { return fmt.Sprintf("%d", uint64(k)) }

// KeyOf hashes arbitrary bytes onto the ring (FNV-1a).
func KeyOf(b []byte) Key {
	h := fnv.New64a()
	_, _ = h.Write(b)
	return Key(h.Sum64())
}

// KeyOfString hashes a string key onto the ring.
func KeyOfString(s string) Key { return KeyOf([]byte(s)) }

// InOpenInterval reports whether k lies strictly between from and to going
// clockwise (exclusive on both ends), with wrap-around. When from == to the
// interval covers the whole ring minus the endpoint.
func (k Key) InOpenInterval(from, to Key) bool {
	if from == to {
		return k != from
	}
	if from < to {
		return k > from && k < to
	}
	return k > from || k < to
}

// InHalfOpenInterval reports whether k lies in (from, to] going clockwise —
// the "is k owned by successor to" test. When from == to the interval
// covers the whole ring.
func (k Key) InHalfOpenInterval(from, to Key) bool {
	if from == to {
		return true
	}
	if from < to {
		return k > from && k <= to
	}
	return k > from || k <= to
}

// DistanceTo returns the clockwise distance from k to other.
func (k Key) DistanceTo(other Key) uint64 {
	return uint64(other) - uint64(k) // wraps naturally in uint64 arithmetic
}

// NodeRef identifies a CATS node: its ring key and its network address.
type NodeRef struct {
	Key  Key
	Addr network.Address
}

// ParseNodeRef parses "key@host:port" (the NodeRef.String format). A bare
// "host:port" hashes the address onto the ring.
func ParseNodeRef(s string) (NodeRef, error) {
	keyS, addrS, found := strings.Cut(s, "@")
	if !found {
		addr, err := network.ParseAddress(s)
		if err != nil {
			return NodeRef{}, fmt.Errorf("ident: parse node ref %q: %w", s, err)
		}
		return NodeRef{Key: KeyOfString(addr.String()), Addr: addr}, nil
	}
	key, err := strconv.ParseUint(keyS, 10, 64)
	if err != nil {
		return NodeRef{}, fmt.Errorf("ident: parse node ref %q: bad key: %w", s, err)
	}
	addr, err := network.ParseAddress(addrS)
	if err != nil {
		return NodeRef{}, fmt.Errorf("ident: parse node ref %q: %w", s, err)
	}
	return NodeRef{Key: Key(key), Addr: addr}, nil
}

// IsZero reports whether the reference is unset.
func (n NodeRef) IsZero() bool { return n.Key == 0 && n.Addr.IsZero() }

// String renders key@host:port.
func (n NodeRef) String() string {
	return fmt.Sprintf("%d@%s", uint64(n.Key), n.Addr)
}

// SortByKey sorts node references clockwise by key (ties by address for
// determinism).
func SortByKey(nodes []NodeRef) {
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Key != nodes[j].Key {
			return nodes[i].Key < nodes[j].Key
		}
		return nodes[i].Addr.String() < nodes[j].Addr.String()
	})
}

// SuccessorOf returns the first node clockwise responsible for key (the
// node whose key is the first >= key, wrapping to the smallest), given a
// key-sorted slice. It returns a zero NodeRef for an empty slice.
func SuccessorOf(sorted []NodeRef, key Key) NodeRef {
	if len(sorted) == 0 {
		return NodeRef{}
	}
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i].Key >= key })
	if i == len(sorted) {
		i = 0
	}
	return sorted[i]
}

// SuccessorsOf returns the n distinct nodes clockwise from key (starting at
// its successor), given a key-sorted slice. Fewer are returned when the
// ring is smaller than n.
func SuccessorsOf(sorted []NodeRef, key Key, n int) []NodeRef {
	if len(sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(sorted) {
		n = len(sorted)
	}
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i].Key >= key })
	out := make([]NodeRef, 0, n)
	for j := 0; j < n; j++ {
		out = append(out, sorted[(i+j)%len(sorted)])
	}
	return out
}

// Dedup removes duplicate node references (by key+address) from a sorted
// slice in place and returns the shortened slice.
func Dedup(sorted []NodeRef) []NodeRef {
	if len(sorted) < 2 {
		return sorted
	}
	out := sorted[:1]
	for _, n := range sorted[1:] {
		last := out[len(out)-1]
		if n.Key == last.Key && n.Addr == last.Addr {
			continue
		}
		out = append(out, n)
	}
	return out
}
