package simulation

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/timer"
)

// timerWorld wires one simulated timer to a counting client.
type timerWorld struct {
	sim   *Simulation
	Timer *Timer
	ctx   *core.Ctx
	port  *core.Port
	comp  *core.Component
	ticks int
}

func newTimerWorld(t *testing.T) *timerWorld {
	t.Helper()
	w := &timerWorld{sim: New(3)}
	w.Timer = NewTimer(w.sim)
	w.sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		tm := ctx.Create("timer", w.Timer)
		w.comp = tm
		cl := ctx.Create("client", core.SetupFunc(func(cx *core.Ctx) {
			w.ctx = cx
			w.port = cx.Requires(timer.PortType)
			core.Subscribe(cx, w.port, func(tick) { w.ticks++ })
		}))
		ctx.Connect(tm.Provided(timer.PortType), cl.Required(timer.PortType))
	}))
	w.sim.Run(0)
	return w
}

func TestSimTimerStopCancelsAll(t *testing.T) {
	w := newTimerWorld(t)
	w.ctx.Trigger(timer.ScheduleTimeout{
		Delay:   50 * time.Millisecond,
		Timeout: tick{Timeout: timer.Timeout{ID: timer.NextID()}},
	}, w.port)
	w.ctx.Trigger(timer.SchedulePeriodic{
		Delay:   10 * time.Millisecond,
		Period:  10 * time.Millisecond,
		Timeout: tick{Timeout: timer.Timeout{ID: timer.NextID()}},
	}, w.port)
	w.sim.Run(25 * time.Millisecond)
	if w.ticks != 2 {
		t.Fatalf("ticks before stop: %d, want 2", w.ticks)
	}
	one, per := w.Timer.Pending()
	if one != 1 || per != 1 {
		t.Fatalf("pending %d/%d, want 1/1", one, per)
	}
	// Stop the timer component: everything pending is cancelled.
	_ = core.TriggerOn(w.comp.Control(), core.Stop{})
	w.sim.Run(200 * time.Millisecond)
	if w.ticks != 2 {
		t.Fatalf("timers fired after Stop: %d", w.ticks)
	}
	one, per = w.Timer.Pending()
	if one != 0 || per != 0 {
		t.Fatalf("pending after stop: %d/%d", one, per)
	}
}

func TestSimTimerCancelUnknownIsNoOp(t *testing.T) {
	w := newTimerWorld(t)
	w.ctx.Trigger(timer.CancelTimeout{ID: 424242}, w.port)
	w.ctx.Trigger(timer.CancelPeriodic{ID: 424242}, w.port)
	w.sim.Run(10 * time.Millisecond)
	if w.ticks != 0 {
		t.Fatalf("phantom ticks: %d", w.ticks)
	}
}

func TestSimTimerPeriodicZeroClamped(t *testing.T) {
	w := newTimerWorld(t)
	id := timer.NextID()
	w.ctx.Trigger(timer.SchedulePeriodic{
		Delay:   0,
		Period:  0, // clamped to 1ns
		Timeout: tick{Timeout: timer.Timeout{ID: id}},
	}, w.port)
	w.sim.Run(5 * time.Nanosecond)
	if w.ticks < 2 {
		t.Fatalf("clamped periodic fired %d times", w.ticks)
	}
	w.ctx.Trigger(timer.CancelPeriodic{ID: id}, w.port)
}

func TestSimTimerOneShotFiresExactlyOnce(t *testing.T) {
	w := newTimerWorld(t)
	w.ctx.Trigger(timer.ScheduleTimeout{
		Delay:   time.Millisecond,
		Timeout: tick{Timeout: timer.Timeout{ID: timer.NextID()}},
	}, w.port)
	w.sim.Run(time.Second)
	if w.ticks != 1 {
		t.Fatalf("one-shot fired %d times", w.ticks)
	}
}
