package simulation

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/timer"
)

type tick struct {
	timer.Timeout
	Label string
}

type note struct {
	network.Header
	Text string
}

func init() {
	network.Register(note{})
}

func addr(i int) network.Address {
	return network.Address{Host: "sim", Port: uint16(i)}
}

// --- virtual clock and event queue ------------------------------------------

func TestVirtualClockMonotonic(t *testing.T) {
	c := NewVirtualClock()
	t0 := c.Now()
	c.set(t0.Add(time.Second))
	if got := c.Now().Sub(t0); got != time.Second {
		t.Fatalf("advance: %v", got)
	}
	c.set(t0) // backwards: ignored
	if c.Now().Sub(t0) != time.Second {
		t.Fatalf("clock went backwards")
	}
}

func TestRunFiresEventsInTimeOrder(t *testing.T) {
	s := New(1)
	var order []string
	s.ScheduleAt(3*time.Millisecond, "c", func() { order = append(order, "c") })
	s.ScheduleAt(1*time.Millisecond, "a", func() { order = append(order, "a") })
	s.ScheduleAt(2*time.Millisecond, "b", func() { order = append(order, "b") })
	stats := s.Run(0)
	if got := strings.Join(order, ""); got != "abc" {
		t.Fatalf("fired order %q, want abc", got)
	}
	if stats.DiscreteEvents != 3 {
		t.Fatalf("fired %d events, want 3", stats.DiscreteEvents)
	}
}

func TestSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	s := New(1)
	var order []string
	for i := 0; i < 10; i++ {
		lbl := fmt.Sprintf("%d", i)
		s.ScheduleAt(time.Millisecond, lbl, func() { order = append(order, lbl) })
	}
	s.Run(0)
	want := "0123456789"
	if got := strings.Join(order, ""); got != want {
		t.Fatalf("order %q, want %q", got, want)
	}
}

func TestCancelledEventDoesNotFire(t *testing.T) {
	s := New(1)
	fired := false
	ev := s.ScheduleAt(time.Millisecond, "x", func() { fired = true })
	ev.Cancel()
	s.Run(0)
	if fired {
		t.Fatalf("cancelled event fired")
	}
}

func TestRunHonoursLimit(t *testing.T) {
	s := New(1)
	var fired []string
	s.ScheduleAt(time.Second, "early", func() { fired = append(fired, "early") })
	s.ScheduleAt(time.Hour, "late", func() { fired = append(fired, "late") })
	stats := s.Run(time.Minute)
	if len(fired) != 1 || fired[0] != "early" {
		t.Fatalf("fired %v, want [early]", fired)
	}
	if stats.SimulatedDuration != time.Minute {
		t.Fatalf("simulated %v, want 1m (clock advanced to limit)", stats.SimulatedDuration)
	}
	// Continue: the late event still fires on a subsequent run.
	s.Run(2 * time.Hour)
	if len(fired) != 2 {
		t.Fatalf("late event lost across runs")
	}
}

func TestHaltStopsRun(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.ScheduleAt(time.Duration(i)*time.Millisecond, "e", func() {
			count++
			if count == 3 {
				s.Halt()
			}
		})
	}
	s.Run(0)
	if count != 3 {
		t.Fatalf("halt ignored: %d events fired", count)
	}
}

func TestSelfSchedulingEventChain(t *testing.T) {
	s := New(1)
	var n int
	var step func()
	step = func() {
		n++
		if n < 100 {
			s.ScheduleAt(time.Millisecond, "step", step)
		}
	}
	s.ScheduleAt(0, "start", step)
	stats := s.Run(0)
	if n != 100 {
		t.Fatalf("chain ran %d steps, want 100", n)
	}
	if stats.SimulatedDuration != 99*time.Millisecond {
		t.Fatalf("simulated %v, want 99ms", stats.SimulatedDuration)
	}
}

func TestStatsCompression(t *testing.T) {
	st := Stats{SimulatedDuration: 10 * time.Second, WallDuration: time.Second}
	if c := st.Compression(); c < 9.99 || c > 10.01 {
		t.Fatalf("compression %f, want 10", c)
	}
	if (Stats{}).Compression() != 0 {
		t.Fatalf("zero wall time must give 0 compression")
	}
	if st.String() == "" {
		t.Fatalf("stats must format")
	}
}

// --- components under simulated time ----------------------------------------

// periodicCounter schedules a periodic timeout and counts ticks, recording
// the virtual time of each.
type periodicCounter struct {
	ctx   *core.Ctx
	port  *core.Port
	ticks []time.Time
	id    timer.ID
}

func (p *periodicCounter) Setup(ctx *core.Ctx) {
	p.ctx = ctx
	p.port = ctx.Requires(timer.PortType)
	core.Subscribe(ctx, p.port, func(tk tick) {
		p.ticks = append(p.ticks, ctx.Now())
	})
	core.Subscribe(ctx, ctx.Control(), func(core.Start) {
		p.id = timer.NextID()
		ctx.Trigger(timer.SchedulePeriodic{
			Delay:   10 * time.Millisecond,
			Period:  10 * time.Millisecond,
			Timeout: tick{Timeout: timer.Timeout{ID: p.id}},
		}, p.port)
	})
}

func TestSimulatedTimerPeriodicVirtualTime(t *testing.T) {
	s := New(7)
	pc := &periodicCounter{}
	s.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		tm := ctx.Create("timer", NewTimer(s))
		c := ctx.Create("counter", pc)
		ctx.Connect(tm.Provided(timer.PortType), c.Required(timer.PortType))
	}))
	stats := s.Run(105 * time.Millisecond)
	if len(pc.ticks) != 10 {
		t.Fatalf("got %d ticks in 105ms with 10ms period, want 10", len(pc.ticks))
	}
	for i, at := range pc.ticks {
		want := simEpoch.Add(time.Duration(i+1) * 10 * time.Millisecond)
		if !at.Equal(want) {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
	if stats.HandlerExecutions == 0 {
		t.Fatalf("no handler executions recorded")
	}
}

func TestSimulatedTimerCancel(t *testing.T) {
	s := New(7)
	var fired int
	var port *core.Port
	var cx *core.Ctx
	s.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		tm := ctx.Create("timer", NewTimer(s))
		c := ctx.Create("c", core.SetupFunc(func(inner *core.Ctx) {
			cx = inner
			port = inner.Requires(timer.PortType)
			core.Subscribe(inner, port, func(tick) { fired++ })
		}))
		ctx.Connect(tm.Provided(timer.PortType), c.Required(timer.PortType))
	}))
	s.Run(0) // start everything
	id := timer.NextID()
	cx.Trigger(timer.ScheduleTimeout{Delay: 5 * time.Millisecond, Timeout: tick{Timeout: timer.Timeout{ID: id}}}, port)
	cx.Trigger(timer.CancelTimeout{ID: id}, port)
	id2 := timer.NextID()
	cx.Trigger(timer.SchedulePeriodic{Delay: time.Millisecond, Period: time.Millisecond, Timeout: tick{Timeout: timer.Timeout{ID: id2}}}, port)
	s.Run(3500 * time.Microsecond)
	cx.Trigger(timer.CancelPeriodic{ID: id2}, port)
	s.Run(10 * time.Millisecond)
	if fired != 3 {
		t.Fatalf("fired %d, want 3 (periodic at 1,2,3ms; one-shot cancelled)", fired)
	}
}

// --- network emulator ----------------------------------------------------------

// simNode owns an emulated transport; counts received notes.
type simNode struct {
	self network.Address
	emu  *NetworkEmulator
	ctx  *core.Ctx
	port *core.Port
	got  []note
	rcvd []time.Time
}

func (n *simNode) Setup(ctx *core.Ctx) {
	n.ctx = ctx
	tr := ctx.Create("net", n.emu.Transport(n.self))
	n.port = tr.Provided(network.PortType)
	core.Subscribe(ctx, n.port, func(m note) {
		n.got = append(n.got, m)
		n.rcvd = append(n.rcvd, ctx.Now())
	})
}

func newSimPair(t *testing.T, seed int64, opts ...EmulatorOption) (*Simulation, *NetworkEmulator, *simNode, *simNode) {
	t.Helper()
	s := New(seed)
	emu := NewNetworkEmulator(s, opts...)
	n1 := &simNode{self: addr(1), emu: emu}
	n2 := &simNode{self: addr(2), emu: emu}
	s.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		ctx.Create("n1", n1)
		ctx.Create("n2", n2)
	}))
	s.Run(0)
	return s, emu, n1, n2
}

func TestEmulatedDeliveryWithLatency(t *testing.T) {
	s, emu, n1, n2 := newSimPair(t, 3, WithLatency(ConstantLatency(5*time.Millisecond)))
	sent := s.Now()
	n1.ctx.Trigger(note{Header: network.NewHeader(n1.self, n2.self), Text: "hi"}, n1.port)
	s.Run(0)
	if len(n2.got) != 1 || n2.got[0].Text != "hi" {
		t.Fatalf("n2 got %v", n2.got)
	}
	if got := n2.rcvd[0].Sub(sent); got != 5*time.Millisecond {
		t.Fatalf("delivery latency %v, want 5ms", got)
	}
	delivered, _, _, _ := emu.Stats()
	if delivered != 1 {
		t.Fatalf("delivered %d", delivered)
	}
}

func TestEmulatedSelfDelivery(t *testing.T) {
	s, _, n1, _ := newSimPair(t, 3)
	n1.ctx.Trigger(note{Header: network.NewHeader(n1.self, n1.self), Text: "me"}, n1.port)
	s.Run(0)
	if len(n1.got) != 1 {
		t.Fatalf("self delivery failed")
	}
}

func TestEmulatedLossDropsAll(t *testing.T) {
	s, emu, n1, n2 := newSimPair(t, 3, WithLoss(1.0))
	for i := 0; i < 10; i++ {
		n1.ctx.Trigger(note{Header: network.NewHeader(n1.self, n2.self)}, n1.port)
	}
	s.Run(0)
	if len(n2.got) != 0 {
		t.Fatalf("loss=1.0 delivered %d", len(n2.got))
	}
	_, dropped, _, _ := emu.Stats()
	if dropped != 10 {
		t.Fatalf("dropped %d, want 10", dropped)
	}
}

func TestEmulatedPartitionBlocksAndHeals(t *testing.T) {
	s, emu, n1, n2 := newSimPair(t, 3)
	emu.Partition(1, n2.self)
	n1.ctx.Trigger(note{Header: network.NewHeader(n1.self, n2.self)}, n1.port)
	s.Run(0)
	if len(n2.got) != 0 {
		t.Fatalf("partitioned message delivered")
	}
	_, _, blocked, _ := emu.Stats()
	if blocked != 1 {
		t.Fatalf("blocked %d, want 1", blocked)
	}
	emu.Heal()
	n1.ctx.Trigger(note{Header: network.NewHeader(n1.self, n2.self)}, n1.port)
	s.Run(0)
	if len(n2.got) != 1 {
		t.Fatalf("healed message not delivered")
	}
}

func TestEmulatedUnroutable(t *testing.T) {
	s, emu, n1, _ := newSimPair(t, 3)
	n1.ctx.Trigger(note{Header: network.NewHeader(n1.self, addr(99))}, n1.port)
	s.Run(0)
	_, _, _, unroutable := emu.Stats()
	if unroutable != 1 {
		t.Fatalf("unroutable %d, want 1", unroutable)
	}
}

func TestLatencyModels(t *testing.T) {
	rngSeed := int64(5)
	s := New(rngSeed)
	_ = s
	rng := s.Rand()
	if d := ConstantLatency(time.Second)(rng, addr(1), addr(2)); d != time.Second {
		t.Fatalf("constant latency %v", d)
	}
	for i := 0; i < 100; i++ {
		d := UniformLatency(time.Millisecond, 2*time.Millisecond)(rng, addr(1), addr(2))
		if d < time.Millisecond || d > 2*time.Millisecond {
			t.Fatalf("uniform latency %v out of range", d)
		}
		d = ExponentialLatency(time.Millisecond, time.Millisecond)(rng, addr(1), addr(2))
		if d < time.Millisecond {
			t.Fatalf("exponential latency %v below base", d)
		}
	}
	if d := UniformLatency(time.Millisecond, time.Millisecond)(rng, addr(1), addr(2)); d != time.Millisecond {
		t.Fatalf("degenerate uniform %v", d)
	}
}

// --- determinism ---------------------------------------------------------------

// runTracedScenario runs a fixed little distributed workload and returns
// its full trace: two nodes exchanging notes over an emulated network with
// random latency, driven by periodic timers.
func runTracedScenario(seed int64) []string {
	var trace []string
	s := New(seed, WithTrace(func(at time.Time, tag string) {
		trace = append(trace, fmt.Sprintf("%d %s", at.UnixNano(), tag))
	}))
	emu := NewNetworkEmulator(s, WithLatency(UniformLatency(time.Millisecond, 20*time.Millisecond)), WithLoss(0.1))
	n1 := &simNode{self: addr(1), emu: emu}
	n2 := &simNode{self: addr(2), emu: emu}
	s.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		ctx.Create("n1", n1)
		ctx.Create("n2", n2)
	}))
	s.Run(0)
	// Each node streams 50 notes to the other at random offsets.
	for i := 0; i < 50; i++ {
		i := i
		s.ScheduleAt(time.Duration(s.Rand().Intn(1000))*time.Millisecond, "drive", func() {
			n1.ctx.Trigger(note{Header: network.NewHeader(n1.self, n2.self), Text: fmt.Sprintf("a%d", i)}, n1.port)
			n2.ctx.Trigger(note{Header: network.NewHeader(n2.self, n1.self), Text: fmt.Sprintf("b%d", i)}, n2.port)
		})
	}
	s.Run(0)
	return trace
}

func TestDeterministicSameSeedSameTrace(t *testing.T) {
	t1 := runTracedScenario(42)
	t2 := runTracedScenario(42)
	if len(t1) == 0 {
		t.Fatalf("empty trace")
	}
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, t1[i], t2[i])
		}
	}
}

func TestDifferentSeedsDifferentTraces(t *testing.T) {
	t1 := runTracedScenario(1)
	t2 := runTracedScenario(2)
	same := len(t1) == len(t2)
	if same {
		for i := range t1 {
			if t1[i] != t2[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("different seeds produced identical traces (suspicious)")
	}
}

func TestPropertyDeterminismAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		a := runTracedScenario(seed)
		b := runTracedScenario(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
