package simulation

import (
	"testing"
	"time"

	"repro/internal/network"
)

func TestEmulatedCrashDropsTrafficAndRestartHeals(t *testing.T) {
	s, emu, n1, n2 := newSimPair(t, 3, WithLatency(ConstantLatency(time.Millisecond)))
	emu.Crash(n2.self)
	if !emu.Crashed(n2.self) {
		t.Fatalf("n2 not reported crashed")
	}
	n1.ctx.Trigger(note{Header: network.NewHeader(n1.self, n2.self)}, n1.port)
	n2.ctx.Trigger(note{Header: network.NewHeader(n2.self, n1.self)}, n2.port)
	s.Run(0)
	if len(n2.got) != 0 || len(n1.got) != 0 {
		t.Fatalf("crashed node exchanged traffic: n1=%d n2=%d", len(n1.got), len(n2.got))
	}
	emu.Restart(n2.self)
	n1.ctx.Trigger(note{Header: network.NewHeader(n1.self, n2.self)}, n1.port)
	s.Run(0)
	if len(n2.got) != 1 {
		t.Fatalf("restarted node unreachable: got %d", len(n2.got))
	}
	crashes, restarts, _, churnDropped := emu.ChurnStats()
	if crashes != 1 || restarts != 1 || churnDropped != 2 {
		t.Fatalf("churn stats crashes=%d restarts=%d dropped=%d, want 1/1/2", crashes, restarts, churnDropped)
	}
}

func TestEmulatedCrashDropsInFlightMessages(t *testing.T) {
	s, emu, n1, n2 := newSimPair(t, 3, WithLatency(ConstantLatency(5*time.Millisecond)))
	n1.ctx.Trigger(note{Header: network.NewHeader(n1.self, n2.self)}, n1.port)
	s.ScheduleAt(time.Millisecond, "crash", func() { emu.Crash(n2.self) })
	s.Run(0)
	if len(n2.got) != 0 {
		t.Fatalf("message delivered to node that crashed while it was in flight")
	}
	_, _, _, churnDropped := emu.ChurnStats()
	if churnDropped != 1 {
		t.Fatalf("churnDropped %d, want 1", churnDropped)
	}
}

func TestEmulatedFlapLinkIsDirectedAndExpires(t *testing.T) {
	s, emu, n1, n2 := newSimPair(t, 3, WithLatency(ConstantLatency(time.Millisecond)))
	emu.FlapLink(n1.self, n2.self, 10*time.Millisecond)
	n1.ctx.Trigger(note{Header: network.NewHeader(n1.self, n2.self)}, n1.port)
	n2.ctx.Trigger(note{Header: network.NewHeader(n2.self, n1.self)}, n2.port)
	s.Run(0)
	if len(n2.got) != 0 {
		t.Fatalf("flapped direction delivered")
	}
	if len(n1.got) != 1 {
		t.Fatalf("reverse direction blocked by a directed flap")
	}
	s.Run(15 * time.Millisecond) // let the flap window pass in virtual time
	n1.ctx.Trigger(note{Header: network.NewHeader(n1.self, n2.self)}, n1.port)
	s.Run(0)
	if len(n2.got) != 1 {
		t.Fatalf("flap did not expire")
	}
	_, _, flaps, churnDropped := emu.ChurnStats()
	if flaps != 1 || churnDropped != 1 {
		t.Fatalf("flaps=%d dropped=%d, want 1/1", flaps, churnDropped)
	}
}
