// Package simulation provides the deterministic simulation mode of the
// paper (§3): a single-threaded component scheduler, a virtual clock, a
// discrete-event queue, a simulated Timer provider, and a network emulator
// with configurable latency, loss, and partitions. The same (unchanged)
// component code that runs under the production work-stealing scheduler
// runs here in virtual time: with a fixed seed, execution is fully
// reproducible, enabling whole-system simulation of thousands of nodes in
// one process, stepped debugging, and regression tests of distributed
// behaviour.
//
// Where the paper's Java implementation instruments bytecode to intercept
// time and randomness, this Go implementation injects both: components
// obtain time from the runtime clock (core.Ctx.Now or the Timer port) and
// randomness from core.Ctx.Rand, which the simulation seeds
// deterministically per component.
package simulation

import (
	"sync"
	"time"
)

// VirtualClock is a settable clock advanced by the simulation loop.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// simEpoch is the arbitrary fixed start instant of every simulation, so
// traces are comparable across runs and machines.
var simEpoch = time.Date(2012, time.December, 3, 0, 0, 0, 0, time.UTC)

// NewVirtualClock creates a clock at the simulation epoch.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{now: simEpoch}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// set advances the clock. The simulation loop only moves time forward.
func (c *VirtualClock) set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
}
