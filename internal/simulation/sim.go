package simulation

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"math/rand"
	"time"

	"repro/internal/core"
)

// SimScheduler is the deterministic single-threaded component scheduler: a
// plain FIFO of ready components, drained to quiescence by the simulation
// loop between discrete events. All component handlers execute on the
// goroutine that calls Simulation.Run, so a fixed seed yields a fixed
// execution order.
type SimScheduler struct {
	ready    []*core.Component
	executed uint64
	maxReady int
}

var _ core.Scheduler = (*SimScheduler)(nil)
var _ core.SchedulerMetricsSource = (*SimScheduler)(nil)

// Schedule appends a ready component. It is only ever called from the
// simulation goroutine (component handlers run inline during drain).
func (s *SimScheduler) Schedule(c *core.Component) {
	s.ready = append(s.ready, c)
	if len(s.ready) > s.maxReady {
		s.maxReady = len(s.ready)
	}
}

// SchedulerMetrics implements core.SchedulerMetricsSource for the
// single-threaded scheduler: every executed event is a "local pop" of the
// one FIFO; stealing and parking do not exist.
func (s *SimScheduler) SchedulerMetrics() core.SchedulerStats {
	return core.SchedulerStats{
		Workers:       1,
		Executed:      s.executed,
		LocalPops:     s.executed,
		MaxDequeDepth: int64(s.maxReady),
		PerWorker: []core.WorkerStats{{
			Executed:      s.executed,
			LocalPops:     s.executed,
			MaxDequeDepth: int64(s.maxReady),
			DequeDepth:    int64(len(s.ready)),
		}},
	}
}

// Backlog mirrors WorkStealingScheduler.Backlog for admission control:
// components currently in the ready FIFO. The simulation drains to
// quiescence between events, so this is almost always ~0 — deterministic
// shed scenarios use the serve-rate signal instead.
func (s *SimScheduler) Backlog() int64 { return int64(len(s.ready)) }

// Start implements core.Scheduler (no worker goroutines to launch).
func (s *SimScheduler) Start() {}

// Stop implements core.Scheduler.
func (s *SimScheduler) Stop() {}

// drain executes ready components one event at a time until quiescence and
// returns the number of events executed.
func (s *SimScheduler) drain() uint64 {
	var n uint64
	for len(s.ready) > 0 {
		c := s.ready[0]
		s.ready = s.ready[1:]
		if c.ExecuteOne() {
			n++
		}
	}
	s.executed += n
	return n
}

// ScheduledEvent is a handle on a future discrete event, for cancellation.
type ScheduledEvent struct {
	at        time.Time
	seq       uint64
	tag       string
	fire      func()
	cancelled bool
	index     int // heap index, -1 when popped
}

// Cancel prevents the event from firing. Safe to call after it fired.
func (e *ScheduledEvent) Cancel() { e.cancelled = true }

// eventHeap orders events by (time, insertion sequence) so simultaneous
// events fire in scheduling order — the determinism invariant.
type eventHeap []*ScheduledEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*ScheduledEvent)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Stats summarizes a simulation run.
type Stats struct {
	// SimulatedDuration is how much virtual time the run covered.
	SimulatedDuration time.Duration
	// WallDuration is how much real time the run took.
	WallDuration time.Duration
	// DiscreteEvents is the number of discrete (timed) events fired.
	DiscreteEvents uint64
	// HandlerExecutions is the number of component events executed.
	HandlerExecutions uint64
}

// Compression returns the simulated-to-real time ratio (the paper's
// Table 1 metric): >1 means the simulation outpaces real time.
func (s Stats) Compression() float64 {
	if s.WallDuration <= 0 {
		return 0
	}
	return float64(s.SimulatedDuration) / float64(s.WallDuration)
}

// Simulation owns a deterministic runtime: virtual clock, single-threaded
// scheduler, seeded randomness, and the discrete-event queue that timers,
// the network emulator, and experiment drivers schedule into.
type Simulation struct {
	clock *VirtualClock
	sched *SimScheduler
	rt    *core.Runtime
	rng   *rand.Rand
	seed  int64

	pq    eventHeap
	seq   uint64
	fired uint64
	trace func(at time.Time, tag string)
	sink  core.TraceSink
	halt  bool
}

// SimOption configures a Simulation.
type SimOption func(*Simulation)

// WithTrace installs a hook called for every discrete event fired, in
// order; determinism tests compare these traces across runs.
func WithTrace(f func(at time.Time, tag string)) SimOption {
	return func(s *Simulation) { s.trace = f }
}

// WithTraceSink installs a core.TraceSink on the simulated runtime, so every
// handler execution is recorded with virtual timestamps — the same mechanism
// production uses with wall-clock time.
func WithTraceSink(sink core.TraceSink) SimOption {
	return func(s *Simulation) { s.sink = sink }
}

// New creates a simulation seeded with seed. Component code obtains
// deterministic randomness via core.Ctx.Rand (seeded from the master seed
// and the component path) and virtual time via core.Ctx.Now or the
// simulated Timer.
func New(seed int64, opts ...SimOption) *Simulation {
	s := &Simulation{
		clock: NewVirtualClock(),
		sched: &SimScheduler{},
		rng:   rand.New(rand.NewSource(seed)),
		seed:  seed,
	}
	for _, o := range opts {
		o(s)
	}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	rtOpts := []core.Option{
		core.WithScheduler(s.sched),
		core.WithClock(s.clock),
		core.WithLogger(quiet),
		core.WithFaultPolicy(core.HaltOnFault),
		core.WithRandProvider(func(c *core.Component) *rand.Rand {
			h := fnv.New64a()
			_, _ = h.Write([]byte(c.Path()))
			return rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
		}),
	}
	if s.sink != nil {
		rtOpts = append(rtOpts, core.WithTraceSink(s.sink))
	}
	s.rt = core.New(rtOpts...)
	return s
}

// Runtime returns the simulation's component runtime.
func (s *Simulation) Runtime() *core.Runtime { return s.rt }

// Clock returns the virtual clock.
func (s *Simulation) Clock() *VirtualClock { return s.clock }

// Rand returns the simulation's master random source (used by experiment
// drivers; component code uses core.Ctx.Rand).
func (s *Simulation) Rand() *rand.Rand { return s.rng }

// Seed returns the master seed.
func (s *Simulation) Seed() int64 { return s.seed }

// Now returns the current virtual time.
func (s *Simulation) Now() time.Time { return s.clock.Now() }

// ScheduleAt schedules fire to run at the given delay of virtual time from
// now. A zero or negative delay fires at the current instant, after all
// currently ready components have drained. Returns a cancellable handle.
func (s *Simulation) ScheduleAt(delay time.Duration, tag string, fire func()) *ScheduledEvent {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	e := &ScheduledEvent{
		at:   s.clock.Now().Add(delay),
		seq:  s.seq,
		tag:  tag,
		fire: fire,
	}
	heap.Push(&s.pq, e)
	return e
}

// Pending returns the number of events in the discrete-event queue
// (including cancelled ones not yet popped).
func (s *Simulation) Pending() int { return len(s.pq) }

// Settle executes all currently ready components to quiescence WITHOUT
// advancing virtual time or firing any discrete event, and returns the
// number of handler executions. Use it after bootstrap or after injecting
// events to let the system absorb them: unlike Run(0) — which keeps
// popping the event queue until it empties and therefore never returns
// once a periodic timer has been armed — Settle always terminates.
func (s *Simulation) Settle() uint64 { return s.sched.drain() }

// Halt makes Run return after the current event completes.
func (s *Simulation) Halt() { s.halt = true }

// Run executes the simulation for at most limit virtual time (limit <= 0
// means run until the event queue empties). It drains ready components,
// then repeatedly advances virtual time to the next discrete event and
// fires it, draining after each. It returns run statistics including the
// time-compression ratio.
func (s *Simulation) Run(limit time.Duration) Stats {
	start := s.clock.Now()
	wallStart := time.Now()
	var endT time.Time
	if limit > 0 {
		endT = start.Add(limit)
	}
	var handlerExecs uint64
	firedBefore := s.fired

	handlerExecs += s.sched.drain()
	for !s.halt {
		if len(s.pq) == 0 {
			break
		}
		next := s.pq[0]
		if !endT.IsZero() && next.at.After(endT) {
			break
		}
		heap.Pop(&s.pq)
		if next.cancelled {
			continue
		}
		s.clock.set(next.at)
		if s.trace != nil {
			s.trace(next.at, next.tag)
		}
		s.fired++
		next.fire()
		handlerExecs += s.sched.drain()
	}
	if !endT.IsZero() && !s.halt {
		s.clock.set(endT)
	}
	return Stats{
		SimulatedDuration: s.clock.Now().Sub(start),
		WallDuration:      time.Since(wallStart),
		DiscreteEvents:    s.fired - firedBefore,
		HandlerExecutions: handlerExecs,
	}
}

// String renders stats for harness output.
func (s Stats) String() string {
	return fmt.Sprintf("simulated=%v wall=%v compression=%.2fx discrete-events=%d handler-execs=%d",
		s.SimulatedDuration, s.WallDuration, s.Compression(), s.DiscreteEvents, s.HandlerExecutions)
}
