package simulation

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

// Chain protocol: hop events relayed A -> B -> C.
type hop struct{ Stage int }

var hopPort = core.NewPortType("Hop",
	core.Request[hop](),
	core.Indication[hop](),
)

// TestSimulationEventTrace drives a three-component relay chain under
// virtual time with a TraceRing attached and asserts the causal execution
// order: the trace records A handling before B before C at every hop, with
// non-decreasing virtual timestamps and the exact event types.
func TestSimulationEventTrace(t *testing.T) {
	ring := core.NewTraceRing(256)
	sim := New(42, WithTraceSink(ring))

	// relay builds a component that handles hops on its provided port and,
	// unless terminal, forwards them on its required port.
	relay := func(terminal bool) core.SetupFunc {
		return func(cx *core.Ctx) {
			prov := cx.Provides(hopPort)
			if terminal {
				core.Subscribe(cx, prov, func(hop) {})
				return
			}
			req := cx.Requires(hopPort)
			core.Subscribe(cx, prov, func(h hop) {
				cx.Trigger(hop{Stage: h.Stage + 1}, req)
			})
		}
	}
	var a, b, c *core.Component
	sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		c = ctx.Create("c", relay(true))
		b = ctx.Create("b", relay(false))
		a = ctx.Create("a", relay(false))
		ctx.Connect(b.Provided(hopPort), a.Required(hopPort))
		ctx.Connect(c.Provided(hopPort), b.Required(hopPort))
	}))
	sim.Settle()

	// Three hops injected at A, each at a distinct virtual instant.
	for i := 0; i < 3; i++ {
		stage := i * 10
		sim.ScheduleAt(time.Duration(i+1)*time.Second, "hop", func() {
			if err := core.TriggerOn(a.Provided(hopPort), hop{Stage: stage}); err != nil {
				t.Error(err)
			}
		})
	}
	sim.Run(0)

	hopT := reflect.TypeOf(hop{})
	var recs []core.TraceRecord
	for _, r := range ring.Snapshot() {
		if r.Event == hopT {
			recs = append(recs, r)
		}
	}
	// Each injected hop crosses A then B then C: 3 handler executions per hop.
	if len(recs) != 9 {
		t.Fatalf("traced %d hop executions, want 9:\n%v", len(recs), recs)
	}
	for i := 0; i < 9; i += 3 {
		if recs[i].Component != a || recs[i+1].Component != b || recs[i+2].Component != c {
			t.Fatalf("hop %d order: %s, %s, %s, want a, b, c", i/3,
				recs[i].Component.Path(), recs[i+1].Component.Path(), recs[i+2].Component.Path())
		}
		if recs[i].Seq >= recs[i+1].Seq || recs[i+1].Seq >= recs[i+2].Seq {
			t.Fatalf("hop %d: seqs %d, %d, %d not causally ordered",
				i/3, recs[i].Seq, recs[i+1].Seq, recs[i+2].Seq)
		}
		// The whole relay runs at one virtual instant (handlers do not
		// advance the clock).
		if !recs[i].At.Equal(recs[i+1].At) || !recs[i+1].At.Equal(recs[i+2].At) {
			t.Fatalf("hop %d: virtual times differ: %v %v %v",
				i/3, recs[i].At, recs[i+1].At, recs[i+2].At)
		}
	}
	// Hops fired one virtual second apart.
	for i := 3; i < 9; i += 3 {
		if d := recs[i].At.Sub(recs[i-3].At); d != time.Second {
			t.Fatalf("hop spacing %v, want 1s of virtual time", d)
		}
	}
	// Virtual-time handlers are instantaneous.
	for _, r := range recs {
		if r.Duration != 0 {
			t.Fatalf("record %v has nonzero virtual duration", r)
		}
	}

	// The simulation scheduler's metrics cover these executions.
	sm := sim.sched.SchedulerMetrics()
	if sm.Workers != 1 {
		t.Fatalf("sim scheduler workers %d, want 1", sm.Workers)
	}
	if sm.Executed < 9 {
		t.Fatalf("sim scheduler executed %d, want >= 9", sm.Executed)
	}
	snap := sim.Runtime().MetricsSnapshot()
	if snap.Scheduler.Executed != sm.Executed {
		t.Fatalf("snapshot scheduler executed %d != %d", snap.Scheduler.Executed, sm.Executed)
	}
	if !snap.Trace.Enabled || snap.Trace.Records < 9 {
		t.Fatalf("snapshot trace %+v, want enabled with >= 9 records", snap.Trace)
	}
}

// TestSimulationTraceDeterministic runs the same seeded simulation twice and
// asserts identical traces — sequence, component, event type, and virtual
// timestamps all reproduce.
func TestSimulationTraceDeterministic(t *testing.T) {
	run := func() []string {
		ring := core.NewTraceRing(1024)
		sim := New(7, WithTraceSink(ring))
		var relayCtx *core.Ctx
		var relayPort *core.Port
		sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
			sink := ctx.Create("sink", core.SetupFunc(func(cx *core.Ctx) {
				p := cx.Provides(hopPort)
				core.Subscribe(cx, p, func(hop) {})
			}))
			src := ctx.Create("src", core.SetupFunc(func(cx *core.Ctx) {
				relayCtx = cx
				relayPort = cx.Requires(hopPort)
			}))
			ctx.Connect(sink.Provided(hopPort), src.Required(hopPort))
		}))
		sim.Settle()
		for i := 0; i < 10; i++ {
			stage := i
			sim.ScheduleAt(time.Duration(i)*time.Millisecond, "h", func() {
				relayCtx.Trigger(hop{Stage: stage}, relayPort)
			})
		}
		sim.Run(0)
		var out []string
		for _, r := range ring.Snapshot() {
			out = append(out, r.String())
		}
		return out
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("empty trace")
	}
	if len(first) != len(second) {
		t.Fatalf("trace lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("trace diverges at %d:\n%s\n%s", i, first[i], second[i])
		}
	}
}
