package simulation

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/timer"
)

// Timer is the simulated Timer provider: it satisfies exactly the same
// port contract as timer.Real, but timeouts fire in virtual time through
// the simulation's discrete-event queue, deterministically.
type Timer struct {
	sim  *Simulation
	port *core.Port

	oneShot map[timer.ID]*ScheduledEvent
	period  map[timer.ID]*periodic
}

type periodic struct {
	ev        *ScheduledEvent
	cancelled bool
}

// NewTimer creates a simulated timer component definition bound to sim.
func NewTimer(sim *Simulation) *Timer {
	return &Timer{
		sim:     sim,
		oneShot: make(map[timer.ID]*ScheduledEvent),
		period:  make(map[timer.ID]*periodic),
	}
}

var _ core.Definition = (*Timer)(nil)

// Setup declares the provided Timer port and subscribes request handlers.
// No locking is needed: under the simulation scheduler all handlers and all
// event firings run on one goroutine.
func (t *Timer) Setup(ctx *core.Ctx) {
	t.port = ctx.Provides(timer.PortType)
	core.Subscribe(ctx, t.port, t.handleSchedule)
	core.Subscribe(ctx, t.port, t.handlePeriodic)
	core.Subscribe(ctx, t.port, func(c timer.CancelTimeout) {
		if ev, ok := t.oneShot[c.ID]; ok {
			ev.Cancel()
			delete(t.oneShot, c.ID)
		}
	})
	core.Subscribe(ctx, t.port, func(c timer.CancelPeriodic) {
		if p, ok := t.period[c.ID]; ok {
			p.cancelled = true
			if p.ev != nil {
				p.ev.Cancel()
			}
			delete(t.period, c.ID)
		}
	})
	core.Subscribe(ctx, ctx.Control(), func(core.Stop) { t.cancelAll() })
}

func (t *Timer) handleSchedule(st timer.ScheduleTimeout) {
	id := st.Timeout.TimeoutID()
	ev := st.Timeout
	t.oneShot[id] = t.sim.ScheduleAt(st.Delay, fmt.Sprintf("timeout:%d", id), func() {
		delete(t.oneShot, id)
		_ = core.TriggerOn(t.port, ev)
	})
}

func (t *Timer) handlePeriodic(sp timer.SchedulePeriodic) {
	id := sp.Timeout.TimeoutID()
	period := sp.Period
	if period <= 0 {
		period = 1
	}
	p := &periodic{}
	t.period[id] = p
	ev := sp.Timeout
	var arm func(delay time.Duration)
	arm = func(delay time.Duration) {
		p.ev = t.sim.ScheduleAt(delay, fmt.Sprintf("periodic:%d", id), func() {
			if p.cancelled {
				return
			}
			arm(period)
			_ = core.TriggerOn(t.port, ev)
		})
	}
	arm(sp.Delay)
}

func (t *Timer) cancelAll() {
	for id, ev := range t.oneShot {
		ev.Cancel()
		delete(t.oneShot, id)
	}
	for id, p := range t.period {
		p.cancelled = true
		if p.ev != nil {
			p.ev.Cancel()
		}
		delete(t.period, id)
	}
}

// Pending returns outstanding one-shot and periodic counts (tests).
func (t *Timer) Pending() (oneShot, periodicN int) {
	return len(t.oneShot), len(t.period)
}
