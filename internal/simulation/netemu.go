package simulation

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/network"
)

// LatencyModel draws a one-way message latency. It receives the emulator's
// seeded random source, so latencies are deterministic per run.
type LatencyModel func(rng *rand.Rand, src, dst network.Address) time.Duration

// ConstantLatency returns a fixed one-way latency.
func ConstantLatency(d time.Duration) LatencyModel {
	return func(*rand.Rand, network.Address, network.Address) time.Duration { return d }
}

// UniformLatency draws latencies uniformly from [lo, hi].
func UniformLatency(lo, hi time.Duration) LatencyModel {
	return func(rng *rand.Rand, _, _ network.Address) time.Duration {
		if hi <= lo {
			return lo
		}
		return lo + time.Duration(rng.Int63n(int64(hi-lo)))
	}
}

// ExponentialLatency draws latencies from base plus an exponential tail
// with the given mean.
func ExponentialLatency(base, mean time.Duration) LatencyModel {
	return func(rng *rand.Rand, _, _ network.Address) time.Duration {
		return base + time.Duration(rng.ExpFloat64()*float64(mean))
	}
}

// NetworkEmulator is the simulated Network provider shared by all emulated
// transports of one simulation: a virtual-time network with a latency
// model, probabilistic loss, and named partitions. It implements the
// generic discrete-event network of the paper's simulation architecture
// (§4.2).
type NetworkEmulator struct {
	sim     *Simulation
	rng     *rand.Rand
	latency LatencyModel
	loss    float64

	nodes      map[network.Address]*EmulatedTransport
	partitions map[network.Address]int // address → partition group; absent = group 0

	// Churn state: crashed nodes drop all traffic (including messages
	// already in flight toward them), flapped links drop traffic until a
	// virtual-time deadline passes.
	down     map[network.Address]bool
	linkDown map[[2]network.Address]time.Time // directed link → down-until (virtual)

	// Gray-failure state: slowed nodes and links DELAY traffic (delivered,
	// not dropped) by an extra latency until a virtual-time deadline
	// passes. Windows expire lazily at send time, like link flaps.
	slowNodes map[network.Address]slowWindow
	slowLinks map[[2]network.Address]slowWindow

	// Wire-codec state: when defaultCodec is set, every cross-node message
	// round-trips through the sender's configured codec (binary payloads for
	// the wire set, gob fallback otherwise) exactly as a TCP deployment
	// would. nodeCodecs overrides per sender, mutated by SwapCodec. All
	// counters are local so simulation reports stay deterministic.
	defaultCodec network.WireCodec
	nodeCodecs   map[network.Address]network.WireCodec

	delivered, dropped, blocked, unroutable uint64
	crashes, restarts, flaps, churnDropped  uint64
	slows, slowDelayed                      uint64
	codecSwaps, binaryFrames, gobFrames     uint64
	codecErrors                             uint64
}

// slowWindow is one gray-failure injection: extra one-way latency applied
// until the virtual-time deadline.
type slowWindow struct {
	extra time.Duration
	until time.Time
}

// EmulatorOption configures a NetworkEmulator.
type EmulatorOption func(*NetworkEmulator)

// WithLatency sets the latency model (default: constant 1ms).
func WithLatency(m LatencyModel) EmulatorOption {
	return func(e *NetworkEmulator) { e.latency = m }
}

// WithLoss drops each message independently with probability p.
func WithLoss(p float64) EmulatorOption {
	return func(e *NetworkEmulator) { e.loss = p }
}

// WithEmulatedCodec makes every cross-node message round-trip through the
// named wire codec before delivery, mirroring the serialize/deserialize a
// real transport performs. Panics on an unknown codec name — emulator
// configuration is test code and should fail loudly.
func WithEmulatedCodec(name string) EmulatorOption {
	return func(e *NetworkEmulator) {
		c, ok := network.CodecByName(name)
		if !ok {
			panic(fmt.Sprintf("simulation: unknown wire codec %q", name))
		}
		e.defaultCodec = c
	}
}

// NewNetworkEmulator creates an emulator bound to the simulation; its
// randomness derives from the simulation seed.
func NewNetworkEmulator(sim *Simulation, opts ...EmulatorOption) *NetworkEmulator {
	e := &NetworkEmulator{
		sim:        sim,
		rng:        rand.New(rand.NewSource(sim.Seed() ^ 0x6e657477)), // "netw"
		latency:    ConstantLatency(time.Millisecond),
		nodes:      make(map[network.Address]*EmulatedTransport),
		nodeCodecs: make(map[network.Address]network.WireCodec),
		partitions: make(map[network.Address]int),
		down:       make(map[network.Address]bool),
		linkDown:   make(map[[2]network.Address]time.Time),
		slowNodes:  make(map[network.Address]slowWindow),
		slowLinks:  make(map[[2]network.Address]slowWindow),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Transport creates an emulated transport component definition for addr.
func (e *NetworkEmulator) Transport(addr network.Address) *EmulatedTransport {
	return &EmulatedTransport{emu: e, self: addr}
}

// Partition assigns nodes to a named partition group: messages only flow
// between nodes in the same group. Group 0 is the default for all nodes.
func (e *NetworkEmulator) Partition(group int, addrs ...network.Address) {
	for _, a := range addrs {
		e.partitions[a] = group
	}
}

// Heal removes all partitions and expired-or-not link flaps; crashed
// nodes stay crashed until Restart.
func (e *NetworkEmulator) Heal() {
	e.partitions = make(map[network.Address]int)
	e.linkDown = make(map[[2]network.Address]time.Time)
}

// Crash takes a node off the network: every message to or from it —
// including messages already in flight toward it — is dropped until
// Restart. The node's components keep running (a crashed process can't
// tell it is isolated); this emulates the process-kill half of churn.
func (e *NetworkEmulator) Crash(addr network.Address) {
	if !e.down[addr] {
		e.down[addr] = true
		e.crashes++
	}
}

// Restart reconnects a crashed node. Messages dropped while it was down
// stay dropped — exactly what a rebooted process observes.
func (e *NetworkEmulator) Restart(addr network.Address) {
	if e.down[addr] {
		delete(e.down, addr)
		e.restarts++
	}
}

// Crashed reports whether addr is currently crashed.
func (e *NetworkEmulator) Crashed(addr network.Address) bool { return e.down[addr] }

// FlapLink takes the directed src→dst link down for downFor of virtual
// time (both directions: call twice for a symmetric flap). The link heals
// itself when the deadline passes — no event needed, expiry is checked
// lazily at send time.
func (e *NetworkEmulator) FlapLink(src, dst network.Address, downFor time.Duration) {
	e.linkDown[[2]network.Address{src, dst}] = e.sim.Now().Add(downFor)
	e.flaps++
}

// linkFlapped reports whether src→dst is inside a flap window, expiring
// stale entries as a side effect.
func (e *NetworkEmulator) linkFlapped(src, dst network.Address) bool {
	key := [2]network.Address{src, dst}
	until, ok := e.linkDown[key]
	if !ok {
		return false
	}
	if e.sim.Now().Before(until) {
		return true
	}
	delete(e.linkDown, key)
	return false
}

// SlowNode makes addr a gray-failing straggler for the given window of
// virtual time: every message it sends or receives is delayed by extra on
// top of the latency model — delivered late, never dropped, so the node
// stays "alive" to binary failure detection while stalling every quorum
// it serves. Deterministic under the seeded sim clock.
func (e *NetworkEmulator) SlowNode(addr network.Address, extra, slowFor time.Duration) {
	e.slowNodes[addr] = slowWindow{extra: extra, until: e.sim.Now().Add(slowFor)}
	e.slows++
}

// SlowLink slows only the directed src→dst link (call twice for a
// symmetric gray link) for the given window of virtual time.
func (e *NetworkEmulator) SlowLink(src, dst network.Address, extra, slowFor time.Duration) {
	e.slowLinks[[2]network.Address{src, dst}] = slowWindow{extra: extra, until: e.sim.Now().Add(slowFor)}
	e.slows++
}

// nodeSlow returns addr's active extra latency, expiring stale windows as
// a side effect.
func (e *NetworkEmulator) nodeSlow(addr network.Address) time.Duration {
	w, ok := e.slowNodes[addr]
	if !ok {
		return 0
	}
	if e.sim.Now().Before(w.until) {
		return w.extra
	}
	delete(e.slowNodes, addr)
	return 0
}

// slowExtra returns the extra one-way latency gray-failure injection adds
// to a src→dst message: the largest applicable window among the source
// node, the destination node, and the directed link.
func (e *NetworkEmulator) slowExtra(src, dst network.Address) time.Duration {
	extra := e.nodeSlow(src)
	if d := e.nodeSlow(dst); d > extra {
		extra = d
	}
	key := [2]network.Address{src, dst}
	if w, ok := e.slowLinks[key]; ok {
		if e.sim.Now().Before(w.until) {
			if w.extra > extra {
				extra = w.extra
			}
		} else {
			delete(e.slowLinks, key)
		}
	}
	return extra
}

// GrayStats returns gray-failure counters: slow windows injected and
// messages delayed by one.
func (e *NetworkEmulator) GrayStats() (slows, slowDelayed uint64) {
	return e.slows, e.slowDelayed
}

// Stats returns delivery counters: delivered, dropped by loss, blocked by
// partitions, and unroutable.
func (e *NetworkEmulator) Stats() (delivered, dropped, blocked, unroutable uint64) {
	return e.delivered, e.dropped, e.blocked, e.unroutable
}

// ChurnStats returns fault-injection counters: crashes and restarts
// applied, link flaps injected, and messages dropped by churn (crashed
// endpoints or flapped links).
func (e *NetworkEmulator) ChurnStats() (crashes, restarts, flaps, churnDropped uint64) {
	return e.crashes, e.restarts, e.flaps, e.churnDropped
}

// SwapCodec switches the wire codec one node uses for subsequent sends,
// the emulator analog of the TCP transport's live SwapCodec control path.
// Only meaningful when the emulator was built WithEmulatedCodec. Panics on
// an unknown name.
func (e *NetworkEmulator) SwapCodec(addr network.Address, name string) {
	c, ok := network.CodecByName(name)
	if !ok {
		panic(fmt.Sprintf("simulation: unknown wire codec %q", name))
	}
	e.nodeCodecs[addr] = c
	e.codecSwaps++
}

// codecFor returns the wire codec the given sender is configured with, or
// nil when the emulator does no codec round-tripping.
func (e *NetworkEmulator) codecFor(src network.Address) network.WireCodec {
	if c, ok := e.nodeCodecs[src]; ok {
		return c
	}
	return e.defaultCodec
}

// CodecStats returns codec round-trip counters: live swaps applied, frames
// that went over the emulated wire in the binary format vs gob, and
// encode/decode failures (dropped).
func (e *NetworkEmulator) CodecStats() (swaps, binaryFrames, gobFrames, codecErrors uint64) {
	return e.codecSwaps, e.binaryFrames, e.gobFrames, e.codecErrors
}

// send routes one message through the emulated network.
func (e *NetworkEmulator) send(m network.Message) {
	src, dst := m.Source(), m.Destination()
	if e.down[src] || e.down[dst] || e.linkFlapped(src, dst) {
		e.churnDropped++
		return
	}
	if e.partitions[src] != e.partitions[dst] {
		e.blocked++
		return
	}
	if e.loss > 0 && e.rng.Float64() < e.loss {
		e.dropped++
		return
	}
	if c := e.codecFor(src); c != nil {
		// Fresh buffer per message: the decoded message may alias it.
		payload, err := c.Encode(m)
		if err != nil {
			e.codecErrors++
			return
		}
		if network.IsBinaryPayload(payload) {
			e.binaryFrames++
		} else {
			e.gobFrames++
		}
		decoded, err := network.DecodePayload(payload)
		if err != nil {
			e.codecErrors++
			return
		}
		m = decoded
	}
	d := e.latency(e.rng, src, dst)
	if extra := e.slowExtra(src, dst); extra > 0 {
		d += extra
		e.slowDelayed++
	}
	e.sim.ScheduleAt(d, fmt.Sprintf("net:%s->%s", src, dst), func() {
		if e.down[dst] {
			e.churnDropped++ // crashed while the message was in flight
			return
		}
		t, ok := e.nodes[dst]
		if !ok {
			e.unroutable++
			return
		}
		e.delivered++
		_ = core.TriggerOn(t.port, m)
	})
}

// EmulatedTransport is one node's Network provider inside the emulator.
type EmulatedTransport struct {
	emu  *NetworkEmulator
	self network.Address
	port *core.Port
}

var _ core.Definition = (*EmulatedTransport)(nil)

// Setup declares the provided Network port and registers with the emulator
// on Start (deregisters on Stop, so destroyed nodes become unroutable).
func (t *EmulatedTransport) Setup(ctx *core.Ctx) {
	t.port = ctx.Provides(network.PortType)
	core.Subscribe(ctx, t.port, func(m network.Message) {
		if m.Destination() == t.self {
			_ = core.TriggerOn(t.port, m) // self-delivery, zero latency
			return
		}
		t.emu.send(m)
	})
	core.Subscribe(ctx, ctx.Control(), func(core.Start) {
		t.emu.nodes[t.self] = t
	})
	core.Subscribe(ctx, ctx.Control(), func(core.Stop) {
		if t.emu.nodes[t.self] == t {
			delete(t.emu.nodes, t.self)
		}
	})
}

// Self returns the transport's address.
func (t *EmulatedTransport) Self() network.Address { return t.self }

// EmitPeerStatus publishes a transport liveness hint on this node's
// Network port, mirroring the PeerStatus indications the TCP transport
// emits on reconnect state transitions. Tests and chaos scenarios use it
// to exercise PeerStatus consumers deterministically.
func (t *EmulatedTransport) EmitPeerStatus(s network.PeerStatus) {
	_ = core.TriggerOn(t.port, s)
}
