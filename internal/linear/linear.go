// Package linear implements a linearizability checker for single-register
// (single-key) read/write histories, in the style of Wing & Gong: a
// backtracking search over all linear extensions of the real-time partial
// order, with memoization on (completed-set, register-state). It is used
// by the test suite to verify that the CATS/ABD data path is linearizable
// under concurrent operations, partitions, and retries.
package linear

import "sort"

// Kind distinguishes reads from writes.
type Kind int

const (
	// Read returned (Value, Found) to the client.
	Read Kind = iota + 1
	// Write installed Value.
	Write
)

// Op is one completed operation of a history: its invocation and response
// times (any monotonic clock — virtual or real), and its value.
type Op struct {
	// Kind is Read or Write.
	Kind Kind
	// Value is the value written, or the value a read returned.
	Value string
	// Found is false when a read observed "not found" (reads only).
	Found bool
	// Start is the invocation time.
	Start int64
	// End is the response time (must be >= Start).
	End int64
}

// Check reports whether the history of operations on one register is
// linearizable with respect to the initial state "not found". Histories of
// up to a few dozen concurrent operations check in well under a second;
// the search is exponential in the worst case, so keep histories modest.
func Check(history []Op) bool {
	n := len(history)
	if n == 0 {
		return true
	}
	if n > 63 {
		panic("linear: history too large for bitmask search (max 63 ops)")
	}
	ops := append([]Op(nil), history...)
	// Deterministic exploration order: by start time.
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Start != ops[j].Start {
			return ops[i].Start < ops[j].Start
		}
		return ops[i].End < ops[j].End
	})

	// Precompute the real-time precedence: before[i] = set of ops that must
	// linearize before op i (they ended before i started).
	before := make([]uint64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && ops[j].End < ops[i].Start {
				before[i] |= 1 << uint(j)
			}
		}
	}

	// state: index of the last applied write in ops, or -1 for "not found".
	type memoKey struct {
		done uint64
		last int8
	}
	visited := make(map[memoKey]bool)

	var search func(done uint64, last int8) bool
	search = func(done uint64, last int8) bool {
		if done == (uint64(1)<<uint(n))-1 {
			return true
		}
		key := memoKey{done: done, last: last}
		if visited[key] {
			return false
		}
		visited[key] = true

		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			if done&bit != 0 {
				continue
			}
			// All real-time predecessors must already be linearized.
			if before[i]&^done != 0 {
				continue
			}
			op := ops[i]
			switch op.Kind {
			case Write:
				if search(done|bit, int8(i)) {
					return true
				}
			case Read:
				consistent := false
				if last < 0 {
					consistent = !op.Found
				} else {
					consistent = op.Found && op.Value == ops[last].Value
				}
				if consistent && search(done|bit, last) {
					return true
				}
			}
		}
		return false
	}
	return search(0, -1)
}

// CheckPerKey partitions a multi-key history and checks each key's
// register history independently (registers are independent objects, so a
// multi-register history is linearizable iff each per-register
// sub-history is).
func CheckPerKey(history map[string][]Op) (bool, string) {
	keys := make([]string, 0, len(history))
	for k := range history {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !Check(history[k]) {
			return false, k
		}
	}
	return true, ""
}
