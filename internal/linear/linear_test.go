package linear

import "testing"

// w and r build ops tersely.
func w(val string, start, end int64) Op {
	return Op{Kind: Write, Value: val, Start: start, End: end}
}

func r(val string, found bool, start, end int64) Op {
	return Op{Kind: Read, Value: val, Found: found, Start: start, End: end}
}

func TestEmptyAndSingle(t *testing.T) {
	if !Check(nil) {
		t.Fatal("empty history must be linearizable")
	}
	if !Check([]Op{w("a", 0, 1)}) {
		t.Fatal("single write")
	}
	if !Check([]Op{r("", false, 0, 1)}) {
		t.Fatal("initial read must see not-found")
	}
	if Check([]Op{r("a", true, 0, 1)}) {
		t.Fatal("read of never-written value must fail")
	}
}

func TestSequentialHistory(t *testing.T) {
	ok := Check([]Op{
		w("a", 0, 1),
		r("a", true, 2, 3),
		w("b", 4, 5),
		r("b", true, 6, 7),
	})
	if !ok {
		t.Fatal("sequential consistent history rejected")
	}
}

func TestStaleReadRejected(t *testing.T) {
	ok := Check([]Op{
		w("a", 0, 1),
		w("b", 2, 3),
		r("a", true, 4, 5), // stale: b completed before this read started
	})
	if ok {
		t.Fatal("stale read accepted")
	}
}

func TestNotFoundAfterCompletedWriteRejected(t *testing.T) {
	ok := Check([]Op{
		w("a", 0, 1),
		r("", false, 2, 3),
	})
	if ok {
		t.Fatal("not-found after completed write accepted")
	}
}

func TestConcurrentWriteEitherOrderAllowed(t *testing.T) {
	// Two concurrent writes; a later read may see either.
	base := []Op{
		w("a", 0, 10),
		w("b", 0, 10),
	}
	for _, val := range []string{"a", "b"} {
		h := append(append([]Op(nil), base...), r(val, true, 11, 12))
		if !Check(h) {
			t.Fatalf("read of %q after concurrent writes rejected", val)
		}
	}
}

func TestConcurrentReadDuringWrite(t *testing.T) {
	// A read concurrent with a write may see old or new value.
	for _, c := range []struct {
		val   string
		found bool
	}{{"", false}, {"a", true}} {
		h := []Op{
			w("a", 0, 10),
			r(c.val, c.found, 5, 6),
		}
		if !Check(h) {
			t.Fatalf("concurrent read (%q,%v) rejected", c.val, c.found)
		}
	}
}

func TestReadsCannotGoBackwards(t *testing.T) {
	// Read1 sees the new value; read2 AFTER read1 sees the old one: not
	// linearizable even though the write is concurrent with both.
	ok := Check([]Op{
		w("old", 0, 1),
		w("new", 2, 20),
		r("new", true, 3, 4),
		r("old", true, 5, 6),
	})
	if ok {
		t.Fatal("backwards reads accepted")
	}
}

func TestReadBetweenConcurrentWritesAnchorsOrder(t *testing.T) {
	// Write a and write b concurrent; read sees b then a later read sees a:
	// impossible (a would have to linearize after b, but then the first
	// read of b... both reads sequential): not linearizable.
	ok := Check([]Op{
		w("a", 0, 100),
		w("b", 0, 100),
		r("b", true, 10, 11),
		r("a", true, 12, 13),
		r("b", true, 14, 15),
	})
	if ok {
		t.Fatal("flip-flopping reads accepted")
	}
}

func TestChainOfOverlappingOps(t *testing.T) {
	// Pipeline of overlapping writes with reads that are each consistent
	// with some linearization.
	ok := Check([]Op{
		w("1", 0, 4),
		w("2", 2, 6),
		w("3", 5, 9),
		r("2", true, 7, 8),
		r("3", true, 10, 11),
	})
	if !ok {
		t.Fatal("valid overlapping history rejected")
	}
}

func TestCheckPerKey(t *testing.T) {
	ok, key := CheckPerKey(map[string][]Op{
		"x": {w("a", 0, 1), r("a", true, 2, 3)},
		"y": {w("b", 0, 1), r("b", true, 2, 3)},
	})
	if !ok {
		t.Fatalf("valid multi-key history rejected at %q", key)
	}
	ok, key = CheckPerKey(map[string][]Op{
		"x": {w("a", 0, 1), r("a", true, 2, 3)},
		"y": {w("b", 0, 1), r("", false, 2, 3)},
	})
	if ok || key != "y" {
		t.Fatalf("invalid key not identified: ok=%v key=%q", ok, key)
	}
}

func TestTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized history must panic")
		}
	}()
	Check(make([]Op, 64))
}
