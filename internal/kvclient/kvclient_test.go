package kvclient

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/abd"
	"repro/internal/cats"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/network"
)

// newCluster boots a 3-node loopback CATS cluster with one kvclient wired
// to each node; returns the clients.
func newCluster(t *testing.T) []*Client {
	t.Helper()
	registry := network.NewLoopbackRegistry()
	env := cats.LoopbackEnv{Registry: registry}
	rt := core.New(core.WithFaultPolicy(core.LogAndContinue))
	t.Cleanup(rt.Shutdown)

	const n = 3
	refs := make([]ident.NodeRef, n)
	for i := range refs {
		refs[i] = ident.NodeRef{
			Key:  ident.Key(uint64(i+1) << 60),
			Addr: network.Address{Host: fmt.Sprintf("kv-%d", i), Port: 1},
		}
	}
	clients := make([]*Client, n)
	peers := make([]*cats.Peer, n)
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		for i := range refs {
			cfg := cats.NodeConfig{
				Self:              refs[i],
				ReplicationDegree: 3,
				FDInterval:        100 * time.Millisecond,
				StabilizePeriod:   100 * time.Millisecond,
				CyclonPeriod:      200 * time.Millisecond,
				OpTimeout:         time.Second,
			}
			if i > 0 {
				cfg.Seeds = []ident.NodeRef{refs[0]}
			}
			peers[i] = cats.NewPeer(env, cfg)
			pc := ctx.Create(fmt.Sprintf("peer-%d", i), peers[i])
			clients[i] = New()
			cc := ctx.Create(fmt.Sprintf("client-%d", i), clients[i])
			ctx.Connect(pc.Provided(abd.PutGetPortType), cc.Required(abd.PutGetPortType))
		}
	}))
	// Wait for ring convergence.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		joined := 0
		for _, p := range peers {
			if p.Node != nil && p.Node.Ring.Joined() && len(p.Node.Ring.Succs()) > 0 {
				joined++
			}
		}
		if joined == n {
			time.Sleep(500 * time.Millisecond) // membership tables
			return clients
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("ring did not converge")
	return nil
}

func TestPutGetRoundTrip(t *testing.T) {
	clients := newCluster(t)
	ctx := context.Background()
	if err := clients[0].Put(ctx, "lang", []byte("go")); err != nil {
		t.Fatal(err)
	}
	v, err := clients[2].Get(ctx, "lang")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "go" {
		t.Fatalf("got %q", v)
	}
}

func TestGetMissingReturnsErrNotFound(t *testing.T) {
	clients := newCluster(t)
	_, err := clients[1].Get(context.Background(), "missing")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestContextCancellation(t *testing.T) {
	clients := newCluster(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := clients[0].Get(ctx, "k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestUnstartedClientErrors(t *testing.T) {
	c := New()
	if err := c.Put(context.Background(), "k", nil); err == nil {
		t.Fatalf("unstarted client must error")
	}
}

func TestConcurrentCallers(t *testing.T) {
	clients := newCluster(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 30)
	for g := 0; g < 3; g++ {
		for i := 0; i < 10; i++ {
			wg.Add(1)
			go func(g, i int) {
				defer wg.Done()
				key := fmt.Sprintf("k-%d-%d", g, i)
				if err := clients[g].Put(ctx, key, []byte(key)); err != nil {
					errs <- err
					return
				}
				v, err := clients[(g+1)%3].Get(ctx, key)
				if err != nil {
					errs <- err
					return
				}
				if string(v) != key {
					errs <- fmt.Errorf("got %q want %q", v, key)
				}
			}(g, i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestOverwriteVisibleAcrossClients(t *testing.T) {
	clients := newCluster(t)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		val := []byte(fmt.Sprintf("v%d", i))
		if err := clients[i%3].Put(ctx, "counter", val); err != nil {
			t.Fatal(err)
		}
		got, err := clients[(i+1)%3].Get(ctx, "counter")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(val) {
			t.Fatalf("iteration %d: got %q want %q", i, got, val)
		}
	}
}
