// Package kvclient provides a synchronous, context-aware Go API over the
// CATS PutGet port — the paper's "CATS Client" component (Figure 10) — so
// ordinary goroutine-based code can call into the event-driven component
// system without writing handlers.
//
// A Client is itself a component: it correlates request IDs to waiting
// callers and bridges the asynchronous indication events back to channel
// waits.
package kvclient

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/abd"
	"repro/internal/cats"
	"repro/internal/core"
)

// ErrNotFound is returned by Get for keys never written.
var ErrNotFound = errors.New("kvclient: key not found")

// Client is a component definition providing blocking Get/Put calls. Wire
// its required PutGet port to a CATS node (or any PutGet provider), start
// it, then call Get/Put from any goroutine.
type Client struct {
	ctx  *core.Ctx
	port *core.Port

	mu      sync.Mutex
	waiting map[uint64]chan result
	started bool
}

type result struct {
	value []byte
	found bool
	err   string
}

// New creates a client component definition.
func New() *Client {
	return &Client{waiting: make(map[uint64]chan result)}
}

var _ core.Definition = (*Client)(nil)

// Setup declares the required PutGet port and response handlers.
func (c *Client) Setup(ctx *core.Ctx) {
	c.ctx = ctx
	c.port = ctx.Requires(abd.PutGetPortType)
	core.Subscribe(ctx, c.port, func(g abd.GetResponse) {
		c.resolve(g.ReqID, result{value: g.Value, found: g.Found, err: g.Err})
	})
	core.Subscribe(ctx, c.port, func(p abd.PutResponse) {
		c.resolve(p.ReqID, result{found: true, err: p.Err})
	})
	core.Subscribe(ctx, ctx.Control(), func(core.Start) {
		c.mu.Lock()
		c.started = true
		c.mu.Unlock()
	})
}

// Port returns the client's required PutGet port (inner half), for wiring
// by the enclosing scope via the owning component's Required accessor.
func (c *Client) resolve(id uint64, r result) {
	c.mu.Lock()
	ch, ok := c.waiting[id]
	delete(c.waiting, id)
	c.mu.Unlock()
	if ok {
		ch <- r
	}
}

// call issues one request and waits for its correlated response.
func (c *Client) call(ctx context.Context, id uint64, send func()) (result, error) {
	ch := make(chan result, 1)
	c.mu.Lock()
	if !c.started {
		c.mu.Unlock()
		return result{}, errors.New("kvclient: client not started (create it under a started parent and wire its PutGet port)")
	}
	c.waiting[id] = ch
	c.mu.Unlock()
	send()
	select {
	case r := <-ch:
		return r, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.waiting, id)
		c.mu.Unlock()
		return result{}, fmt.Errorf("kvclient: %w", ctx.Err())
	}
}

// Get reads a key linearizably.
func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	id := cats.NextReqID()
	r, err := c.call(ctx, id, func() {
		_ = core.TriggerOn(c.port, abd.GetRequest{ReqID: id, Key: key})
	})
	if err != nil {
		return nil, err
	}
	if r.err != "" {
		return nil, fmt.Errorf("kvclient: get %q: %s", key, r.err)
	}
	if !r.found {
		return nil, fmt.Errorf("get %q: %w", key, ErrNotFound)
	}
	return r.value, nil
}

// Put writes a key linearizably.
func (c *Client) Put(ctx context.Context, key string, value []byte) error {
	id := cats.NextReqID()
	r, err := c.call(ctx, id, func() {
		_ = core.TriggerOn(c.port, abd.PutRequest{ReqID: id, Key: key, Value: value})
	})
	if err != nil {
		return err
	}
	if r.err != "" {
		return fmt.Errorf("kvclient: put %q: %s", key, r.err)
	}
	return nil
}
