package handoff

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/kvstore"
)

// TestReplayCompletesBeforeFirstPullAnswered is the handoff side of the
// recovery event-stream ordering: a node whose store was rebuilt from
// WAL + snapshot must have finished every shard's replay before it
// answers a peer's handoff pull — the pulled entries come from the
// recovered map, never from a half-replayed one. As with the ABD test,
// the order is structural (kvstore.Open is synchronous, the component
// gets the store afterwards); the stream assertion pins it.
func TestReplayCompletesBeforeFirstPullAnswered(t *testing.T) {
	dir := t.TempDir()
	keys := []string{"ho-alpha", "ho-bravo", "ho-charlie", "ho-delta", "ho-echo"}

	seed, err := kvstore.Open(dir, kvstore.Options{Sync: kvstore.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if ok, err := seed.ApplyDurable(k, kvstore.Version{Seq: uint64(i + 1), Writer: 9}, []byte("durable-"+k)); !ok || err != nil {
			t.Fatalf("seed %q: ok=%v err=%v", k, ok, err)
		}
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var events []string
	add := func(ev string) { mu.Lock(); events = append(events, ev); mu.Unlock() }

	recovered, err := kvstore.Open(dir, kvstore.Options{
		Sync: kvstore.SyncAlways,
		OnShardRecovered: func(shard, snapEntries, walEntries int, torn bool) {
			add(fmt.Sprintf("replay shard=%d", shard))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if rec := recovered.Recovery(); rec.Keys != len(keys) || rec.TornTails != 0 {
		t.Fatalf("recovery stats: %+v, want %d keys and no torn tails", rec, len(keys))
	}

	w := newHoWorld(t, 51, 2)
	a, b := w.nodes[0], w.nodes[1]
	a.h.cfg.Store = recovered // node a serves pulls from the recovered store

	// Degree 2, two members: b covers everything and pulls it all from a.
	w.feedView(1, 4, w.members(0, 1))
	if len(b.synced) != 1 || b.synced[0].Keys != len(keys) {
		t.Fatalf("pull from recovered store: synced=%+v, want %d keys", b.synced, len(keys))
	}
	add("pull answered")

	for _, k := range keys {
		_, v, ok := b.store.Read(k)
		if !ok || string(v) != "durable-"+k {
			t.Fatalf("pulled %q: ok=%t value=%q, want the recovered value", k, ok, v)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	replays, pullIdx := 0, -1
	for i, ev := range events {
		if strings.HasPrefix(ev, "replay") {
			replays++
			if pullIdx >= 0 {
				t.Fatalf("replay event %q at %d after pull answered at %d:\n%v", ev, i, pullIdx, events)
			}
		} else if ev == "pull answered" {
			pullIdx = i
		}
	}
	if replays != kvstore.ShardCount || pullIdx < 0 {
		t.Fatalf("stream: %d replay events (want %d), pull at %d:\n%v", replays, kvstore.ShardCount, pullIdx, events)
	}
}
