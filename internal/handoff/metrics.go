// Process-wide handoff counters, following the internal/network pattern:
// plain atomics aggregated across every handoff component in the process
// (one per node in simulations), exposed through the web metrics-source
// registry and the monitor's runtime rollups. Counters only ever grow, so
// experiment reports print deltas.
package handoff

import (
	"sync/atomic"

	"repro/internal/web"
)

var (
	keysTotal      atomic.Uint64
	bytesTotal     atomic.Uint64
	transfersTotal atomic.Uint64
	epochGauge     atomic.Uint64
)

// Metrics is a snapshot of the process-wide handoff counters.
type Metrics struct {
	// Keys is the number of entries applied from handoff transfers.
	Keys uint64
	// Bytes is the value bytes applied from handoff transfers.
	Bytes uint64
	// Transfers is the number of completed sync rounds.
	Transfers uint64
	// Epoch is the highest group-view epoch observed by any handoff
	// component in the process.
	Epoch uint64
}

// GlobalMetrics snapshots the process-wide handoff counters.
func GlobalMetrics() Metrics {
	return Metrics{
		Keys:      keysTotal.Load(),
		Bytes:     bytesTotal.Load(),
		Transfers: transfersTotal.Load(),
		Epoch:     epochGauge.Load(),
	}
}

func addTransferred(keys, bytes uint64) {
	keysTotal.Add(keys)
	bytesTotal.Add(bytes)
}

func addTransfer() { transfersTotal.Add(1) }

// observeEpoch raises the process-wide epoch gauge monotonically.
func observeEpoch(e uint64) {
	for {
		cur := epochGauge.Load()
		if e <= cur || epochGauge.CompareAndSwap(cur, e) {
			return
		}
	}
}

func init() {
	web.RegisterMetricsSource("handoff", func(m *web.MetricsWriter) {
		s := GlobalMetrics()
		m.Header("cats_handoff_keys_total", "counter", "Entries applied from handoff transfers.")
		m.Counter("cats_handoff_keys_total", s.Keys)
		m.Header("cats_handoff_bytes_total", "counter", "Value bytes applied from handoff transfers.")
		m.Counter("cats_handoff_bytes_total", s.Bytes)
		m.Header("cats_handoff_transfers_total", "counter", "Completed handoff sync rounds.")
		m.Counter("cats_handoff_transfers_total", s.Transfers)
		m.Header("cats_group_epoch", "gauge", "Highest replica-group epoch observed in this process.")
		m.Gauge("cats_group_epoch", float64(s.Epoch))
	})
}
