// Package handoff implements replica-group state handoff: the component
// that carries stored registers across ring reconfigurations, so quorum
// operations in a new epoch read state written in the old one (the paper's
// consistent-quorums reconfiguration, §5). On every epoch-versioned
// GroupView from the ring it (1) pushes entries this node no longer covers
// to their new owners, and (2) pulls the key range it now covers from the
// surviving view members — announcing SyncStarted before and Synced after,
// which the replication layer uses to refuse acknowledging quorum phases
// while the transfer is in flight. Transfers reuse the store's version
// gate, so duplicated or reordered chunks are harmless.
package handoff

import (
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/kvstore"
	"repro/internal/network"
	"repro/internal/ring"
	"repro/internal/status"
	"repro/internal/timer"
	"repro/internal/tracing"
)

// SyncStarted announces that a new group view arrived and the node is
// pulling its covered range: the replica must not ack quorum phases until
// the matching Synced. Round is a handoff-local monotone counter — per-node
// epochs are Lamport-merged and therefore not comparable across components,
// so sync completion is matched by round, not epoch.
type SyncStarted struct {
	Epoch uint64
	Round uint64
}

// Synced announces that the pull for Round completed (possibly partially,
// on timeout) with Keys entries / Bytes value bytes applied.
type Synced struct {
	Epoch uint64
	Round uint64
	Keys  int
	Bytes int
}

// PortType is the Handoff abstraction: pure indications consumed by the
// replication layer.
var PortType = core.NewPortType("Handoff",
	core.Indication[SyncStarted](),
	core.Indication[Synced](),
)

// Wire messages.

// pullReqMsg asks a view member for the entries the requester covers. The
// trace context carries the round's trace with the per-target pull span,
// so responder-side serve spans join the puller's round timeline.
type pullReqMsg struct {
	network.Header
	tracing.Context
	Epoch     uint64
	Round     uint64
	Requester ident.NodeRef
}

// itemsMsg carries one chunk of entries. Push marks unsolicited transfers
// (ranges the sender no longer covers); pull answers echo the round and set
// Done on the final chunk. Pull answers echo the request's trace context;
// pushes carry the pusher's round trace.
type itemsMsg struct {
	network.Header
	tracing.Context
	Epoch uint64
	Round uint64
	Items []kvstore.Entry
	Done  bool
	Push  bool
}

func init() {
	network.Register(pullReqMsg{})
	network.Register(itemsMsg{})
}

type pullTimeout struct {
	timer.Timeout
	Round uint64
}

// Config parameterizes a handoff component.
type Config struct {
	// Self is the local node reference.
	Self ident.NodeRef
	// Degree is the replication degree used to decide coverage (default 3).
	Degree int
	// Store is the register store shared with the ABD replica (required).
	Store *kvstore.Store
	// Members optionally supplies a wider membership view (the one-hop
	// router's table) used when answering pulls; the requester is always
	// merged in. When nil, responders fall back to their last group view.
	Members func() []ident.NodeRef
	// PullTimeout bounds how long a sync round waits for lagging members
	// before declaring the transfer (partially) complete (default 2s).
	PullTimeout time.Duration
	// ChunkSize caps entries per itemsMsg (default 128).
	ChunkSize int
}

func (c *Config) applyDefaults() {
	if c.Degree <= 0 {
		c.Degree = 3
	}
	if c.PullTimeout <= 0 {
		c.PullTimeout = 2 * time.Second
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 128
	}
}

// Handoff is the state-handoff component: provides Handoff, requires Ring,
// Network, and Timer.
type Handoff struct {
	cfg Config

	ctx *core.Ctx
	hop *core.Port
	rng *core.Port
	net *core.Port
	tmr *core.Port

	// Sync-round state; mutated only in handlers (component-serial).
	epoch   uint64
	round   uint64
	syncing bool
	pending map[network.Address]struct{}
	view    []ident.NodeRef // last group-view members (responder fallback)
	tid     timer.ID

	roundKeys  int
	roundBytes int

	// Round tracing: handoff rounds are rare (reconfiguration events), so
	// every round is traced whenever tracing is enabled at all. rtc is the
	// round's trace context (SpanID = the round root span); pullSpans maps
	// each pull target to its per-peer span, recorded when the target's
	// Done arrives (or the round times out).
	ids        *tracing.IDSource
	nodeName   string
	rtc        tracing.Context
	roundStart time.Time
	pullSpans  map[network.Address]uint64

	// Counters for status reporting.
	rounds, partials, abandoned uint64
	pullsServed, pushesSent     uint64
	keysIn, bytesIn             uint64
}

// New creates a handoff component definition. Store must be the same
// instance the node's ABD replica serves from.
func New(cfg Config) *Handoff {
	cfg.applyDefaults()
	if cfg.Store == nil {
		panic("handoff: Config.Store is required")
	}
	return &Handoff{cfg: cfg, pending: make(map[network.Address]struct{})}
}

var _ core.Definition = (*Handoff)(nil)

// Setup declares ports and handlers.
func (h *Handoff) Setup(ctx *core.Ctx) {
	h.ctx = ctx
	h.nodeName = h.cfg.Self.Addr.String()
	h.ids = tracing.NewIDSource(h.nodeName)
	h.hop = ctx.Provides(PortType)
	h.rng = ctx.Requires(ring.PortType)
	h.net = ctx.Requires(network.PortType)
	h.tmr = ctx.Requires(timer.PortType)

	st := ctx.Provides(status.PortType)
	core.Subscribe(ctx, st, func(q status.Request) {
		syncing := int64(0)
		if h.syncing {
			syncing = 1
		}
		ctx.Trigger(status.Response{ReqID: q.ReqID, Component: "handoff", Metrics: map[string]int64{
			"epoch":        int64(h.epoch),
			"rounds":       int64(h.rounds),
			"partials":     int64(h.partials),
			"abandoned":    int64(h.abandoned),
			"pulls_served": int64(h.pullsServed),
			"pushes_sent":  int64(h.pushesSent),
			"keys_in":      int64(h.keysIn),
			"bytes_in":     int64(h.bytesIn),
			"syncing":      syncing,
		}}, st)
	})

	core.Subscribe(ctx, h.rng, h.handleGroupView)
	core.Subscribe(ctx, h.net, h.handlePullReq)
	core.Subscribe(ctx, h.net, h.handleItems)
	core.Subscribe(ctx, h.tmr, h.handleTimeout)
}

// handleGroupView starts a sync round for the new view: push what this node
// released, pull what it now covers. An in-flight round is abandoned — its
// Synced will never fire, but the replication layer matches rounds, so the
// fresh SyncStarted supersedes it.
func (h *Handoff) handleGroupView(v ring.GroupView) {
	if h.syncing {
		h.abandoned++
		h.ctx.Trigger(timer.CancelTimeout{ID: h.tid}, h.tmr)
		h.syncing = false
		h.endRoundTrace("abandoned")
	}
	h.epoch = v.Epoch
	h.round++
	observeEpoch(v.Epoch)
	h.view = v.Members
	h.beginRoundTrace()

	h.pushReleased(v)

	targets := make([]ident.NodeRef, 0, len(v.Members))
	for _, m := range v.Members {
		if m.Addr != h.cfg.Self.Addr && !m.IsZero() {
			targets = append(targets, m)
		}
	}

	h.ctx.Trigger(SyncStarted{Epoch: h.epoch, Round: h.round}, h.hop)
	h.roundKeys, h.roundBytes = 0, 0
	if len(targets) == 0 {
		h.finishRound("ok")
		return
	}
	h.syncing = true
	h.pending = make(map[network.Address]struct{}, len(targets))
	for _, t := range targets {
		h.pending[t.Addr] = struct{}{}
		h.ctx.Trigger(pullReqMsg{
			Header:    network.NewHeader(h.cfg.Self.Addr, t.Addr),
			Context:   h.pullCtx(t.Addr),
			Epoch:     h.epoch,
			Round:     h.round,
			Requester: h.cfg.Self,
		}, h.net)
	}
	h.tid = timer.NextID()
	h.ctx.Trigger(timer.ScheduleTimeout{
		Delay:   h.cfg.PullTimeout,
		Timeout: pullTimeout{Timeout: timer.Timeout{ID: h.tid}, Round: h.round},
	}, h.tmr)
}

// coverageInterval returns the ring interval (from, to] of keys owner
// replicates under a key-sorted, deduplicated membership view: the keys
// between owner's degree-th predecessor (exclusive) and owner itself
// (inclusive). With at most degree members the owner covers the whole
// ring, returned as from == to. ok is false when the interval form does
// not apply — owner absent from the view, or duplicate ring keys making
// predecessor order ambiguous — and callers fall back to per-key group
// resolution.
func coverageInterval(sorted []ident.NodeRef, owner ident.NodeRef, degree int) (from, to ident.Key, ok bool) {
	idx := -1
	for i, m := range sorted {
		if i > 0 && m.Key == sorted[i-1].Key {
			return 0, 0, false
		}
		if m.Key == owner.Key && m.Addr == owner.Addr {
			idx = i
		}
	}
	if idx < 0 {
		return 0, 0, false
	}
	to = sorted[idx].Key
	if len(sorted) <= degree {
		return to, to, true
	}
	from = sorted[(idx-degree+len(sorted))%len(sorted)].Key
	return from, to, true
}

// shardCovered reports whether shard si's whole span lies inside the
// coverage arc (from, to]: its low end is in the arc and walking clockwise
// to its high end does not pass the arc's end.
func shardCovered(si int, from, to ident.Key) bool {
	if from == to {
		return true
	}
	lo, hi := kvstore.ShardSpan(si)
	return lo.InHalfOpenInterval(from, to) && lo.DistanceTo(hi) <= lo.DistanceTo(to)
}

// pushReleased sends every stored entry this node no longer replicates to
// its current owners. Entries are never deleted locally — extra copies are
// harmless, lost ones are not. Iteration is per store shard: shards whose
// ring span stays fully inside this node's coverage arc hold nothing to
// push and are skipped without scanning.
func (h *Handoff) pushReleased(v ring.GroupView) {
	if len(v.Members) < 2 {
		return
	}
	members := append([]ident.NodeRef(nil), v.Members...)
	ident.SortByKey(members)
	members = ident.Dedup(members)
	covFrom, covTo, covOK := coverageInterval(members, h.cfg.Self, h.cfg.Degree)

	perOwner := make(map[network.Address][]kvstore.Entry)
	owners := make([]ident.NodeRef, 0, h.cfg.Degree)
	for si := 0; si < h.cfg.Store.NumShards(); si++ {
		if covOK && shardCovered(si, covFrom, covTo) {
			continue // everything in this shard is still replicated here
		}
		for _, e := range h.cfg.Store.ShardEntries(si) {
			group := ident.SuccessorsOf(members, ident.KeyOfString(e.Key), h.cfg.Degree)
			covered := false
			owners = owners[:0]
			for _, o := range group {
				if o.Addr == h.cfg.Self.Addr {
					covered = true
				} else {
					owners = append(owners, o)
				}
			}
			if covered {
				continue
			}
			for _, o := range owners {
				perOwner[o.Addr] = append(perOwner[o.Addr], e)
			}
		}
	}
	// Iterate owners in the deterministic member order, not map order.
	for _, m := range v.Members {
		items, ok := perOwner[m.Addr]
		if !ok {
			continue
		}
		for start := 0; start < len(items); start += h.cfg.ChunkSize {
			end := start + h.cfg.ChunkSize
			if end > len(items) {
				end = len(items)
			}
			h.ctx.Trigger(itemsMsg{
				Header:  network.NewHeader(h.cfg.Self.Addr, m.Addr),
				Context: h.rtc,
				Epoch:   h.epoch,
				Round:   h.round,
				Items:   items[start:end],
				Done:    end == len(items),
				Push:    true,
			}, h.net)
		}
		h.pushesSent++
		h.recordInstant("handoff.push", h.rtc, "ok")
	}
}

// handlePullReq answers with the entries the requester covers, judged
// against this node's membership view merged with the requester (the
// requester may be absent from a stale view). Chunked; the final chunk —
// or an empty answer — carries Done.
func (h *Handoff) handlePullReq(m pullReqMsg) {
	members := h.view
	if h.cfg.Members != nil {
		members = h.cfg.Members()
	}
	merged := make([]ident.NodeRef, 0, len(members)+1)
	merged = append(merged, members...)
	merged = append(merged, m.Requester)
	ident.SortByKey(merged)
	merged = ident.Dedup(merged)

	// The requester's covered range is one ring interval, so only the
	// store shards overlapping it are scanned, and chunks never straddle a
	// shard: each partition streams out as its own run of itemsMsg frames.
	var shardItems [][]kvstore.Entry
	total := 0
	if covFrom, covTo, covOK := coverageInterval(merged, m.Requester, h.cfg.Degree); covOK {
		for _, si := range kvstore.ShardsInRange(covFrom, covTo) {
			items := h.cfg.Store.ShardEntriesInRange(si, covFrom, covTo)
			if len(items) > 0 {
				shardItems = append(shardItems, items)
				total += len(items)
			}
		}
	} else {
		// Ambiguous view (duplicate ring keys): resolve per key.
		var items []kvstore.Entry
		for _, e := range h.cfg.Store.Entries() {
			group := ident.SuccessorsOf(merged, ident.KeyOfString(e.Key), h.cfg.Degree)
			for _, o := range group {
				if o.Addr == m.Requester.Addr {
					items = append(items, e)
					break
				}
			}
		}
		if len(items) > 0 {
			shardItems = append(shardItems, items)
			total = len(items)
		}
	}
	h.pullsServed++
	h.recordInstant("handoff.serve", m.Context, "ok")
	if total == 0 {
		h.ctx.Trigger(itemsMsg{Header: network.Reply(m), Context: m.Context, Epoch: m.Epoch, Round: m.Round, Done: true}, h.net)
		return
	}
	sent := 0
	for _, items := range shardItems {
		for start := 0; start < len(items); start += h.cfg.ChunkSize {
			end := start + h.cfg.ChunkSize
			if end > len(items) {
				end = len(items)
			}
			sent += end - start
			h.ctx.Trigger(itemsMsg{
				Header:  network.Reply(m),
				Context: m.Context,
				Epoch:   m.Epoch,
				Round:   m.Round,
				Items:   items[start:end],
				Done:    sent == total,
			}, h.net)
		}
	}
}

// handleItems applies a transfer chunk. Pushes apply unconditionally (the
// version gate discards stale data); pull answers additionally advance the
// current sync round.
func (h *Handoff) handleItems(m itemsMsg) {
	applied, bytes := 0, 0
	for _, e := range m.Items {
		// ApplyDurable keeps transferred ranges on the same durability
		// path as replica writes: a handed-off entry is in the WAL before
		// it counts toward the sync round, so a restart mid-handoff
		// replays it instead of silently shrinking the covered range.
		ok, err := h.cfg.Store.ApplyDurable(e.Key, e.Version, e.Value)
		if err != nil {
			h.ctx.Log().Warn("handoff: wal append failed; transfer entry dropped", "key", e.Key, "err", err)
			continue
		}
		if ok {
			applied++
			bytes += len(e.Value)
		}
	}
	if applied > 0 {
		h.keysIn += uint64(applied)
		h.bytesIn += uint64(bytes)
		addTransferred(uint64(applied), uint64(bytes))
	}
	if m.Push {
		return
	}
	if !h.syncing || m.Round != h.round {
		return // answer for an abandoned round
	}
	h.roundKeys += applied
	h.roundBytes += bytes
	if m.Done {
		delete(h.pending, m.Src)
		h.endPullTrace(m.Src, "ok")
		if len(h.pending) == 0 {
			h.ctx.Trigger(timer.CancelTimeout{ID: h.tid}, h.tmr)
			h.finishRound("ok")
		}
	}
}

// handleTimeout declares a lagging round (partially) complete: waiting
// forever would block acknowledgements in the new epoch indefinitely, which
// is worse than serving with whatever transferred — quorum intersection
// still covers the gap for any write acked before the view change.
func (h *Handoff) handleTimeout(t pullTimeout) {
	if !h.syncing || t.Round != h.round {
		return
	}
	h.partials++
	h.finishRound("partial")
}

func (h *Handoff) finishRound(outcome string) {
	h.syncing = false
	h.rounds++
	addTransfer()
	h.endRoundTrace(outcome)
	h.ctx.Trigger(Synced{Epoch: h.epoch, Round: h.round, Keys: h.roundKeys, Bytes: h.roundBytes}, h.hop)
}

// Round returns the current sync round (tests).
func (h *Handoff) Round() uint64 { return h.round }

// Syncing reports whether a pull round is in flight (tests).
func (h *Handoff) Syncing() bool { return h.syncing }
