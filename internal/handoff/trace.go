package handoff

import (
	"sort"

	"repro/internal/network"
	"repro/internal/tracing"
)

// Handoff round tracing. Reconfiguration rounds are rare events, so every
// round is traced whenever tracing is enabled at all (no per-round
// sampling decision): one root "handoff.round" span per sync round, one
// "handoff.pull" child per pull target (closed by that target's Done, or
// by the round ending first), instant "handoff.push" spans per push
// target, and responder-side "handoff.serve" spans that join the puller's
// timeline through the wire context.

// beginRoundTrace mints the trace for a freshly started sync round.
func (h *Handoff) beginRoundTrace() {
	h.rtc = tracing.Context{}
	h.pullSpans = nil
	if !tracing.Enabled() {
		return
	}
	h.rtc = tracing.Context{TraceID: h.ids.Next(), SpanID: h.ids.Next()}
	h.roundStart = h.ctx.Now()
}

// pullCtx mints the per-target pull span and returns the context stamped
// on that target's pullReqMsg.
func (h *Handoff) pullCtx(addr network.Address) tracing.Context {
	if h.rtc.TraceID == 0 {
		return tracing.Context{}
	}
	if h.pullSpans == nil {
		h.pullSpans = make(map[network.Address]uint64)
	}
	id := h.ids.Next()
	h.pullSpans[addr] = id
	return tracing.Context{TraceID: h.rtc.TraceID, SpanID: id}
}

// endPullTrace closes one pull target's span (Done arrived).
func (h *Handoff) endPullTrace(addr network.Address, outcome string) {
	id, ok := h.pullSpans[addr]
	if !ok {
		return
	}
	delete(h.pullSpans, addr)
	tracing.Record(tracing.Span{
		Trace:   h.rtc.TraceID,
		ID:      id,
		Parent:  h.rtc.SpanID,
		Node:    h.nodeName,
		Name:    "handoff.pull",
		Op:      h.round,
		Epoch:   h.epoch,
		Outcome: outcome,
		Start:   h.roundStart,
		End:     h.ctx.Now(),
	})
}

// endRoundTrace closes the round root span, first closing any pull spans
// whose Done never arrived — "timeout" on a partial round, the round's
// own outcome otherwise (an abandoned round's pulls end "abandoned").
func (h *Handoff) endRoundTrace(outcome string) {
	if h.rtc.TraceID == 0 {
		return
	}
	pullOutcome := outcome
	if outcome == "partial" {
		pullOutcome = "timeout"
	}
	// Drain in deterministic order: pending insertion order is lost in the
	// map, but pull targets were minted in target order — iterate the view
	// members to keep span order seed-stable.
	for _, m := range h.view {
		if _, ok := h.pullSpans[m.Addr]; ok {
			h.endPullTrace(m.Addr, pullOutcome)
		}
	}
	if len(h.pullSpans) > 0 { // any target no longer in the view
		rest := make([]network.Address, 0, len(h.pullSpans))
		for addr := range h.pullSpans {
			rest = append(rest, addr)
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i].String() < rest[j].String() })
		for _, addr := range rest {
			h.endPullTrace(addr, pullOutcome)
		}
	}
	tracing.Record(tracing.Span{
		Trace:   h.rtc.TraceID,
		ID:      h.rtc.SpanID,
		Node:    h.nodeName,
		Name:    "handoff.round",
		Op:      h.round,
		Epoch:   h.epoch,
		Outcome: outcome,
		Start:   h.roundStart,
		End:     h.ctx.Now(),
	})
	h.rtc = tracing.Context{}
}

// recordInstant records a zero-duration span parented under ctx (push and
// serve events).
func (h *Handoff) recordInstant(name string, tc tracing.Context, outcome string) {
	if tc.TraceID == 0 {
		return
	}
	now := h.ctx.Now()
	tracing.Record(tracing.Span{
		Trace:   tc.TraceID,
		ID:      h.ids.Next(),
		Parent:  tc.SpanID,
		Node:    h.nodeName,
		Name:    name,
		Op:      h.round,
		Epoch:   h.epoch,
		Outcome: outcome,
		Start:   now,
		End:     now,
	})
}
