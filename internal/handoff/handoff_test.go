package handoff

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/kvstore"
	"repro/internal/network"
	"repro/internal/ring"
	"repro/internal/simulation"
	"repro/internal/timer"
	"repro/internal/web"
)

// ringFeeder provides the ring port so tests can inject GroupView
// indications directly into the handoff component under test.
type ringFeeder struct {
	inner **core.Port
}

func (f *ringFeeder) Setup(ctx *core.Ctx) {
	*f.inner = ctx.Provides(ring.PortType)
}

// hoNode is one networked handoff component: emulator transport, sim
// timer, a ring feeder, and subscriptions capturing the Handoff events.
type hoNode struct {
	self  ident.NodeRef
	sim   *simulation.Simulation
	emu   *simulation.NetworkEmulator
	store *kvstore.Store

	h         *Handoff
	ringInner *core.Port
	started   []SyncStarted
	synced    []Synced
}

func (n *hoNode) Setup(ctx *core.Ctx) {
	tr := ctx.Create("net", n.emu.Transport(n.self.Addr))
	tm := ctx.Create("timer", simulation.NewTimer(n.sim))
	fd := ctx.Create("feeder", &ringFeeder{inner: &n.ringInner})
	n.h = New(Config{
		Self:        n.self,
		Degree:      2,
		Store:       n.store,
		PullTimeout: time.Second,
		ChunkSize:   2,
	})
	ho := ctx.Create("handoff", n.h)
	ctx.Connect(tr.Provided(network.PortType), ho.Required(network.PortType))
	ctx.Connect(tm.Provided(timer.PortType), ho.Required(timer.PortType))
	ctx.Connect(fd.Provided(ring.PortType), ho.Required(ring.PortType))

	out := ho.Provided(PortType)
	core.Subscribe(ctx, out, func(s SyncStarted) { n.started = append(n.started, s) })
	core.Subscribe(ctx, out, func(s Synced) { n.synced = append(n.synced, s) })
}

type hoWorld struct {
	sim   *simulation.Simulation
	emu   *simulation.NetworkEmulator
	nodes []*hoNode
}

// newHoWorld deploys n handoff nodes with keys spaced evenly on the ring.
func newHoWorld(t *testing.T, seed int64, n int) *hoWorld {
	t.Helper()
	sim := simulation.New(seed)
	emu := simulation.NewNetworkEmulator(sim,
		simulation.WithLatency(simulation.ConstantLatency(2*time.Millisecond)))
	w := &hoWorld{sim: sim, emu: emu}
	for i := 0; i < n; i++ {
		w.nodes = append(w.nodes, &hoNode{
			self: ident.NodeRef{
				Key:  ident.Key(uint64(i+1) * (^uint64(0) / uint64(n+1))),
				Addr: network.Address{Host: "ho", Port: uint16(i + 1)},
			},
			sim:   sim,
			emu:   emu,
			store: kvstore.New(),
		})
	}
	sim.Runtime().MustBootstrap("HandoffTestMain", core.SetupFunc(func(ctx *core.Ctx) {
		for i, nd := range w.nodes {
			ctx.Create(fmt.Sprintf("node-%d", i), nd)
		}
	}))
	sim.Settle()
	return w
}

func (w *hoWorld) members(idx ...int) []ident.NodeRef {
	refs := make([]ident.NodeRef, 0, len(idx))
	for _, i := range idx {
		refs = append(refs, w.nodes[i].self)
	}
	ident.SortByKey(refs)
	return refs
}

// feedView injects a GroupView into node i's handoff component and runs
// the simulation briefly — enough virtual time for request/answer latency,
// well short of the 1s pull timeout.
func (w *hoWorld) feedView(i int, epoch uint64, members []ident.NodeRef) {
	nd := w.nodes[i]
	_ = core.TriggerOn(nd.ringInner, ring.GroupView{
		Epoch:   epoch,
		Range:   ring.KeyRange{From: nd.self.Key, To: nd.self.Key},
		Members: members,
	})
	w.sim.Run(100 * time.Millisecond)
}

func fill(s *kvstore.Store, writer uint64, keys ...string) {
	for i, k := range keys {
		s.Apply(k, kvstore.Version{Seq: 1, Writer: writer}, []byte("val-"+k+"-"+fmt.Sprint(i)))
	}
}

// TestPullFillsCoveredRange: a fresh node receives a view naming a member
// that already holds data; it pulls everything it covers, announces
// SyncStarted before Synced, and matches them by round.
func TestPullFillsCoveredRange(t *testing.T) {
	w := newHoWorld(t, 21, 2)
	a, b := w.nodes[0], w.nodes[1]
	keys := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	fill(a.store, 1, keys...)

	// Degree 2 with 2 members: both nodes cover every key.
	w.feedView(1, 5, w.members(0, 1))

	if got := b.store.Len(); got != len(keys) {
		t.Fatalf("pulled %d keys, want %d", got, len(keys))
	}
	if len(b.started) != 1 || len(b.synced) != 1 {
		t.Fatalf("events: started=%d synced=%d, want 1/1", len(b.started), len(b.synced))
	}
	if b.started[0].Round != b.synced[0].Round {
		t.Fatalf("round mismatch: started %d, synced %d", b.started[0].Round, b.synced[0].Round)
	}
	if b.started[0].Epoch != 5 || b.synced[0].Epoch != 5 {
		t.Fatalf("epochs: started %d synced %d, want 5", b.started[0].Epoch, b.synced[0].Epoch)
	}
	if b.synced[0].Keys != len(keys) || b.synced[0].Bytes == 0 {
		t.Fatalf("synced report: keys=%d bytes=%d", b.synced[0].Keys, b.synced[0].Bytes)
	}
	if b.h.Syncing() {
		t.Fatal("still syncing after Synced")
	}
	// Chunked transfer (ChunkSize 2, 5 entries) must reassemble intact.
	for _, k := range keys {
		_, got, ok := b.store.Read(k)
		if !ok || string(got) != string(mustRead(t, a.store, k)) {
			t.Fatalf("key %q: ok=%t value=%q", k, ok, got)
		}
	}
	// Replays of the same entries are idempotent under the version gate.
	before := b.h.keysIn
	w.feedView(1, 6, w.members(0, 1))
	if b.h.keysIn != before {
		t.Fatalf("re-pull applied %d duplicate keys", b.h.keysIn-before)
	}
}

func mustRead(t *testing.T, s *kvstore.Store, key string) []byte {
	t.Helper()
	_, v, ok := s.Read(key)
	if !ok {
		t.Fatalf("store missing %q", key)
	}
	return v
}

// TestPushReleasedEntries: a node that held everything receives a view in
// which some keys hash to other owners (degree 1); those entries are pushed
// to the new owners and never deleted locally.
func TestPushReleasedEntries(t *testing.T) {
	w := newHoWorld(t, 22, 3)
	a := w.nodes[0]
	// Degree 1: each key has exactly one owner.
	for _, nd := range w.nodes {
		nd.h.cfg.Degree = 1
	}
	members := w.members(0, 1, 2)

	// FNV hashes of similar strings cluster, so pick keys that provably
	// spread: at least a few owned by a (kept) and a few owned by others
	// (released).
	var keys []string
	kept, rel := 0, 0
	for i := 0; i < 500 && (kept < 4 || rel < 4); i++ {
		k := fmt.Sprintf("seed-%d", i*i+i)
		owner := ident.SuccessorsOf(members, ident.KeyOfString(k), 1)[0]
		if owner.Addr == a.self.Addr {
			if kept >= 4 {
				continue
			}
			kept++
		} else {
			if rel >= 4 {
				continue
			}
			rel++
		}
		keys = append(keys, k)
	}
	if kept < 4 || rel < 4 {
		t.Fatalf("could not spread keys: kept=%d released=%d", kept, rel)
	}
	fill(a.store, 7, keys...)

	w.feedView(0, 3, members)

	released := 0
	for _, k := range keys {
		owner := ident.SuccessorsOf(members, ident.KeyOfString(k), 1)[0]
		if owner.Addr == a.self.Addr {
			continue
		}
		released++
		var tgt *hoNode
		for _, nd := range w.nodes {
			if nd.self.Addr == owner.Addr {
				tgt = nd
			}
		}
		if _, _, ok := tgt.store.Read(k); !ok {
			t.Errorf("released key %q not pushed to owner %v", k, owner.Addr)
		}
	}
	if released == 0 {
		t.Fatal("test inert: every key hashed to the pushing node")
	}
	if a.store.Len() != len(keys) {
		t.Fatalf("push deleted local entries: %d left, want %d", a.store.Len(), len(keys))
	}
}

// TestPullTimeoutDeclaresPartial: when the pull target is dark, the round
// still completes after PullTimeout — partially — so the replica is not
// blocked forever.
func TestPullTimeoutDeclaresPartial(t *testing.T) {
	w := newHoWorld(t, 23, 2)
	b := w.nodes[1]
	w.emu.Crash(w.nodes[0].self.Addr)

	w.feedView(1, 2, w.members(0, 1))
	if len(b.synced) != 0 {
		t.Fatalf("synced before timeout: %+v", b.synced)
	}
	if !b.h.Syncing() {
		t.Fatal("not syncing while pull outstanding")
	}
	w.sim.Run(2 * time.Second)
	if len(b.synced) != 1 {
		t.Fatalf("synced events after timeout: %d, want 1", len(b.synced))
	}
	if b.synced[0].Keys != 0 {
		t.Fatalf("partial round reported %d keys", b.synced[0].Keys)
	}
	if b.h.Syncing() {
		t.Fatal("still syncing after timeout")
	}
	if b.h.partials != 1 {
		t.Fatalf("partials=%d, want 1", b.h.partials)
	}
}

// TestNewViewAbandonsInflightRound: a second view during a stalled pull
// supersedes the first round; only the new round's Synced fires, and late
// answers for the abandoned round are ignored.
func TestNewViewAbandonsInflightRound(t *testing.T) {
	w := newHoWorld(t, 24, 2)
	b := w.nodes[1]
	w.emu.Crash(w.nodes[0].self.Addr)

	w.feedView(1, 2, w.members(0, 1)) // stalls: target dark
	if !b.h.Syncing() {
		t.Fatal("round 1 should be in flight")
	}
	// Shrunk view: nobody to pull from → immediate Synced for round 2.
	w.feedView(1, 3, w.members(1))
	if b.h.abandoned != 1 {
		t.Fatalf("abandoned=%d, want 1", b.h.abandoned)
	}
	if len(b.started) != 2 || len(b.synced) != 1 {
		t.Fatalf("events: started=%d synced=%d, want 2/1", len(b.started), len(b.synced))
	}
	if b.synced[0].Round != b.started[1].Round {
		t.Fatalf("synced round %d, want round 2's %d", b.synced[0].Round, b.started[1].Round)
	}
	// The abandoned round's timeout must not produce a second Synced.
	w.sim.Run(3 * time.Second)
	if len(b.synced) != 1 {
		t.Fatalf("abandoned round resurfaced: %d synced events", len(b.synced))
	}
}

// TestSelfOnlyViewSyncsImmediately: a lone node has nobody to pull from and
// must not block — SyncStarted and Synced fire back-to-back.
func TestSelfOnlyViewSyncsImmediately(t *testing.T) {
	w := newHoWorld(t, 25, 1)
	w.feedView(0, 1, w.members(0))
	nd := w.nodes[0]
	if len(nd.started) != 1 || len(nd.synced) != 1 {
		t.Fatalf("events: started=%d synced=%d, want 1/1", len(nd.started), len(nd.synced))
	}
	if nd.h.Syncing() {
		t.Fatal("lone node stuck syncing")
	}
}

// TestHandoffMetricsExposed: the package registers a process-global
// exposition source in init(); the four handoff/epoch families must render
// through the web metrics registry.
func TestHandoffMetricsExposed(t *testing.T) {
	var b strings.Builder
	if err := web.WriteRegisteredMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, series := range []string{
		"cats_handoff_keys_total",
		"cats_handoff_bytes_total",
		"cats_handoff_transfers_total",
		"cats_group_epoch",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("registered exposition missing %s:\n%s", series, out)
		}
	}
}
