package handoff

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ident"
	"repro/internal/kvstore"
	"repro/internal/network"
)

// coverageInterval must agree exactly with per-key SuccessorsOf membership:
// a key lies in owner's interval iff owner is among the key's successor
// group. Randomized over ring layouts, degrees, and probe keys.
func TestCoverageIntervalMatchesSuccessorsOf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		degree := 1 + rng.Intn(4)
		members := make([]ident.NodeRef, n)
		for i := range members {
			addr, _ := network.ParseAddress(fmt.Sprintf("10.0.0.%d:4000", i+1))
			members[i] = ident.NodeRef{Key: ident.Key(rng.Uint64()), Addr: addr}
		}
		ident.SortByKey(members)
		members = ident.Dedup(members)
		owner := members[rng.Intn(len(members))]
		from, to, ok := coverageInterval(members, owner, degree)
		if !ok {
			// Duplicate ring keys: the fallback path handles it.
			continue
		}
		for probe := 0; probe < 64; probe++ {
			k := ident.Key(rng.Uint64())
			inGroup := false
			for _, o := range ident.SuccessorsOf(members, k, degree) {
				if o.Addr == owner.Addr && o.Key == owner.Key {
					inGroup = true
					break
				}
			}
			if got := k.InHalfOpenInterval(from, to); got != inGroup {
				t.Fatalf("trial %d: key %d: interval (%d, %d] says %v, SuccessorsOf says %v (n=%d degree=%d)",
					trial, k, from, to, got, inGroup, len(members), degree)
			}
		}
	}
}

func TestCoverageIntervalEdgeCases(t *testing.T) {
	addr := func(i int) network.Address {
		a, _ := network.ParseAddress(fmt.Sprintf("10.0.0.%d:4000", i))
		return a
	}
	a := ident.NodeRef{Key: 100, Addr: addr(1)}
	b := ident.NodeRef{Key: 200, Addr: addr(2)}
	dup := ident.NodeRef{Key: 100, Addr: addr(3)}

	// Owner absent from the view.
	if _, _, ok := coverageInterval([]ident.NodeRef{a}, b, 2); ok {
		t.Fatal("absent owner must not yield an interval")
	}
	// Duplicate ring keys are ambiguous.
	if _, _, ok := coverageInterval([]ident.NodeRef{a, dup, b}, b, 1); ok {
		t.Fatal("duplicate keys must not yield an interval")
	}
	// Members <= degree: whole ring (from == to).
	from, to, ok := coverageInterval([]ident.NodeRef{a, b}, a, 3)
	if !ok || from != to {
		t.Fatalf("small view: got (%d, %d] ok=%v, want whole ring", from, to, ok)
	}
}

// shardCovered must never skip a shard that holds an uncovered key: it may
// be conservative (scan a covered shard) but not lossy.
func TestShardCoveredIsConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		from := ident.Key(rng.Uint64())
		to := ident.Key(rng.Uint64())
		for si := 0; si < kvstore.ShardCount; si++ {
			if !shardCovered(si, from, to) {
				continue
			}
			lo, hi := kvstore.ShardSpan(si)
			for _, k := range []ident.Key{lo, hi, lo + (hi-lo)/2} {
				if !k.InHalfOpenInterval(from, to) {
					t.Fatalf("shard %d declared covered by (%d, %d] but key %d is outside", si, from, to, k)
				}
			}
		}
	}
}
