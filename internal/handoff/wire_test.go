package handoff

import (
	"reflect"
	"testing"

	"repro/internal/ident"
	"repro/internal/kvstore"
	"repro/internal/network"
	"repro/internal/tracing"
)

func wireHeader() network.Header {
	return network.NewHeader(
		network.Address{Host: "10.0.0.1", Port: 7000},
		network.Address{Host: "10.0.0.2", Port: 7001},
	)
}

// TestHandoffWireRoundTrip drives the handoff chunk messages through the
// binary codec and back with field-exact equality.
func TestHandoffWireRoundTrip(t *testing.T) {
	tc := tracing.Context{TraceID: 5, SpanID: 6}
	ref := ident.NodeRef{Key: ident.Key(0xabc), Addr: network.Address{Host: "10.0.0.3", Port: 7002}}
	msgs := []network.Message{
		pullReqMsg{Header: wireHeader(), Context: tc, Epoch: 3, Round: 11, Requester: ref},
		itemsMsg{
			Header: wireHeader(), Context: tc, Epoch: 3, Round: 11,
			Items: []kvstore.Entry{
				{Key: "a", Version: kvstore.Version{Seq: 1, Writer: 2}, Value: []byte("one")},
				{Key: "", Version: kvstore.Version{Seq: 9}}, // empty key, nil value
			},
			Done: true,
		},
		itemsMsg{Header: wireHeader(), Epoch: 3, Round: 12, Push: true}, // no items
	}
	for _, m := range msgs {
		payload, err := (network.BinaryCodec{}).Encode(m)
		if err != nil {
			t.Fatalf("%T encode: %v", m, err)
		}
		if !network.IsBinaryPayload(payload) {
			t.Fatalf("%T did not use the binary wire format", m)
		}
		got, err := network.DecodePayload(payload)
		if err != nil {
			t.Fatalf("%T decode: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("%T round trip mismatch:\n got  %+v\n want %+v", m, got, m)
		}
	}
}

// TestHandoffWireCorruptCount pins the item-count guard against frames
// promising more entries than the body holds.
func TestHandoffWireCorruptCount(t *testing.T) {
	payload, err := (network.BinaryCodec{}).Encode(itemsMsg{Header: wireHeader(), Epoch: 1, Round: 1})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), payload...)
	// Tail layout of an empty itemsMsg: count u32 + done bool + push bool.
	n := len(corrupt)
	corrupt[n-6], corrupt[n-5], corrupt[n-4], corrupt[n-3] = 0xff, 0xff, 0xff, 0xff
	if _, err := network.DecodePayload(corrupt); err == nil {
		t.Fatal("corrupt item count decoded")
	}
}

// TestHandoffWireEncodeZeroAlloc gates the chunk transfer path: encoding
// an items frame into a recycled buffer must not allocate, regardless of
// entry count.
func TestHandoffWireEncodeZeroAlloc(t *testing.T) {
	items := make([]kvstore.Entry, 32)
	for i := range items {
		items[i] = kvstore.Entry{Key: "key", Version: kvstore.Version{Seq: uint64(i)}, Value: make([]byte, 128)}
	}
	var m network.Message = itemsMsg{Header: wireHeader(), Epoch: 1, Round: 1, Items: items, Done: true}
	buf := make([]byte, 0, 16384)
	var c network.BinaryCodec
	allocs := testing.AllocsPerRun(100, func() {
		out, err := c.EncodeAppend(buf[:0], m)
		if err != nil || len(out) == 0 {
			t.Fatal("encode failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("handoff wire encode allocates %.1f/op, want 0", allocs)
	}
}
