package handoff

import (
	"fmt"

	"repro/internal/ident"
	"repro/internal/kvstore"
	"repro/internal/network"
	"repro/internal/tracing"
)

// Binary wire-set implementations for the handoff chunk messages — large
// Items payloads are where the zero-copy value decoding pays off most.
// Tags 0x10–0x11 (the ABD quorum set owns 0x01–0x07).
const (
	wireTagPullReq byte = 0x10
	wireTagItems   byte = 0x11
)

func init() {
	network.RegisterWire(wireTagPullReq, "handoff.pullReq", decodePullReqMsg)
	network.RegisterWire(wireTagItems, "handoff.items", decodeItemsMsg)
}

func appendNodeRef(dst []byte, n ident.NodeRef) []byte {
	dst = network.AppendU64(dst, uint64(n.Key))
	return network.AppendAddr(dst, n.Addr)
}

func readNodeRef(r *network.WireReader) ident.NodeRef {
	return ident.NodeRef{Key: ident.Key(r.U64()), Addr: r.Addr()}
}

func (m pullReqMsg) WireTag() byte { return wireTagPullReq }

func (m pullReqMsg) AppendWire(dst []byte) []byte {
	dst = network.AppendHeader(dst, m.Header)
	dst = network.AppendU64(dst, m.TraceID)
	dst = network.AppendU64(dst, m.SpanID)
	dst = network.AppendU64(dst, m.Epoch)
	dst = network.AppendU64(dst, m.Round)
	return appendNodeRef(dst, m.Requester)
}

func decodePullReqMsg(r *network.WireReader) (network.Message, error) {
	var m pullReqMsg
	m.Header = r.Header()
	m.Context = tracing.Context{TraceID: r.U64(), SpanID: r.U64()}
	m.Epoch = r.U64()
	m.Round = r.U64()
	m.Requester = readNodeRef(r)
	return m, nil
}

func (m itemsMsg) WireTag() byte { return wireTagItems }

func (m itemsMsg) AppendWire(dst []byte) []byte {
	dst = network.AppendHeader(dst, m.Header)
	dst = network.AppendU64(dst, m.TraceID)
	dst = network.AppendU64(dst, m.SpanID)
	dst = network.AppendU64(dst, m.Epoch)
	dst = network.AppendU64(dst, m.Round)
	dst = network.AppendU32(dst, uint32(len(m.Items)))
	for i := range m.Items {
		e := &m.Items[i]
		dst = network.AppendString(dst, e.Key)
		dst = network.AppendU64(dst, e.Version.Seq)
		dst = network.AppendU64(dst, e.Version.Writer)
		dst = network.AppendBytes(dst, e.Value)
	}
	dst = network.AppendBool(dst, m.Done)
	return network.AppendBool(dst, m.Push)
}

func decodeItemsMsg(r *network.WireReader) (network.Message, error) {
	var m itemsMsg
	m.Header = r.Header()
	m.Context = tracing.Context{TraceID: r.U64(), SpanID: r.U64()}
	m.Epoch = r.U64()
	m.Round = r.U64()
	n := r.U32()
	// An entry is at least key len(4)+version(16)+value len(4); reject a
	// corrupt count before allocating for it.
	if int64(n)*24 > int64(r.Len()) {
		return nil, fmt.Errorf("handoff: wire item count %d exceeds body", n)
	}
	if n > 0 {
		m.Items = make([]kvstore.Entry, n)
		for i := range m.Items {
			e := &m.Items[i]
			e.Key = r.String()
			e.Version = kvstore.Version{Seq: r.U64(), Writer: r.U64()}
			e.Value = r.Bytes()
		}
	}
	m.Done = r.Bool()
	m.Push = r.Bool()
	return m, nil
}
