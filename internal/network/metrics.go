package network

import "sync/atomic"

// Process-wide transport counters, aggregated across every Codec and TCP
// instance in the process. Per-instance counters remain available via
// TCP.Stats; these globals exist so the /metrics endpoint can report network
// activity without holding references to every transport component.
var (
	gEncodedMsgs      atomic.Uint64 // messages serialized by Codec.Encode
	gEncodedBytes     atomic.Uint64 // payload bytes produced by Encode (post-compression)
	gDecodedMsgs      atomic.Uint64 // messages deserialized by Codec.Decode
	gCompressedMsgs   atomic.Uint64 // messages that went through zlib on encode
	gCompressedIn     atomic.Uint64 // bytes fed into zlib (uncompressed gob size)
	gCompressedOut    atomic.Uint64 // bytes out of zlib (compressed payload body)
	gDecompressedMsgs atomic.Uint64 // messages that went through zlib on decode

	gSent        atomic.Uint64 // messages enqueued for transmission (all transports)
	gReceived    atomic.Uint64 // messages delivered to the Network port
	gDroppedFull atomic.Uint64 // messages dropped on full send queues
	gSendErrors  atomic.Uint64 // encode/dial/write failures

	gReconnects atomic.Uint64 // successful dials after a failure or broken connection
	gRequeued   atomic.Uint64 // frames preserved across a broken write for redelivery
	gAbandoned  atomic.Uint64 // queued frames dropped when a peer's retry budget ran out

	gTracedFrames atomic.Uint64 // encoded messages carrying a sampled trace context

	// Wire-codec backend counters (cats_network_codec_* in /metrics).
	gBinaryEncoded     atomic.Uint64 // messages encoded by the binary backend's wire set
	gBinaryDecoded     atomic.Uint64 // binary-format payloads decoded
	gCodecFallbacks    atomic.Uint64 // binary-backend encodes that fell back to gob
	gCodecSwaps        atomic.Uint64 // live SwapCodec operations applied (per peer)
	gCodecSwitchFrames atomic.Uint64 // codec-switch control frames received
)

// gPeerStates counts live outbound peer connections per PeerState
// (connecting/up/backoff/down). Indexed by PeerState; a retired peer leaves
// every bucket.
var gPeerStates [4]atomic.Int64

func peerGaugeAdd(s PeerState, delta int64) {
	if s >= 0 && int(s) < len(gPeerStates) {
		gPeerStates[s].Add(delta)
	}
}

// Metrics is a snapshot of the process-wide network counters.
type Metrics struct {
	EncodedMsgs      uint64 `json:"encoded_msgs"`
	EncodedBytes     uint64 `json:"encoded_bytes"`
	DecodedMsgs      uint64 `json:"decoded_msgs"`
	CompressedMsgs   uint64 `json:"compressed_msgs"`
	CompressedIn     uint64 `json:"compressed_bytes_in"`
	CompressedOut    uint64 `json:"compressed_bytes_out"`
	DecompressedMsgs uint64 `json:"decompressed_msgs"`
	Sent             uint64 `json:"sent"`
	Received         uint64 `json:"received"`
	DroppedFull      uint64 `json:"dropped_full"`
	SendErrors       uint64 `json:"send_errors"`
	Reconnects       uint64 `json:"reconnects"`
	Requeued         uint64 `json:"requeued"`
	Abandoned        uint64 `json:"abandoned"`
	TracedFrames     uint64 `json:"traced_frames"`
	BinaryEncoded    uint64 `json:"codec_binary_encoded"`
	BinaryDecoded    uint64 `json:"codec_binary_decoded"`
	CodecFallbacks   uint64 `json:"codec_fallbacks"`
	CodecSwaps       uint64 `json:"codec_swaps"`
	CodecSwitches    uint64 `json:"codec_switch_frames"`
	PeersConnecting  int64  `json:"peers_connecting"`
	PeersUp          int64  `json:"peers_up"`
	PeersBackoff     int64  `json:"peers_backoff"`
	PeersDown        int64  `json:"peers_down"`
}

// GlobalMetrics snapshots the process-wide network counters.
func GlobalMetrics() Metrics {
	return Metrics{
		EncodedMsgs:      gEncodedMsgs.Load(),
		EncodedBytes:     gEncodedBytes.Load(),
		DecodedMsgs:      gDecodedMsgs.Load(),
		CompressedMsgs:   gCompressedMsgs.Load(),
		CompressedIn:     gCompressedIn.Load(),
		CompressedOut:    gCompressedOut.Load(),
		DecompressedMsgs: gDecompressedMsgs.Load(),
		Sent:             gSent.Load(),
		Received:         gReceived.Load(),
		DroppedFull:      gDroppedFull.Load(),
		SendErrors:       gSendErrors.Load(),
		Reconnects:       gReconnects.Load(),
		Requeued:         gRequeued.Load(),
		Abandoned:        gAbandoned.Load(),
		TracedFrames:     gTracedFrames.Load(),
		BinaryEncoded:    gBinaryEncoded.Load(),
		BinaryDecoded:    gBinaryDecoded.Load(),
		CodecFallbacks:   gCodecFallbacks.Load(),
		CodecSwaps:       gCodecSwaps.Load(),
		CodecSwitches:    gCodecSwitchFrames.Load(),
		PeersConnecting:  gPeerStates[PeerConnecting].Load(),
		PeersUp:          gPeerStates[PeerUp].Load(),
		PeersBackoff:     gPeerStates[PeerBackoff].Load(),
		PeersDown:        gPeerStates[PeerDown].Load(),
	}
}

// CompressionRatio returns compressed-out over compressed-in bytes (1.0 when
// nothing was compressed): the effective zlib payload shrink factor.
func (m Metrics) CompressionRatio() float64 {
	if m.CompressedIn == 0 {
		return 1.0
	}
	return float64(m.CompressedOut) / float64(m.CompressedIn)
}
