//go:build race

package network

const raceEnabled = true
