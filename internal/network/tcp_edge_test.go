package network

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"repro/internal/core"
)

// dialRaw connects a raw socket to a transport's listener and performs
// the client side of the connection handshake (gob capability byte).
func dialRaw(t *testing.T, addr Address) net.Conn {
	t.Helper()
	conn := dialRawNoHandshake(t, addr)
	var hs [handshakeLen]byte
	copy(hs[:4], handshakeMagic[:])
	hs[4] = wireVersion
	hs[5] = flagPlain
	if _, err := conn.Write(hs[:]); err != nil {
		t.Fatalf("handshake write: %v", err)
	}
	return conn
}

// dialRawNoHandshake connects a raw socket without the preamble, for
// tests probing the handshake validation itself.
func dialRawNoHandshake(t *testing.T, addr Address) net.Conn {
	t.Helper()
	var conn net.Conn
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		conn, err = net.DialTimeout("tcp", addr.String(), time.Second)
		if err == nil {
			return conn
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("dial %s: %v", addr, err)
	return nil
}

func TestTCPRejectsOversizedFrame(t *testing.T) {
	_, n1, _ := newTCPPair(t)
	conn := dialRaw(t, n1.self)
	defer conn.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	// The transport must close the connection rather than allocate.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatalf("connection stayed open after oversized frame")
	}
	if n1.got.Load() != 0 {
		t.Fatalf("oversized frame delivered something")
	}
}

func TestTCPRejectsZeroFrame(t *testing.T) {
	_, n1, _ := newTCPPair(t)
	conn := dialRaw(t, n1.self)
	defer conn.Close()
	var hdr [4]byte // length 0
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatalf("connection stayed open after zero-length frame")
	}
}

func TestTCPSurvivesGarbagePayload(t *testing.T) {
	_, n1, n2 := newTCPPair(t)
	conn := dialRaw(t, n1.self)
	defer conn.Close()
	payload := []byte{flagPlain, 0xde, 0xad, 0xbe, 0xef}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(append(hdr[:], payload...)); err != nil {
		t.Fatal(err)
	}
	// Garbage is dropped, but the transport keeps serving real peers.
	n2.ctx.Trigger(hello{Header: NewHeader(n2.self, n1.self), Greeting: "still alive"}, n2.port)
	waitCount(t, &n1.got, 1, 5*time.Second)
}

// TestTCPQueuedFramesSurviveReconnect is the resilience acceptance test: a
// peer is killed mid-conversation, frames sent while it is down queue on
// the peer's connection manager, and when the peer restarts on the same
// address every queued frame is delivered with no application retransmit.
// The subscriber must also see the PeerStatus Down→Up transition and the
// reconnect counter must move.
func TestTCPQueuedFramesSurviveReconnect(t *testing.T) {
	_, n1, n2 := newTCPPair(t,
		WithKeepalive(25*time.Millisecond),
		WithBackoff(20*time.Millisecond, 100*time.Millisecond),
		WithDialAttempts(500),
	)
	n1.ctx.Trigger(hello{Header: NewHeader(n1.self, n2.self), Greeting: "warmup"}, n1.port)
	waitCount(t, &n2.got, 1, 5*time.Second)

	// Kill the peer and wait until n1's keepalive notices the broken link
	// (state leaves Up) so the frames below queue rather than vanish into a
	// half-closed socket.
	n2.tcp.shutdown()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st, ok := n1.tcp.PeerStates()[n2.self]; ok && st != PeerUp {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := n1.tcp.PeerStates()[n2.self]; st == PeerUp {
		t.Fatalf("keepalive never detected the dead peer")
	}

	const k = 5
	for i := 0; i < k; i++ {
		n1.ctx.Trigger(data{Header: NewHeader(n1.self, n2.self), Seq: i}, n1.port)
	}

	// Restart the peer on the same address; the queued frames must flow
	// with no re-send from the application.
	n3 := &tcpNode{self: n2.self}
	rt2 := core.New(core.WithScheduler(core.NewWorkStealingScheduler(2)),
		core.WithFaultPolicy(core.LogAndContinue))
	defer rt2.Shutdown()
	rt2.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		ctx.Create("n3", n3)
	}))
	if !rt2.WaitQuiescence(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	t.Cleanup(n3.tcp.shutdown)

	waitCount(t, &n3.got, k, 10*time.Second)
	n3.mu.Lock()
	for i, m := range n3.msgs {
		if m.(data).Seq != i {
			t.Errorf("frame order violated at %d: got seq %d", i, m.(data).Seq)
		}
	}
	n3.mu.Unlock()

	if reconnects, _, _ := n1.tcp.ResilienceStats(); reconnects == 0 {
		t.Fatalf("reconnect counter did not move")
	}
	statuses := n1.peerStatuses()
	downAt, upAfterDown := -1, false
	for i, s := range statuses {
		if s.Peer != n2.self {
			continue
		}
		if !s.Up {
			downAt = i
		} else if downAt >= 0 && i > downAt {
			upAfterDown = true
		}
	}
	if downAt < 0 || !upAfterDown {
		t.Fatalf("PeerStatus Down→Up not observed: %+v", statuses)
	}
}

// TestTCPAbandonedFramesAreCounted pins the silent-loss fix: when a peer's
// retry budget runs out, every frame stranded on its queue is accounted for
// in the abandoned counter (previously they vanished without a trace).
func TestTCPAbandonedFramesAreCounted(t *testing.T) {
	_, n1, _ := newTCPPair(t,
		WithBackoff(5*time.Millisecond, 10*time.Millisecond),
		WithDialAttempts(2),
	)
	dead := Address{Host: "127.0.0.1", Port: 1} // nothing listens
	const k = 3
	for i := 0; i < k; i++ {
		n1.ctx.Trigger(data{Header: NewHeader(n1.self, dead), Seq: i}, n1.port)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, abandoned := n1.tcp.ResilienceStats(); abandoned >= k {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, _, abandoned := n1.tcp.ResilienceStats()
	t.Fatalf("abandoned %d frames, want >= %d", abandoned, k)
}

// TestTCPSlowReaderBackpressureDrops pins the fair-lossy contract under
// backpressure: a peer that accepts but never reads stalls the writer, the
// bounded send queue fills, and the newest frames are dropped and counted
// rather than blocking the sender's handlers.
func TestTCPSlowReaderBackpressureDrops(t *testing.T) {
	_, n1, _ := newTCPPair(t,
		WithSendQueueLen(2),
		WithWriteTimeout(100*time.Millisecond),
		WithKeepalive(0),
	)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { // accept and hold connections without ever reading
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	slow := Address{Host: "127.0.0.1", Port: uint16(ln.Addr().(*net.TCPAddr).Port)}

	payload := make([]byte, 1<<20)
	for i := 0; i < 32; i++ {
		n1.ctx.Trigger(data{Header: NewHeader(n1.self, slow), Seq: i, Payload: payload}, n1.port)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, droppedFull, _ := n1.tcp.Stats(); droppedFull > 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("slow reader never caused a counted drop")
}

// TestTCPMidFrameDisconnect pins that a peer dying mid-frame (header
// promised more bytes than arrived) neither delivers a truncated message
// nor wedges the transport for healthy peers.
func TestTCPMidFrameDisconnect(t *testing.T) {
	_, n1, n2 := newTCPPair(t)
	conn := dialRaw(t, n1.self)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("only ten b")); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()

	n2.ctx.Trigger(hello{Header: NewHeader(n2.self, n1.self), Greeting: "still serving"}, n2.port)
	waitCount(t, &n1.got, 1, 5*time.Second)
	n1.mu.Lock()
	defer n1.mu.Unlock()
	if len(n1.msgs) != 1 || n1.msgs[0].(hello).Greeting != "still serving" {
		t.Fatalf("unexpected deliveries: %+v", n1.msgs)
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	rt, n1, n2 := newTCPPair(t)
	_ = rt
	n1.ctx.Trigger(hello{Header: NewHeader(n1.self, n2.self), Greeting: "a"}, n1.port)
	waitCount(t, &n2.got, 1, 5*time.Second)

	// Kill n2's listener; sends fail; bring it back via a fresh transport
	// on the same address and verify n1 redials.
	n2.tcp.shutdown()
	time.Sleep(50 * time.Millisecond)
	n1.ctx.Trigger(hello{Header: NewHeader(n1.self, n2.self), Greeting: "lost"}, n1.port)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, _, errs := n1.tcp.Stats(); errs > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Restart: a new transport component bound to the same address.
	n3 := &tcpNode{self: n2.self}
	rt2 := core.New(core.WithScheduler(core.NewWorkStealingScheduler(2)),
		core.WithFaultPolicy(core.LogAndContinue))
	defer rt2.Shutdown()
	rt2.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		ctx.Create("n3", n3)
	}))
	if !rt2.WaitQuiescence(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	t.Cleanup(n3.tcp.shutdown)

	// The failed peer connection was dropped; the next send must redial.
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && n3.got.Load() == 0 {
		n1.ctx.Trigger(hello{Header: NewHeader(n1.self, n2.self), Greeting: "back"}, n1.port)
		time.Sleep(50 * time.Millisecond)
	}
	if n3.got.Load() == 0 {
		t.Fatalf("transport did not reconnect to restarted peer")
	}
}
