package network

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"repro/internal/core"
)

// dialRaw connects a raw socket to a transport's listener.
func dialRaw(t *testing.T, addr Address) net.Conn {
	t.Helper()
	var conn net.Conn
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		conn, err = net.DialTimeout("tcp", addr.String(), time.Second)
		if err == nil {
			return conn
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("dial %s: %v", addr, err)
	return nil
}

func TestTCPRejectsOversizedFrame(t *testing.T) {
	_, n1, _ := newTCPPair(t)
	conn := dialRaw(t, n1.self)
	defer conn.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	// The transport must close the connection rather than allocate.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatalf("connection stayed open after oversized frame")
	}
	if n1.got.Load() != 0 {
		t.Fatalf("oversized frame delivered something")
	}
}

func TestTCPRejectsZeroFrame(t *testing.T) {
	_, n1, _ := newTCPPair(t)
	conn := dialRaw(t, n1.self)
	defer conn.Close()
	var hdr [4]byte // length 0
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatalf("connection stayed open after zero-length frame")
	}
}

func TestTCPSurvivesGarbagePayload(t *testing.T) {
	_, n1, n2 := newTCPPair(t)
	conn := dialRaw(t, n1.self)
	defer conn.Close()
	payload := []byte{flagPlain, 0xde, 0xad, 0xbe, 0xef}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(append(hdr[:], payload...)); err != nil {
		t.Fatal(err)
	}
	// Garbage is dropped, but the transport keeps serving real peers.
	n2.ctx.Trigger(hello{Header: NewHeader(n2.self, n1.self), Greeting: "still alive"}, n2.port)
	waitCount(t, &n1.got, 1, 5*time.Second)
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	rt, n1, n2 := newTCPPair(t)
	_ = rt
	n1.ctx.Trigger(hello{Header: NewHeader(n1.self, n2.self), Greeting: "a"}, n1.port)
	waitCount(t, &n2.got, 1, 5*time.Second)

	// Kill n2's listener; sends fail; bring it back via a fresh transport
	// on the same address and verify n1 redials.
	n2.tcp.shutdown()
	time.Sleep(50 * time.Millisecond)
	n1.ctx.Trigger(hello{Header: NewHeader(n1.self, n2.self), Greeting: "lost"}, n1.port)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, _, errs := n1.tcp.Stats(); errs > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Restart: a new transport component bound to the same address.
	n3 := &tcpNode{self: n2.self}
	rt2 := core.New(core.WithScheduler(core.NewWorkStealingScheduler(2)),
		core.WithFaultPolicy(core.LogAndContinue))
	defer rt2.Shutdown()
	rt2.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		ctx.Create("n3", n3)
	}))
	if !rt2.WaitQuiescence(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	t.Cleanup(n3.tcp.shutdown)

	// The failed peer connection was dropped; the next send must redial.
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && n3.got.Load() == 0 {
		n1.ctx.Trigger(hello{Header: NewHeader(n1.self, n2.self), Greeting: "back"}, n1.port)
		time.Sleep(50 * time.Millisecond)
	}
	if n3.got.Load() == 0 {
		t.Fatalf("transport did not reconnect to restarted peer")
	}
}
