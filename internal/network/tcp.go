package network

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/tracing"
)

// sendQueueLen bounds the per-peer outbound queue. Handlers must never
// block, so an overflowing queue drops the newest message (the Network
// abstraction is fair-lossy; protocols above it retransmit).
const sendQueueLen = 4096

// dialTimeout bounds one connection-establishment attempt to a peer.
const dialTimeout = 3 * time.Second

// Resilience defaults; see the corresponding TCPOptions.
const (
	defaultKeepalive    = 10 * time.Second
	defaultIdleTimeout  = 45 * time.Second
	defaultWriteTimeout = 10 * time.Second
	defaultBackoffBase  = 100 * time.Millisecond
	defaultBackoffMax   = 5 * time.Second
	defaultDialAttempts = 8
)

// TCP is the production Network provider: a from-scratch equivalent of the
// paper's pluggable NIO frameworks (Grizzly/Netty/MINA) built on net. It
// performs automatic connection management (dial on demand, reuse,
// reconnect with capped exponential backoff, teardown on error) and
// message serialization through a swappable WireCodec backend — gob
// (optionally zlib-compressed) by default, the zero-allocation binary
// codec by option, switchable per peer at runtime via SwapCodec.
//
// Wire format: an 8-byte handshake (magic, version, codec capability
// byte), then frames — 4-byte big-endian length prefix + self-describing
// codec payload — interleaved with control frames from the reserved
// prefix range (keepalives, codec switches; see framing.go). Outbound
// connections are used for sending only; peers dial back for their own
// sends, so each direction has a dedicated connection.
//
// Each outbound peer is managed by a small circuit-breaker state machine
// (connecting → up → backoff → … → down). The pending send queue belongs
// to the peer, not the connection: frames queued while a connection is
// broken survive the redial and flow once it heals. Only when the retry
// budget is exhausted is the peer retired and its queue drained (counted
// in the abandoned counter); the next send starts a fresh manager, so
// unreachable peers are re-probed on demand forever. Up/Down transitions
// are published as PeerStatus indications on the Network port.
type TCP struct {
	self Address
	log  *slog.Logger

	// codec is the default wire-codec backend for peers without an
	// override; codecName defers resolution of a WithWireCodecName option
	// to Setup (so unknown names can be logged, not panicked). peerCodecs
	// holds per-peer overrides installed by SwapCodec; both are guarded by
	// mu and survive peer retirement and redials.
	codec      WireCodec
	codecName  string
	peerCodecs map[Address]WireCodec

	keepalive    time.Duration
	idleTimeout  time.Duration
	writeTimeout time.Duration
	backoffBase  time.Duration
	backoffMax   time.Duration
	dialAttempts int
	queueLen     int

	ctx  *core.Ctx
	port *core.Port
	ids  *tracing.IDSource

	mu      sync.Mutex
	ln      net.Listener
	conns   map[Address]*peerConn
	inbound map[net.Conn]struct{}
	stopped bool
	wg      sync.WaitGroup

	sent, received, droppedFull, sendErrors atomic.Uint64
	reconnects, requeued, abandoned         atomic.Uint64
	codecSwaps                              atomic.Uint64
}

// frameBuf is a pooled encode buffer: handleSend encodes each outbound
// frame into one, and the frame's final resolution (written, dropped, or
// abandoned) releases it. Steady state, the encode path allocates nothing.
type frameBuf struct{ b []byte }

var frameBufPool = sync.Pool{New: func() any { return new(frameBuf) }}

// maxPooledFrame bounds the capacity a released buffer may keep; one huge
// handoff chunk must not pin megabytes in the pool forever.
const maxPooledFrame = 64 << 10

func releaseFrame(f *outFrame) {
	fb := f.buf
	if fb == nil {
		return
	}
	f.buf = nil
	f.payload = nil
	if cap(fb.b) > maxPooledFrame {
		return
	}
	frameBufPool.Put(fb)
}

// outFrame is one queued outbound frame: the encoded payload plus the
// trace context of the message it carries. The transport records at most
// ONE "net.send" span per frame, at its final resolution (delivered or
// abandoned) — never per write attempt. `spanned` enforces that: a frame
// preserved across a broken write (requeued, retransmitted first on the
// next connection) must not grow a second span on redial. Keepalives are
// bare length prefixes written directly by serveConn; they never become
// outFrames and so can never carry or inherit span annotations.
type outFrame struct {
	payload  []byte
	buf      *frameBuf // pooled backing buffer; released at final resolution
	trace    tracing.Context
	codecID  byte // capability byte of the codec that encoded payload
	attempts int  // write attempts so far; >1 means the frame crossed a redial
	spanned  bool // the frame's single transport span has been recorded
}

// peerConn is one outbound peer: its send queue and the connection
// manager goroutine that owns dialing, backoff, and writing.
type peerConn struct {
	addr  Address
	ch    chan outFrame
	close chan struct{}
	once  sync.Once
	state atomic.Int32 // PeerState; gauge updates go through TCP.setState
}

func (p *peerConn) shutdown() { p.once.Do(func() { close(p.close) }) }

// TCPOption configures a TCP transport.
type TCPOption func(*TCP)

// WithCompression enables zlib compression of message payloads (selects
// the gob+zlib codec backend as the default).
func WithCompression() TCPOption {
	return func(t *TCP) { t.codec = Codec{Compress: true} }
}

// WithWireCodecName selects the default wire-codec backend by registry
// name ("gob", "gob+zlib", "binary"). Unknown names are logged at Setup
// and the transport keeps its previous default.
func WithWireCodecName(name string) TCPOption {
	return func(t *TCP) { t.codecName = name }
}

// WithKeepalive sets the idle keepalive probe period (0 disables probes).
func WithKeepalive(d time.Duration) TCPOption {
	return func(t *TCP) { t.keepalive = d }
}

// WithIdleTimeout sets how long an inbound connection may stay silent
// before it is reaped (0 disables the read deadline). Must exceed the
// peers' keepalive period or healthy idle links get cut.
func WithIdleTimeout(d time.Duration) TCPOption {
	return func(t *TCP) { t.idleTimeout = d }
}

// WithWriteTimeout bounds a single frame write (0 disables the deadline);
// it is what unwedges a writer stalled on a dead or unreading peer.
func WithWriteTimeout(d time.Duration) TCPOption {
	return func(t *TCP) { t.writeTimeout = d }
}

// WithBackoff sets the reconnect backoff: base doubles per consecutive
// failure up to max, with ±50% jitter.
func WithBackoff(base, max time.Duration) TCPOption {
	return func(t *TCP) { t.backoffBase = base; t.backoffMax = max }
}

// WithDialAttempts sets how many consecutive dial failures retire a peer
// (its queue is then drained into the abandoned counter; the next send
// starts over).
func WithDialAttempts(n int) TCPOption {
	return func(t *TCP) { t.dialAttempts = n }
}

// WithSendQueueLen overrides the per-peer outbound queue capacity.
func WithSendQueueLen(n int) TCPOption {
	return func(t *TCP) { t.queueLen = n }
}

// NewTCP creates a TCP transport component bound to self.
func NewTCP(self Address, opts ...TCPOption) *TCP {
	t := &TCP{
		self:         self,
		codec:        Codec{},
		conns:        make(map[Address]*peerConn),
		peerCodecs:   make(map[Address]WireCodec),
		inbound:      make(map[net.Conn]struct{}),
		keepalive:    defaultKeepalive,
		idleTimeout:  defaultIdleTimeout,
		writeTimeout: defaultWriteTimeout,
		backoffBase:  defaultBackoffBase,
		backoffMax:   defaultBackoffMax,
		dialAttempts: defaultDialAttempts,
		queueLen:     sendQueueLen,
		ids:          tracing.NewIDSource(self.String()),
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

var _ core.Definition = (*TCP)(nil)

// Setup declares the provided Network port; the listener starts on Start.
func (t *TCP) Setup(ctx *core.Ctx) {
	t.ctx = ctx
	t.log = ctx.Log()
	t.port = ctx.Provides(PortType)
	if t.codecName != "" {
		if c, ok := CodecByName(t.codecName); ok {
			t.codec = c
		} else {
			t.log.Warn("tcp: unknown wire codec, keeping default",
				"codec", t.codecName, "default", t.codec.Name())
		}
	}
	core.Subscribe(ctx, t.port, t.handleSend)
	core.Subscribe(ctx, ctx.Control(), func(core.Start) {
		if err := t.listen(); err != nil {
			panic(fmt.Errorf("network: tcp listen on %s: %w", t.self, err))
		}
	})
	core.Subscribe(ctx, ctx.Control(), func(core.Stop) { t.shutdown() })
}

// Self returns the local address.
func (t *TCP) Self() Address { return t.self }

// Stats returns transport counters: messages sent, received, dropped on
// full queues, and send errors.
func (t *TCP) Stats() (sent, received, droppedFull, sendErrors uint64) {
	return t.sent.Load(), t.received.Load(), t.droppedFull.Load(), t.sendErrors.Load()
}

// ResilienceStats returns the reconnect counters: successful redials after
// a failure, frames carried across a broken write, and frames abandoned
// when a peer's retry budget ran out.
func (t *TCP) ResilienceStats() (reconnects, requeued, abandoned uint64) {
	return t.reconnects.Load(), t.requeued.Load(), t.abandoned.Load()
}

// CodecStats returns how many live codec swaps this transport has applied.
func (t *TCP) CodecStats() (swaps uint64) { return t.codecSwaps.Load() }

// PeerCodec reports the codec currently used for frames to peer.
func (t *TCP) PeerCodec(peer Address) WireCodec { return t.codecFor(peer) }

// SwapCodec live-swaps the wire codec used for frames to peer, the paper's
// §2.6 hot-swap applied to the wire format. Every channel attached to the
// Network port is held first, so no send or indication can interleave with
// the swap; the peer's owned send queue keeps draining through the old
// codec (its frames were encoded at enqueue time and each carries its
// codec ID, so the writer announces the change with a codec-switch control
// frame exactly where the boundary falls — even if a redial lands in the
// middle); then the new codec is installed and the channels resume,
// flushing anything queued during the hold in FIFO order. Zero frames are
// lost or reordered. The override survives peer retirement and redials;
// it applies to the next frame encoded after the swap.
func (t *TCP) SwapCodec(peer Address, name string) error {
	c, ok := CodecByName(name)
	if !ok {
		return fmt.Errorf("network: swap codec: unknown codec %q (have %v)", name, CodecNames())
	}
	if t.port != nil {
		chans := t.port.AttachedChannels()
		for _, ch := range chans {
			ch.Hold()
		}
		defer func() {
			for _, ch := range chans {
				ch.Resume()
			}
		}()
	}
	t.mu.Lock()
	t.peerCodecs[peer] = c
	t.mu.Unlock()
	t.codecSwaps.Add(1)
	gCodecSwaps.Add(1)
	if t.log != nil {
		t.log.Info("tcp: wire codec swapped", "peer", peer.String(), "codec", name)
	}
	return nil
}

// SwapAllCodecs swaps the default codec and every per-peer override to
// name, under one hold of the Network port.
func (t *TCP) SwapAllCodecs(name string) error {
	c, ok := CodecByName(name)
	if !ok {
		return fmt.Errorf("network: swap codec: unknown codec %q (have %v)", name, CodecNames())
	}
	if t.port != nil {
		chans := t.port.AttachedChannels()
		for _, ch := range chans {
			ch.Hold()
		}
		defer func() {
			for _, ch := range chans {
				ch.Resume()
			}
		}()
	}
	t.mu.Lock()
	t.codec = c
	for peer := range t.peerCodecs {
		t.peerCodecs[peer] = c
	}
	t.mu.Unlock()
	t.codecSwaps.Add(1)
	gCodecSwaps.Add(1)
	return nil
}

// PeerStates snapshots the circuit-breaker state of every live outbound
// peer.
func (t *TCP) PeerStates() map[Address]PeerState {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := make(map[Address]PeerState, len(t.conns))
	for a, pc := range t.conns {
		m[a] = PeerState(pc.state.Load())
	}
	return m
}

// listen binds the listener and starts the accept loop.
func (t *TCP) listen() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped || t.ln != nil {
		return nil
	}
	ln, err := net.Listen("tcp", t.self.String())
	if err != nil {
		return err
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop(ln)
	return nil
}

// shutdown closes the listener and all connections and waits for the
// transport goroutines.
func (t *TCP) shutdown() {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return
	}
	t.stopped = true
	ln := t.ln
	t.ln = nil
	conns := make([]*peerConn, 0, len(t.conns))
	for _, pc := range t.conns {
		conns = append(conns, pc)
	}
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.inbound = make(map[net.Conn]struct{})
	t.mu.Unlock()

	if ln != nil {
		_ = ln.Close()
	}
	for _, pc := range conns {
		pc.shutdown()
	}
	// Close accepted connections too: readers block in ReadFull and would
	// otherwise keep wg.Wait from returning.
	for _, c := range inbound {
		_ = c.Close()
	}
	t.wg.Wait()
}

// codecFor resolves the wire codec for one peer: its SwapCodec override
// if present, else the transport default.
func (t *TCP) codecFor(dst Address) WireCodec {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.peerCodecs[dst]; ok {
		return c
	}
	return t.codec
}

// handleSend routes an outbound message onto the peer's connection queue,
// dialing on demand. Messages to self are delivered directly. The frame is
// encoded here — through the peer's current codec, into a pooled buffer —
// so the bytes on the queue are immutable from this point on: a codec
// swapped later never re-encodes frames already queued under the old one.
func (t *TCP) handleSend(m Message) {
	if m.Destination() == t.self {
		t.received.Add(1)
		gReceived.Add(1)
		core.TriggerOn(t.port, m) //nolint:errcheck // port type validated at Setup
		return
	}
	codec := t.codecFor(m.Destination())
	fb := frameBufPool.Get().(*frameBuf)
	payload, err := codec.EncodeAppend(fb.b[:0], m)
	fb.b = payload[:0]
	if err != nil {
		frameBufPool.Put(fb)
		t.sendErrors.Add(1)
		gSendErrors.Add(1)
		t.log.Warn("tcp: encode failed", "type", fmt.Sprintf("%T", m), "err", err)
		return
	}
	var tc tracing.Context
	if tm, ok := m.(tracing.Traced); ok {
		tc = tm.TraceContext()
	}
	t.enqueue(m.Destination(), outFrame{
		payload: payload,
		buf:     fb,
		trace:   tc,
		codecID: codec.ID(),
	})
}

// enqueue places one encoded frame on dst's queue, creating the peer's
// connection manager on first use. Lookup and push happen under the
// transport lock so a frame can never slip onto a queue after its manager
// has drained it: retirement also removes the peer under the lock, and a
// later send simply starts a fresh manager.
func (t *TCP) enqueue(dst Address, f outFrame) {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		releaseFrame(&f)
		return
	}
	pc, ok := t.conns[dst]
	if !ok {
		pc = &peerConn{
			addr:  dst,
			ch:    make(chan outFrame, t.queueLen),
			close: make(chan struct{}),
		}
		pc.state.Store(int32(PeerConnecting))
		peerGaugeAdd(PeerConnecting, 1)
		t.conns[dst] = pc
		t.wg.Add(1)
		go t.writeLoop(pc)
	}
	select {
	case pc.ch <- f:
		t.mu.Unlock()
		t.sent.Add(1)
		gSent.Add(1)
	default:
		t.mu.Unlock()
		releaseFrame(&f)
		t.droppedFull.Add(1)
		gDroppedFull.Add(1)
	}
}

// setState transitions a peer's circuit-breaker state, keeping the
// process-wide per-state gauge in step.
func (t *TCP) setState(pc *peerConn, s PeerState) {
	old := PeerState(pc.state.Swap(int32(s)))
	if old != s {
		peerGaugeAdd(old, -1)
		peerGaugeAdd(s, 1)
	}
}

// retirePeer removes the peer from the routing map (under the lock, so no
// new frame can be queued afterwards) and releases its gauge bucket. The
// queue is drained by the caller after this returns.
func (t *TCP) retirePeer(pc *peerConn) {
	t.mu.Lock()
	if t.conns[pc.addr] == pc {
		delete(t.conns, pc.addr)
	}
	t.mu.Unlock()
	pc.shutdown()
	peerGaugeAdd(PeerState(pc.state.Load()), -1)
}

// abandonQueue drains whatever is still queued for a retired peer and
// counts every frame. Called after retirePeer, so nothing can race new
// frames in: the silent-loss hole this replaces stranded up to a full
// queue with no counter.
func (t *TCP) abandonQueue(pc *peerConn, pending *outFrame) {
	var n uint64
	if pending.payload != nil {
		n++
		t.recordSendSpan(pending, "abandoned")
		releaseFrame(pending)
	}
	for {
		select {
		case f := <-pc.ch:
			n++
			t.recordSendSpan(&f, "abandoned")
			releaseFrame(&f)
		default:
			if n > 0 {
				t.abandoned.Add(n)
				gAbandoned.Add(n)
				t.log.Warn("tcp: abandoned queued frames", "peer", pc.addr.String(), "frames", n)
			}
			return
		}
	}
}

// recordSendSpan records the one transport-layer span a traced frame is
// allowed: an instant "net.send" event parented under the wire context the
// frame carries (the coordinator's phase or attempt span), stamped with
// the final outcome and the number of write attempts the frame took.
// Idempotent via outFrame.spanned — a requeued frame retransmitted on a
// fresh connection never records twice. Untraced frames (TraceID 0, which
// includes every unsampled op) cost one predicate here and nothing else.
func (t *TCP) recordSendSpan(f *outFrame, outcome string) {
	if f.trace.TraceID == 0 || f.spanned {
		return
	}
	f.spanned = true
	now := time.Now()
	tracing.Record(tracing.Span{
		Trace:   f.trace.TraceID,
		ID:      t.ids.Next(),
		Parent:  f.trace.SpanID,
		Node:    t.self.String(),
		Name:    "net.send",
		Attempt: f.attempts,
		Outcome: outcome,
		Start:   now,
		End:     now,
	})
}

// emitStatus publishes a PeerStatus transition on the Network port.
// Suppressed once the transport is stopped: a shutdown is not peer news.
func (t *TCP) emitStatus(peer Address, up bool) {
	t.mu.Lock()
	stopped := t.stopped
	t.mu.Unlock()
	if stopped {
		return
	}
	if err := core.TriggerOn(t.port, PeerStatus{Peer: peer, Up: up}); err != nil {
		t.log.Debug("tcp: peer status dropped", "err", err)
	}
}

// errPeerClosed distinguishes an intentional peer shutdown from a broken
// connection inside the write loop.
var errPeerClosed = errors.New("peer closed")

// writeLoop is the per-peer connection manager: dial (with backoff),
// serve the connection until it breaks, redial. Frames stay on pc.ch
// across redials; a frame caught mid-write rides in pending and is
// retransmitted first on the next connection.
func (t *TCP) writeLoop(pc *peerConn) {
	defer t.wg.Done()
	var pending outFrame
	everUp := false
	for {
		conn, retried := t.dialWithBackoff(pc)
		if conn == nil {
			// Retry budget exhausted or peer shut down: retire and account
			// for every frame left behind.
			t.setState(pc, PeerDown)
			down := everUp
			t.retirePeer(pc)
			t.abandonQueue(pc, &pending)
			if down || retried {
				t.emitStatus(pc.addr, false)
			}
			return
		}
		// Announce ourselves before the first frame: magic, version, and
		// the capability byte naming this peer's current codec. Frames
		// queued under an older codec (including pending, preserved across
		// the redial) still flow — writeFrame emits a codec-switch control
		// frame whenever the next frame's codec differs from the one last
		// announced on this connection.
		connCodec := t.codecFor(pc.addr).ID()
		if err := t.writeHandshake(conn, connCodec); err != nil {
			_ = conn.Close()
			t.sendErrors.Add(1)
			gSendErrors.Add(1)
			t.log.Debug("tcp: handshake failed", "peer", pc.addr.String(), "err", err)
			t.setState(pc, PeerBackoff)
			continue
		}
		if everUp || retried {
			t.reconnects.Add(1)
			gReconnects.Add(1)
			t.log.Info("tcp: peer reconnected", "peer", pc.addr.String())
		}
		everUp = true
		t.setState(pc, PeerUp)
		t.emitStatus(pc.addr, true)
		err := t.serveConn(pc, conn, &pending, connCodec)
		_ = conn.Close()
		if errors.Is(err, errPeerClosed) {
			t.retirePeer(pc)
			t.abandonQueue(pc, &pending)
			return
		}
		t.log.Debug("tcp: connection broke", "peer", pc.addr.String(), "err", err)
		t.setState(pc, PeerBackoff)
		t.emitStatus(pc.addr, false)
	}
}

// dialWithBackoff tries to establish the peer connection, sleeping a
// capped exponential backoff (±50% jitter) between attempts. Returns the
// connection and whether any attempt failed first; (nil, _) when the peer
// was closed or the attempt budget ran out.
func (t *TCP) dialWithBackoff(pc *peerConn) (net.Conn, bool) {
	for attempt := 0; attempt < t.dialAttempts; attempt++ {
		select {
		case <-pc.close:
			return nil, attempt > 0
		default:
		}
		t.setState(pc, PeerConnecting)
		conn, err := net.DialTimeout("tcp", pc.addr.String(), dialTimeout)
		if err == nil {
			return conn, attempt > 0
		}
		t.sendErrors.Add(1)
		gSendErrors.Add(1)
		t.log.Debug("tcp: dial failed", "peer", pc.addr.String(), "attempt", attempt+1, "err", err)
		t.setState(pc, PeerBackoff)
		select {
		case <-pc.close:
			return nil, true
		case <-time.After(t.backoff(attempt)):
		}
	}
	return nil, true
}

// backoff computes the sleep before retry attempt+1: base doubled per
// failure, capped, with ±50% jitter so peers dialing a recovered node
// don't stampede in lockstep.
func (t *TCP) backoff(attempt int) time.Duration {
	d := t.backoffBase
	for i := 0; i < attempt && d < t.backoffMax; i++ {
		d *= 2
	}
	if d > t.backoffMax {
		d = t.backoffMax
	}
	if d <= 1 {
		return d
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int63n(half*2)) //nolint:gosec // jitter, not crypto
}

// writeHandshake sends the connection preamble declaring the wire
// protocol version and the codec capability byte for subsequent frames.
func (t *TCP) writeHandshake(conn net.Conn, codecID byte) error {
	if t.writeTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(t.writeTimeout))
	}
	var hs [handshakeLen]byte
	copy(hs[:4], handshakeMagic[:])
	hs[4] = wireVersion
	hs[5] = codecID
	_, err := conn.Write(hs[:])
	return err
}

// serveConn writes framed payloads (and idle keepalives) until the
// connection breaks or the peer is closed. A frame whose write fails is
// stored in *pending — counted as requeued — so the reconnected peer
// transmits it first, ahead of anything queued behind it. The frame's
// span bookkeeping rides in the outFrame across the redial: the
// retransmission finishes the original frame's story, it does not start a
// new one. connCodec is the codec ID the handshake announced; frames
// encoded under a different codec are preceded by a codec-switch control
// frame, which is how a live SwapCodec (or a mixed-codec queue surviving
// a redial) stays frame-exact on the wire.
func (t *TCP) serveConn(pc *peerConn, conn net.Conn, pending *outFrame, connCodec byte) error {
	var lenBuf [4]byte
	writeFrame := func(f *outFrame) error {
		f.attempts++
		if t.writeTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(t.writeTimeout))
		}
		if f.codecID != connCodec {
			var sw [5]byte
			binary.BigEndian.PutUint32(sw[:4], codecSwitchMagic)
			sw[4] = f.codecID
			if _, err := conn.Write(sw[:]); err != nil {
				return err
			}
			connCodec = f.codecID
		}
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(f.payload)))
		if _, err := conn.Write(lenBuf[:]); err != nil {
			return err
		}
		if _, err := conn.Write(f.payload); err != nil {
			return err
		}
		t.recordSendSpan(f, "ok")
		releaseFrame(f)
		return nil
	}
	fail := func(f outFrame, err error) error {
		*pending = f
		t.requeued.Add(1)
		gRequeued.Add(1)
		t.sendErrors.Add(1)
		gSendErrors.Add(1)
		return err
	}
	if pending.payload != nil {
		if err := writeFrame(pending); err != nil {
			t.sendErrors.Add(1)
			gSendErrors.Add(1)
			return err // already counted as requeued when first preserved
		}
		*pending = outFrame{}
	}
	var ka <-chan time.Time
	if t.keepalive > 0 {
		ticker := time.NewTicker(t.keepalive)
		defer ticker.Stop()
		ka = ticker.C
	}
	for {
		select {
		case f := <-pc.ch:
			if len(f.payload) > maxFrame {
				t.sendErrors.Add(1)
				gSendErrors.Add(1)
				releaseFrame(&f)
				continue
			}
			if err := writeFrame(&f); err != nil {
				return fail(f, err)
			}
		case <-ka:
			// Keepalives are a bare magic length prefix: no payload, no
			// outFrame, and by construction no trace annotation — an idle
			// probe must never surface in an op's timeline.
			if t.writeTimeout > 0 {
				_ = conn.SetWriteDeadline(time.Now().Add(t.writeTimeout))
			}
			binary.BigEndian.PutUint32(lenBuf[:], keepaliveMagic)
			if _, err := conn.Write(lenBuf[:]); err != nil {
				t.sendErrors.Add(1)
				gSendErrors.Add(1)
				return err
			}
		case <-pc.close:
			return errPeerClosed
		}
	}
}

// acceptLoop accepts inbound connections and spawns a reader per peer.
func (t *TCP) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed on shutdown
		}
		t.mu.Lock()
		stopped := t.stopped
		if !stopped {
			t.wg.Add(1)
			t.inbound[conn] = struct{}{}
		}
		t.mu.Unlock()
		if stopped {
			_ = conn.Close()
			return
		}
		go t.readLoop(conn)
	}
}

// readLoop decodes frames from one inbound connection and delivers them on
// the Network port. The connection must open with a valid handshake naming
// a registered codec; decode itself dispatches on each payload's format
// flag, so frames from any codec (or a mid-stream swap) decode without
// renegotiation. Keepalive control frames only refresh the idle deadline;
// codec-switch control frames update the peer's announced codec (and are
// validated against the registry); a connection silent past the idle
// timeout is reaped.
func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		_ = conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	if t.idleTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(t.idleTimeout))
	}
	var hs [handshakeLen]byte
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		t.log.Debug("tcp: handshake read", "err", err)
		return
	}
	if [4]byte(hs[:4]) != handshakeMagic || hs[4] != wireVersion {
		t.log.Warn("tcp: bad handshake", "magic", fmt.Sprintf("%x", hs[:4]), "version", hs[4])
		return
	}
	if _, ok := CodecByID(hs[5]); !ok {
		t.log.Warn("tcp: handshake names unknown codec", "id", fmt.Sprintf("0x%02x", hs[5]))
		return
	}
	var lenBuf [4]byte
	for {
		if t.idleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(t.idleTimeout))
		}
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			if !errors.Is(err, io.EOF) {
				t.log.Debug("tcp: read header", "err", err)
			}
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if isControlPrefix(n) {
			switch n {
			case keepaliveMagic:
				continue
			case codecSwitchMagic:
				var id [1]byte
				if _, err := io.ReadFull(conn, id[:]); err != nil {
					return
				}
				if _, ok := CodecByID(id[0]); !ok {
					t.log.Warn("tcp: switch to unknown codec", "id", fmt.Sprintf("0x%02x", id[0]))
					return
				}
				gCodecSwitchFrames.Add(1)
				continue
			default:
				t.log.Warn("tcp: unknown control prefix", "prefix", fmt.Sprintf("0x%08x", n))
				return
			}
		}
		if n == 0 || n > maxFrame {
			t.log.Warn("tcp: bad frame length", "len", n)
			return
		}
		// A fresh buffer per frame: binary-codec decode aliases it
		// (zero-copy keys and values), so it must not be pooled or reused.
		payload := make([]byte, n)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		m, err := DecodePayload(payload)
		if err != nil {
			t.log.Warn("tcp: decode failed", "err", err)
			continue
		}
		t.received.Add(1)
		gReceived.Add(1)
		if err := core.TriggerOn(t.port, m); err != nil {
			t.log.Warn("tcp: deliver failed", "err", err)
		}
	}
}
