package network

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// maxFrame bounds a single message frame (16 MiB), protecting receivers
// from malformed or hostile length prefixes.
const maxFrame = 16 << 20

// sendQueueLen bounds the per-peer outbound queue. Handlers must never
// block, so an overflowing queue drops the newest message (the Network
// abstraction is fair-lossy; protocols above it retransmit).
const sendQueueLen = 4096

// dialTimeout bounds connection establishment to a peer.
const dialTimeout = 3 * time.Second

// TCP is the production Network provider: a from-scratch equivalent of the
// paper's pluggable NIO frameworks (Grizzly/Netty/MINA) built on net. It
// performs automatic connection management (dial on demand, reuse,
// teardown on error), message serialization via the gob codec, and
// optional zlib compression.
//
// Wire format: 4-byte big-endian length prefix, then the codec payload.
// Outbound connections are used for sending only; peers dial back for
// their own sends, so each direction has a dedicated connection.
type TCP struct {
	self  Address
	codec Codec
	log   *slog.Logger

	ctx  *core.Ctx
	port *core.Port

	mu      sync.Mutex
	ln      net.Listener
	conns   map[Address]*peerConn
	inbound map[net.Conn]struct{}
	stopped bool
	wg      sync.WaitGroup

	sent, received, droppedFull, sendErrors atomic.Uint64
}

// peerConn is one outbound connection with its writer goroutine.
type peerConn struct {
	addr  Address
	ch    chan []byte
	close chan struct{}
	once  sync.Once
}

func (p *peerConn) shutdown() { p.once.Do(func() { close(p.close) }) }

// TCPOption configures a TCP transport.
type TCPOption func(*TCP)

// WithCompression enables zlib compression of message payloads.
func WithCompression() TCPOption {
	return func(t *TCP) { t.codec.Compress = true }
}

// NewTCP creates a TCP transport component bound to self.
func NewTCP(self Address, opts ...TCPOption) *TCP {
	t := &TCP{
		self:    self,
		conns:   make(map[Address]*peerConn),
		inbound: make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

var _ core.Definition = (*TCP)(nil)

// Setup declares the provided Network port; the listener starts on Start.
func (t *TCP) Setup(ctx *core.Ctx) {
	t.ctx = ctx
	t.log = ctx.Log()
	t.port = ctx.Provides(PortType)
	core.Subscribe(ctx, t.port, t.handleSend)
	core.Subscribe(ctx, ctx.Control(), func(core.Start) {
		if err := t.listen(); err != nil {
			panic(fmt.Errorf("network: tcp listen on %s: %w", t.self, err))
		}
	})
	core.Subscribe(ctx, ctx.Control(), func(core.Stop) { t.shutdown() })
}

// Self returns the local address.
func (t *TCP) Self() Address { return t.self }

// Stats returns transport counters: messages sent, received, dropped on
// full queues, and send errors.
func (t *TCP) Stats() (sent, received, droppedFull, sendErrors uint64) {
	return t.sent.Load(), t.received.Load(), t.droppedFull.Load(), t.sendErrors.Load()
}

// listen binds the listener and starts the accept loop.
func (t *TCP) listen() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped || t.ln != nil {
		return nil
	}
	ln, err := net.Listen("tcp", t.self.String())
	if err != nil {
		return err
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop(ln)
	return nil
}

// shutdown closes the listener and all connections and waits for the
// transport goroutines.
func (t *TCP) shutdown() {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return
	}
	t.stopped = true
	ln := t.ln
	t.ln = nil
	conns := make([]*peerConn, 0, len(t.conns))
	for _, pc := range t.conns {
		conns = append(conns, pc)
	}
	t.conns = make(map[Address]*peerConn)
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.inbound = make(map[net.Conn]struct{})
	t.mu.Unlock()

	if ln != nil {
		_ = ln.Close()
	}
	for _, pc := range conns {
		pc.shutdown()
	}
	// Close accepted connections too: readers block in ReadFull and would
	// otherwise keep wg.Wait from returning.
	for _, c := range inbound {
		_ = c.Close()
	}
	t.wg.Wait()
}

// handleSend routes an outbound message onto the peer's connection queue,
// dialing on demand. Messages to self are delivered directly.
func (t *TCP) handleSend(m Message) {
	if m.Destination() == t.self {
		t.received.Add(1)
		gReceived.Add(1)
		core.TriggerOn(t.port, m) //nolint:errcheck // port type validated at Setup
		return
	}
	payload, err := t.codec.Encode(m)
	if err != nil {
		t.sendErrors.Add(1)
		gSendErrors.Add(1)
		t.log.Warn("tcp: encode failed", "type", fmt.Sprintf("%T", m), "err", err)
		return
	}
	pc := t.peer(m.Destination())
	if pc == nil {
		return // transport stopped
	}
	select {
	case pc.ch <- payload:
		t.sent.Add(1)
		gSent.Add(1)
	default:
		t.droppedFull.Add(1)
		gDroppedFull.Add(1)
	}
}

// peer returns (creating if needed) the outbound connection state for dst.
func (t *TCP) peer(dst Address) *peerConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return nil
	}
	if pc, ok := t.conns[dst]; ok {
		return pc
	}
	pc := &peerConn{
		addr:  dst,
		ch:    make(chan []byte, sendQueueLen),
		close: make(chan struct{}),
	}
	t.conns[dst] = pc
	t.wg.Add(1)
	go t.writeLoop(pc)
	return pc
}

// dropPeer removes a broken connection so the next send redials.
func (t *TCP) dropPeer(pc *peerConn) {
	t.mu.Lock()
	if t.conns[pc.addr] == pc {
		delete(t.conns, pc.addr)
	}
	t.mu.Unlock()
	pc.shutdown()
}

// writeLoop dials the peer and writes framed payloads from the queue.
func (t *TCP) writeLoop(pc *peerConn) {
	defer t.wg.Done()
	conn, err := net.DialTimeout("tcp", pc.addr.String(), dialTimeout)
	if err != nil {
		t.sendErrors.Add(1)
		gSendErrors.Add(1)
		t.log.Debug("tcp: dial failed", "peer", pc.addr.String(), "err", err)
		t.dropPeer(pc)
		return
	}
	defer conn.Close()
	var lenBuf [4]byte
	for {
		select {
		case payload := <-pc.ch:
			if len(payload) > maxFrame {
				t.sendErrors.Add(1)
				gSendErrors.Add(1)
				continue
			}
			binary.BigEndian.PutUint32(lenBuf[:], uint32(len(payload)))
			if _, err := conn.Write(lenBuf[:]); err != nil {
				t.sendErrors.Add(1)
				gSendErrors.Add(1)
				t.dropPeer(pc)
				return
			}
			if _, err := conn.Write(payload); err != nil {
				t.sendErrors.Add(1)
				gSendErrors.Add(1)
				t.dropPeer(pc)
				return
			}
		case <-pc.close:
			return
		}
	}
}

// acceptLoop accepts inbound connections and spawns a reader per peer.
func (t *TCP) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed on shutdown
		}
		t.mu.Lock()
		stopped := t.stopped
		if !stopped {
			t.wg.Add(1)
			t.inbound[conn] = struct{}{}
		}
		t.mu.Unlock()
		if stopped {
			_ = conn.Close()
			return
		}
		go t.readLoop(conn)
	}
}

// readLoop decodes frames from one inbound connection and delivers them on
// the Network port.
func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		_ = conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			if !errors.Is(err, io.EOF) {
				t.log.Debug("tcp: read header", "err", err)
			}
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrame {
			t.log.Warn("tcp: bad frame length", "len", n)
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		m, err := t.codec.Decode(payload)
		if err != nil {
			t.log.Warn("tcp: decode failed", "err", err)
			continue
		}
		t.received.Add(1)
		gReceived.Add(1)
		if err := core.TriggerOn(t.port, m); err != nil {
			t.log.Warn("tcp: deliver failed", "err", err)
		}
	}
}
