package network

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/tracing"
)

// maxFrame bounds a single message frame (16 MiB), protecting receivers
// from malformed or hostile length prefixes.
const maxFrame = 16 << 20

// keepaliveMagic is the length prefix of a keepalive frame: a 4-byte probe
// with no payload, written on idle connections so both sides learn the
// link is alive (the writer exercises the socket, the reader refreshes its
// idle deadline). The value is far above maxFrame so it can never collide
// with a real frame length, and deliberately not zero — a zero length
// prefix remains a protocol violation that closes the connection.
const keepaliveMagic = 0xFFFF_FFFF

// sendQueueLen bounds the per-peer outbound queue. Handlers must never
// block, so an overflowing queue drops the newest message (the Network
// abstraction is fair-lossy; protocols above it retransmit).
const sendQueueLen = 4096

// dialTimeout bounds one connection-establishment attempt to a peer.
const dialTimeout = 3 * time.Second

// Resilience defaults; see the corresponding TCPOptions.
const (
	defaultKeepalive    = 10 * time.Second
	defaultIdleTimeout  = 45 * time.Second
	defaultWriteTimeout = 10 * time.Second
	defaultBackoffBase  = 100 * time.Millisecond
	defaultBackoffMax   = 5 * time.Second
	defaultDialAttempts = 8
)

// TCP is the production Network provider: a from-scratch equivalent of the
// paper's pluggable NIO frameworks (Grizzly/Netty/MINA) built on net. It
// performs automatic connection management (dial on demand, reuse,
// reconnect with capped exponential backoff, teardown on error), message
// serialization via the gob codec, and optional zlib compression.
//
// Wire format: 4-byte big-endian length prefix, then the codec payload.
// Outbound connections are used for sending only; peers dial back for
// their own sends, so each direction has a dedicated connection.
//
// Each outbound peer is managed by a small circuit-breaker state machine
// (connecting → up → backoff → … → down). The pending send queue belongs
// to the peer, not the connection: frames queued while a connection is
// broken survive the redial and flow once it heals. Only when the retry
// budget is exhausted is the peer retired and its queue drained (counted
// in the abandoned counter); the next send starts a fresh manager, so
// unreachable peers are re-probed on demand forever. Up/Down transitions
// are published as PeerStatus indications on the Network port.
type TCP struct {
	self  Address
	codec Codec
	log   *slog.Logger

	keepalive    time.Duration
	idleTimeout  time.Duration
	writeTimeout time.Duration
	backoffBase  time.Duration
	backoffMax   time.Duration
	dialAttempts int
	queueLen     int

	ctx  *core.Ctx
	port *core.Port
	ids  *tracing.IDSource

	mu      sync.Mutex
	ln      net.Listener
	conns   map[Address]*peerConn
	inbound map[net.Conn]struct{}
	stopped bool
	wg      sync.WaitGroup

	sent, received, droppedFull, sendErrors atomic.Uint64
	reconnects, requeued, abandoned         atomic.Uint64
}

// outFrame is one queued outbound frame: the encoded payload plus the
// trace context of the message it carries. The transport records at most
// ONE "net.send" span per frame, at its final resolution (delivered or
// abandoned) — never per write attempt. `spanned` enforces that: a frame
// preserved across a broken write (requeued, retransmitted first on the
// next connection) must not grow a second span on redial. Keepalives are
// bare length prefixes written directly by serveConn; they never become
// outFrames and so can never carry or inherit span annotations.
type outFrame struct {
	payload  []byte
	trace    tracing.Context
	attempts int  // write attempts so far; >1 means the frame crossed a redial
	spanned  bool // the frame's single transport span has been recorded
}

// peerConn is one outbound peer: its send queue and the connection
// manager goroutine that owns dialing, backoff, and writing.
type peerConn struct {
	addr  Address
	ch    chan outFrame
	close chan struct{}
	once  sync.Once
	state atomic.Int32 // PeerState; gauge updates go through TCP.setState
}

func (p *peerConn) shutdown() { p.once.Do(func() { close(p.close) }) }

// TCPOption configures a TCP transport.
type TCPOption func(*TCP)

// WithCompression enables zlib compression of message payloads.
func WithCompression() TCPOption {
	return func(t *TCP) { t.codec.Compress = true }
}

// WithKeepalive sets the idle keepalive probe period (0 disables probes).
func WithKeepalive(d time.Duration) TCPOption {
	return func(t *TCP) { t.keepalive = d }
}

// WithIdleTimeout sets how long an inbound connection may stay silent
// before it is reaped (0 disables the read deadline). Must exceed the
// peers' keepalive period or healthy idle links get cut.
func WithIdleTimeout(d time.Duration) TCPOption {
	return func(t *TCP) { t.idleTimeout = d }
}

// WithWriteTimeout bounds a single frame write (0 disables the deadline);
// it is what unwedges a writer stalled on a dead or unreading peer.
func WithWriteTimeout(d time.Duration) TCPOption {
	return func(t *TCP) { t.writeTimeout = d }
}

// WithBackoff sets the reconnect backoff: base doubles per consecutive
// failure up to max, with ±50% jitter.
func WithBackoff(base, max time.Duration) TCPOption {
	return func(t *TCP) { t.backoffBase = base; t.backoffMax = max }
}

// WithDialAttempts sets how many consecutive dial failures retire a peer
// (its queue is then drained into the abandoned counter; the next send
// starts over).
func WithDialAttempts(n int) TCPOption {
	return func(t *TCP) { t.dialAttempts = n }
}

// WithSendQueueLen overrides the per-peer outbound queue capacity.
func WithSendQueueLen(n int) TCPOption {
	return func(t *TCP) { t.queueLen = n }
}

// NewTCP creates a TCP transport component bound to self.
func NewTCP(self Address, opts ...TCPOption) *TCP {
	t := &TCP{
		self:         self,
		conns:        make(map[Address]*peerConn),
		inbound:      make(map[net.Conn]struct{}),
		keepalive:    defaultKeepalive,
		idleTimeout:  defaultIdleTimeout,
		writeTimeout: defaultWriteTimeout,
		backoffBase:  defaultBackoffBase,
		backoffMax:   defaultBackoffMax,
		dialAttempts: defaultDialAttempts,
		queueLen:     sendQueueLen,
		ids:          tracing.NewIDSource(self.String()),
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

var _ core.Definition = (*TCP)(nil)

// Setup declares the provided Network port; the listener starts on Start.
func (t *TCP) Setup(ctx *core.Ctx) {
	t.ctx = ctx
	t.log = ctx.Log()
	t.port = ctx.Provides(PortType)
	core.Subscribe(ctx, t.port, t.handleSend)
	core.Subscribe(ctx, ctx.Control(), func(core.Start) {
		if err := t.listen(); err != nil {
			panic(fmt.Errorf("network: tcp listen on %s: %w", t.self, err))
		}
	})
	core.Subscribe(ctx, ctx.Control(), func(core.Stop) { t.shutdown() })
}

// Self returns the local address.
func (t *TCP) Self() Address { return t.self }

// Stats returns transport counters: messages sent, received, dropped on
// full queues, and send errors.
func (t *TCP) Stats() (sent, received, droppedFull, sendErrors uint64) {
	return t.sent.Load(), t.received.Load(), t.droppedFull.Load(), t.sendErrors.Load()
}

// ResilienceStats returns the reconnect counters: successful redials after
// a failure, frames carried across a broken write, and frames abandoned
// when a peer's retry budget ran out.
func (t *TCP) ResilienceStats() (reconnects, requeued, abandoned uint64) {
	return t.reconnects.Load(), t.requeued.Load(), t.abandoned.Load()
}

// PeerStates snapshots the circuit-breaker state of every live outbound
// peer.
func (t *TCP) PeerStates() map[Address]PeerState {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := make(map[Address]PeerState, len(t.conns))
	for a, pc := range t.conns {
		m[a] = PeerState(pc.state.Load())
	}
	return m
}

// listen binds the listener and starts the accept loop.
func (t *TCP) listen() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped || t.ln != nil {
		return nil
	}
	ln, err := net.Listen("tcp", t.self.String())
	if err != nil {
		return err
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop(ln)
	return nil
}

// shutdown closes the listener and all connections and waits for the
// transport goroutines.
func (t *TCP) shutdown() {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return
	}
	t.stopped = true
	ln := t.ln
	t.ln = nil
	conns := make([]*peerConn, 0, len(t.conns))
	for _, pc := range t.conns {
		conns = append(conns, pc)
	}
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.inbound = make(map[net.Conn]struct{})
	t.mu.Unlock()

	if ln != nil {
		_ = ln.Close()
	}
	for _, pc := range conns {
		pc.shutdown()
	}
	// Close accepted connections too: readers block in ReadFull and would
	// otherwise keep wg.Wait from returning.
	for _, c := range inbound {
		_ = c.Close()
	}
	t.wg.Wait()
}

// handleSend routes an outbound message onto the peer's connection queue,
// dialing on demand. Messages to self are delivered directly.
func (t *TCP) handleSend(m Message) {
	if m.Destination() == t.self {
		t.received.Add(1)
		gReceived.Add(1)
		core.TriggerOn(t.port, m) //nolint:errcheck // port type validated at Setup
		return
	}
	payload, err := t.codec.Encode(m)
	if err != nil {
		t.sendErrors.Add(1)
		gSendErrors.Add(1)
		t.log.Warn("tcp: encode failed", "type", fmt.Sprintf("%T", m), "err", err)
		return
	}
	var tc tracing.Context
	if tm, ok := m.(tracing.Traced); ok {
		tc = tm.TraceContext()
	}
	t.enqueue(m.Destination(), payload, tc)
}

// enqueue places one encoded frame on dst's queue, creating the peer's
// connection manager on first use. Lookup and push happen under the
// transport lock so a frame can never slip onto a queue after its manager
// has drained it: retirement also removes the peer under the lock, and a
// later send simply starts a fresh manager.
func (t *TCP) enqueue(dst Address, payload []byte, tc tracing.Context) {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return
	}
	pc, ok := t.conns[dst]
	if !ok {
		pc = &peerConn{
			addr:  dst,
			ch:    make(chan outFrame, t.queueLen),
			close: make(chan struct{}),
		}
		pc.state.Store(int32(PeerConnecting))
		peerGaugeAdd(PeerConnecting, 1)
		t.conns[dst] = pc
		t.wg.Add(1)
		go t.writeLoop(pc)
	}
	select {
	case pc.ch <- outFrame{payload: payload, trace: tc}:
		t.mu.Unlock()
		t.sent.Add(1)
		gSent.Add(1)
	default:
		t.mu.Unlock()
		t.droppedFull.Add(1)
		gDroppedFull.Add(1)
	}
}

// setState transitions a peer's circuit-breaker state, keeping the
// process-wide per-state gauge in step.
func (t *TCP) setState(pc *peerConn, s PeerState) {
	old := PeerState(pc.state.Swap(int32(s)))
	if old != s {
		peerGaugeAdd(old, -1)
		peerGaugeAdd(s, 1)
	}
}

// retirePeer removes the peer from the routing map (under the lock, so no
// new frame can be queued afterwards) and releases its gauge bucket. The
// queue is drained by the caller after this returns.
func (t *TCP) retirePeer(pc *peerConn) {
	t.mu.Lock()
	if t.conns[pc.addr] == pc {
		delete(t.conns, pc.addr)
	}
	t.mu.Unlock()
	pc.shutdown()
	peerGaugeAdd(PeerState(pc.state.Load()), -1)
}

// abandonQueue drains whatever is still queued for a retired peer and
// counts every frame. Called after retirePeer, so nothing can race new
// frames in: the silent-loss hole this replaces stranded up to a full
// queue with no counter.
func (t *TCP) abandonQueue(pc *peerConn, pending *outFrame) {
	var n uint64
	if pending.payload != nil {
		n++
		t.recordSendSpan(pending, "abandoned")
	}
	for {
		select {
		case f := <-pc.ch:
			n++
			t.recordSendSpan(&f, "abandoned")
		default:
			if n > 0 {
				t.abandoned.Add(n)
				gAbandoned.Add(n)
				t.log.Warn("tcp: abandoned queued frames", "peer", pc.addr.String(), "frames", n)
			}
			return
		}
	}
}

// recordSendSpan records the one transport-layer span a traced frame is
// allowed: an instant "net.send" event parented under the wire context the
// frame carries (the coordinator's phase or attempt span), stamped with
// the final outcome and the number of write attempts the frame took.
// Idempotent via outFrame.spanned — a requeued frame retransmitted on a
// fresh connection never records twice. Untraced frames (TraceID 0, which
// includes every unsampled op) cost one predicate here and nothing else.
func (t *TCP) recordSendSpan(f *outFrame, outcome string) {
	if f.trace.TraceID == 0 || f.spanned {
		return
	}
	f.spanned = true
	now := time.Now()
	tracing.Record(tracing.Span{
		Trace:   f.trace.TraceID,
		ID:      t.ids.Next(),
		Parent:  f.trace.SpanID,
		Node:    t.self.String(),
		Name:    "net.send",
		Attempt: f.attempts,
		Outcome: outcome,
		Start:   now,
		End:     now,
	})
}

// emitStatus publishes a PeerStatus transition on the Network port.
// Suppressed once the transport is stopped: a shutdown is not peer news.
func (t *TCP) emitStatus(peer Address, up bool) {
	t.mu.Lock()
	stopped := t.stopped
	t.mu.Unlock()
	if stopped {
		return
	}
	if err := core.TriggerOn(t.port, PeerStatus{Peer: peer, Up: up}); err != nil {
		t.log.Debug("tcp: peer status dropped", "err", err)
	}
}

// errPeerClosed distinguishes an intentional peer shutdown from a broken
// connection inside the write loop.
var errPeerClosed = errors.New("peer closed")

// writeLoop is the per-peer connection manager: dial (with backoff),
// serve the connection until it breaks, redial. Frames stay on pc.ch
// across redials; a frame caught mid-write rides in pending and is
// retransmitted first on the next connection.
func (t *TCP) writeLoop(pc *peerConn) {
	defer t.wg.Done()
	var pending outFrame
	everUp := false
	for {
		conn, retried := t.dialWithBackoff(pc)
		if conn == nil {
			// Retry budget exhausted or peer shut down: retire and account
			// for every frame left behind.
			t.setState(pc, PeerDown)
			down := everUp
			t.retirePeer(pc)
			t.abandonQueue(pc, &pending)
			if down || retried {
				t.emitStatus(pc.addr, false)
			}
			return
		}
		if everUp || retried {
			t.reconnects.Add(1)
			gReconnects.Add(1)
			t.log.Info("tcp: peer reconnected", "peer", pc.addr.String())
		}
		everUp = true
		t.setState(pc, PeerUp)
		t.emitStatus(pc.addr, true)
		err := t.serveConn(pc, conn, &pending)
		_ = conn.Close()
		if errors.Is(err, errPeerClosed) {
			t.retirePeer(pc)
			t.abandonQueue(pc, &pending)
			return
		}
		t.log.Debug("tcp: connection broke", "peer", pc.addr.String(), "err", err)
		t.setState(pc, PeerBackoff)
		t.emitStatus(pc.addr, false)
	}
}

// dialWithBackoff tries to establish the peer connection, sleeping a
// capped exponential backoff (±50% jitter) between attempts. Returns the
// connection and whether any attempt failed first; (nil, _) when the peer
// was closed or the attempt budget ran out.
func (t *TCP) dialWithBackoff(pc *peerConn) (net.Conn, bool) {
	for attempt := 0; attempt < t.dialAttempts; attempt++ {
		select {
		case <-pc.close:
			return nil, attempt > 0
		default:
		}
		t.setState(pc, PeerConnecting)
		conn, err := net.DialTimeout("tcp", pc.addr.String(), dialTimeout)
		if err == nil {
			return conn, attempt > 0
		}
		t.sendErrors.Add(1)
		gSendErrors.Add(1)
		t.log.Debug("tcp: dial failed", "peer", pc.addr.String(), "attempt", attempt+1, "err", err)
		t.setState(pc, PeerBackoff)
		select {
		case <-pc.close:
			return nil, true
		case <-time.After(t.backoff(attempt)):
		}
	}
	return nil, true
}

// backoff computes the sleep before retry attempt+1: base doubled per
// failure, capped, with ±50% jitter so peers dialing a recovered node
// don't stampede in lockstep.
func (t *TCP) backoff(attempt int) time.Duration {
	d := t.backoffBase
	for i := 0; i < attempt && d < t.backoffMax; i++ {
		d *= 2
	}
	if d > t.backoffMax {
		d = t.backoffMax
	}
	if d <= 1 {
		return d
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int63n(half*2)) //nolint:gosec // jitter, not crypto
}

// serveConn writes framed payloads (and idle keepalives) until the
// connection breaks or the peer is closed. A frame whose write fails is
// stored in *pending — counted as requeued — so the reconnected peer
// transmits it first, ahead of anything queued behind it. The frame's
// span bookkeeping rides in the outFrame across the redial: the
// retransmission finishes the original frame's story, it does not start a
// new one.
func (t *TCP) serveConn(pc *peerConn, conn net.Conn, pending *outFrame) error {
	var lenBuf [4]byte
	writeFrame := func(f *outFrame) error {
		f.attempts++
		if t.writeTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(t.writeTimeout))
		}
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(f.payload)))
		if _, err := conn.Write(lenBuf[:]); err != nil {
			return err
		}
		if _, err := conn.Write(f.payload); err != nil {
			return err
		}
		t.recordSendSpan(f, "ok")
		return nil
	}
	fail := func(f outFrame, err error) error {
		*pending = f
		t.requeued.Add(1)
		gRequeued.Add(1)
		t.sendErrors.Add(1)
		gSendErrors.Add(1)
		return err
	}
	if pending.payload != nil {
		if err := writeFrame(pending); err != nil {
			t.sendErrors.Add(1)
			gSendErrors.Add(1)
			return err // already counted as requeued when first preserved
		}
		*pending = outFrame{}
	}
	var ka <-chan time.Time
	if t.keepalive > 0 {
		ticker := time.NewTicker(t.keepalive)
		defer ticker.Stop()
		ka = ticker.C
	}
	for {
		select {
		case f := <-pc.ch:
			if len(f.payload) > maxFrame {
				t.sendErrors.Add(1)
				gSendErrors.Add(1)
				continue
			}
			if err := writeFrame(&f); err != nil {
				return fail(f, err)
			}
		case <-ka:
			// Keepalives are a bare magic length prefix: no payload, no
			// outFrame, and by construction no trace annotation — an idle
			// probe must never surface in an op's timeline.
			if t.writeTimeout > 0 {
				_ = conn.SetWriteDeadline(time.Now().Add(t.writeTimeout))
			}
			binary.BigEndian.PutUint32(lenBuf[:], keepaliveMagic)
			if _, err := conn.Write(lenBuf[:]); err != nil {
				t.sendErrors.Add(1)
				gSendErrors.Add(1)
				return err
			}
		case <-pc.close:
			return errPeerClosed
		}
	}
}

// acceptLoop accepts inbound connections and spawns a reader per peer.
func (t *TCP) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed on shutdown
		}
		t.mu.Lock()
		stopped := t.stopped
		if !stopped {
			t.wg.Add(1)
			t.inbound[conn] = struct{}{}
		}
		t.mu.Unlock()
		if stopped {
			_ = conn.Close()
			return
		}
		go t.readLoop(conn)
	}
}

// readLoop decodes frames from one inbound connection and delivers them on
// the Network port. Keepalive frames only refresh the idle deadline; a
// connection silent past the idle timeout is reaped.
func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		_ = conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	var lenBuf [4]byte
	for {
		if t.idleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(t.idleTimeout))
		}
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			if !errors.Is(err, io.EOF) {
				t.log.Debug("tcp: read header", "err", err)
			}
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == keepaliveMagic {
			continue
		}
		if n == 0 || n > maxFrame {
			t.log.Warn("tcp: bad frame length", "len", n)
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		m, err := t.codec.Decode(payload)
		if err != nil {
			t.log.Warn("tcp: decode failed", "err", err)
			continue
		}
		t.received.Add(1)
		gReceived.Add(1)
		if err := core.TriggerOn(t.port, m); err != nil {
			t.log.Warn("tcp: deliver failed", "err", err)
		}
	}
}
