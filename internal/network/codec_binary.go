package network

import (
	"encoding/binary"
	"fmt"
	"sync"
	"unsafe"

	"repro/internal/tracing"
)

// BinaryCodec is the zero-allocation length-prefixed binary backend for
// the fixed hot-path message set (ABD quorum phases, coalesced batch
// frames, handoff chunks). Hot-path types implement WireMessage and
// marshal themselves with the Append* primitives below — no reflection,
// no type descriptors, encode appends into the caller's recycled buffer
// and decode aliases the inbound frame (zero-copy keys and values).
// Types outside the wire set fall back to gob inside a tagged frame
// (format flag flagPlain), so the payload stays self-describing and
// nothing is ever unencodable.
type BinaryCodec struct{}

var _ WireCodec = BinaryCodec{}

// Name returns the registry name "binary".
func (BinaryCodec) Name() string { return "binary" }

// ID returns the codec capability byte (also the format flag it emits).
func (BinaryCodec) ID() byte { return flagBinary }

// WireMessage is implemented by message types that belong to the binary
// codec's hot-path wire set. AppendWire appends the message body (no flag,
// no tag) to dst and returns the extended slice; it must be the exact
// inverse of the decoder registered for WireTag.
type WireMessage interface {
	Message
	// WireTag identifies the concrete type on the wire.
	WireTag() byte
	// AppendWire appends the binary body to dst.
	AppendWire(dst []byte) []byte
}

// WireDecoder deserializes one binary body (positioned after the flag and
// tag bytes) back into its concrete message.
type WireDecoder func(r *WireReader) (Message, error)

// wireDecoders is the tag→decoder table. Registration happens in package
// inits (RegisterWire panics on duplicates); lookups are lock-free array
// indexing on the decode hot path.
var (
	wireRegMu    sync.Mutex
	wireDecoders [256]WireDecoder
	wireNames    [256]string
)

// RegisterWire installs the binary decoder for one wire tag. Call it from
// the package init that defines the message type, alongside Register.
// Duplicate tags panic: tags are wire protocol and must be unambiguous.
func RegisterWire(tag byte, name string, dec WireDecoder) {
	wireRegMu.Lock()
	defer wireRegMu.Unlock()
	if wireDecoders[tag] != nil {
		panic(fmt.Sprintf("network: duplicate wire tag 0x%02x (%s vs %s)", tag, wireNames[tag], name))
	}
	wireDecoders[tag] = dec
	wireNames[tag] = name
}

// EncodeAppend appends m's payload to dst: flag + tag + binary body for
// wire-set types, or a gob fallback payload for everything else.
func (BinaryCodec) EncodeAppend(dst []byte, m Message) ([]byte, error) {
	if wm, ok := m.(WireMessage); ok && wireDecoders[wm.WireTag()] != nil {
		if tm, ok := m.(tracing.Traced); ok && tm.TraceContext().TraceID != 0 {
			gTracedFrames.Add(1)
		}
		start := len(dst)
		dst = append(dst, flagBinary, wm.WireTag())
		dst = wm.AppendWire(dst)
		gEncodedMsgs.Add(1)
		gEncodedBytes.Add(uint64(len(dst) - start))
		gBinaryEncoded.Add(1)
		return dst, nil
	}
	// Rare or unregistered type: tagged gob fallback. The payload's format
	// flag makes it self-describing, so the receiver needs no notice.
	gCodecFallbacks.Add(1)
	return Codec{}.EncodeAppend(dst, m)
}

// Encode serializes a message into a fresh payload.
func (c BinaryCodec) Encode(m Message) ([]byte, error) {
	return c.EncodeAppend(nil, m)
}

// Decode deserializes a payload produced by any registered codec.
func (BinaryCodec) Decode(payload []byte) (Message, error) {
	return DecodePayload(payload)
}

// decodeBinary deserializes a flagBinary payload: tag byte, then the body
// handed to the registered decoder. The decoded message aliases payload.
func decodeBinary(payload []byte) (Message, error) {
	if len(payload) < 2 {
		return nil, fmt.Errorf("network: decode: truncated binary payload")
	}
	dec := wireDecoders[payload[1]]
	if dec == nil {
		return nil, fmt.Errorf("network: decode: unknown wire tag 0x%02x", payload[1])
	}
	r := WireReader{buf: payload[2:]}
	m, err := dec(&r)
	if err != nil {
		return nil, fmt.Errorf("network: decode %s: %w", wireNames[payload[1]], err)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("network: decode %s: %w", wireNames[payload[1]], err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("network: decode %s: %d trailing bytes", wireNames[payload[1]], r.Len())
	}
	gDecodedMsgs.Add(1)
	gBinaryDecoded.Add(1)
	return m, nil
}

// Wire primitives. Fixed-width big-endian integers; strings and byte
// slices are a u32 length followed by the raw bytes. Protocol packages
// build AppendWire bodies and decoders from these so every implementation
// shares the same (fuzzed) bounds handling.

// AppendU8 appends one byte.
func AppendU8(dst []byte, v byte) []byte { return append(dst, v) }

// AppendU16 appends a big-endian uint16.
func AppendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v>>8), byte(v))
}

// AppendU32 appends a big-endian uint32.
func AppendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// AppendU64 appends a big-endian uint64.
func AppendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// AppendI64 appends a big-endian int64 (two's complement).
func AppendI64(dst []byte, v int64) []byte { return AppendU64(dst, uint64(v)) }

// AppendBool appends a bool as one byte.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendBytes appends a u32 length prefix and the bytes.
func AppendBytes(dst []byte, b []byte) []byte {
	dst = AppendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

// AppendString appends a u32 length prefix and the string bytes.
func AppendString(dst []byte, s string) []byte {
	dst = AppendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

// AppendAddr appends a network Address: host string + u16 port.
func AppendAddr(dst []byte, a Address) []byte {
	dst = AppendString(dst, a.Host)
	return AppendU16(dst, a.Port)
}

// AppendHeader appends a message Header: source then destination address.
func AppendHeader(dst []byte, h Header) []byte {
	dst = AppendAddr(dst, h.Src)
	return AppendAddr(dst, h.Dst)
}

// WireReader reads the primitives back out of a binary body. Out-of-bounds
// reads latch an error and return zero values; the caller checks Err()
// once at the end (decodeBinary does this for registered decoders).
// Bytes and String alias the underlying buffer — zero-copy — which is why
// decoded messages must own their payload buffer.
type WireReader struct {
	buf []byte
	off int
	err error
}

// NewWireReader wraps a binary body for reading (tests and fuzzing; codec
// decoders receive theirs from decodeBinary).
func NewWireReader(buf []byte) WireReader { return WireReader{buf: buf} }

// Err returns the first bounds violation encountered, if any.
func (r *WireReader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *WireReader) Len() int { return len(r.buf) - r.off }

func (r *WireReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("truncated body at offset %d", r.off)
	}
}

// take returns the next n bytes, or nil after latching an error.
func (r *WireReader) take(n int) []byte {
	if r.err != nil || n < 0 || r.Len() < n {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *WireReader) U8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (r *WireReader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (r *WireReader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (r *WireReader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 reads a big-endian int64.
func (r *WireReader) I64() int64 { return int64(r.U64()) }

// Bool reads one byte as a bool.
func (r *WireReader) Bool() bool { return r.U8() != 0 }

// Bytes reads a u32-prefixed byte slice, aliasing the buffer (zero-copy).
// Returns nil for a zero length.
func (r *WireReader) Bytes() []byte {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	b := r.take(int(n))
	if len(b) == 0 {
		return nil
	}
	return b
}

// String reads a u32-prefixed string, aliasing the buffer (zero-copy via
// unsafe.String; the buffer is never mutated after decode).
func (r *WireReader) String() string {
	n := r.U32()
	if r.err != nil {
		return ""
	}
	b := r.take(int(n))
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// Addr reads a network Address.
func (r *WireReader) Addr() Address {
	host := r.String()
	port := r.U16()
	return Address{Host: host, Port: port}
}

// Header reads a message Header.
func (r *WireReader) Header() Header {
	src := r.Addr()
	dst := r.Addr()
	return Header{Src: src, Dst: dst}
}
