//go:build !race

package network

// raceEnabled mirrors the race build tag so byte-count allocation gates
// can skip under the race runtime, whose instrumentation inflates
// TotalAlloc beyond the thresholds being regression-tested.
const raceEnabled = false
