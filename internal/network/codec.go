package network

import (
	"encoding/gob"
	"fmt"
	"sort"
	"sync"
)

// Register makes a concrete message type known to the codec. Every concrete
// type sent through a serializing transport must be registered once (in the
// package init of the protocol that defines it), mirroring the paper's
// pluggable serialization registry (Kryo).
func Register(msg Message) {
	gob.Register(msg)
}

// envelope wraps the Message interface value so gob can encode the dynamic
// type alongside the payload.
type envelope struct {
	M Message
}

// Payload format flags. Byte 0 of every encoded payload names the format
// of the rest, so a payload is self-describing: any receiver can decode
// any frame regardless of which codec its peer currently has installed.
// That property is what makes a live codec swap frame-safe — mixed-codec
// queues, pre-swap frames surviving a redial, and mid-swap reconnects all
// decode correctly with no negotiation on the read path.
const (
	flagPlain  byte = 0x00 // gob body
	flagZlib   byte = 0x01 // zlib-compressed gob body
	flagBinary byte = 0x02 // tag byte + hand-rolled binary body
)

// IsBinaryPayload reports whether an encoded payload is in the binary wire
// format (as opposed to a gob-family body, including the binary codec's
// gob fallback for types outside its wire set).
func IsBinaryPayload(p []byte) bool {
	return len(p) > 0 && p[0] == flagBinary
}

// WireCodec is a swappable wire-format backend behind the Network port.
// Implementations turn Messages into self-describing payloads (byte 0 is
// one of the format flags above) and back. The codec ID doubles as the
// capability byte exchanged in the transport handshake.
//
// EncodeAppend appends the payload to dst and returns the extended slice,
// so a steady-state caller encoding into a recycled buffer allocates
// nothing. Decode may alias the payload (zero-copy keys and values), so
// callers must not reuse a payload buffer after decoding from it.
type WireCodec interface {
	// Name is the stable human name used by -wire-codec flags and SwapCodec.
	Name() string
	// ID is the codec's wire capability byte (also its payload format flag).
	ID() byte
	// EncodeAppend appends m's payload to dst.
	EncodeAppend(dst []byte, m Message) ([]byte, error)
	// Encode serializes m into a fresh payload.
	Encode(m Message) ([]byte, error)
	// Decode deserializes a payload produced by any registered codec.
	Decode(payload []byte) (Message, error)
}

// codecRegistry maps codec names and capability bytes to backends. Entries
// are installed from package inits (the two built-ins below) and read on
// every handshake, so registration after init is guarded but discouraged.
var codecRegistry struct {
	mu     sync.RWMutex
	byName map[string]WireCodec
	byID   map[byte]WireCodec
}

// RegisterWireCodec installs a codec backend under its Name and ID.
// Registering a duplicate name or ID panics: codec identity is part of the
// wire protocol and must be unambiguous.
func RegisterWireCodec(c WireCodec) {
	codecRegistry.mu.Lock()
	defer codecRegistry.mu.Unlock()
	if codecRegistry.byName == nil {
		codecRegistry.byName = make(map[string]WireCodec)
		codecRegistry.byID = make(map[byte]WireCodec)
	}
	if _, dup := codecRegistry.byName[c.Name()]; dup {
		panic(fmt.Sprintf("network: duplicate codec name %q", c.Name()))
	}
	if _, dup := codecRegistry.byID[c.ID()]; dup {
		panic(fmt.Sprintf("network: duplicate codec id 0x%02x", c.ID()))
	}
	codecRegistry.byName[c.Name()] = c
	codecRegistry.byID[c.ID()] = c
}

// CodecByName resolves a codec backend by its stable name.
func CodecByName(name string) (WireCodec, bool) {
	codecRegistry.mu.RLock()
	defer codecRegistry.mu.RUnlock()
	c, ok := codecRegistry.byName[name]
	return c, ok
}

// CodecByID resolves a codec backend by its wire capability byte.
func CodecByID(id byte) (WireCodec, bool) {
	codecRegistry.mu.RLock()
	defer codecRegistry.mu.RUnlock()
	c, ok := codecRegistry.byID[id]
	return c, ok
}

// CodecNames lists the registered codec names, sorted.
func CodecNames() []string {
	codecRegistry.mu.RLock()
	defer codecRegistry.mu.RUnlock()
	names := make([]string, 0, len(codecRegistry.byName))
	for n := range codecRegistry.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterWireCodec(Codec{})
	RegisterWireCodec(Codec{Compress: true})
	RegisterWireCodec(BinaryCodec{})
}

// DecodePayload decodes a self-describing payload produced by any codec,
// dispatching on the format flag in byte 0. The returned message may alias
// payload (zero-copy strings and byte slices), so the caller must not
// reuse the buffer afterwards.
func DecodePayload(payload []byte) (Message, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("network: decode: empty payload")
	}
	switch payload[0] {
	case flagPlain, flagZlib:
		return decodeGob(payload)
	case flagBinary:
		return decodeBinary(payload)
	default:
		return nil, fmt.Errorf("network: decode: unknown format flag 0x%02x", payload[0])
	}
}
