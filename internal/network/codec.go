package network

import (
	"bytes"
	"compress/zlib"
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"repro/internal/tracing"
)

// Register makes a concrete message type known to the codec. Every concrete
// type sent through a serializing transport must be registered once (in the
// package init of the protocol that defines it), mirroring the paper's
// pluggable serialization registry (Kryo).
func Register(msg Message) {
	gob.Register(msg)
}

// envelope wraps the Message interface value so gob can encode the dynamic
// type alongside the payload.
type envelope struct {
	M Message
}

// Codec serializes messages to self-contained byte payloads, optionally
// zlib-compressed (the paper's transports apply Zlib compression).
// The zero value is a plain gob codec without compression.
type Codec struct {
	// Compress enables zlib compression of each payload.
	Compress bool
}

// compressFlag prefixes every payload so a receiver handles both compressed
// and uncompressed peers.
const (
	flagPlain byte = 0x00
	flagZlib  byte = 0x01
)

// zlib writers and readers hold large window buffers; pool them so
// per-message compression does not pay their allocation every time.
var zlibWriterPool = sync.Pool{
	New: func() any {
		w, err := zlib.NewWriterLevel(io.Discard, zlib.BestSpeed)
		if err != nil {
			panic(err) // BestSpeed is always a valid level
		}
		return w
	},
}

var zlibReaderPool = sync.Pool{}

// encBufPool recycles the per-message scratch buffer gob encodes into, so
// Encode pays only the one unavoidable allocation: the returned payload,
// sized exactly, written once. The gob encoder itself cannot be pooled: a
// reused encoder omits type descriptors it already sent, which would make
// payloads non-self-contained and undecodable by a fresh decoder.
var encBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// Encode serializes a message into a self-contained payload.
func (c Codec) Encode(m Message) ([]byte, error) {
	// Trace-annotated frames (messages carrying a sampled trace context)
	// are counted at the wire boundary: the ratio against encoded_msgs is
	// the observed sampling rate actually crossing the network.
	if tm, ok := m.(tracing.Traced); ok && tm.TraceContext().TraceID != 0 {
		gTracedFrames.Add(1)
	}
	buf := encBufPool.Get().(*bytes.Buffer)
	defer encBufPool.Put(buf)
	buf.Reset()

	if !c.Compress {
		// Write the flag into the scratch buffer ahead of the gob body so
		// the payload is produced in one sized allocation and one copy
		// (previously: make + flag append + body append, copying twice).
		buf.WriteByte(flagPlain)
		if err := gob.NewEncoder(buf).Encode(envelope{M: m}); err != nil {
			return nil, fmt.Errorf("network: encode %T: %w", m, err)
		}
		out := make([]byte, buf.Len())
		copy(out, buf.Bytes())
		gEncodedMsgs.Add(1)
		gEncodedBytes.Add(uint64(len(out)))
		return out, nil
	}

	if err := gob.NewEncoder(buf).Encode(envelope{M: m}); err != nil {
		return nil, fmt.Errorf("network: encode %T: %w", m, err)
	}
	var out bytes.Buffer
	out.Grow(buf.Len()/2 + 16)
	out.WriteByte(flagZlib)
	zw := zlibWriterPool.Get().(*zlib.Writer)
	zw.Reset(&out)
	_, werr := zw.Write(buf.Bytes())
	cerr := zw.Close()
	zlibWriterPool.Put(zw)
	if werr != nil {
		return nil, fmt.Errorf("network: compress %T: %w", m, werr)
	}
	if cerr != nil {
		return nil, fmt.Errorf("network: compress %T: %w", m, cerr)
	}
	gEncodedMsgs.Add(1)
	gEncodedBytes.Add(uint64(out.Len()))
	gCompressedMsgs.Add(1)
	gCompressedIn.Add(uint64(buf.Len()))
	gCompressedOut.Add(uint64(out.Len() - 1)) // exclude the flag byte
	return out.Bytes(), nil
}

// Decode deserializes a payload produced by Encode (of any compression
// setting).
func (c Codec) Decode(payload []byte) (Message, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("network: decode: empty payload")
	}
	body := payload[1:]
	var r io.Reader = bytes.NewReader(body)
	switch payload[0] {
	case flagPlain:
	case flagZlib:
		if pooled := zlibReaderPool.Get(); pooled != nil {
			zr := pooled.(io.ReadCloser)
			if err := zr.(zlib.Resetter).Reset(r, nil); err != nil {
				return nil, fmt.Errorf("network: decompress: %w", err)
			}
			defer func() {
				_ = zr.Close()
				zlibReaderPool.Put(zr)
			}()
			r = zr
		} else {
			zr, err := zlib.NewReader(r)
			if err != nil {
				return nil, fmt.Errorf("network: decompress: %w", err)
			}
			defer func() {
				_ = zr.Close()
				zlibReaderPool.Put(zr)
			}()
			r = zr
		}
	default:
		return nil, fmt.Errorf("network: decode: unknown compression flag 0x%02x", payload[0])
	}
	var env envelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("network: decode: %w", err)
	}
	if env.M == nil {
		return nil, fmt.Errorf("network: decode: nil message")
	}
	gDecodedMsgs.Add(1)
	if payload[0] == flagZlib {
		gDecompressedMsgs.Add(1)
	}
	return env.M, nil
}

// RoundTrip encodes and immediately decodes a message, returning the
// deserialized copy. The Loopback transport uses it to exercise the full
// serialization path in-process.
func (c Codec) RoundTrip(m Message) (Message, error) {
	b, err := c.Encode(m)
	if err != nil {
		return nil, err
	}
	return c.Decode(b)
}

// StreamCodec serializes messages over a persistent gob stream, amortizing
// type descriptors across messages the way a per-connection stream codec
// (the paper's Kryo setup) does. Safe for concurrent use.
type StreamCodec struct {
	mu  sync.Mutex
	buf bytes.Buffer
	enc *gob.Encoder
	dec *gob.Decoder
}

// NewStreamCodec creates a connected encoder/decoder pair.
func NewStreamCodec() *StreamCodec {
	s := &StreamCodec{}
	s.enc = gob.NewEncoder(&s.buf)
	s.dec = gob.NewDecoder(&s.buf)
	return s
}

// RoundTrip serializes and immediately deserializes one message through
// the stream.
func (s *StreamCodec) RoundTrip(m Message) (Message, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.enc.Encode(envelope{M: m}); err != nil {
		return nil, fmt.Errorf("network: stream encode %T: %w", m, err)
	}
	var env envelope
	if err := s.dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("network: stream decode: %w", err)
	}
	if env.M == nil {
		return nil, fmt.Errorf("network: stream decode: nil message")
	}
	return env.M, nil
}
