package network

import (
	"runtime"
	"testing"
)

// bytesPerOp measures average heap bytes allocated per call of fn on a
// single goroutine. AllocsPerRun counts allocations, not sizes — a zlib
// window regression (~32–45KB per message) shows up here even when the
// allocation *count* stays small.
func bytesPerOp(n int, fn func()) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return (after.TotalAlloc - before.TotalAlloc) / uint64(n)
}

// TestZlibWriterPooled is the compression-side pooling regression gate: a
// fresh zlib writer allocates ~800KB of window state, so pooled encoding
// must stay well under that per message.
func TestZlibWriterPooled(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates TotalAlloc")
	}
	m := data{Header: NewHeader(addr(1), addr(2)), Seq: 1, Payload: make([]byte, 1024)}
	c := Codec{Compress: true}
	// Warm the pool so the measurement is steady-state.
	if _, err := c.Encode(m); err != nil {
		t.Fatal(err)
	}
	per := bytesPerOp(100, func() {
		if _, err := c.Encode(m); err != nil {
			t.Fatal(err)
		}
	})
	// Steady state: payload + gob scratch, no deflate window (~800KB).
	if per > 64<<10 {
		t.Fatalf("compressed encode allocates %d B/op; zlib writer pool regressed", per)
	}
}

// TestZlibReaderPooled mirrors TestZlibWriterPooled for the decode side:
// the inflater must be Reset onto each payload from the pool, not built
// fresh (~45KB of window per frame).
func TestZlibReaderPooled(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates TotalAlloc")
	}
	m := data{Header: NewHeader(addr(1), addr(2)), Seq: 1, Payload: make([]byte, 1024)}
	payload, err := Codec{Compress: true}.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePayload(payload); err != nil { // warm the pool
		t.Fatal(err)
	}
	per := bytesPerOp(100, func() {
		if _, err := DecodePayload(payload); err != nil {
			t.Fatal(err)
		}
	})
	// Steady state: decoded message + gob decoder state, no inflate window.
	if per > 32<<10 {
		t.Fatalf("compressed decode allocates %d B/op; zlib reader pool regressed", per)
	}
}
