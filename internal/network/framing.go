package network

// Shared framing layer: the length-prefix wire grammar every transport
// backend and wire codec must respect. A frame on the wire is a 4-byte
// big-endian length prefix followed by that many payload bytes; a handful
// of prefix values at the very top of the 32-bit space are reserved as
// control frames that carry no length at all. Reserving them here — not
// inside any one codec — is what guarantees a codec can never mint a
// payload whose length collides with a control magic.

// maxFrame bounds a single message frame (16 MiB), protecting receivers
// from malformed or hostile length prefixes. It is deliberately far below
// controlFloor: no legal frame length can ever be parsed as a control
// magic, under any codec.
const maxFrame = 16 << 20

// controlFloor is the bottom of the reserved control-prefix range. Length
// prefixes at or above it are control frames, never data frame lengths.
const controlFloor = 0xFFFF_FF00

// keepaliveMagic is the length prefix of a keepalive frame: a 4-byte probe
// with no payload, written on idle connections so both sides learn the
// link is alive (the writer exercises the socket, the reader refreshes its
// idle deadline). Deliberately not zero — a zero length prefix remains a
// protocol violation that closes the connection.
const keepaliveMagic = 0xFFFF_FFFF

// codecSwitchMagic is the length prefix of a codec-switch control frame:
// the 4-byte magic followed by a single codec ID byte announcing the wire
// codec of every subsequent data frame on this connection. Emitted by the
// writer whenever consecutive queued frames were encoded under different
// codecs (a live swap, or pre-swap frames surviving a redial).
const codecSwitchMagic = 0xFFFF_FFFE

// isControlPrefix reports whether a length prefix falls in the reserved
// control range rather than being a data frame length.
func isControlPrefix(n uint32) bool { return n >= controlFloor }

// Connection handshake: the dialer announces itself before the first
// frame with an 8-byte preamble — magic, wire protocol version, the
// capability byte naming its current wire codec, and two reserved bytes.
// The receiver validates the magic and version and rejects codecs it does
// not know, so a mixed-version pair degrades to a closed connection
// instead of garbled frames.
const (
	handshakeLen = 8
	wireVersion  = 1
)

var handshakeMagic = [4]byte{'C', 'A', 'T', 'S'}

// compile-time guard: the frame-length space and the control-prefix space
// must stay disjoint (a data frame length can never be misread as a
// keepalive or codec switch). A negative array length here is a build
// error.
var _ [controlFloor - maxFrame]struct{}
