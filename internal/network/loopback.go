package network

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// LoopbackRegistry is the shared in-process "wire" connecting Loopback
// transport components: a map from address to the component's provided
// Network port. It supports optional per-message latency, loss, and codec
// round-tripping (serialize + deserialize each message, as a real transport
// would).
type LoopbackRegistry struct {
	mu    sync.RWMutex
	nodes map[Address]*Loopback

	delay    func(src, dst Address) time.Duration
	dropRate float64
	codec    *Codec
	wire     WireCodec
	stream   *StreamCodec
	rng      *rand.Rand
	rngMu    sync.Mutex

	delivered, dropped, unroutable atomicCounter
}

// LoopbackOption configures a LoopbackRegistry.
type LoopbackOption func(*LoopbackRegistry)

// WithDelay adds an artificial one-way delivery delay per message.
func WithDelay(f func(src, dst Address) time.Duration) LoopbackOption {
	return func(r *LoopbackRegistry) { r.delay = f }
}

// WithConstantDelay adds a fixed one-way delivery delay.
func WithConstantDelay(d time.Duration) LoopbackOption {
	return func(r *LoopbackRegistry) {
		r.delay = func(Address, Address) time.Duration { return d }
	}
}

// WithDropRate drops each message independently with probability p,
// using the given seed.
func WithDropRate(p float64, seed int64) LoopbackOption {
	return func(r *LoopbackRegistry) {
		r.dropRate = p
		r.rng = rand.New(rand.NewSource(seed))
	}
}

// WithCodec makes the registry serialize and deserialize every message
// through the codec before delivery, exercising the full marshalling path
// (and catching unregistered message types) in-process.
func WithCodec(c Codec) LoopbackOption {
	return func(r *LoopbackRegistry) { r.codec = &c }
}

// WithWireCodec is WithCodec generalized over codec backends: every
// message round-trips through the given WireCodec (binary payloads for
// its wire set, gob fallback otherwise), exercising exactly the bytes a
// TCP deployment with that backend would put on the wire.
func WithWireCodec(c WireCodec) LoopbackOption {
	return func(r *LoopbackRegistry) { r.wire = c }
}

// WithStreamCodec is WithCodec but over a persistent gob stream, which
// amortizes type descriptors across messages as per-connection stream
// codecs do; this is the realistic serialization cost for long-lived
// connections.
func WithStreamCodec() LoopbackOption {
	return func(r *LoopbackRegistry) { r.stream = NewStreamCodec() }
}

// NewLoopbackRegistry creates an empty registry.
func NewLoopbackRegistry(opts ...LoopbackOption) *LoopbackRegistry {
	r := &LoopbackRegistry{nodes: make(map[Address]*Loopback)}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Stats returns the number of messages delivered, dropped by the loss
// model, and addressed to unknown nodes.
func (r *LoopbackRegistry) Stats() (delivered, dropped, unroutable uint64) {
	return r.delivered.load(), r.dropped.load(), r.unroutable.load()
}

// route delivers a message to its destination transport, applying loss,
// codec, and delay models.
func (r *LoopbackRegistry) route(m Message) {
	if r.dropRate > 0 {
		r.rngMu.Lock()
		drop := r.rng.Float64() < r.dropRate
		r.rngMu.Unlock()
		if drop {
			r.dropped.add(1)
			return
		}
	}
	if r.codec != nil {
		decoded, err := r.codec.RoundTrip(m)
		if err != nil {
			r.dropped.add(1)
			return
		}
		m = decoded
	}
	if r.wire != nil {
		// Fresh buffer per message: the decoded message may alias it.
		payload, err := r.wire.Encode(m)
		if err != nil {
			r.dropped.add(1)
			return
		}
		decoded, err := DecodePayload(payload)
		if err != nil {
			r.dropped.add(1)
			return
		}
		m = decoded
	}
	if r.stream != nil {
		decoded, err := r.stream.RoundTrip(m)
		if err != nil {
			r.dropped.add(1)
			return
		}
		m = decoded
	}
	deliver := func() {
		r.mu.RLock()
		dst := r.nodes[m.Destination()]
		r.mu.RUnlock()
		if dst == nil {
			r.unroutable.add(1)
			return
		}
		r.delivered.add(1)
		_ = core.TriggerOn(dst.port, m)
	}
	if r.delay != nil {
		if d := r.delay(m.Source(), m.Destination()); d > 0 {
			time.AfterFunc(d, deliver)
			return
		}
	}
	deliver()
}

// register binds an address to a transport.
func (r *LoopbackRegistry) register(addr Address, lb *Loopback) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nodes[addr] = lb
}

// unregister removes an address binding (e.g. when a node is destroyed).
func (r *LoopbackRegistry) unregister(addr Address, lb *Loopback) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[addr] == lb {
		delete(r.nodes, addr)
	}
}

// Loopback is the in-process Network provider. All Loopback components
// sharing one registry form a virtual network.
type Loopback struct {
	self     Address
	registry *LoopbackRegistry
	port     *core.Port
}

// NewLoopback creates a loopback transport for the given address on the
// shared registry.
func NewLoopback(self Address, registry *LoopbackRegistry) *Loopback {
	return &Loopback{self: self, registry: registry}
}

var _ core.Definition = (*Loopback)(nil)

// Setup declares the provided Network port and registers the node.
func (l *Loopback) Setup(ctx *core.Ctx) {
	l.port = ctx.Provides(PortType)
	core.Subscribe(ctx, l.port, func(m Message) {
		l.registry.route(m)
	})
	core.Subscribe(ctx, ctx.Control(), func(core.Start) {
		l.registry.register(l.self, l)
	})
	core.Subscribe(ctx, ctx.Control(), func(core.Stop) {
		l.registry.unregister(l.self, l)
	})
}

// Self returns the transport's address.
func (l *Loopback) Self() Address { return l.self }

// atomicCounter is a tiny uint64 counter.
type atomicCounter struct{ v atomic.Uint64 }

func (c *atomicCounter) add(n uint64) { c.v.Add(n) }
func (c *atomicCounter) load() uint64 { return c.v.Load() }
