package network

import (
	"encoding/binary"
	"io"
	"log/slog"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/tracing"
)

// tracedData is a wire message carrying a trace context, the way ABD
// phase messages do: embedding tracing.Context makes it satisfy
// tracing.Traced so the transport annotates its frames.
type tracedData struct {
	Header
	tracing.Context
	Seq int
}

func init() { Register(tracedData{}) }

// swapRing installs a fresh span ring for the test and restores the
// previous one on cleanup.
func swapRing(t *testing.T, capacity int) *tracing.Ring {
	t.Helper()
	ring := tracing.NewRing(capacity)
	prev := tracing.SwapDefault(ring)
	t.Cleanup(func() { tracing.SwapDefault(prev) })
	return ring
}

// netSendSpans filters a ring snapshot down to the transport's spans,
// optionally to one trace.
func netSendSpans(ring *tracing.Ring, trace uint64) []tracing.Span {
	var out []tracing.Span
	for _, s := range ring.Snapshot() {
		if s.Name != "net.send" {
			continue
		}
		if trace != 0 && s.Trace != trace {
			continue
		}
		out = append(out, s)
	}
	return out
}

// frameReader consumes length-prefixed frames from one end of a pipe,
// counting keepalive probes and collecting real payloads.
type frameReader struct {
	conn       net.Conn
	payloads   chan []byte
	keepalives atomic.Int64
}

func (r *frameReader) run() {
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r.conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == keepaliveMagic {
			r.keepalives.Add(1)
			continue
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r.conn, buf); err != nil {
			return
		}
		r.payloads <- buf
	}
}

// TestTCPRetransmitFirstSingleSpan is the regression test for the
// transport span discipline: a traced frame caught mid-write is requeued
// and retransmitted FIRST on the next connection, and across that redial
// it records exactly one "net.send" span (on final delivery, with the
// attempt count showing the retry) — never one per write attempt.
// Keepalive probes, which share the write loop, record no spans at all.
func TestTCPRetransmitFirstSingleSpan(t *testing.T) {
	ring := swapRing(t, 256)

	tr := NewTCP(Address{Host: "127.0.0.1", Port: 9}, WithKeepalive(0), WithWriteTimeout(time.Second))
	tr.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	pc := &peerConn{
		addr:  Address{Host: "127.0.0.1", Port: 9},
		ch:    make(chan outFrame, 16),
		close: make(chan struct{}),
	}

	frameU := outFrame{payload: []byte("untraced")} // zero trace: must never span
	frameA := outFrame{payload: []byte("frame-A"), trace: tracing.Context{TraceID: 0xA1, SpanID: 0xA2}}
	frameB := outFrame{payload: []byte("frame-B"), trace: tracing.Context{TraceID: 0xB1, SpanID: 0xB2}}
	frameC := outFrame{payload: []byte("frame-C"), trace: tracing.Context{TraceID: 0xC1, SpanID: 0xC2}}

	// Connection 1: the reader accepts two frames (U, A) then hangs up, so
	// the write of B fails mid-conversation and B lands in pending.
	c1, c2 := net.Pipe()
	reader1 := &frameReader{conn: c2, payloads: make(chan []byte, 16)}
	go reader1.run()
	var pending outFrame
	errCh := make(chan error, 1)
	go func() { errCh <- tr.serveConn(pc, c1, &pending, flagPlain) }()
	pc.ch <- frameU
	pc.ch <- frameA
	for i := 0; i < 2; i++ {
		select {
		case <-reader1.payloads:
		case <-time.After(5 * time.Second):
			t.Fatal("frame never arrived on connection 1")
		}
	}
	_ = c2.Close()
	pc.ch <- frameB
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("serveConn returned nil after broken pipe")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveConn did not notice the broken connection")
	}
	_ = c1.Close()

	if string(pending.payload) != "frame-B" {
		t.Fatalf("pending = %q, want frame-B", pending.payload)
	}
	if pending.attempts != 1 {
		t.Fatalf("pending attempts = %d, want 1", pending.attempts)
	}
	if got := tr.requeued.Load(); got != 1 {
		t.Fatalf("requeued = %d, want 1", got)
	}
	if spans := netSendSpans(ring, 0); len(spans) != 1 || spans[0].Trace != 0xA1 {
		t.Fatalf("after connection 1: spans %+v, want exactly one for trace a1", spans)
	}
	if spans := netSendSpans(ring, 0xB1); len(spans) != 0 {
		t.Fatalf("requeued frame recorded a span before delivery: %+v", spans)
	}

	// Connection 2: C is already queued behind the pending B. The redial
	// must transmit B first, then C — and B's eventual span must be the
	// frame's only one.
	pc.ch <- frameC
	c3, c4 := net.Pipe()
	reader2 := &frameReader{conn: c4, payloads: make(chan []byte, 16)}
	go reader2.run()
	tr.keepalive = 10 * time.Millisecond
	go func() { errCh <- tr.serveConn(pc, c3, &pending, flagPlain) }()
	var order []string
	for i := 0; i < 2; i++ {
		select {
		case p := <-reader2.payloads:
			order = append(order, string(p))
		case <-time.After(5 * time.Second):
			t.Fatal("frame never arrived on connection 2")
		}
	}
	if order[0] != "frame-B" || order[1] != "frame-C" {
		t.Fatalf("retransmit-first ordering violated: %v", order)
	}

	// Let keepalives flow on the now-idle connection, then shut the peer.
	deadline := time.Now().Add(5 * time.Second)
	for reader2.keepalives.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if reader2.keepalives.Load() == 0 {
		t.Fatal("no keepalive observed on idle connection")
	}
	pc.shutdown()
	select {
	case <-errCh:
	case <-time.After(5 * time.Second):
		t.Fatal("serveConn did not exit on peer close")
	}
	_ = c3.Close()
	_ = c4.Close()

	spans := netSendSpans(ring, 0)
	if len(spans) != 3 {
		t.Fatalf("got %d net.send spans, want 3 (one per traced frame): %+v", len(spans), spans)
	}
	perTrace := map[uint64]int{}
	for _, s := range spans {
		perTrace[s.Trace]++
		if s.Outcome != "ok" {
			t.Errorf("span for trace %x outcome %q, want ok", s.Trace, s.Outcome)
		}
	}
	for _, tr := range []uint64{0xA1, 0xB1, 0xC1} {
		if perTrace[tr] != 1 {
			t.Errorf("trace %x has %d net.send spans, want exactly 1", tr, perTrace[tr])
		}
	}
	b := netSendSpans(ring, 0xB1)
	if len(b) != 1 || b[0].Attempt != 2 {
		t.Fatalf("retransmitted frame span = %+v, want one span with attempt 2", b)
	}
	if b[0].Parent != 0xB2 {
		t.Fatalf("span parent = %x, want the frame's wire span b2", b[0].Parent)
	}
}

// TestTCPTracedFrameEndToEnd covers the handleSend path: a message
// embedding a sampled tracing.Context crosses a real socket pair and the
// sender's transport records exactly one parented net.send span for it,
// while idle keepalive traffic records none and the codec's traced-frame
// counter moves.
func TestTCPTracedFrameEndToEnd(t *testing.T) {
	ring := swapRing(t, 256)
	_, n1, n2 := newTCPPair(t, WithKeepalive(15*time.Millisecond))

	const trace, parent = 0xFACE, 0xF00D
	tracedBefore := GlobalMetrics().TracedFrames
	n1.ctx.Trigger(tracedData{
		Header:  NewHeader(n1.self, n2.self),
		Context: tracing.Context{TraceID: trace, SpanID: parent},
		Seq:     7,
	}, n1.port)
	waitCount(t, &n2.got, 1, 5*time.Second)

	var spans []tracing.Span
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if spans = netSendSpans(ring, trace); len(spans) > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(spans) != 1 {
		t.Fatalf("got %d net.send spans for the traced frame, want 1: %+v", len(spans), spans)
	}
	s := spans[0]
	if s.Parent != parent || s.Node != n1.self.String() || s.Outcome != "ok" || s.Attempt != 1 {
		t.Fatalf("span %+v, want parent=%x node=%s outcome=ok attempt=1", s, uint64(parent), n1.self)
	}
	if got := GlobalMetrics().TracedFrames; got < tracedBefore+1 {
		t.Fatalf("traced-frame counter did not move: %d -> %d", tracedBefore, got)
	}

	// Several keepalive periods of idle traffic must not add spans.
	time.Sleep(60 * time.Millisecond)
	if spans := netSendSpans(ring, trace); len(spans) != 1 {
		t.Fatalf("idle keepalives changed the frame's span count: %+v", spans)
	}

	// An untraced message must annotate nothing.
	n1.ctx.Trigger(hello{Header: NewHeader(n1.self, n2.self), Greeting: "plain"}, n1.port)
	waitCount(t, &n2.got, 2, 5*time.Second)
	time.Sleep(10 * time.Millisecond)
	for _, s := range netSendSpans(ring, 0) {
		if s.Trace != trace {
			t.Fatalf("untraced traffic recorded a span: %+v", s)
		}
	}
}
