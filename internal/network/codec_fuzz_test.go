package network

import (
	"encoding/binary"
	"testing"
)

// FuzzDecodePayload drives the full payload decode dispatch — format flag,
// wire tag, binary bodies with length-prefixed fields, gob fallback — with
// adversarial bytes. The decoder must return (Message, nil) or (nil, error)
// without panicking, and a successfully decoded wire-set message must
// re-encode (corrupt inputs can never crash a receiving node).
func FuzzDecodePayload(f *testing.F) {
	// Seeds: one valid payload per codec family, plus torn and corrupt
	// variants of the interesting prefixes.
	wire := wireBlob{Header: NewHeader(addr(1), addr(2)), Data: []byte("seed-data")}
	if p, err := (BinaryCodec{}).Encode(wire); err == nil {
		f.Add(p)
		f.Add(p[:len(p)/2]) // torn tail
		f.Add(p[:2])        // flag+tag only
		corrupt := append([]byte(nil), p...)
		corrupt[1] = 0x7f // unknown wire tag (capability-byte corruption)
		f.Add(corrupt)
	}
	if p, err := (Codec{}).Encode(hello{Header: NewHeader(addr(1), addr(2)), Greeting: "seed"}); err == nil {
		f.Add(p)
		f.Add(p[:1])
	}
	if p, err := (Codec{Compress: true}).Encode(hello{Header: NewHeader(addr(1), addr(2)), Greeting: "seed"}); err == nil {
		f.Add(p)
		f.Add(p[:len(p)-3])
	}
	// A binary body with a length prefix promising far more than the frame
	// holds — the classic truncated-prefix shape.
	huge := []byte{flagBinary, wireTagBlob}
	huge = AppendU32(huge, ^uint32(0))
	f.Add(huge)
	f.Add([]byte{})
	f.Add([]byte{0xff})

	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := DecodePayload(payload)
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("nil message with nil error")
		}
		// Anything that decoded must re-encode; for wire-set types this
		// exercises the AppendWire inverse against arbitrary decoded state.
		if _, err := (BinaryCodec{}).Encode(m); err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
	})
}

// FuzzWireReader hammers the shared primitive layer with a scripted read
// sequence over arbitrary bytes: every primitive must stay in bounds and
// latch (not panic) on truncation.
func FuzzWireReader(f *testing.F) {
	f.Add([]byte{0, 0, 0, 3, 'a', 'b', 'c', 1, 2, 3, 4, 5, 6, 7, 8})
	var seed []byte
	seed = AppendAddr(seed, addr(7))
	seed = AppendBytes(seed, []byte{9, 9})
	f.Add(seed)
	f.Fuzz(func(t *testing.T, body []byte) {
		r := NewWireReader(body)
		for r.Err() == nil && r.Len() > 0 {
			switch r.U8() % 7 {
			case 0:
				r.U16()
			case 1:
				r.U32()
			case 2:
				r.U64()
			case 3:
				r.Bool()
			case 4:
				_ = r.Bytes()
			case 5:
				_ = r.String()
			case 6:
				r.Header()
			}
		}
		// The latched error, if any, must be stable and non-nil exactly when
		// a read went out of bounds; Len never goes negative.
		if r.Len() < 0 {
			t.Fatalf("negative remaining length %d", r.Len())
		}
	})
}

// FuzzFramePrefix checks the control-prefix classifier against arbitrary
// 32-bit prefixes: a value is either a legal frame length, oversized, or a
// control prefix — never two of those at once.
func FuzzFramePrefix(f *testing.F) {
	f.Add(uint32(1))
	f.Add(uint32(maxFrame))
	f.Add(uint32(keepaliveMagic))
	f.Add(uint32(codecSwitchMagic))
	f.Fuzz(func(t *testing.T, n uint32) {
		legal := n > 0 && n <= maxFrame
		if legal && isControlPrefix(n) {
			t.Fatalf("prefix %#x is both a legal frame length and a control prefix", n)
		}
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], n)
		if got := binary.BigEndian.Uint32(b[:]); got != n {
			t.Fatal("prefix round trip")
		}
	})
}
