package network

import (
	"encoding/binary"
	"testing"
	"time"
)

// TestControlPrefixRange pins the shared framing constants: the control
// range sits strictly above the largest legal frame, so no frame length can
// collide with keepalives or codec-switch markers under any codec.
func TestControlPrefixRange(t *testing.T) {
	if maxFrame >= controlFloor {
		t.Fatalf("maxFrame %#x overlaps control range starting at %#x", maxFrame, controlFloor)
	}
	if isControlPrefix(maxFrame) {
		t.Fatal("maximum frame length reads as a control prefix")
	}
	if !isControlPrefix(keepaliveMagic) || !isControlPrefix(codecSwitchMagic) {
		t.Fatal("control magics not in the control range")
	}
	if isControlPrefix(controlFloor - 1) {
		t.Fatal("control floor off by one")
	}
}

// maxLenFrame builds a payload of exactly maxFrame bytes: the worst-case
// length prefix that historically risked colliding with in-band magics.
// pad fills the tail after the meaningful prefix bytes.
func maxLenFrame(prefix []byte) []byte {
	f := make([]byte, maxFrame)
	copy(f, prefix)
	return f
}

// TestMaxLengthFrameNotKeepalive is the satellite regression test for the
// keepalive reservation: a crafted frame whose length prefix is exactly
// maxFrame must be read as a frame and delivered under either codec family,
// never swallowed as a keepalive. The inverse — a real keepalive prefix —
// must deliver nothing.
func TestMaxLengthFrameNotKeepalive(t *testing.T) {
	if testing.Short() {
		t.Skip("sends two 16MB frames")
	}
	_, n1, _ := newTCPPair(t)
	conn := dialRaw(t, n1.self)
	defer conn.Close()

	send := func(payload []byte) {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		if _, err := conn.Write(hdr[:]); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
	}

	// Binary codec: a wireBlob whose Data is sized so the whole payload is
	// exactly maxFrame bytes.
	m := wireBlob{Header: NewHeader(addr(9), n1.self)}
	probe, err := BinaryCodec{}.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	m.Data = make([]byte, maxFrame-len(probe))
	payload, err := BinaryCodec{}.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != maxFrame {
		t.Fatalf("crafted binary payload is %d bytes, want %d", len(payload), maxFrame)
	}
	send(payload)
	waitCount(t, &n1.got, 1, 15*time.Second)

	// Gob codec: a valid gob body padded to exactly maxFrame (the decoder
	// reads one value and ignores the tail).
	gobPayload, err := Codec{}.Encode(hello{Header: NewHeader(addr(9), n1.self), Greeting: "max"})
	if err != nil {
		t.Fatal(err)
	}
	if len(gobPayload) > maxFrame {
		t.Fatal("gob probe exceeds maxFrame")
	}
	send(maxLenFrame(gobPayload))
	waitCount(t, &n1.got, 2, 15*time.Second)

	// A genuine keepalive prefix delivers nothing and keeps the
	// connection serving.
	var ka [4]byte
	binary.BigEndian.PutUint32(ka[:], keepaliveMagic)
	if _, err := conn.Write(ka[:]); err != nil {
		t.Fatal(err)
	}
	send(payload) // a real frame right behind the keepalive still delivers
	waitCount(t, &n1.got, 3, 15*time.Second)
	if got := n1.got.Load(); got != 3 {
		t.Fatalf("delivered %d messages, want 3 (keepalive must not deliver)", got)
	}
}
