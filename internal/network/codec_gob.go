package network

import (
	"bytes"
	"compress/zlib"
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"repro/internal/tracing"
)

// Codec is the gob wire-codec backend, optionally zlib-compressed (the
// paper's transports apply Zlib compression). It handles every Registered
// message type and is the default backend — the binary codec falls back to
// it for types outside the hot-path wire set. The zero value is a plain
// gob codec without compression.
type Codec struct {
	// Compress enables zlib compression of each payload.
	Compress bool
}

var _ WireCodec = Codec{}

// Name returns the registry name: "gob", or "gob+zlib" when compressing.
func (c Codec) Name() string {
	if c.Compress {
		return "gob+zlib"
	}
	return "gob"
}

// ID returns the codec capability byte, which doubles as the payload
// format flag this backend emits.
func (c Codec) ID() byte {
	if c.Compress {
		return flagZlib
	}
	return flagPlain
}

// zlib writers and readers hold large window buffers; pool them so
// per-message compression does not pay their allocation every time. The
// reader pool mirrors the writer pool: Decode resets a pooled inflater
// onto each compressed payload instead of allocating a fresh zlib window
// per frame.
var zlibWriterPool = sync.Pool{
	New: func() any {
		w, err := zlib.NewWriterLevel(io.Discard, zlib.BestSpeed)
		if err != nil {
			panic(err) // BestSpeed is always a valid level
		}
		return w
	},
}

var zlibReaderPool = sync.Pool{}

// encBufPool recycles the per-message scratch buffer gob encodes into, so
// Encode pays only the one unavoidable allocation: the returned payload,
// sized exactly, written once. The gob encoder itself cannot be pooled: a
// reused encoder omits type descriptors it already sent, which would make
// payloads non-self-contained and undecodable by a fresh decoder.
var encBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// appendWriter adapts an append-grown byte slice to io.Writer so the zlib
// writer can deflate straight into the caller's buffer.
type appendWriter struct{ b []byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// EncodeAppend appends m's payload to dst: the format flag, then the gob
// body (deflated when compressing).
func (c Codec) EncodeAppend(dst []byte, m Message) ([]byte, error) {
	// Trace-annotated frames (messages carrying a sampled trace context)
	// are counted at the wire boundary: the ratio against encoded_msgs is
	// the observed sampling rate actually crossing the network.
	if tm, ok := m.(tracing.Traced); ok && tm.TraceContext().TraceID != 0 {
		gTracedFrames.Add(1)
	}
	buf := encBufPool.Get().(*bytes.Buffer)
	defer encBufPool.Put(buf)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(envelope{M: m}); err != nil {
		return dst, fmt.Errorf("network: encode %T: %w", m, err)
	}

	start := len(dst)
	if !c.Compress {
		dst = append(dst, flagPlain)
		dst = append(dst, buf.Bytes()...)
		gEncodedMsgs.Add(1)
		gEncodedBytes.Add(uint64(len(dst) - start))
		return dst, nil
	}

	dst = append(dst, flagZlib)
	aw := appendWriter{b: dst}
	zw := zlibWriterPool.Get().(*zlib.Writer)
	zw.Reset(&aw)
	_, werr := zw.Write(buf.Bytes())
	cerr := zw.Close()
	zlibWriterPool.Put(zw)
	if werr != nil {
		return dst[:start], fmt.Errorf("network: compress %T: %w", m, werr)
	}
	if cerr != nil {
		return dst[:start], fmt.Errorf("network: compress %T: %w", m, cerr)
	}
	dst = aw.b
	gEncodedMsgs.Add(1)
	gEncodedBytes.Add(uint64(len(dst) - start))
	gCompressedMsgs.Add(1)
	gCompressedIn.Add(uint64(buf.Len()))
	gCompressedOut.Add(uint64(len(dst) - start - 1)) // exclude the flag byte
	return dst, nil
}

// Encode serializes a message into a fresh self-contained payload.
func (c Codec) Encode(m Message) ([]byte, error) {
	return c.EncodeAppend(nil, m)
}

// Decode deserializes a payload produced by any registered codec: gob
// payloads (of either compression setting) inline, binary payloads via
// the binary decoder — payloads are self-describing by format flag.
func (c Codec) Decode(payload []byte) (Message, error) {
	return DecodePayload(payload)
}

// decodeGob deserializes a flagPlain or flagZlib payload.
func decodeGob(payload []byte) (Message, error) {
	body := payload[1:]
	var r io.Reader = bytes.NewReader(body)
	switch payload[0] {
	case flagPlain:
	case flagZlib:
		if pooled := zlibReaderPool.Get(); pooled != nil {
			zr := pooled.(io.ReadCloser)
			if err := zr.(zlib.Resetter).Reset(r, nil); err != nil {
				return nil, fmt.Errorf("network: decompress: %w", err)
			}
			defer func() {
				_ = zr.Close()
				zlibReaderPool.Put(zr)
			}()
			r = zr
		} else {
			zr, err := zlib.NewReader(r)
			if err != nil {
				return nil, fmt.Errorf("network: decompress: %w", err)
			}
			defer func() {
				_ = zr.Close()
				zlibReaderPool.Put(zr)
			}()
			r = zr
		}
	default:
		return nil, fmt.Errorf("network: decode: unknown compression flag 0x%02x", payload[0])
	}
	var env envelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("network: decode: %w", err)
	}
	if env.M == nil {
		return nil, fmt.Errorf("network: decode: nil message")
	}
	gDecodedMsgs.Add(1)
	if payload[0] == flagZlib {
		gDecompressedMsgs.Add(1)
	}
	return env.M, nil
}

// RoundTrip encodes and immediately decodes a message, returning the
// deserialized copy. The Loopback transport uses it to exercise the full
// serialization path in-process.
func (c Codec) RoundTrip(m Message) (Message, error) {
	b, err := c.Encode(m)
	if err != nil {
		return nil, err
	}
	return c.Decode(b)
}

// StreamCodec serializes messages over a persistent gob stream, amortizing
// type descriptors across messages the way a per-connection stream codec
// (the paper's Kryo setup) does. Safe for concurrent use.
type StreamCodec struct {
	mu  sync.Mutex
	buf bytes.Buffer
	enc *gob.Encoder
	dec *gob.Decoder
}

// NewStreamCodec creates a connected encoder/decoder pair.
func NewStreamCodec() *StreamCodec {
	s := &StreamCodec{}
	s.enc = gob.NewEncoder(&s.buf)
	s.dec = gob.NewDecoder(&s.buf)
	return s
}

// RoundTrip serializes and immediately deserializes one message through
// the stream.
func (s *StreamCodec) RoundTrip(m Message) (Message, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.enc.Encode(envelope{M: m}); err != nil {
		return nil, fmt.Errorf("network: stream encode %T: %w", m, err)
	}
	var env envelope
	if err := s.dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("network: stream decode: %w", err)
	}
	if env.M == nil {
		return nil, fmt.Errorf("network: stream decode: nil message")
	}
	return env.M, nil
}
