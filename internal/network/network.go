// Package network defines the Network protocol abstraction of the paper and
// its pluggable providers. A Network provider accepts Message events at a
// sending node (negative direction) and delivers Message events at the
// receiving node (positive direction). Three interchangeable providers
// exist, all satisfying the same port contract:
//
//   - TCP: the production transport (the paper's Grizzly/Netty/MINA
//     equivalent) — connection management, length-prefixed framing, gob
//     serialization, optional zlib compression.
//   - Loopback: an in-process transport for whole-system tests and local
//     interactive stress-test execution, optionally exercising the codec
//     and an artificial latency model.
//   - The simulation package's emulated network (virtual-time discrete
//     events, latency distributions, loss, partitions).
package network

import (
	"fmt"
	"net"
	"strconv"

	"repro/internal/core"
)

// Address identifies a communication endpoint of a node.
type Address struct {
	Host string
	Port uint16
}

// String renders host:port.
func (a Address) String() string {
	return net.JoinHostPort(a.Host, strconv.Itoa(int(a.Port)))
}

// IsZero reports whether the address is unset.
func (a Address) IsZero() bool { return a.Host == "" && a.Port == 0 }

// ParseAddress parses "host:port".
func ParseAddress(s string) (Address, error) {
	host, portS, err := net.SplitHostPort(s)
	if err != nil {
		return Address{}, fmt.Errorf("network: parse address %q: %w", s, err)
	}
	port, err := strconv.ParseUint(portS, 10, 16)
	if err != nil {
		return Address{}, fmt.Errorf("network: parse address %q: %w", s, err)
	}
	return Address{Host: host, Port: uint16(port)}, nil
}

// Message is the root of the network event hierarchy (the paper's Message
// with source and destination attributes). Concrete message types embed
// Header. Handlers subscribed for Message receive every delivered message;
// handlers subscribed for a concrete type receive only that type.
type Message interface {
	Source() Address
	Destination() Address
}

// Header is the embeddable base carrying a message's source and
// destination.
type Header struct {
	Src Address
	Dst Address
}

// NewHeader builds a header from source to destination.
func NewHeader(src, dst Address) Header { return Header{Src: src, Dst: dst} }

// Source implements Message.
func (h Header) Source() Address { return h.Src }

// Destination implements Message.
func (h Header) Destination() Address { return h.Dst }

var _ Message = Header{}

// Reply builds a header answering a received message.
func Reply(m Message) Header { return Header{Src: m.Destination(), Dst: m.Source()} }

// PeerStatus is a transport-level liveness indication: Up when a
// connection to the peer is (re-)established, Down when an established
// connection is lost or the transport gives up reaching the peer. It is
// delivered on the Network port alongside Message indications but is NOT a
// Message (it has no source/destination and never crosses the wire), so
// handlers subscribed for Message do not receive it. Consumers — notably
// the failure detector — treat it as a hint: the transport's view of a
// single TCP connection, not an authoritative failure verdict.
type PeerStatus struct {
	Peer Address
	Up   bool
}

// PeerState is the circuit-breaker state of one outbound peer connection.
type PeerState int32

// Peer connection states, in the order a healthy connection traverses
// them. Down is terminal for one connection manager; the next send to the
// peer starts a fresh one.
const (
	PeerConnecting PeerState = iota // dial in flight
	PeerUp                          // connection established, frames flowing
	PeerBackoff                     // dial or write failed, waiting to retry
	PeerDown                        // retry budget exhausted, peer given up
)

// String renders the state for logs and the per-state metrics gauge.
func (s PeerState) String() string {
	switch s {
	case PeerConnecting:
		return "connecting"
	case PeerUp:
		return "up"
	case PeerBackoff:
		return "backoff"
	case PeerDown:
		return "down"
	default:
		return "unknown"
	}
}

// PortType is the Network service abstraction: Message events pass in both
// directions — requests to send, indications of delivery — plus PeerStatus
// liveness indications from transports that track per-peer connections.
var PortType = core.NewPortType("Network",
	core.Request[Message](),
	core.Indication[Message](),
	core.Indication[PeerStatus](),
)
