package network

import (
	"testing"
	"time"

	"repro/internal/core"
)

// TestTCPSwapCodecLiveStream is the swap-correctness acceptance test: a
// continuous message stream crosses two live codec swaps and a peer
// restart that lands mid-swap, and every frame arrives exactly once, in
// order. Frames enqueued before a swap drain through the codec that
// encoded them (mixed-codec queues are legal — payloads are
// self-describing), and a redial re-handshakes with the new capability
// byte.
func TestTCPSwapCodecLiveStream(t *testing.T) {
	_, n1, n2 := newTCPPair(t,
		WithKeepalive(25*time.Millisecond),
		WithBackoff(20*time.Millisecond, 100*time.Millisecond),
		WithDialAttempts(500),
	)

	send := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			n1.ctx.Trigger(wireBlob{Header: NewHeader(n1.self, n2.self), Seq: i}, n1.port)
		}
	}

	// Phase 1: default gob codec.
	send(0, 30)
	waitCount(t, &n2.got, 30, 10*time.Second)

	// Phase 2: live swap to binary under traffic.
	binBefore := gBinaryEncoded.Load()
	if err := n1.tcp.SwapCodec(n2.self, "binary"); err != nil {
		t.Fatal(err)
	}
	if got := n1.tcp.PeerCodec(n2.self).Name(); got != "binary" {
		t.Fatalf("peer codec after swap: %q", got)
	}
	send(30, 60)
	waitCount(t, &n2.got, 60, 10*time.Second)
	if gBinaryEncoded.Load() == binBefore {
		t.Fatal("no binary frames encoded after swap to binary")
	}

	// Phase 3: kill the peer, and while it is down queue frames AND swap
	// again — the mid-swap redial must re-handshake and deliver the queued
	// mixed-codec frames in order.
	n2.tcp.shutdown()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st, ok := n1.tcp.PeerStates()[n2.self]; ok && st != PeerUp {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	send(60, 70) // encoded binary, queued
	if err := n1.tcp.SwapCodec(n2.self, "gob+zlib"); err != nil {
		t.Fatal(err)
	}
	send(70, 80) // encoded gob+zlib, queued behind the binary frames

	n3 := &tcpNode{self: n2.self}
	rt2 := core.New(core.WithScheduler(core.NewWorkStealingScheduler(2)),
		core.WithFaultPolicy(core.LogAndContinue))
	defer rt2.Shutdown()
	rt2.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		ctx.Create("n3", n3)
	}))
	if !rt2.WaitQuiescence(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	t.Cleanup(n3.tcp.shutdown)

	waitCount(t, &n3.got, 20, 15*time.Second)

	// Zero lost, zero reordered: n2 saw exactly 0..59 in order, n3 exactly
	// 60..79 in order.
	n2.mu.Lock()
	for i, m := range n2.msgs {
		if d, ok := m.(wireBlob); !ok || d.Seq != i {
			t.Errorf("pre-restart stream broken at %d: %+v", i, m)
		}
	}
	n2count := len(n2.msgs)
	n2.mu.Unlock()
	if n2count != 60 {
		t.Fatalf("pre-restart peer saw %d frames, want 60", n2count)
	}
	n3.mu.Lock()
	for i, m := range n3.msgs {
		if d, ok := m.(wireBlob); !ok || d.Seq != 60+i {
			t.Errorf("post-restart stream broken at %d: %+v", i, m)
		}
	}
	n3count := len(n3.msgs)
	n3.mu.Unlock()
	if n3count != 20 {
		t.Fatalf("post-restart peer saw %d frames, want 20", n3count)
	}

	if swaps := n1.tcp.CodecStats(); swaps < 2 {
		t.Fatalf("codec swap counter = %d, want >= 2", swaps)
	}
	if got := n1.tcp.PeerCodec(n2.self).Name(); got != "gob+zlib" {
		t.Fatalf("peer codec after second swap: %q", got)
	}
}

// TestTCPSwapAllCodecs covers the swap-every-peer control path used by the
// operator-facing surface.
func TestTCPSwapAllCodecs(t *testing.T) {
	_, n1, n2 := newTCPPair(t)
	n1.ctx.Trigger(hello{Header: NewHeader(n1.self, n2.self), Greeting: "pre"}, n1.port)
	waitCount(t, &n2.got, 1, 5*time.Second)

	if err := n1.tcp.SwapAllCodecs("binary"); err != nil {
		t.Fatal(err)
	}
	if err := n1.tcp.SwapAllCodecs("no-such-codec"); err == nil {
		t.Fatal("unknown codec accepted")
	}
	before := gBinaryEncoded.Load()
	n1.ctx.Trigger(wireBlob{Header: NewHeader(n1.self, n2.self), Seq: 0}, n1.port)
	waitCount(t, &n2.got, 2, 5*time.Second)
	if gBinaryEncoded.Load() == before {
		t.Fatal("swap-all did not switch encoding to binary")
	}
}
