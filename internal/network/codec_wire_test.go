package network

import (
	"bytes"
	"strings"
	"testing"
)

// wireBlob is a test-only wire-set type: tag 0xEE, a header plus an opaque
// byte payload. It keeps the binary codec's protocol-independent machinery
// testable inside this package, without reaching into abd/handoff.
type wireBlob struct {
	Header
	Seq  int
	Data []byte
}

const wireTagBlob byte = 0xEE

func (m wireBlob) WireTag() byte { return wireTagBlob }

func (m wireBlob) AppendWire(dst []byte) []byte {
	dst = AppendHeader(dst, m.Header)
	dst = AppendI64(dst, int64(m.Seq))
	return AppendBytes(dst, m.Data)
}

func decodeWireBlob(r *WireReader) (Message, error) {
	var m wireBlob
	m.Header = r.Header()
	m.Seq = int(r.I64())
	m.Data = r.Bytes()
	return m, nil
}

func init() {
	Register(wireBlob{})
	RegisterWire(wireTagBlob, "test.blob", decodeWireBlob)
}

func TestCodecRegistry(t *testing.T) {
	for _, name := range []string{"gob", "gob+zlib", "binary"} {
		c, ok := CodecByName(name)
		if !ok {
			t.Fatalf("codec %q not registered", name)
		}
		if c.Name() != name {
			t.Fatalf("codec %q reports name %q", name, c.Name())
		}
		byID, ok := CodecByID(c.ID())
		if !ok || byID.Name() != name {
			t.Fatalf("codec %q not resolvable by ID 0x%02x", name, c.ID())
		}
	}
	if _, ok := CodecByName("nope"); ok {
		t.Fatal("unknown codec name resolved")
	}
	if _, ok := CodecByID(0x7f); ok {
		t.Fatal("unknown codec ID resolved")
	}
	names := CodecNames()
	if len(names) < 3 {
		t.Fatalf("CodecNames: %v", names)
	}
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	m := wireBlob{Header: NewHeader(addr(1), addr(2)), Data: []byte("payload bytes")}
	payload, err := BinaryCodec{}.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if !IsBinaryPayload(payload) {
		t.Fatalf("wire-set type did not produce a binary payload: flag 0x%02x", payload[0])
	}
	got, err := DecodePayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	gb := got.(wireBlob)
	if gb.Src != m.Src || gb.Dst != m.Dst || !bytes.Equal(gb.Data, m.Data) {
		t.Fatalf("round trip mismatch: %+v != %+v", gb, m)
	}
}

// TestBinaryCodecFallback pins the safety net: a registered type outside
// the wire set still encodes (as a tagged gob payload) and decodes, so no
// message is ever unencodable under the binary backend.
func TestBinaryCodecFallback(t *testing.T) {
	before := gCodecFallbacks.Load()
	m := hello{Header: NewHeader(addr(1), addr(2)), Greeting: "rare type"}
	payload, err := BinaryCodec{}.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if IsBinaryPayload(payload) {
		t.Fatal("non-wire-set type produced a binary payload")
	}
	got, err := DecodePayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.(hello).Greeting != "rare type" {
		t.Fatalf("fallback round trip mismatch: %+v", got)
	}
	if gCodecFallbacks.Load() == before {
		t.Fatal("fallback counter did not move")
	}
}

// TestCodecCrossDecode pins the self-describing payload property that
// makes live swaps frame-safe: every codec's output is decodable by
// DecodePayload regardless of which codec the receiver has installed.
func TestCodecCrossDecode(t *testing.T) {
	msgs := []Message{
		hello{Header: NewHeader(addr(1), addr(2)), Greeting: "hi"},
		wireBlob{Header: NewHeader(addr(1), addr(2)), Data: []byte{1, 2, 3}},
	}
	for _, name := range CodecNames() {
		c, _ := CodecByName(name)
		for _, m := range msgs {
			payload, err := c.Encode(m)
			if err != nil {
				t.Fatalf("%s encode %T: %v", name, m, err)
			}
			got, err := DecodePayload(payload)
			if err != nil {
				t.Fatalf("%s payload undecodable: %v", name, err)
			}
			if got.Destination() != m.Destination() {
				t.Fatalf("%s round trip mismatch: %+v != %+v", name, got, m)
			}
		}
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		want    string
	}{
		{"empty", nil, "empty"},
		{"flag only", []byte{flagBinary}, "truncated"},
		{"unknown tag", []byte{flagBinary, 0x7f}, "unknown wire tag"},
		{"unknown flag", []byte{0x5a, 0x01}, "unknown format flag"},
		{"truncated body", []byte{flagBinary, wireTagBlob, 0, 0}, "truncated"},
	}
	for _, tc := range cases {
		if _, err := DecodePayload(tc.payload); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}

	// Trailing bytes after a valid body must be rejected, not ignored: they
	// would mean encoder/decoder disagreement on the wire layout.
	good, err := BinaryCodec{}.Encode(wireBlob{Header: NewHeader(addr(1), addr(2))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePayload(append(good, 0x00)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing byte: err = %v", err)
	}
}

// TestWireReaderBounds pins the latching out-of-bounds behavior every
// registered decoder relies on: reads past the end return zero values and
// Err() reports the first violation.
func TestWireReaderBounds(t *testing.T) {
	r := NewWireReader([]byte{0x01, 0x02})
	if v := r.U16(); v != 0x0102 {
		t.Fatalf("U16 = %#x", v)
	}
	if v := r.U64(); v != 0 {
		t.Fatalf("out-of-bounds U64 = %d, want 0", v)
	}
	if r.Err() == nil {
		t.Fatal("bounds violation not latched")
	}
	if s := r.String(); s != "" {
		t.Fatalf("post-error String = %q", s)
	}

	// A length prefix promising more bytes than remain must fail, not
	// allocate or alias past the buffer.
	r2 := NewWireReader([]byte{0xff, 0xff, 0xff, 0xff})
	if b := r2.Bytes(); b != nil || r2.Err() == nil {
		t.Fatalf("oversized length prefix: bytes=%v err=%v", b, r2.Err())
	}
}

// TestBinaryEncodeZeroAlloc is the steady-state allocation gate for the
// binary encode path: appending into a recycled buffer must not allocate.
// CI runs every *ZeroAlloc* test with GC pacing that flags regressions.
func TestBinaryEncodeZeroAlloc(t *testing.T) {
	// Box the message once, as the transport's send path does — it receives
	// an already-boxed Message, so per-call interface conversion is not part
	// of the steady state being gated.
	var m Message = wireBlob{Header: NewHeader(addr(1), addr(2)), Data: bytes.Repeat([]byte{0xab}, 512)}
	buf := make([]byte, 0, 4096)
	var c BinaryCodec
	allocs := testing.AllocsPerRun(200, func() {
		out, err := c.EncodeAppend(buf[:0], m)
		if err != nil || len(out) == 0 {
			t.Fatal("encode failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("binary encode allocates %.1f/op, want 0", allocs)
	}
}

// TestBinaryDecodeZeroAlloc gates the decode hot path: reading a binary
// body back through WireReader primitives into an existing struct must not
// allocate — Bytes and String alias the payload (zero-copy).
func TestBinaryDecodeZeroAlloc(t *testing.T) {
	payload, err := BinaryCodec{}.Encode(wireBlob{
		Header: NewHeader(addr(1), addr(2)),
		Data:   bytes.Repeat([]byte{0xcd}, 512),
	})
	if err != nil {
		t.Fatal(err)
	}
	var m wireBlob
	allocs := testing.AllocsPerRun(200, func() {
		r := NewWireReader(payload[2:])
		m.Header = r.Header()
		m.Seq = int(r.I64())
		m.Data = r.Bytes()
		if r.Err() != nil || r.Len() != 0 {
			t.Fatal("decode failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("binary field decode allocates %.1f/op, want 0", allocs)
	}
	if len(m.Data) != 512 || &m.Data[0] != &payload[len(payload)-512] {
		t.Fatal("decoded data does not alias the payload")
	}
}

// TestBinaryFullDecodeAllocs bounds the whole DecodePayload path for a
// wire-set type: boxing the decoded message into the Message interface,
// plus the WireReader header escaping through the indirect decoder call.
// Both are constant per frame — no per-field or per-byte allocations.
func TestBinaryFullDecodeAllocs(t *testing.T) {
	payload, err := BinaryCodec{}.Encode(wireBlob{
		Header: NewHeader(addr(1), addr(2)),
		Data:   bytes.Repeat([]byte{0xef}, 256),
	})
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := DecodePayload(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("full binary decode allocates %.1f/op, want <= 2", allocs)
	}
}
