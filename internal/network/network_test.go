package network

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
)

// Test message types.

type hello struct {
	Header
	Greeting string
}

type data struct {
	Header
	Seq     int
	Payload []byte
}

func init() {
	Register(hello{})
	Register(data{})
}

func addr(i int) Address { return Address{Host: "node", Port: uint16(i)} }

func TestAddressStringAndParse(t *testing.T) {
	a := Address{Host: "10.0.0.1", Port: 8080}
	s := a.String()
	got, err := ParseAddress(s)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("round-trip %v != %v", got, a)
	}
	if _, err := ParseAddress("nonsense"); err == nil {
		t.Fatalf("parse must fail on garbage")
	}
	if _, err := ParseAddress("host:99999"); err == nil {
		t.Fatalf("parse must fail on out-of-range port")
	}
	if !(Address{}).IsZero() {
		t.Fatalf("zero address must report IsZero")
	}
	if a.IsZero() {
		t.Fatalf("non-zero address must not report IsZero")
	}
}

func TestHeaderAndReply(t *testing.T) {
	h := NewHeader(addr(1), addr(2))
	if h.Source() != addr(1) || h.Destination() != addr(2) {
		t.Fatalf("header accessors wrong")
	}
	r := Reply(h)
	if r.Source() != addr(2) || r.Destination() != addr(1) {
		t.Fatalf("reply must swap source and destination")
	}
}

func TestCodecRoundTripPlain(t *testing.T) {
	c := Codec{}
	m := data{Header: NewHeader(addr(1), addr(2)), Seq: 7, Payload: []byte("abc")}
	got, err := c.RoundTrip(m)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := got.(data)
	if !ok {
		t.Fatalf("decoded type %T", got)
	}
	if d.Seq != 7 || string(d.Payload) != "abc" || d.Source() != addr(1) {
		t.Fatalf("decoded %+v", d)
	}
}

func TestCodecRoundTripCompressed(t *testing.T) {
	c := Codec{Compress: true}
	payload := make([]byte, 4096) // compressible zeros
	m := data{Header: NewHeader(addr(1), addr(2)), Seq: 1, Payload: payload}
	enc, err := c.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Codec{}.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(plain) {
		t.Fatalf("compressed (%d) not smaller than plain (%d)", len(enc), len(plain))
	}
	got, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.(data).Seq != 1 {
		t.Fatalf("decoded %+v", got)
	}
}

func TestCodecCrossCompatibility(t *testing.T) {
	// A non-compressing codec must decode compressed payloads and vice
	// versa (the flag byte drives it).
	m := hello{Header: NewHeader(addr(1), addr(2)), Greeting: "hi"}
	enc, err := Codec{Compress: true}.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Codec{}.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.(hello).Greeting != "hi" {
		t.Fatalf("decoded %+v", got)
	}
}

func TestCodecErrors(t *testing.T) {
	c := Codec{}
	if _, err := c.Decode(nil); err == nil {
		t.Fatalf("decode empty must fail")
	}
	if _, err := c.Decode([]byte{0x7f, 1, 2}); err == nil {
		t.Fatalf("decode unknown flag must fail")
	}
	if _, err := c.Decode([]byte{flagPlain, 1, 2, 3}); err == nil {
		t.Fatalf("decode garbage must fail")
	}
	if _, err := c.Decode([]byte{flagZlib, 1, 2, 3}); err == nil {
		t.Fatalf("decode garbage zlib must fail")
	}
}

func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(seq int, payload []byte, compress bool) bool {
		c := Codec{Compress: compress}
		m := data{Header: NewHeader(addr(1), addr(2)), Seq: seq, Payload: payload}
		got, err := c.RoundTrip(m)
		if err != nil {
			return false
		}
		d, ok := got.(data)
		if !ok || d.Seq != seq || len(d.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if d.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- loopback ----------------------------------------------------------------

// node is a test component owning a loopback transport and counting
// received messages. It uses the child transport's provided port directly
// (the Kompics idiom for a parent consuming a service its own child
// provides): requests are triggered on the child's port and indications are
// received by handlers subscribed there.
type node struct {
	self     Address
	registry *LoopbackRegistry
	ctx      *core.Ctx
	port     *core.Port
	got      atomic.Int64
	mu       sync.Mutex
	msgs     []Message
}

func (n *node) Setup(ctx *core.Ctx) {
	n.ctx = ctx
	lb := ctx.Create("net", NewLoopback(n.self, n.registry))
	n.port = lb.Provided(PortType)
	core.Subscribe(ctx, n.port, func(m Message) {
		n.got.Add(1)
		n.mu.Lock()
		n.msgs = append(n.msgs, m)
		n.mu.Unlock()
	})
}

func (n *node) send(m Message) { n.ctx.Trigger(m, n.port) }

func newLoopbackPair(t *testing.T, opts ...LoopbackOption) (*core.Runtime, *node, *node, *LoopbackRegistry) {
	t.Helper()
	reg := NewLoopbackRegistry(opts...)
	n1 := &node{self: addr(1), registry: reg}
	n2 := &node{self: addr(2), registry: reg}
	rt := core.New(
		core.WithScheduler(core.NewWorkStealingScheduler(2)),
		core.WithFaultPolicy(core.LogAndContinue),
	)
	t.Cleanup(rt.Shutdown)
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		ctx.Create("n1", n1)
		ctx.Create("n2", n2)
	}))
	if !rt.WaitQuiescence(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	return rt, n1, n2, reg
}

func TestLoopbackDelivers(t *testing.T) {
	rt, n1, n2, reg := newLoopbackPair(t)
	n1.send(hello{Header: NewHeader(n1.self, n2.self), Greeting: "hi"})
	if !rt.WaitQuiescence(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	if n2.got.Load() != 1 {
		t.Fatalf("n2 got %d messages, want 1", n2.got.Load())
	}
	delivered, _, _ := reg.Stats()
	if delivered != 1 {
		t.Fatalf("registry delivered %d, want 1", delivered)
	}
}

func TestLoopbackSelfDelivery(t *testing.T) {
	rt, n1, _, _ := newLoopbackPair(t)
	n1.send(hello{Header: NewHeader(n1.self, n1.self), Greeting: "self"})
	if !rt.WaitQuiescence(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	if n1.got.Load() != 1 {
		t.Fatalf("self-delivery failed: got %d", n1.got.Load())
	}
}

func TestLoopbackUnroutable(t *testing.T) {
	rt, n1, _, reg := newLoopbackPair(t)
	n1.send(hello{Header: NewHeader(n1.self, addr(99))})
	if !rt.WaitQuiescence(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	_, _, unroutable := reg.Stats()
	if unroutable != 1 {
		t.Fatalf("unroutable %d, want 1", unroutable)
	}
}

func TestLoopbackCodecRoundTrip(t *testing.T) {
	rt, n1, n2, _ := newLoopbackPair(t, WithCodec(Codec{Compress: true}))
	n1.send(data{Header: NewHeader(n1.self, n2.self), Seq: 3, Payload: []byte("xyz")})
	if !rt.WaitQuiescence(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	n2.mu.Lock()
	defer n2.mu.Unlock()
	if len(n2.msgs) != 1 {
		t.Fatalf("got %d messages", len(n2.msgs))
	}
	d := n2.msgs[0].(data)
	if d.Seq != 3 || string(d.Payload) != "xyz" {
		t.Fatalf("decoded %+v", d)
	}
}

func TestLoopbackDropRate(t *testing.T) {
	rt, n1, n2, reg := newLoopbackPair(t, WithDropRate(1.0, 42))
	for i := 0; i < 10; i++ {
		n1.send(hello{Header: NewHeader(n1.self, n2.self)})
	}
	if !rt.WaitQuiescence(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	if n2.got.Load() != 0 {
		t.Fatalf("drop rate 1.0 delivered %d messages", n2.got.Load())
	}
	_, dropped, _ := reg.Stats()
	if dropped != 10 {
		t.Fatalf("dropped %d, want 10", dropped)
	}
}

func TestLoopbackDelay(t *testing.T) {
	rt, n1, n2, _ := newLoopbackPair(t, WithConstantDelay(20*time.Millisecond))
	start := time.Now()
	n1.send(hello{Header: NewHeader(n1.self, n2.self)})
	deadline := time.Now().Add(2 * time.Second)
	for n2.got.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n2.got.Load() != 1 {
		t.Fatalf("delayed message never arrived")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("delivered too fast: %v", elapsed)
	}
	_ = rt
}

func TestLoopbackStopUnregisters(t *testing.T) {
	rt, n1, n2, reg := newLoopbackPair(t)
	root := rt.Root()
	// Stop n2's subtree: its transport unregisters.
	for _, ch := range root.Children() {
		if ch.Name() == "n2" {
			core.TriggerOn(ch.Control(), core.Stop{}) //nolint:errcheck
		}
	}
	if !rt.WaitQuiescence(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	n1.send(hello{Header: NewHeader(n1.self, n2.self)})
	if !rt.WaitQuiescence(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	_, _, unroutable := reg.Stats()
	if unroutable != 1 {
		t.Fatalf("message to stopped node should be unroutable, got %d", unroutable)
	}
}

// --- TCP -----------------------------------------------------------------------

// tcpNode wires a TCP transport under a counting client. It also records
// every PeerStatus indication so tests can assert liveness transitions.
type tcpNode struct {
	self     Address
	opts     []TCPOption
	ctx      *core.Ctx
	port     *core.Port
	tcp      *TCP
	got      atomic.Int64
	mu       sync.Mutex
	msgs     []Message
	statuses []PeerStatus
}

func (n *tcpNode) Setup(ctx *core.Ctx) {
	n.ctx = ctx
	n.tcp = NewTCP(n.self, n.opts...)
	tc := ctx.Create("net", n.tcp)
	n.port = tc.Provided(PortType)
	core.Subscribe(ctx, n.port, func(m Message) {
		n.got.Add(1)
		n.mu.Lock()
		n.msgs = append(n.msgs, m)
		n.mu.Unlock()
	})
	core.Subscribe(ctx, n.port, func(s PeerStatus) {
		n.mu.Lock()
		n.statuses = append(n.statuses, s)
		n.mu.Unlock()
	})
}

// peerStatuses snapshots the recorded PeerStatus transitions.
func (n *tcpNode) peerStatuses() []PeerStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]PeerStatus(nil), n.statuses...)
}

// testTCPAddr reserves a free loopback port from the OS.
func testTCPAddr(t *testing.T) Address {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	_ = ln.Close()
	return Address{Host: "127.0.0.1", Port: uint16(port)}
}

func newTCPPair(t *testing.T, opts ...TCPOption) (*core.Runtime, *tcpNode, *tcpNode) {
	t.Helper()
	n1 := &tcpNode{self: testTCPAddr(t), opts: opts}
	n2 := &tcpNode{self: testTCPAddr(t), opts: opts}
	rt := core.New(
		core.WithScheduler(core.NewWorkStealingScheduler(2)),
		core.WithFaultPolicy(core.LogAndContinue),
	)
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		ctx.Create("n1", n1)
		ctx.Create("n2", n2)
	}))
	if !rt.WaitQuiescence(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	t.Cleanup(func() {
		n1.tcp.shutdown()
		n2.tcp.shutdown()
		rt.Shutdown()
	})
	return rt, n1, n2
}

// waitCount polls until the counter reaches want.
func waitCount(t *testing.T, c *atomic.Int64, want int64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.Load() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("count %d, want >= %d within %v", c.Load(), want, timeout)
}

func TestTCPDelivers(t *testing.T) {
	_, n1, n2 := newTCPPair(t)
	n1.ctx.Trigger(hello{Header: NewHeader(n1.self, n2.self), Greeting: "over tcp"}, n1.port)
	waitCount(t, &n2.got, 1, 5*time.Second)
	n2.mu.Lock()
	defer n2.mu.Unlock()
	h := n2.msgs[0].(hello)
	if h.Greeting != "over tcp" || h.Source() != n1.self {
		t.Fatalf("received %+v", h)
	}
}

func TestTCPBidirectional(t *testing.T) {
	_, n1, n2 := newTCPPair(t)
	n1.ctx.Trigger(hello{Header: NewHeader(n1.self, n2.self), Greeting: "ping"}, n1.port)
	waitCount(t, &n2.got, 1, 5*time.Second)
	n2.ctx.Trigger(hello{Header: NewHeader(n2.self, n1.self), Greeting: "pong"}, n2.port)
	waitCount(t, &n1.got, 1, 5*time.Second)
}

func TestTCPManyMessagesInOrder(t *testing.T) {
	_, n1, n2 := newTCPPair(t)
	const n = 500
	for i := 0; i < n; i++ {
		n1.ctx.Trigger(data{Header: NewHeader(n1.self, n2.self), Seq: i}, n1.port)
	}
	waitCount(t, &n2.got, n, 10*time.Second)
	n2.mu.Lock()
	defer n2.mu.Unlock()
	for i, m := range n2.msgs {
		if m.(data).Seq != i {
			t.Fatalf("order violated at %d: got seq %d", i, m.(data).Seq)
		}
	}
}

func TestTCPSelfDelivery(t *testing.T) {
	_, n1, _ := newTCPPair(t)
	n1.ctx.Trigger(hello{Header: NewHeader(n1.self, n1.self), Greeting: "self"}, n1.port)
	waitCount(t, &n1.got, 1, 5*time.Second)
}

func TestTCPWithCompression(t *testing.T) {
	_, n1, n2 := newTCPPair(t, WithCompression())
	payload := make([]byte, 2048)
	n1.ctx.Trigger(data{Header: NewHeader(n1.self, n2.self), Seq: 1, Payload: payload}, n1.port)
	waitCount(t, &n2.got, 1, 5*time.Second)
	n2.mu.Lock()
	defer n2.mu.Unlock()
	if len(n2.msgs[0].(data).Payload) != 2048 {
		t.Fatalf("payload mangled")
	}
}

func TestTCPSendToDeadPeerCountsError(t *testing.T) {
	_, n1, _ := newTCPPair(t)
	dead := Address{Host: "127.0.0.1", Port: 1} // nothing listens
	n1.ctx.Trigger(hello{Header: NewHeader(n1.self, dead)}, n1.port)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, _, errs := n1.tcp.Stats(); errs > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("send to dead peer did not register an error")
}

func TestTCPStats(t *testing.T) {
	_, n1, n2 := newTCPPair(t)
	n1.ctx.Trigger(hello{Header: NewHeader(n1.self, n2.self)}, n1.port)
	waitCount(t, &n2.got, 1, 5*time.Second)
	sent, _, _, _ := n1.tcp.Stats()
	if sent != 1 {
		t.Fatalf("sent %d, want 1", sent)
	}
	_, received, _, _ := n2.tcp.Stats()
	if received != 1 {
		t.Fatalf("received %d, want 1", received)
	}
}

func TestTCPConcurrentSenders(t *testing.T) {
	_, n1, n2 := newTCPPair(t)
	const senders = 4
	const per = 100
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				n1.ctx.Trigger(data{
					Header: NewHeader(n1.self, n2.self),
					Seq:    s*per + i,
				}, n1.port)
			}
		}(s)
	}
	wg.Wait()
	waitCount(t, &n2.got, senders*per, 10*time.Second)
}

func TestTCPShutdownIdempotent(t *testing.T) {
	_, n1, _ := newTCPPair(t)
	n1.tcp.shutdown()
	n1.tcp.shutdown()
}

func TestRegisterAndEnvelope(t *testing.T) {
	// Unregistered types must fail encoding with a clear error.
	type unregistered struct {
		Header
		X int
	}
	_, err := Codec{}.Encode(unregistered{})
	if err == nil {
		t.Fatalf("encoding unregistered type must fail")
	}
	if fmt.Sprintf("%v", err) == "" {
		t.Fatalf("error must format")
	}
}
