package scenario

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/simulation"
)

// stableSortFunc sorts evs stably by the given less function.
func stableSortFunc(evs []TimedEvent, less func(a, b TimedEvent) bool) {
	sort.SliceStable(evs, func(i, j int) bool { return less(evs[i], evs[j]) })
}

// ExecuteSimulated loads a schedule into a simulation's discrete-event
// queue: each command fires at its virtual time, triggered on the target
// experiment port (the paper's NetworkEmulator/ExperimentDriver issuing
// commands to the system simulator component). Call sim.Run afterwards.
// It returns the scenario end time as a virtual-time duration.
func ExecuteSimulated(sim *simulation.Simulation, sched Schedule, target *core.Port) time.Duration {
	for _, ev := range sched.Events {
		ev := ev
		sim.ScheduleAt(ev.At, "scenario:"+ev.Process, func() {
			_ = core.TriggerOn(target, ev.Event)
		})
	}
	return sched.End
}

// ExecuteRealTime plays a schedule against the target port in real time
// (the paper's local interactive stress-test execution mode). It returns a
// channel closed when the schedule completes, and a stop function that
// aborts early.
func ExecuteRealTime(sched Schedule, target *core.Port) (done <-chan struct{}, stop func()) {
	doneCh := make(chan struct{})
	stopCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		start := time.Now()
		for _, ev := range sched.Events {
			wait := ev.At - time.Since(start)
			if wait > 0 {
				select {
				case <-time.After(wait):
				case <-stopCh:
					return
				}
			}
			select {
			case <-stopCh:
				return
			default:
			}
			_ = core.TriggerOn(target, ev.Event)
		}
		if rest := sched.End - time.Since(start); rest > 0 {
			select {
			case <-time.After(rest):
			case <-stopCh:
			}
		}
	}()
	var stopped bool
	return doneCh, func() {
		if !stopped {
			stopped = true
			close(stopCh)
		}
	}
}
