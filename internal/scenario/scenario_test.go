package scenario

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/simulation"
)

// Command events, as a system under test would define them.

type joinCmd struct{ ID uint64 }
type failCmd struct{ ID uint64 }
type lookupCmd struct{ Node, Key uint64 }
type noopCmd struct{}

func join(id uint64) core.Event     { return joinCmd{ID: id} }
func fail(id uint64) core.Event     { return failCmd{ID: id} }
func lookup(n, k uint64) core.Event { return lookupCmd{Node: n, Key: k} }

var experimentPort = core.NewPortType("Experiment",
	core.Request[joinCmd](),
	core.Request[failCmd](),
	core.Request[lookupCmd](),
	core.Request[noopCmd](),
)

// paperScenario builds the exact composition from §4.4: boot, then churn 2s
// after boot terminates, lookups 3s after churn starts, terminate 1s after
// lookups terminate. Counts are scaled down for test speed.
func paperScenario() (*Scenario, *Process, *Process, *Process) {
	boot := NewProcess("boot").
		EventInterArrivalTime(ExponentialDuration(2 * time.Second))
	Raise1(boot, 100, join, UniformBits(16))

	churn := NewProcess("churn").
		EventInterArrivalTime(ExponentialDuration(500 * time.Millisecond))
	Raise1(churn, 50, join, UniformBits(16))
	Raise1(churn, 50, fail, UniformBits(16))

	lookups := NewProcess("lookups").
		EventInterArrivalTime(NormalDuration(50*time.Millisecond, 10*time.Millisecond))
	Raise2(lookups, 500, lookup, UniformBits(16), UniformBits(14))

	sc := New().
		Start(boot).
		StartAfterTerminationOf(churn, 2*time.Second, boot).
		StartAfterStartOf(lookups, 3*time.Second, churn)
	sc.TerminateAfterTerminationOf(time.Second, lookups)
	return sc, boot, churn, lookups
}

func TestGenerateDeterministic(t *testing.T) {
	sc, _, _, _ := paperScenario()
	s1, err := sc.Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sc.Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Events) != len(s2.Events) || s1.End != s2.End {
		t.Fatalf("same seed, different schedules")
	}
	for i := range s1.Events {
		if s1.Events[i] != s2.Events[i] {
			t.Fatalf("schedules diverge at %d", i)
		}
	}
	s3, err := sc.Generate(43)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Events) == len(s3.Events) {
		same := true
		for i := range s1.Events {
			if s1.Events[i] != s3.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("different seeds produced identical schedules")
		}
	}
}

func TestScheduleOrderedAndComposed(t *testing.T) {
	sc, _, _, _ := paperScenario()
	sched, err := sc.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Events) == 0 {
		t.Fatalf("empty schedule")
	}
	var prev time.Duration
	var bootEnd, churnStart time.Duration
	counts := map[string]int{}
	for _, ev := range sched.Events {
		if ev.At < prev {
			t.Fatalf("schedule not time-ordered")
		}
		prev = ev.At
		counts[ev.Process]++
		switch ev.Process {
		case "boot":
			if ev.At > bootEnd {
				bootEnd = ev.At
			}
		case "churn":
			if churnStart == 0 || ev.At < churnStart {
				churnStart = ev.At
			}
		}
	}
	if counts["boot"] != 100 {
		t.Fatalf("boot raised %d events, want 100", counts["boot"])
	}
	if counts["churn"] == 0 || counts["lookups"] == 0 {
		t.Fatalf("churn/lookups missing: %v", counts)
	}
	// Sequential composition: churn starts at least 2s after boot's last
	// event.
	if churnStart < bootEnd+2*time.Second {
		t.Fatalf("churn started %v, boot ended %v: sequential composition violated", churnStart, bootEnd)
	}
	// Termination cut: no event beyond End.
	if sched.Events[len(sched.Events)-1].At > sched.End {
		t.Fatalf("event after scenario end")
	}
}

func TestChurnInterleavesJoinsAndFailures(t *testing.T) {
	churn := NewProcess("churn").EventInterArrivalTime(ConstantDuration(time.Millisecond))
	Raise1(churn, 50, join, UniformBits(8))
	Raise1(churn, 50, fail, UniformBits(8))
	sc := New().Start(churn)
	sched, err := sc.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Events) != 100 {
		t.Fatalf("churn generated %d events, want 100", len(sched.Events))
	}
	// Not all joins first: the two raises must interleave.
	firstFail, lastJoin := -1, -1
	joins, fails := 0, 0
	for i, ev := range sched.Events {
		switch ev.Event.(type) {
		case joinCmd:
			joins++
			lastJoin = i
		case failCmd:
			fails++
			if firstFail < 0 {
				firstFail = i
			}
		}
	}
	if joins != 50 || fails != 50 {
		t.Fatalf("joins=%d fails=%d", joins, fails)
	}
	if firstFail > lastJoin {
		t.Fatalf("no interleaving: all joins before all failures")
	}
}

func TestAnchorErrors(t *testing.T) {
	a := NewProcess("a")
	b := NewProcess("b")
	// b anchored to a, but a never started.
	sc := New().StartAfterStartOf(b, time.Second, a)
	if _, err := sc.Generate(1); err == nil {
		t.Fatalf("undefined anchor must error")
	}
	sc2 := New().StartAfterTerminationOf(b, time.Second, a)
	if _, err := sc2.Generate(1); err == nil {
		t.Fatalf("undefined termination anchor must error")
	}
	sc3 := New().Start(a).Start(a)
	if _, err := sc3.Generate(1); err == nil {
		t.Fatalf("double start must error")
	}
	c := NewProcess("c")
	sc4 := New().Start(a)
	sc4.TerminateAfterTerminationOf(time.Second, c)
	if _, err := sc4.Generate(1); err == nil {
		t.Fatalf("unknown termination anchor must error")
	}
}

func TestRaise0AndStartAt(t *testing.T) {
	p := NewProcess("p").EventInterArrivalTime(ConstantDuration(10 * time.Millisecond))
	Raise0(p, 5, func() core.Event { return noopCmd{} })
	sc := New().StartAt(p, time.Second)
	sched, err := sc.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Events) != 5 {
		t.Fatalf("%d events, want 5", len(sched.Events))
	}
	if sched.Events[0].At != time.Second+10*time.Millisecond {
		t.Fatalf("first event at %v", sched.Events[0].At)
	}
	if sched.End != time.Second+50*time.Millisecond {
		t.Fatalf("end %v", sched.End)
	}
}

func TestDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if d := UniformDuration(time.Millisecond, 2*time.Millisecond)(rng); d < time.Millisecond || d > 2*time.Millisecond {
			t.Fatalf("uniform out of range: %v", d)
		}
		if d := NormalDuration(time.Millisecond, 5*time.Millisecond)(rng); d < 0 {
			t.Fatalf("normal went negative: %v", d)
		}
		if d := ExponentialDuration(time.Millisecond)(rng); d < 0 {
			t.Fatalf("exponential negative: %v", d)
		}
		if v := UniformBits(16)(rng); v >= 1<<16 {
			t.Fatalf("uniform bits out of range: %d", v)
		}
		if v := UniformRange(10, 20)(rng); v < 10 || v >= 20 {
			t.Fatalf("uniform range: %d", v)
		}
	}
	if ConstantDuration(time.Second)(rng) != time.Second {
		t.Fatalf("constant duration")
	}
	if ConstantInt(7)(rng) != 7 {
		t.Fatalf("constant int")
	}
	if UniformDuration(time.Second, time.Second)(rng) != time.Second {
		t.Fatalf("degenerate uniform duration")
	}
}

func TestDistributionPanics(t *testing.T) {
	for _, f := range []func(){
		func() { UniformBits(0) },
		func() { UniformBits(64) },
		func() { UniformRange(5, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			f()
		}()
	}
}

// --- drivers -----------------------------------------------------------------

// cmdSink provides the experiment port and records received commands.
type cmdSink struct {
	port *core.Port
	got  []core.Event
	at   []time.Time
}

func (cs *cmdSink) Setup(ctx *core.Ctx) {
	cs.port = ctx.Provides(experimentPort)
	rec := func(ev core.Event) {
		cs.got = append(cs.got, ev)
		cs.at = append(cs.at, ctx.Now())
	}
	core.Subscribe(ctx, cs.port, func(e joinCmd) { rec(e) })
	core.Subscribe(ctx, cs.port, func(e failCmd) { rec(e) })
	core.Subscribe(ctx, cs.port, func(e lookupCmd) { rec(e) })
	core.Subscribe(ctx, cs.port, func(e noopCmd) { rec(e) })
}

func TestExecuteSimulatedDeliversAllCommandsAtVirtualTimes(t *testing.T) {
	sc, _, _, _ := paperScenario()
	sched, err := sc.Generate(11)
	if err != nil {
		t.Fatal(err)
	}
	sim := simulation.New(11)
	sink := &cmdSink{}
	var target *core.Port
	sim.Runtime().MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		c := ctx.Create("sink", sink)
		target = c.Provided(experimentPort)
	}))
	sim.Run(0)
	end := ExecuteSimulated(sim, sched, target)
	if end != sched.End {
		t.Fatalf("end mismatch")
	}
	stats := sim.Run(0)
	if len(sink.got) != len(sched.Events) {
		t.Fatalf("sink got %d commands, want %d", len(sink.got), len(sched.Events))
	}
	epoch := sink.at[0].Add(-sched.Events[0].At)
	for i := range sink.got {
		if sink.got[i] != sched.Events[i].Event {
			t.Fatalf("command %d mismatch", i)
		}
		if got := sink.at[i].Sub(epoch); got != sched.Events[i].At {
			t.Fatalf("command %d at %v, want %v", i, got, sched.Events[i].At)
		}
	}
	if stats.DiscreteEvents == 0 {
		t.Fatalf("no discrete events")
	}
}

func TestExecuteRealTimeDeliversAll(t *testing.T) {
	p := NewProcess("fast").EventInterArrivalTime(ConstantDuration(time.Millisecond))
	Raise0(p, 20, func() core.Event { return noopCmd{} })
	sc := New().Start(p)
	sched, err := sc.Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(
		core.WithScheduler(core.NewWorkStealingScheduler(2)),
		core.WithFaultPolicy(core.LogAndContinue),
	)
	defer rt.Shutdown()
	sink := &cmdSink{}
	var target *core.Port
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		c := ctx.Create("sink", sink)
		target = c.Provided(experimentPort)
	}))
	rt.WaitQuiescence(time.Second)
	done, stop := ExecuteRealTime(sched, target)
	defer stop()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("real-time driver did not finish")
	}
	rt.WaitQuiescence(time.Second)
	if len(sink.got) != 20 {
		t.Fatalf("sink got %d, want 20", len(sink.got))
	}
}

func TestExecuteRealTimeStop(t *testing.T) {
	p := NewProcess("slow").EventInterArrivalTime(ConstantDuration(time.Hour))
	Raise0(p, 5, func() core.Event { return noopCmd{} })
	sc := New().Start(p)
	sched, err := sc.Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(
		core.WithScheduler(core.NewWorkStealingScheduler(1)),
		core.WithFaultPolicy(core.LogAndContinue),
	)
	defer rt.Shutdown()
	sink := &cmdSink{}
	var target *core.Port
	rt.MustBootstrap("Main", core.SetupFunc(func(ctx *core.Ctx) {
		c := ctx.Create("sink", sink)
		target = c.Provided(experimentPort)
	}))
	done, stop := ExecuteRealTime(sched, target)
	stop()
	stop() // idempotent
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("stop did not abort the driver")
	}
}

// Property: schedules are always time-ordered and sized as the sum of
// raise counts (when no termination cut applies).
func TestPropertySchedulesOrderedAndComplete(t *testing.T) {
	f := func(seed int64, nJoins, nFails uint8) bool {
		p := NewProcess("p").EventInterArrivalTime(ExponentialDuration(time.Millisecond))
		Raise1(p, int(nJoins), join, UniformBits(8))
		Raise1(p, int(nFails), fail, UniformBits(8))
		sc := New().Start(p)
		sched, err := sc.Generate(seed)
		if err != nil {
			return false
		}
		if len(sched.Events) != int(nJoins)+int(nFails) {
			return false
		}
		var prev time.Duration
		for _, ev := range sched.Events {
			if ev.At < prev {
				return false
			}
			prev = ev.At
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
