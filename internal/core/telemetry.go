package core

// Runtime telemetry: cheap always-on counters plus optional sampled handler
// latency and event tracing. The design rule is that the dispatch hot path
// (routing-table hit → ring enqueue → deque push → handler execution) stays
// allocation-free with telemetry compiled in: every per-event cost is a
// handful of uncontended atomic adds, the latency clock is read only on
// sampled events, and tracing is gated on a single nil check (see
// Component.ExecuteOne). Aggregation work — walking the component registry,
// summing per-worker counters, sizing route tables — happens on the read
// side, in MetricsSnapshot.

import (
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the number of power-of-two handler-latency buckets.
// Bucket i counts sampled handler executions with duration in
// [2^(i-1), 2^i) nanoseconds (bucket 0 counts 0ns, i.e. sub-resolution
// executions); the last bucket absorbs everything ≥ 2^(LatencyBuckets-2) ns
// (~4.2 s), far beyond any sane handler.
const LatencyBuckets = 33

// latHistogram is the per-component sampled handler-latency histogram:
// power-of-two buckets, plain atomic adds, no locking. Writers are the
// component's executing worker (one at a time); readers snapshot racily,
// which is fine for monitoring.
type latHistogram struct {
	counts [LatencyBuckets]atomic.Uint64
	sum    atomic.Uint64 // total sampled nanoseconds
	n      atomic.Uint64 // number of samples
}

// observe records one sampled handler duration.
func (h *latHistogram) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	idx := bits.Len64(uint64(d))
	if idx >= LatencyBuckets {
		idx = LatencyBuckets - 1
	}
	h.counts[idx].Add(1)
	h.sum.Add(uint64(d))
	h.n.Add(1)
}

// snapshot copies the histogram.
func (h *latHistogram) snapshot() LatencyStats {
	var s LatencyStats
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	s.SumNanos = h.sum.Load()
	s.Samples = h.n.Load()
	return s
}

// LatencyStats is a point-in-time copy of a sampled latency histogram.
type LatencyStats struct {
	// Samples is the number of handler executions that were timed (one in
	// every sampling-interval executions; see WithLatencySampling).
	Samples uint64
	// SumNanos is the summed duration of all samples, in nanoseconds.
	SumNanos uint64
	// Buckets[i] counts samples with duration < BucketBoundNS(i).
	Buckets [LatencyBuckets]uint64
}

// BucketBoundNS returns the exclusive upper bound of latency bucket i in
// nanoseconds (2^i).
func BucketBoundNS(i int) uint64 {
	if i >= 63 {
		return 1 << 62
	}
	return 1 << uint(i)
}

// compStats are the always-on per-component telemetry counters, embedded in
// Component so the dispatch path never allocates or indirects to reach them.
type compStats struct {
	handled  atomic.Uint64 // work items executed (events handled)
	triggers atomic.Uint64 // events emitted via Ctx.Trigger
	faults   atomic.Uint64 // handler panics attributed to this component
	latency  latHistogram
}

// ComponentStats is a point-in-time copy of one component's counters.
type ComponentStats struct {
	// Path is the component's slash-separated path from the root.
	Path string
	// Handled is the number of work items (events) the component executed.
	Handled uint64
	// Triggers is the number of events the component's handlers emitted.
	Triggers uint64
	// Faults is the number of handler panics originating in the component.
	Faults uint64
	// QueueDepth is the current number of queued events (control + main).
	QueueDepth int
	// Latency is the sampled handler-latency histogram.
	Latency LatencyStats
}

// Metrics returns a snapshot of the component's telemetry counters.
func (c *Component) Metrics() ComponentStats {
	return ComponentStats{
		Path:       c.Path(),
		Handled:    c.stats.handled.Load(),
		Triggers:   c.stats.triggers.Load(),
		Faults:     c.stats.faults.Load(),
		QueueDepth: c.QueuedEvents(),
		Latency:    c.stats.latency.snapshot(),
	}
}

// WorkerStats is a point-in-time copy of one scheduler worker's counters.
type WorkerStats struct {
	// ID is the worker index.
	ID int
	// Executed is the number of component events the worker executed.
	Executed uint64
	// LocalPops is the number of ready components consumed from the
	// worker's own deque (as opposed to stolen from a victim).
	LocalPops uint64
	// Steals is the number of successful steal operations (each claims a
	// batch in one CAS).
	Steals uint64
	// StealMisses is the number of steal attempts that found no victim or
	// lost the race for the victim's queue.
	StealMisses uint64
	// Stolen is the total number of components claimed by steals.
	Stolen uint64
	// Parks is the number of times the worker went to sleep for lack of
	// work anywhere.
	Parks uint64
	// StealShrinks is the number of successful steals where the adaptive
	// batch policy took less than the half-batch default because the victim
	// deque was shallow relative to its high-water mark.
	StealShrinks uint64
	// MaxDequeDepth is the high-water mark of the worker's ready deque.
	MaxDequeDepth int64
	// DequeDepth is the current (racy) length of the worker's ready deque.
	DequeDepth int64
}

// SchedulerStats aggregates the per-worker counters of a scheduler.
type SchedulerStats struct {
	// Workers is the number of worker goroutines (1 for the simulation
	// scheduler).
	Workers int
	// Aggregates over all workers; see WorkerStats for field meanings.
	Executed      uint64
	LocalPops     uint64
	Steals        uint64
	StealMisses   uint64
	Stolen        uint64
	Parks         uint64
	StealShrinks  uint64
	MaxDequeDepth int64
	// PerWorker carries the unaggregated counters, when available.
	PerWorker []WorkerStats `json:",omitempty"`
}

// SchedulerMetricsSource is implemented by schedulers that expose telemetry
// (both the production work-stealing scheduler and the simulation
// scheduler do). It is a separate interface so third-party Scheduler
// implementations remain valid without it.
type SchedulerMetricsSource interface {
	SchedulerMetrics() SchedulerStats
}

// RouteCacheStats describes the state of the copy-on-write routing-plan
// caches across all port pairs of a runtime.
type RouteCacheStats struct {
	// Tables is the number of published route tables (≤ 2 per port pair).
	Tables int
	// Plans is the total number of cached delivery plans across all tables.
	Plans int
	// Builds counts route-plan constructions (cache misses) since start.
	Builds uint64
	// Resets counts table resets forced by the capacity cap.
	Resets uint64
	// Capacity is the per-table plan cap that triggers a reset.
	Capacity int
}

// TraceStats describes the event-trace sink attached to a runtime.
type TraceStats struct {
	// Enabled reports whether a TraceSink is attached.
	Enabled bool
	// Records is the total number of records written (when the sink is a
	// *TraceRing).
	Records uint64
	// Capacity is the ring capacity (when the sink is a *TraceRing).
	Capacity int
}

// MetricsSnapshot is a full point-in-time view of a runtime's telemetry:
// runtime-level gauges, scheduler counters, routing-cache state, trace sink
// state, and per-component counters. It is assembled on demand by
// Runtime.MetricsSnapshot; nothing here is maintained eagerly.
type MetricsSnapshot struct {
	// At is the runtime-clock timestamp of the snapshot (virtual time under
	// simulation).
	At time.Time
	// LiveComponents / TotalComponents / ActiveComponents mirror the
	// corresponding Runtime accessors.
	LiveComponents   int64
	TotalComponents  int64
	ActiveComponents int64
	// Faults is the number of handler panics recovered runtime-wide.
	Faults uint64
	// LatencySampleEvery is the handler-latency sampling interval (0:
	// sampling disabled).
	LatencySampleEvery uint64
	Scheduler          SchedulerStats
	RouteCache         RouteCacheStats
	Trace              TraceStats
	// Components holds per-component counters, sorted by path.
	Components []ComponentStats
}

// MetricsSnapshot assembles a full telemetry snapshot. It walks the live
// component registry and aggregates scheduler and routing-cache state; cost
// is proportional to the number of live components, so call it at
// monitoring frequency, not per event.
func (rt *Runtime) MetricsSnapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		At:                 rt.clock.Now(),
		LiveComponents:     rt.liveComps.Load(),
		TotalComponents:    rt.totalComps.Load(),
		ActiveComponents:   rt.active.Load(),
		Faults:             rt.faults.Load(),
		LatencySampleEvery: rt.latencySampleEvery(),
	}
	if src, ok := rt.scheduler.(SchedulerMetricsSource); ok {
		snap.Scheduler = src.SchedulerMetrics()
	}

	rt.compMu.Lock()
	comps := make([]*Component, 0, len(rt.comps))
	for c := range rt.comps {
		comps = append(comps, c)
	}
	rt.compMu.Unlock()

	snap.RouteCache = RouteCacheStats{
		Builds:   rt.routePlanBuilds.Load(),
		Resets:   rt.routeCacheResets.Load(),
		Capacity: routeCacheCap,
	}
	snap.Components = make([]ComponentStats, 0, len(comps))
	for _, c := range comps {
		snap.Components = append(snap.Components, c.Metrics())
		tables, plans := c.routeCacheSize()
		snap.RouteCache.Tables += tables
		snap.RouteCache.Plans += plans
	}
	sort.Slice(snap.Components, func(i, j int) bool {
		return snap.Components[i].Path < snap.Components[j].Path
	})

	if rt.traceSink != nil {
		snap.Trace.Enabled = true
		if ring, ok := rt.traceSink.(*TraceRing); ok {
			snap.Trace.Records = ring.Recorded()
			snap.Trace.Capacity = ring.Cap()
		}
	}
	return snap
}

// latencySampleEvery translates the internal sampling mask back to the
// user-facing interval (0 when sampling is disabled).
func (rt *Runtime) latencySampleEvery() uint64 {
	if rt.latMask == latSamplingDisabled {
		return 0
	}
	return rt.latMask + 1
}

// routeCacheSize counts the published route tables and cached plans across
// all of the component's port pairs.
func (c *Component) routeCacheSize() (tables, plans int) {
	c.mu.Lock()
	pairs := make([]*portPair, 0, len(c.provided)+len(c.required)+1)
	for _, pp := range c.provided {
		pairs = append(pairs, pp)
	}
	for _, pp := range c.required {
		pairs = append(pairs, pp)
	}
	if c.control != nil {
		pairs = append(pairs, c.control)
	}
	c.mu.Unlock()
	for _, pp := range pairs {
		for f := range pp.routes {
			if tab := pp.routes[f].Load(); tab != nil {
				tables++
				plans += len(tab.plans)
			}
		}
	}
	return tables, plans
}
