package core

// Lifecycle and control events. Every component implicitly provides a
// control port of type ControlPortType. The enclosing scope triggers
// Start/Stop/Kill and Init-style configuration events on it, and observes
// Fault events escalated from the component.

// Start activates a passive component. When a composite component is
// activated its subcomponents are recursively activated. Handling Start is
// optional for the component; activation itself is performed by the
// runtime.
type Start struct{}

// Stop passivates an active component. A passive component receives and
// queues events but executes only control events. When a composite
// component is passivated its subcomponents are recursively passivated.
type Stop struct{}

// Kill stops a component and then destroys it, tearing down its subtree.
type Kill struct{}

// ControlPortType is the port type of the implicit control port every
// component provides. Requests (negative): Start, Stop, Kill and arbitrary
// Init-style configuration events (the direction check is waived for the
// control port, mirroring Kompics' Init subtyping). Indications (positive):
// Fault.
var ControlPortType = NewPortType("Control",
	Request[Start](),
	Request[Stop](),
	Request[Kill](),
	Indication[Fault](),
)
