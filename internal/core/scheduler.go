package core

// Scheduler decouples component behaviour from component execution: the
// same (unchanged) component-based system runs under the multi-core
// work-stealing scheduler in production and under a single-threaded
// deterministic scheduler in simulation.
//
// The runtime hands a component to Schedule exactly once per transition to
// the ready state; the scheduler must eventually call ExecuteOne on it
// (from exactly one goroutine at a time per component).
//
// The production scheduler's per-worker ready queues are array-based
// work-stealing deques (see wsDeque in deque.go); the earlier node-based
// Michael–Scott queue was replaced because it allocated one node per
// Schedule on the dispatch hot path.
type Scheduler interface {
	// Schedule notifies the scheduler that a component became ready. It
	// may be called from worker goroutines (a handler triggered events)
	// and from external goroutines (network, timers, tests).
	Schedule(c *Component)
	// Start launches the scheduler's workers, if any.
	Start()
	// Stop shuts the scheduler down, after which Schedule calls are
	// ignored. It does not wait for queued work.
	Stop()
}
