package core

import "sync/atomic"

// Scheduler decouples component behaviour from component execution: the
// same (unchanged) component-based system runs under the multi-core
// work-stealing scheduler in production and under a single-threaded
// deterministic scheduler in simulation.
//
// The runtime hands a component to Schedule exactly once per transition to
// the ready state; the scheduler must eventually call ExecuteOne on it
// (from exactly one goroutine at a time per component).
type Scheduler interface {
	// Schedule notifies the scheduler that a component became ready. It
	// may be called from worker goroutines (a handler triggered events)
	// and from external goroutines (network, timers, tests).
	Schedule(c *Component)
	// Start launches the scheduler's workers, if any.
	Start()
	// Stop shuts the scheduler down, after which Schedule calls are
	// ignored. It does not wait for queued work.
	Stop()
}

// lfQueue is a lock-free multi-producer multi-consumer FIFO queue of ready
// components (Michael–Scott), used as the per-worker work queue so that
// victims and thieves can concurrently consume ready components, as in the
// paper's work-stealing design. Go's garbage collector makes the pointer
// CAS safe from ABA.
type lfQueue struct {
	head atomic.Pointer[lfNode] // points at a dummy node
	tail atomic.Pointer[lfNode]
	size atomic.Int64
}

type lfNode struct {
	next atomic.Pointer[lfNode]
	c    *Component
}

// newLFQueue returns an empty queue.
func newLFQueue() *lfQueue {
	q := &lfQueue{}
	dummy := &lfNode{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// push enqueues a component at the tail.
func (q *lfQueue) push(c *Component) {
	n := &lfNode{c: c}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue
		}
		if next != nil {
			// Tail is lagging: help advance it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			q.size.Add(1)
			return
		}
	}
}

// pop dequeues a component from the head, or returns nil if empty. Safe for
// concurrent callers (the owning worker and thieves).
func (q *lfQueue) pop() *Component {
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if next == nil {
			return nil // empty
		}
		if head == tail {
			// Tail is lagging behind head: help advance it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		// Note: next.c is deliberately not cleared after a successful CAS;
		// the node becomes the new dummy and drops the reference on the
		// following pop. Clearing it would race with concurrent poppers
		// that read it before their (failing) CAS.
		c := next.c
		if q.head.CompareAndSwap(head, next) {
			q.size.Add(-1)
			return c
		}
	}
}

// approxLen returns the approximate queue length (exact when quiescent).
func (q *lfQueue) approxLen() int64 {
	n := q.size.Load()
	if n < 0 {
		return 0
	}
	return n
}
