package core

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

type telEvent struct{ N int }

var telPort = NewPortType("TelPP", Request[telEvent]())

// telWorld builds a runtime with one sink component handling telEvent, and
// returns the runtime, the sink component, and its provided port.
func telWorld(t *testing.T, opts ...Option) (*Runtime, *Component, *Port) {
	t.Helper()
	rt := newTestRuntime(t, opts...)
	var sink *Component
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		sink = ctx.Create("sink", SetupFunc(func(cx *Ctx) {
			p := cx.Provides(telPort)
			Subscribe(cx, p, func(telEvent) {})
		}))
	}))
	waitQuiet(t, rt)
	return rt, sink, sink.Provided(telPort)
}

func TestComponentCountersAndLatency(t *testing.T) {
	rt, sink, port := telWorld(t, WithLatencySampling(1))

	const events = 200
	for i := 0; i < events; i++ {
		if err := TriggerOn(port, telEvent{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	waitQuiet(t, rt)

	m := sink.Metrics()
	if m.Handled < events {
		t.Fatalf("handled %d, want >= %d", m.Handled, events)
	}
	if m.Latency.Samples < events {
		t.Fatalf("latency samples %d, want >= %d (sampling every 1)", m.Latency.Samples, events)
	}
	var bucketSum uint64
	for _, c := range m.Latency.Buckets {
		bucketSum += c
	}
	if bucketSum != m.Latency.Samples {
		t.Fatalf("bucket sum %d != samples %d", bucketSum, m.Latency.Samples)
	}
	if m.Path != sink.Path() {
		t.Fatalf("path %q, want %q", m.Path, sink.Path())
	}
}

func TestLatencySamplingDisabled(t *testing.T) {
	rt, sink, port := telWorld(t, WithLatencySampling(0))
	for i := 0; i < 100; i++ {
		if err := TriggerOn(port, telEvent{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	waitQuiet(t, rt)
	if s := sink.Metrics().Latency.Samples; s != 0 {
		t.Fatalf("latency samples %d with sampling disabled, want 0", s)
	}
	if every := rt.MetricsSnapshot().LatencySampleEvery; every != 0 {
		t.Fatalf("LatencySampleEvery %d, want 0", every)
	}
}

func TestTriggerCounter(t *testing.T) {
	rt := newTestRuntime(t)
	var src *Component
	var srcCtx *Ctx
	var srcPort *Port
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		src = ctx.Create("src", SetupFunc(func(cx *Ctx) {
			srcCtx = cx
			srcPort = cx.Requires(telPort) // requests flow out of a required port
		}))
	}))
	waitQuiet(t, rt)
	before := src.Metrics().Triggers
	srcCtx.Trigger(telEvent{}, srcPort)
	waitQuiet(t, rt)
	if got := src.Metrics().Triggers; got != before+1 {
		t.Fatalf("triggers %d, want %d", got, before+1)
	}
}

func TestFaultCounters(t *testing.T) {
	rt := newTestRuntime(t)
	var bomb *Component
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		bomb = ctx.Create("bomb", SetupFunc(func(cx *Ctx) {
			p := cx.Provides(telPort)
			Subscribe(cx, p, func(telEvent) { panic("boom") })
		}))
	}))
	waitQuiet(t, rt)

	if err := TriggerOn(bomb.Provided(telPort), telEvent{}); err != nil {
		t.Fatal(err)
	}
	waitQuiet(t, rt)

	if got := bomb.Metrics().Faults; got != 1 {
		t.Fatalf("component faults %d, want 1", got)
	}
	if got := rt.MetricsSnapshot().Faults; got != 1 {
		t.Fatalf("runtime faults %d, want 1", got)
	}
}

func TestSchedulerMetrics(t *testing.T) {
	rt, _, port := telWorld(t)
	const events = 500
	for i := 0; i < events; i++ {
		if err := TriggerOn(port, telEvent{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	waitQuiet(t, rt)

	s := rt.MetricsSnapshot().Scheduler
	if s.Workers != 2 {
		t.Fatalf("workers %d, want 2", s.Workers)
	}
	if s.Executed < events {
		t.Fatalf("executed %d, want >= %d", s.Executed, events)
	}
	if len(s.PerWorker) != 2 {
		t.Fatalf("per-worker entries %d, want 2", len(s.PerWorker))
	}
	var perWorker uint64
	for _, w := range s.PerWorker {
		perWorker += w.Executed
	}
	if perWorker != s.Executed {
		t.Fatalf("per-worker executed sum %d != aggregate %d", perWorker, s.Executed)
	}
	// Every activation is a local pop or a steal (a steal executes the
	// first stolen component directly; the rest are re-popped locally), and
	// each activation executes between 1 and maxExecBatch events.
	if acts := s.LocalPops + s.Steals; s.Executed < acts || s.Executed > acts*maxExecBatch {
		t.Fatalf("executed %d outside [%d, %d] for %d local pops + %d steals at batch %d",
			s.Executed, acts, acts*maxExecBatch, s.LocalPops, s.Steals, maxExecBatch)
	}
	if s.MaxDequeDepth < 1 {
		t.Fatalf("max deque depth %d, want >= 1", s.MaxDequeDepth)
	}
}

func TestMetricsSnapshotComponents(t *testing.T) {
	rt, sink, port := telWorld(t)
	for i := 0; i < 10; i++ {
		if err := TriggerOn(port, telEvent{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	waitQuiet(t, rt)

	snap := rt.MetricsSnapshot()
	if snap.LiveComponents < 2 {
		t.Fatalf("live components %d, want >= 2 (root + sink)", snap.LiveComponents)
	}
	if len(snap.Components) != int(snap.LiveComponents) {
		t.Fatalf("%d component stats for %d live components", len(snap.Components), snap.LiveComponents)
	}
	for i := 1; i < len(snap.Components); i++ {
		if snap.Components[i-1].Path > snap.Components[i].Path {
			t.Fatalf("components not sorted by path: %q > %q",
				snap.Components[i-1].Path, snap.Components[i].Path)
		}
	}
	found := false
	for _, c := range snap.Components {
		if c.Path == sink.Path() {
			found = true
			if c.Handled < 10 {
				t.Fatalf("sink handled %d, want >= 10", c.Handled)
			}
		}
	}
	if !found {
		t.Fatalf("snapshot missing component %q", sink.Path())
	}
	if snap.RouteCache.Tables < 1 || snap.RouteCache.Plans < 1 {
		t.Fatalf("route cache tables=%d plans=%d, want >= 1 each after traffic",
			snap.RouteCache.Tables, snap.RouteCache.Plans)
	}
	if snap.RouteCache.Builds < 1 {
		t.Fatalf("route plan builds %d, want >= 1", snap.RouteCache.Builds)
	}
	if snap.Trace.Enabled {
		t.Fatal("trace reported enabled without a sink")
	}
}

func TestMetricsSnapshotAfterDestroy(t *testing.T) {
	rt := newTestRuntime(t)
	var rootCtx *Ctx
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) { rootCtx = ctx }))
	waitQuiet(t, rt)

	child := rootCtx.Create("ephemeral", SetupFunc(func(cx *Ctx) {}))
	rootCtx.Start(child)
	waitQuiet(t, rt)
	if !snapshotHasPath(rt, child.Path()) {
		t.Fatalf("snapshot missing live child %q", child.Path())
	}
	rootCtx.Destroy(child)
	waitQuiet(t, rt)
	if snapshotHasPath(rt, child.Path()) {
		t.Fatalf("snapshot still lists destroyed child %q", child.Path())
	}
}

func snapshotHasPath(rt *Runtime, path string) bool {
	for _, c := range rt.MetricsSnapshot().Components {
		if c.Path == path {
			return true
		}
	}
	return false
}

// --- trace ring -------------------------------------------------------------

func TestTraceRingWraparound(t *testing.T) {
	r := NewTraceRing(16)
	if r.Cap() != 16 {
		t.Fatalf("cap %d, want 16", r.Cap())
	}
	et := reflect.TypeOf(telEvent{})
	for i := 0; i < 40; i++ {
		r.Record(TraceRecord{Event: et, At: time.Unix(int64(i), 0)})
	}
	if r.Recorded() != 40 {
		t.Fatalf("recorded %d, want 40", r.Recorded())
	}
	if r.Len() != 16 {
		t.Fatalf("len %d, want 16", r.Len())
	}
	snap := r.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("snapshot has %d records, want 16", len(snap))
	}
	for i, rec := range snap {
		want := uint64(24 + i) // oldest retained after wrapping is 40-16
		if rec.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, rec.Seq, want)
		}
	}
}

func TestTraceRingBelowCapacity(t *testing.T) {
	r := NewTraceRing(0) // rounds up to minimum 16
	r.Record(TraceRecord{})
	r.Record(TraceRecord{})
	if r.Len() != 2 {
		t.Fatalf("len %d, want 2", r.Len())
	}
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Seq != 0 || snap[1].Seq != 1 {
		t.Fatalf("snapshot %v, want seqs 0,1", snap)
	}
}

// TestTraceRingConcurrent hammers one ring with concurrent writers and
// snapshot readers; under -race this proves the slot publication protocol.
func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(64)
	const writers = 4
	const perWriter = 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			for i := 1; i < len(snap); i++ {
				if snap[i].Seq <= snap[i-1].Seq {
					t.Errorf("snapshot not strictly ordered: %d then %d", snap[i-1].Seq, snap[i].Seq)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(TraceRecord{Handlers: w})
			}
		}(w)
	}
	// Wait for writers by record count, then release the reader.
	for r.Recorded() < uint64(writers*perWriter) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if r.Recorded() != uint64(writers*perWriter) {
		t.Fatalf("recorded %d, want %d", r.Recorded(), writers*perWriter)
	}
}

func TestRuntimeTraceSink(t *testing.T) {
	ring := NewTraceRing(128)
	rt, sink, port := telWorld(t, WithTraceSink(ring))
	for i := 0; i < 20; i++ {
		if err := TriggerOn(port, telEvent{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	waitQuiet(t, rt)

	snap := rt.MetricsSnapshot()
	if !snap.Trace.Enabled {
		t.Fatal("trace not reported enabled")
	}
	if snap.Trace.Capacity != 128 {
		t.Fatalf("trace capacity %d, want 128", snap.Trace.Capacity)
	}
	if snap.Trace.Records < 20 {
		t.Fatalf("trace records %d, want >= 20", snap.Trace.Records)
	}
	et := reflect.TypeOf(telEvent{})
	matched := 0
	for _, rec := range ring.Snapshot() {
		if rec.Component == sink && rec.Event == et {
			matched++
			if rec.Handlers != 1 {
				t.Fatalf("record %v has %d handlers, want 1", rec, rec.Handlers)
			}
			if rec.Handler == "" {
				t.Fatalf("record %v missing handler name", rec)
			}
		}
	}
	if matched != 20 {
		t.Fatalf("found %d telEvent records for sink, want 20", matched)
	}
}

// --- route cache cap --------------------------------------------------------

// capEvent types: distinct dynamic event types to churn the routing table.
type capEventA struct{ telEvent }
type capEventB struct{ telEvent }
type capEventC struct{ telEvent }
type capEventD struct{ telEvent }
type capEventE struct{ telEvent }
type capEventF struct{ telEvent }

var capPort = NewPortType("CapPP",
	Request[capEventA](), Request[capEventB](), Request[capEventC](),
	Request[capEventD](), Request[capEventE](), Request[capEventF](),
)

func TestRouteCacheCapReset(t *testing.T) {
	old := routeCacheCap
	routeCacheCap = 4
	defer func() { routeCacheCap = old }()

	rt := newTestRuntime(t)
	var sink *Component
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		sink = ctx.Create("sink", SetupFunc(func(cx *Ctx) {
			p := cx.Provides(capPort)
			Subscribe(cx, p, func(capEventA) {})
			Subscribe(cx, p, func(capEventB) {})
			Subscribe(cx, p, func(capEventC) {})
			Subscribe(cx, p, func(capEventD) {})
			Subscribe(cx, p, func(capEventE) {})
			Subscribe(cx, p, func(capEventF) {})
		}))
	}))
	waitQuiet(t, rt)

	port := sink.Provided(capPort)
	events := []Event{capEventA{}, capEventB{}, capEventC{}, capEventD{}, capEventE{}, capEventF{}}
	for round := 0; round < 3; round++ {
		for _, ev := range events {
			if err := TriggerOn(port, ev); err != nil {
				t.Fatal(err)
			}
			waitQuiet(t, rt) // serialize so each type caches before the next
		}
	}

	snap := rt.MetricsSnapshot()
	if snap.RouteCache.Resets == 0 {
		t.Fatal("no route cache resets with 6 event types and cap 4")
	}
	if snap.RouteCache.Capacity != 4 {
		t.Fatalf("reported capacity %d, want 4", snap.RouteCache.Capacity)
	}
	// The cap must hold for every published table.
	if snap.RouteCache.Tables > 0 && snap.RouteCache.Plans > snap.RouteCache.Tables*routeCacheCap {
		t.Fatalf("plans %d exceed tables %d * cap %d",
			snap.RouteCache.Plans, snap.RouteCache.Tables, routeCacheCap)
	}
	// Delivery still works after resets.
	if err := TriggerOn(port, capEventA{}); err != nil {
		t.Fatal(err)
	}
	waitQuiet(t, rt)
	if sink.Metrics().Handled < uint64(len(events)*3)+1 {
		t.Fatalf("handled %d after resets, want >= %d", sink.Metrics().Handled, len(events)*3+1)
	}
}

func TestBucketBounds(t *testing.T) {
	if BucketBoundNS(0) != 1 {
		t.Fatalf("bucket 0 bound %d, want 1", BucketBoundNS(0))
	}
	if BucketBoundNS(10) != 1024 {
		t.Fatalf("bucket 10 bound %d, want 1024", BucketBoundNS(10))
	}
	if BucketBoundNS(64) != 1<<62 {
		t.Fatalf("bucket 64 bound %d, want 2^62", BucketBoundNS(64))
	}
	var h latHistogram
	h.observe(0)
	h.observe(3) // bits.Len64(3)=2 -> bucket 2
	h.observe(time.Duration(1) << 40)
	h.observe(-5) // clamped to 0
	s := h.snapshot()
	if s.Samples != 4 {
		t.Fatalf("samples %d, want 4", s.Samples)
	}
	if s.Buckets[0] != 2 { // two zero-duration observations
		t.Fatalf("bucket 0 count %d, want 2", s.Buckets[0])
	}
	if s.Buckets[2] != 1 {
		t.Fatalf("bucket 2 count %d, want 1", s.Buckets[2])
	}
	if s.Buckets[LatencyBuckets-1] != 1 { // 2^40 ns clamps into the last bucket
		t.Fatalf("last bucket count %d, want 1", s.Buckets[LatencyBuckets-1])
	}
}

func TestWorkerParkCounter(t *testing.T) {
	rt, _, port := telWorld(t)
	// Trigger bursts with gaps so workers park between them.
	for burst := 0; burst < 3; burst++ {
		for i := 0; i < 10; i++ {
			if err := TriggerOn(port, telEvent{N: i}); err != nil {
				t.Fatal(err)
			}
		}
		waitQuiet(t, rt)
		time.Sleep(10 * time.Millisecond)
	}
	s := rt.MetricsSnapshot().Scheduler
	if s.Parks == 0 {
		t.Fatal("no parks recorded across idle gaps")
	}
}
