package core

import (
	"sync"
	"sync/atomic"
)

// wsDeque is the per-worker ready queue of the work-stealing scheduler: a
// growable array-based FIFO in the style of the Chase–Lev deque, adapted to
// this runtime's requirements:
//
//   - Consumption is FIFO from the top index for owner and thieves alike
//     (the paper's scheduler interleaves components fairly; LIFO owner pop
//     would starve old ready components under a self-rescheduling backlog).
//     A consumer claims entries by CASing top forward — one CAS per pop and,
//     crucially, ONE CAS for an entire stolen range, which is what makes
//     batch stealing O(1) synchronization regardless of batch size.
//   - Producers reserve slots under a tiny per-deque mutex. The owning
//     worker is the only steady-state producer (worker-local submission), so
//     the lock is uncontended and costs a single uncontended CAS pair;
//     serializing producers is what lets external goroutines (network,
//     timers, tests) push to any deque without goroutine-local state, which
//     Go cannot express. Consumers never take the lock.
//   - Entries are *Component pointers. The circular array is reused and
//     grown geometrically, so the steady-state push/pop path allocates
//     nothing (unlike the previous Michael–Scott queue, which allocated one
//     node per Schedule).
//
// Safety of the unlocked consume path: a consumer reads slot t and then
// CASes top from t to t+k. A producer may only overwrite slot (t mod size)
// with index t' = t+size after observing top > t'−size = t (the fullness
// check under the producer lock), and top never decreases, so any consumer
// whose read raced such an overwrite is guaranteed to fail its CAS and
// retry. Grown arrays are published atomically and old arrays are never
// written again, so a consumer holding a stale array pointer still reads
// valid entries. Claimed slots are not cleared (clearing would race with
// ring reuse); a slot keeps its component referenced until overwritten,
// which at most delays GC of an already-live pointer.
type wsDeque struct {
	top    atomic.Int64 // next index to consume; CASed by all consumers
	_      [56]byte     // keep the hot consume index off the producer line
	bottom atomic.Int64 // next index to fill; advanced under pushMu
	arr    atomic.Pointer[wsArray]
	pushMu sync.Mutex
	// maxDepth is the deque's depth high-water mark, for telemetry. Only
	// producers update it (under pushMu, so a load+store pair suffices —
	// no CAS loop); readers load it racily.
	maxDepth atomic.Int64
}

// wsArray is one immutable-size circular backing array.
type wsArray struct {
	mask  int64 // len(slots)-1; len is a power of two
	slots []atomic.Pointer[Component]
}

func newWSArray(n int64) *wsArray {
	return &wsArray{mask: n - 1, slots: make([]atomic.Pointer[Component], n)}
}

func newWSDeque() *wsDeque {
	d := &wsDeque{}
	d.arr.Store(newWSArray(64))
	return d
}

// push appends a ready component at the bottom. Safe for any goroutine;
// producers serialize on pushMu (uncontended in the worker-local steady
// state).
func (d *wsDeque) push(c *Component) {
	d.pushMu.Lock()
	b := d.bottom.Load()
	t := d.top.Load()
	a := d.arr.Load()
	if b-t >= int64(len(a.slots)) {
		a = d.grow(a, t, b)
	}
	a.slots[b&a.mask].Store(c)
	d.bottom.Store(b + 1)
	if depth := b + 1 - t; depth > d.maxDepth.Load() {
		d.maxDepth.Store(depth)
	}
	d.pushMu.Unlock()
}

// pushN appends a batch of ready components under ONE producer-lock
// acquisition — the submission path of a batched fan-out, where dozens of
// components become ready from a single broadcast. Entries keep their
// slice order, so FIFO consumption preserves readiness order.
func (d *wsDeque) pushN(cs []*Component) {
	if len(cs) == 0 {
		return
	}
	d.pushMu.Lock()
	b := d.bottom.Load()
	t := d.top.Load()
	a := d.arr.Load()
	n := int64(len(cs))
	for b-t+n > int64(len(a.slots)) {
		a = d.grow(a, t, b)
	}
	for i, c := range cs {
		a.slots[(b+int64(i))&a.mask].Store(c)
	}
	d.bottom.Store(b + n)
	if depth := b + n - t; depth > d.maxDepth.Load() {
		d.maxDepth.Store(depth)
	}
	d.pushMu.Unlock()
}

// grow doubles the backing array, copying the live index range. Called with
// pushMu held. The old array is never written again, so concurrent
// consumers holding it keep reading valid entries; they pick up the new
// array on their next load.
func (d *wsDeque) grow(old *wsArray, t, b int64) *wsArray {
	na := newWSArray(int64(len(old.slots)) * 2)
	for i := t; i < b; i++ {
		na.slots[i&na.mask].Store(old.slots[i&old.mask].Load())
	}
	d.arr.Store(na)
	return na
}

// pop claims and returns the oldest entry (FIFO), or nil when empty. Safe
// for concurrent consumers; it is steal with a batch of one.
func (d *wsDeque) pop() *Component {
	for {
		t := d.top.Load()
		if t >= d.bottom.Load() {
			return nil
		}
		a := d.arr.Load()
		c := a.slots[t&a.mask].Load()
		if d.top.CompareAndSwap(t, t+1) {
			return c
		}
	}
}

// stealInto claims up to max oldest entries in ONE top CAS, appending them
// to buf (which is returned re-sliced; callers keep it worker-local so the
// steal path does not allocate in steady state). Entries are read before
// the CAS: if any read raced a slot overwrite, top has necessarily moved
// and the CAS fails, discarding the batch (see type comment).
func (d *wsDeque) stealInto(buf []*Component, max int64) []*Component {
	for attempt := 0; attempt < 4; attempt++ {
		t := d.top.Load()
		b := d.bottom.Load()
		n := b - t
		if n <= 0 {
			return buf[:0]
		}
		k := max
		if k > n {
			k = n
		}
		if k < 1 {
			k = 1
		}
		a := d.arr.Load()
		buf = buf[:0]
		for i := int64(0); i < k; i++ {
			buf = append(buf, a.slots[(t+i)&a.mask].Load())
		}
		if d.top.CompareAndSwap(t, t+k) {
			return buf
		}
	}
	return buf[:0]
}

// size returns the apparent number of queued entries (exact when
// quiescent, a racy lower/upper estimate otherwise).
func (d *wsDeque) size() int64 {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return n
}
