package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// WorkStealingScheduler is the production scheduler: a pool of worker
// goroutines, each with a dedicated array-based work-stealing deque of
// ready components (see wsDeque). Workers process one event in one
// component at a time; one component is never processed by multiple workers
// simultaneously (the runtime's ready/busy protocol guarantees a component
// is handed to the scheduler at most once until it goes idle again).
//
// Submission is two-tier. Events triggered from inside a worker's handler
// execution push the readied component onto that worker's own deque
// (worker-local submission — the component's queue and the deque slot stay
// in the worker's cache). External submissions (network receive loops,
// timers, tests) go through the placement policy, round-robin by default.
//
// A worker that runs out of ready components engages in work stealing: the
// thief contacts the victim with the highest number of ready components and
// steals a batch of them — in a single CAS, regardless of batch size.
// Batching shows a considerable performance improvement over stealing
// single components (paper §3). The default batch policy is adaptive: half
// of a deep victim, shrinking toward a single component as the victim deque
// drains (see adaptiveStealBatch); the policy is configurable to make the
// paper's batch-versus-single claim measurable (see
// BenchmarkC3StealBatching).
type WorkStealingScheduler struct {
	workers []*worker
	rr      atomic.Uint64 // placement sequence for external submissions
	// stealBatch, when non-nil, overrides how many components to steal from
	// a victim queue of length n (WithStealBatch). When nil the adaptive
	// default policy applies.
	stealBatch func(n int64) int64
	// placement picks the worker queue for the seq-th external submission.
	// The default is round-robin; benchmarks use skewed placements to
	// measure the stealing path under imbalance.
	placement func(seq uint64, workers int) int

	parkMu   sync.Mutex
	parkCond *sync.Cond
	idlers   atomic.Int64
	stopped  atomic.Bool
	wg       sync.WaitGroup
}

// workerStats are one worker's telemetry counters, padded to a full cache
// line so the hot executed/localPops adds of adjacent workers never
// false-share (workers are separate heap objects, but the allocator gives
// no line-alignment guarantee between them).
type workerStats struct {
	executed     atomic.Uint64 // events executed
	localPops    atomic.Uint64 // components consumed from own deque
	steals       atomic.Uint64 // successful steal operations
	stealMisses  atomic.Uint64 // steal attempts that found/claimed nothing
	stolen       atomic.Uint64 // components claimed by steals
	parks        atomic.Uint64 // times the worker slept for lack of work
	stealShrinks atomic.Uint64 // steals the adaptive policy shrank below half
	_            [8]byte       // pad 7×8 counter bytes to 64
}

// worker is one scheduler thread with its dedicated ready deque.
type worker struct {
	id    int
	deque *wsDeque
	sched *WorkStealingScheduler
	// stealBuf is the worker-local scratch the thief reads a stolen range
	// into before committing the steal; reused across steals so the steal
	// path allocates nothing in steady state.
	stealBuf []*Component
	// fanout is the worker's scratch batch for batched fan-out delivery of
	// events triggered from handlers executing on this worker (see
	// acquireFanoutBatch).
	fanout fanoutBatch
	stats  workerStats
}

// SchedulerOption configures a WorkStealingScheduler.
type SchedulerOption func(*WorkStealingScheduler)

// WithStealBatch overrides the number of components stolen from a victim
// with queue length n. The paper's default is n/2 ("a batch of half of its
// ready components"); WithStealBatch(func(int64) int64 { return 1 })
// reproduces the unbatched baseline.
func WithStealBatch(f func(n int64) int64) SchedulerOption {
	return func(s *WorkStealingScheduler) { s.stealBatch = f }
}

// WithPlacement overrides which worker queue receives the seq-th externally
// submitted ready component (default: round-robin). Benchmarks use
// single-queue placement to exercise work stealing under maximal imbalance.
func WithPlacement(f func(seq uint64, workers int) int) SchedulerOption {
	return func(s *WorkStealingScheduler) { s.placement = f }
}

// NewWorkStealingScheduler creates a scheduler with the given number of
// workers; n <= 0 selects runtime.NumCPU().
func NewWorkStealingScheduler(n int, opts ...SchedulerOption) *WorkStealingScheduler {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	s := &WorkStealingScheduler{
		placement: func(seq uint64, workers int) int { return int(seq % uint64(workers)) },
	}
	s.parkCond = sync.NewCond(&s.parkMu)
	for _, o := range opts {
		o(s)
	}
	for i := 0; i < n; i++ {
		w := &worker{id: i, deque: newWSDeque(), sched: s}
		w.fanout.owner = w
		s.workers = append(s.workers, w)
	}
	return s
}

var _ Scheduler = (*WorkStealingScheduler)(nil)

// Workers returns the number of worker goroutines.
func (s *WorkStealingScheduler) Workers() int { return len(s.workers) }

// is reports whether sch is this scheduler. Component.wake uses it to
// validate a worker locality hint against the runtime's scheduler before
// bypassing placement (a process may host many runtimes).
func (s *WorkStealingScheduler) is(sch Scheduler) bool {
	ws, ok := sch.(*WorkStealingScheduler)
	return ok && ws == s
}

// Schedule places a ready component on a worker deque and wakes a parked
// worker if any. This is the external submission path; worker-local
// submission bypasses it via submitLocal.
func (s *WorkStealingScheduler) Schedule(c *Component) {
	if s.stopped.Load() {
		return
	}
	w := s.workers[s.placement(s.rr.Add(1), len(s.workers))]
	w.deque.push(c)
	s.wakeIdler()
}

// minBatchChunk is the smallest slice of a batched submission worth a
// separate deque (and producer-lock acquisition): tiny batches go to one
// deque whole rather than paying per-worker locks for two-entry chunks.
const minBatchChunk = 4

// ScheduleBatch places a batch of ready components across the worker deques
// — the external submission path of a batched fan-out. Dumping the whole
// batch on one deque would serialize its consumption behind steal CASes on
// a single hot top index, so the batch is split into contiguous chunks, one
// pushN (one producer-lock acquisition) per chunk, with the placement
// policy choosing each chunk's deque. Parked workers are woken once for the
// whole batch.
func (s *WorkStealingScheduler) ScheduleBatch(cs []*Component) {
	if len(cs) == 0 || s.stopped.Load() {
		return
	}
	s.scheduleChunked(cs, nil)
}

// scheduleChunked distributes a ready batch over the deques in chunk-sized
// pushN calls. When local is non-nil (worker-local batched submission) the
// first chunk stays on that worker's own deque; the rest go through the
// placement policy like external submissions.
func (s *WorkStealingScheduler) scheduleChunked(cs []*Component, local *worker) {
	nw := len(s.workers)
	per := (len(cs) + nw - 1) / nw
	if per < minBatchChunk {
		per = minBatchChunk
	}
	for i := 0; i < len(cs); {
		j := i + per
		if j > len(cs) {
			j = len(cs)
		}
		w := local
		if w == nil {
			w = s.workers[s.placement(s.rr.Add(1), nw)]
		} else {
			local = nil
		}
		w.deque.pushN(cs[i:j])
		i = j
	}
	s.wakeIdlers(len(cs))
}

// submitLocal pushes a component readied during this worker's handler
// execution onto the worker's own deque.
func (w *worker) submitLocal(c *Component) {
	s := w.sched
	if s.stopped.Load() {
		return
	}
	w.deque.push(c)
	s.wakeIdler()
}

// submitLocalBatch distributes a batch of components readied during this
// worker's handler execution: the first chunk keeps the triggering worker's
// locality, the remainder spreads across the other deques so a broadcast's
// consumers start in parallel instead of queueing behind one deque.
func (w *worker) submitLocalBatch(cs []*Component) {
	s := w.sched
	if len(cs) == 0 || s.stopped.Load() {
		return
	}
	s.scheduleChunked(cs, w)
}

// wakeIdler signals one parked worker, if any.
func (s *WorkStealingScheduler) wakeIdler() {
	if s.idlers.Load() > 0 {
		s.parkMu.Lock()
		s.parkCond.Signal()
		s.parkMu.Unlock()
	}
}

// wakeIdlers wakes parked workers after n components became ready at once:
// one Signal for a single unit of work, one Broadcast for a batch. A single
// Broadcast costs less than n Signals and over-waking is self-correcting —
// a worker that finds nothing to steal parks again.
func (s *WorkStealingScheduler) wakeIdlers(n int) {
	if s.idlers.Load() <= 0 {
		return
	}
	s.parkMu.Lock()
	if n > 1 {
		s.parkCond.Broadcast()
	} else {
		s.parkCond.Signal()
	}
	s.parkMu.Unlock()
}

// Start launches the worker goroutines.
func (s *WorkStealingScheduler) Start() {
	for _, w := range s.workers {
		s.wg.Add(1)
		go func(w *worker) {
			defer s.wg.Done()
			w.run()
		}(w)
	}
}

// Stop shuts down all workers and waits for them to exit. Components still
// queued are not executed.
func (s *WorkStealingScheduler) Stop() {
	if s.stopped.Swap(true) {
		return
	}
	s.parkMu.Lock()
	s.parkCond.Broadcast()
	s.parkMu.Unlock()
	s.wg.Wait()
}

// Stats returns per-worker counters (events executed, steal operations,
// components stolen), for tests and monitoring.
func (s *WorkStealingScheduler) Stats() (executed, steals, stolen uint64) {
	for _, w := range s.workers {
		executed += w.stats.executed.Load()
		steals += w.stats.steals.Load()
		stolen += w.stats.stolen.Load()
	}
	return executed, steals, stolen
}

// Backlog returns the total components currently queued across worker
// deques — a cheap, allocation-free pressure signal for admission
// control (the full SchedulerMetrics snapshot allocates its per-worker
// slice). Read racily; the exact value only ever gates a shed decision.
func (s *WorkStealingScheduler) Backlog() int64 {
	var n int64
	for _, w := range s.workers {
		n += w.deque.size()
	}
	return n
}

// SchedulerMetrics aggregates the padded per-worker counters into one
// snapshot (implements SchedulerMetricsSource). Counters are read racily;
// they are monotone, so a snapshot is a consistent lower bound.
func (s *WorkStealingScheduler) SchedulerMetrics() SchedulerStats {
	st := SchedulerStats{Workers: len(s.workers)}
	st.PerWorker = make([]WorkerStats, 0, len(s.workers))
	for _, w := range s.workers {
		ws := WorkerStats{
			ID:            w.id,
			Executed:      w.stats.executed.Load(),
			LocalPops:     w.stats.localPops.Load(),
			Steals:        w.stats.steals.Load(),
			StealMisses:   w.stats.stealMisses.Load(),
			Stolen:        w.stats.stolen.Load(),
			Parks:         w.stats.parks.Load(),
			StealShrinks:  w.stats.stealShrinks.Load(),
			MaxDequeDepth: w.deque.maxDepth.Load(),
			DequeDepth:    w.deque.size(),
		}
		st.Executed += ws.Executed
		st.LocalPops += ws.LocalPops
		st.Steals += ws.Steals
		st.StealMisses += ws.StealMisses
		st.Stolen += ws.Stolen
		st.Parks += ws.Parks
		st.StealShrinks += ws.StealShrinks
		if ws.MaxDequeDepth > st.MaxDequeDepth {
			st.MaxDequeDepth = ws.MaxDequeDepth
		}
		st.PerWorker = append(st.PerWorker, ws)
	}
	return st
}

var _ SchedulerMetricsSource = (*WorkStealingScheduler)(nil)

// run is the worker main loop: drain own deque; steal when empty; park when
// there is nothing to steal.
func (w *worker) run() {
	s := w.sched
	for {
		if s.stopped.Load() {
			return
		}
		if c := w.deque.pop(); c != nil {
			w.stats.localPops.Add(1)
			w.execute(c)
			continue
		}
		if w.steal() {
			continue
		}
		// Nothing found: park until new work is scheduled anywhere.
		s.parkMu.Lock()
		s.idlers.Add(1)
		// Re-check under the idler mark to close the wakeup race: a
		// Schedule call that saw idlers>0 will signal after we Wait; one
		// that ran before we marked ourselves idle is caught by this scan.
		if w.anyWorkVisible() || s.stopped.Load() {
			s.idlers.Add(-1)
			s.parkMu.Unlock()
			continue
		}
		w.stats.parks.Add(1)
		s.parkCond.Wait()
		s.idlers.Add(-1)
		s.parkMu.Unlock()
	}
}

// maxExecBatch bounds how many queued events one scheduler activation may
// run in a component before it returns to the ready queue. Batching
// amortizes the activation overhead (deque round trip, busy/idle
// transitions, wake) across a backlog — the receiving side of a batched
// fan-out burst — while the bound keeps a busy component from starving the
// rest of the ready set (Kompics' maxEventExecuteNumber plays the same
// role).
const maxExecBatch = 8

// execute runs up to maxExecBatch events of component c, exposing this
// worker to the component as the locality hint for events its handlers
// trigger.
func (w *worker) execute(c *Component) {
	c.curWorker.Store(w)
	n := c.ExecuteBatch(maxExecBatch)
	c.curWorker.Store(nil)
	w.stats.executed.Add(uint64(n))
}

// anyWorkVisible reports whether any worker deque appears non-empty.
func (w *worker) anyWorkVisible() bool {
	for _, v := range w.sched.workers {
		if v.deque.size() > 0 {
			return true
		}
	}
	return false
}

// steal finds the victim with the most ready components and claims a batch
// of them (per the batch policy, default half) in one CAS, pushing all but
// the first onto this worker's own deque and executing the first. Returns
// false when no victim had work.
func (w *worker) steal() bool {
	s := w.sched
	var victim *worker
	var max int64
	for _, v := range s.workers {
		if v == w {
			continue
		}
		if n := v.deque.size(); n > max {
			max, victim = n, v
		}
	}
	if victim == nil {
		w.stats.stealMisses.Add(1)
		return false
	}
	var n int64
	shrunk := false
	if s.stealBatch != nil {
		n = s.stealBatch(max)
	} else {
		n, shrunk = adaptiveStealBatch(max, victim.deque.maxDepth.Load())
	}
	if n < 1 {
		n = 1
	}
	w.stealBuf = victim.deque.stealInto(w.stealBuf[:0], n)
	got := len(w.stealBuf)
	if got == 0 {
		w.stats.stealMisses.Add(1)
		return false
	}
	w.stats.steals.Add(1)
	w.stats.stolen.Add(uint64(got))
	if shrunk {
		w.stats.stealShrinks.Add(1)
	}
	for _, c := range w.stealBuf[1:] {
		w.deque.push(c)
	}
	first := w.stealBuf[0]
	// Drop stolen references from the scratch buffer promptly; the buffer
	// itself is retained for reuse.
	for i := range w.stealBuf {
		w.stealBuf[i] = nil
	}
	w.execute(first)
	return true
}

// adaptiveStealBatch is the default steal batch policy: steal half of a deep
// victim (the paper's batched steal), but shrink toward stealing a single
// component as the victim's current depth falls relative to its observed
// high-water mark. Near-empty deques are in their drain phase; taking half
// of the remainder would mostly ping-pong components (and their cache
// lines) between workers for no throughput gain. The returned shrunk flag
// reports whether the policy chose less than the half-batch default, for
// the stealShrinks telemetry counter.
func adaptiveStealBatch(depth, highWater int64) (n int64, shrunk bool) {
	const shallowFloor = 4
	if depth <= shallowFloor {
		return 1, depth/2 > 1
	}
	if depth <= highWater>>3 {
		// Well below the high-water mark: the victim is draining. Take a
		// quarter so the thief helps without stripping the victim's
		// locality.
		return depth / 4, true
	}
	return depth / 2, false
}
