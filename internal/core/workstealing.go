package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// WorkStealingScheduler is the production scheduler: a pool of worker
// goroutines, each with a dedicated array-based work-stealing deque of
// ready components (see wsDeque). Workers process one event in one
// component at a time; one component is never processed by multiple workers
// simultaneously (the runtime's ready/busy protocol guarantees a component
// is handed to the scheduler at most once until it goes idle again).
//
// Submission is two-tier. Events triggered from inside a worker's handler
// execution push the readied component onto that worker's own deque
// (worker-local submission — the component's queue and the deque slot stay
// in the worker's cache). External submissions (network receive loops,
// timers, tests) go through the placement policy, round-robin by default.
//
// A worker that runs out of ready components engages in work stealing: the
// thief contacts the victim with the highest number of ready components and
// steals a batch of half of them — in a single CAS, regardless of batch
// size. Batching shows a considerable performance improvement over stealing
// single components (paper §3); the batch size policy is configurable to
// make that claim measurable (see BenchmarkC3StealBatching).
type WorkStealingScheduler struct {
	workers []*worker
	rr      atomic.Uint64 // placement sequence for external submissions
	// stealBatch computes how many components to steal from a victim queue
	// of length n. The default steals half.
	stealBatch func(n int64) int64
	// placement picks the worker queue for the seq-th external submission.
	// The default is round-robin; benchmarks use skewed placements to
	// measure the stealing path under imbalance.
	placement func(seq uint64, workers int) int

	parkMu   sync.Mutex
	parkCond *sync.Cond
	idlers   atomic.Int64
	stopped  atomic.Bool
	wg       sync.WaitGroup
}

// workerStats are one worker's telemetry counters, padded to a full cache
// line so the hot executed/localPops adds of adjacent workers never
// false-share (workers are separate heap objects, but the allocator gives
// no line-alignment guarantee between them).
type workerStats struct {
	executed    atomic.Uint64 // events executed
	localPops   atomic.Uint64 // components consumed from own deque
	steals      atomic.Uint64 // successful steal operations
	stealMisses atomic.Uint64 // steal attempts that found/claimed nothing
	stolen      atomic.Uint64 // components claimed by steals
	parks       atomic.Uint64 // times the worker slept for lack of work
	_           [16]byte      // pad 6×8 counter bytes to 64
}

// worker is one scheduler thread with its dedicated ready deque.
type worker struct {
	id    int
	deque *wsDeque
	sched *WorkStealingScheduler
	// stealBuf is the worker-local scratch the thief reads a stolen range
	// into before committing the steal; reused across steals so the steal
	// path allocates nothing in steady state.
	stealBuf []*Component
	stats    workerStats
}

// SchedulerOption configures a WorkStealingScheduler.
type SchedulerOption func(*WorkStealingScheduler)

// WithStealBatch overrides the number of components stolen from a victim
// with queue length n. The paper's default is n/2 ("a batch of half of its
// ready components"); WithStealBatch(func(int64) int64 { return 1 })
// reproduces the unbatched baseline.
func WithStealBatch(f func(n int64) int64) SchedulerOption {
	return func(s *WorkStealingScheduler) { s.stealBatch = f }
}

// WithPlacement overrides which worker queue receives the seq-th externally
// submitted ready component (default: round-robin). Benchmarks use
// single-queue placement to exercise work stealing under maximal imbalance.
func WithPlacement(f func(seq uint64, workers int) int) SchedulerOption {
	return func(s *WorkStealingScheduler) { s.placement = f }
}

// NewWorkStealingScheduler creates a scheduler with the given number of
// workers; n <= 0 selects runtime.NumCPU().
func NewWorkStealingScheduler(n int, opts ...SchedulerOption) *WorkStealingScheduler {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	s := &WorkStealingScheduler{
		stealBatch: func(n int64) int64 { return n / 2 },
		placement:  func(seq uint64, workers int) int { return int(seq % uint64(workers)) },
	}
	s.parkCond = sync.NewCond(&s.parkMu)
	for _, o := range opts {
		o(s)
	}
	for i := 0; i < n; i++ {
		s.workers = append(s.workers, &worker{id: i, deque: newWSDeque(), sched: s})
	}
	return s
}

var _ Scheduler = (*WorkStealingScheduler)(nil)

// Workers returns the number of worker goroutines.
func (s *WorkStealingScheduler) Workers() int { return len(s.workers) }

// is reports whether sch is this scheduler. Component.wake uses it to
// validate a worker locality hint against the runtime's scheduler before
// bypassing placement (a process may host many runtimes).
func (s *WorkStealingScheduler) is(sch Scheduler) bool {
	ws, ok := sch.(*WorkStealingScheduler)
	return ok && ws == s
}

// Schedule places a ready component on a worker deque and wakes a parked
// worker if any. This is the external submission path; worker-local
// submission bypasses it via submitLocal.
func (s *WorkStealingScheduler) Schedule(c *Component) {
	if s.stopped.Load() {
		return
	}
	w := s.workers[s.placement(s.rr.Add(1), len(s.workers))]
	w.deque.push(c)
	s.wakeIdler()
}

// submitLocal pushes a component readied during this worker's handler
// execution onto the worker's own deque.
func (w *worker) submitLocal(c *Component) {
	s := w.sched
	if s.stopped.Load() {
		return
	}
	w.deque.push(c)
	s.wakeIdler()
}

// wakeIdler signals one parked worker, if any.
func (s *WorkStealingScheduler) wakeIdler() {
	if s.idlers.Load() > 0 {
		s.parkMu.Lock()
		s.parkCond.Signal()
		s.parkMu.Unlock()
	}
}

// Start launches the worker goroutines.
func (s *WorkStealingScheduler) Start() {
	for _, w := range s.workers {
		s.wg.Add(1)
		go func(w *worker) {
			defer s.wg.Done()
			w.run()
		}(w)
	}
}

// Stop shuts down all workers and waits for them to exit. Components still
// queued are not executed.
func (s *WorkStealingScheduler) Stop() {
	if s.stopped.Swap(true) {
		return
	}
	s.parkMu.Lock()
	s.parkCond.Broadcast()
	s.parkMu.Unlock()
	s.wg.Wait()
}

// Stats returns per-worker counters (events executed, steal operations,
// components stolen), for tests and monitoring.
func (s *WorkStealingScheduler) Stats() (executed, steals, stolen uint64) {
	for _, w := range s.workers {
		executed += w.stats.executed.Load()
		steals += w.stats.steals.Load()
		stolen += w.stats.stolen.Load()
	}
	return executed, steals, stolen
}

// SchedulerMetrics aggregates the padded per-worker counters into one
// snapshot (implements SchedulerMetricsSource). Counters are read racily;
// they are monotone, so a snapshot is a consistent lower bound.
func (s *WorkStealingScheduler) SchedulerMetrics() SchedulerStats {
	st := SchedulerStats{Workers: len(s.workers)}
	st.PerWorker = make([]WorkerStats, 0, len(s.workers))
	for _, w := range s.workers {
		ws := WorkerStats{
			ID:            w.id,
			Executed:      w.stats.executed.Load(),
			LocalPops:     w.stats.localPops.Load(),
			Steals:        w.stats.steals.Load(),
			StealMisses:   w.stats.stealMisses.Load(),
			Stolen:        w.stats.stolen.Load(),
			Parks:         w.stats.parks.Load(),
			MaxDequeDepth: w.deque.maxDepth.Load(),
			DequeDepth:    w.deque.size(),
		}
		st.Executed += ws.Executed
		st.LocalPops += ws.LocalPops
		st.Steals += ws.Steals
		st.StealMisses += ws.StealMisses
		st.Stolen += ws.Stolen
		st.Parks += ws.Parks
		if ws.MaxDequeDepth > st.MaxDequeDepth {
			st.MaxDequeDepth = ws.MaxDequeDepth
		}
		st.PerWorker = append(st.PerWorker, ws)
	}
	return st
}

var _ SchedulerMetricsSource = (*WorkStealingScheduler)(nil)

// run is the worker main loop: drain own deque; steal when empty; park when
// there is nothing to steal.
func (w *worker) run() {
	s := w.sched
	for {
		if s.stopped.Load() {
			return
		}
		if c := w.deque.pop(); c != nil {
			w.stats.localPops.Add(1)
			w.execute(c)
			continue
		}
		if w.steal() {
			continue
		}
		// Nothing found: park until new work is scheduled anywhere.
		s.parkMu.Lock()
		s.idlers.Add(1)
		// Re-check under the idler mark to close the wakeup race: a
		// Schedule call that saw idlers>0 will signal after we Wait; one
		// that ran before we marked ourselves idle is caught by this scan.
		if w.anyWorkVisible() || s.stopped.Load() {
			s.idlers.Add(-1)
			s.parkMu.Unlock()
			continue
		}
		w.stats.parks.Add(1)
		s.parkCond.Wait()
		s.idlers.Add(-1)
		s.parkMu.Unlock()
	}
}

// execute runs one event of component c, exposing this worker to the
// component as the locality hint for events its handlers trigger.
func (w *worker) execute(c *Component) {
	c.curWorker.Store(w)
	c.ExecuteOne()
	c.curWorker.Store(nil)
	w.stats.executed.Add(1)
}

// anyWorkVisible reports whether any worker deque appears non-empty.
func (w *worker) anyWorkVisible() bool {
	for _, v := range w.sched.workers {
		if v.deque.size() > 0 {
			return true
		}
	}
	return false
}

// steal finds the victim with the most ready components and claims a batch
// of them (per the batch policy, default half) in one CAS, pushing all but
// the first onto this worker's own deque and executing the first. Returns
// false when no victim had work.
func (w *worker) steal() bool {
	s := w.sched
	var victim *worker
	var max int64
	for _, v := range s.workers {
		if v == w {
			continue
		}
		if n := v.deque.size(); n > max {
			max, victim = n, v
		}
	}
	if victim == nil {
		w.stats.stealMisses.Add(1)
		return false
	}
	n := s.stealBatch(max)
	if n < 1 {
		n = 1
	}
	w.stealBuf = victim.deque.stealInto(w.stealBuf[:0], n)
	got := len(w.stealBuf)
	if got == 0 {
		w.stats.stealMisses.Add(1)
		return false
	}
	w.stats.steals.Add(1)
	w.stats.stolen.Add(uint64(got))
	for _, c := range w.stealBuf[1:] {
		w.deque.push(c)
	}
	first := w.stealBuf[0]
	// Drop stolen references from the scratch buffer promptly; the buffer
	// itself is retained for reuse.
	for i := range w.stealBuf {
		w.stealBuf[i] = nil
	}
	w.execute(first)
	return true
}
