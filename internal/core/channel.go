package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Channel is a first-class binding between two complementary port halves of
// the same port type. Channels forward events in both directions in FIFO
// order and support the four reconfiguration commands of the paper (§2.6):
// Hold, Resume, Unplug, and Plug. Held channels queue events in both
// directions without dropping any; Resume flushes the queue in FIFO order
// and then resumes pass-through forwarding.
type Channel struct {
	typ *PortType

	// pass caches the two live endpoints for lock-free pass-through
	// forwarding. It is non-nil exactly while the channel is a plain pipe —
	// both ends plugged and not held — and nil whenever any reconfiguration
	// state forces the locked slow path. Mutators republish it under mu
	// (updatePassLocked), so the broadcast hot path costs one atomic load
	// and a pointer compare per channel instead of a mutex round trip.
	pass atomic.Pointer[chanEnds]

	mu   sync.Mutex
	ends [2]*Port // endpoint halves; an unplugged end is nil
	held bool
	// queue holds events that arrived while the channel was held or while
	// the destination end was unplugged, in arrival order. dstEnd records
	// which endpoint slot each event was heading to.
	queue []queuedEvent
}

// chanEnds is an immutable snapshot of a live channel's endpoints. Port
// handles are canonical (see portPair.halves), so endpoint identity is a
// pointer compare.
type chanEnds struct{ a, b *Port }

// otherOf returns the endpoint opposite half from, or nil when from is not
// an endpoint of this snapshot (a racing unplug: take the slow path).
func (ce *chanEnds) otherOf(from *Port) *Port {
	if ce.a == from {
		return ce.b
	}
	if ce.b == from {
		return ce.a
	}
	return nil
}

type queuedEvent struct {
	event  Event
	dstEnd int
}

// Connect creates a channel between two complementary port halves. The
// halves must have the same port type and opposite polarity: one
// provider-like half (the outer half of a provided port, or the inner half
// of a required port) and one requirer-like half. This covers the three
// legal composition shapes: sibling connections, provided pass-through
// (parent's provided port to a child's provided port), and required
// pass-through (a child's required port to the parent's required port).
func Connect(a, b *Port) (*Channel, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("core: Connect: nil port")
	}
	if a.Type() != b.Type() {
		return nil, fmt.Errorf("core: Connect: port type mismatch: %s vs %s", a, b)
	}
	if a.providerLike() == b.providerLike() {
		return nil, fmt.Errorf("core: Connect: ports are not complementary: %s and %s", a, b)
	}
	if a.pair == b.pair {
		return nil, fmt.Errorf("core: Connect: cannot connect the two halves of the same port %s", a)
	}
	ch := &Channel{typ: a.Type()}
	ch.ends[0] = a
	ch.ends[1] = b
	ch.pass.Store(&chanEnds{a: a, b: b})
	a.pair.attachChannel(a.face, ch)
	b.pair.attachChannel(b.face, ch)
	return ch, nil
}

// MustConnect is Connect but panics on error. It is intended for static
// architecture wiring in component Setup code, where a connection error is
// a programming bug.
func MustConnect(a, b *Port) *Channel {
	ch, err := Connect(a, b)
	if err != nil {
		panic(err)
	}
	return ch
}

// Type returns the port type the channel carries.
func (ch *Channel) Type() *PortType { return ch.typ }

// Ends returns the two endpoint halves; an unplugged end is nil.
func (ch *Channel) Ends() (a, b *Port) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.ends[0], ch.ends[1]
}

// forward carries an event that just crossed into half `from` onward to the
// opposite endpoint. If the channel is held, or the destination end is
// currently unplugged, the event is queued instead of dropped. hint is the
// scheduler locality hint of the originating trigger, threaded through the
// synchronous forwarding chain (see Port.deliver).
func (ch *Channel) forward(ev Event, from *Port, hint *worker) {
	if ce := ch.pass.Load(); ce != nil {
		if dst := ce.otherOf(from); dst != nil {
			dst.deliver(ev, hint)
			return
		}
	}
	ch.forwardSlow(ev, from, hint, nil)
}

// forwardInto is forward inside an ongoing batch collection: the far side's
// fan-out joins the same batch.
func (ch *Channel) forwardInto(ev Event, from *Port, hint *worker, b *fanoutBatch) {
	if ce := ch.pass.Load(); ce != nil {
		if dst := ce.otherOf(from); dst != nil {
			dst.deliverInto(ev, hint, b)
			return
		}
	}
	ch.forwardSlow(ev, from, hint, b)
}

// forwardSlice carries a homogeneous event slice across the channel as one
// atomic batch: a live channel forwards it whole; a held channel (or one
// whose destination end is unplugged) buffers the whole slice in order
// under a single lock acquisition, so no concurrent forward can interleave
// inside the batch and Resume replays it contiguously.
func (ch *Channel) forwardSlice(evs []Event, from *Port, hint *worker, b *fanoutBatch) {
	if ce := ch.pass.Load(); ce != nil {
		if dst := ce.otherOf(from); dst != nil {
			dst.deliverSliceInto(evs, hint, b)
			return
		}
	}
	ch.mu.Lock()
	dstEnd := ch.slowDstEndLocked(from)
	if ch.held || ch.ends[dstEnd] == nil {
		for _, ev := range evs {
			ch.queue = append(ch.queue, queuedEvent{event: ev, dstEnd: dstEnd})
		}
		ch.mu.Unlock()
		return
	}
	dst := ch.ends[dstEnd]
	ch.mu.Unlock()
	dst.deliverSliceInto(evs, hint, b)
}

// forwardSlow is the locked forwarding path, taken whenever the channel is
// not a plain live pipe (held, partially unplugged, or racing a reconfig).
// When b is non-nil the delivery joins that batch.
func (ch *Channel) forwardSlow(ev Event, from *Port, hint *worker, b *fanoutBatch) {
	ch.mu.Lock()
	dstEnd := ch.slowDstEndLocked(from)
	if ch.held || ch.ends[dstEnd] == nil {
		ch.queue = append(ch.queue, queuedEvent{event: ev, dstEnd: dstEnd})
		ch.mu.Unlock()
		return
	}
	dst := ch.ends[dstEnd]
	ch.mu.Unlock()
	if b != nil {
		dst.deliverInto(ev, hint, b)
	} else {
		dst.deliver(ev, hint)
	}
}

// slowDstEndLocked resolves which endpoint slot an event entering from half
// `from` is heading to. Called with ch.mu held.
func (ch *Channel) slowDstEndLocked(from *Port) int {
	dstEnd := ch.endIndexOfOther(from)
	if dstEnd < 0 {
		// The 'from' half is no longer an endpoint (racing unplug): the
		// event was emitted while we were attached, so deliver toward the
		// remaining end to honor the no-drop guarantee.
		if ch.ends[0] != nil {
			dstEnd = 0
		} else {
			dstEnd = 1
		}
	}
	return dstEnd
}

// updatePassLocked republishes the lock-free pass-through snapshot after a
// state mutation. Called with ch.mu held.
func (ch *Channel) updatePassLocked() {
	if !ch.held && ch.ends[0] != nil && ch.ends[1] != nil {
		ch.pass.Store(&chanEnds{a: ch.ends[0], b: ch.ends[1]})
	} else {
		ch.pass.Store(nil)
	}
}

// endIndexOfOther returns the slot index of the endpoint opposite to half p,
// or -1 if p is not currently an endpoint.
func (ch *Channel) endIndexOfOther(p *Port) int {
	if ch.ends[0] != nil && ch.ends[0].pair == p.pair && ch.ends[0].face == p.face {
		return 1
	}
	if ch.ends[1] != nil && ch.ends[1].pair == p.pair && ch.ends[1].face == p.face {
		return 0
	}
	return -1
}

// Hold puts the channel on hold: it stops forwarding events and starts
// queueing them in both directions.
func (ch *Channel) Hold() {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.held = true
	ch.updatePassLocked()
}

// Held reports whether the channel is currently on hold.
func (ch *Channel) Held() bool {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.held
}

// QueuedLen returns the number of events currently queued in the channel.
func (ch *Channel) QueuedLen() int {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return len(ch.queue)
}

// Resume takes the channel off hold: it first forwards all queued events,
// in both directions, in their original FIFO order, and then keeps
// forwarding events as usual. Events destined for a still-unplugged end
// remain queued.
func (ch *Channel) Resume() {
	ch.mu.Lock()
	ch.held = false
	ch.updatePassLocked()
	ch.drainLocked()
}

// drainLocked flushes deliverable queued events. It is called with ch.mu
// held and releases it before returning. Delivery happens outside the lock
// (present may re-enter forward on this same channel via port graphs), so
// events arriving concurrently are appended behind the batch being flushed,
// preserving FIFO per direction. Maximal consecutive runs headed to the
// same end are replayed as one batch, so a batch that was buffered whole by
// a held channel leaves it whole, in order, on Resume.
func (ch *Channel) drainLocked() {
	var run []Event // drain-local scratch; reconfig path, allocation is fine
	for {
		if ch.held || len(ch.queue) == 0 {
			ch.mu.Unlock()
			return
		}
		// Find the first deliverable event (its destination end plugged).
		idx := -1
		for i, qe := range ch.queue {
			if ch.ends[qe.dstEnd] != nil {
				idx = i
				break
			}
		}
		if idx < 0 {
			ch.mu.Unlock()
			return
		}
		dstEnd := ch.queue[idx].dstEnd
		end := idx + 1
		for end < len(ch.queue) && ch.queue[end].dstEnd == dstEnd {
			end++
		}
		run = run[:0]
		for _, qe := range ch.queue[idx:end] {
			run = append(run, qe.event)
		}
		ch.queue = append(ch.queue[:idx:idx], ch.queue[end:]...)
		dst := ch.ends[dstEnd]
		ch.mu.Unlock()
		dst.deliverSlice(run, nil)
		ch.mu.Lock()
	}
}

// Unplug detaches the channel from endpoint half p. Events heading to the
// unplugged end are queued until a new half is plugged in. It returns an
// error if p is not a current endpoint.
func (ch *Channel) Unplug(p *Port) error {
	if p == nil {
		return fmt.Errorf("core: Unplug: nil port")
	}
	ch.mu.Lock()
	slot := -1
	for i, e := range ch.ends {
		if e != nil && e.pair == p.pair && e.face == p.face {
			slot = i
			break
		}
	}
	if slot < 0 {
		ch.mu.Unlock()
		return fmt.Errorf("core: Unplug: %s is not an endpoint of this channel", p)
	}
	ch.ends[slot] = nil
	ch.updatePassLocked()
	ch.mu.Unlock()
	p.pair.detachChannel(p.face, ch)
	return nil
}

// Plug attaches the channel's free end to half p, which must be
// complementary to the remaining endpoint, then flushes any events queued
// for that end (unless the channel is held).
func (ch *Channel) Plug(p *Port) error {
	if p == nil {
		return fmt.Errorf("core: Plug: nil port")
	}
	ch.mu.Lock()
	slot := -1
	other := -1
	for i, e := range ch.ends {
		if e == nil {
			slot = i
		} else {
			other = i
		}
	}
	if slot < 0 {
		ch.mu.Unlock()
		return fmt.Errorf("core: Plug: channel has no free end")
	}
	if other >= 0 {
		o := ch.ends[other]
		if o.Type() != p.Type() {
			ch.mu.Unlock()
			return fmt.Errorf("core: Plug: port type mismatch: %s vs %s", o, p)
		}
		if o.providerLike() == p.providerLike() {
			ch.mu.Unlock()
			return fmt.Errorf("core: Plug: ports are not complementary: %s and %s", o, p)
		}
		if o.pair == p.pair {
			ch.mu.Unlock()
			return fmt.Errorf("core: Plug: cannot connect the two halves of the same port %s", p)
		}
	} else if p.Type() != ch.typ {
		ch.mu.Unlock()
		return fmt.Errorf("core: Plug: port type mismatch: channel carries %s, port is %s", ch.typ.Name(), p)
	}
	ch.ends[slot] = p
	ch.updatePassLocked()
	p.pair.attachChannel(p.face, ch)
	ch.drainLocked()
	return nil
}

// Disconnect detaches the channel from both endpoints, dropping any queued
// events. Use Hold+Unplug+Plug+Resume to move a live channel without loss.
func (ch *Channel) Disconnect() {
	ch.mu.Lock()
	var ends [2]*Port
	copy(ends[:], ch.ends[:])
	ch.ends[0], ch.ends[1] = nil, nil
	ch.queue = nil
	ch.updatePassLocked()
	ch.mu.Unlock()
	for _, e := range ends {
		if e != nil {
			e.pair.detachChannel(e.face, ch)
		}
	}
}
