package core

import (
	"fmt"
	"log/slog"
	"math/rand"
	"time"
)

// Ctx is the capability a component's code uses to interact with the
// runtime: declaring ports, subscribing handlers, triggering events,
// creating and wiring subcomponents. A Ctx is bound to exactly one
// component and is handed to its Definition.Setup; component code keeps it
// in a struct field.
//
// Ctx methods that express architecture bugs (declaring the same port
// twice, connecting incompatible ports, triggering an event a port type
// forbids) panic rather than return errors: inside a handler the panic is
// converted into a Fault event and escalated per the fault-management
// model, which is exactly where such bugs should surface.
type Ctx struct {
	c *Component
}

// Self returns the component this context is bound to.
func (x *Ctx) Self() *Component { return x.c }

// Runtime returns the runtime the component executes under.
func (x *Ctx) Runtime() *Runtime { return x.c.rt }

// Provides declares a provided port of the given type and returns its inner
// half, on which the component subscribes request handlers and triggers
// indications. It panics if a port of this type was already declared as
// provided.
func (x *Ctx) Provides(pt *PortType) *Port {
	x.c.mu.Lock()
	defer x.c.mu.Unlock()
	if _, dup := x.c.provided[pt]; dup {
		panic(fmt.Sprintf("core: component %s already provides port type %s", x.c.Path(), pt.Name()))
	}
	pp := newPortPair(pt, x.c, true)
	x.c.provided[pt] = pp
	return pp.half(inner)
}

// Requires declares a required port of the given type and returns its inner
// half, on which the component triggers requests and subscribes indication
// handlers. It panics if a port of this type was already declared as
// required.
func (x *Ctx) Requires(pt *PortType) *Port {
	x.c.mu.Lock()
	defer x.c.mu.Unlock()
	if _, dup := x.c.required[pt]; dup {
		panic(fmt.Sprintf("core: component %s already requires port type %s", x.c.Path(), pt.Name()))
	}
	pp := newPortPair(pt, x.c, false)
	x.c.required[pt] = pp
	return pp.half(inner)
}

// Control returns the inner half of the component's own control port, on
// which Init/Start/Stop handlers are subscribed and Fault events involving
// this component are triggered.
func (x *Ctx) Control() *Port { return x.c.control.half(inner) }

// Trigger asynchronously sends an event through a port in scope: one of the
// component's own ports, or a port of an immediate subcomponent (used, for
// example, to trigger Init and Start on a child's control port). The
// event's type must be allowed by the port type in the direction the event
// will travel; violations panic (→ Fault).
func (x *Ctx) Trigger(ev Event, p *Port) {
	x.c.stats.triggers.Add(1)
	// When this component's handler is running on a scheduler worker, pass
	// that worker down as a locality hint so components readied by this
	// trigger land on its own deque (worker-local submission).
	if err := triggerFrom(p, ev, x.c.curWorker.Load()); err != nil {
		panic(err)
	}
}

// TriggerOn presents an event at a port half, after validating the event
// against the port type in the direction of travel. It is the unguarded
// entry point used by runtime bridges (network receive loops, timer
// goroutines, experiment drivers, tests) that inject events from outside
// any component.
func TriggerOn(p *Port, ev Event) error { return triggerFrom(p, ev, nil) }

// TriggerBatch sends a slice of events through a port in scope as one
// batch, in order. Compared to a Trigger loop, a batch of same-typed events
// pays the routing-plan lookup once and crosses every attached channel as a
// unit: a held channel buffers the whole batch contiguously, and fan-out
// destinations are enqueued and scheduled with batched lock acquisitions
// (the high-rate producer path).
func (x *Ctx) TriggerBatch(evs []Event, p *Port) {
	x.c.stats.triggers.Add(uint64(len(evs)))
	if err := triggerBatchFrom(p, evs, x.c.curWorker.Load()); err != nil {
		panic(err)
	}
}

// TriggerBatchOn is TriggerOn for a slice of events: the unguarded batch
// entry point for runtime bridges injecting event bursts from outside any
// component.
func TriggerBatchOn(p *Port, evs []Event) error { return triggerBatchFrom(p, evs, nil) }

// triggerBatchFrom validates every event of a batch up front, then delivers
// the batch in slice order.
func triggerBatchFrom(p *Port, evs []Event, hint *worker) error {
	if p == nil {
		return fmt.Errorf("core: trigger: nil port")
	}
	d := p.crossDirection()
	for _, ev := range evs {
		if err := checkEvent(ev); err != nil {
			return err
		}
		if p.pair.typ != ControlPortType && !p.pair.typ.AllowsValue(ev, d) {
			return fmt.Errorf("core: trigger: port type %s does not allow %T in direction %s",
				p.pair.typ.Name(), ev, d)
		}
	}
	p.deliverSlice(evs, hint)
	return nil
}

// triggerFrom validates and delivers an event, carrying the scheduler
// locality hint of the triggering execution context (nil outside workers).
func triggerFrom(p *Port, ev Event, hint *worker) error {
	if p == nil {
		return fmt.Errorf("core: trigger: nil port")
	}
	if err := checkEvent(ev); err != nil {
		return err
	}
	d := p.crossDirection()
	if p.pair.typ != ControlPortType && !p.pair.typ.AllowsValue(ev, d) {
		return fmt.Errorf("core: trigger: port type %s does not allow %T in direction %s",
			p.pair.typ.Name(), ev, d)
	}
	p.deliver(ev, hint)
	return nil
}

// Subscribe binds a handler for events of type E to a port half in the
// component's scope. The handler fires for every event whose dynamic type
// is assignable to E that crosses into that half; handlers of one component
// always execute mutually exclusively. It panics if the port is out of
// scope or the port type does not allow E in the handler's direction.
func Subscribe[E Event](x *Ctx, p *Port, h func(E)) *Subscription {
	if p == nil {
		panic("core: Subscribe: nil port")
	}
	if !x.c.inScope(p) {
		panic(x.c.errPortScope("Subscribe", p))
	}
	s := &Subscription{
		owner:  x.c,
		port:   p,
		eventT: TypeOf[E](),
		name:   fmt.Sprintf("%s.handle[%s]", x.c.Name(), TypeOf[E]()),
		handler: func(ev Event) {
			h(ev.(E))
		},
	}
	if p.pair.typ == ControlPortType {
		// The control port accepts any Init-style configuration event in
		// addition to its declared lifecycle events; skip direction check.
		p.pair.subscribeUnchecked(s)
		return s
	}
	if err := p.pair.subscribe(s); err != nil {
		panic(err)
	}
	return s
}

// Unsubscribe removes a previously made subscription; the handler stops
// firing for events not yet executed. It is a no-op if already removed.
func (x *Ctx) Unsubscribe(s *Subscription) {
	if s == nil {
		return
	}
	s.port.pair.unsubscribe(s)
}

// Create instantiates a definition as a new subcomponent with the given
// name. The child is created passive: it queues received events but
// executes only control events until started.
func (x *Ctx) Create(name string, def Definition) *Component {
	child := newComponent(x.c.rt, x.c, name, def)
	x.c.mu.Lock()
	x.c.children = append(x.c.children, child)
	x.c.mu.Unlock()
	return child
}

// Start activates a subcomponent (and, recursively, its subtree) by
// triggering a Start event on its control port.
func (x *Ctx) Start(child *Component) {
	x.Trigger(Start{}, child.Control())
}

// Stop passivates a subcomponent (and, recursively, its subtree) by
// triggering a Stop event on its control port.
func (x *Ctx) Stop(child *Component) {
	x.Trigger(Stop{}, child.Control())
}

// Init delivers a configuration event to a subcomponent's control port. The
// control queue is FIFO and the child is passive until started, so an Init
// triggered before Start is guaranteed to be the first event the child
// handles.
func (x *Ctx) Init(child *Component, ev Event) {
	x.Trigger(ev, child.Control())
}

// CreateAndStart is Create followed by Start, for children needing no Init.
func (x *Ctx) CreateAndStart(name string, def Definition) *Component {
	child := x.Create(name, def)
	x.Start(child)
	return child
}

// Destroy stops and tears down a subcomponent and its whole subtree,
// dropping its queued events and detaching all channels connected to its
// ports.
func (x *Ctx) Destroy(child *Component) {
	if child == nil || child.parent != x.c {
		panic(fmt.Sprintf("core: Destroy: %s is not a subcomponent of %s", child, x.c.Path()))
	}
	child.Control().present(Stop{})
	child.destroy()
}

// Connect creates a channel between two complementary port halves in the
// component's scope, panicking on architecture errors (type mismatch,
// non-complementary polarity).
func (x *Ctx) Connect(a, b *Port) *Channel {
	return MustConnect(a, b)
}

// Disconnect detaches a channel from both of its endpoints.
func (x *Ctx) Disconnect(ch *Channel) {
	if ch != nil {
		ch.Disconnect()
	}
}

// Log returns a logger annotated with the component's path.
func (x *Ctx) Log() *slog.Logger {
	return x.c.rt.logger.With("component", x.c.Path())
}

// Now returns the current time from the runtime's clock: wall-clock time in
// production, virtual time in simulation. Component code must use this (or
// the Timer port) instead of time.Now so the same code runs identically in
// both execution modes.
func (x *Ctx) Now() time.Time { return x.c.rt.clock.Now() }

// Rand returns the runtime's random source: seeded and deterministic in
// simulation, time-seeded in production. Component code must use this
// instead of the global math/rand functions to stay reproducible.
//
// The returned source must only be used from within this component's
// handlers (handlers of one component are mutually exclusive, so no
// additional locking is needed in simulation; the production runtime hands
// out a locked source).
func (x *Ctx) Rand() *rand.Rand { return x.c.rt.randFor(x.c) }
