package core

import (
	"fmt"
	"time"
)

// Supervision, built from the model's own primitives (Fault events on
// child control ports + hot-swap reconfiguration): an Erlang-style
// restart policy for faulty children, the recovery pattern §2.5 of the
// paper sketches ("the component can then replace the faulty subcomponent
// with a new instance through dynamic reconfiguration").

// RestartPolicy bounds automatic restarts: at most MaxRestarts within
// Window; beyond that the fault escalates to the supervisor's parent.
type RestartPolicy struct {
	// MaxRestarts within Window before escalating (default 3).
	MaxRestarts int
	// Window is the sliding window for the restart budget (default 10s).
	Window time.Duration
}

func (p *RestartPolicy) applyDefaults() {
	if p.MaxRestarts <= 0 {
		p.MaxRestarts = 3
	}
	if p.Window <= 0 {
		p.Window = 10 * time.Second
	}
}

// ChildSpec declares one supervised child: a name and a factory producing
// fresh definitions (the factory is invoked for the initial start and for
// every restart).
type ChildSpec struct {
	Name    string
	Factory func() Definition
}

// Supervisor is a composite component that creates its children from
// specs, subscribes Fault handlers on their control ports, and replaces a
// faulty child with a fresh instance via hot-swap — transferring state
// when the definitions implement StateDumper/StateLoader and preserving
// all channel wiring. When a child exhausts its restart budget, the fault
// is re-escalated up the hierarchy.
//
// The supervisor's own ports are whatever its children expose: callers
// wire channels directly to child ports obtained via Child().
type Supervisor struct {
	Policy RestartPolicy
	Specs  []ChildSpec

	// Clock supplies the timestamps the sliding restart window is measured
	// against. Nil means the runtime clock (Ctx.Now — wall time in real
	// execution, virtual time under simulation); inject a fake to test
	// budget expiry without sleeping.
	Clock func() time.Time

	ctx      *Ctx
	children map[string]*Component
	restarts map[string][]time.Time
	onSwap   func(name string, gen int) // test hook

	generations map[string]int
}

// NewSupervisor creates a supervisor for the given child specs.
func NewSupervisor(policy RestartPolicy, specs ...ChildSpec) *Supervisor {
	policy.applyDefaults()
	return &Supervisor{
		Policy:      policy,
		Specs:       specs,
		children:    make(map[string]*Component),
		restarts:    make(map[string][]time.Time),
		generations: make(map[string]int),
	}
}

var _ Definition = (*Supervisor)(nil)

// Setup creates every child and installs the fault handlers.
func (s *Supervisor) Setup(ctx *Ctx) {
	s.ctx = ctx
	for _, spec := range s.Specs {
		spec := spec
		if spec.Factory == nil {
			panic(fmt.Sprintf("core: supervisor child %q has no factory", spec.Name))
		}
		child := ctx.Create(spec.Name, spec.Factory())
		s.children[spec.Name] = child
		s.watch(spec, child)
	}
}

// watch subscribes the restart handler on a child's control port.
func (s *Supervisor) watch(spec ChildSpec, child *Component) {
	Subscribe(s.ctx, child.Control(), func(f Fault) {
		s.handleChildFault(spec, f)
	})
}

// Child returns the current incarnation of a supervised child.
func (s *Supervisor) Child(name string) *Component {
	return s.children[name]
}

// Generation returns how many times a child has been restarted.
func (s *Supervisor) Generation(name string) int {
	return s.generations[name]
}

// now reads the restart-window clock (injected Clock or the runtime's).
func (s *Supervisor) now() time.Time {
	if s.Clock != nil {
		return s.Clock()
	}
	return s.ctx.Now()
}

// handleChildFault restarts the faulty child or escalates when the budget
// is exhausted.
func (s *Supervisor) handleChildFault(spec ChildSpec, f Fault) {
	now := s.now()
	cutoff := now.Add(-s.Policy.Window)
	recent := s.restarts[spec.Name][:0]
	for _, t := range s.restarts[spec.Name] {
		if t.After(cutoff) {
			recent = append(recent, t)
		}
	}
	if len(recent) >= s.Policy.MaxRestarts {
		s.restarts[spec.Name] = recent
		// Budget exhausted: push the fault onward, attributed to this
		// supervisor, so an ancestor (or the runtime policy) handles it.
		f.Component = s.ctx.Self()
		s.ctx.Runtime().escalate(Fault{
			Component: s.ctx.Self().parent,
			Source:    f.Source,
			Err: fmt.Errorf("core: supervisor %s: child %q exceeded restart budget (%d in %v): %w",
				s.ctx.Self().Path(), spec.Name, s.Policy.MaxRestarts, s.Policy.Window, f.Err),
			Event:   f.Event,
			Handler: f.Handler,
			Stack:   f.Stack,
		})
		return
	}
	recent = append(recent, now)
	s.restarts[spec.Name] = recent

	old := s.children[spec.Name]
	gen := s.generations[spec.Name] + 1
	name := fmt.Sprintf("%s#%d", spec.Name, gen)
	repl, err := s.ctx.Swap(old, name, spec.Factory())
	if err != nil {
		s.ctx.Log().Error("supervisor: restart failed", "child", spec.Name, "err", err)
		return
	}
	s.generations[spec.Name] = gen
	s.children[spec.Name] = repl
	s.watch(spec, repl)
	if s.onSwap != nil {
		s.onSwap(spec.Name, gen)
	}
	s.ctx.Log().Info("supervisor: restarted child",
		"child", spec.Name, "generation", gen, "cause", f.Err)
}
