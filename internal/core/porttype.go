package core

import (
	"fmt"
	"strings"
)

// Direction identifies one of the two directions of a bidirectional port.
// By the paper's convention, requests travel in the Negative direction and
// indications/responses travel in the Positive direction.
type Direction int

const (
	// Positive is the indication/response direction ("+").
	Positive Direction = iota + 1
	// Negative is the request direction ("−").
	Negative
)

// String returns "+" or "-".
func (d Direction) String() string {
	switch d {
	case Positive:
		return "+"
	case Negative:
		return "-"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// opposite returns the other direction.
func (d Direction) opposite() Direction {
	if d == Positive {
		return Negative
	}
	return Positive
}

// PortType describes a service or protocol abstraction with an event-based
// interface. It consists of two sets of event types: the set allowed to pass
// in the positive direction (indications) and the set allowed in the
// negative direction (requests). There is no subtyping between port types.
//
// Port types are immutable after construction and are intended to be
// package-level singletons, e.g.:
//
//	var PortType = core.NewPortType("Network",
//	    core.Indication[Message](),
//	    core.Request[Message](),
//	)
type PortType struct {
	name     string
	positive []EventType
	negative []EventType
}

// PortTypeOption adds one event type to one direction of a port type under
// construction.
type PortTypeOption func(*PortType)

// Indication declares that events of type E may pass in the positive
// direction (provider → client).
func Indication[E Event]() PortTypeOption {
	et := TypeOf[E]()
	return func(pt *PortType) { pt.positive = append(pt.positive, et) }
}

// Request declares that events of type E may pass in the negative direction
// (client → provider).
func Request[E Event]() PortTypeOption {
	et := TypeOf[E]()
	return func(pt *PortType) { pt.negative = append(pt.negative, et) }
}

// NewPortType constructs an immutable port type from its name and the event
// types allowed in each direction. A port type with an empty direction set
// simply never lets events pass that way (the Control port uses this for
// none of its directions, but pure-indication ports do).
func NewPortType(name string, opts ...PortTypeOption) *PortType {
	pt := &PortType{name: name}
	for _, o := range opts {
		o(pt)
	}
	return pt
}

// Name returns the port type's name, used in diagnostics.
func (pt *PortType) Name() string { return pt.name }

// Allows reports whether events of dynamic type dyn may traverse a port of
// this type in direction d.
func (pt *PortType) Allows(dyn EventType, d Direction) bool {
	for _, et := range pt.set(d) {
		if et.Accepts(dyn) {
			return true
		}
	}
	return false
}

// AllowsValue reports whether the concrete event ev may traverse a port of
// this type in direction d.
func (pt *PortType) AllowsValue(ev Event, d Direction) bool {
	return pt.Allows(DynamicTypeOf(ev), d)
}

// set returns the event-type set for direction d.
func (pt *PortType) set(d Direction) []EventType {
	if d == Positive {
		return pt.positive
	}
	return pt.negative
}

// String renders the port type as Name{+[...] -[...]} for diagnostics.
func (pt *PortType) String() string {
	var b strings.Builder
	b.WriteString(pt.name)
	b.WriteString("{+[")
	for i, et := range pt.positive {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(et.String())
	}
	b.WriteString("] -[")
	for i, et := range pt.negative {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(et.String())
	}
	b.WriteString("]}")
	return b.String()
}
