package core

import (
	"errors"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Clock abstracts the source of time so the same component code runs under
// wall-clock time in production and virtual time in simulation. This
// dependency injection replaces the paper's bytecode instrumentation of
// time calls, which Go cannot perform.
type Clock interface {
	Now() time.Time
}

// WallClock is the production clock.
type WallClock struct{}

// Now returns time.Now().
func (WallClock) Now() time.Time { return time.Now() }

var _ Clock = WallClock{}

// Runtime hosts a tree of components rooted at a Main component, and wires
// them to a scheduler, a clock, a random source, a logger, and a fault
// policy. Different runtimes are fully independent; a single OS process can
// host many (whole-system simulation runs thousands of nodes in one
// process).
type Runtime struct {
	scheduler   Scheduler
	clock       Clock
	logger      *slog.Logger
	faultPolicy FaultPolicy
	randFn      func(*Component) *rand.Rand

	root       *Component
	active     atomic.Int64 // components in ready or busy state
	liveComps  atomic.Int64
	totalComps atomic.Int64

	// Telemetry (see telemetry.go). latMask and traceSink are set by
	// options before Bootstrap and read unsynchronized on the dispatch hot
	// path; the registry and counters are touched off the hot path only
	// (create/destroy, faults, route-plan builds).
	latMask          uint64 // sample latency when handled&latMask==0; latSamplingDisabled: never
	traceSink        TraceSink
	faults           atomic.Uint64
	routePlanBuilds  atomic.Uint64
	routeCacheResets atomic.Uint64
	compMu           sync.Mutex
	comps            map[*Component]struct{}

	haltOnce sync.Once
	haltCh   chan struct{}
	haltMu   sync.Mutex
	haltErr  error

	schedOnce sync.Once
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithScheduler selects the component scheduler (default: work-stealing
// with NumCPU workers).
func WithScheduler(s Scheduler) Option {
	return func(rt *Runtime) { rt.scheduler = s }
}

// WithClock selects the time source (default: wall clock).
func WithClock(c Clock) Option {
	return func(rt *Runtime) { rt.clock = c }
}

// WithLogger selects the logger (default: slog.Default).
func WithLogger(l *slog.Logger) Option {
	return func(rt *Runtime) { rt.logger = l }
}

// WithFaultPolicy selects what happens to faults no ancestor handles
// (default: HaltOnFault).
func WithFaultPolicy(p FaultPolicy) Option {
	return func(rt *Runtime) { rt.faultPolicy = p }
}

// WithRandProvider selects the per-component random source provider. The
// simulation runtime injects deterministic seeded sources; the default is a
// single mutex-protected time-seeded source shared by all components.
func WithRandProvider(f func(*Component) *rand.Rand) Option {
	return func(rt *Runtime) { rt.randFn = f }
}

// latSamplingDisabled is the latMask sentinel that suppresses handler
// latency sampling. The sample test is handled&latMask==0; an all-ones mask
// matches only handled==0, and the counter is incremented before the test,
// so it never fires.
const latSamplingDisabled = ^uint64(0)

// defaultLatencySampleEvery is the default handler-latency sampling
// interval: one timed execution in every 64.
const defaultLatencySampleEvery = 64

// WithLatencySampling sets how often handler executions are timed into the
// per-component latency histogram: one in every `every` events (rounded up
// to a power of two so the hot-path test is a single mask). every == 1
// times every handler execution; every == 0 disables sampling entirely.
// The default is one in 64.
func WithLatencySampling(every int) Option {
	return func(rt *Runtime) {
		if every <= 0 {
			rt.latMask = latSamplingDisabled
			return
		}
		n := 1
		for n < every {
			n <<= 1
		}
		rt.latMask = uint64(n - 1)
	}
}

// WithTraceSink attaches an event-trace sink (typically a *TraceRing):
// every executed work item is recorded with its timestamp, component, port,
// event type, handler, and duration. The sink must be set before Bootstrap;
// it is read without synchronization on the dispatch path.
func WithTraceSink(sink TraceSink) Option {
	return func(rt *Runtime) { rt.traceSink = sink }
}

// WithSeed makes the default random provider deterministic without
// replacing it.
func WithSeed(seed int64) Option {
	return func(rt *Runtime) {
		shared := rand.New(&lockedSource{src: rand.NewSource(seed).(rand.Source64)})
		rt.randFn = func(*Component) *rand.Rand { return shared }
	}
}

// New creates a runtime. The scheduler is started lazily by Bootstrap.
func New(opts ...Option) *Runtime {
	rt := &Runtime{
		clock:   WallClock{},
		logger:  slog.Default(),
		haltCh:  make(chan struct{}),
		latMask: defaultLatencySampleEvery - 1,
		comps:   make(map[*Component]struct{}),
	}
	for _, o := range opts {
		o(rt)
	}
	if rt.scheduler == nil {
		rt.scheduler = NewWorkStealingScheduler(0)
	}
	if rt.randFn == nil {
		shared := rand.New(&lockedSource{src: rand.NewSource(time.Now().UnixNano()).(rand.Source64)})
		rt.randFn = func(*Component) *rand.Rand { return shared }
	}
	return rt
}

// Bootstrap instantiates def as the root ("Main") component, starts the
// scheduler, and activates the root (which recursively activates the
// subtree it created). It can be called once per runtime.
func (rt *Runtime) Bootstrap(name string, def Definition) (*Component, error) {
	if rt.root != nil {
		return nil, errors.New("core: Bootstrap: runtime already bootstrapped")
	}
	rt.schedOnce.Do(rt.scheduler.Start)
	rt.root = newComponent(rt, nil, name, def)
	rt.root.Control().present(Start{})
	return rt.root, nil
}

// MustBootstrap is Bootstrap but panics on error.
func (rt *Runtime) MustBootstrap(name string, def Definition) *Component {
	c, err := rt.Bootstrap(name, def)
	if err != nil {
		panic(err)
	}
	return c
}

// Root returns the root component, or nil before Bootstrap.
func (rt *Runtime) Root() *Component { return rt.root }

// Scheduler returns the runtime's scheduler.
func (rt *Runtime) Scheduler() Scheduler { return rt.scheduler }

// Clock returns the runtime's clock.
func (rt *Runtime) Clock() Clock { return rt.clock }

// Logger returns the runtime's logger.
func (rt *Runtime) Logger() *slog.Logger { return rt.logger }

// randFor hands out the random source for a component.
func (rt *Runtime) randFor(c *Component) *rand.Rand { return rt.randFn(c) }

// LiveComponents returns the number of live (created, not destroyed)
// components.
func (rt *Runtime) LiveComponents() int64 { return rt.liveComps.Load() }

// TotalComponentsCreated returns the number of components ever created.
func (rt *Runtime) TotalComponentsCreated() int64 { return rt.totalComps.Load() }

// ActiveComponents returns the number of components currently ready or
// busy. Zero means the system is quiescent (no queued runnable work),
// provided no external goroutine is about to inject events.
func (rt *Runtime) ActiveComponents() int64 { return rt.active.Load() }

// WaitQuiescence blocks until no component is ready or busy, or the timeout
// elapses. It reports whether quiescence was reached. External event
// sources (network goroutines, real timers) can of course break quiescence
// immediately after it is observed; tests use this between stimuli.
func (rt *Runtime) WaitQuiescence(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if rt.active.Load() == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return rt.active.Load() == 0
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// Shutdown stops the scheduler. Components are not individually destroyed;
// the runtime simply ceases executing events.
func (rt *Runtime) Shutdown() {
	rt.scheduler.Stop()
	rt.haltOnce.Do(func() { close(rt.haltCh) })
}

// Halted returns a channel closed when the runtime halts (Shutdown or an
// unhandled fault under the HaltOnFault policy).
func (rt *Runtime) Halted() <-chan struct{} { return rt.haltCh }

// HaltErr returns the fault that halted the runtime, if any.
func (rt *Runtime) HaltErr() error {
	rt.haltMu.Lock()
	defer rt.haltMu.Unlock()
	return rt.haltErr
}

// halt records the fatal fault and stops the scheduler asynchronously (the
// halting goroutine is typically a worker; Stop waits for workers, so it
// must not run inline).
func (rt *Runtime) halt(f Fault) {
	rt.haltMu.Lock()
	if rt.haltErr == nil {
		rt.haltErr = f
	}
	rt.haltMu.Unlock()
	rt.haltOnce.Do(func() {
		close(rt.haltCh)
		go rt.scheduler.Stop()
	})
}

// Counter hooks called by components.

func (rt *Runtime) componentCreated(c *Component) {
	rt.liveComps.Add(1)
	rt.totalComps.Add(1)
	rt.compMu.Lock()
	rt.comps[c] = struct{}{}
	rt.compMu.Unlock()
}

func (rt *Runtime) componentDestroyed(c *Component) {
	rt.liveComps.Add(-1)
	rt.compMu.Lock()
	delete(rt.comps, c)
	rt.compMu.Unlock()
}

func (rt *Runtime) componentReady(c *Component) {
	rt.active.Add(1)
}

func (rt *Runtime) componentIdle(c *Component) {
	rt.active.Add(-1)
}

// lockedSource makes a rand.Source64 safe for concurrent use.
type lockedSource struct {
	mu  sync.Mutex
	src rand.Source64
}

func (s *lockedSource) Int63() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Int63()
}

func (s *lockedSource) Uint64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Uint64()
}

func (s *lockedSource) Seed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src.Seed(seed)
}

var _ rand.Source64 = (*lockedSource)(nil)
