package core

import (
	"testing"
	"testing/quick"
	"time"
)

func TestWithSeedDeterministicRand(t *testing.T) {
	draw := func() []int64 {
		rt := New(
			WithScheduler(NewWorkStealingScheduler(1)),
			WithFaultPolicy(LogAndContinue),
			WithSeed(99),
		)
		defer rt.Shutdown()
		var out []int64
		rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
			for i := 0; i < 10; i++ {
				out = append(out, ctx.Rand().Int63())
			}
		}))
		rt.WaitQuiescence(time.Second)
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded rand diverged at %d", i)
		}
	}
}

func TestWallClockAdvances(t *testing.T) {
	rt := newTestRuntime(t)
	var t1, t2 time.Time
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		t1 = ctx.Now()
		time.Sleep(2 * time.Millisecond)
		t2 = ctx.Now()
	}))
	waitQuiet(t, rt)
	if !t2.After(t1) {
		t.Fatalf("wall clock did not advance: %v -> %v", t1, t2)
	}
}

func TestComponentCounters(t *testing.T) {
	rt := newTestRuntime(t)
	root := rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		ctx.Create("a", SetupFunc(func(*Ctx) {}))
		ctx.Create("b", SetupFunc(func(*Ctx) {}))
	}))
	waitQuiet(t, rt)
	if rt.LiveComponents() != 3 {
		t.Fatalf("live %d, want 3 (root + 2)", rt.LiveComponents())
	}
	if rt.TotalComponentsCreated() != 3 {
		t.Fatalf("total %d, want 3", rt.TotalComponentsCreated())
	}
	root.ctx.Destroy(root.Children()[0])
	waitQuiet(t, rt)
	if rt.LiveComponents() != 2 {
		t.Fatalf("live after destroy %d, want 2", rt.LiveComponents())
	}
	if rt.TotalComponentsCreated() != 3 {
		t.Fatalf("total after destroy %d, want 3 (monotonic)", rt.TotalComponentsCreated())
	}
}

func TestWaitQuiescenceTimesOutUnderLoad(t *testing.T) {
	rt := newTestRuntime(t)
	var port *Port
	var cx *Ctx
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		c := ctx.Create("self-feeder", SetupFunc(func(inner *Ctx) {
			cx = inner
			p := inner.Provides(pingPongPort)
			Subscribe(inner, p, func(m ping) {
				// Perpetual self-feeding: never quiescent.
				inner.Trigger(pong{}, p)
				_ = TriggerOn(port, ping{N: m.N + 1})
			})
		}))
		port = c.Provided(pingPongPort)
	}))
	waitQuiet(t, rt)
	cx.Trigger(ping{}, port)
	if rt.WaitQuiescence(30 * time.Millisecond) {
		t.Fatalf("self-feeding system reported quiescent")
	}
}

func TestSubscribeOutOfScopePanics(t *testing.T) {
	rt := newTestRuntime(t)
	var grandchildPort *Port
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		ctx.Create("mid", SetupFunc(func(cx *Ctx) {
			g := cx.Create("g", SetupFunc(func(gx *Ctx) {
				gx.Provides(pingPongPort)
			}))
			grandchildPort = g.Provided(pingPongPort)
		}))
	}))
	waitQuiet(t, rt)
	root := rt.Root()
	defer func() {
		if recover() == nil {
			t.Fatalf("subscribing to a grandchild port must panic (out of scope)")
		}
	}()
	Subscribe(root.ctx, grandchildPort, func(pong) {})
}

func TestTriggerDirectionPanicInsideHandlerBecomesFault(t *testing.T) {
	var faulted bool
	done := make(chan struct{})
	rt := New(
		WithScheduler(NewWorkStealingScheduler(1)),
		WithFaultPolicy(func(rt *Runtime, f Fault) {
			faulted = true
			close(done)
		}),
	)
	defer rt.Shutdown()
	var port *Port
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		c := ctx.Create("bad", SetupFunc(func(cx *Ctx) {
			p := cx.Provides(pingPongPort)
			Subscribe(cx, p, func(ping) {
				// Direction violation: ping is a request, cannot be
				// triggered outward on a provided port.
				cx.Trigger(ping{}, p)
			})
		}))
		port = c.Provided(pingPongPort)
	}))
	rt.WaitQuiescence(time.Second)
	_ = TriggerOn(port, ping{})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("direction violation in handler did not become a Fault")
	}
	if !faulted {
		t.Fatalf("no fault recorded")
	}
}

func TestSubscriptionAccessors(t *testing.T) {
	rt := newTestRuntime(t)
	var sub *Subscription
	var p *Port
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		ctx.Create("c", SetupFunc(func(cx *Ctx) {
			p = cx.Provides(pingPongPort)
			sub = Subscribe(cx, p, func(ping) {})
		}))
	}))
	waitQuiet(t, rt)
	if sub.Port() != p && sub.Port().pair != p.pair {
		t.Fatalf("subscription port accessor")
	}
	if !sub.EventType().AcceptsValue(ping{}) {
		t.Fatalf("subscription event type accessor")
	}
	if sub.String() == "" {
		t.Fatalf("subscription must render")
	}
}

// Property: under any single-threaded interleaving of pushes and pops the
// work-stealing deque behaves as a FIFO (model check).
func TestPropertyWSDequeModel(t *testing.T) {
	rt := newTestRuntime(t)
	root := rt.MustBootstrap("Main", SetupFunc(func(*Ctx) {}))
	waitQuiet(t, rt)
	comps := make([]*Component, 16)
	for i := range comps {
		comps[i] = root.ctx.Create(string(rune('a'+i)), SetupFunc(func(*Ctx) {}))
	}
	f := func(ops []uint8) bool {
		q := newWSDeque()
		var model []*Component
		for _, op := range ops {
			if op%3 != 0 { // push twice as often as pop
				c := comps[int(op)%len(comps)]
				q.push(c)
				model = append(model, c)
			} else {
				got := q.pop()
				if len(model) == 0 {
					if got != nil {
						return false
					}
					continue
				}
				if got != model[0] {
					return false
				}
				model = model[1:]
			}
		}
		if int(q.size()) != len(model) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerWorkerCount(t *testing.T) {
	s := NewWorkStealingScheduler(3)
	if s.Workers() != 3 {
		t.Fatalf("workers %d, want 3", s.Workers())
	}
	auto := NewWorkStealingScheduler(0)
	if auto.Workers() < 1 {
		t.Fatalf("auto workers %d", auto.Workers())
	}
}
