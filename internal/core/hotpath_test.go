package core

// Stress tests and microbenchmarks for the zero-allocation dispatch hot
// path: the work-stealing deque (deque.go) and the copy-on-write routing
// table (port.go). The stress tests are written to run under -race: they
// exercise concurrent push/pop/steal and subscribe/unsubscribe-under-fire
// interleavings that the deterministic tests cannot reach.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWSDequeStressPushPopSteal hammers one deque with N producers, the
// owner popping, and thieves range-stealing concurrently, then verifies
// every pushed component was consumed exactly once.
func TestWSDequeStressPushPopSteal(t *testing.T) {
	const (
		producers = 4
		perProd   = 5000
		thieves   = 3
	)
	total := producers * perProd

	rt := newTestRuntime(t)
	root := rt.MustBootstrap("Main", SetupFunc(func(*Ctx) {}))
	waitQuiet(t, rt)

	comps := make([]*Component, total)
	index := make(map[*Component]int, total)
	for i := range comps {
		comps[i] = root.ctx.Create(fmt.Sprintf("s%d", i), SetupFunc(func(*Ctx) {}))
		index[comps[i]] = i
	}

	d := newWSDeque()
	seen := make([]atomic.Int32, total)
	var consumed atomic.Int64

	record := func(c *Component) {
		if c == nil {
			return
		}
		i, ok := index[c]
		if !ok {
			t.Error("deque returned unknown component")
			return
		}
		if seen[i].Add(1) != 1 {
			t.Errorf("component %d consumed twice", i)
		}
		consumed.Add(1)
	}

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				d.push(comps[p*perProd+i])
			}
		}(p)
	}
	stop := make(chan struct{})
	// Owner-style FIFO popper.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if c := d.pop(); c != nil {
				record(c)
				continue
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	// Thieves stealing half the visible queue in one CAS.
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []*Component
			for {
				n := d.size()/2 + 1
				buf = d.stealInto(buf[:0], n)
				for _, c := range buf {
					record(c)
				}
				if len(buf) == 0 {
					select {
					case <-stop:
						return
					default:
					}
				}
			}
		}()
	}

	deadline := time.After(30 * time.Second)
	for consumed.Load() < int64(total) {
		select {
		case <-deadline:
			close(stop)
			t.Fatalf("consumed %d of %d before deadline", consumed.Load(), total)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	if consumed.Load() != int64(total) {
		t.Fatalf("consumed %d, want %d", consumed.Load(), total)
	}
}

// TestWSDequeGrowUnderSteal forces repeated array growth while thieves are
// active, checking the published-array handoff.
func TestWSDequeGrowUnderSteal(t *testing.T) {
	rt := newTestRuntime(t)
	root := rt.MustBootstrap("Main", SetupFunc(func(*Ctx) {}))
	waitQuiet(t, rt)
	const total = 4096 // 64 initial capacity -> several doublings
	comps := make([]*Component, total)
	for i := range comps {
		comps[i] = root.ctx.Create(fmt.Sprintf("g%d", i), SetupFunc(func(*Ctx) {}))
	}

	d := newWSDeque()
	var consumed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var buf []*Component
		for consumed.Load() < total {
			buf = d.stealInto(buf[:0], 3)
			consumed.Add(int64(len(buf)))
		}
	}()
	for _, c := range comps {
		d.push(c)
	}
	wg.Wait()
	if consumed.Load() != total {
		t.Fatalf("consumed %d, want %d", consumed.Load(), total)
	}
	if d.size() != 0 {
		t.Fatalf("deque not drained: %d left", d.size())
	}
}

type stressEvent struct{ N int }

var stressPort = NewPortType("StressPP", Request[stressEvent]())

// TestRoutingCacheSubscribeUnderFire triggers a continuous event stream
// while a second handler subscribes and unsubscribes concurrently,
// validating that generation bumps invalidate the routing table: the
// permanent handler misses nothing, the toggled handler receives events
// only while subscribed, and a final subscribe/unsubscribe round observed
// after quiescence proves the cache does not serve stale plans.
func TestRoutingCacheSubscribeUnderFire(t *testing.T) {
	rt := New(WithScheduler(NewWorkStealingScheduler(4)), WithFaultPolicy(LogAndContinue))
	defer rt.Shutdown()

	var base, toggled atomic.Int64
	var port *Port
	var sinkCtx *Ctx
	var innerHalf *Port
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		sink := ctx.Create("sink", SetupFunc(func(cx *Ctx) {
			sinkCtx = cx
			innerHalf = cx.Provides(stressPort)
			Subscribe(cx, innerHalf, func(stressEvent) { base.Add(1) })
		}))
		port = sink.Provided(stressPort)
	}))
	if !rt.WaitQuiescence(time.Second) {
		t.Fatal("no initial quiescence")
	}
	inner := innerHalf // extra subscriptions attach to the same inner half

	const events = 20000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < events; i++ {
			if err := TriggerOn(port, stressEvent{N: i}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s := Subscribe(sinkCtx, inner, func(stressEvent) { toggled.Add(1) })
			time.Sleep(50 * time.Microsecond)
			sinkCtx.Unsubscribe(s)
		}
	}()
	wg.Wait()
	if !rt.WaitQuiescence(5 * time.Second) {
		t.Fatal("no quiescence after fire")
	}
	if base.Load() != events {
		t.Fatalf("base handler saw %d of %d events", base.Load(), events)
	}

	// Quiescent invalidation check: a fresh subscription must be visible to
	// the very next trigger (the cached plan for stressEvent predates it).
	var late atomic.Int64
	s := Subscribe(sinkCtx, inner, func(stressEvent) { late.Add(1) })
	if err := TriggerOn(port, stressEvent{N: -1}); err != nil {
		t.Fatal(err)
	}
	if !rt.WaitQuiescence(time.Second) {
		t.Fatal("no quiescence after late subscribe")
	}
	if late.Load() != 1 {
		t.Fatalf("late handler saw %d events, want 1 (stale routing plan?)", late.Load())
	}
	// And after unsubscribing, the next trigger must not reach it.
	sinkCtx.Unsubscribe(s)
	if err := TriggerOn(port, stressEvent{N: -2}); err != nil {
		t.Fatal(err)
	}
	if !rt.WaitQuiescence(time.Second) {
		t.Fatal("no quiescence after late unsubscribe")
	}
	if late.Load() != 1 {
		t.Fatalf("late handler saw %d events after unsubscribe, want 1", late.Load())
	}
}

// TestRoutingCacheChannelAttachUnderFire attaches and detaches a channel
// between rounds of traffic, checking that the frozen channel lists in
// cached plans never go stale: requests triggered by the client while the
// channel is connected reach the provider, requests while it is
// disconnected do not, and no event is duplicated.
func TestRoutingCacheChannelAttachUnderFire(t *testing.T) {
	rt := New(WithScheduler(NewWorkStealingScheduler(4)), WithFaultPolicy(LogAndContinue))
	defer rt.Shutdown()

	var served atomic.Int64
	var srv, cli *Component
	var cliReq *Port // inner half of the client's required port
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		srv = ctx.Create("srv", SetupFunc(func(cx *Ctx) {
			p := cx.Provides(stressPort)
			Subscribe(cx, p, func(stressEvent) { served.Add(1) })
		}))
		cli = ctx.Create("cli", SetupFunc(func(cx *Ctx) {
			cliReq = cx.Requires(stressPort)
		}))
	}))
	if !rt.WaitQuiescence(time.Second) {
		t.Fatal("no initial quiescence")
	}

	const rounds = 50
	const perRound = 100
	for r := 0; r < rounds; r++ {
		ch := MustConnect(srv.Provided(stressPort), cli.Required(stressPort))
		for i := 0; i < perRound; i++ {
			if err := TriggerOn(cliReq, stressEvent{N: i}); err != nil {
				t.Fatal(err)
			}
		}
		if !rt.WaitQuiescence(2 * time.Second) {
			t.Fatal("no quiescence mid-round")
		}
		ch.Disconnect()
		// Requests triggered with the channel detached must not reach srv.
		for i := 0; i < perRound; i++ {
			if err := TriggerOn(cliReq, stressEvent{N: i}); err != nil {
				t.Fatal(err)
			}
		}
		if !rt.WaitQuiescence(2 * time.Second) {
			t.Fatal("no quiescence mid-round")
		}
	}
	if got, want := served.Load(), int64(rounds*perRound); got != want {
		t.Fatalf("provider saw %d events, want %d", got, want)
	}
}

// --- microbenchmarks --------------------------------------------------------

// BenchmarkWSDequePushPop measures the uncontended owner push + FIFO pop
// round trip (the steady-state scheduling cost of one ready component).
func BenchmarkWSDequePushPop(b *testing.B) {
	d := newWSDeque()
	c := &Component{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.push(c)
		if d.pop() == nil {
			b.Fatal("pop returned nil")
		}
	}
}

// BenchmarkWSDequeStealHalf measures range-steal throughput: a victim deque
// is refilled in batches and a thief claims half of it per stealInto call
// (one CAS per batch). The reported ns/op is per stolen component.
func BenchmarkWSDequeStealHalf(b *testing.B) {
	d := newWSDeque()
	c := &Component{}
	var buf []*Component
	const batch = 256
	b.ReportAllocs()
	b.ResetTimer()
	stolen := 0
	for stolen < b.N {
		for i := 0; i < batch; i++ {
			d.push(c)
		}
		for d.size() > 0 {
			buf = d.stealInto(buf[:0], d.size()/2+1)
			stolen += len(buf)
		}
	}
}

// BenchmarkWSDequeStealContended measures steal throughput with one
// producer and several concurrent thieves fighting over the same victim.
func BenchmarkWSDequeStealContended(b *testing.B) {
	d := newWSDeque()
	c := &Component{}
	var consumed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for th := 0; th < 3; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []*Component
			for {
				buf = d.stealInto(buf[:0], d.size()/2+1)
				consumed.Add(int64(len(buf)))
				if len(buf) == 0 {
					select {
					case <-stop:
						return
					default:
					}
				}
			}
		}()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.push(c)
	}
	for consumed.Load() < int64(b.N) {
		runtime.Gosched()
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
