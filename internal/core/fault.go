package core

import (
	"fmt"
	"runtime/debug"
)

// Fault wraps a software fault (an uncaught panic in an event handler). The
// runtime catches the panic, wraps it into a Fault event, and triggers it
// on the faulty component's control port. A parent that subscribed a Fault
// handler on the child's control port can replace the faulty child through
// dynamic reconfiguration or take other action; an unhandled Fault is
// escalated to the parent's parent, and ultimately to the runtime's fault
// policy.
type Fault struct {
	// Component is the component whose handler faulted (or, after
	// escalation, the ancestor the fault is currently attributed to).
	Component *Component
	// Source is the component whose handler originally faulted.
	Source *Component
	// Err is the recovered panic value as an error.
	Err error
	// Event is the event whose handling faulted, when known.
	Event Event
	// Handler names the faulting handler, when known.
	Handler string
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error implements error, so a Fault can itself be escalated or logged.
func (f Fault) Error() string {
	src := "<unknown>"
	if f.Source != nil {
		src = f.Source.Path()
	}
	return fmt.Sprintf("fault in %s (handler %s, event %T): %v", src, f.Handler, f.Event, f.Err)
}

// Unwrap exposes the underlying error for errors.Is/As.
func (f Fault) Unwrap() error { return f.Err }

var _ error = Fault{}

// FaultPolicy decides what happens to a Fault no ancestor handled. The
// default policy logs the fault and halts the runtime (the paper's
// "ultimately a system fault handler dumps the exception to standard error
// and halts the execution").
type FaultPolicy func(rt *Runtime, f Fault)

// HaltOnFault logs the fault and stops the runtime.
func HaltOnFault(rt *Runtime, f Fault) {
	rt.logger.Error("unhandled component fault; halting runtime",
		"fault", f.Error(), "stack", string(f.Stack))
	rt.halt(f)
}

// LogAndContinue logs the fault and keeps the system running. Useful in
// tests and long-lived deployments that prefer degraded operation.
func LogAndContinue(rt *Runtime, f Fault) {
	rt.logger.Error("unhandled component fault; continuing",
		"fault", f.Error(), "stack", string(f.Stack))
}

// handleFault converts a recovered panic into a Fault event and escalates
// it: walking up from the faulty component, the first ancestor that
// subscribed a matching handler on its child's control port receives the
// event; if none does, the runtime fault policy runs.
func (rt *Runtime) handleFault(c *Component, recovered any, ev Event, s *Subscription) {
	rt.faults.Add(1)
	c.stats.faults.Add(1)
	err, ok := recovered.(error)
	if !ok {
		err = fmt.Errorf("panic: %v", recovered)
	}
	handler := "<unknown>"
	if s != nil {
		handler = s.name
	}
	f := Fault{
		Component: c,
		Source:    c,
		Err:       err,
		Event:     ev,
		Handler:   handler,
		Stack:     debug.Stack(),
	}
	rt.escalate(f)
}

// escalate walks the ancestry looking for a Fault subscription on the
// current component's control port (outer half, i.e. handlers the parent
// subscribed). Found: the Fault is delivered there. Not found anywhere: the
// runtime fault policy runs.
func (rt *Runtime) escalate(f Fault) {
	c := f.Component
	faultT := TypeOf[Fault]()
	for c != nil {
		if c.control.hasSubscriptionFor(outer, faultT) {
			f.Component = c
			c.control.half(inner).present(f)
			return
		}
		c = c.parent
	}
	policy := rt.faultPolicy
	if policy == nil {
		policy = HaltOnFault
	}
	policy(rt, f)
}
