package core

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- test fixtures -------------------------------------------------------

// ping/pong event and port types used across the tests.

type ping struct{ N int }
type pong struct{ N int }

// msg is a small event "hierarchy": handlers for the testMsg interface must
// also fire for dataMsg values, mirroring the paper's DataMessage⊆Message.
type testMsg interface{ Src() string }

type baseMsg struct{ src string }

func (m baseMsg) Src() string { return m.src }

type dataMsg struct {
	baseMsg
	Seq int
}

var pingPongPort = NewPortType("PingPong",
	Request[ping](),
	Indication[pong](),
)

var msgPort = NewPortType("Msg",
	Request[testMsg](),
	Indication[testMsg](),
)

// newTestRuntime builds a runtime with a small scheduler and a fault policy
// that records instead of halting.
func newTestRuntime(t *testing.T, opts ...Option) *Runtime {
	t.Helper()
	all := append([]Option{
		WithScheduler(NewWorkStealingScheduler(2)),
		WithFaultPolicy(LogAndContinue),
	}, opts...)
	rt := New(all...)
	t.Cleanup(rt.Shutdown)
	return rt
}

// waitQuiet asserts the runtime reaches quiescence.
func waitQuiet(t *testing.T, rt *Runtime) {
	t.Helper()
	if !rt.WaitQuiescence(5 * time.Second) {
		t.Fatalf("runtime did not reach quiescence")
	}
}

// --- event type matching -------------------------------------------------

func TestEventTypeExactMatch(t *testing.T) {
	et := TypeOf[ping]()
	if !et.AcceptsValue(ping{1}) {
		t.Errorf("TypeOf[ping] must accept ping value")
	}
	if et.AcceptsValue(pong{1}) {
		t.Errorf("TypeOf[ping] must not accept pong value")
	}
}

func TestEventTypeInterfaceMatch(t *testing.T) {
	et := TypeOf[testMsg]()
	if !et.AcceptsValue(dataMsg{baseMsg{"a"}, 1}) {
		t.Errorf("interface event type must accept implementing struct")
	}
	if !et.AcceptsValue(baseMsg{"a"}) {
		t.Errorf("interface event type must accept base struct")
	}
	if et.AcceptsValue(ping{}) {
		t.Errorf("interface event type must not accept non-implementing struct")
	}
}

func TestEventTypeNilSafety(t *testing.T) {
	var et EventType
	if et.AcceptsValue(ping{}) {
		t.Errorf("zero EventType must accept nothing")
	}
	if et.String() == "" {
		t.Errorf("zero EventType must stringify")
	}
}

func TestPortTypeDirectionFiltering(t *testing.T) {
	if !pingPongPort.AllowsValue(ping{}, Negative) {
		t.Errorf("ping must pass in negative direction")
	}
	if pingPongPort.AllowsValue(ping{}, Positive) {
		t.Errorf("ping must not pass in positive direction")
	}
	if !pingPongPort.AllowsValue(pong{}, Positive) {
		t.Errorf("pong must pass in positive direction")
	}
	if pingPongPort.AllowsValue(pong{}, Negative) {
		t.Errorf("pong must not pass in negative direction")
	}
}

func TestPortTypeSubtypePass(t *testing.T) {
	if !msgPort.AllowsValue(dataMsg{baseMsg{"x"}, 1}, Negative) {
		t.Errorf("dataMsg must pass where testMsg is allowed")
	}
}

func TestDirectionString(t *testing.T) {
	if Positive.String() != "+" || Negative.String() != "-" {
		t.Errorf("unexpected direction strings: %s %s", Positive, Negative)
	}
	if Positive.opposite() != Negative || Negative.opposite() != Positive {
		t.Errorf("opposite() incorrect")
	}
}

// --- basic request/indication flow ---------------------------------------

// echoServer provides pingPongPort and answers every ping with a pong.
type echoServer struct {
	ctx  *Ctx
	port *Port
	seen atomic.Int64
}

func (e *echoServer) Setup(ctx *Ctx) {
	e.ctx = ctx
	e.port = ctx.Provides(pingPongPort)
	Subscribe(ctx, e.port, func(p ping) {
		e.seen.Add(1)
		ctx.Trigger(pong{N: p.N}, e.port)
	})
}

// pingClient requires pingPongPort, sends pings, counts pongs.
type pingClient struct {
	ctx   *Ctx
	port  *Port
	got   atomic.Int64
	lastN atomic.Int64
}

func (c *pingClient) Setup(ctx *Ctx) {
	c.ctx = ctx
	c.port = ctx.Requires(pingPongPort)
	Subscribe(ctx, c.port, func(p pong) {
		c.got.Add(1)
		c.lastN.Store(int64(p.N))
	})
}

// wire creates an echo server and client under a root and returns them.
func wirePingPong(t *testing.T, rt *Runtime) (*echoServer, *pingClient) {
	t.Helper()
	srv := &echoServer{}
	cli := &pingClient{}
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		s := ctx.Create("server", srv)
		c := ctx.Create("client", cli)
		ctx.Connect(s.Provided(pingPongPort), c.Required(pingPongPort))
	}))
	waitQuiet(t, rt)
	return srv, cli
}

func TestRequestIndicationRoundTrip(t *testing.T) {
	rt := newTestRuntime(t)
	srv, cli := wirePingPong(t, rt)
	cli.ctx.Trigger(ping{N: 7}, cli.port)
	waitQuiet(t, rt)
	if got := srv.seen.Load(); got != 1 {
		t.Fatalf("server saw %d pings, want 1", got)
	}
	if got := cli.got.Load(); got != 1 {
		t.Fatalf("client got %d pongs, want 1", got)
	}
	if n := cli.lastN.Load(); n != 7 {
		t.Fatalf("client got pong N=%d, want 7", n)
	}
}

func TestManyRoundTrips(t *testing.T) {
	rt := newTestRuntime(t)
	srv, cli := wirePingPong(t, rt)
	const n = 1000
	for i := 0; i < n; i++ {
		cli.ctx.Trigger(ping{N: i}, cli.port)
	}
	waitQuiet(t, rt)
	if got := srv.seen.Load(); got != n {
		t.Fatalf("server saw %d pings, want %d", got, n)
	}
	if got := cli.got.Load(); got != n {
		t.Fatalf("client got %d pongs, want %d", got, n)
	}
}

func TestTriggerDirectionViolationFails(t *testing.T) {
	rt := newTestRuntime(t)
	_, cli := wirePingPong(t, rt)
	// pong is an indication; the client cannot send it as a request.
	if err := TriggerOn(cli.port, pong{}); err == nil {
		t.Fatalf("triggering pong on required port must fail")
	}
	if err := TriggerOn(cli.port, ping{}); err != nil {
		t.Fatalf("triggering ping on required port must succeed: %v", err)
	}
	if err := TriggerOn(nil, ping{}); err == nil {
		t.Fatalf("trigger on nil port must fail")
	}
	if err := TriggerOn(cli.port, nil); err == nil {
		t.Fatalf("trigger of nil event must fail")
	}
}

// --- publish-subscribe fan-out (paper Figures 6 and 7) --------------------

func TestFanOutAcrossChannels(t *testing.T) {
	rt := newTestRuntime(t)
	srv := &echoServer{}
	cli1 := &pingClient{}
	cli2 := &pingClient{}
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		s := ctx.Create("server", srv)
		c1 := ctx.Create("c1", cli1)
		c2 := ctx.Create("c2", cli2)
		ctx.Connect(s.Provided(pingPongPort), c1.Required(pingPongPort))
		ctx.Connect(s.Provided(pingPongPort), c2.Required(pingPongPort))
	}))
	waitQuiet(t, rt)
	// A pong published on the provided port is forwarded by both channels.
	srv.ctx.Trigger(pong{N: 3}, srv.port)
	waitQuiet(t, rt)
	if cli1.got.Load() != 1 || cli2.got.Load() != 1 {
		t.Fatalf("fan-out: c1=%d c2=%d, want 1 and 1", cli1.got.Load(), cli2.got.Load())
	}
}

// multiHandler subscribes two handlers for the same event type on one port.
type multiHandler struct {
	port  *Port
	order []string
	mu    sync.Mutex
}

func (m *multiHandler) Setup(ctx *Ctx) {
	m.port = ctx.Provides(pingPongPort)
	Subscribe(ctx, m.port, func(p ping) {
		m.mu.Lock()
		m.order = append(m.order, "h1")
		m.mu.Unlock()
	})
	Subscribe(ctx, m.port, func(p ping) {
		m.mu.Lock()
		m.order = append(m.order, "h2")
		m.mu.Unlock()
	})
}

func TestMultipleHandlersSequentialInSubscriptionOrder(t *testing.T) {
	rt := newTestRuntime(t)
	mh := &multiHandler{}
	var outer *Port
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		c := ctx.Create("mh", mh)
		outer = c.Provided(pingPongPort)
	}))
	waitQuiet(t, rt)
	if err := TriggerOn(outer, ping{}); err != nil {
		t.Fatal(err)
	}
	waitQuiet(t, rt)
	mh.mu.Lock()
	defer mh.mu.Unlock()
	if len(mh.order) != 2 || mh.order[0] != "h1" || mh.order[1] != "h2" {
		t.Fatalf("handlers ran %v, want [h1 h2]", mh.order)
	}
}

func TestSubtypeDispatch(t *testing.T) {
	rt := newTestRuntime(t)
	var gotIface, gotConcrete atomic.Int64
	var port *Port
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		c := ctx.Create("sub", SetupFunc(func(cx *Ctx) {
			p := cx.Provides(msgPort)
			Subscribe(cx, p, func(m testMsg) { gotIface.Add(1) })
			Subscribe(cx, p, func(m dataMsg) { gotConcrete.Add(1) })
		}))
		port = c.Provided(msgPort)
	}))
	waitQuiet(t, rt)
	if err := TriggerOn(port, dataMsg{baseMsg{"a"}, 1}); err != nil {
		t.Fatal(err)
	}
	if err := TriggerOn(port, baseMsg{"b"}); err != nil {
		t.Fatal(err)
	}
	waitQuiet(t, rt)
	if gotIface.Load() != 2 {
		t.Errorf("interface handler fired %d times, want 2", gotIface.Load())
	}
	if gotConcrete.Load() != 1 {
		t.Errorf("concrete handler fired %d times, want 1", gotConcrete.Load())
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	rt := newTestRuntime(t)
	var got atomic.Int64
	var port *Port
	var sub *Subscription
	var cx *Ctx
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		c := ctx.Create("sub", SetupFunc(func(inner *Ctx) {
			cx = inner
			p := inner.Provides(pingPongPort)
			sub = Subscribe(inner, p, func(ping) { got.Add(1) })
		}))
		port = c.Provided(pingPongPort)
	}))
	waitQuiet(t, rt)
	if err := TriggerOn(port, ping{}); err != nil {
		t.Fatal(err)
	}
	waitQuiet(t, rt)
	cx.Unsubscribe(sub)
	if err := TriggerOn(port, ping{}); err != nil {
		t.Fatal(err)
	}
	waitQuiet(t, rt)
	if got.Load() != 1 {
		t.Fatalf("handler fired %d times, want 1 (unsubscribed after first)", got.Load())
	}
}

// replyOnce mirrors the paper's §2.2 example: handle one message, reply,
// unsubscribe so no further messages are handled.
func TestReplyOnceUnsubscribePattern(t *testing.T) {
	rt := newTestRuntime(t)
	var handled atomic.Int64
	srv := SetupFunc(nil)
	_ = srv
	var serverPort *Port
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		c := ctx.Create("once", SetupFunc(func(cx *Ctx) {
			p := cx.Provides(pingPongPort)
			var sub *Subscription
			sub = Subscribe(cx, p, func(m ping) {
				handled.Add(1)
				cx.Trigger(pong{N: m.N}, p)
				cx.Unsubscribe(sub)
			})
		}))
		serverPort = c.Provided(pingPongPort)
	}))
	waitQuiet(t, rt)
	for i := 0; i < 5; i++ {
		if err := TriggerOn(serverPort, ping{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	waitQuiet(t, rt)
	if handled.Load() != 1 {
		t.Fatalf("handled %d messages, want exactly 1", handled.Load())
	}
}

// --- connection validity ---------------------------------------------------

func TestConnectRejectsSamePolarity(t *testing.T) {
	rt := newTestRuntime(t)
	var p1, p2 *Port
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		a := ctx.Create("a", SetupFunc(func(cx *Ctx) { cx.Provides(pingPongPort) }))
		b := ctx.Create("b", SetupFunc(func(cx *Ctx) { cx.Provides(pingPongPort) }))
		p1 = a.Provided(pingPongPort)
		p2 = b.Provided(pingPongPort)
	}))
	waitQuiet(t, rt)
	if _, err := Connect(p1, p2); err == nil {
		t.Fatalf("connecting two provided outer halves must fail")
	}
}

func TestConnectRejectsTypeMismatch(t *testing.T) {
	rt := newTestRuntime(t)
	var p1, p2 *Port
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		a := ctx.Create("a", SetupFunc(func(cx *Ctx) { cx.Provides(pingPongPort) }))
		b := ctx.Create("b", SetupFunc(func(cx *Ctx) { cx.Requires(msgPort) }))
		p1 = a.Provided(pingPongPort)
		p2 = b.Required(msgPort)
	}))
	waitQuiet(t, rt)
	if _, err := Connect(p1, p2); err == nil {
		t.Fatalf("connecting different port types must fail")
	}
	if _, err := Connect(nil, p1); err == nil {
		t.Fatalf("connecting nil port must fail")
	}
}

func TestDuplicatePortDeclarationPanics(t *testing.T) {
	rt := newTestRuntime(t)
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate Provides must panic")
		}
	}()
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		ctx.Provides(pingPongPort)
		ctx.Provides(pingPongPort)
	}))
}

// --- hierarchical composition: pass-through ports -------------------------

// passThrough provides pingPongPort and delegates to an inner echoServer by
// connecting its own provided port (inner half) to the child's provided
// port (outer half).
type passThrough struct {
	inner *echoServer
}

func (p *passThrough) Setup(ctx *Ctx) {
	own := ctx.Provides(pingPongPort)
	p.inner = &echoServer{}
	child := ctx.Create("inner", p.inner)
	ctx.Connect(own, child.Provided(pingPongPort))
}

func TestProvidedPassThrough(t *testing.T) {
	rt := newTestRuntime(t)
	pt := &passThrough{}
	cli := &pingClient{}
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		s := ctx.Create("outer", pt)
		c := ctx.Create("client", cli)
		ctx.Connect(s.Provided(pingPongPort), c.Required(pingPongPort))
	}))
	waitQuiet(t, rt)
	cli.ctx.Trigger(ping{N: 42}, cli.port)
	waitQuiet(t, rt)
	if pt.inner.seen.Load() != 1 {
		t.Fatalf("inner server saw %d pings, want 1", pt.inner.seen.Load())
	}
	if cli.got.Load() != 1 || cli.lastN.Load() != 42 {
		t.Fatalf("client got %d pongs (last N=%d), want 1 with N=42", cli.got.Load(), cli.lastN.Load())
	}
}

// requiredPassThrough: child requires pingPongPort; parent requires it too
// and delegates the child's requirement upward.
type requiredPassThrough struct {
	child *pingClient
}

func (r *requiredPassThrough) Setup(ctx *Ctx) {
	own := ctx.Requires(pingPongPort)
	r.child = &pingClient{}
	c := ctx.Create("needy", r.child)
	ctx.Connect(c.Required(pingPongPort), own)
}

func TestRequiredPassThrough(t *testing.T) {
	rt := newTestRuntime(t)
	srv := &echoServer{}
	rpt := &requiredPassThrough{}
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		s := ctx.Create("server", srv)
		r := ctx.Create("mid", rpt)
		ctx.Connect(s.Provided(pingPongPort), r.Required(pingPongPort))
	}))
	waitQuiet(t, rt)
	rpt.child.ctx.Trigger(ping{N: 9}, rpt.child.port)
	waitQuiet(t, rt)
	if srv.seen.Load() != 1 {
		t.Fatalf("server saw %d pings, want 1 (through two scopes)", srv.seen.Load())
	}
	if rpt.child.got.Load() != 1 || rpt.child.lastN.Load() != 9 {
		t.Fatalf("grandchild got %d pongs (N=%d), want 1 (N=9)", rpt.child.got.Load(), rpt.child.lastN.Load())
	}
}

// --- lifecycle -------------------------------------------------------------

func TestComponentsCreatedPassive(t *testing.T) {
	rt := newTestRuntime(t)
	var handled atomic.Int64
	var comp *Component
	var port *Port
	root := rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {}))
	waitQuiet(t, rt)

	// Create a child after the root started: it stays passive.
	rootCtx := root.ctx
	comp = rootCtx.Create("late", SetupFunc(func(cx *Ctx) {
		p := cx.Provides(pingPongPort)
		Subscribe(cx, p, func(ping) { handled.Add(1) })
	}))
	port = comp.Provided(pingPongPort)
	if err := TriggerOn(port, ping{}); err != nil {
		t.Fatal(err)
	}
	waitQuiet(t, rt)
	if handled.Load() != 0 {
		t.Fatalf("passive component executed %d events, want 0", handled.Load())
	}
	if comp.IsActive() {
		t.Fatalf("component must be passive before Start")
	}
	// Start it: the queued event must now execute.
	rootCtx.Start(comp)
	waitQuiet(t, rt)
	if !comp.IsActive() {
		t.Fatalf("component must be active after Start")
	}
	if handled.Load() != 1 {
		t.Fatalf("after Start, %d events executed, want 1 (queued while passive)", handled.Load())
	}
}

func TestStopPassivatesAndQueues(t *testing.T) {
	rt := newTestRuntime(t)
	var handled atomic.Int64
	var comp *Component
	root := rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		comp = ctx.Create("c", SetupFunc(func(cx *Ctx) {
			p := cx.Provides(pingPongPort)
			Subscribe(cx, p, func(ping) { handled.Add(1) })
		}))
	}))
	waitQuiet(t, rt)
	port := comp.Provided(pingPongPort)
	root.ctx.Stop(comp)
	waitQuiet(t, rt)
	if err := TriggerOn(port, ping{}); err != nil {
		t.Fatal(err)
	}
	waitQuiet(t, rt)
	if handled.Load() != 0 {
		t.Fatalf("stopped component executed %d events, want 0", handled.Load())
	}
	root.ctx.Start(comp)
	waitQuiet(t, rt)
	if handled.Load() != 1 {
		t.Fatalf("restarted component executed %d events, want 1", handled.Load())
	}
}

func TestRecursiveStartStop(t *testing.T) {
	rt := newTestRuntime(t)
	var grandchild *Component
	var child *Component
	root := rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		child = ctx.Create("child", SetupFunc(func(cx *Ctx) {
			grandchild = cx.Create("grandchild", SetupFunc(func(*Ctx) {}))
		}))
	}))
	waitQuiet(t, rt)
	if !child.IsActive() || !grandchild.IsActive() {
		t.Fatalf("bootstrap must recursively activate the tree: child=%v grandchild=%v",
			child.IsActive(), grandchild.IsActive())
	}
	root.ctx.Stop(child)
	waitQuiet(t, rt)
	if child.IsActive() || grandchild.IsActive() {
		t.Fatalf("Stop must recursively passivate: child=%v grandchild=%v",
			child.IsActive(), grandchild.IsActive())
	}
}

func TestStartStopHandlersRun(t *testing.T) {
	rt := newTestRuntime(t)
	var events []string
	var mu sync.Mutex
	record := func(s string) {
		mu.Lock()
		events = append(events, s)
		mu.Unlock()
	}
	var comp *Component
	root := rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		comp = ctx.Create("c", SetupFunc(func(cx *Ctx) {
			Subscribe(cx, cx.Control(), func(Start) { record("start") })
			Subscribe(cx, cx.Control(), func(Stop) { record("stop") })
		}))
	}))
	waitQuiet(t, rt)
	root.ctx.Stop(comp)
	waitQuiet(t, rt)
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 || events[0] != "start" || events[1] != "stop" {
		t.Fatalf("lifecycle handler order %v, want [start stop]", events)
	}
}

type initEvent struct{ V int }

func TestInitHandledFirst(t *testing.T) {
	rt := newTestRuntime(t)
	var order []string
	var mu sync.Mutex
	record := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		child := ctx.Create("c", SetupFunc(func(cx *Ctx) {
			p := cx.Provides(pingPongPort)
			Subscribe(cx, p, func(ping) { record("ping") })
			Subscribe(cx, cx.Control(), func(iv initEvent) { record(fmt.Sprintf("init:%d", iv.V)) })
		}))
		// Deliver an application event BEFORE Init and Start: the paper
		// guarantees Init is the first event handled regardless.
		ctx.Trigger(ping{}, child.Provided(pingPongPort))
		ctx.Init(child, initEvent{V: 42})
		ctx.Start(child)
	}))
	waitQuiet(t, rt)
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "init:42" || order[1] != "ping" {
		t.Fatalf("execution order %v, want [init:42 ping]", order)
	}
}

func TestKillDestroysComponent(t *testing.T) {
	rt := newTestRuntime(t)
	var comp *Component
	root := rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		comp = ctx.Create("c", SetupFunc(func(*Ctx) {}))
	}))
	waitQuiet(t, rt)
	root.ctx.Trigger(Kill{}, comp.Control())
	waitQuiet(t, rt)
	if !comp.IsDestroyed() {
		t.Fatalf("Kill must destroy the component")
	}
	if got := len(root.Children()); got != 0 {
		t.Fatalf("root has %d children after Kill, want 0", got)
	}
}

func TestDestroySubtree(t *testing.T) {
	rt := newTestRuntime(t)
	var child, grandchild *Component
	root := rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		child = ctx.Create("child", SetupFunc(func(cx *Ctx) {
			grandchild = cx.Create("grandchild", SetupFunc(func(*Ctx) {}))
		}))
	}))
	waitQuiet(t, rt)
	before := rt.LiveComponents()
	root.ctx.Destroy(child)
	waitQuiet(t, rt)
	if !child.IsDestroyed() || !grandchild.IsDestroyed() {
		t.Fatalf("destroy must tear down the subtree")
	}
	if rt.LiveComponents() != before-2 {
		t.Fatalf("live components %d, want %d", rt.LiveComponents(), before-2)
	}
	// Events to destroyed components are dropped silently.
	if err := TriggerOn(child.Control(), Start{}); err != nil {
		t.Fatalf("trigger to destroyed component must not error: %v", err)
	}
}

// --- fault management ------------------------------------------------------

var errBoom = errors.New("boom")

type faultyComp struct{ port *Port }

func (f *faultyComp) Setup(ctx *Ctx) {
	f.port = ctx.Provides(pingPongPort)
	Subscribe(ctx, f.port, func(ping) { panic(errBoom) })
}

func TestFaultDeliveredToSubscribedParent(t *testing.T) {
	rt := newTestRuntime(t)
	var got atomic.Pointer[Fault]
	fc := &faultyComp{}
	var port *Port
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		child := ctx.Create("faulty", fc)
		Subscribe(ctx, child.Control(), func(f Fault) { got.Store(&f) })
		port = child.Provided(pingPongPort)
	}))
	waitQuiet(t, rt)
	if err := TriggerOn(port, ping{}); err != nil {
		t.Fatal(err)
	}
	waitQuiet(t, rt)
	f := got.Load()
	if f == nil {
		t.Fatalf("parent did not receive Fault")
	}
	if !errors.Is(f.Err, errBoom) {
		t.Fatalf("fault error %v, want errBoom", f.Err)
	}
	if f.Source == nil || f.Source.Name() != "faulty" {
		t.Fatalf("fault source %v, want faulty", f.Source)
	}
	if _, ok := f.Event.(ping); !ok {
		t.Fatalf("fault event %T, want ping", f.Event)
	}
}

func TestFaultEscalatesToGrandparent(t *testing.T) {
	rt := newTestRuntime(t)
	var got atomic.Pointer[Fault]
	fc := &faultyComp{}
	var port *Port
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		mid := ctx.Create("mid", SetupFunc(func(cx *Ctx) {
			child := cx.Create("faulty", fc)
			port = child.Provided(pingPongPort)
		}))
		// Only the grandparent subscribes, on the middle component's
		// control port: the fault must propagate up.
		Subscribe(ctx, mid.Control(), func(f Fault) { got.Store(&f) })
	}))
	waitQuiet(t, rt)
	if err := TriggerOn(port, ping{}); err != nil {
		t.Fatal(err)
	}
	waitQuiet(t, rt)
	f := got.Load()
	if f == nil {
		t.Fatalf("grandparent did not receive escalated Fault")
	}
	if f.Source.Name() != "faulty" {
		t.Fatalf("fault source %s, want faulty", f.Source.Name())
	}
	if f.Component.Name() != "mid" {
		t.Fatalf("fault attributed to %s, want mid", f.Component.Name())
	}
}

func TestUnhandledFaultHitsPolicy(t *testing.T) {
	var polled atomic.Int64
	rt := New(
		WithScheduler(NewWorkStealingScheduler(1)),
		WithFaultPolicy(func(rt *Runtime, f Fault) { polled.Add(1) }),
	)
	defer rt.Shutdown()
	fc := &faultyComp{}
	var port *Port
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		child := ctx.Create("faulty", fc)
		port = child.Provided(pingPongPort)
	}))
	if !rt.WaitQuiescence(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	if err := TriggerOn(port, ping{}); err != nil {
		t.Fatal(err)
	}
	if !rt.WaitQuiescence(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	if polled.Load() != 1 {
		t.Fatalf("fault policy ran %d times, want 1", polled.Load())
	}
}

func TestHaltOnFaultStopsRuntime(t *testing.T) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	rt := New(WithScheduler(NewWorkStealingScheduler(1)), WithLogger(quiet)) // default policy: halt
	fc := &faultyComp{}
	var port *Port
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		child := ctx.Create("faulty", fc)
		port = child.Provided(pingPongPort)
	}))
	if !rt.WaitQuiescence(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	if err := TriggerOn(port, ping{}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-rt.Halted():
	case <-time.After(5 * time.Second):
		t.Fatalf("runtime did not halt on unhandled fault")
	}
	if rt.HaltErr() == nil {
		t.Fatalf("HaltErr must report the fault")
	}
	if !errors.Is(rt.HaltErr(), errBoom) {
		t.Fatalf("HaltErr = %v, want errBoom via Unwrap", rt.HaltErr())
	}
}

func TestFaultErrorFormatting(t *testing.T) {
	f := Fault{Err: errBoom, Handler: "h", Event: ping{}}
	if f.Error() == "" {
		t.Fatalf("fault must format")
	}
	if !errors.Is(f, errBoom) {
		t.Fatalf("fault must unwrap to cause")
	}
}

// --- concurrency & scheduler ------------------------------------------------

func TestHandlersMutuallyExclusivePerComponent(t *testing.T) {
	rt := New(WithScheduler(NewWorkStealingScheduler(8)), WithFaultPolicy(LogAndContinue))
	defer rt.Shutdown()
	var inHandler atomic.Int64
	var violations atomic.Int64
	var count atomic.Int64
	var port *Port
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		c := ctx.Create("serial", SetupFunc(func(cx *Ctx) {
			p := cx.Provides(pingPongPort)
			Subscribe(cx, p, func(ping) {
				if inHandler.Add(1) != 1 {
					violations.Add(1)
				}
				count.Add(1)
				inHandler.Add(-1)
			})
		}))
		port = c.Provided(pingPongPort)
	}))
	if !rt.WaitQuiescence(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	const n = 5000
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				_ = TriggerOn(port, ping{N: i})
			}
		}()
	}
	wg.Wait()
	if !rt.WaitQuiescence(10 * time.Second) {
		t.Fatal("no quiescence")
	}
	if violations.Load() != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations.Load())
	}
	if count.Load() != n {
		t.Fatalf("executed %d events, want %d", count.Load(), n)
	}
}

func TestWorkStealingOccursUnderImbalance(t *testing.T) {
	sched := NewWorkStealingScheduler(4)
	rt := New(WithScheduler(sched), WithFaultPolicy(LogAndContinue))
	defer rt.Shutdown()
	const comps = 64
	var total atomic.Int64
	ports := make([]*Port, comps)
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		for i := 0; i < comps; i++ {
			c := ctx.Create(fmt.Sprintf("w%d", i), SetupFunc(func(cx *Ctx) {
				p := cx.Provides(pingPongPort)
				Subscribe(cx, p, func(ping) {
					// Small spin so queues build up.
					for j := 0; j < 100; j++ {
						_ = j
					}
					total.Add(1)
				})
			}))
			ports[i] = c.Provided(pingPongPort)
		}
	}))
	if !rt.WaitQuiescence(5 * time.Second) {
		t.Fatal("no quiescence")
	}
	const per = 200
	for i := 0; i < comps; i++ {
		for j := 0; j < per; j++ {
			_ = TriggerOn(ports[i], ping{})
		}
	}
	if !rt.WaitQuiescence(30 * time.Second) {
		t.Fatal("no quiescence")
	}
	if total.Load() != comps*per {
		t.Fatalf("executed %d, want %d", total.Load(), comps*per)
	}
	executed, _, _ := sched.Stats()
	if executed == 0 {
		t.Fatalf("scheduler executed nothing")
	}
}

func TestSchedulerStopIsIdempotent(t *testing.T) {
	s := NewWorkStealingScheduler(2)
	s.Start()
	s.Stop()
	s.Stop() // must not panic or deadlock
}

func TestWSDequeFIFO(t *testing.T) {
	q := newWSDeque()
	rt := newTestRuntime(t)
	root := rt.MustBootstrap("Main", SetupFunc(func(*Ctx) {}))
	waitQuiet(t, rt)
	cs := make([]*Component, 10)
	for i := range cs {
		cs[i] = root.ctx.Create(fmt.Sprintf("q%d", i), SetupFunc(func(*Ctx) {}))
		q.push(cs[i])
	}
	for i := range cs {
		got := q.pop()
		if got != cs[i] {
			t.Fatalf("pop %d: got %v, want %v", i, got, cs[i])
		}
	}
	if q.pop() != nil {
		t.Fatalf("empty queue must pop nil")
	}
}

func TestWSDequeConcurrentPushPop(t *testing.T) {
	q := newWSDeque()
	rt := newTestRuntime(t)
	root := rt.MustBootstrap("Main", SetupFunc(func(*Ctx) {}))
	waitQuiet(t, rt)
	comp := root.ctx.Create("x", SetupFunc(func(*Ctx) {}))
	const n = 10000
	var pushed, popped atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				q.push(comp)
				pushed.Add(1)
			}
		}()
		go func() {
			defer wg.Done()
			for popped.Load() < 4*n {
				if q.pop() != nil {
					popped.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if popped.Load() != 4*n {
		t.Fatalf("popped %d, want %d", popped.Load(), 4*n)
	}
}

// --- misc -------------------------------------------------------------------

func TestComponentPathAndString(t *testing.T) {
	rt := newTestRuntime(t)
	var child *Component
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		child = ctx.Create("kid", SetupFunc(func(*Ctx) {}))
	}))
	waitQuiet(t, rt)
	if child.Path() != "/Main/kid" {
		t.Fatalf("path %q, want /Main/kid", child.Path())
	}
	if child.String() != "/Main/kid" {
		t.Fatalf("String %q, want /Main/kid", child.String())
	}
	if child.Parent() == nil || child.Parent().Name() != "Main" {
		t.Fatalf("parent wrong")
	}
}

func TestDoubleBootstrapFails(t *testing.T) {
	rt := newTestRuntime(t)
	rt.MustBootstrap("Main", SetupFunc(func(*Ctx) {}))
	if _, err := rt.Bootstrap("Again", SetupFunc(func(*Ctx) {})); err == nil {
		t.Fatalf("second Bootstrap must fail")
	}
}

func TestPortAccessors(t *testing.T) {
	rt := newTestRuntime(t)
	var comp *Component
	var innerP *Port
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		comp = ctx.Create("c", SetupFunc(func(cx *Ctx) {
			innerP = cx.Provides(pingPongPort)
		}))
	}))
	waitQuiet(t, rt)
	if innerP.Type() != pingPongPort {
		t.Fatalf("port type accessor wrong")
	}
	if !innerP.IsProvided() {
		t.Fatalf("IsProvided wrong")
	}
	if innerP.Owner() != comp {
		t.Fatalf("owner wrong")
	}
	if comp.Provided(msgPort) != nil {
		t.Fatalf("Provided for undeclared type must be nil")
	}
	if comp.Required(pingPongPort) != nil {
		t.Fatalf("Required for undeclared type must be nil")
	}
	if innerP.String() == "" || comp.Control().String() == "" {
		t.Fatalf("String must render")
	}
}

func TestQueuedEventsCounter(t *testing.T) {
	rt := newTestRuntime(t)
	var comp *Component
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		comp = ctx.Create("c", SetupFunc(func(cx *Ctx) {
			p := cx.Provides(pingPongPort)
			Subscribe(cx, p, func(ping) {})
		}))
	}))
	waitQuiet(t, rt)
	rt.Root().ctx.Stop(comp)
	waitQuiet(t, rt)
	for i := 0; i < 5; i++ {
		_ = TriggerOn(comp.Provided(pingPongPort), ping{})
	}
	// Give delivery a moment (delivery is synchronous from this goroutine,
	// so the counter is immediately visible).
	if got := comp.QueuedEvents(); got != 5 {
		t.Fatalf("queued %d, want 5", got)
	}
}

func TestPortTypeString(t *testing.T) {
	s := pingPongPort.String()
	if s == "" {
		t.Fatalf("empty port type string")
	}
}
