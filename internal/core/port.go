package core

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
)

// face identifies which half of a port pair a *Port handle refers to.
type face int

const (
	// inner is the half facing the owning component's own code and scope
	// (its subcomponents). Provides/Requires return inner halves.
	inner face = iota + 1
	// outer is the half facing the parent's scope. Component.Provided and
	// Component.Required return outer halves.
	outer
)

func (f face) String() string {
	if f == inner {
		return "inner"
	}
	return "outer"
}

func (f face) twin() face {
	if f == inner {
		return outer
	}
	return inner
}

// Port is one half of a port instance: a gate through which a component
// communicates with its environment by sending and receiving events.
//
// Each port instance is a pair of halves. The inner half faces the owning
// component (the component triggers and subscribes there); the outer half
// faces the enclosing scope (the parent connects channels there and may
// subscribe its own handlers, e.g. a Fault handler on a child's control
// port). An event presented at one half crosses to the twin half, where it
// is handled by matching subscriptions and forwarded by attached channels.
type Port struct {
	pair *portPair
	face face
}

// portPair is the shared state of the two halves of one port instance.
type portPair struct {
	typ      *PortType
	owner    *Component
	provided bool
	// isControl marks the owner's control port pair, whose inner half must
	// deliver lifecycle events to the owner even with no subscription.
	isControl bool
	// halves are the two canonical Port handles, indexed by face-1. All
	// half() calls return pointers into this array, so the hot path never
	// allocates a Port and handle identity is stable.
	halves [2]Port

	mu    sync.RWMutex
	subs  [2][]*Subscription // indexed by face-1
	chans [2][]*Channel      // indexed by face-1
	// gen is bumped (under mu) on any subscription or channel mutation; the
	// routing tables below are valid only while their recorded generation
	// matches it.
	gen atomic.Uint64
	// routes caches, per destination face, the precomputed delivery plan of
	// every dynamic event type seen so far. Tables are immutable once
	// published (copy-on-write) and replaced wholesale, so the steady-state
	// dispatch path is one atomic load plus one map hit: no lock, no slice
	// allocation, no subscription scan.
	routes [2]atomic.Pointer[routeTable]
}

func newPortPair(typ *PortType, owner *Component, provided bool) *portPair {
	pp := &portPair{typ: typ, owner: owner, provided: provided}
	pp.halves[inner-1] = Port{pair: pp, face: inner}
	pp.halves[outer-1] = Port{pair: pp, face: outer}
	return pp
}

// half returns the canonical Port handle for one face of the pair.
func (pp *portPair) half(f face) *Port { return &pp.halves[f-1] }

// Type returns the port's type.
func (p *Port) Type() *PortType { return p.pair.typ }

// Owner returns the component that declared this port.
func (p *Port) Owner() *Component { return p.pair.owner }

// IsProvided reports whether the underlying port is a provided port of its
// owner (as opposed to a required port).
func (p *Port) IsProvided() bool { return p.pair.provided }

// twin returns the opposite half of the same port instance.
func (p *Port) twin() *Port { return p.pair.half(p.face.twin()) }

// String renders the half for diagnostics, e.g. "Network(provided,inner)@MyNetwork".
func (p *Port) String() string {
	kind := "required"
	if p.pair.provided {
		kind = "provided"
	}
	return fmt.Sprintf("%s(%s,%s)@%s", p.pair.typ.Name(), kind, p.face, p.pair.owner.Name())
}

// crossDirection returns the Direction of events moving from this half to
// its twin. For a provided port, outer→inner movement is Negative (requests
// travel into the provider) and inner→outer is Positive; for a required
// port it is the mirror image.
func (p *Port) crossDirection() Direction {
	if p.pair.provided {
		if p.face == outer {
			return Negative
		}
		return Positive
	}
	if p.face == outer {
		return Positive
	}
	return Negative
}

// incomingDirection returns the Direction of events that cross INTO this
// half (and hence may match subscriptions attached here).
func (p *Port) incomingDirection() Direction { return p.twin().crossDirection() }

// providerLike reports whether this half emits Positive events outward into
// its scope. Two halves may be connected by a channel iff they have the
// same port type and opposite polarity (one provider-like, one
// requirer-like). The provider-like halves are the outer half of a provided
// port and the inner half of a required port.
func (p *Port) providerLike() bool {
	return p.pair.provided == (p.face == outer)
}

// Subscription binds an event handler owned by some component to one port
// half. It fires for every event of a matching type that crosses into that
// half.
type Subscription struct {
	owner   *Component // component whose handler this is
	port    *Port      // half the subscription is attached to
	eventT  EventType
	name    string // handler name for diagnostics
	handler func(Event)
	// active is cleared by unsubscribe and re-checked at execution time, so
	// a handler never fires for events that were routed before the
	// unsubscribe but not yet executed. Atomic because unsubscribe may run
	// on any goroutine while a worker is mid-runItem.
	active atomic.Bool
}

// EventType returns the event type the subscription accepts.
func (s *Subscription) EventType() EventType { return s.eventT }

// Port returns the half the subscription is attached to.
func (s *Subscription) Port() *Port { return s.port }

// String renders the subscription for diagnostics.
func (s *Subscription) String() string {
	return fmt.Sprintf("%s(%s)@%s", s.name, s.eventT, s.port)
}

// subscribe attaches a prepared subscription to its half, validating the
// event type against the port type's direction sets.
func (pp *portPair) subscribe(s *Subscription) error {
	in := s.port.incomingDirection()
	if !pp.typ.Allows(s.eventT, in) {
		return fmt.Errorf("core: cannot subscribe handler for %s at %s: port type %s does not allow %s in direction %s",
			s.eventT, s.port, pp.typ.Name(), s.eventT, in)
	}
	pp.subscribeUnchecked(s)
	return nil
}

// subscribeUnchecked attaches a subscription without direction validation.
// The control port uses it directly: control accepts any Init-style
// configuration event in addition to its declared lifecycle events.
func (pp *portPair) subscribeUnchecked(s *Subscription) {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	s.active.Store(true)
	pp.subs[s.port.face-1] = append(pp.subs[s.port.face-1], s)
	pp.gen.Add(1)
}

// unsubscribe detaches a subscription from its half. It is a no-op if the
// subscription was already removed.
func (pp *portPair) unsubscribe(s *Subscription) {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	list := pp.subs[s.port.face-1]
	for i, cur := range list {
		if cur == s {
			pp.subs[s.port.face-1] = append(list[:i:i], list[i+1:]...)
			s.active.Store(false)
			pp.gen.Add(1)
			return
		}
	}
}

// AttachedChannels snapshots the channels currently connected to either
// half of this port. The §2.6 reconfiguration primitives (Hold, Resume,
// Unplug, Disconnect) live on channels; a component that must quiesce its
// own boundary — e.g. the TCP transport holding the Network port around a
// live codec swap — enumerates them here and applies the primitive to
// each. The returned slice is a copy; channels attached or detached later
// are not reflected.
func (p *Port) AttachedChannels() []*Channel {
	pp := p.pair
	pp.mu.RLock()
	defer pp.mu.RUnlock()
	out := make([]*Channel, 0, len(pp.chans[0])+len(pp.chans[1]))
	out = append(out, pp.chans[0]...)
	out = append(out, pp.chans[1]...)
	return out
}

// attachChannel registers a channel endpoint on one half.
func (pp *portPair) attachChannel(f face, ch *Channel) {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	pp.chans[f-1] = append(pp.chans[f-1], ch)
	pp.gen.Add(1)
}

// detachChannel removes a channel endpoint from one half.
func (pp *portPair) detachChannel(f face, ch *Channel) {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	list := pp.chans[f-1]
	for i, cur := range list {
		if cur == ch {
			pp.chans[f-1] = append(list[:i:i], list[i+1:]...)
			pp.gen.Add(1)
			return
		}
	}
}

// routeCacheCap bounds the number of cached delivery plans per route table
// (per port-pair face). Plans are keyed by dynamic event type with no
// eviction, so a pathological workload producing unbounded distinct types
// would otherwise grow a table without bound; at the cap the table is reset
// to just the newest plan (dropped plans are rebuilt on their next miss)
// and the runtime's reset counter is bumped. A var, not a const, so tests
// can lower it without generating hundreds of distinct Go types.
var routeCacheCap = 256

// routeTable is an immutable snapshot of delivery plans for one destination
// face, valid while gen matches the pair's generation counter. It is
// replaced wholesale (copy-on-write) when a new dynamic type is planned.
type routeTable struct {
	gen   uint64
	plans map[reflect.Type]*routePlan
}

// routePlan is the precomputed delivery of one dynamic event type crossing
// into one face: the component enqueues (subscriptions pre-grouped by owner,
// with the control flag and the implicit owner-lifecycle delivery already
// resolved) and the frozen channel forwarding list.
type routePlan struct {
	deliveries []routeDelivery
	chans      []*Channel
}

// routeDelivery is one enqueue of the plan. subs is shared by every event
// that hits the plan; executeOne re-checks Subscription.active, so a stale
// plan entry for an unsubscribed handler is skipped exactly as a stale
// workItem was before planning existed.
type routeDelivery struct {
	dest    *Component
	subs    []*Subscription
	control bool
}

// present delivers an event at half p: the event crosses to the twin half,
// where matching subscriptions are scheduled onto their owners' queues and
// attached channels forward the event onward. The caller must already have
// validated the event's direction (Trigger does; channels preserve it).
//
// Delivery is synchronous enqueueing: by the time present returns, the
// event sits in every destination component's queue, preserving FIFO order
// per source component along every path.
func (p *Port) present(ev Event) { p.deliver(ev, nil) }

// deliver is present with a scheduler locality hint: when the event is
// triggered from inside a worker's handler execution, from carries that
// worker so newly readied components land on its own deque (see
// Component.wake).
func (p *Port) deliver(ev Event, from *worker) {
	pp := p.pair
	dst := p.twin()
	plan := pp.planFor(dst, reflect.TypeOf(ev))
	if len(plan.chans) < fanoutBatchMinChans {
		plan.run(ev, dst, from)
		return
	}
	// Broadcast: collect the whole transitive fan-out, then flush with one
	// queue-lock acquisition per destination run and one batched scheduler
	// submission (see fanout.go).
	b := acquireFanoutBatch(from)
	plan.runInto(ev, dst, from, b)
	b.flush(from)
	releaseFanoutBatch(b)
}

// deliverSlice presents a slice of events at half p as one batch, in slice
// order. When the events share one dynamic type (the high-rate producer
// case) the routing plan is looked up once and every attached channel
// observes the slice as an atomic batch — a held channel buffers it whole,
// in order. Heterogeneous slices fall back to per-event delivery, which
// preserves order all the same.
func (p *Port) deliverSlice(evs []Event, from *worker) {
	switch len(evs) {
	case 0:
		return
	case 1:
		p.deliver(evs[0], from)
		return
	}
	dynT := reflect.TypeOf(evs[0])
	for _, ev := range evs[1:] {
		if reflect.TypeOf(ev) != dynT {
			for _, e := range evs {
				p.deliver(e, from)
			}
			return
		}
	}
	pp := p.pair
	dst := p.twin()
	plan := pp.planFor(dst, dynT)
	b := acquireFanoutBatch(from)
	plan.runSliceInto(evs, dst, from, b)
	b.flush(from)
	releaseFanoutBatch(b)
}

// deliverInto is deliver inside an ongoing batch collection: the event
// crossed a channel of a plan already being batched, so its own fan-out
// joins the same batch instead of flushing separately.
func (p *Port) deliverInto(ev Event, from *worker, b *fanoutBatch) {
	pp := p.pair
	dst := p.twin()
	pp.planFor(dst, reflect.TypeOf(ev)).runInto(ev, dst, from, b)
}

// deliverSliceInto is deliverSlice inside an ongoing batch collection. The
// caller guarantees the slice is homogeneous (checked once at the top-level
// deliverSlice).
func (p *Port) deliverSliceInto(evs []Event, from *worker, b *fanoutBatch) {
	if len(evs) == 0 {
		return
	}
	pp := p.pair
	dst := p.twin()
	pp.planFor(dst, reflect.TypeOf(evs[0])).runSliceInto(evs, dst, from, b)
}

// planFor returns the delivery plan for events of dynamic type dynT
// crossing into half dst: one atomic generation load, one atomic table
// load, one map hit on the steady-state path; a miss builds and publishes
// the plan copy-on-write.
func (pp *portPair) planFor(dst *Port, dynT reflect.Type) *routePlan {
	gen := pp.gen.Load()
	if tab := pp.routes[dst.face-1].Load(); tab != nil && tab.gen == gen {
		if plan, ok := tab.plans[dynT]; ok {
			return plan
		}
	}
	plan, gen := pp.buildPlan(dst, dynT)
	pp.publishPlan(dst.face, dynT, plan, gen)
	return plan
}

// run executes a delivery plan for one event instance (the direct path:
// zero or one attached channel).
func (plan *routePlan) run(ev Event, dst *Port, from *worker) {
	for i := range plan.deliveries {
		d := &plan.deliveries[i]
		d.dest.enqueue(workItem{event: ev, subs: d.subs, control: d.control, via: dst}, from)
	}
	for _, ch := range plan.chans {
		ch.forward(ev, dst, from)
	}
}

// runInto executes a delivery plan for one event instance into a batch:
// enqueues are collected rather than performed, and channel forwarding
// recurses with the same batch.
func (plan *routePlan) runInto(ev Event, dst *Port, from *worker, b *fanoutBatch) {
	for i := range plan.deliveries {
		d := &plan.deliveries[i]
		b.add(d.dest, workItem{event: ev, subs: d.subs, control: d.control, via: dst})
	}
	for _, ch := range plan.chans {
		ch.forwardInto(ev, dst, from, b)
	}
}

// runSliceInto executes a delivery plan for a homogeneous event slice into
// a batch. Per delivery, the slice's items are emitted adjacently (one
// queue-lock acquisition at flush); per channel, the slice crosses as an
// atomic batch.
func (plan *routePlan) runSliceInto(evs []Event, dst *Port, from *worker, b *fanoutBatch) {
	for i := range plan.deliveries {
		d := &plan.deliveries[i]
		for _, ev := range evs {
			b.add(d.dest, workItem{event: ev, subs: d.subs, control: d.control, via: dst})
		}
	}
	for _, ch := range plan.chans {
		ch.forwardSlice(evs, dst, from, b)
	}
}

// buildPlan computes the delivery plan for events of dynamic type dynT
// crossing into half dst, returning it with the generation it is valid for.
// It reproduces exactly the historical per-event matching semantics:
// matching subscriptions grouped by owning component (all handlers of one
// component for one event execute back-to-back with no interleaved foreign
// event — the paper's Figure 7), and lifecycle events crossing into the
// inner half of a control port always reaching the owner's control queue so
// the runtime can intercept Start/Stop/Init/Kill.
func (pp *portPair) buildPlan(dst *Port, dynT reflect.Type) (*routePlan, uint64) {
	pp.mu.RLock()
	defer pp.mu.RUnlock()
	gen := pp.gen.Load() // stable: mutators bump only under mu.Lock

	if pp.owner != nil && pp.owner.rt != nil {
		pp.owner.rt.routePlanBuilds.Add(1)
	}
	dynET := EventType{t: dynT}
	var matched []*Subscription
	for _, s := range pp.subs[dst.face-1] {
		if s.eventT.Accepts(dynET) {
			matched = append(matched, s)
		}
	}

	plan := &routePlan{}
	if n := len(pp.chans[dst.face-1]); n > 0 {
		plan.chans = make([]*Channel, n)
		copy(plan.chans, pp.chans[dst.face-1])
	}

	ownerControl := pp.isControl && dst.face == inner

	// Group matched subscriptions by owner, preserving first-match order.
	var order []*Component
	byOwner := make(map[*Component][]*Subscription, 2)
	for _, s := range matched {
		if _, ok := byOwner[s.owner]; !ok {
			order = append(order, s.owner)
		}
		byOwner[s.owner] = append(byOwner[s.owner], s)
	}

	if ownerControl {
		if _, ok := byOwner[pp.owner]; !ok {
			// Owner has no matching handler but must still see the
			// lifecycle event, ahead of any foreign observers.
			plan.deliveries = append(plan.deliveries, routeDelivery{dest: pp.owner, control: true})
		}
	}
	for _, owner := range order {
		plan.deliveries = append(plan.deliveries, routeDelivery{
			dest:    owner,
			subs:    byOwner[owner],
			control: ownerControl && owner == pp.owner,
		})
	}
	return plan, gen
}

// publishPlan installs a freshly built plan into the face's route table via
// copy-on-write. Concurrent publishers race benignly: a lost entry is simply
// rebuilt on a later miss, and a table whose generation no longer matches is
// never consulted.
func (pp *portPair) publishPlan(f face, dynT reflect.Type, plan *routePlan, gen uint64) {
	slot := &pp.routes[f-1]
	for i := 0; i < 4; i++ {
		cur := slot.Load()
		if cur != nil && cur.gen > gen {
			return // a newer snapshot exists; ours is stale
		}
		next := &routeTable{gen: gen, plans: make(map[reflect.Type]*routePlan, 4)}
		if cur != nil && cur.gen == gen {
			if len(cur.plans) >= routeCacheCap {
				// Capacity reset: publish a table holding only the new
				// plan. Dropped plans rebuild on their next miss, so a
				// type-churning workload pays rebuilds, never unbounded
				// memory.
				if pp.owner != nil && pp.owner.rt != nil {
					pp.owner.rt.routeCacheResets.Add(1)
				}
			} else {
				for k, v := range cur.plans {
					next.plans[k] = v
				}
			}
		}
		next.plans[dynT] = plan
		if slot.CompareAndSwap(cur, next) {
			return
		}
	}
}

// hasSubscriptionFor reports whether any active subscription attached to
// face f accepts events of the given dynamic type. Used by fault escalation
// to decide whether a parent handles a child's Fault.
func (pp *portPair) hasSubscriptionFor(f face, dyn EventType) bool {
	pp.mu.RLock()
	defer pp.mu.RUnlock()
	for _, s := range pp.subs[f-1] {
		if s.eventT.Accepts(dyn) {
			return true
		}
	}
	return false
}
