package core

import (
	"fmt"
	"sync"
)

// face identifies which half of a port pair a *Port handle refers to.
type face int

const (
	// inner is the half facing the owning component's own code and scope
	// (its subcomponents). Provides/Requires return inner halves.
	inner face = iota + 1
	// outer is the half facing the parent's scope. Component.Provided and
	// Component.Required return outer halves.
	outer
)

func (f face) String() string {
	if f == inner {
		return "inner"
	}
	return "outer"
}

func (f face) twin() face {
	if f == inner {
		return outer
	}
	return inner
}

// Port is one half of a port instance: a gate through which a component
// communicates with its environment by sending and receiving events.
//
// Each port instance is a pair of halves. The inner half faces the owning
// component (the component triggers and subscribes there); the outer half
// faces the enclosing scope (the parent connects channels there and may
// subscribe its own handlers, e.g. a Fault handler on a child's control
// port). An event presented at one half crosses to the twin half, where it
// is handled by matching subscriptions and forwarded by attached channels.
type Port struct {
	pair *portPair
	face face
}

// portPair is the shared state of the two halves of one port instance.
type portPair struct {
	typ      *PortType
	owner    *Component
	provided bool

	mu         sync.RWMutex
	subs       [2][]*Subscription // indexed by face-1
	chans      [2][]*Channel      // indexed by face-1
	generation uint64             // bumped on any mutation, for diagnostics
}

func newPortPair(typ *PortType, owner *Component, provided bool) *portPair {
	return &portPair{typ: typ, owner: owner, provided: provided}
}

// half returns the Port handle for one face of the pair.
func (pp *portPair) half(f face) *Port { return &Port{pair: pp, face: f} }

// Type returns the port's type.
func (p *Port) Type() *PortType { return p.pair.typ }

// Owner returns the component that declared this port.
func (p *Port) Owner() *Component { return p.pair.owner }

// IsProvided reports whether the underlying port is a provided port of its
// owner (as opposed to a required port).
func (p *Port) IsProvided() bool { return p.pair.provided }

// twin returns the opposite half of the same port instance.
func (p *Port) twin() *Port { return p.pair.half(p.face.twin()) }

// String renders the half for diagnostics, e.g. "Network(provided,inner)@MyNetwork".
func (p *Port) String() string {
	kind := "required"
	if p.pair.provided {
		kind = "provided"
	}
	return fmt.Sprintf("%s(%s,%s)@%s", p.pair.typ.Name(), kind, p.face, p.pair.owner.Name())
}

// crossDirection returns the Direction of events moving from this half to
// its twin. For a provided port, outer→inner movement is Negative (requests
// travel into the provider) and inner→outer is Positive; for a required
// port it is the mirror image.
func (p *Port) crossDirection() Direction {
	if p.pair.provided {
		if p.face == outer {
			return Negative
		}
		return Positive
	}
	if p.face == outer {
		return Positive
	}
	return Negative
}

// incomingDirection returns the Direction of events that cross INTO this
// half (and hence may match subscriptions attached here).
func (p *Port) incomingDirection() Direction { return p.twin().crossDirection() }

// providerLike reports whether this half emits Positive events outward into
// its scope. Two halves may be connected by a channel iff they have the
// same port type and opposite polarity (one provider-like, one
// requirer-like). The provider-like halves are the outer half of a provided
// port and the inner half of a required port.
func (p *Port) providerLike() bool {
	return p.pair.provided == (p.face == outer)
}

// Subscription binds an event handler owned by some component to one port
// half. It fires for every event of a matching type that crosses into that
// half.
type Subscription struct {
	owner   *Component // component whose handler this is
	port    *Port      // half the subscription is attached to
	eventT  EventType
	name    string // handler name for diagnostics
	handler func(Event)
	active  bool // guarded by port.pair.mu
}

// EventType returns the event type the subscription accepts.
func (s *Subscription) EventType() EventType { return s.eventT }

// Port returns the half the subscription is attached to.
func (s *Subscription) Port() *Port { return s.port }

// String renders the subscription for diagnostics.
func (s *Subscription) String() string {
	return fmt.Sprintf("%s(%s)@%s", s.name, s.eventT, s.port)
}

// subscribe attaches a prepared subscription to its half, validating the
// event type against the port type's direction sets.
func (pp *portPair) subscribe(s *Subscription) error {
	in := s.port.incomingDirection()
	if !pp.typ.Allows(s.eventT, in) {
		return fmt.Errorf("core: cannot subscribe handler for %s at %s: port type %s does not allow %s in direction %s",
			s.eventT, s.port, pp.typ.Name(), s.eventT, in)
	}
	pp.mu.Lock()
	defer pp.mu.Unlock()
	s.active = true
	pp.subs[s.port.face-1] = append(pp.subs[s.port.face-1], s)
	pp.generation++
	return nil
}

// unsubscribe detaches a subscription from its half. It is a no-op if the
// subscription was already removed.
func (pp *portPair) unsubscribe(s *Subscription) {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	list := pp.subs[s.port.face-1]
	for i, cur := range list {
		if cur == s {
			pp.subs[s.port.face-1] = append(list[:i:i], list[i+1:]...)
			s.active = false
			pp.generation++
			return
		}
	}
}

// attachChannel registers a channel endpoint on one half.
func (pp *portPair) attachChannel(f face, ch *Channel) {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	pp.chans[f-1] = append(pp.chans[f-1], ch)
	pp.generation++
}

// detachChannel removes a channel endpoint from one half.
func (pp *portPair) detachChannel(f face, ch *Channel) {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	list := pp.chans[f-1]
	for i, cur := range list {
		if cur == ch {
			pp.chans[f-1] = append(list[:i:i], list[i+1:]...)
			pp.generation++
			return
		}
	}
}

// present delivers an event at half p: the event crosses to the twin half,
// where matching subscriptions are scheduled onto their owners' queues and
// attached channels forward the event onward. The caller must already have
// validated the event's direction (Trigger does; channels preserve it).
//
// Delivery is synchronous enqueueing: by the time present returns, the
// event sits in every destination component's queue, preserving FIFO order
// per source component along every path.
func (p *Port) present(ev Event) {
	dst := p.twin()
	pp := p.pair

	pp.mu.RLock()
	subs := pp.subs[dst.face-1]
	// Group matching handlers by owning component so that all handlers of
	// one component for one event execute back-to-back with no interleaved
	// foreign event (the paper's Figure 7 semantics).
	var (
		matched   []*Subscription
		nowners   int
		soleOwner *Component
	)
	dynT := DynamicTypeOf(ev)
	for _, s := range subs {
		if s.eventT.Accepts(dynT) {
			if len(matched) == 0 {
				soleOwner = s.owner
				nowners = 1
			} else if s.owner != soleOwner {
				nowners = 2
			}
			matched = append(matched, s)
		}
	}
	chans := pp.chans[dst.face-1]
	var fwd []*Channel
	if len(chans) > 0 {
		fwd = make([]*Channel, len(chans))
		copy(fwd, chans)
	}
	pp.mu.RUnlock()

	// Lifecycle events crossing into the inner half of a component's
	// control port must reach the owner's control queue even with no user
	// subscription, so the runtime can intercept Start/Stop/Init/Kill.
	ownerControl := pp.owner != nil && pp == pp.owner.control && dst.face == inner

	switch {
	case nowners == 0:
		if ownerControl {
			pp.owner.enqueue(workItem{event: ev, control: true, via: dst})
		}
	case nowners == 1:
		if ownerControl && soleOwner != pp.owner {
			// Foreign observer matched but owner did not: owner still gets
			// the bare lifecycle item, observer gets a normal item.
			pp.owner.enqueue(workItem{event: ev, control: true, via: dst})
			soleOwner.enqueue(workItem{event: ev, subs: matched, via: dst})
		} else {
			soleOwner.enqueue(workItem{event: ev, subs: matched, control: ownerControl, via: dst})
		}
	default:
		// Rare: subscriptions at this half belong to several components
		// (e.g. parent and grandparent observers). Deliver per owner.
		byOwner := make(map[*Component][]*Subscription, 2)
		order := make([]*Component, 0, 2)
		for _, s := range matched {
			if _, ok := byOwner[s.owner]; !ok {
				order = append(order, s.owner)
			}
			byOwner[s.owner] = append(byOwner[s.owner], s)
		}
		if ownerControl {
			if _, ok := byOwner[pp.owner]; !ok {
				pp.owner.enqueue(workItem{event: ev, control: true, via: dst})
			}
		}
		for _, owner := range order {
			owner.enqueue(workItem{event: ev, subs: byOwner[owner], control: ownerControl && owner == pp.owner, via: dst})
		}
	}

	for _, ch := range fwd {
		ch.forward(ev, dst)
	}
}

// hasSubscriptionFor reports whether any active subscription attached to
// face f accepts events of the given dynamic type. Used by fault escalation
// to decide whether a parent handles a child's Fault.
func (pp *portPair) hasSubscriptionFor(f face, dyn EventType) bool {
	pp.mu.RLock()
	defer pp.mu.RUnlock()
	for _, s := range pp.subs[f-1] {
		if s.eventT.Accepts(dyn) {
			return true
		}
	}
	return false
}
