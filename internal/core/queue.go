package core

// ring is a growable FIFO ring buffer of work items. It amortizes
// allocation across pushes and avoids the O(n) head-slicing of a plain
// slice queue. The zero value is ready to use. Not safe for concurrent use;
// callers synchronize externally.
type ring struct {
	buf  []workItem
	head int
	size int
}

// push appends an item at the tail.
func (r *ring) push(it workItem) {
	if r.size == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.size)%len(r.buf)] = it
	r.size++
}

// pop removes and returns the head item; ok is false when empty.
func (r *ring) pop() (it workItem, ok bool) {
	if r.size == 0 {
		return workItem{}, false
	}
	it = r.buf[r.head]
	r.buf[r.head] = workItem{} // release references for GC
	r.head = (r.head + 1) % len(r.buf)
	r.size--
	return it, true
}

// len returns the number of queued items.
func (r *ring) len() int { return r.size }

// reserve grows the backing array (at most once) so that n further pushes
// proceed without triggering growth — the multi-event push of a batched
// fan-out pays one capacity check per run instead of one per item.
func (r *ring) reserve(n int) {
	need := r.size + n
	if need <= len(r.buf) {
		return
	}
	sz := len(r.buf) * 2
	if sz == 0 {
		sz = 8
	}
	for sz < need {
		sz *= 2
	}
	nb := make([]workItem, sz)
	for i := 0; i < r.size; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = nb
	r.head = 0
}

// reset drops all queued items but keeps the backing array, so a component
// that drains and refills (or is reused after a lifecycle reset) does not
// pay the growth allocations again. Entries are cleared so dropped events
// do not pin their payloads against GC.
func (r *ring) reset() {
	for i := 0; i < r.size; i++ {
		r.buf[(r.head+i)%len(r.buf)] = workItem{}
	}
	r.head = 0
	r.size = 0
}

func (r *ring) grow() {
	n := len(r.buf) * 2
	if n == 0 {
		n = 8
	}
	nb := make([]workItem, n)
	for i := 0; i < r.size; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = nb
	r.head = 0
}
