package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// Tests for batched fan-out forwarding (port.go/fanout.go), its interaction
// with channel Hold/Resume and hot swap, and the adaptive steal batch
// policy. The concurrency tests here are the per-channel ordering oracle
// for the batched path: every client must observe the exact trigger
// sequence — no loss, no duplication, no reordering — no matter how the
// broadcast is chopped into batches or interrupted by reconfiguration.

type fanEvent struct{ Seq int }

var fanPort = NewPortType("Fan", Indication[fanEvent]())

// seqRec records the sequence numbers one client observed, in arrival order.
type seqRec struct {
	mu   sync.Mutex
	seqs []int
}

func (r *seqRec) add(s int) {
	r.mu.Lock()
	r.seqs = append(r.seqs, s)
	r.mu.Unlock()
}

func (r *seqRec) snapshot() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.seqs...)
}

// fanClient is a swappable subscriber that records into an external seqRec,
// so a replacement instance continues the same record.
type fanClient struct{ rec *seqRec }

func (d *fanClient) Setup(ctx *Ctx) {
	p := ctx.Requires(fanPort)
	rec := d.rec
	Subscribe(ctx, p, func(ev fanEvent) { rec.add(ev.Seq) })
}

// fanWorld wires one broadcasting server to n recording clients, each over
// its own channel, and returns the server's inner port to trigger on.
func fanWorld(t *testing.T, rt *Runtime, n int) (srvPort *Port, rootCtx *Ctx, clients []*Component, chans []*Channel, recs []*seqRec) {
	t.Helper()
	recs = make([]*seqRec, n)
	clients = make([]*Component, n)
	chans = make([]*Channel, n)
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		rootCtx = ctx
		srv := ctx.Create("server", SetupFunc(func(sx *Ctx) {
			srvPort = sx.Provides(fanPort)
		}))
		for i := 0; i < n; i++ {
			recs[i] = &seqRec{}
			clients[i] = ctx.Create(fmt.Sprintf("c%d", i), &fanClient{rec: recs[i]})
			chans[i] = ctx.Connect(srv.Provided(fanPort), clients[i].Required(fanPort))
		}
	}))
	waitQuiet(t, rt)
	return
}

// assertFullSequence checks a client observed exactly seqs 0..total-1 in
// order.
func assertFullSequence(t *testing.T, client int, got []int, total int) {
	t.Helper()
	if len(got) != total {
		t.Fatalf("client %d: received %d events, want %d (loss or duplication)", client, len(got), total)
	}
	for j, s := range got {
		if s != j {
			t.Fatalf("client %d: position %d holds seq %d (reordered)", client, j, s)
		}
	}
}

// TestHoldResumeDuringBatchedFanout flaps Hold/Resume on a subset of the
// channels while a broadcast storm of event batches is in flight. Held
// channels must buffer each batch whole and Resume must replay it in order,
// so every client still observes the unbroken trigger sequence.
func TestHoldResumeDuringBatchedFanout(t *testing.T) {
	rt := newTestRuntime(t)
	const nClients = 8
	const batch = 4
	const total = 2000
	srvPort, _, _, chans, recs := fanWorld(t, rt, nClients)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			chans[0].Hold()
			chans[3].Hold()
			runtime.Gosched()
			chans[0].Resume()
			chans[3].Resume()
			runtime.Gosched()
		}
	}()

	evs := make([]Event, batch)
	for seq := 0; seq < total; {
		for k := range evs {
			evs[k] = fanEvent{Seq: seq}
			seq++
		}
		if err := TriggerBatchOn(srvPort, evs); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	for _, ch := range chans {
		ch.Resume()
	}
	waitQuiet(t, rt)

	for i, rec := range recs {
		assertFullSequence(t, i, rec.snapshot(), total)
	}
}

// TestSwapDuringBatchedFanout hot-swaps one client while batched broadcasts
// are in flight. The swap recipe (hold, unplug, migrate queued events,
// resume) must neither lose nor duplicate nor reorder any event, for the
// swapped slot or for the bystander clients.
func TestSwapDuringBatchedFanout(t *testing.T) {
	rt := newTestRuntime(t)
	const nClients = 4
	const batch = 4
	const total = 1600
	srvPort, rootCtx, clients, _, recs := fanWorld(t, rt, nClients)

	done := make(chan struct{})
	go func() {
		defer close(done)
		evs := make([]Event, batch)
		for seq := 0; seq < total; {
			for k := range evs {
				evs[k] = fanEvent{Seq: seq}
				seq++
			}
			if err := TriggerBatchOn(srvPort, evs); err != nil {
				panic(err)
			}
			if seq == total/2 {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	time.Sleep(200 * time.Microsecond)
	if _, err := rootCtx.Swap(clients[0], "c0v2", &fanClient{rec: recs[0]}); err != nil {
		t.Fatalf("swap: %v", err)
	}
	<-done
	waitQuiet(t, rt)

	for i, rec := range recs {
		assertFullSequence(t, i, rec.snapshot(), total)
	}
}

// TestTriggerBatchHeterogeneous checks the per-event fallback of a mixed
// batch still delivers everything in order.
func TestTriggerBatchHeterogeneous(t *testing.T) {
	rt := newTestRuntime(t)
	var mu sync.Mutex
	var got []Event
	var port *Port
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		srv := ctx.Create("server", SetupFunc(func(sx *Ctx) {
			port = sx.Provides(pingPongPort)
		}))
		cli := ctx.Create("cli", SetupFunc(func(cx *Ctx) {
			p := cx.Requires(pingPongPort)
			Subscribe(cx, p, func(ev pong) {
				mu.Lock()
				got = append(got, ev)
				mu.Unlock()
			})
		}))
		ctx.Connect(srv.Provided(pingPongPort), cli.Required(pingPongPort))
	}))
	waitQuiet(t, rt)

	if err := TriggerBatchOn(port, []Event{pong{N: 1}, pong{N: 2}, pong{N: 3}}); err != nil {
		t.Fatal(err)
	}
	waitQuiet(t, rt)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("received %d events, want 3", len(got))
	}
}

// TestAdaptiveStealBatchPolicy pins the adaptive policy's shape: steal-one
// at the shallow floor, a quarter while the victim is far below its
// high-water mark, half otherwise — with the shrunk flag set exactly when
// the choice is smaller than the half-batch default.
func TestAdaptiveStealBatchPolicy(t *testing.T) {
	cases := []struct {
		depth, highWater int64
		wantN            int64
		wantShrunk       bool
	}{
		{depth: 1, highWater: 0, wantN: 1, wantShrunk: false},
		{depth: 2, highWater: 8, wantN: 1, wantShrunk: false},  // half would be 1 too
		{depth: 4, highWater: 8, wantN: 1, wantShrunk: true},   // half would be 2
		{depth: 8, highWater: 100, wantN: 2, wantShrunk: true}, // draining: quarter
		{depth: 16, highWater: 100, wantN: 8, wantShrunk: false},
		{depth: 40, highWater: 400, wantN: 10, wantShrunk: true},
		{depth: 100, highWater: 100, wantN: 50, wantShrunk: false},
	}
	for _, c := range cases {
		n, shrunk := adaptiveStealBatch(c.depth, c.highWater)
		if n != c.wantN || shrunk != c.wantShrunk {
			t.Errorf("adaptiveStealBatch(%d, %d) = (%d, %v), want (%d, %v)",
				c.depth, c.highWater, n, shrunk, c.wantN, c.wantShrunk)
		}
	}
}

// BenchmarkStealPingPong measures the steal round trip against a
// repeatedly-refilled shallow victim whose deque once ran deep — the drain
// phase the adaptive policy is shaped for. Sub-benchmark "half" pins the
// paper's fixed steal-half policy; "adaptive" computes the batch from the
// victim's current depth against its high-water mark. The interesting
// output is not only ns/op but how much of the victim's remaining work each
// policy strips from its owner.
func BenchmarkStealPingPong(b *testing.B) {
	policies := []struct {
		name  string
		batch func(d *wsDeque) int64
	}{
		{"half", func(d *wsDeque) int64 { return d.size() / 2 }},
		{"adaptive", func(d *wsDeque) int64 {
			n, _ := adaptiveStealBatch(d.size(), d.maxDepth.Load())
			return n
		}},
	}
	for _, pol := range policies {
		b.Run(pol.name, func(b *testing.B) {
			d := newWSDeque()
			c := &Component{}
			// Establish a deep high-water mark, then drain to enter the
			// shallow phase the policies diverge on.
			for i := 0; i < 256; i++ {
				d.push(c)
			}
			for d.pop() != nil {
			}
			var buf []*Component
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k := 0; k < 4; k++ {
					d.push(c)
				}
				// Owner and thief alternate: one FIFO pop, one policy-sized
				// steal, until the refill is consumed.
				for d.size() > 0 {
					if d.pop() == nil {
						break
					}
					n := pol.batch(d)
					if n < 1 {
						n = 1
					}
					buf = d.stealInto(buf[:0], n)
				}
			}
		})
	}
}

// TestStealShrinkTelemetry drives an imbalanced load through the default
// (adaptive) policy and checks the scheduler surfaces shrink decisions in
// its stats without breaking the steals/stolen accounting.
func TestStealShrinkTelemetry(t *testing.T) {
	s := NewWorkStealingScheduler(2, WithPlacement(func(uint64, int) int { return 0 }))
	rt := New(WithScheduler(s))
	defer rt.Shutdown()
	var handled int64
	var mu sync.Mutex
	var port *Port
	rt.MustBootstrap("Main", SetupFunc(func(ctx *Ctx) {
		srv := ctx.Create("server", SetupFunc(func(sx *Ctx) {
			port = sx.Provides(fanPort)
		}))
		for i := 0; i < 16; i++ {
			cli := ctx.Create(fmt.Sprintf("c%d", i), SetupFunc(func(cx *Ctx) {
				p := cx.Requires(fanPort)
				Subscribe(cx, p, func(fanEvent) {
					mu.Lock()
					handled++
					mu.Unlock()
				})
			}))
			ctx.Connect(srv.Provided(fanPort), cli.Required(fanPort))
		}
	}))
	waitQuiet(t, rt)

	for i := 0; i < 500; i++ {
		if err := TriggerOn(port, fanEvent{Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	waitQuiet(t, rt)

	st := s.SchedulerMetrics()
	if st.StealShrinks > st.Steals {
		t.Fatalf("steal shrinks %d exceed successful steals %d", st.StealShrinks, st.Steals)
	}
	var perWorker uint64
	for _, w := range st.PerWorker {
		perWorker += w.StealShrinks
	}
	if perWorker != st.StealShrinks {
		t.Fatalf("per-worker shrink sum %d != aggregate %d", perWorker, st.StealShrinks)
	}
}
