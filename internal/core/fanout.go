package core

import "sync"

// Batched fan-out forwarding (paper §3). When an event crosses a port pair
// with several attached channels — a broadcast — the naive delivery takes
// every destination component's queue lock, and pokes the scheduler, once
// per channel. A fanoutBatch instead collects the entire transitive fan-out
// of one delivery (local subscriptions plus everything reachable through
// pass-through channels) and then flushes it: destination queue locks are
// taken once per destination run, and every component that became ready is
// submitted to the scheduler in one batched deque push with a single
// idler wake-up. The collection and flush structures are reused (worker
// scratch or a global freelist), so the batched path stays allocation-free
// in steady state, like the rest of the dispatch hot path.

// fanoutBatchMinChans is the channel fan-out degree at which single-event
// delivery switches from the direct path to batch collection. Plans with
// zero or one attached channel — the overwhelmingly common case — keep the
// exact historical delivery order and cost.
const fanoutBatchMinChans = 2

// fanoutEntry is one pending component enqueue of a batch.
type fanoutEntry struct {
	dest *Component
	item workItem
}

// fanoutBatch accumulates the enqueues produced while one event (or one
// slice of events) fans out through a delivery plan, then flushes them
// grouped per destination component. Entries are appended in delivery
// order, which flush preserves per destination, so FIFO-per-channel
// ordering is exactly what the unbatched path produced.
type fanoutBatch struct {
	entries []fanoutEntry
	// ready collects the components that transitioned idle→ready during
	// flush, in readiness order, for one batched scheduler submission.
	ready []*Component
	// owner is the worker whose scratch this batch is, nil for freelist
	// batches; inUse guards against re-entrant acquisition of the scratch.
	owner *worker
	inUse bool
}

// add records one pending enqueue.
func (b *fanoutBatch) add(dest *Component, it workItem) {
	b.entries = append(b.entries, fanoutEntry{dest: dest, item: it})
}

// flush delivers all collected enqueues and submits the readied components.
// Consecutive entries for the same destination are enqueued under a single
// queue-lock acquisition (the routing plan emits per-owner groups and each
// channel's far plan adjacently, so same-destination items of one delivery
// arrive adjacent). Submission batches contiguous same-runtime segments of
// the ready list: onto the hinting worker's own deque when the hint is
// valid for that runtime's scheduler, through the scheduler's batched
// placement otherwise.
func (b *fanoutBatch) flush(hint *worker) {
	ents := b.entries
	for i := 0; i < len(ents); {
		dest := ents[i].dest
		j := i + 1
		for j < len(ents) && ents[j].dest == dest {
			j++
		}
		dest.enqueueRun(ents[i:j], b)
		i = j
	}
	ready := b.ready
	for i := 0; i < len(ready); {
		rt := ready[i].rt
		j := i + 1
		for j < len(ready) && ready[j].rt == rt {
			j++
		}
		seg := ready[i:j]
		switch {
		case hint != nil && hint.sched.is(rt.scheduler):
			hint.submitLocalBatch(seg)
		default:
			if ws, ok := rt.scheduler.(*WorkStealingScheduler); ok {
				ws.ScheduleBatch(seg)
			} else {
				// Third-party or simulation scheduler: plain Schedule calls,
				// still in readiness order (identical to the unbatched order,
				// which keeps simulation traces seed-stable).
				for _, c := range seg {
					rt.scheduler.Schedule(c)
				}
			}
		}
		i = j
	}
	clear(b.entries)
	b.entries = b.entries[:0]
	clear(b.ready)
	b.ready = b.ready[:0]
}

// fanoutFree is the freelist for batches acquired outside a worker (network
// receive loops, timers, tests triggering from external goroutines). A
// mutex-guarded slice rather than a sync.Pool: it is never dropped by GC,
// so the external-trigger fan-out path is allocation-free in steady state
// too, and the uncontended lock costs the same as the channel mutex the
// batched path removes.
var fanoutFree struct {
	mu   sync.Mutex
	free []*fanoutBatch
}

// acquireFanoutBatch returns a reusable batch: the triggering worker's own
// scratch when delivery runs on a scheduler worker, a freelist batch
// otherwise.
func acquireFanoutBatch(hint *worker) *fanoutBatch {
	if hint != nil && !hint.fanout.inUse {
		hint.fanout.inUse = true
		return &hint.fanout
	}
	fanoutFree.mu.Lock()
	if n := len(fanoutFree.free); n > 0 {
		b := fanoutFree.free[n-1]
		fanoutFree.free[n-1] = nil
		fanoutFree.free = fanoutFree.free[:n-1]
		fanoutFree.mu.Unlock()
		return b
	}
	fanoutFree.mu.Unlock()
	return &fanoutBatch{}
}

// releaseFanoutBatch returns a flushed batch to its home.
func releaseFanoutBatch(b *fanoutBatch) {
	if b.owner != nil {
		b.inUse = false
		return
	}
	fanoutFree.mu.Lock()
	fanoutFree.free = append(fanoutFree.free, b)
	fanoutFree.mu.Unlock()
}
