package core

import "fmt"

// State transfer interfaces for component hot-swap (§2.6 of the paper: "c2
// is initialized with the state dumped by c1").

// StateDumper is implemented by component definitions whose state can be
// captured for transfer into a replacement component.
type StateDumper interface {
	DumpState() any
}

// StateLoader is implemented by component definitions that can be
// initialized from a predecessor's dumped state. LoadState runs after Setup
// and before the replacement is started.
type StateLoader interface {
	LoadState(state any)
}

// Swap replaces subcomponent old with a fresh instance of def, following
// the paper's reconfiguration recipe: every channel connected to old's
// ports (in the parent's scope) is put on hold and unplugged; old is
// passivated; the new component is created and the channels are plugged
// into its corresponding ports and resumed; state is transferred when both
// definitions support it (old implements StateDumper, def implements
// StateLoader); the new component is started and old is destroyed.
//
// No event is dropped: events that arrive during the swap wait in the held
// channels and are delivered to the replacement, in order, on resume.
// Events already executed by old are reflected in the transferred state.
// For a fully quiescent swap, put the channels on hold and drain old before
// calling Swap; Swap itself is safe against concurrent traffic.
//
// The replacement must provide/require at least the port types old had
// channels connected to; otherwise Swap fails and the original wiring is
// restored.
func (x *Ctx) Swap(old *Component, name string, def Definition) (*Component, error) {
	if old == nil || old.parent != x.c {
		return nil, fmt.Errorf("core: Swap: %v is not a subcomponent of %s", old, x.c.Path())
	}

	var moves []movedChannel

	// 1. Hold and unplug every channel attached to old's outer halves.
	old.mu.Lock()
	type portEntry struct {
		pp       *portPair
		provided bool
	}
	var entries []portEntry
	for _, pp := range old.provided {
		entries = append(entries, portEntry{pp, true})
	}
	for _, pp := range old.required {
		entries = append(entries, portEntry{pp, false})
	}
	old.mu.Unlock()

	for _, e := range entries {
		e.pp.mu.RLock()
		chans := append([]*Channel(nil), e.pp.chans[outer-1]...)
		e.pp.mu.RUnlock()
		for _, ch := range chans {
			ch.Hold()
			if err := ch.Unplug(e.pp.half(outer)); err != nil {
				// Restore what we already moved and bail out.
				x.undoSwapHolds(moves, old)
				return nil, fmt.Errorf("core: Swap: unplug: %w", err)
			}
			moves = append(moves, movedChannel{ch: ch, pt: e.pp.typ, provided: e.provided})
		}
	}

	// 2. Passivate the old component.
	old.Control().present(Stop{})

	// 3. Create the replacement and replug the channels.
	repl := x.Create(name, def)
	for _, m := range moves {
		var half *Port
		if m.provided {
			half = repl.Provided(m.pt)
		} else {
			half = repl.Required(m.pt)
		}
		if half == nil {
			x.Destroy(repl)
			x.undoSwapHolds(moves, old)
			return nil, fmt.Errorf("core: Swap: replacement %s lacks %s port %s",
				name, kindWord(m.provided), m.pt.Name())
		}
		if err := m.ch.Plug(half); err != nil {
			x.Destroy(repl)
			x.undoSwapHolds(moves, old)
			return nil, fmt.Errorf("core: Swap: plug: %w", err)
		}
	}

	// 4. Transfer state when supported.
	if dumper, ok := old.def.(StateDumper); ok {
		if loader, ok := repl.def.(StateLoader); ok {
			loader.LoadState(dumper.DumpState())
		}
	}

	// 5. Migrate events still queued at old (delivered before the hold but
	// not yet executed) to the replacement's corresponding ports, in FIFO
	// order. The replacement is still passive, so migrated events land in
	// its queue ahead of the channel flush from Resume — preserving the
	// original delivery order end to end.
	for _, it := range old.stealMainQueue() {
		if it.via == nil || it.via.pair.owner != old {
			continue // event for a port of old's (doomed) subtree
		}
		var np *Port
		if it.via.pair.provided {
			np = repl.Provided(it.via.pair.typ)
		} else {
			np = repl.Required(it.via.pair.typ)
		}
		if np == nil {
			continue
		}
		// Re-present at the half opposite the one the event had crossed
		// into, so it crosses into the same-role half of the replacement.
		np.pair.half(it.via.face.twin()).present(it.event)
	}

	// 6. Resume traffic (flushes events queued during the swap, FIFO),
	// start the replacement, destroy the old component.
	for _, m := range moves {
		m.ch.Resume()
	}
	x.Start(repl)
	old.destroy()
	return repl, nil
}

// movedChannel records one channel detached from the component being
// swapped out, so it can be replugged into the replacement (or back into
// the original on failure).
type movedChannel struct {
	ch       *Channel
	pt       *PortType
	provided bool
}

// undoSwapHolds replugs already-moved channels back into old, resumes every
// held channel, and reactivates old, restoring the pre-Swap state after a
// failure. (Presenting Start to an already-active component is a no-op.)
func (x *Ctx) undoSwapHolds(moves []movedChannel, old *Component) {
	for _, m := range moves {
		var half *Port
		if m.provided {
			half = old.Provided(m.pt)
		} else {
			half = old.Required(m.pt)
		}
		if half != nil {
			_ = m.ch.Plug(half)
		}
		m.ch.Resume()
	}
	old.Control().present(Start{})
}

func kindWord(provided bool) string {
	if provided {
		return "provided"
	}
	return "required"
}
